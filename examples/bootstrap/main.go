// Command bootstrap reproduces demo scenario S3: deploying OPTIQUE over
// raw source schemas with BootOX. It bootstraps an ontology and mappings
// from the relational schema, discovers a complex mapping from keyword
// examples, aligns the bootstrapped ontology with a curated one (with
// the conservativity check), and finally runs a STARQL query over the
// bootstrapped deployment.
package main

import (
	"fmt"
	"log"

	optique "repro"
	"repro/internal/bootstrap"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/siemens"
	"repro/internal/stream"
)

func main() {
	// The raw source schema an administrator would point BootOX at.
	schema := bootstrap.Schema{
		BaseIRI: "http://siemens.com/boot#",
		DataIRI: "http://siemens.com/data/",
		Tables: []bootstrap.Table{
			{
				Name: "turbines", PrimaryKey: "tid",
				Columns: []bootstrap.Column{
					{Name: "tid", Type: relation.TInt},
					{Name: "model", Type: relation.TString},
					{Name: "year", Type: relation.TInt},
				},
			},
			{
				Name: "assemblies", PrimaryKey: "aid",
				Columns: []bootstrap.Column{
					{Name: "aid", Type: relation.TInt},
					{Name: "tid", Type: relation.TInt}, // implicit FK
					{Name: "kind", Type: relation.TString},
				},
			},
			{
				Name: "sensors", PrimaryKey: "sid",
				Columns: []bootstrap.Column{
					{Name: "sid", Type: relation.TInt},
					{Name: "aid", Type: relation.TInt},
					{Name: "kind", Type: relation.TString},
				},
				ForeignKeys: []bootstrap.FK{{Column: "aid", RefTable: "assemblies", RefColumn: "aid"}},
			},
			{
				Name: "readings", IsStream: true, TSCol: "ts",
				Columns: []bootstrap.Column{
					{Name: "sid", Type: relation.TInt},
					{Name: "ts", Type: relation.TTime},
					{Name: "val", Type: relation.TFloat},
				},
			},
		},
	}

	// 1. Logical bootstrapping.
	res, err := bootstrap.Direct(schema)
	if err != nil {
		log.Fatal(err)
	}
	classes, objProps, dataProps, nmaps := res.Stats()
	fmt.Printf("bootstrapped: %d classes, %d object properties, %d data properties, %d mappings\n",
		classes, objProps, dataProps, nmaps)
	for _, line := range res.Report {
		fmt.Println("  " + line)
	}

	// 2. Keyword-based discovery over sample data.
	cat := relation.NewCatalog()
	turbines, _ := cat.Create("turbines", relation.NewSchema(
		relation.Col("tid", relation.TInt),
		relation.Col("model", relation.TString),
		relation.Col("year", relation.TInt)))
	turbines.MustInsert(relation.Tuple{relation.Int(1), relation.String_("Albatros gas"), relation.Int(2008)})
	turbines.MustInsert(relation.Tuple{relation.Int(2), relation.String_("Kondor steam"), relation.Int(2011)})
	cands, err := bootstrap.DiscoverClassMapping(schema, cat, "GasTurbine",
		[]bootstrap.KeywordExample{{"albatros", "gas", "2008"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nkeyword discovery for GasTurbine: best table %q (score %.2f, matched %v)\n",
		cands[0].Table, cands[0].Score, cands[0].Matched)

	// 3. Alignment against the curated Siemens ontology.
	correspondences := bootstrap.Align(res.TBox, siemens.TBox(), 0.3)
	accepted := bootstrap.Accepted(correspondences)
	fmt.Printf("\nalignment proposed %d correspondences, accepted %d:\n",
		len(correspondences), len(accepted))
	for _, c := range correspondences {
		status := "ok"
		if c.Rejected != "" {
			status = "REJECTED: " + c.Rejected
		}
		fmt.Printf("  %.2f  %s = %s  [%s]\n", c.Confidence, c.Left, c.Right, status)
	}

	// 4. Deploy over the bootstrapped assets and run a STARQL threshold
	//    query end-to-end.
	static := relation.NewCatalog()
	sensors, _ := static.Create("sensors", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("aid", relation.TInt),
		relation.Col("kind", relation.TString)))
	for sid := int64(1); sid <= 5; sid++ {
		sensors.MustInsert(relation.Tuple{relation.Int(sid), relation.Int(1), relation.String_("temperature")})
	}
	assemblies, _ := static.Create("assemblies", relation.NewSchema(
		relation.Col("aid", relation.TInt),
		relation.Col("tid", relation.TInt),
		relation.Col("kind", relation.TString)))
	assemblies.MustInsert(relation.Tuple{relation.Int(1), relation.Int(1), relation.String_("burner")})
	turbines2, _ := static.Create("turbines", relation.NewSchema(
		relation.Col("tid", relation.TInt),
		relation.Col("model", relation.TString),
		relation.Col("year", relation.TInt)))
	turbines2.MustInsert(relation.Tuple{relation.Int(1), relation.String_("Albatros"), relation.Int(2008)})

	sys, err := optique.NewSystem(optique.Config{Nodes: 1}, res.TBox, res.Mappings, static)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	if err := sys.DeclareStream(stream.Schema{
		Name: "readings",
		Tuple: relation.NewSchema(
			relation.Col("sid", relation.TInt),
			relation.Col("ts", relation.TTime),
			relation.Col("val", relation.TFloat)),
		TSCol: "ts",
	}); err != nil {
		log.Fatal(err)
	}

	query := `
PREFIX boot: <http://siemens.com/boot#>
PREFIX out: <http://siemens.com/out#>
CREATE STREAM hot AS
CONSTRUCT GRAPH NOW { ?s rdf:type out:Hot }
FROM STREAM readings [NOW-"PT5S", NOW]->"PT1S",
STATIC DATA <http://x/static>, ONTOLOGY <http://x/tbox>
WHERE { ?s a boot:Sensor. }
SEQUENCE BY StdSeq AS seq
HAVING THRESHOLD.ABOVE(?s, boot:hasVal, 90)
`
	alerts := 0
	reg, err := sys.RegisterTask("hot", query, func(_ string, end int64, ts []rdf.Triple) {
		for _, tr := range ts {
			alerts++
			fmt.Printf("  hot sensor at t=%dms: %s\n", end, tr.S.LocalName())
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nregistered query over bootstrapped deployment: %d bindings\n", len(reg.Bindings))

	// Sensor 3 overheats between 2s and 6s.
	for ts := int64(0); ts < 10_000; ts += 500 {
		for sid := int64(1); sid <= 5; sid++ {
			val := 70.0
			if sid == 3 && ts >= 2_000 && ts < 6_000 {
				val = 95.0
			}
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(sid), relation.Time(ts), relation.Float(val)}}
			if err := sys.Ingest("readings", el); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("total alerts: %d\n", alerts)
	if alerts == 0 {
		log.Fatal("bootstrapped deployment produced no alerts")
	}
}

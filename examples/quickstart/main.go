// Command quickstart runs the paper's Figure 1 query end-to-end on a
// small synthetic turbine fleet: deploy OPTIQUE, register the monotonic-
// temperature-increase diagnostic task, replay a measurement stream with
// a planted failure ramp, and print the alerts.
package main

import (
	"fmt"
	"log"

	optique "repro"
	"repro/internal/rdf"
	"repro/internal/siemens"
)

func main() {
	// 1. Generate the demo deployment assets: ontology, mappings, and
	//    the static databases of both source schemas.
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := gen.StaticCatalog()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Deploy the system on a single node.
	sys, err := optique.NewSystem(optique.Config{Nodes: 1},
		siemens.TBox(), siemens.Mappings(), catalog)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			log.Fatal(err)
		}
	}

	// 3. Register the Figure 1 task from the 20-task catalog.
	task, _ := siemens.TaskByID("T01_mon_temperature")
	fmt.Println("registering STARQL task:")
	fmt.Println(task.Query)

	alerts := 0
	reg, err := sys.RegisterTask(task.ID, task.Query,
		func(id string, windowEnd int64, triples []rdf.Triple) {
			for _, tr := range triples {
				alerts++
				fmt.Printf("ALERT t=%dms  %s\n", windowEnd, tr)
			}
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenrichment generated %d queries, unfolded fleet size %d, %d WHERE bindings\n\n",
		reg.Translation.RewriteStats.Generated, reg.FleetSize(), len(reg.Bindings))

	// 4. Replay one minute of measurements with a planted monotonic ramp
	//    ending in a failure.
	events := gen.PlantDefaultEvents(0, 60_000)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 60_000, StepMS: 500,
		Sensors: gen.SensorsOfTurbine(0), Events: events, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, el := range tuples {
		if err := sys.Ingest(siemens.RouteName(routes[i]), el); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nreplayed %d tuples; %d windows evaluated; %d alert triples\n",
		len(tuples), reg.Windows(), alerts)
	if alerts == 0 {
		log.Fatal("expected alerts from the planted ramp")
	}
}

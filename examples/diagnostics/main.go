// Command diagnostics reproduces demo scenario S1: a service engineer
// registers several diagnostic tasks from the Siemens catalog as
// parametrised continuous queries, replays fleet telemetry with planted
// anomalies, and watches a monitoring dashboard of per-task statistics
// (answers, windows, hosting node) in the style of the paper's Figure 3.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	optique "repro"
	"repro/internal/rdf"
	"repro/internal/siemens"
)

// dashboard aggregates per-task alert counts and affected entities.
type dashboard struct {
	mu       sync.Mutex
	alerts   map[string]int
	entities map[string]map[string]bool
}

func newDashboard() *dashboard {
	return &dashboard{alerts: map[string]int{}, entities: map[string]map[string]bool{}}
}

func (d *dashboard) sink(taskID string, _ int64, triples []rdf.Triple) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.alerts[taskID] += len(triples)
	set, ok := d.entities[taskID]
	if !ok {
		set = map[string]bool{}
		d.entities[taskID] = set
	}
	for _, t := range triples {
		set[t.S.LocalName()] = true
	}
}

func main() {
	gen, err := siemens.New(siemens.Config{
		Turbines: 20, SensorsPerTurbine: 10, AssembliesPerTurbine: 2,
		SourceASplit: 0.5, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	catalog, err := gen.StaticCatalog()
	if err != nil {
		log.Fatal(err)
	}
	sys, err := optique.NewSystem(optique.Config{Nodes: 4},
		siemens.TBox(), siemens.Mappings(), catalog)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			log.Fatal(err)
		}
	}

	dash := newDashboard()
	// Register one task of each condition type across sensor kinds.
	taskIDs := []string{
		"T01_mon_temperature", "T06_thr_pressure",
		"T11_trend_vibration", "T12_corr_vibration",
	}
	for _, id := range taskIDs {
		task, ok := siemens.TaskByID(id)
		if !ok {
			log.Fatalf("task %s not in catalog", id)
		}
		reg, err := sys.RegisterTask(task.ID, task.Query, dash.sink)
		if err != nil {
			log.Fatalf("register %s: %v", id, err)
		}
		fmt.Printf("registered %-22s on node %d  (fleet size %3d, %3d bindings)  %s\n",
			task.ID, reg.Node, reg.FleetSize(), len(reg.Bindings), task.Title)
	}

	// Replay 90 seconds of telemetry for the first 4 turbines with the
	// default planted anomalies.
	var sensors []int64
	for tid := 0; tid < 4; tid++ {
		sensors = append(sensors, gen.SensorsOfTurbine(tid)...)
	}
	events := gen.PlantDefaultEvents(0, 90_000)
	fmt.Println("\nplanted ground truth:")
	for _, e := range events {
		fmt.Printf("  kind=%d sensor=%d window=[%d,%d)ms\n", e.Kind, e.SensorID, e.StartMS, e.EndMS)
	}
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 90_000, StepMS: 500,
		Sensors: sensors, Events: events, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, el := range tuples {
		if err := sys.Ingest(siemens.RouteName(routes[i]), el); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		log.Fatal(err)
	}

	// Render the dashboard.
	fmt.Printf("\n=== monitoring dashboard (replayed %d tuples) ===\n", len(tuples))
	fmt.Printf("%-22s %8s %8s %8s  %s\n", "task", "node", "windows", "alerts", "affected")
	dash.mu.Lock()
	defer dash.mu.Unlock()
	for _, id := range taskIDs {
		reg, _ := sys.Task(id)
		var affected []string
		for e := range dash.entities[id] {
			affected = append(affected, e)
		}
		sort.Strings(affected)
		fmt.Printf("%-22s %8d %8d %8d  %v\n",
			id, reg.Node, reg.Windows(), dash.alerts[id], affected)
	}
	stats := sys.Stats()
	fmt.Println("\n=== cluster ===")
	for _, st := range stats {
		fmt.Printf("node %d: %d queries, %d tuples in, %d windows executed, %d rows out\n",
			st.Node, st.Queries, st.Engine.TuplesIn, st.Engine.WindowsExecuted, st.Engine.RowsOut)
	}
}

// Command correlation demonstrates the LSH stream-correlation UDF: the
// catalog's Pearson task at fleet scale. It generates window vectors for
// hundreds of sensors (with planted correlated groups), finds the
// correlated pairs with locality-sensitive hashing, and compares cost
// and results against the exact all-pairs baseline.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/lsh"
)

func main() {
	const (
		sensors = 400
		dim     = 128 // samples per window
		minR    = 0.95
	)
	rng := rand.New(rand.NewSource(7))

	// Three planted groups of correlated sensors; the rest are noise.
	groups := [][]int{
		{0, 1, 2, 3, 4},
		{100, 101, 102},
		{200, 201, 202, 203},
	}
	inGroup := map[int]int{}
	for gi, g := range groups {
		for _, id := range g {
			inGroup[id] = gi + 1
		}
	}
	series := make(map[int][]float64, sensors)
	for id := 0; id < sensors; id++ {
		s := make([]float64, dim)
		switch inGroup[id] {
		case 1: // shared ramp
			for i := range s {
				s[i] = float64(i) + rng.NormFloat64()*0.3
			}
		case 2: // shared sinusoid
			for i := range s {
				s[i] = math.Sin(float64(i)/5) + rng.NormFloat64()*0.01
			}
		case 3: // shared sawtooth
			for i := range s {
				s[i] = float64(i%16) + rng.NormFloat64()*0.05
			}
		default:
			for i := range s {
				s[i] = rng.NormFloat64()
			}
		}
		series[id] = s
	}

	// Exact all-pairs baseline.
	t0 := time.Now()
	exact := lsh.ExactPairs(series, minR)
	exactTime := time.Since(t0)

	// LSH index.
	ix, err := lsh.New(lsh.Config{Bits: 96, Bands: 12, Dim: dim, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	for id, s := range series {
		if _, err := ix.Add(id, s); err != nil {
			log.Fatal(err)
		}
	}
	approx := ix.CorrelatedPairs(minR)
	lshTime := time.Since(t0)

	st := ix.Stats()
	fmt.Printf("sensors: %d, window dimension: %d, threshold |r| >= %.2f\n", sensors, dim, minR)
	fmt.Printf("all pairs:          %8d\n", st.AllPairs)
	fmt.Printf("LSH candidates:     %8d  (%.1f%% of all pairs)\n",
		st.Candidates, 100*float64(st.Candidates)/float64(st.AllPairs))
	fmt.Printf("exact result:       %8d pairs in %v\n", len(exact), exactTime)
	fmt.Printf("LSH result:         %8d pairs in %v\n", len(approx), lshTime)

	// Recall against the exact baseline.
	exactSet := map[[2]int]bool{}
	for _, p := range exact {
		exactSet[[2]int{p.A, p.B}] = true
	}
	hits := 0
	for _, p := range approx {
		if exactSet[[2]int{p.A, p.B}] {
			hits++
		} else {
			log.Fatalf("false positive %v (verification must be exact)", p)
		}
	}
	recall := 1.0
	if len(exact) > 0 {
		recall = float64(hits) / float64(len(exact))
	}
	fmt.Printf("recall:             %8.1f%%\n", 100*recall)

	fmt.Println("\ncorrelated pairs found (by group):")
	for _, p := range approx {
		fmt.Printf("  sensors %3d ~ %3d   r=%+.3f  group=%d\n", p.A, p.B, p.R, inGroup[p.A])
	}
	if recall < 0.9 {
		log.Fatal("recall below 90%")
	}
}

#!/usr/bin/env bash
# check_docs.sh — docs-consistency gate (run from the repository root).
#
# The docs promise command lines; this script fails if they drift from
# what the binaries actually accept:
#
#   1. every `-flag` on a documented optique-demo/optique-bench command
#      line must appear in one of the tools' -h output;
#   2. every documented `-exp NAME` must appear in
#      `optique-bench -exp list`;
#   3. every `BenchmarkXxx` name the docs cite must exist in a
#      *_test.go file;
#   4. the race-detector package list in ROADMAP.md's "Concurrency
#      verify" recipe must match the one CI actually runs.
set -u

DOCS="README.md EXPERIMENTS.md docs/starql.md docs/recovery.md docs/governance.md docs/vectorized.md docs/observability.md docs/planner.md docs/transport.md"
fail=0

# ---- 1+2: flags on documented tool invocations ----

# `go run ... -h` exits 2 after printing usage to stderr; keep the text.
demo_help=$(go run ./cmd/optique-demo -h 2>&1)
bench_help=$(go run ./cmd/optique-bench -h 2>&1)
known_flags=$(printf '%s\n%s\n' "$demo_help" "$bench_help" |
	sed -n 's/^  \(-[a-z][a-z-]*\).*/\1/p' | sort -u)
known_exps=$(go run ./cmd/optique-bench -exp list)

if [ -z "$known_flags" ] || [ -z "$known_exps" ]; then
	echo "check_docs: could not read tool usage output" >&2
	exit 1
fi

for doc in $DOCS; do
	# Only lines that name one of the tools promise its interface.
	lines=$(grep -n 'optique-demo\|optique-bench' "$doc" || true)
	while IFS= read -r line; do
		[ -z "$line" ] && continue
		lineno=${line%%:*}
		text=${line#*:}
		# Flag tokens: "-name" or "-name=value", preceded by a space,
		# backtick, or line start (so `->`, `-1`, and hyphenated prose
		# don't match).
		for flag in $(printf '%s\n' "$text" |
			grep -oE '(^|[ `(])-[a-z][a-z-]+' | sed 's/^[ `(]*//' | sort -u); do
			if ! printf '%s\n' "$known_flags" | grep -qx -- "$flag"; then
				echo "$doc:$lineno: documents unknown flag $flag" >&2
				fail=1
			fi
		done
		for exp in $(printf '%s\n' "$text" |
			grep -oE '\-exp [a-z]+' | awk '{print $2}' | sort -u); do
			if ! printf '%s\n' "$known_exps" | grep -qx -- "$exp"; then
				echo "$doc:$lineno: documents unknown experiment '-exp $exp'" >&2
				fail=1
			fi
		done
	done <<EOF
$lines
EOF
done

# ---- 3: benchmark names cited in docs exist in test files ----

bench_defs=$(grep -rhoE 'func (Benchmark[A-Za-z0-9_]+)' --include='*_test.go' . |
	awk '{print $2}' | sort -u)
for doc in $DOCS; do
	for name in $(grep -oE 'Benchmark[A-Za-z0-9]+' "$doc" | sort -u); do
		if ! printf '%s\n' "$bench_defs" | grep -qx -- "$name"; then
			echo "$doc: cites unknown benchmark $name" >&2
			fail=1
		fi
	done
done

# ---- 4: ROADMAP race recipe matches the CI race step ----

roadmap_race=$(sed -n 's/.*go test -race //p' ROADMAP.md |
	grep -oE '\./internal/[a-z]+/' | sort -u)
ci_race=$(sed -n 's/.*go test -race //p' .github/workflows/ci.yml |
	grep -oE '\./internal/[a-z]+/' | sort -u)
if [ -z "$roadmap_race" ] || [ -z "$ci_race" ]; then
	echo "check_docs: could not extract race package lists" >&2
	fail=1
elif [ "$roadmap_race" != "$ci_race" ]; then
	echo "check_docs: ROADMAP.md concurrency-verify packages drifted from ci.yml:" >&2
	diff <(printf '%s\n' "$roadmap_race") <(printf '%s\n' "$ci_race") >&2 || true
	fail=1
fi

if [ "$fail" -ne 0 ]; then
	echo "check_docs: FAILED — docs reference interfaces the tools don't report" >&2
	exit 1
fi
echo "check_docs: OK ($(printf '%s\n' "$known_flags" | wc -l) flags, $(printf '%s\n' "$known_exps" | wc -l) experiments, $(printf '%s\n' "$bench_defs" | wc -l) benchmarks)"

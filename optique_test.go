package optique_test

import (
	"testing"

	optique "repro"
	"repro/internal/siemens"
)

func TestFacadeParseSTARQL(t *testing.T) {
	task, ok := siemens.TaskByID("T01_mon_temperature")
	if !ok {
		t.Fatal("catalog task missing")
	}
	q, err := optique.ParseSTARQL(task.Query)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != task.ID {
		t.Errorf("query name = %q", q.Name)
	}
	if _, err := optique.ParseSTARQL("CREATE NONSENSE"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFacadeParseOntology(t *testing.T) {
	tb, err := optique.ParseOntology(`
Prefix(sie: <http://siemens.com/ontology#>)
SubClassOf(sie:GasTurbine sie:Turbine)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.IsSubClassOf("http://siemens.com/ontology#GasTurbine", "http://siemens.com/ontology#Turbine") {
		t.Error("axiom lost")
	}
	if _, err := optique.ParseOntology("Bogus(x)"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFacadeSystemLifecycle(t *testing.T) {
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optique.NewSystem(optique.Config{Nodes: 2, Placement: optique.PlaceRoundRobin},
		siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	task, _ := siemens.TaskByID("T02_thr_temperature")
	reg, err := sys.RegisterTask(task.ID, task.Query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reg.FleetSize() == 0 || len(reg.Bindings) == 0 {
		t.Errorf("fleet=%d bindings=%d", reg.FleetSize(), len(reg.Bindings))
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
}

package optique_test

import (
	"testing"

	optique "repro"
	"repro/internal/siemens"
)

func TestFacadeParseSTARQL(t *testing.T) {
	task, ok := siemens.TaskByID("T01_mon_temperature")
	if !ok {
		t.Fatal("catalog task missing")
	}
	q, err := optique.ParseSTARQL(task.Query)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != task.ID {
		t.Errorf("query name = %q", q.Name)
	}
	if _, err := optique.ParseSTARQL("CREATE NONSENSE"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFacadeParseOntology(t *testing.T) {
	tb, err := optique.ParseOntology(`
Prefix(sie: <http://siemens.com/ontology#>)
SubClassOf(sie:GasTurbine sie:Turbine)
`)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.IsSubClassOf("http://siemens.com/ontology#GasTurbine", "http://siemens.com/ontology#Turbine") {
		t.Error("axiom lost")
	}
	if _, err := optique.ParseOntology("Bogus(x)"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFacadeSystemLifecycle(t *testing.T) {
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optique.NewSystem(optique.Config{Nodes: 2, Placement: optique.PlaceRoundRobin},
		siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	task, _ := siemens.TaskByID("T02_thr_temperature")
	reg, err := sys.RegisterTask(task.ID, task.Query, nil)
	if err != nil {
		t.Fatal(err)
	}
	if reg.FleetSize() == 0 || len(reg.Bindings) == 0 {
		t.Errorf("fleet=%d bindings=%d", reg.FleetSize(), len(reg.Bindings))
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceCompletenessFigure1 drives the paper's Figure 1 diagnostic
// task end to end and asserts the full query-lifecycle trace: the
// translator's rewrite and unfold spans, the registration span, and
// window-execution spans from the hosting engine — plus live counters
// in the merged telemetry snapshot.
func TestTraceCompletenessFigure1(t *testing.T) {
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := optique.NewSystem(optique.Config{Nodes: 2},
		siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	task, _ := siemens.TaskByID("T01_mon_temperature")
	if _, err := sys.RegisterTask(task.ID, task.Query, nil); err != nil {
		t.Fatal(err)
	}
	events := gen.PlantDefaultEvents(0, 10_000)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 10_000, StepMS: 500,
		Sensors: gen.SensorsOfTurbine(0), Events: events, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, el := range tuples {
		if err := sys.Ingest(siemens.RouteName(routes[i]), el); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}

	var trace optique.TraceSnapshot
	found := false
	for _, ts := range sys.Traces() {
		if ts.ID == task.ID {
			trace, found = ts, true
		}
	}
	if !found {
		t.Fatalf("no trace retained for %s", task.ID)
	}
	// The chain must be complete and ordered: translation spans first,
	// then registration, then at least one window execution.
	order := map[string]int{}
	for i, s := range trace.Spans {
		if _, seen := order[s.Name]; !seen {
			order[s.Name] = i
		}
	}
	for _, name := range []string{"rewrite", "unfold", "register", "window-exec"} {
		if _, ok := order[name]; !ok {
			t.Fatalf("trace missing span %q (spans: %v)", name, trace.SpanNames())
		}
	}
	if !(order["rewrite"] < order["unfold"] &&
		order["unfold"] < order["register"] &&
		order["register"] < order["window-exec"]) {
		t.Errorf("span order wrong: %v", trace.SpanNames())
	}
	rw, _ := trace.FirstSpan("rewrite")
	if rw.Attrs["result"] == nil {
		t.Errorf("rewrite span lacks stats attrs: %v", rw.Attrs)
	}
	we, _ := trace.FirstSpan("window-exec")
	if we.Attrs["rows_in"] == nil || we.Attrs["plan_cache_hit"] == nil {
		t.Errorf("window-exec span lacks execution attrs: %v", we.Attrs)
	}

	snap := sys.TelemetrySnapshot()
	for _, name := range []string{"exastream.tuples_in", "exastream.windows_executed", "starql.translations"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0 in merged snapshot", name)
		}
	}
	if snap.Histograms["exastream.window.exec_ns"].Count == 0 {
		t.Error("window execution latency histogram is empty")
	}
}

// Package optique is the public API of this reproduction of
// "Ontology-Based Integration of Streaming and Static Relational Data
// with Optique" (Kharlamov et al., SIGMOD 2016).
//
// OPTIQUE lets an engineer express a diagnostic task over an industrial
// ontology as a single STARQL continuous query; the system enriches the
// query with the ontology (PerfectRef rewriting), unfolds it through
// GAV mappings into a fleet of SQL(+) queries, and executes the fleet
// on ExaStream, a distributed stream engine with CQL window semantics,
// shared window materialisation (wCache), and adaptive in-memory
// indexing.
//
// The typical flow:
//
//	gen, _ := siemens.New(siemens.SmallConfig())       // demo workload
//	cat, _ := gen.StaticCatalog()
//	sys, _ := optique.NewSystem(optique.Config{Nodes: 4},
//	    siemens.TBox(), siemens.Mappings(), cat)
//	defer sys.Close()
//	for _, sc := range siemens.StreamSchemas() {
//	    sys.DeclareStream(sc)
//	}
//	task, _ := sys.RegisterTask("fig1", starqlText, func(id string, end int64, ts []rdf.Triple) {
//	    ... // alert!
//	})
//	sys.Ingest("msmt_a", tuple)                        // replay or live feed
//
// Subpackages under internal/ implement every substrate from scratch:
// the RDF model, OWL 2 QL reasoning, conjunctive-query rewriting,
// mappings and unfolding, a SQL(+) parser and relational engine, CQL
// windows, the DSMS, the cluster runtime, the STARQL language, BootOX
// bootstrapping, and LSH stream correlation.
package optique

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/exastream"
	"repro/internal/obda/mapping"
	"repro/internal/ontology"
	"repro/internal/relation"
	"repro/internal/starql"
	"repro/internal/telemetry"
)

// System is one OPTIQUE deployment; see core.System.
type System = core.System

// Task is a registered diagnostic task.
type Task = core.Task

// Config configures the runtime.
type Config = core.Config

// AnswerSink receives CONSTRUCT triples from running tasks.
type AnswerSink = core.AnswerSink

// Placement strategies for the cluster scheduler.
const (
	PlaceLeastLoaded = cluster.PlaceLeastLoaded
	PlaceRoundRobin  = cluster.PlaceRoundRobin
)

// EngineOptions configures each worker's ExaStream instance.
type EngineOptions = exastream.Options

// VecMode selects columnar batch execution for window evaluation (see
// Config.Vectorized); the zero value is on.
type VecMode = exastream.VecMode

// Vectorized execution modes.
const (
	VecOn  = exastream.VecOn
	VecOff = exastream.VecOff
)

// Health summarises the runtime's failure state; see System.Health.
type Health = cluster.Health

// TelemetrySnapshot is a point-in-time view of every metric the system
// records; see System.TelemetrySnapshot.
type TelemetrySnapshot = telemetry.Snapshot

// TraceSnapshot is one task's query-lifecycle trace (rewrite → unfold →
// register → window-exec spans); see System.Traces.
type TraceSnapshot = telemetry.TraceSnapshot

// TelemetryServer is the running observability endpoint returned by
// System.ServeTelemetry; callers shut it down on exit.
type TelemetryServer = telemetry.Server

// QueryLag is one task's fleet lag-view row (watermark lag, window
// backlog, budget headroom, degrade state); see System.QueryLags.
type QueryLag = telemetry.QueryLag

// Event is one flight-recorder entry; see System.Events and
// Config.FlightRecorder.
type Event = telemetry.Event

// FaultInjector hooks worker loops for chaos testing; internal/faults
// provides a deterministic, seedable implementation.
type FaultInjector = cluster.FaultInjector

// Backpressure selects the policy applied when a worker's ingest queue
// is full.
type Backpressure = cluster.Backpressure

// Backpressure policies.
const (
	BackpressureBlock      = cluster.BackpressureBlock
	BackpressureDropNewest = cluster.BackpressureDropNewest
	BackpressureDropOldest = cluster.BackpressureDropOldest
)

// NewSystem deploys OPTIQUE over an ontology, mappings, and a static
// catalog.
func NewSystem(cfg Config, tbox *ontology.TBox, set *mapping.Set, catalog *relation.Catalog) (*System, error) {
	return core.NewSystem(cfg, tbox, set, catalog)
}

// ParseSTARQL parses a STARQL document (the paper's Figure 1 syntax).
func ParseSTARQL(src string) (*starql.Query, error) { return starql.Parse(src) }

// ParseOntology parses the functional-style ontology syntax of
// internal/ontology.
func ParseOntology(src string) (*ontology.TBox, error) {
	tb, _, err := ontology.Parse(src)
	return tb, err
}

// The EXPLAIN ANALYZE differential oracle: the per-operator counters
// the introspection plane reports for the vectorized path must match
// what the tuple-at-a-time row path produces on an identical replay —
// the same oracle the vectorization PR used for result equivalence,
// applied to the observability counters.
package optique_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/exastream"
	"repro/internal/siemens"
	"repro/internal/starql"
)

// figure1Replay registers the Figure 1 task's unfolded stream fleet on
// one ExaStream engine and replays a deterministic 30 s of sensor data.
func figure1Replay(t *testing.T, opts exastream.Options) (*exastream.Engine, []string) {
	t.Helper()
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	tr := starql.NewTranslator(siemens.TBox(), siemens.Mappings(), cat)
	task, _ := siemens.TaskByID("T01_mon_temperature")
	q, err := starql.Parse(task.Query)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := tr.Translate(q, starql.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tl.StreamFleet) == 0 {
		t.Fatal("empty stream fleet")
	}
	e := exastream.NewEngine(cat, opts)
	for _, sc := range siemens.StreamSchemas() {
		if err := e.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	var ids []string
	for i, stmt := range tl.StreamFleet {
		id := fmt.Sprintf("f%04d", i)
		if err := e.Register(id, stmt, tl.Pulse, nil); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	events := gen.PlantDefaultEvents(0, 30_000)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: 0, ToMS: 30_000, StepMS: 500,
		Sensors: gen.SensorsOfTurbine(0), Events: events, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, el := range tuples {
		if err := e.Ingest(siemens.RouteName(routes[i]), el); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	return e, ids
}

// TestExplainAnalyzeMatchesRowPathOracle replays Figure 1 twice — once
// on the columnar batch path, once on the row path — and requires the
// per-operator Calls/RowsOut the introspection plane accumulated to be
// identical, then that EXPLAIN ANALYZE actually renders those counts.
func TestExplainAnalyzeMatchesRowPathOracle(t *testing.T) {
	vecEng, ids := figure1Replay(t, exastream.Options{ShareWindows: true})
	rowEng, rowIDs := figure1Replay(t, exastream.Options{
		ShareWindows: true, Vectorized: exastream.VecOff,
	})
	if len(ids) != len(rowIDs) {
		t.Fatalf("fleet size differs: %d vs %d", len(ids), len(rowIDs))
	}

	var anyWindows bool
	for _, id := range ids {
		vecStats, vecWindows, err := vecEng.QueryStats(id)
		if err != nil {
			t.Fatal(err)
		}
		rowStats, rowWindows, err := rowEng.QueryStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if vecWindows != rowWindows {
			t.Errorf("%s: windows executed: vec=%d row=%d", id, vecWindows, rowWindows)
		}
		if vecWindows > 0 {
			anyWindows = true
		}
		for k := engine.OpKind(0); k < engine.NumOpKinds; k++ {
			v, r := vecStats.Ops[k], rowStats.Ops[k]
			if v.Calls != r.Calls || v.RowsOut != r.RowsOut {
				t.Errorf("%s: op %s: vec calls=%d rows=%d, row calls=%d rows=%d",
					id, k, v.Calls, v.RowsOut, r.Calls, r.RowsOut)
			}
		}
	}
	if !anyWindows {
		t.Fatal("replay executed no windows; oracle is vacuous")
	}

	// The rendered EXPLAIN ANALYZE must carry the observed counts, not
	// just hold them internally.
	for _, id := range ids {
		stats, windows, err := vecEng.QueryStats(id)
		if err != nil {
			t.Fatal(err)
		}
		if windows == 0 {
			continue
		}
		text, err := vecEng.ExplainQuery(id, true)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(text, fmt.Sprintf("windows=%d", windows)) {
			t.Errorf("%s: EXPLAIN ANALYZE missing windows=%d:\n%s", id, windows, text)
		}
		for k := engine.OpKind(0); k < engine.NumOpKinds; k++ {
			if stats.Ops[k].Calls == 0 {
				continue
			}
			want := fmt.Sprintf("calls=%d rows=%d", stats.Ops[k].Calls, stats.Ops[k].RowsOut)
			if !strings.Contains(text, want) {
				t.Errorf("%s: EXPLAIN ANALYZE missing %q for op %s:\n%s", id, want, k, text)
			}
		}
		if !strings.Contains(text, "[vectorized") {
			t.Errorf("%s: vectorized engine EXPLAIN lacks [vectorized] marker:\n%s", id, text)
		}
	}

	// Plain EXPLAIN carries no stats.
	plain, err := vecEng.ExplainQuery(ids[0], false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain, "calls=") {
		t.Errorf("plain EXPLAIN leaked analyze stats:\n%s", plain)
	}
	if !strings.Contains(plain, "-- sql:") {
		t.Errorf("plain EXPLAIN missing sql header:\n%s", plain)
	}
}

package relation

import (
	"math/bits"
)

// This file is the columnar half of the data model: typed column
// vectors with null bitmaps, selection bitmaps, and the batch-of-columns
// container the vectorized window kernels execute over. A Vector stores
// one column of a batch in a typed backing slice (int64/float64/string/
// bool) when every non-NULL value shares a type, or falls back to a
// generic []Value for mixed columns, so kernels can run tight loops on
// the common case without losing row-path semantics on the odd one.

// Byte-estimate model for the columnar layout, mirroring the flat model
// in package stream: the estimates only need to be consistent and
// monotone in the real footprint, never allocator-exact.
const (
	// VectorOverheadBytes covers a Vector header: the type tag plus the
	// backing slice headers.
	VectorOverheadBytes = 64
	// ColBatchOverheadBytes covers a ColBatch header.
	ColBatchOverheadBytes = 48
	// BitmapOverheadBytes covers a Bitmap header.
	BitmapOverheadBytes = 24
	// vecStringBytes is the string header cost per TString element
	// (payload bytes are added on top).
	vecStringBytes = 16
	// vecValueBytes is the cost per element of a generic (mixed-type)
	// column, matching the stream layer's per-value estimate.
	vecValueBytes = 48
)

// Bitmap is a fixed-length bitset used for null masks and row
// selections. The zero value is unusable; call NewBitmap.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an all-clear bitmap of length n.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the bitmap's length in bits.
func (b *Bitmap) Len() int { return b.n }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll sets every bit in [0, Len).
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trimTail()
}

// trimTail clears the unused bits of the last word so Count stays exact.
func (b *Bitmap) trimTail() {
	if tail := uint(b.n) & 63; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << tail) - 1
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Next returns the smallest set bit >= i, or -1 when none remains. It
// lets kernels iterate a selection in ascending row order:
//
//	for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) { ... }
func (b *Bitmap) Next(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	w := i >> 6
	word := b.words[w] >> (uint(i) & 63)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(b.words); w++ {
		if b.words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(b.words[w])
		}
	}
	return -1
}

// Clone returns an independent copy.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}

// Reset returns an all-clear bitmap of length n, reusing b's backing
// when it fits (b may be nil). Callers own the lifecycle: only reuse a
// bitmap whose previous consumers are done with it.
func (b *Bitmap) Reset(n int) *Bitmap {
	w := (n + 63) / 64
	if b == nil || cap(b.words) < w {
		return NewBitmap(n)
	}
	b.words = b.words[:w]
	clear(b.words)
	b.n = n
	return b
}

// Bytes estimates the bitmap's footprint under the columnar accounting
// model.
func (b *Bitmap) Bytes() int64 {
	if b == nil {
		return 0
	}
	return BitmapOverheadBytes + int64(len(b.words))*8
}

// Vector is one column of a batch. When Type is TInt/TTime/TFloat/
// TString/TBool every non-NULL element lives in the matching typed
// slice; TNull marks a mixed-type column backed by Generic. NULLs are
// tracked in the nulls bitmap (nil when the column has none).
type Vector struct {
	typ     Type
	ints    []int64 // TInt and TTime (milliseconds)
	floats  []float64
	strs    []string
	bools   []bool
	generic []Value
	nulls   *Bitmap
	n       int
}

// Len returns the number of elements.
func (v *Vector) Len() int { return v.n }

// ElemType returns the column's element type; TNull means mixed (use
// Value) — a column of only NULLs also reports TNull with no backing.
func (v *Vector) ElemType() Type { return v.typ }

// HasNulls reports whether any element is NULL.
func (v *Vector) HasNulls() bool { return v.nulls != nil && v.nulls.Count() > 0 }

// IsNull reports whether element i is NULL.
func (v *Vector) IsNull(i int) bool {
	if v.nulls != nil && v.nulls.Get(i) {
		return true
	}
	if v.generic != nil {
		return v.generic[i].Type == TNull
	}
	return false
}

// Nulls returns the null bitmap (nil when the column has none).
func (v *Vector) Nulls() *Bitmap { return v.nulls }

// Ints returns the int64 backing slice; valid only when ElemType is
// TInt or TTime. Entries at NULL positions are unspecified.
func (v *Vector) Ints() []int64 { return v.ints }

// Floats returns the float64 backing slice; valid only for TFloat.
func (v *Vector) Floats() []float64 { return v.floats }

// Strs returns the string backing slice; valid only for TString.
func (v *Vector) Strs() []string { return v.strs }

// Bools returns the bool backing slice; valid only for TBool.
func (v *Vector) Bools() []bool { return v.bools }

// Value reconstructs element i as a row-model Value; the round trip is
// exact (a transposed batch materialises back to identical tuples).
func (v *Vector) Value(i int) Value {
	if v.IsNull(i) {
		return Null
	}
	switch v.typ {
	case TInt:
		return Value{Type: TInt, Int: v.ints[i]}
	case TTime:
		return Value{Type: TTime, Int: v.ints[i]}
	case TFloat:
		return Value{Type: TFloat, Float: v.floats[i]}
	case TString:
		return Value{Type: TString, Str: v.strs[i]}
	case TBool:
		return Value{Type: TBool, Bool: v.bools[i]}
	default:
		if v.generic != nil {
			return v.generic[i]
		}
		return Null
	}
}

// Bytes estimates the vector's footprint: header, typed payload, and
// null bitmap.
func (v *Vector) Bytes() int64 {
	n := int64(VectorOverheadBytes)
	switch v.typ {
	case TInt, TTime:
		n += int64(len(v.ints)) * 8
	case TFloat:
		n += int64(len(v.floats)) * 8
	case TString:
		n += int64(len(v.strs)) * vecStringBytes
		for _, s := range v.strs {
			n += int64(len(s))
		}
	case TBool:
		n += int64(len(v.bools))
	default:
		n += int64(len(v.generic)) * vecValueBytes
		for _, g := range v.generic {
			n += int64(len(g.Str))
		}
	}
	n += v.nulls.Bytes()
	return n
}

// VectorBuilder accumulates one column's values, fixing a typed
// backing on the first non-NULL value and degrading to the generic
// layout on the first type mismatch.
type VectorBuilder struct {
	v     Vector
	typed bool // a typed backing has been chosen
	hint  int  // capacity hint for the backing slice
}

// NewVectorBuilder returns a builder; n is a capacity hint.
func NewVectorBuilder(n int) *VectorBuilder {
	return &VectorBuilder{hint: n}
}

// reserve pre-sizes the just-chosen typed backing to the capacity hint,
// avoiding append growth on the common fixed-size batch fill.
func (b *VectorBuilder) reserve() {
	v := &b.v
	if b.hint <= 0 {
		return
	}
	switch v.typ {
	case TInt, TTime:
		v.ints = make([]int64, 0, b.hint)
	case TFloat:
		v.floats = make([]float64, 0, b.hint)
	case TString:
		v.strs = make([]string, 0, b.hint)
	case TBool:
		v.bools = make([]bool, 0, b.hint)
	}
}

// Append adds one value to the column.
func (b *VectorBuilder) Append(val Value) {
	v := &b.v
	i := v.n
	v.n++
	if val.Type == TNull {
		if v.nulls == nil {
			v.nulls = NewBitmap(0)
		}
		b.growNulls()
		v.nulls.Set(i)
		b.pad()
		return
	}
	if v.nulls != nil {
		b.growNulls()
	}
	if !b.typed && v.generic == nil {
		// First non-NULL value fixes the column type; backfill slots
		// for any leading NULLs.
		b.typed = true
		v.typ = val.Type
		b.reserve()
		for k := 0; k < i; k++ {
			b.pad()
		}
	}
	if v.generic == nil && v.typ != val.Type {
		b.degrade()
	}
	if v.generic != nil {
		v.generic = append(v.generic, val)
		return
	}
	switch v.typ {
	case TInt, TTime:
		v.ints = append(v.ints, val.Int)
	case TFloat:
		v.floats = append(v.floats, val.Float)
	case TString:
		v.strs = append(v.strs, val.Str)
	case TBool:
		v.bools = append(v.bools, val.Bool)
	}
}

// pad appends one zero element to the chosen backing so typed slices
// stay index-aligned across NULL positions. Before a backing is chosen
// it is a no-op (the backfill in Append covers those slots later).
func (b *VectorBuilder) pad() {
	v := &b.v
	if v.generic != nil {
		v.generic = append(v.generic, Null)
		return
	}
	if !b.typed {
		return
	}
	switch v.typ {
	case TInt, TTime:
		v.ints = append(v.ints, 0)
	case TFloat:
		v.floats = append(v.floats, 0)
	case TString:
		v.strs = append(v.strs, "")
	case TBool:
		v.bools = append(v.bools, false)
	}
}

// growNulls extends the null bitmap to cover the current length.
func (b *VectorBuilder) growNulls() {
	v := &b.v
	for v.nulls.n < v.n {
		if v.nulls.n&63 == 0 {
			v.nulls.words = append(v.nulls.words, 0)
		}
		v.nulls.n++
	}
}

// degrade converts the typed backing built so far into the generic
// layout (first type mismatch in the column). The current element
// (index n-1) has not been appended yet.
func (b *VectorBuilder) degrade() {
	v := &b.v
	g := make([]Value, 0, v.n)
	for i := 0; i < v.n-1; i++ {
		g = append(g, v.Value(i))
	}
	v.generic = g
	v.ints, v.floats, v.strs, v.bools = nil, nil, nil, nil
	v.typ = TNull
	b.typed = false
}

// Build finalises the column. The builder must not be reused.
func (b *VectorBuilder) Build() *Vector {
	return &b.v
}

// NewConstVector returns an n-element vector holding one repeated value
// (compiled constant expressions broadcast into one of these).
func NewConstVector(val Value, n int) *Vector {
	b := NewVectorBuilder(n)
	for i := 0; i < n; i++ {
		b.Append(val)
	}
	return b.Build()
}

// NewGenericVector wraps per-row values (NULLs included, as Null
// entries) as a mixed-layout column.
func NewGenericVector(vals []Value) *Vector {
	return &Vector{typ: TNull, generic: vals, n: len(vals)}
}

// NewIntVector wraps an int64 slice as a TInt column; nulls may be nil.
// Entries at NULL positions are ignored. The slice is retained.
func NewIntVector(vals []int64, nulls *Bitmap) *Vector {
	return &Vector{typ: TInt, ints: vals, nulls: nulls, n: len(vals)}
}

// NewTimeVector wraps millisecond timestamps as a TTime column.
func NewTimeVector(vals []int64, nulls *Bitmap) *Vector {
	return &Vector{typ: TTime, ints: vals, nulls: nulls, n: len(vals)}
}

// NewFloatVector wraps a float64 slice as a TFloat column.
func NewFloatVector(vals []float64, nulls *Bitmap) *Vector {
	return &Vector{typ: TFloat, floats: vals, nulls: nulls, n: len(vals)}
}

// NewStringVector wraps a string slice as a TString column.
func NewStringVector(vals []string, nulls *Bitmap) *Vector {
	return &Vector{typ: TString, strs: vals, nulls: nulls, n: len(vals)}
}

// NewBoolVector wraps a bool slice as a TBool column.
func NewBoolVector(vals []bool, nulls *Bitmap) *Vector {
	return &Vector{typ: TBool, bools: vals, nulls: nulls, n: len(vals)}
}

// ResetBool repoints v at a TBool payload in place — NewBoolVector
// without the header allocation, for kernels that reuse one result
// header across serialized executions. v's previous contents are
// discarded; like Bitmap.Reset, only reuse a header whose previous
// consumers are done with it.
func (v *Vector) ResetBool(vals []bool, nulls *Bitmap) *Vector {
	*v = Vector{typ: TBool, bools: vals, nulls: nulls, n: len(vals)}
	return v
}

// ColBatch is a batch of rows in columnar form: one Vector per column,
// all the same length.
type ColBatch struct {
	cols []*Vector
	n    int
}

// NewColBatch wraps pre-built column vectors (all of length n).
func NewColBatch(cols []*Vector, n int) *ColBatch { return &ColBatch{cols: cols, n: n} }

// Transpose converts a row batch into columnar form. An empty batch
// yields a zero-row, zero-column ColBatch (arity is unknowable without
// rows, and no kernel reads columns of an empty batch).
func Transpose(rows []Tuple) *ColBatch {
	if len(rows) == 0 {
		return &ColBatch{}
	}
	arity := len(rows[0])
	builders := make([]*VectorBuilder, arity)
	for j := range builders {
		builders[j] = NewVectorBuilder(len(rows))
	}
	for _, row := range rows {
		for j := 0; j < arity; j++ {
			builders[j].Append(row[j])
		}
	}
	cols := make([]*Vector, arity)
	for j, b := range builders {
		cols[j] = b.Build()
	}
	return &ColBatch{cols: cols, n: len(rows)}
}

// Len returns the row count.
func (cb *ColBatch) Len() int { return cb.n }

// Arity returns the column count.
func (cb *ColBatch) Arity() int { return len(cb.cols) }

// Col returns column j.
func (cb *ColBatch) Col(j int) *Vector { return cb.cols[j] }

// Row materialises row i as a tuple.
func (cb *ColBatch) Row(i int) Tuple {
	t := make(Tuple, len(cb.cols))
	for j, c := range cb.cols {
		t[j] = c.Value(i)
	}
	return t
}

// Rows materialises the whole batch back into row form.
func (cb *ColBatch) Rows() []Tuple {
	out := make([]Tuple, cb.n)
	for i := range out {
		out[i] = cb.Row(i)
	}
	return out
}

// Bytes estimates the columnar batch's footprint: header plus every
// column vector (typed payloads and null bitmaps included).
func (cb *ColBatch) Bytes() int64 {
	if cb == nil {
		return 0
	}
	n := int64(ColBatchOverheadBytes)
	for _, c := range cb.cols {
		n += c.Bytes()
	}
	return n
}

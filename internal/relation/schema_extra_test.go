package relation

import (
	"strings"
	"testing"
)

func TestSchemaHasAndString(t *testing.T) {
	s := NewSchema(Col("a", TInt), Col("b", TString))
	if !s.Has("a") || s.Has("zz") {
		t.Error("Has")
	}
	str := s.String()
	if !strings.Contains(str, "a INTEGER") || !strings.Contains(str, "b TEXT") {
		t.Errorf("String = %q", str)
	}
}

func TestTupleCloneConcatString(t *testing.T) {
	a := Tuple{Int(1), String_("x")}
	c := a.Clone()
	c[0] = Int(9)
	if a[0] != Int(1) {
		t.Error("Clone shares storage")
	}
	cat := a.Concat(Tuple{Bool_(true)})
	if len(cat) != 3 {
		t.Errorf("Concat = %v", cat)
	}
	if a.String() != "(1, 'x')" {
		t.Errorf("String = %q", a.String())
	}
}

func TestCatalogPutReplaces(t *testing.T) {
	c := NewCatalog()
	t1 := NewTable("T", NewSchema(Col("a", TInt)))
	c.Put(t1)
	t2 := NewTable("t", NewSchema(Col("b", TInt)))
	c.Put(t2) // case-insensitive replace
	got, err := c.Get("T")
	if err != nil || got != t2 {
		t.Errorf("Put did not replace: %v, %v", got, err)
	}
}

func TestParseValueAllTypes(t *testing.T) {
	cases := []struct {
		in   string
		want Value
		typ  Type
	}{
		{"42", Int(42), TInt},
		{"2.5", Float(2.5), TFloat},
		{"true", Bool_(true), TBool},
		{"99", Time(99), TTime},
		{"hello", String_("hello"), TString},
		{"", Null, TInt},
		{"  ", Null, TFloat},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in, c.typ)
		if err != nil || got != c.want {
			t.Errorf("ParseValue(%q, %v) = %v, %v", c.in, c.typ, got, err)
		}
	}
	for _, bad := range []struct {
		in  string
		typ Type
	}{{"x", TInt}, {"x", TFloat}, {"x", TBool}, {"x", TTime}} {
		if _, err := ParseValue(bad.in, bad.typ); err == nil {
			t.Errorf("ParseValue(%q, %v) accepted", bad.in, bad.typ)
		}
	}
}

func TestMustInsertPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustInsert did not panic")
		}
	}()
	tb := NewTable("t", NewSchema(Col("a", TInt)))
	tb.MustInsert(Tuple{String_("wrong")})
}

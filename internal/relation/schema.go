package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Type Type
}

// Schema is an ordered list of columns. Column names are matched
// case-insensitively, and may be qualified ("t.col"); lookup by bare name
// matches a single qualified column when unambiguous.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) Schema { return Schema{Columns: cols} }

// Col is shorthand for constructing a Column.
func Col(name string, t Type) Column { return Column{Name: name, Type: t} }

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// IndexOf returns the position of the named column, or an error when the
// name is unknown or ambiguous. Qualified lookups ("t.a") match exactly;
// bare lookups match the suffix after the last dot.
func (s Schema) IndexOf(name string) (int, error) {
	lower := strings.ToLower(name)
	// Exact (possibly qualified) match first.
	for i, c := range s.Columns {
		if strings.ToLower(c.Name) == lower {
			return i, nil
		}
	}
	if strings.Contains(name, ".") {
		return -1, fmt.Errorf("relation: unknown column %q", name)
	}
	// Bare name against qualified columns.
	found := -1
	for i, c := range s.Columns {
		cn := strings.ToLower(c.Name)
		if j := strings.LastIndex(cn, "."); j >= 0 && cn[j+1:] == lower {
			if found >= 0 {
				return -1, fmt.Errorf("relation: ambiguous column %q", name)
			}
			found = i
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("relation: unknown column %q", name)
	}
	return found, nil
}

// Has reports whether the schema can resolve the column name.
func (s Schema) Has(name string) bool {
	_, err := s.IndexOf(name)
	return err == nil
}

// Qualify returns a copy of the schema with every bare column name
// prefixed by alias and a dot; already-qualified names are re-qualified.
func (s Schema) Qualify(alias string) Schema {
	out := Schema{Columns: make([]Column, len(s.Columns))}
	for i, c := range s.Columns {
		base := c.Name
		if j := strings.LastIndex(base, "."); j >= 0 {
			base = base[j+1:]
		}
		out.Columns[i] = Column{Name: alias + "." + base, Type: c.Type}
	}
	return out
}

// Concat returns the schema of the concatenation of two relations (a join
// output).
func (s Schema) Concat(other Schema) Schema {
	cols := make([]Column, 0, len(s.Columns)+len(other.Columns))
	cols = append(cols, s.Columns...)
	cols = append(cols, other.Columns...)
	return Schema{Columns: cols}
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as "(a INTEGER, b TEXT)".
func (s Schema) String() string {
	parts := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Tuple is one row of a relation. The length always matches the schema
// arity of the relation it belongs to.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Concat returns the concatenation of two tuples (join output).
func (t Tuple) Concat(other Tuple) Tuple {
	out := make(Tuple, 0, len(t)+len(other))
	out = append(out, t...)
	out = append(out, other...)
	return out
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key returns a comparable aggregate of selected columns, usable as a map
// key for hash joins and group-by. It encodes values compactly into a
// string; distinct value sequences produce distinct keys.
func (t Tuple) Key(cols []int) string {
	var sb strings.Builder
	for _, c := range cols {
		v := t[c]
		sb.WriteByte(byte(v.Type) + '0')
		switch v.Type {
		case TInt, TTime:
			fmt.Fprintf(&sb, "%d", v.Int)
		case TFloat:
			fmt.Fprintf(&sb, "%g", v.Float)
		case TString:
			sb.WriteString(v.Str)
		case TBool:
			if v.Bool {
				sb.WriteByte('1')
			} else {
				sb.WriteByte('0')
			}
		}
		sb.WriteByte(0x1f) // unit separator: avoids "ab","c" vs "a","bc" collisions
	}
	return sb.String()
}

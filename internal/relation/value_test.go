package relation

import (
	"testing"
	"testing/quick"
)

func TestTypeStringAndParse(t *testing.T) {
	for _, tt := range []Type{TNull, TInt, TFloat, TString, TBool, TTime} {
		parsed, err := ParseType(tt.String())
		if err != nil || parsed != tt {
			t.Errorf("round trip %v: got %v, %v", tt, parsed, err)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("unknown type accepted")
	}
	if got, _ := ParseType("varchar"); got != TString {
		t.Error("case-insensitive parse failed")
	}
}

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v, ok := Int(7).AsFloat(); !ok || v != 7 {
		t.Error("Int.AsFloat")
	}
	if v, ok := Float(2.5).AsInt(); !ok || v != 2 {
		t.Error("Float.AsInt truncation")
	}
	if _, ok := String_("x").AsFloat(); ok {
		t.Error("String.AsFloat should fail")
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull")
	}
	if v, ok := Time(99).AsInt(); !ok || v != 99 {
		t.Error("Time.AsInt")
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{Bool_(true), Int(1), Float(0.5), String_("x"), Time(1)}
	falsy := []Value{Null, Bool_(false), Int(0), Float(0), String_("")}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should be falsy", v)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":   Null,
		"42":     Int(42),
		"2.5":    Float(2.5),
		"'a''b'": String_("a'b"),
		"TRUE":   Bool_(true),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Float(2.0), 0, true},
		{Float(3.5), Int(3), 1, true},
		{Time(5), Int(5), 0, true},
		{String_("a"), String_("b"), -1, true},
		{Bool_(false), Bool_(true), -1, true},
		{Null, Int(1), -1, true},
		{Int(1), Null, 1, true},
		{Null, Null, 0, true},
		{String_("a"), Int(1), 0, false},
	}
	for i, c := range cases {
		got, ok := Compare(c.a, c.b)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("case %d: Compare(%v,%v) = %d,%t want %d,%t", i, c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestEqualNullSemantics(t *testing.T) {
	if Equal(Null, Null) {
		t.Error("NULL = NULL should be false in SQL semantics")
	}
	if !Equal(Int(3), Float(3)) {
		t.Error("cross-numeric equality")
	}
	if Equal(String_("1"), Int(1)) {
		t.Error("string/int equality")
	}
}

func TestArithInt(t *testing.T) {
	cases := []struct {
		op   byte
		a, b int64
		want Value
	}{
		{'+', 2, 3, Int(5)},
		{'-', 2, 3, Int(-1)},
		{'*', 4, 3, Int(12)},
		{'/', 6, 3, Int(2)},
		{'/', 7, 2, Float(3.5)},
		{'%', 7, 2, Int(1)},
	}
	for _, c := range cases {
		got, err := Arith(c.op, Int(c.a), Int(c.b))
		if err != nil || got != c.want {
			t.Errorf("Arith(%c,%d,%d) = %v, %v; want %v", c.op, c.a, c.b, got, err, c.want)
		}
	}
}

func TestArithErrorsAndNull(t *testing.T) {
	if _, err := Arith('/', Int(1), Int(0)); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := Arith('%', Float(1), Float(2)); err == nil {
		t.Error("float modulo accepted")
	}
	if _, err := Arith('+', String_("a"), Int(1)); err == nil {
		t.Error("string arithmetic accepted")
	}
	if v, err := Arith('+', Null, Int(1)); err != nil || !v.IsNull() {
		t.Error("NULL propagation failed")
	}
}

func TestArithFloatMix(t *testing.T) {
	v, err := Arith('*', Int(2), Float(1.5))
	if err != nil || v != Float(3) {
		t.Errorf("mixed arithmetic = %v, %v", v, err)
	}
}

// Property: Compare is antisymmetric over ints and consistent with Equal.
func TestComparePropertyInts(t *testing.T) {
	f := func(a, b int64) bool {
		c1, _ := Compare(Int(a), Int(b))
		c2, _ := Compare(Int(b), Int(a))
		if a == b {
			return c1 == 0 && Equal(Int(a), Int(b))
		}
		return c1 == -c2 && !Equal(Int(a), Int(b)) == (c1 != 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: integer addition via Arith matches native addition (within range).
func TestArithAddProperty(t *testing.T) {
	f := func(a, b int32) bool {
		v, err := Arith('+', Int(int64(a)), Int(int64(b)))
		return err == nil && v == Int(int64(a)+int64(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package relation

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func sensorSchema() Schema {
	return NewSchema(Col("sensor_id", TInt), Col("name", TString), Col("value", TFloat))
}

func TestSchemaIndexOf(t *testing.T) {
	s := NewSchema(Col("a", TInt), Col("t.b", TString), Col("u.b", TInt), Col("c", TFloat))
	if i, err := s.IndexOf("a"); err != nil || i != 0 {
		t.Errorf("IndexOf(a) = %d, %v", i, err)
	}
	if i, err := s.IndexOf("t.b"); err != nil || i != 1 {
		t.Errorf("IndexOf(t.b) = %d, %v", i, err)
	}
	if _, err := s.IndexOf("b"); err == nil {
		t.Error("ambiguous bare lookup accepted")
	}
	if i, err := s.IndexOf("C"); err != nil || i != 3 {
		t.Errorf("case-insensitive IndexOf = %d, %v", i, err)
	}
	if _, err := s.IndexOf("zz"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := s.IndexOf("t.zz"); err == nil {
		t.Error("unknown qualified column accepted")
	}
}

func TestSchemaQualifyConcat(t *testing.T) {
	s := NewSchema(Col("a", TInt), Col("old.b", TString))
	q := s.Qualify("x")
	if q.Columns[0].Name != "x.a" || q.Columns[1].Name != "x.b" {
		t.Errorf("Qualify = %v", q.Names())
	}
	cat := s.Concat(q)
	if cat.Arity() != 4 {
		t.Errorf("Concat arity = %d", cat.Arity())
	}
}

func TestTupleKeyDistinct(t *testing.T) {
	a := Tuple{String_("ab"), String_("c")}
	b := Tuple{String_("a"), String_("bc")}
	if a.Key([]int{0, 1}) == b.Key([]int{0, 1}) {
		t.Error("key collision between (ab,c) and (a,bc)")
	}
	c := Tuple{Int(1), Float(1)}
	d := Tuple{Float(1), Int(1)}
	if c.Key([]int{0, 1}) == d.Key([]int{0, 1}) {
		t.Error("key collision across types")
	}
}

func TestTableInsertTypeChecks(t *testing.T) {
	tb := NewTable("s", sensorSchema())
	if err := tb.Insert(Tuple{Int(1), String_("a"), Float(2)}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	// Int widens to float.
	if err := tb.Insert(Tuple{Int(2), String_("b"), Int(3)}); err != nil {
		t.Fatalf("widening Insert: %v", err)
	}
	rows := tb.Rows()
	if rows[1][2] != Float(3) {
		t.Errorf("widened value = %v", rows[1][2])
	}
	// NULL allowed anywhere.
	if err := tb.Insert(Tuple{Null, Null, Null}); err != nil {
		t.Fatalf("NULL Insert: %v", err)
	}
	if err := tb.Insert(Tuple{String_("x"), String_("a"), Float(1)}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := tb.Insert(Tuple{Int(1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestTableIndexLookup(t *testing.T) {
	tb := NewTable("s", sensorSchema())
	for i := 0; i < 100; i++ {
		tb.MustInsert(Tuple{Int(int64(i % 10)), String_(fmt.Sprintf("s%d", i)), Float(float64(i))})
	}
	// Scan path first.
	rows, usedIdx, err := tb.Lookup([]string{"sensor_id"}, []Value{Int(3)})
	if err != nil || usedIdx || len(rows) != 10 {
		t.Fatalf("scan Lookup = %d rows, idx=%t, %v", len(rows), usedIdx, err)
	}
	if err := tb.CreateIndex("sensor_id"); err != nil {
		t.Fatal(err)
	}
	if !tb.HasIndex("sensor_id") {
		t.Fatal("HasIndex = false")
	}
	rows, usedIdx, err = tb.Lookup([]string{"sensor_id"}, []Value{Int(3)})
	if err != nil || !usedIdx || len(rows) != 10 {
		t.Fatalf("indexed Lookup = %d rows, idx=%t, %v", len(rows), usedIdx, err)
	}
	// Index maintained on later inserts.
	tb.MustInsert(Tuple{Int(3), String_("extra"), Float(0)})
	rows, _, _ = tb.Lookup([]string{"sensor_id"}, []Value{Int(3)})
	if len(rows) != 11 {
		t.Fatalf("post-insert Lookup = %d rows", len(rows))
	}
	// Idempotent creation.
	if err := tb.CreateIndex("sensor_id"); err != nil {
		t.Fatal(err)
	}
	if err := tb.CreateIndex("nope"); err == nil {
		t.Error("index on unknown column accepted")
	}
}

func TestTableMultiColumnLookup(t *testing.T) {
	tb := NewTable("s", sensorSchema())
	tb.MustInsert(Tuple{Int(1), String_("a"), Float(1)})
	tb.MustInsert(Tuple{Int(1), String_("b"), Float(2)})
	if err := tb.CreateIndex("sensor_id", "name"); err != nil {
		t.Fatal(err)
	}
	rows, used, err := tb.Lookup([]string{"sensor_id", "name"}, []Value{Int(1), String_("b")})
	if err != nil || !used || len(rows) != 1 || rows[0][2] != Float(2) {
		t.Fatalf("multi-column Lookup = %v, used=%t, %v", rows, used, err)
	}
}

func TestTableTruncate(t *testing.T) {
	tb := NewTable("s", sensorSchema())
	tb.MustInsert(Tuple{Int(1), String_("a"), Float(1)})
	tb.CreateIndex("sensor_id")
	tb.Truncate()
	if tb.Len() != 0 {
		t.Fatal("Truncate left rows")
	}
	rows, used, _ := tb.Lookup([]string{"sensor_id"}, []Value{Int(1)})
	if len(rows) != 0 || !used {
		t.Fatalf("post-truncate Lookup = %v, used=%t", rows, used)
	}
}

func TestTableConcurrent(t *testing.T) {
	tb := NewTable("s", sensorSchema())
	tb.CreateIndex("sensor_id")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				tb.MustInsert(Tuple{Int(int64(w)), String_("x"), Float(float64(i))})
				tb.Lookup([]string{"sensor_id"}, []Value{Int(int64(w))})
			}
		}(w)
	}
	wg.Wait()
	if tb.Len() != 1000 {
		t.Fatalf("Len = %d", tb.Len())
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	if _, err := c.Create("T", sensorSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Create("t", sensorSchema()); err == nil {
		t.Error("case-insensitive duplicate accepted")
	}
	tb, err := c.Get("T")
	if err != nil || tb.Name() != "T" {
		t.Fatalf("Get = %v, %v", tb, err)
	}
	if _, err := c.Get("missing"); err == nil {
		t.Error("missing table accepted")
	}
	if got := c.Names(); len(got) != 1 || got[0] != "T" {
		t.Errorf("Names = %v", got)
	}
	if err := c.Drop("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("t"); err == nil {
		t.Error("double drop accepted")
	}
}

func TestSortRows(t *testing.T) {
	rows := []Tuple{
		{Int(3), String_("c")},
		{Int(1), String_("b")},
		{Int(1), String_("a")},
	}
	SortRows(rows, []int{0, 1})
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if rows[i][1].Str != w {
			t.Fatalf("SortRows order: %v", rows)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	schema := sensorSchema()
	src := "sensor_id,name,value\n1,alpha,2.5\n2,beta,\n"
	tb, err := ReadCSV("s", schema, strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d", tb.Len())
	}
	rows := tb.Rows()
	if rows[0][1] != String_("alpha") || rows[0][2] != Float(2.5) {
		t.Errorf("row0 = %v", rows[0])
	}
	if !rows[1][2].IsNull() {
		t.Errorf("empty field should be NULL, got %v", rows[1][2])
	}
	var buf bytes.Buffer
	if err := WriteCSV(tb, &buf); err != nil {
		t.Fatal(err)
	}
	tb2, err := ReadCSV("s2", schema, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if tb2.Len() != tb.Len() {
		t.Fatalf("round trip row count %d vs %d", tb2.Len(), tb.Len())
	}
}

func TestCSVHeaderPermutation(t *testing.T) {
	src := "value,sensor_id,name\n2.5,1,alpha\n"
	tb, err := ReadCSV("s", sensorSchema(), strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	row := tb.Rows()[0]
	if row[0] != Int(1) || row[1] != String_("alpha") || row[2] != Float(2.5) {
		t.Errorf("permuted header row = %v", row)
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("s", sensorSchema(), strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("wrong column count accepted")
	}
	if _, err := ReadCSV("s", sensorSchema(), strings.NewReader("sensor_id,name,value\nx,a,1\n")); err == nil {
		t.Error("bad int accepted")
	}
	if _, err := ReadCSV("s", sensorSchema(), strings.NewReader("sensor_id,nope,value\n1,a,1\n")); err == nil {
		t.Error("unknown header accepted")
	}
}

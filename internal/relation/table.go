package relation

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Table is an in-memory relation with optional hash indexes. It is safe
// for concurrent use.
type Table struct {
	name   string
	schema Schema

	mu      sync.RWMutex
	rows    []Tuple
	indexes map[string]*hashIndex // key: comma-joined column positions
}

// hashIndex maps a tuple key over indexed columns to row positions.
type hashIndex struct {
	cols []int
	m    map[string][]int
}

// NewTable creates an empty table.
func NewTable(name string, schema Schema) *Table {
	return &Table{name: name, schema: schema, indexes: make(map[string]*hashIndex)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() Schema { return t.schema }

// Len returns the number of rows.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Insert appends a row after checking arity and type compatibility
// (NULL is accepted in any column; integers widen to floats).
func (t *Table) Insert(row Tuple) error {
	if len(row) != t.schema.Arity() {
		return fmt.Errorf("relation: %s: arity mismatch: row has %d values, schema %d", t.name, len(row), t.schema.Arity())
	}
	for i, v := range row {
		want := t.schema.Columns[i].Type
		if v.IsNull() || v.Type == want {
			continue
		}
		if v.Type == TInt && want == TFloat {
			row[i] = Float(float64(v.Int))
			continue
		}
		if v.Type == TInt && want == TTime {
			row[i] = Time(v.Int)
			continue
		}
		return fmt.Errorf("relation: %s: column %s expects %s, got %s",
			t.name, t.schema.Columns[i].Name, want, v.Type)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	pos := len(t.rows)
	t.rows = append(t.rows, row)
	for _, idx := range t.indexes {
		k := row.Key(idx.cols)
		idx.m[k] = append(idx.m[k], pos)
	}
	return nil
}

// MustInsert inserts and panics on error; for statically-known fixtures.
func (t *Table) MustInsert(row Tuple) {
	if err := t.Insert(row); err != nil {
		panic(err)
	}
}

// Rows returns a snapshot of all rows. The returned slice is shared;
// callers must not mutate tuples.
func (t *Table) Rows() []Tuple {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Tuple, len(t.rows))
	copy(out, t.rows)
	return out
}

// Truncate removes all rows, keeping indexes registered but empty.
func (t *Table) Truncate() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = nil
	for _, idx := range t.indexes {
		idx.m = make(map[string][]int)
	}
}

func indexKey(cols []int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = fmt.Sprint(c)
	}
	return strings.Join(parts, ",")
}

// CreateIndex builds a hash index on the named columns. Creating an index
// that already exists is a no-op.
func (t *Table) CreateIndex(cols ...string) error {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p, err := t.schema.IndexOf(c)
		if err != nil {
			return err
		}
		positions[i] = p
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	key := indexKey(positions)
	if _, ok := t.indexes[key]; ok {
		return nil
	}
	idx := &hashIndex{cols: positions, m: make(map[string][]int)}
	for pos, row := range t.rows {
		k := row.Key(positions)
		idx.m[k] = append(idx.m[k], pos)
	}
	t.indexes[key] = idx
	return nil
}

// HasIndex reports whether an index exists exactly on the named columns.
func (t *Table) HasIndex(cols ...string) bool {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p, err := t.schema.IndexOf(c)
		if err != nil {
			return false
		}
		positions[i] = p
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, ok := t.indexes[indexKey(positions)]
	return ok
}

// Lookup returns the rows whose indexed columns equal the given values,
// using a hash index when one exists on exactly those columns and a scan
// otherwise. The bool result reports whether an index was used (the
// adaptive-indexing benchmarks observe it).
func (t *Table) Lookup(cols []string, vals []Value) ([]Tuple, bool, error) {
	if len(cols) != len(vals) {
		return nil, false, fmt.Errorf("relation: Lookup arity mismatch")
	}
	positions := make([]int, len(cols))
	for i, c := range cols {
		p, err := t.schema.IndexOf(c)
		if err != nil {
			return nil, false, err
		}
		positions[i] = p
	}
	probe := make(Tuple, t.schema.Arity())
	for i, p := range positions {
		probe[p] = vals[i]
	}
	key := probe.Key(positions)

	t.mu.RLock()
	defer t.mu.RUnlock()
	if idx, ok := t.indexes[indexKey(positions)]; ok {
		rowIDs := idx.m[key]
		out := make([]Tuple, len(rowIDs))
		for i, id := range rowIDs {
			out[i] = t.rows[id]
		}
		return out, true, nil
	}
	var out []Tuple
	for _, row := range t.rows {
		match := true
		for i, p := range positions {
			if !Equal(row[p], vals[i]) {
				match = false
				break
			}
		}
		if match {
			out = append(out, row)
		}
	}
	return out, false, nil
}

// LookupBatch probes the table once per key tuple in keys and returns
// the matching rows per probe. It is the vector-at-a-time counterpart
// of Lookup: column positions are resolved once, the read lock is taken
// once for the whole vector, and the probe buffer is reused, so a
// window's worth of probes costs one traversal of the setup code
// instead of len(keys). A nil slot in keys (or a key containing a NULL)
// yields a nil match set without probing, matching SQL join semantics.
// The bool result reports whether a hash index served the probes.
func (t *Table) LookupBatch(cols []string, keys [][]Value) ([][]Tuple, bool, error) {
	positions := make([]int, len(cols))
	for i, c := range cols {
		p, err := t.schema.IndexOf(c)
		if err != nil {
			return nil, false, err
		}
		positions[i] = p
	}
	out := make([][]Tuple, len(keys))
	probe := make(Tuple, t.schema.Arity())

	t.mu.RLock()
	defer t.mu.RUnlock()
	idx, indexed := t.indexes[indexKey(positions)]
	for ki, vals := range keys {
		if vals == nil {
			continue
		}
		if len(vals) != len(cols) {
			return nil, false, fmt.Errorf("relation: LookupBatch arity mismatch")
		}
		null := false
		for _, v := range vals {
			if v.IsNull() {
				null = true
				break
			}
		}
		if null {
			continue
		}
		if indexed {
			for i, p := range positions {
				probe[p] = vals[i]
			}
			rowIDs := idx.m[probe.Key(positions)]
			if len(rowIDs) > 0 {
				matches := make([]Tuple, len(rowIDs))
				for i, id := range rowIDs {
					matches[i] = t.rows[id]
				}
				out[ki] = matches
			}
			continue
		}
		for _, row := range t.rows {
			match := true
			for i, p := range positions {
				if !Equal(row[p], vals[i]) {
					match = false
					break
				}
			}
			if match {
				out[ki] = append(out[ki], row)
			}
		}
	}
	return out, indexed, nil
}

// SortRows orders rows in place of a snapshot by the given columns
// (ascending) and returns them; used for deterministic test output.
func SortRows(rows []Tuple, cols []int) []Tuple {
	sort.SliceStable(rows, func(i, j int) bool {
		for _, c := range cols {
			cmp, ok := Compare(rows[i][c], rows[j][c])
			if !ok {
				continue
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return rows
}

// Catalog is a named collection of tables. It is safe for concurrent use.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
	gen    uint64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create adds a new table; it fails if the name is taken.
func (c *Catalog) Create(name string, schema Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("relation: table %q already exists", name)
	}
	t := NewTable(name, schema)
	c.tables[key] = t
	c.gen++
	return t, nil
}

// Put registers an existing table, replacing any previous one of the name.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(t.Name())] = t
	c.gen++
}

// Get returns the named table.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("relation: unknown table %q", name)
	}
	return t, nil
}

// Drop removes the named table.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("relation: unknown table %q", name)
	}
	delete(c.tables, key)
	c.gen++
	return nil
}

// Generation is a counter bumped whenever the set of tables changes
// (Create/Put/Drop — not row inserts). Cached query plans compare it to
// decide whether their table resolution is still valid.
func (c *Catalog) Generation() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.gen
}

// Names lists the table names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

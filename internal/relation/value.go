// Package relation provides the relational data model underneath
// ExaStream: typed values, schemas, tuples, in-memory tables with hash
// indexes, and a catalog. It corresponds to the storage layer of the
// SQLite-based engine the paper extends.
package relation

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the column types supported by the engine.
type Type uint8

const (
	// TNull is the type of the SQL NULL value.
	TNull Type = iota
	// TInt is a 64-bit signed integer.
	TInt
	// TFloat is a 64-bit IEEE float.
	TFloat
	// TString is a UTF-8 string.
	TString
	// TBool is a boolean.
	TBool
	// TTime is a timestamp in milliseconds since the epoch; the stream
	// layer uses it for window arithmetic.
	TTime
)

// String returns the SQL name of the type.
func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INTEGER"
	case TFloat:
		return "REAL"
	case TString:
		return "TEXT"
	case TBool:
		return "BOOLEAN"
	case TTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType converts a SQL type name to a Type.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "NULL":
		return TNull, nil
	case "INT", "INTEGER", "BIGINT":
		return TInt, nil
	case "REAL", "FLOAT", "DOUBLE":
		return TFloat, nil
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return TString, nil
	case "BOOL", "BOOLEAN":
		return TBool, nil
	case "TIMESTAMP", "TIME", "DATETIME":
		return TTime, nil
	default:
		return TNull, fmt.Errorf("relation: unknown type %q", s)
	}
}

// Value is a single typed SQL value. Values are comparable and can be used
// directly as map keys (hash-join build keys, group-by keys).
type Value struct {
	Type  Type
	Int   int64 // also holds TTime milliseconds
	Float float64
	Str   string
	Bool  bool
}

// Null is the SQL NULL value.
var Null = Value{Type: TNull}

// Int returns an integer value.
func Int(v int64) Value { return Value{Type: TInt, Int: v} }

// Float returns a float value.
func Float(v float64) Value { return Value{Type: TFloat, Float: v} }

// String_ returns a string value. The underscore avoids colliding with the
// fmt.Stringer method on Value.
func String_(v string) Value { return Value{Type: TString, Str: v} }

// Bool_ returns a boolean value.
func Bool_(v bool) Value { return Value{Type: TBool, Bool: v} }

// Time returns a timestamp value (milliseconds since epoch).
func Time(ms int64) Value { return Value{Type: TTime, Int: ms} }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.Type == TNull }

// AsFloat converts numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.Type {
	case TInt, TTime:
		return float64(v.Int), true
	case TFloat:
		return v.Float, true
	default:
		return 0, false
	}
}

// AsInt converts numeric values to int64, truncating floats.
func (v Value) AsInt() (int64, bool) {
	switch v.Type {
	case TInt, TTime:
		return v.Int, true
	case TFloat:
		return int64(v.Float), true
	default:
		return 0, false
	}
}

// Truthy reports whether the value counts as true in a WHERE context.
// NULL is not truthy.
func (v Value) Truthy() bool {
	switch v.Type {
	case TBool:
		return v.Bool
	case TInt, TTime:
		return v.Int != 0
	case TFloat:
		return v.Float != 0
	case TString:
		return v.Str != ""
	default:
		return false
	}
}

// String renders the value in SQL literal syntax.
func (v Value) String() string {
	switch v.Type {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.Int, 10)
	case TFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case TString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	case TBool:
		return strings.ToUpper(strconv.FormatBool(v.Bool))
	case TTime:
		return fmt.Sprintf("TIMESTAMP %d", v.Int)
	default:
		return fmt.Sprintf("Value(%d)", v.Type)
	}
}

// numeric reports whether the type participates in arithmetic.
func (t Type) numeric() bool { return t == TInt || t == TFloat || t == TTime }

// Compare orders two values. NULL sorts before everything; numeric types
// compare by value across int/float/time; otherwise values must share a
// type. The second result is false for incomparable values.
func Compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		switch {
		case a.IsNull() && b.IsNull():
			return 0, true
		case a.IsNull():
			return -1, true
		default:
			return 1, true
		}
	}
	if a.Type.numeric() && b.Type.numeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	if a.Type != b.Type {
		return 0, false
	}
	switch a.Type {
	case TString:
		return strings.Compare(a.Str, b.Str), true
	case TBool:
		switch {
		case a.Bool == b.Bool:
			return 0, true
		case !a.Bool:
			return -1, true
		default:
			return 1, true
		}
	}
	return 0, false
}

// Equal reports whether two values are equal under SQL comparison
// semantics (NULL equals nothing, numeric cross-type equality allowed).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, ok := Compare(a, b)
	return ok && c == 0
}

// Arith applies a binary arithmetic operator (+ - * / %) to two values,
// following SQL NULL propagation. Integer operands yield integers except
// for division by a non-divisor, which yields a float.
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.Type.numeric() || !b.Type.numeric() {
		return Null, fmt.Errorf("relation: %s %c %s: non-numeric operand", a, op, b)
	}
	if a.Type == TInt && b.Type == TInt {
		x, y := a.Int, b.Int
		switch op {
		case '+':
			return Int(x + y), nil
		case '-':
			return Int(x - y), nil
		case '*':
			return Int(x * y), nil
		case '/':
			if y == 0 {
				return Null, fmt.Errorf("relation: division by zero")
			}
			if x%y == 0 {
				return Int(x / y), nil
			}
			return Float(float64(x) / float64(y)), nil
		case '%':
			if y == 0 {
				return Null, fmt.Errorf("relation: modulo by zero")
			}
			return Int(x % y), nil
		}
	}
	x, _ := a.AsFloat()
	y, _ := b.AsFloat()
	switch op {
	case '+':
		return Float(x + y), nil
	case '-':
		return Float(x - y), nil
	case '*':
		return Float(x * y), nil
	case '/':
		if y == 0 {
			return Null, fmt.Errorf("relation: division by zero")
		}
		return Float(x / y), nil
	case '%':
		return Null, fmt.Errorf("relation: modulo on floats")
	}
	return Null, fmt.Errorf("relation: unknown operator %c", op)
}

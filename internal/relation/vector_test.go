package relation

import (
	"math/rand"
	"testing"
)

func TestVectorBuilderRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		vals []Value
		typ  Type
	}{
		{"typed ints", []Value{Int(1), Int(2), Int(3)}, TInt},
		{"leading nulls backfilled", []Value{Null, Null, Float(1.5), Float(2.5)}, TFloat},
		{"interior null", []Value{String_("a"), Null, String_("b")}, TString},
		{"bools", []Value{Bool_(true), Bool_(false)}, TBool},
		{"times", []Value{Time(100), Time(200)}, TTime},
		{"all null", []Value{Null, Null, Null}, TNull},
		{"mixed degrades to generic", []Value{Int(1), String_("x"), Int(2)}, TNull},
		{"empty", nil, TNull},
	}
	for _, c := range cases {
		b := NewVectorBuilder(len(c.vals))
		for _, v := range c.vals {
			b.Append(v)
		}
		vec := b.Build()
		if vec.Len() != len(c.vals) {
			t.Errorf("%s: Len = %d, want %d", c.name, vec.Len(), len(c.vals))
		}
		if vec.ElemType() != c.typ {
			t.Errorf("%s: ElemType = %v, want %v", c.name, vec.ElemType(), c.typ)
		}
		for i, want := range c.vals {
			if got := vec.Value(i); got != want {
				t.Errorf("%s[%d]: Value = %v, want %v", c.name, i, got, want)
			}
			if vec.IsNull(i) != want.IsNull() {
				t.Errorf("%s[%d]: IsNull = %v", c.name, i, vec.IsNull(i))
			}
		}
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n, arity := rng.Intn(20), 1+rng.Intn(4)
		rows := make([]Tuple, n)
		for i := range rows {
			row := make(Tuple, arity)
			for j := range row {
				switch rng.Intn(5) {
				case 0:
					row[j] = Null
				case 1:
					row[j] = Int(int64(rng.Intn(9)))
				case 2:
					row[j] = Float(float64(rng.Intn(9)))
				case 3:
					row[j] = String_("s")
				default:
					row[j] = Bool_(rng.Intn(2) == 0)
				}
			}
			rows[i] = row
		}
		cb := Transpose(rows)
		if cb.Len() != n {
			t.Fatalf("trial %d: Len = %d, want %d", trial, cb.Len(), n)
		}
		back := cb.Rows()
		for i := range rows {
			for j := range rows[i] {
				if back[i][j] != rows[i][j] {
					t.Fatalf("trial %d: round trip [%d][%d] = %v, want %v",
						trial, i, j, back[i][j], rows[i][j])
				}
			}
		}
	}
	if Transpose(nil).Arity() != 0 {
		t.Error("empty transpose has columns")
	}
}

func TestBitmapOps(t *testing.T) {
	b := NewBitmap(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.Set(i)
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d", b.Count())
	}
	b.Clear(63)
	if b.Get(63) || !b.Get(64) {
		t.Error("Clear/Get wrong")
	}
	var got []int
	for i := b.Next(0); i >= 0; i = b.Next(i + 1) {
		got = append(got, i)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Errorf("Next iteration = %v", got)
	}
	cl := b.Clone()
	cl.Set(1)
	if b.Get(1) {
		t.Error("Clone aliases the original")
	}
	b.SetAll()
	if b.Count() != 130 {
		t.Errorf("SetAll Count = %d", b.Count())
	}
}

func TestBitmapReset(t *testing.T) {
	var nilB *Bitmap
	r := nilB.Reset(10)
	if r == nil || r.Len() != 10 || r.Count() != 0 {
		t.Fatal("nil Reset did not allocate")
	}
	r.Set(3)
	r2 := r.Reset(8) // fits in the same word backing
	if r2 != r {
		t.Error("Reset did not reuse the backing")
	}
	if r2.Len() != 8 || r2.Count() != 0 {
		t.Errorf("Reset left stale bits: len=%d count=%d", r2.Len(), r2.Count())
	}
	r3 := r2.Reset(1000) // outgrows the backing
	if r3 == r2 {
		t.Error("Reset reused a too-small backing")
	}
	if r3.Len() != 1000 || r3.Count() != 0 {
		t.Errorf("grown Reset: len=%d count=%d", r3.Len(), r3.Count())
	}
}

func TestVectorBytesModel(t *testing.T) {
	b := NewVectorBuilder(3)
	b.Append(String_("abc"))
	b.Append(Null)
	b.Append(String_("d"))
	v := b.Build()
	// Header + string headers + payloads + null bitmap (header + word).
	want := int64(VectorOverheadBytes) + 3*16 + 4 + BitmapOverheadBytes + 8
	if got := v.Bytes(); got != want {
		t.Errorf("string vector Bytes = %d, want %d", got, want)
	}

	g := NewGenericVector([]Value{Int(1), String_("xy")})
	wantG := int64(VectorOverheadBytes) + 2*48 + 2
	if got := g.Bytes(); got != wantG {
		t.Errorf("generic vector Bytes = %d, want %d", got, wantG)
	}
}

func TestConstAndResetBoolVectors(t *testing.T) {
	cv := NewConstVector(Bool_(true), 4)
	if cv.ElemType() != TBool || cv.Len() != 4 || !cv.Bools()[3] {
		t.Errorf("const bool vector = %v len %d", cv.ElemType(), cv.Len())
	}
	nv := NewConstVector(Null, 3)
	if !nv.IsNull(0) || !nv.IsNull(2) {
		t.Error("const null vector not null")
	}

	var v Vector
	got := v.ResetBool([]bool{true, false}, nil)
	if got != &v || got.ElemType() != TBool || got.Len() != 2 || got.IsNull(0) {
		t.Errorf("ResetBool = %v", got)
	}
	nulls := NewBitmap(1)
	nulls.Set(0)
	got = v.ResetBool([]bool{false}, nulls)
	if got.Len() != 1 || !got.IsNull(0) {
		t.Error("ResetBool dropped the null bitmap")
	}
}

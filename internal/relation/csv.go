package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads rows from CSV data into a new table with the given schema.
// The first record must be a header whose names match the schema columns
// (order-insensitively). Empty fields load as NULL.
func ReadCSV(name string, schema Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: csv header: %w", err)
	}
	perm := make([]int, len(header))
	if len(header) != schema.Arity() {
		return nil, fmt.Errorf("relation: csv has %d columns, schema %d", len(header), schema.Arity())
	}
	for i, h := range header {
		p, err := schema.IndexOf(strings.TrimSpace(h))
		if err != nil {
			return nil, err
		}
		perm[i] = p
	}
	t := NewTable(name, schema)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("relation: csv line %d: %w", line, err)
		}
		row := make(Tuple, schema.Arity())
		for i, field := range rec {
			p := perm[i]
			v, err := ParseValue(field, schema.Columns[p].Type)
			if err != nil {
				return nil, fmt.Errorf("relation: csv line %d column %s: %w", line, schema.Columns[p].Name, err)
			}
			row[p] = v
		}
		if err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// ParseValue converts a textual field to a Value of the wanted type.
// The empty string parses as NULL.
func ParseValue(s string, want Type) (Value, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return Null, nil
	}
	switch want {
	case TInt:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, err
		}
		return Int(v), nil
	case TFloat:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, err
		}
		return Float(v), nil
	case TBool:
		v, err := strconv.ParseBool(s)
		if err != nil {
			return Null, err
		}
		return Bool_(v), nil
	case TTime:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, err
		}
		return Time(v), nil
	default:
		return String_(s), nil
	}
}

// WriteCSV serialises the table (header plus rows) to w.
func WriteCSV(t *Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema().Names()); err != nil {
		return err
	}
	for _, row := range t.Rows() {
		rec := make([]string, len(row))
		for i, v := range row {
			switch v.Type {
			case TNull:
				rec[i] = ""
			case TString:
				rec[i] = v.Str
			case TInt, TTime:
				rec[i] = strconv.FormatInt(v.Int, 10)
			case TFloat:
				rec[i] = strconv.FormatFloat(v.Float, 'g', -1, 64)
			case TBool:
				rec[i] = strconv.FormatBool(v.Bool)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package sql

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Parse parses a single SQL(+) SELECT statement (optionally ending in a
// semicolon) and returns its AST.
func Parse(src string) (*SelectStmt, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

// MustParse parses and panics on error; for statically-known queries.
func MustParse(src string) *SelectStmt {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) peek() Token { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().Kind == TokEOF }

// acceptKW consumes the next token when it is the given keyword.
func (p *parser) acceptKW(kw string) bool {
	t := p.peek()
	if t.Kind == TokIdent && strings.EqualFold(t.Text, kw) {
		p.pos++
		return true
	}
	return false
}

// peekKW reports whether the next token is the given keyword.
func (p *parser) peekKW(kw string) bool {
	t := p.peek()
	return t.Kind == TokIdent && strings.EqualFold(t.Text, kw)
}

func (p *parser) expectKW(kw string) error {
	if !p.acceptKW(kw) {
		return fmt.Errorf("sql: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	t := p.peek()
	if t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return fmt.Errorf("sql: expected %q, found %s", op, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.peek()
	if t.Kind != TokIdent {
		return "", fmt.Errorf("sql: expected identifier, found %s", t)
	}
	p.pos++
	return t.Text, nil
}

// reserved keywords that terminate expressions and cannot be aliases.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "having": true,
	"order": true, "limit": true, "union": true, "join": true, "left": true,
	"cross": true, "inner": true, "on": true, "and": true, "or": true,
	"not": true, "as": true, "by": true, "distinct": true, "stream": true,
	"is": true, "null": true, "in": true, "case": true, "when": true,
	"then": true, "else": true, "end": true, "desc": true, "asc": true,
	"between": true, "all": true, "outer": true, "range": true, "slide": true,
}

func isReserved(s string) bool { return reserved[strings.ToLower(s)] }

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKW("SELECT"); err != nil {
		return nil, err
	}
	s := NewSelect()
	s.Distinct = p.acceptKW("DISTINCT")
	if p.acceptKW("ALL") && s.Distinct {
		return nil, fmt.Errorf("sql: both DISTINCT and ALL")
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKW("FROM") {
		for {
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKW("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKW("GROUP") {
		if err := p.expectKW("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKW("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	if p.acceptKW("ORDER") {
		if err := p.expectKW("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKW("DESC") {
				item.Desc = true
			} else {
				p.acceptKW("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKW("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT, found %s", t)
		}
		p.pos++
		n, err := strconv.Atoi(t.Text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: invalid LIMIT %q", t.Text)
		}
		s.Limit = n
	}
	for p.acceptKW("UNION") {
		all := p.acceptKW("ALL")
		if len(s.Unions) == 0 {
			s.UnionAll = all
		} else if s.UnionAll != all {
			return nil, fmt.Errorf("sql: mixed UNION and UNION ALL are not supported")
		}
		branch, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if len(branch.Unions) > 0 && branch.UnionAll != all {
			return nil, fmt.Errorf("sql: mixed UNION and UNION ALL are not supported")
		}
		// Flatten right-nested unions.
		s.Unions = append(s.Unions, branch)
		s.Unions = append(s.Unions, branch.Unions...)
		branch.Unions = nil
	}
	return s, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// "t.*"
	if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
		if p.pos+2 < len(p.toks) &&
			p.toks[p.pos+1].Kind == TokOp && p.toks[p.pos+1].Text == "." &&
			p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
			p.pos += 3
			return SelectItem{Star: true, Table: t.Text}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKW("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

func (p *parser) parseTableRef() (*TableRef, error) {
	tr, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.peekKW("JOIN") || p.peekKW("INNER"):
			p.acceptKW("INNER")
			p.acceptKW("JOIN")
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKW("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			tr.Joins = append(tr.Joins, Join{Kind: JoinInner, Right: right, On: on})
		case p.peekKW("LEFT"):
			p.acceptKW("LEFT")
			p.acceptKW("OUTER")
			if err := p.expectKW("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			if err := p.expectKW("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			tr.Joins = append(tr.Joins, Join{Kind: JoinLeft, Right: right, On: on})
		case p.peekKW("CROSS"):
			p.acceptKW("CROSS")
			if err := p.expectKW("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			tr.Joins = append(tr.Joins, Join{Kind: JoinCross, Right: right})
		default:
			return tr, nil
		}
	}
}

func (p *parser) parseTablePrimary() (*TableRef, error) {
	tr := &TableRef{}
	switch {
	case p.acceptOp("("):
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		tr.Subquery = sub
	case p.acceptKW("STREAM"):
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr.Table = name
		tr.IsStream = true
	default:
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr.Table = name
	}
	// Optional window: [RANGE n SLIDE n].
	if p.acceptOp("[") {
		if err := p.expectKW("RANGE"); err != nil {
			return nil, err
		}
		rng, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectKW("SLIDE"); err != nil {
			return nil, err
		}
		slide, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("]"); err != nil {
			return nil, err
		}
		if rng <= 0 || slide <= 0 {
			return nil, fmt.Errorf("sql: window RANGE and SLIDE must be positive")
		}
		tr.Window = &WindowSpec{RangeMS: rng, SlideMS: slide}
	}
	if tr.Window != nil && !tr.IsStream && tr.Subquery == nil {
		// Allow "name [RANGE..]" to imply a stream.
		tr.IsStream = true
	}
	if p.acceptKW("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		tr.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent && !isReserved(t.Text) {
		p.pos++
		tr.Alias = t.Text
	}
	if tr.Subquery != nil && tr.Alias == "" {
		return nil, fmt.Errorf("sql: derived table requires an alias")
	}
	return tr, nil
}

func (p *parser) expectNumber() (int64, error) {
	t := p.peek()
	if t.Kind != TokNumber {
		return 0, fmt.Errorf("sql: expected number, found %s", t)
	}
	p.pos++
	return strconv.ParseInt(t.Text, 10, 64)
}

// ---- expressions (precedence climbing) ----

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = Bin("OR", left, right)
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = Bin("AND", left, right)
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKW("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Expr: e}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.acceptKW("IS") {
		neg := p.acceptKW("NOT")
		if err := p.expectKW("NULL"); err != nil {
			return nil, err
		}
		return &IsNullExpr{Expr: left, Negate: neg}, nil
	}
	// [NOT] IN (list)
	neg := false
	if p.peekKW("NOT") && p.pos+1 < len(p.toks) &&
		p.toks[p.pos+1].Kind == TokIdent && strings.EqualFold(p.toks[p.pos+1].Text, "IN") {
		p.pos += 2
		neg = true
		return p.parseInList(left, neg)
	}
	if p.acceptKW("IN") {
		return p.parseInList(left, neg)
	}
	// BETWEEN a AND b desugars to (left >= a AND left <= b).
	if p.acceptKW("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKW("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return Bin("AND", Bin(">=", left, lo), Bin("<=", left, hi)), nil
	}
	for _, op := range []string{"<=", ">=", "<>", "!=", "=", "<", ">"} {
		if p.acceptOp(op) {
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if op == "!=" {
				op = "<>"
			}
			return Bin(op, left, right), nil
		}
	}
	return left, nil
}

func (p *parser) parseInList(left Expr, neg bool) (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &InExpr{Expr: left, List: list, Negate: neg}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("+"):
			op = "+"
		case p.acceptOp("-"):
			op = "-"
		case p.acceptOp("||"):
			op = "||"
		default:
			return left, nil
		}
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = Bin(op, left, right)
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.acceptOp("*"):
			op = "*"
		case p.acceptOp("/"):
			op = "/"
		case p.acceptOp("%"):
			op = "%"
		default:
			return left, nil
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = Bin(op, left, right)
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			switch lit.Value.Type {
			case relation.TInt:
				return Lit(relation.Int(-lit.Value.Int)), nil
			case relation.TFloat:
				return Lit(relation.Float(-lit.Value.Float)), nil
			}
		}
		return &UnaryExpr{Op: "-", Expr: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.pos++
		if strings.Contains(t.Text, ".") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.Text)
			}
			return Lit(relation.Float(f)), nil
		}
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.Text)
		}
		return Lit(relation.Int(n)), nil
	case TokString:
		p.pos++
		return Lit(relation.String_(t.Text)), nil
	case TokOp:
		if t.Text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, fmt.Errorf("sql: unexpected %s in expression", t)
	case TokIdent:
		switch strings.ToLower(t.Text) {
		case "null":
			p.pos++
			return Lit(relation.Null), nil
		case "true":
			p.pos++
			return Lit(relation.Bool_(true)), nil
		case "false":
			p.pos++
			return Lit(relation.Bool_(false)), nil
		case "case":
			return p.parseCase()
		}
		if isReserved(t.Text) {
			return nil, fmt.Errorf("sql: unexpected keyword %s in expression", t)
		}
		p.pos++
		// Function call?
		if p.acceptOp("(") {
			return p.parseFuncCall(t.Text)
		}
		// Qualified column?
		if p.acceptOp(".") {
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.Text, Name: name}, nil
		}
		return &ColumnRef{Name: t.Text}, nil
	default:
		return nil, fmt.Errorf("sql: unexpected %s", t)
	}
}

func (p *parser) parseFuncCall(name string) (Expr, error) {
	f := &FuncExpr{Name: strings.ToLower(name)}
	if p.acceptOp("*") {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.acceptOp(")") {
		return f, nil
	}
	f.Distinct = p.acceptKW("DISTINCT")
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		f.Args = append(f.Args, e)
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return f, nil
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKW("CASE"); err != nil {
		return nil, err
	}
	c := &CaseExpr{}
	for p.acceptKW("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKW("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE without WHEN")
	}
	if p.acceptKW("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKW("END"); err != nil {
		return nil, err
	}
	return c, nil
}

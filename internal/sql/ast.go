package sql

import (
	"fmt"
	"strings"

	"repro/internal/relation"
)

// Expr is a SQL expression node.
type Expr interface {
	fmt.Stringer
	exprNode()
}

// ColumnRef references a column, optionally qualified by a table alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

func (c *ColumnRef) exprNode() {}

// FullName returns the qualified column name.
func (c *ColumnRef) FullName() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

func (c *ColumnRef) String() string { return c.FullName() }

// Literal is a constant value.
type Literal struct {
	Value relation.Value
}

func (l *Literal) exprNode()      {}
func (l *Literal) String() string { return l.Value.String() }

// BinaryExpr applies a binary operator: = <> < <= > >= AND OR + - * / % ||.
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

func (b *BinaryExpr) exprNode() {}
func (b *BinaryExpr) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op   string // "NOT" or "-"
	Expr Expr
}

func (u *UnaryExpr) exprNode() {}
func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.Expr.String() + ")"
	}
	return "(" + u.Op + u.Expr.String() + ")"
}

// IsNullExpr tests nullness.
type IsNullExpr struct {
	Expr   Expr
	Negate bool // IS NOT NULL
}

func (i *IsNullExpr) exprNode() {}
func (i *IsNullExpr) String() string {
	if i.Negate {
		return "(" + i.Expr.String() + " IS NOT NULL)"
	}
	return "(" + i.Expr.String() + " IS NULL)"
}

// FuncExpr is a scalar, aggregate, or UDF call. Star marks COUNT(*).
type FuncExpr struct {
	Name     string
	Args     []Expr
	Star     bool
	Distinct bool
}

func (f *FuncExpr) exprNode() {}
func (f *FuncExpr) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return strings.ToUpper(f.Name) + "(" + d + strings.Join(args, ", ") + ")"
}

// CaseExpr is CASE WHEN ... THEN ... [ELSE ...] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN/THEN branch.
type CaseWhen struct {
	Cond, Then Expr
}

func (c *CaseExpr) exprNode() {}
func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		fmt.Fprintf(&sb, " WHEN %s THEN %s", w.Cond, w.Then)
	}
	if c.Else != nil {
		fmt.Fprintf(&sb, " ELSE %s", c.Else)
	}
	sb.WriteString(" END")
	return sb.String()
}

// InExpr is "expr IN (v1, v2, ...)".
type InExpr struct {
	Expr   Expr
	List   []Expr
	Negate bool
}

func (i *InExpr) exprNode() {}
func (i *InExpr) String() string {
	items := make([]string, len(i.List))
	for j, e := range i.List {
		items[j] = e.String()
	}
	op := "IN"
	if i.Negate {
		op = "NOT IN"
	}
	return fmt.Sprintf("(%s %s (%s))", i.Expr, op, strings.Join(items, ", "))
}

// SelectItem is one projection: an expression with an optional alias, or
// a star ("*" / "t.*").
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool
	Table string // qualifier for "t.*"
}

func (s SelectItem) String() string {
	if s.Star {
		if s.Table != "" {
			return s.Table + ".*"
		}
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + s.Alias
	}
	return s.Expr.String()
}

// WindowSpec is the SQL(+) stream window: RANGE and SLIDE in
// milliseconds. It corresponds to the paper's timeSlidingWindow operator.
type WindowSpec struct {
	RangeMS int64
	SlideMS int64
}

func (w WindowSpec) String() string {
	return fmt.Sprintf("[RANGE %d SLIDE %d]", w.RangeMS, w.SlideMS)
}

// JoinKind enumerates supported join types.
type JoinKind uint8

const (
	// JoinInner is INNER JOIN.
	JoinInner JoinKind = iota
	// JoinLeft is LEFT OUTER JOIN.
	JoinLeft
	// JoinCross is a comma/CROSS join.
	JoinCross
)

// TableRef is one FROM item: a base table, a stream with a window, or a
// derived table (subquery), plus any chained joins.
type TableRef struct {
	Table    string      // base table or stream name
	IsStream bool        // FROM STREAM name
	Window   *WindowSpec // window over a stream
	Subquery *SelectStmt // derived table
	Alias    string
	Joins    []Join
}

// Name returns the alias if set, else the table name.
func (t *TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

func (t *TableRef) String() string {
	var sb strings.Builder
	switch {
	case t.Subquery != nil:
		sb.WriteString("(" + t.Subquery.String() + ")")
	case t.IsStream:
		sb.WriteString("STREAM " + t.Table)
	default:
		sb.WriteString(t.Table)
	}
	if t.Window != nil {
		sb.WriteString(" " + t.Window.String())
	}
	if t.Alias != "" {
		sb.WriteString(" AS " + t.Alias)
	}
	for _, j := range t.Joins {
		sb.WriteString(" " + j.String())
	}
	return sb.String()
}

// Join is one chained join clause.
type Join struct {
	Kind  JoinKind
	Right *TableRef
	On    Expr // nil for cross joins
}

func (j Join) String() string {
	var kw string
	switch j.Kind {
	case JoinInner:
		kw = "JOIN"
	case JoinLeft:
		kw = "LEFT JOIN"
	case JoinCross:
		kw = "CROSS JOIN"
	}
	s := kw + " " + j.Right.String()
	if j.On != nil {
		s += " ON " + j.On.String()
	}
	return s
}

// OrderItem is one ORDER BY entry.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// SelectStmt is a SELECT query, possibly a UNION [ALL] chain: the
// statement represents its first branch with the remaining branches in
// Unions.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []*TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent
	Unions   []*SelectStmt
	UnionAll bool
}

// NewSelect returns a SelectStmt with no LIMIT.
func NewSelect() *SelectStmt { return &SelectStmt{Limit: -1} }

func (s *SelectStmt) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	items := make([]string, len(s.Items))
	for i, it := range s.Items {
		items[i] = it.String()
	}
	sb.WriteString(strings.Join(items, ", "))
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		froms := make([]string, len(s.From))
		for i, f := range s.From {
			froms[i] = f.String()
		}
		sb.WriteString(strings.Join(froms, ", "))
	}
	if s.Where != nil {
		sb.WriteString(" WHERE " + s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		parts := make([]string, len(s.GroupBy))
		for i, g := range s.GroupBy {
			parts[i] = g.String()
		}
		sb.WriteString(" GROUP BY " + strings.Join(parts, ", "))
	}
	if s.Having != nil {
		sb.WriteString(" HAVING " + s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		parts := make([]string, len(s.OrderBy))
		for i, o := range s.OrderBy {
			parts[i] = o.String()
		}
		sb.WriteString(" ORDER BY " + strings.Join(parts, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	for _, u := range s.Unions {
		if s.UnionAll {
			sb.WriteString(" UNION ALL ")
		} else {
			sb.WriteString(" UNION ")
		}
		sb.WriteString(u.String())
	}
	return sb.String()
}

// Branches returns the statement and its union branches as a flat list.
func (s *SelectStmt) Branches() []*SelectStmt {
	out := []*SelectStmt{s}
	return append(out, s.Unions...)
}

// Col returns a bare column reference expression.
func Col(name string) Expr {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return &ColumnRef{Table: name[:i], Name: name[i+1:]}
	}
	return &ColumnRef{Name: name}
}

// Lit returns a literal expression.
func Lit(v relation.Value) Expr { return &Literal{Value: v} }

// Bin returns a binary expression.
func Bin(op string, l, r Expr) Expr { return &BinaryExpr{Op: op, Left: l, Right: r} }

// AndAll conjoins the non-nil expressions; it returns nil for none.
func AndAll(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
			continue
		}
		out = Bin("AND", out, e)
	}
	return out
}

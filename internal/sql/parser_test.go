package sql

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 'it''s' FROM t WHERE x <= 1.5 -- comment\nAND y <> 2")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == TokEOF {
			break
		}
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", "FROM", "t", "WHERE", "x", "<=", "1.5", "AND", "y", "<>", "2"}
	if strings.Join(texts, "|") != strings.Join(want, "|") {
		t.Fatalf("Lex = %v", texts)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'oops"); err == nil {
		t.Error("unterminated string accepted")
	}
	if _, err := Lex("SELECT @x"); err == nil {
		t.Error("bad character accepted")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s, err := Parse("SELECT a, b AS bee FROM t WHERE a = 1;")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Items) != 2 || s.Items[1].Alias != "bee" {
		t.Errorf("items = %v", s.Items)
	}
	if len(s.From) != 1 || s.From[0].Table != "t" {
		t.Errorf("from = %v", s.From)
	}
	be, ok := s.Where.(*BinaryExpr)
	if !ok || be.Op != "=" {
		t.Errorf("where = %v", s.Where)
	}
}

func TestParseStar(t *testing.T) {
	s := MustParse("SELECT *, t.* FROM t")
	if !s.Items[0].Star || s.Items[0].Table != "" {
		t.Error("bare star")
	}
	if !s.Items[1].Star || s.Items[1].Table != "t" {
		t.Error("qualified star")
	}
}

func TestParseJoins(t *testing.T) {
	s := MustParse(`SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y CROSS JOIN d`)
	tr := s.From[0]
	if len(tr.Joins) != 3 {
		t.Fatalf("joins = %d", len(tr.Joins))
	}
	if tr.Joins[0].Kind != JoinInner || tr.Joins[1].Kind != JoinLeft || tr.Joins[2].Kind != JoinCross {
		t.Errorf("join kinds = %v %v %v", tr.Joins[0].Kind, tr.Joins[1].Kind, tr.Joins[2].Kind)
	}
	if tr.Joins[2].On != nil {
		t.Error("cross join has ON")
	}
}

func TestParseStreamWindow(t *testing.T) {
	s := MustParse("SELECT * FROM STREAM msmt [RANGE 10000 SLIDE 1000] AS m WHERE m.v > 70")
	tr := s.From[0]
	if !tr.IsStream || tr.Table != "msmt" || tr.Alias != "m" {
		t.Errorf("stream ref = %+v", tr)
	}
	if tr.Window == nil || tr.Window.RangeMS != 10000 || tr.Window.SlideMS != 1000 {
		t.Errorf("window = %+v", tr.Window)
	}
	// Window on a bare name implies a stream.
	s2 := MustParse("SELECT * FROM msmt [RANGE 5 SLIDE 5]")
	if !s2.From[0].IsStream {
		t.Error("window did not imply stream")
	}
	if _, err := Parse("SELECT * FROM s [RANGE 0 SLIDE 1]"); err == nil {
		t.Error("zero range accepted")
	}
}

func TestParseGroupHavingOrderLimit(t *testing.T) {
	s := MustParse(`SELECT sensor, avg(v) AS m FROM r GROUP BY sensor HAVING avg(v) > 50 ORDER BY m DESC, sensor LIMIT 10`)
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Error("group/having")
	}
	if len(s.OrderBy) != 2 || !s.OrderBy[0].Desc || s.OrderBy[1].Desc {
		t.Errorf("order = %v", s.OrderBy)
	}
	if s.Limit != 10 {
		t.Errorf("limit = %d", s.Limit)
	}
}

func TestParseUnionFlattening(t *testing.T) {
	s := MustParse("SELECT a FROM t UNION ALL SELECT a FROM u UNION ALL SELECT a FROM v")
	if len(s.Unions) != 2 || !s.UnionAll {
		t.Fatalf("unions = %d, all=%t", len(s.Unions), s.UnionAll)
	}
	if len(s.Branches()) != 3 {
		t.Errorf("branches = %d", len(s.Branches()))
	}
	if _, err := Parse("SELECT a FROM t UNION SELECT a FROM u UNION ALL SELECT a FROM v"); err == nil {
		t.Error("mixed UNION/UNION ALL accepted")
	}
}

func TestParseSubquery(t *testing.T) {
	s := MustParse("SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 1")
	if s.From[0].Subquery == nil || s.From[0].Alias != "sub" {
		t.Errorf("subquery = %+v", s.From[0])
	}
	if _, err := Parse("SELECT x FROM (SELECT a FROM t)"); err == nil {
		t.Error("derived table without alias accepted")
	}
}

func TestParseExpressions(t *testing.T) {
	s := MustParse(`SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END, b IS NOT NULL,
		c IN (1, 2, 3), d NOT IN (4), e BETWEEN 1 AND 5, -f, NOT g, a || b FROM t`)
	if len(s.Items) != 8 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if _, ok := s.Items[0].Expr.(*CaseExpr); !ok {
		t.Error("case expr")
	}
	if n, ok := s.Items[1].Expr.(*IsNullExpr); !ok || !n.Negate {
		t.Error("is not null")
	}
	if in, ok := s.Items[2].Expr.(*InExpr); !ok || len(in.List) != 3 || in.Negate {
		t.Error("in list")
	}
	if in, ok := s.Items[3].Expr.(*InExpr); !ok || !in.Negate {
		t.Error("not in")
	}
	if be, ok := s.Items[4].Expr.(*BinaryExpr); !ok || be.Op != "AND" {
		t.Error("between desugaring")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := MustParse("SELECT a + b * c FROM t")
	be := s.Items[0].Expr.(*BinaryExpr)
	if be.Op != "+" {
		t.Fatalf("top op = %s", be.Op)
	}
	if inner, ok := be.Right.(*BinaryExpr); !ok || inner.Op != "*" {
		t.Fatal("* should bind tighter than +")
	}
	s2 := MustParse("SELECT 1 FROM t WHERE a = 1 OR b = 2 AND c = 3")
	top := s2.Where.(*BinaryExpr)
	if top.Op != "OR" {
		t.Fatal("AND should bind tighter than OR")
	}
}

func TestParseNegativeLiteralFolding(t *testing.T) {
	s := MustParse("SELECT -5, -2.5 FROM t")
	if l, ok := s.Items[0].Expr.(*Literal); !ok || l.Value != relation.Int(-5) {
		t.Errorf("folded -5 = %v", s.Items[0].Expr)
	}
	if l, ok := s.Items[1].Expr.(*Literal); !ok || l.Value != relation.Float(-2.5) {
		t.Errorf("folded -2.5 = %v", s.Items[1].Expr)
	}
}

func TestParseFuncCalls(t *testing.T) {
	s := MustParse("SELECT count(*), count(DISTINCT a), my_udf(a, b, 1) FROM t")
	f0 := s.Items[0].Expr.(*FuncExpr)
	if !f0.Star || f0.Name != "count" {
		t.Error("count(*)")
	}
	f1 := s.Items[1].Expr.(*FuncExpr)
	if !f1.Distinct {
		t.Error("count(DISTINCT)")
	}
	f2 := s.Items[2].Expr.(*FuncExpr)
	if len(f2.Args) != 3 {
		t.Error("udf args")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP a",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t extra garbage (",
		"SELECT a FROM t JOIN u",     // missing ON
		"SELECT CASE END FROM t",     // CASE without WHEN
		"SELECT a IN () FROM t",      // empty IN list
		"SELECT a FROM s [RANGE 10]", // window missing SLIDE
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", src)
		}
	}
}

// Round trip: String() output reparses to an equivalent tree (checked by
// comparing the re-rendered string).
func TestParsePrintRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS bee FROM t WHERE (a = 1)",
		"SELECT * FROM a JOIN b ON (a.x = b.x) WHERE (a.y > 2.5)",
		"SELECT sensor, AVG(v) FROM STREAM m [RANGE 10000 SLIDE 1000] GROUP BY sensor",
		"SELECT DISTINCT a FROM t UNION ALL SELECT a FROM u",
		"SELECT x FROM (SELECT a AS x FROM t) AS sub ORDER BY x DESC LIMIT 3",
		"SELECT CASE WHEN (a > 1) THEN 'hi' ELSE 'lo' END FROM t",
	}
	for _, q := range queries {
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("Parse(%q): %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", s1.String(), err)
		}
		if s1.String() != s2.String() {
			t.Errorf("round trip changed:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestAndAll(t *testing.T) {
	if AndAll() != nil {
		t.Error("AndAll() should be nil")
	}
	e := Col("a")
	if AndAll(nil, e, nil) != e {
		t.Error("AndAll single")
	}
	both := AndAll(Col("a"), Col("b"))
	if be, ok := both.(*BinaryExpr); !ok || be.Op != "AND" {
		t.Error("AndAll pair")
	}
}

func TestColHelperQualified(t *testing.T) {
	c := Col("t.a").(*ColumnRef)
	if c.Table != "t" || c.Name != "a" {
		t.Errorf("Col = %+v", c)
	}
}

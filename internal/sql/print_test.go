package sql

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

// TestExprStringForms covers the printers for every expression node.
func TestExprStringForms(t *testing.T) {
	cases := map[string]Expr{
		"(NOT a)":                &UnaryExpr{Op: "NOT", Expr: Col("a")},
		"(-a)":                   &UnaryExpr{Op: "-", Expr: Col("a")},
		"(a IS NULL)":            &IsNullExpr{Expr: Col("a")},
		"(a IS NOT NULL)":        &IsNullExpr{Expr: Col("a"), Negate: true},
		"COUNT(*)":               &FuncExpr{Name: "count", Star: true},
		"SUM(DISTINCT a)":        &FuncExpr{Name: "sum", Args: []Expr{Col("a")}, Distinct: true},
		"(a NOT IN (1))":         &InExpr{Expr: Col("a"), List: []Expr{Lit(relation.Int(1))}, Negate: true},
		"t.a":                    Col("t.a"),
		"CASE WHEN a THEN 1 END": &CaseExpr{Whens: []CaseWhen{{Cond: Col("a"), Then: Lit(relation.Int(1))}}},
		"[RANGE 5 SLIDE 2]":      nil, // handled below
	}
	for want, e := range cases {
		if e == nil {
			continue
		}
		if got := e.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
	if got := (WindowSpec{RangeMS: 5, SlideMS: 2}).String(); got != "[RANGE 5 SLIDE 2]" {
		t.Errorf("window = %q", got)
	}
	if got := (SelectItem{Star: true, Table: "t"}).String(); got != "t.*" {
		t.Errorf("star item = %q", got)
	}
	if got := (SelectItem{Expr: Col("a"), Alias: "x"}).String(); got != "a AS x" {
		t.Errorf("aliased item = %q", got)
	}
}

func TestTableRefStringAndName(t *testing.T) {
	tr := &TableRef{Table: "t", Alias: "x"}
	if tr.Name() != "x" {
		t.Errorf("Name = %q", tr.Name())
	}
	tr2 := &TableRef{Table: "t"}
	if tr2.Name() != "t" {
		t.Errorf("Name = %q", tr2.Name())
	}
	sub := &TableRef{Subquery: MustParse("SELECT a FROM u"), Alias: "s"}
	if !strings.Contains(sub.String(), "(SELECT a FROM u) AS s") {
		t.Errorf("subquery ref = %q", sub.String())
	}
	st := &TableRef{Table: "m", IsStream: true, Window: &WindowSpec{RangeMS: 1, SlideMS: 1}}
	if !strings.Contains(st.String(), "STREAM m [RANGE 1 SLIDE 1]") {
		t.Errorf("stream ref = %q", st.String())
	}
	join := &TableRef{Table: "a", Joins: []Join{
		{Kind: JoinLeft, Right: &TableRef{Table: "b"}, On: Bin("=", Col("a.x"), Col("b.x"))},
		{Kind: JoinCross, Right: &TableRef{Table: "c"}},
	}}
	s := join.String()
	if !strings.Contains(s, "LEFT JOIN b ON") || !strings.Contains(s, "CROSS JOIN c") {
		t.Errorf("join ref = %q", s)
	}
}

func TestQuotedIdentifierLexing(t *testing.T) {
	s := MustParse(`SELECT "weird name" FROM t`)
	c, ok := s.Items[0].Expr.(*ColumnRef)
	if !ok || c.Name != "weird name" {
		t.Errorf("quoted ident = %+v", s.Items[0].Expr)
	}
}

// Package sql implements the SQL(+) dialect of ExaStream: standard SQL
// SELECT queries extended with stream references and window specifications
// ("FROM STREAM s [RANGE 10000 SLIDE 1000]"), which is the target language
// of the STARQL-to-SQL(+) translator.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind classifies lexical tokens.
type TokKind uint8

const (
	// TokEOF marks the end of input.
	TokEOF TokKind = iota
	// TokIdent is an identifier or unquoted keyword.
	TokIdent
	// TokNumber is an integer or decimal literal.
	TokNumber
	// TokString is a single-quoted string literal.
	TokString
	// TokOp is an operator or punctuation token.
	TokOp
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  int
}

// String renders the token for error messages.
func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// lexer tokenises SQL(+) input.
type lexer struct {
	src    string
	pos    int
	tokens []Token
}

// Lex splits src into tokens. Keywords are returned as TokIdent; the
// parser matches them case-insensitively.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l.tokens, nil
}

var multiOps = []string{"<=", ">=", "<>", "!=", "||"}

func (l *lexer) run() error {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return err
			}
		case c >= '0' && c <= '9':
			l.lexNumber()
		case isIdentStart(rune(c)):
			l.lexIdent()
		default:
			if op := l.matchMultiOp(); op != "" {
				l.tokens = append(l.tokens, Token{TokOp, op, l.pos})
				l.pos += len(op)
				break
			}
			if strings.ContainsRune("()[],.;*+-/%<>=?", rune(c)) {
				l.tokens = append(l.tokens, Token{TokOp, string(c), l.pos})
				l.pos++
				break
			}
			return fmt.Errorf("sql: unexpected character %q at offset %d", string(c), l.pos)
		}
	}
	l.tokens = append(l.tokens, Token{TokEOF, "", l.pos})
	return nil
}

func (l *lexer) matchMultiOp() string {
	for _, op := range multiOps {
		if strings.HasPrefix(l.src[l.pos:], op) {
			return op
		}
	}
	return ""
}

func isIdentStart(c rune) bool {
	return unicode.IsLetter(c) || c == '_' || c == '"'
}

func (l *lexer) lexIdent() {
	start := l.pos
	if l.src[l.pos] == '"' {
		// Quoted identifier.
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		text := l.src[start+1 : l.pos]
		if l.pos < len(l.src) {
			l.pos++
		}
		l.tokens = append(l.tokens, Token{TokIdent, text, start})
		return
	}
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, Token{TokIdent, l.src[start:l.pos], start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		if c < '0' || c > '9' {
			break
		}
		l.pos++
	}
	l.tokens = append(l.tokens, Token{TokNumber, l.src[start:l.pos], start})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.tokens = append(l.tokens, Token{TokString, sb.String(), start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

// Package faults is a deterministic, seedable fault-injection layer for
// chaos-testing the cluster runtime. An Injector satisfies
// cluster.FaultInjector: it hooks each worker's loop before a tuple is
// processed and can panic (simulated worker crash, handled by the
// supervisor), return an error (simulated ingest failure), or sleep
// (simulated slow node, which exercises backpressure).
//
// Triggers are counter-based — "the Nth tuple this node processes" —
// so chaos runs replay identically, or probabilistic with a seeded
// generator so a failing run reproduces from its seed.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

const (
	// KindPanic crashes the worker goroutine.
	KindPanic Kind = iota
	// KindError fails the ingest of one tuple.
	KindError
	// KindDelay stalls the worker, simulating a slow node.
	KindDelay
	// KindCrashCheckpoint crashes the worker at the start of a
	// checkpoint attempt (the previous checkpoint stays authoritative).
	KindCrashCheckpoint
	// KindTornCheckpoint corrupts a checkpoint's bytes mid-write; the
	// store's verification detects it and falls back.
	KindTornCheckpoint
	// KindCrashEmit crashes the worker right after a window was
	// delivered, before the sender could acknowledge it — the recovery
	// gate must not deliver that window again.
	KindCrashEmit
	// KindMemPressure adds synthetic bytes to a query's measured window
	// state, pushing it over its budget so the engine's degradation
	// policy fires deterministically.
	KindMemPressure
	// KindNetDrop discards a frame on the wire (recovered by the
	// transport's retransmission clock).
	KindNetDrop
	// KindNetDelay stalls a frame before it is written — a slow link;
	// everything behind it on the link waits too.
	KindNetDelay
	// KindNetDup writes a frame twice (the receiver dedups by seq).
	KindNetDup
	// KindNetReorder delays a frame past its successor (the receiver
	// reorders by seq).
	KindNetReorder
	// KindNetPartition counts frames black-holed by a cut link
	// (CutLink/CutLinkOneWay, or a CutLinkAtFrame trigger firing).
	KindNetPartition
	// KindQuotaExhausted forces a tenant's admission checks to fail with
	// the retryable quota error.
	KindQuotaExhausted
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindCrashCheckpoint:
		return "crash-checkpoint"
	case KindTornCheckpoint:
		return "torn-checkpoint"
	case KindCrashEmit:
		return "crash-emit"
	case KindMemPressure:
		return "mem-pressure"
	case KindQuotaExhausted:
		return "quota-exhausted"
	case KindNetDrop:
		return "net-drop"
	case KindNetDelay:
		return "net-delay"
	case KindNetDup:
		return "net-dup"
	case KindNetReorder:
		return "net-reorder"
	case KindNetPartition:
		return "net-partition"
	default:
		return "delay"
	}
}

// ErrInjected is the error returned by injected ingest failures.
var ErrInjected = errors.New("faults: injected ingest error")

// PanicValue is the value injected panics carry, so supervisors and
// tests can recognise a simulated crash.
const PanicValue = "faults: injected worker panic"

// CheckpointPanicValue is carried by crash-during-checkpoint panics.
const CheckpointPanicValue = "faults: injected crash during checkpoint"

// EmitPanicValue is carried by crash-after-emit panics.
const EmitPanicValue = "faults: injected crash after emit"

// AnyNode matches every node in a rule.
const AnyNode = -1

type rule struct {
	node   int // AnyNode or a node id
	kind   Kind
	at     int64   // fire when the node's tuple count reaches at (1-based)
	every  int64   // and every `every` tuples after that; 0 = fire once
	prob   float64 // probabilistic alternative to at/every
	delay  time.Duration
	stream string // restrict to one stream; "" = any
}

func (r rule) matches(node int, stream string, count int64, rng *rand.Rand) bool {
	if r.node != AnyNode && r.node != node {
		return false
	}
	if r.stream != "" && r.stream != stream {
		return false
	}
	if r.prob > 0 {
		return rng.Float64() < r.prob
	}
	if count < r.at {
		return false
	}
	if count == r.at {
		return true
	}
	return r.every > 0 && (count-r.at)%r.every == 0
}

// Injector injects worker faults according to its rules. All methods
// are safe for concurrent use; rule setup should happen before the
// workload starts for reproducible runs.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []rule
	seen     map[int]int64 // node -> tuples observed
	injected map[Kind]int64

	// Recovery chaos triggers, keyed by the same counter style as the
	// tuple rules: "the node's nth checkpoint attempt", "the query's nth
	// emitted window". Checkpoint attempts are counted in
	// BeforeCheckpoint; TearCheckpoint consults the same attempt without
	// advancing it (both hooks describe one attempt).
	ckptSeen  map[int]int64
	emitSeen  map[string]int64
	crashCkpt map[int]map[int64]bool
	tearCkpt  map[int]map[int64]bool
	crashEmit map[string]map[int64]bool

	// Governance chaos state: synthetic per-query memory pressure (bytes
	// added to the engine's usage measurement) and tenants whose quota
	// admissions are forced to fail.
	pressure  map[string]int64
	exhausted map[string]bool

	// Network chaos state (the transport.NetFaultInjector hooks): frame
	// rules run on the deterministic clock of "the nth data/flush frame
	// written towards the node", partitions are explicit link cuts
	// (symmetric or one-way) that CutLinkAtFrame can also arm on that
	// same frame clock.
	netRules []netRule
	cut      map[int]cutState
	cutTrig  map[int]cutTrigger
}

// cutState is a link's partition state.
type cutState int

const (
	cutNone   cutState = iota
	cutOneWay          // outbound frames black-holed; acks still flow
	cutBoth            // both directions black-holed
)

// netRule is one frame-schedule rule: fire on the node's nth outbound
// data/flush frame (1-based), and every `every` frames after that.
type netRule struct {
	node  int
	kind  Kind
	at    int64
	every int64
	delay time.Duration
}

func (r netRule) matches(node int, nth int64) bool {
	if r.node != AnyNode && r.node != node {
		return false
	}
	if nth < r.at {
		return false
	}
	if nth == r.at {
		return true
	}
	return r.every > 0 && (nth-r.at)%r.every == 0
}

// cutTrigger arms a deterministic partition: the link is cut when the
// transport writes its nth data/flush frame towards the node.
type cutTrigger struct {
	at     int64
	oneWay bool
}

// New returns an injector whose probabilistic rules draw from a
// generator seeded with seed (counter-based rules need no randomness).
func New(seed int64) *Injector {
	return &Injector{
		rng:       rand.New(rand.NewSource(seed)),
		seen:      make(map[int]int64),
		injected:  make(map[Kind]int64),
		ckptSeen:  make(map[int]int64),
		emitSeen:  make(map[string]int64),
		crashCkpt: make(map[int]map[int64]bool),
		tearCkpt:  make(map[int]map[int64]bool),
		crashEmit: make(map[string]map[int64]bool),
		pressure:  make(map[string]int64),
		exhausted: make(map[string]bool),
		cut:       make(map[int]cutState),
		cutTrig:   make(map[int]cutTrigger),
	}
}

// PanicAt crashes the worker when node processes its nth tuple.
func (i *Injector) PanicAt(node int, nth int64) *Injector {
	return i.add(rule{node: node, kind: KindPanic, at: nth})
}

// PanicWithProb crashes the worker with probability p per tuple.
func (i *Injector) PanicWithProb(node int, p float64) *Injector {
	return i.add(rule{node: node, kind: KindPanic, prob: p})
}

// ErrorAt fails the ingest of node's nth tuple.
func (i *Injector) ErrorAt(node int, nth int64) *Injector {
	return i.add(rule{node: node, kind: KindError, at: nth})
}

// ErrorEvery fails every everyth ingest on node, starting with the
// everyth tuple.
func (i *Injector) ErrorEvery(node int, every int64) *Injector {
	return i.add(rule{node: node, kind: KindError, at: every, every: every})
}

// DelayEvery stalls node for d before every everyth tuple (every=1
// slows every tuple).
func (i *Injector) DelayEvery(node int, every int64, d time.Duration) *Injector {
	return i.add(rule{node: node, kind: KindDelay, at: every, every: every, delay: d})
}

// CrashAtCheckpoint crashes the worker at the start of node's nth
// checkpoint attempt (1-based): the state is exported but never
// committed, so recovery must fall back to the previous checkpoint plus
// the replay log.
func (i *Injector) CrashAtCheckpoint(node int, nth int64) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashCkpt[node] == nil {
		i.crashCkpt[node] = make(map[int64]bool)
	}
	i.crashCkpt[node][nth] = true
	return i
}

// TearCheckpointAt corrupts the bytes of node's nth checkpoint attempt
// (1-based), simulating a crash mid-write: the commit happens but fails
// verification, and restores fall back to the previous checkpoint.
func (i *Injector) TearCheckpointAt(node int, nth int64) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.tearCkpt[node] == nil {
		i.tearCkpt[node] = make(map[int64]bool)
	}
	i.tearCkpt[node][nth] = true
	return i
}

// CrashAfterEmit crashes the worker right after the query's nth window
// (1-based, counting delivered windows) leaves the emit gate — after
// delivery, before acknowledgement. Recovery replays the window's
// inputs, and the gate's high-water mark must suppress the duplicate.
func (i *Injector) CrashAfterEmit(queryID string, nth int64) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.crashEmit[queryID] == nil {
		i.crashEmit[queryID] = make(map[int64]bool)
	}
	i.crashEmit[queryID][nth] = true
	return i
}

// OnStream restricts the most recently added rule to one stream name.
func (i *Injector) OnStream(name string) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(i.rules) > 0 {
		i.rules[len(i.rules)-1].stream = name
	}
	return i
}

func (i *Injector) add(r rule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = append(i.rules, r)
	return i
}

// Injected reports how many faults of a kind have fired.
func (i *Injector) Injected(k Kind) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected[k]
}

// BeforeProcess implements cluster.FaultInjector. Delay rules act
// first, then at most one panic or error fires per tuple (panic wins).
func (i *Injector) BeforeProcess(node int, stream string) error {
	i.mu.Lock()
	i.seen[node]++
	count := i.seen[node]
	var delay time.Duration
	doPanic := false
	var err error
	for _, r := range i.rules {
		if !r.matches(node, stream, count, i.rng) {
			continue
		}
		switch r.kind {
		case KindDelay:
			delay += r.delay
		case KindPanic:
			doPanic = true
		case KindError:
			if err == nil {
				err = fmt.Errorf("%w (node %d, tuple %d)", ErrInjected, node, count)
			}
		}
	}
	if delay > 0 {
		i.injected[KindDelay]++
	}
	if doPanic {
		i.injected[KindPanic]++
	} else if err != nil {
		i.injected[KindError]++
	}
	i.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if doPanic {
		panic(PanicValue)
	}
	return err
}

// BeforeCheckpoint implements cluster.CheckpointFaultInjector: it counts
// the node's checkpoint attempt and crashes the worker when a
// CrashAtCheckpoint rule matches.
func (i *Injector) BeforeCheckpoint(node int) {
	i.mu.Lock()
	i.ckptSeen[node]++
	fire := i.crashCkpt[node][i.ckptSeen[node]]
	if fire {
		i.injected[KindCrashCheckpoint]++
	}
	i.mu.Unlock()
	if fire {
		panic(CheckpointPanicValue)
	}
}

// TearCheckpoint implements cluster.CheckpointFaultInjector: it reports
// whether the current attempt's bytes should be corrupted. It reads the
// attempt counter BeforeCheckpoint advanced — the two hooks describe the
// same attempt.
func (i *Injector) TearCheckpoint(node int) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.tearCkpt[node][i.ckptSeen[node]] {
		i.injected[KindTornCheckpoint]++
		return true
	}
	return false
}

// PressureOn attributes bytes of synthetic memory pressure to a query:
// every budget-enforcement pass sees the query's measured usage
// inflated by this amount until the pressure is changed or cleared
// (bytes <= 0 clears). It stands in for a genuinely unbounded query
// without having to grow real state.
func (i *Injector) PressureOn(queryID string, bytes int64) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	if bytes <= 0 {
		delete(i.pressure, queryID)
	} else {
		i.pressure[queryID] = bytes
	}
	return i
}

// ExhaustTenant forces every quota admission for the tenant to fail
// until RestoreTenant is called.
func (i *Injector) ExhaustTenant(tenant string) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.exhausted[tenant] = true
	return i
}

// RestoreTenant lifts ExhaustTenant.
func (i *Injector) RestoreTenant(tenant string) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.exhausted, tenant)
	return i
}

// PressureFor implements cluster.GovernanceFaultInjector: the synthetic
// bytes added to the query's measured usage this pass.
func (i *Injector) PressureFor(queryID string) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	b := i.pressure[queryID]
	if b > 0 {
		i.injected[KindMemPressure]++
	}
	return b
}

// TenantExhausted implements cluster.GovernanceFaultInjector: whether
// the tenant's admissions are currently forced to fail.
func (i *Injector) TenantExhausted(tenant string) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.exhausted[tenant] {
		i.injected[KindQuotaExhausted]++
		return true
	}
	return false
}

// AfterEmit implements cluster.EmitFaultInjector: it counts the query's
// delivered windows and crashes the worker when a CrashAfterEmit rule
// matches. The panic unwinds through the engine's execution path into
// the supervisor, exactly like a crash between delivery and ack.
func (i *Injector) AfterEmit(queryID string, windowEnd int64) {
	i.mu.Lock()
	i.emitSeen[queryID]++
	fire := i.crashEmit[queryID][i.emitSeen[queryID]]
	if fire {
		i.injected[KindCrashEmit]++
	}
	i.mu.Unlock()
	if fire {
		panic(EmitPanicValue)
	}
}

// ---- network chaos (the transport.NetFaultInjector hooks) ----

// DropFrameAt discards the nth data/flush frame written towards node
// (1-based). The frame stays in the sender's unacked window and is
// recovered by the retransmission clock.
func (i *Injector) DropFrameAt(node int, nth int64) *Injector {
	return i.addNet(netRule{node: node, kind: KindNetDrop, at: nth})
}

// DropFrameEvery discards every everyth frame towards node.
func (i *Injector) DropFrameEvery(node int, every int64) *Injector {
	return i.addNet(netRule{node: node, kind: KindNetDrop, at: every, every: every})
}

// DelayFrameEvery stalls every everyth frame towards node for d before
// it is written — a slow link (every=1 slows every frame).
func (i *Injector) DelayFrameEvery(node int, every int64, d time.Duration) *Injector {
	return i.addNet(netRule{node: node, kind: KindNetDelay, at: every, every: every, delay: d})
}

// DuplicateFrameAt writes the nth frame towards node twice; the
// receiver must deduplicate by sequence number.
func (i *Injector) DuplicateFrameAt(node int, nth int64) *Injector {
	return i.addNet(netRule{node: node, kind: KindNetDup, at: nth})
}

// DuplicateFrameEvery duplicates every everyth frame towards node.
func (i *Injector) DuplicateFrameEvery(node int, every int64) *Injector {
	return i.addNet(netRule{node: node, kind: KindNetDup, at: every, every: every})
}

// ReorderFrameAt delays the nth frame towards node past its successor;
// the receiver must restore sequence order.
func (i *Injector) ReorderFrameAt(node int, nth int64) *Injector {
	return i.addNet(netRule{node: node, kind: KindNetReorder, at: nth})
}

// ReorderFrameEvery reorders every everyth frame towards node.
func (i *Injector) ReorderFrameEvery(node int, every int64) *Injector {
	return i.addNet(netRule{node: node, kind: KindNetReorder, at: every, every: every})
}

// CutLink cuts node's link symmetrically: frames in both directions
// are black-holed until HealLink.
func (i *Injector) CutLink(node int) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cut[node] = cutBoth
	return i
}

// CutLinkOneWay cuts only the outbound direction of node's link:
// frames towards the node vanish while acknowledgements still flow —
// the asymmetric partial partition real networks produce.
func (i *Injector) CutLinkOneWay(node int) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cut[node] = cutOneWay
	return i
}

// HealLink reconnects node's link (lifts CutLink/CutLinkOneWay and
// disarms a pending CutLinkAtFrame trigger).
func (i *Injector) HealLink(node int) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.cut, node)
	delete(i.cutTrig, node)
	return i
}

// CutLinkAtFrame arms a deterministic partition: the link to node is
// cut (symmetric, or one-way when oneWay) the moment the transport
// writes its nth data/flush frame towards the node. The nth frame
// itself is the first casualty.
func (i *Injector) CutLinkAtFrame(node int, nth int64, oneWay bool) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.cutTrig[node] = cutTrigger{at: nth, oneWay: oneWay}
	return i
}

func (i *Injector) addNet(r netRule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.netRules = append(i.netRules, r)
	return i
}

// NetPartitioned implements transport.NetFaultInjector: whether the
// given direction of node's link is currently black-holed. One-way
// cuts drop only outbound frames (inbound = the node's acks).
func (i *Injector) NetPartitioned(node int, inbound bool) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	switch i.cut[node] {
	case cutBoth:
		i.injected[KindNetPartition]++
		return true
	case cutOneWay:
		if !inbound {
			i.injected[KindNetPartition]++
			return true
		}
	}
	return false
}

// NetFrameAction implements transport.NetFaultInjector: the fault
// schedule for the nth data/flush frame written towards node. At most
// one of drop/dup/reorder fires per frame (drop wins, then dup);
// delays stack. A CutLinkAtFrame trigger reaching its frame arms the
// partition before the schedule is consulted.
func (i *Injector) NetFrameAction(node int, nth int64) (drop, dup, reorder bool, delay time.Duration) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if trig, ok := i.cutTrig[node]; ok && nth >= trig.at {
		if trig.oneWay {
			i.cut[node] = cutOneWay
		} else {
			i.cut[node] = cutBoth
		}
		delete(i.cutTrig, node)
		i.injected[KindNetPartition]++
	}
	for _, r := range i.netRules {
		if !r.matches(node, nth) {
			continue
		}
		switch r.kind {
		case KindNetDrop:
			drop = true
		case KindNetDup:
			dup = true
		case KindNetReorder:
			reorder = true
		case KindNetDelay:
			delay += r.delay
		}
	}
	if drop {
		dup, reorder = false, false
		i.injected[KindNetDrop]++
	} else if dup {
		reorder = false
		i.injected[KindNetDup]++
	} else if reorder {
		i.injected[KindNetReorder]++
	}
	if delay > 0 {
		i.injected[KindNetDelay]++
	}
	return drop, dup, reorder, delay
}

// LinkCut reports whether node's link is currently cut. A pending
// CutLinkAtFrame trigger that has not fired yet reports false — tests
// use this to wait for an armed partition to bite before healing it.
func (i *Injector) LinkCut(node int) bool {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cut[node] != cutNone
}

// Package faults is a deterministic, seedable fault-injection layer for
// chaos-testing the cluster runtime. An Injector satisfies
// cluster.FaultInjector: it hooks each worker's loop before a tuple is
// processed and can panic (simulated worker crash, handled by the
// supervisor), return an error (simulated ingest failure), or sleep
// (simulated slow node, which exercises backpressure).
//
// Triggers are counter-based — "the Nth tuple this node processes" —
// so chaos runs replay identically, or probabilistic with a seeded
// generator so a failing run reproduces from its seed.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind classifies an injected fault.
type Kind int

const (
	// KindPanic crashes the worker goroutine.
	KindPanic Kind = iota
	// KindError fails the ingest of one tuple.
	KindError
	// KindDelay stalls the worker, simulating a slow node.
	KindDelay
)

func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	default:
		return "delay"
	}
}

// ErrInjected is the error returned by injected ingest failures.
var ErrInjected = errors.New("faults: injected ingest error")

// PanicValue is the value injected panics carry, so supervisors and
// tests can recognise a simulated crash.
const PanicValue = "faults: injected worker panic"

// AnyNode matches every node in a rule.
const AnyNode = -1

type rule struct {
	node   int // AnyNode or a node id
	kind   Kind
	at     int64   // fire when the node's tuple count reaches at (1-based)
	every  int64   // and every `every` tuples after that; 0 = fire once
	prob   float64 // probabilistic alternative to at/every
	delay  time.Duration
	stream string // restrict to one stream; "" = any
}

func (r rule) matches(node int, stream string, count int64, rng *rand.Rand) bool {
	if r.node != AnyNode && r.node != node {
		return false
	}
	if r.stream != "" && r.stream != stream {
		return false
	}
	if r.prob > 0 {
		return rng.Float64() < r.prob
	}
	if count < r.at {
		return false
	}
	if count == r.at {
		return true
	}
	return r.every > 0 && (count-r.at)%r.every == 0
}

// Injector injects worker faults according to its rules. All methods
// are safe for concurrent use; rule setup should happen before the
// workload starts for reproducible runs.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	rules    []rule
	seen     map[int]int64 // node -> tuples observed
	injected map[Kind]int64
}

// New returns an injector whose probabilistic rules draw from a
// generator seeded with seed (counter-based rules need no randomness).
func New(seed int64) *Injector {
	return &Injector{
		rng:      rand.New(rand.NewSource(seed)),
		seen:     make(map[int]int64),
		injected: make(map[Kind]int64),
	}
}

// PanicAt crashes the worker when node processes its nth tuple.
func (i *Injector) PanicAt(node int, nth int64) *Injector {
	return i.add(rule{node: node, kind: KindPanic, at: nth})
}

// PanicWithProb crashes the worker with probability p per tuple.
func (i *Injector) PanicWithProb(node int, p float64) *Injector {
	return i.add(rule{node: node, kind: KindPanic, prob: p})
}

// ErrorAt fails the ingest of node's nth tuple.
func (i *Injector) ErrorAt(node int, nth int64) *Injector {
	return i.add(rule{node: node, kind: KindError, at: nth})
}

// ErrorEvery fails every everyth ingest on node, starting with the
// everyth tuple.
func (i *Injector) ErrorEvery(node int, every int64) *Injector {
	return i.add(rule{node: node, kind: KindError, at: every, every: every})
}

// DelayEvery stalls node for d before every everyth tuple (every=1
// slows every tuple).
func (i *Injector) DelayEvery(node int, every int64, d time.Duration) *Injector {
	return i.add(rule{node: node, kind: KindDelay, at: every, every: every, delay: d})
}

// OnStream restricts the most recently added rule to one stream name.
func (i *Injector) OnStream(name string) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	if len(i.rules) > 0 {
		i.rules[len(i.rules)-1].stream = name
	}
	return i
}

func (i *Injector) add(r rule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = append(i.rules, r)
	return i
}

// Injected reports how many faults of a kind have fired.
func (i *Injector) Injected(k Kind) int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.injected[k]
}

// BeforeProcess implements cluster.FaultInjector. Delay rules act
// first, then at most one panic or error fires per tuple (panic wins).
func (i *Injector) BeforeProcess(node int, stream string) error {
	i.mu.Lock()
	i.seen[node]++
	count := i.seen[node]
	var delay time.Duration
	doPanic := false
	var err error
	for _, r := range i.rules {
		if !r.matches(node, stream, count, i.rng) {
			continue
		}
		switch r.kind {
		case KindDelay:
			delay += r.delay
		case KindPanic:
			doPanic = true
		case KindError:
			if err == nil {
				err = fmt.Errorf("%w (node %d, tuple %d)", ErrInjected, node, count)
			}
		}
	}
	if delay > 0 {
		i.injected[KindDelay]++
	}
	if doPanic {
		i.injected[KindPanic]++
	} else if err != nil {
		i.injected[KindError]++
	}
	i.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if doPanic {
		panic(PanicValue)
	}
	return err
}

package faults

import (
	"errors"
	"testing"
	"time"
)

func TestCounterRulesAreDeterministic(t *testing.T) {
	for run := 0; run < 2; run++ {
		inj := New(1).ErrorAt(0, 3).ErrorEvery(1, 2)
		var errs0, errs1 int
		for i := 0; i < 10; i++ {
			if err := inj.BeforeProcess(0, "s"); err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("wrong error type: %v", err)
				}
				errs0++
			}
			if err := inj.BeforeProcess(1, "s"); err != nil {
				errs1++
			}
		}
		if errs0 != 1 {
			t.Errorf("run %d: ErrorAt fired %d times, want 1", run, errs0)
		}
		if errs1 != 5 {
			t.Errorf("run %d: ErrorEvery(2) fired %d times over 10 tuples, want 5", run, errs1)
		}
		if got := inj.Injected(KindError); got != int64(errs0+errs1) {
			t.Errorf("run %d: Injected(KindError) = %d, want %d", run, got, errs0+errs1)
		}
	}
}

func TestPanicAtFiresOnceAndIsRecognisable(t *testing.T) {
	inj := New(1).PanicAt(2, 2)
	if err := inj.BeforeProcess(2, "s"); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if r := recover(); r != PanicValue {
				t.Errorf("panic value = %v, want %q", r, PanicValue)
			}
		}()
		inj.BeforeProcess(2, "s")
		t.Error("second tuple did not panic")
	}()
	// Fires once: the counter has moved past the trigger.
	if err := inj.BeforeProcess(2, "s"); err != nil {
		t.Fatal(err)
	}
	if got := inj.Injected(KindPanic); got != 1 {
		t.Errorf("Injected(KindPanic) = %d, want 1", got)
	}
}

func TestStreamScopedRule(t *testing.T) {
	inj := New(1).ErrorAt(AnyNode, 1).OnStream("hot")
	if err := inj.BeforeProcess(0, "cold"); err != nil {
		t.Errorf("rule fired on wrong stream: %v", err)
	}
	// Counter already advanced past 1 on node 0; node 1 still triggers.
	if err := inj.BeforeProcess(1, "hot"); err == nil {
		t.Error("stream-scoped rule did not fire")
	}
}

func TestProbabilisticRuleReproducesUnderSameSeed(t *testing.T) {
	fire := func(seed int64) []bool {
		inj := New(seed).PanicWithProb(0, 0.3)
		out := make([]bool, 20)
		for i := range out {
			func(i int) {
				defer func() { out[i] = recover() != nil }()
				inj.BeforeProcess(0, "s")
			}(i)
		}
		return out
	}
	a, b := fire(42), fire(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at tuple %d", i)
		}
	}
}

func TestDelayRuleSleeps(t *testing.T) {
	inj := New(1).DelayEvery(0, 1, 2*time.Millisecond)
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := inj.BeforeProcess(0, "s"); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 6*time.Millisecond {
		t.Errorf("3 delayed tuples took %v, want >= 6ms", d)
	}
	if got := inj.Injected(KindDelay); got != 3 {
		t.Errorf("Injected(KindDelay) = %d, want 3", got)
	}
}

// Package stream implements the streaming substrate of ExaStream: CQL
// time-based sliding windows with snapshot semantics (Arasu et al., the
// semantics the paper's SQL(+) dialect conforms to), the paper's two core
// stream operators — timeSlidingWindow, which groups tuples into windows
// and tags them with window ids, and wCache, which indexes window batches
// by their id so many concurrent queries share one materialisation — and
// the pulse clock that paces query output.
package stream

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// Timestamped is one stream element: a relational tuple plus its
// timestamp in milliseconds.
type Timestamped struct {
	TS  int64
	Row relation.Tuple
}

// Schema describes a stream: a name, the tuple schema, and which column
// carries the timestamp (the generator keeps them consistent).
type Schema struct {
	Name  string
	Tuple relation.Schema
	TSCol string
}

// Validate checks that the timestamp column exists.
func (s Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("stream: empty stream name")
	}
	if _, err := s.Tuple.IndexOf(s.TSCol); err != nil {
		return fmt.Errorf("stream: %s: timestamp column: %w", s.Name, err)
	}
	return nil
}

// WindowSpec is a time-based sliding window: at every pulse time
// t_i = Start + i*Slide the window holds tuples with t_i-Range < ts <= t_i
// (half-open on the left, the usual CQL convention, so tumbling windows
// partition the stream and boundary tuples are never double-counted).
type WindowSpec struct {
	RangeMS int64
	SlideMS int64
	StartMS int64
}

// Validate rejects non-positive ranges and slides.
func (w WindowSpec) Validate() error {
	if w.RangeMS <= 0 || w.SlideMS <= 0 {
		return fmt.Errorf("stream: window range and slide must be positive, got %d/%d", w.RangeMS, w.SlideMS)
	}
	return nil
}

// PulseTime returns t_i for window id i.
func (w WindowSpec) PulseTime(id int64) int64 { return w.StartMS + id*w.SlideMS }

// WindowsFor returns the inclusive range [lo, hi] of window ids whose
// interval contains a tuple at ts; ok is false when no window contains it
// (ts before the first pulse's coverage).
func (w WindowSpec) WindowsFor(ts int64) (lo, hi int64, ok bool) {
	// Need: PulseTime(i) - Range < ts <= PulseTime(i)
	// i >= (ts - Start)/Slide            (ceil)
	// i <  (ts + Range - Start)/Slide    (strict; ceil-1 handles exact hits)
	lo = ceilDiv(ts-w.StartMS, w.SlideMS)
	if lo < 0 {
		lo = 0
	}
	hi = ceilDiv(ts+w.RangeMS-w.StartMS, w.SlideMS) - 1
	return lo, hi, hi >= lo && hi >= 0
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) != (b > 0) {
		q--
	}
	return q
}

// Batch is the contents of one window instance: the paper's
// timeSlidingWindow operator "groups tuples that belong to the same time
// window and associates them with a unique window id".
type Batch struct {
	WindowID int64
	Start    int64 // exclusive window start (PulseTime - Range)
	End      int64 // inclusive window end (PulseTime)
	Rows     []relation.Tuple

	// cols, when non-nil, is a shared lazy cell holding the batch's
	// columnar form. The window operator allocates it at emission time,
	// before the batch value is copied into the wCache and per-query
	// deliveries, so every copy transposes at most once between them.
	// The field is unexported on purpose: gob skips it, keeping
	// checkpoint snapshots byte-identical whether or not a window was
	// ever transposed.
	cols *colCell
}

// colCell is the share point of a batch's lazy transpose. Copies of a
// Batch carry the same pointer; the first Columns call materialises the
// columnar form once for all of them.
type colCell struct {
	once sync.Once
	cb   atomic.Pointer[relation.ColBatch]
	// rowBytes memoizes the flat-row byte estimate (Σ tupleBytes). A
	// batch's rows are immutable once it is emitted — the point the cell
	// is attached — so the sum is computed at most once per batch no
	// matter how many copies or governance checks ask for it. 0 means
	// not yet computed (an empty row set just recomputes, trivially).
	rowBytes atomic.Int64
}

// ensureColumnCell gives the batch a columnar cell so copies made from
// it share one transpose. Idempotent; called at every emission point.
func (b *Batch) ensureColumnCell() {
	if b.cols == nil {
		b.cols = &colCell{}
	}
}

// Columns returns the batch in columnar form, transposing on first use.
// Batches emitted by a window operator (or stored in a WCache) share
// one transpose across all copies; a zero-built Batch (e.g. decoded
// from a checkpoint and not yet cached) transposes privately. Safe for
// concurrent use.
func (b Batch) Columns() *relation.ColBatch {
	c := b.cols
	if c == nil {
		return relation.Transpose(b.Rows)
	}
	c.once.Do(func() { c.cb.Store(relation.Transpose(b.Rows)) })
	return c.cb.Load()
}

// Columnar reports whether the columnar form has been materialised
// (and therefore contributes to Bytes).
func (b Batch) Columnar() bool {
	return b.cols != nil && b.cols.cb.Load() != nil
}

// Byte-estimate model for governance accounting. Values are flat
// structs (~48 B: tag + three scalars) plus string payload; tuples and
// batches add slice-header overhead. The estimates only need to be
// consistent and monotone in the real footprint — budgets and shed
// decisions compare them against each other, never against the
// allocator.
const (
	batchOverheadBytes = 64
	tupleOverheadBytes = 24
	valueOverheadBytes = 48
)

func tupleBytes(row relation.Tuple) int64 {
	n := int64(tupleOverheadBytes)
	for _, v := range row {
		n += valueOverheadBytes + int64(len(v.Str))
	}
	return n
}

// Bytes estimates the batch's memory footprint under the accounting
// model used for window budgets. A batch whose columnar form has been
// materialised carries both layouts in memory, so the estimate covers
// both: the flat row model plus the column vectors (typed payloads and
// null bitmaps; see relation's Vector/ColBatch byte model).
func (b Batch) Bytes() int64 {
	if c := b.cols; c != nil {
		rb := c.rowBytes.Load()
		if rb == 0 {
			for _, row := range b.Rows {
				rb += tupleBytes(row)
			}
			c.rowBytes.Store(rb)
		}
		return batchOverheadBytes + rb + c.cb.Load().Bytes() // nil-safe: 0 until materialised
	}
	n := int64(batchOverheadBytes)
	for _, row := range b.Rows {
		n += tupleBytes(row)
	}
	return n
}

// TimeSlidingWindow consumes an ordered stream of timestamped tuples and
// emits completed window batches. Tuples that fall into several
// overlapping windows (Range > Slide) are placed in each.
//
// The operator assumes non-decreasing timestamps; late tuples are counted
// and dropped (the stream generator never produces them, but failure
// injection tests do).
//
// Open-window bytes are accounted incrementally (PendingBytes) so the
// resource-governance layer can observe pressure without walking the
// pending map, and ShedOldestPending lets it reclaim memory by dropping
// the oldest open window wholesale.
type TimeSlidingWindow struct {
	Spec WindowSpec

	mu       sync.Mutex
	pending  map[int64]*Batch
	nextEmit int64 // smallest window id not yet emitted
	maxTS    int64
	Late     int64 // dropped late tuples

	pendingBytes int64          // estimated bytes across pending batches
	shed         map[int64]bool // window ids dropped by governance; never emit
	Shed         int64          // count of shed windows (monotonic)
}

// NewTimeSlidingWindow builds the operator.
func NewTimeSlidingWindow(spec WindowSpec) (*TimeSlidingWindow, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &TimeSlidingWindow{Spec: spec, pending: make(map[int64]*Batch), maxTS: -1 << 62}, nil
}

// Push adds one tuple and returns any windows completed by the advance of
// time to its timestamp, in window-id order.
func (t *TimeSlidingWindow) Push(el Timestamped) []Batch {
	t.mu.Lock()
	defer t.mu.Unlock()
	if el.TS < t.maxTS {
		t.Late++
		return nil
	}
	t.maxTS = el.TS
	lo, hi, ok := t.Spec.WindowsFor(el.TS)
	if ok {
		rowCost := tupleBytes(el.Row)
		for id := lo; id <= hi; id++ {
			if id < t.nextEmit || t.shed[id] {
				continue // window already emitted or shed; treat as late
			}
			b, found := t.pending[id]
			if !found {
				pt := t.Spec.PulseTime(id)
				b = &Batch{WindowID: id, Start: pt - t.Spec.RangeMS, End: pt}
				t.pending[id] = b
				t.pendingBytes += batchOverheadBytes
			}
			b.Rows = append(b.Rows, el.Row)
			t.pendingBytes += rowCost
		}
	}
	return t.completeLocked(el.TS)
}

// completeLocked emits every window whose end time has passed. Shed
// windows are skipped entirely — no empty batch is synthesized for
// them, because shedding is declared data loss, not an empty window.
func (t *TimeSlidingWindow) completeLocked(now int64) []Batch {
	var out []Batch
	for {
		if t.Spec.PulseTime(t.nextEmit) >= now {
			break
		}
		if t.shed[t.nextEmit] {
			delete(t.shed, t.nextEmit)
			t.nextEmit++
			continue
		}
		b, found := t.pending[t.nextEmit]
		if found {
			delete(t.pending, t.nextEmit)
			t.pendingBytes -= b.Bytes()
			b.ensureColumnCell() // before the first copy, so all copies share one transpose
			out = append(out, *b)
		} else {
			pt := t.Spec.PulseTime(t.nextEmit)
			out = append(out, Batch{WindowID: t.nextEmit, Start: pt - t.Spec.RangeMS, End: pt, cols: &colCell{}})
		}
		t.nextEmit++
	}
	return out
}

// Flush emits all remaining pending windows at end of stream.
func (t *TimeSlidingWindow) Flush() []Batch {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int64, 0, len(t.pending))
	for id := range t.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Batch
	for _, id := range ids {
		if id < t.nextEmit {
			continue
		}
		b := t.pending[id]
		b.ensureColumnCell()
		out = append(out, *b)
	}
	t.pending = make(map[int64]*Batch)
	t.pendingBytes = 0
	t.shed = nil
	if len(ids) > 0 && ids[len(ids)-1] >= t.nextEmit {
		t.nextEmit = ids[len(ids)-1] + 1
	}
	return out
}

// PendingBytes returns the estimated size of all open windows.
func (t *TimeSlidingWindow) PendingBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pendingBytes
}

// ShedOldestPending drops the oldest open window in full and returns the
// bytes reclaimed. The shed window will never emit — not even as an
// empty batch — and tuples still arriving for it are dropped. ok is
// false when there is nothing to shed.
func (t *TimeSlidingWindow) ShedOldestPending() (freed int64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	oldest := int64(1<<62 - 1)
	for id := range t.pending {
		if id < oldest {
			oldest = id
		}
	}
	b, found := t.pending[oldest]
	if !found {
		return 0, false
	}
	delete(t.pending, oldest)
	freed = b.Bytes()
	t.pendingBytes -= freed
	if t.shed == nil {
		t.shed = make(map[int64]bool)
	}
	t.shed[oldest] = true
	t.Shed++
	return freed, true
}

// WindowState is a serializable snapshot of a TimeSlidingWindow taken
// at a consistent cut: the open (pending) batches, the emission cursor,
// and the late-tuple bookkeeping. Row slices are deep-copied so the
// snapshot stays stable while the live operator keeps appending.
type WindowState struct {
	Spec     WindowSpec
	Pending  []Batch
	NextEmit int64
	MaxTS    int64
	Late     int64
}

// Snapshot captures the operator's current state for checkpointing.
func (t *TimeSlidingWindow) Snapshot() WindowState {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := WindowState{Spec: t.Spec, NextEmit: t.nextEmit, MaxTS: t.maxTS, Late: t.Late}
	ids := make([]int64, 0, len(t.pending))
	for id := range t.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b := *t.pending[id]
		b.Rows = append([]relation.Tuple(nil), b.Rows...)
		st.Pending = append(st.Pending, b)
	}
	return st
}

// RestoreTimeSlidingWindow rebuilds an operator from a snapshot. The
// restored operator continues exactly where the snapshot left off:
// windows at or past NextEmit are still open, everything before it has
// already been emitted and will never re-emit.
func RestoreTimeSlidingWindow(st WindowState) (*TimeSlidingWindow, error) {
	if err := st.Spec.Validate(); err != nil {
		return nil, err
	}
	t := &TimeSlidingWindow{Spec: st.Spec, pending: make(map[int64]*Batch, len(st.Pending)), nextEmit: st.NextEmit, maxTS: st.MaxTS, Late: st.Late}
	for _, b := range st.Pending {
		if b.WindowID < st.NextEmit {
			continue
		}
		cp := b
		cp.Rows = append([]relation.Tuple(nil), b.Rows...)
		t.pending[b.WindowID] = &cp
		t.pendingBytes += cp.Bytes()
	}
	return t, nil
}

// Replay runs a finite, ordered tuple sequence through a window operator
// and returns all batches (including the flush).
func Replay(spec WindowSpec, els []Timestamped) ([]Batch, error) {
	w, err := NewTimeSlidingWindow(spec)
	if err != nil {
		return nil, err
	}
	var out []Batch
	for _, el := range els {
		out = append(out, w.Push(el)...)
	}
	out = append(out, w.Flush()...)
	return out, nil
}

// Pulse is the output clock of a continuous query: it fires at
// Start + k*Frequency, pacing when results are reported (the STARQL
// "USING PULSE WITH START..., FREQUENCY..." clause).
type Pulse struct {
	StartMS     int64
	FrequencyMS int64
}

// Validate rejects non-positive frequencies.
func (p Pulse) Validate() error {
	if p.FrequencyMS <= 0 {
		return fmt.Errorf("stream: pulse frequency must be positive")
	}
	return nil
}

// Ticks returns the pulse times in (from, to]; it is used by the replayer
// to decide which window results to surface.
func (p Pulse) Ticks(from, to int64) []int64 {
	if to <= from {
		return nil
	}
	var out []int64
	// First tick strictly after from.
	k := ceilDiv(from-p.StartMS+1, p.FrequencyMS)
	if k < 0 {
		k = 0
	}
	for {
		t := p.StartMS + k*p.FrequencyMS
		if t > to {
			break
		}
		if t > from {
			out = append(out, t)
		}
		k++
	}
	return out
}

package stream

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/relation"
)

// TestBatchBytesPinsBothLayouts pins the byte-accounting model for the
// flat and columnar layouts against explicit constant arithmetic, so a
// change to either model is a deliberate test edit rather than a silent
// governance-budget shift.
func TestBatchBytesPinsBothLayouts(t *testing.T) {
	rows := []relation.Tuple{
		{relation.Int(1), relation.String_("abc")},
		{relation.Int(2), relation.Null},
	}
	b := Batch{WindowID: 1, Start: 0, End: 1000, Rows: rows}
	b.ensureColumnCell()

	// Flat model: batch header + per-tuple header + per-value cost
	// (+ string payload).
	flat := int64(batchOverheadBytes) +
		2*(tupleOverheadBytes+2*valueOverheadBytes) +
		int64(len("abc"))
	if got := b.Bytes(); got != flat {
		t.Fatalf("flat Bytes = %d, want %d", got, flat)
	}

	// Materialising the columnar form adds the column vectors on top of
	// the flat rows (both layouts are resident).
	cb := b.Columns()
	if !b.Columnar() {
		t.Fatal("Columnar() = false after Columns()")
	}
	// Column 0 (TInt, 2 values, no NULLs): header + 8 B per element.
	col0 := int64(relation.VectorOverheadBytes) + 2*8
	// Column 1 (TString with one NULL): header + string headers +
	// payload + null bitmap (header + one word).
	col1 := int64(relation.VectorOverheadBytes) + 2*16 + int64(len("abc")) +
		relation.BitmapOverheadBytes + 8
	colBytes := int64(relation.ColBatchOverheadBytes) + col0 + col1
	if got := cb.Bytes(); got != colBytes {
		t.Fatalf("ColBatch.Bytes = %d, want %d", got, colBytes)
	}
	if got := b.Bytes(); got != flat+colBytes {
		t.Fatalf("columnar Bytes = %d, want flat %d + cols %d = %d", got, flat, colBytes, flat+colBytes)
	}

	// The memoized row estimate must agree with a fresh walk: a copy of
	// the batch without the cell reports exactly the flat model.
	bare := Batch{WindowID: 1, Start: 0, End: 1000, Rows: rows}
	if got := bare.Bytes(); got != flat {
		t.Fatalf("cell-less Bytes = %d, want %d", got, flat)
	}
}

// TestBatchGobSkipsColumnarCell pins the serialization contract the
// checkpoint path relies on: the columnar cell is runtime-only state,
// so a batch gob-encodes byte-identically whether or not its transpose
// has been materialized, and a decoded batch comes back cell-less.
func TestBatchGobSkipsColumnarCell(t *testing.T) {
	enc := func(b Batch) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(b); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	b := Batch{WindowID: 9, Start: 0, End: 1000, Rows: []relation.Tuple{
		{relation.Int(1), relation.String_("abc")},
		{relation.Int(2), relation.Null},
	}}
	b.ensureColumnCell()
	before := enc(b)
	b.Columns() // materialize the shared transpose
	if !b.Columnar() {
		t.Fatal("transpose did not materialize")
	}
	if after := enc(b); !bytes.Equal(before, after) {
		t.Fatal("materializing the transpose changed the batch's gob encoding")
	}

	var back Batch
	if err := gob.NewDecoder(bytes.NewReader(before)).Decode(&back); err != nil {
		t.Fatal(err)
	}
	if back.Columnar() {
		t.Error("decoded batch claims a materialized transpose")
	}
	if got, want := back.Bytes(), b.Bytes()-b.Columns().Bytes(); got != want {
		t.Errorf("decoded batch Bytes = %d, want the flat model %d", got, want)
	}
}

// TestBatchSharedTranspose pins the sharing contract: copies of an
// emitted batch transpose once, and a zero-built batch transposes
// privately without panicking.
func TestBatchSharedTranspose(t *testing.T) {
	rows := []relation.Tuple{{relation.Int(7), relation.Float(1.5)}}
	b := Batch{WindowID: 2, Rows: rows}
	b.ensureColumnCell()
	copyA, copyB := b, b
	if copyA.Columns() != copyB.Columns() {
		t.Error("copies of one batch did not share the transpose")
	}
	if b.Columns().Len() != 1 || b.Columns().Arity() != 2 {
		t.Errorf("transpose shape = %dx%d", b.Columns().Len(), b.Columns().Arity())
	}

	bare := Batch{WindowID: 3, Rows: rows}
	cb1, cb2 := bare.Columns(), bare.Columns()
	if cb1 == cb2 {
		t.Error("cell-less batch unexpectedly cached its transpose")
	}
	if bare.Columnar() {
		t.Error("cell-less batch reports Columnar")
	}
	if got := bare.Columns().Col(0).Value(0); got != relation.Int(7) {
		t.Errorf("private transpose value = %v", got)
	}

	empty := Batch{WindowID: 4}
	empty.ensureColumnCell()
	if empty.Columns().Len() != 0 {
		t.Error("empty batch transpose not empty")
	}
	if got, want := empty.Bytes(), int64(batchOverheadBytes)+relation.ColBatchOverheadBytes; got != want {
		t.Errorf("empty columnar batch Bytes = %d, want %d", got, want)
	}
}

package stream

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// WCache is the paper's wCache operator: an index for answering equality
// constraints on the window-id column when many continuous queries read
// the same stream. The first query to ask for a window materialises it;
// the others hit the cache, so N queries over one stream share one
// windowing pass.
//
// Entries older than the watermark are evicted. The watermark unit is
// the window END TIMESTAMP (milliseconds), not the per-spec window id:
// consumers with different slides produce ids on different scales, so
// end times are the only mark comparable across every cached spec.
type WCache struct {
	mu      sync.Mutex
	entries map[wcKey]wcEntry
	// consumer watermarks: per consumer id, the end timestamp of the
	// last window it executed. Eviction keeps every entry whose window
	// ends at or after the min over consumers.
	marks map[string]int64
	// minMark caches the exact min over marks (0 when empty) so the
	// common Advance (a consumer that is not the laggard moving
	// forward) is O(1) instead of rescanning every mark and every
	// cached window. Entries below minMark have already been evicted.
	minMark int64

	// hits/misses are telemetry counters so the engine's registry sees
	// cache traffic live; standalone caches get private counters.
	hits   *telemetry.Counter
	misses *telemetry.Counter

	// bytes is the running estimate of cached batch memory; budget, when
	// positive, caps it — Put/Get evict the oldest windows to stay under
	// (counted by shed). The watermark eviction is correctness (never
	// hands out a window a consumer has passed); the budget eviction is
	// governance (a cold window may be re-materialised on demand).
	bytes  int64
	budget int64
	shed   *telemetry.Counter
}

// wcEntry caches one batch plus its byte estimate so eviction never
// rescans rows.
type wcEntry struct {
	b     Batch
	bytes int64
}

type wcKey struct {
	stream string
	spec   WindowSpec
	window int64
}

// NewWCache returns an empty cache.
func NewWCache() *WCache {
	return &WCache{
		entries: make(map[wcKey]wcEntry),
		marks:   make(map[string]int64),
		hits:    &telemetry.Counter{},
		misses:  &telemetry.Counter{},
		shed:    &telemetry.Counter{},
	}
}

// UseCounters rebinds the hit/miss counters (e.g. to an engine's
// metrics registry). Call before the cache sees traffic.
func (c *WCache) UseCounters(hits, misses *telemetry.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses = hits, misses
}

// UseShedCounter rebinds the budget-eviction counter (e.g. to an
// engine's `exastream.wcache.shed`).
func (c *WCache) UseShedCounter(shed *telemetry.Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.shed = shed
}

// SetBudget caps the cache's byte estimate; 0 (the default) disables
// the cap. Takes effect on the next insert.
func (c *WCache) SetBudget(bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = bytes
}

// Bytes returns the current byte estimate of cached batches.
func (c *WCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Counts returns the hit/miss counters as one consistent pair.
func (c *WCache) Counts() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits.Value(), c.misses.Value()
}

// MinMark returns the smallest watermark across registered consumers —
// the end timestamp of the oldest window any consumer may still need.
// Telemetry derives the watermark-lag gauge from it.
func (c *WCache) MinMark() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.minMark
}

// Register adds a consumer; its watermark starts at 0.
func (c *WCache) Register(consumer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.marks[consumer]; !ok {
		c.marks[consumer] = 0
		if len(c.marks) == 1 || c.minMark > 0 {
			c.minMark = 0
		}
	}
}

// Unregister removes a consumer and may unblock eviction.
func (c *WCache) Unregister(consumer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.marks, consumer)
	c.evictLocked()
}

// Advance moves a consumer's watermark to windowEnd (the end timestamp
// of the window it just executed); windows ending before the minimum
// watermark across consumers are evicted.
func (c *WCache) Advance(consumer string, windowEnd int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cur, ok := c.marks[consumer]
	if ok && windowEnd <= cur {
		return
	}
	c.marks[consumer] = windowEnd
	if ok && cur > c.minMark {
		// Not the laggard: the minimum is held by someone else, so it
		// cannot have moved and nothing new is evictable.
		return
	}
	c.evictLocked()
}

func (c *WCache) evictLocked() {
	if len(c.marks) == 0 {
		// Last consumer gone: nothing can pin a batch any more, so drop
		// them all and reset the watermark — a future registration (e.g.
		// the checkpoint path's transient consumer, or a fresh query)
		// starts from a clean cache rather than inheriting a stale
		// high-water mark.
		if len(c.entries) > 0 {
			c.entries = make(map[wcKey]wcEntry)
		}
		c.bytes = 0
		c.minMark = 0
		return
	}
	min := int64(1<<62 - 1)
	for _, m := range c.marks {
		if m < min {
			min = m
		}
	}
	if min <= c.minMark {
		c.minMark = min
		return
	}
	c.minMark = min
	for k, e := range c.entries {
		if e.b.End < min {
			c.bytes -= e.bytes
			delete(c.entries, k)
		}
	}
}

// enforceBudgetLocked evicts the globally-oldest cached windows until
// the byte estimate fits the budget. keep pins the entry that triggered
// enforcement: if it alone exceeds the budget the cache holds just it
// rather than thrashing (evicting it would only force an immediate
// re-materialisation).
func (c *WCache) enforceBudgetLocked(keep wcKey) {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		victim := keep
		oldest := int64(1<<62 - 1)
		for k, e := range c.entries {
			if k == keep {
				continue
			}
			if e.b.End < oldest {
				oldest, victim = e.b.End, k
			}
		}
		if victim == keep {
			return
		}
		c.bytes -= c.entries[victim].bytes
		delete(c.entries, victim)
		c.shed.Inc()
	}
}

// Get returns the cached batch for (stream, spec, windowID); when absent
// it calls materialise, stores the result, and returns it. Concurrent
// callers for the same key may both materialise; the last write wins,
// which is harmless because materialisation is deterministic.
func (c *WCache) Get(stream string, spec WindowSpec, windowID int64, materialise func() (Batch, error)) (Batch, error) {
	key := wcKey{stream, spec, windowID}
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits.Inc()
		c.mu.Unlock()
		return e.b, nil
	}
	c.misses.Inc()
	c.mu.Unlock()

	b, err := materialise()
	if err != nil {
		return Batch{}, err
	}
	if b.WindowID != windowID {
		return Batch{}, fmt.Errorf("stream: wCache: materialiser returned window %d, want %d", b.WindowID, windowID)
	}
	c.mu.Lock()
	c.storeLocked(key, b)
	c.mu.Unlock()
	return b, nil
}

// Put stores a batch directly (the windowing pass pushes completed
// windows here).
func (c *WCache) Put(stream string, spec WindowSpec, b Batch) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeLocked(wcKey{stream, spec, b.WindowID}, b)
}

// storeLocked inserts or replaces an entry, keeping the byte estimate
// consistent and enforcing the budget. The stored batch always carries
// a columnar cell so every Get copy shares one transpose (restored
// checkpoint batches arrive without one). The byte estimate is taken at
// store time; an engine that wants the columnar footprint accounted
// transposes before Put (the vectorized window path does).
func (c *WCache) storeLocked(key wcKey, b Batch) {
	if old, ok := c.entries[key]; ok {
		c.bytes -= old.bytes
	}
	b.ensureColumnCell()
	e := wcEntry{b: b, bytes: b.Bytes()}
	c.entries[key] = e
	c.bytes += e.bytes
	c.enforceBudgetLocked(key)
}

// CachedWindow is one wCache entry in serializable form, used by the
// recovery checkpoint to carry materialised window batches across a
// restore.
type CachedWindow struct {
	Stream string
	Spec   WindowSpec
	Batch  Batch
}

// SnapshotBatches returns every cached batch in a deterministic order
// (stream, spec, window id). Callers snapshotting for a checkpoint
// should hold a registered consumer mark so concurrent Advance calls
// cannot evict entries mid-copy.
func (c *WCache) SnapshotBatches() []CachedWindow {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CachedWindow, 0, len(c.entries))
	for k, e := range c.entries {
		out = append(out, CachedWindow{Stream: k.stream, Spec: k.spec, Batch: e.b})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Stream != b.Stream {
			return a.Stream < b.Stream
		}
		if a.Spec != b.Spec {
			if a.Spec.RangeMS != b.Spec.RangeMS {
				return a.Spec.RangeMS < b.Spec.RangeMS
			}
			if a.Spec.SlideMS != b.Spec.SlideMS {
				return a.Spec.SlideMS < b.Spec.SlideMS
			}
			return a.Spec.StartMS < b.Spec.StartMS
		}
		return a.Batch.WindowID < b.Batch.WindowID
	})
	return out
}

// RestoreBatches loads snapshotted entries into the cache. Entries
// ending below the current watermark are skipped (already evictable).
func (c *WCache) RestoreBatches(ws []CachedWindow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range ws {
		if w.Batch.End < c.minMark {
			continue
		}
		c.storeLocked(wcKey{w.Stream, w.Spec, w.Batch.WindowID}, w.Batch)
	}
}

// Len returns the number of cached batches.
func (c *WCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

package stream

import (
	"reflect"
	"testing"

	"repro/internal/relation"
)

func tupleAt(ts int64, v float64) Timestamped {
	return Timestamped{TS: ts, Row: relation.Tuple{relation.Time(ts), relation.Float(v)}}
}

// TestWindowSnapshotRestoreEquivalence checks the recovery invariant the
// checkpoint leans on: snapshotting an operator mid-stream and restoring
// it must produce exactly the batches the uninterrupted operator emits
// for the remaining input.
func TestWindowSnapshotRestoreEquivalence(t *testing.T) {
	spec := WindowSpec{RangeMS: 1000, SlideMS: 500}
	cont, err := NewTimeSlidingWindow(spec)
	if err != nil {
		t.Fatal(err)
	}
	var input []Timestamped
	for ts := int64(0); ts <= 4000; ts += 250 {
		input = append(input, tupleAt(ts, float64(ts)))
	}
	cut := len(input) / 2
	var contOut []Batch
	for i, el := range input {
		contOut = append(contOut, cont.Push(el)...)
		if i == cut {
			// Snapshot the same prefix on a second operator.
			pre, err := NewTimeSlidingWindow(spec)
			if err != nil {
				t.Fatal(err)
			}
			var preOut []Batch
			for _, p := range input[:cut+1] {
				preOut = append(preOut, pre.Push(p)...)
			}
			restored, err := RestoreTimeSlidingWindow(pre.Snapshot())
			if err != nil {
				t.Fatal(err)
			}
			var postOut []Batch
			for _, p := range input[cut+1:] {
				postOut = append(postOut, restored.Push(p)...)
			}
			defer func() {
				got := append(preOut, postOut...)
				if !reflect.DeepEqual(got, contOut) {
					t.Errorf("restored run emitted %d batches, continuous %d (or contents differ)",
						len(got), len(contOut))
				}
			}()
		}
	}
}

// TestWindowSnapshotIsDeepCopy guards against the sharing bug the
// checkpoint path would otherwise have: the live operator keeps
// appending to its pending batches' backing arrays after the snapshot.
func TestWindowSnapshotIsDeepCopy(t *testing.T) {
	spec := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	w, err := NewTimeSlidingWindow(spec)
	if err != nil {
		t.Fatal(err)
	}
	w.Push(tupleAt(100, 1))
	st := w.Snapshot()
	if len(st.Pending) != 1 || len(st.Pending[0].Rows) != 1 {
		t.Fatalf("snapshot pending = %+v, want one window with one row", st.Pending)
	}
	before := st.Pending[0].Rows[0][1]
	w.Push(tupleAt(200, 2))
	w.Push(tupleAt(300, 3))
	if got := st.Pending[0].Rows[0][1]; got != before {
		t.Fatalf("snapshot row mutated by later pushes: %v -> %v", before, got)
	}
	if len(st.Pending[0].Rows) != 1 {
		t.Fatalf("snapshot grew with the live operator: %d rows", len(st.Pending[0].Rows))
	}
}

func TestRestoreSkipsEmittedWindows(t *testing.T) {
	st := WindowState{
		Spec:     WindowSpec{RangeMS: 1000, SlideMS: 1000},
		NextEmit: 2,
		MaxTS:    2500,
		Pending: []Batch{
			{WindowID: 1, End: 2000},  // already emitted: must be dropped
			{WindowID: 2, End: 3000},
		},
	}
	w, err := RestoreTimeSlidingWindow(st)
	if err != nil {
		t.Fatal(err)
	}
	got := w.Snapshot()
	if len(got.Pending) != 1 || got.Pending[0].WindowID != 2 {
		t.Fatalf("restored pending = %+v, want only window 2", got.Pending)
	}
}

func TestRestoreRejectsInvalidSpec(t *testing.T) {
	if _, err := RestoreTimeSlidingWindow(WindowState{}); err == nil {
		t.Fatal("restore of a zero spec succeeded")
	}
}

// TestWCacheUnregisterLastConsumerEvicts is the satellite regression
// test: removing the sole remaining consumer must drop every pinned
// batch and reset the watermark, so a later registration starts clean.
func TestWCacheUnregisterLastConsumerEvicts(t *testing.T) {
	c := NewWCache()
	spec := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	c.Register("q1")
	c.Put("m", spec, Batch{WindowID: 1, End: 1000})
	c.Put("m", spec, Batch{WindowID: 2, End: 2000})
	c.Advance("q1", 2000)
	if c.Len() == 0 {
		t.Fatal("setup: batches evicted while a consumer still holds a mark")
	}
	c.Unregister("q1")
	if got := c.Len(); got != 0 {
		t.Fatalf("entries after last Unregister = %d, want 0", got)
	}
	if got := c.MinMark(); got != 0 {
		t.Fatalf("MinMark after last Unregister = %d, want 0", got)
	}
	// A fresh consumer must not inherit the departed consumer's mark.
	c.Register("q2")
	c.Put("m", spec, Batch{WindowID: 1, End: 1000})
	if c.Len() != 1 {
		t.Fatal("fresh consumer could not cache an old window id")
	}
}

func TestWCacheSnapshotRestoreRoundtrip(t *testing.T) {
	c := NewWCache()
	spec := WindowSpec{RangeMS: 1000, SlideMS: 500}
	c.Register("q1")
	c.Put("m", spec, Batch{WindowID: 3, End: 1500, Rows: []relation.Tuple{{relation.Int(1)}}})
	c.Put("n", spec, Batch{WindowID: 1, End: 500})
	ws := c.SnapshotBatches()
	if len(ws) != 2 {
		t.Fatalf("snapshot = %d entries, want 2", len(ws))
	}
	if ws[0].Stream != "m" || ws[1].Stream != "n" {
		t.Fatalf("snapshot order = %s,%s want m,n", ws[0].Stream, ws[1].Stream)
	}
	fresh := NewWCache()
	fresh.Register("q1")
	fresh.RestoreBatches(ws)
	if fresh.Len() != 2 {
		t.Fatalf("restored %d entries, want 2", fresh.Len())
	}
	hit := false
	b, err := fresh.Get("m", spec, 3, func() (Batch, error) {
		return Batch{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Rows) == 1 {
		hit = true
	}
	if !hit {
		t.Fatal("restored batch did not serve a Get")
	}
}

package stream

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func el(ts int64, v float64) Timestamped {
	return Timestamped{TS: ts, Row: relation.Tuple{relation.Time(ts), relation.Float(v)}}
}

func TestSchemaValidate(t *testing.T) {
	s := Schema{Name: "m", Tuple: relation.NewSchema(relation.Col("ts", relation.TTime)), TSCol: "ts"}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Schema{Name: "m", Tuple: s.Tuple, TSCol: "nope"}).Validate(); err == nil {
		t.Error("bad ts column accepted")
	}
	if err := (Schema{TSCol: "ts", Tuple: s.Tuple}).Validate(); err == nil {
		t.Error("empty name accepted")
	}
}

func TestWindowsFor(t *testing.T) {
	// Range 10s, slide 1s, start 0: pulse times 0,1000,2000,...
	spec := WindowSpec{RangeMS: 10000, SlideMS: 1000}
	lo, hi, ok := spec.WindowsFor(500)
	if !ok {
		t.Fatal("no windows for ts=500")
	}
	// Windows i with 1000i >= 500 and 1000i - 10000 <= 500: i in [1, 10].
	if lo != 1 || hi != 10 {
		t.Fatalf("WindowsFor(500) = [%d,%d]", lo, hi)
	}
	// Exact pulse boundary belongs to the window ending at it, not the
	// one starting at it (half-open start).
	lo, hi, _ = spec.WindowsFor(1000)
	if lo != 1 || hi != 10 {
		t.Fatalf("WindowsFor(1000) = [%d,%d]", lo, hi)
	}
	// Tumbling window (range == slide).
	spec2 := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	lo, hi, _ = spec2.WindowsFor(1500)
	if lo != 2 || hi != 2 {
		t.Fatalf("tumbling WindowsFor(1500) = [%d,%d]", lo, hi)
	}
}

func TestWindowSpecValidate(t *testing.T) {
	if err := (WindowSpec{RangeMS: 0, SlideMS: 1}).Validate(); err == nil {
		t.Error("zero range accepted")
	}
	if err := (WindowSpec{RangeMS: 1, SlideMS: -1}).Validate(); err == nil {
		t.Error("negative slide accepted")
	}
}

func TestTumblingWindowReplay(t *testing.T) {
	spec := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	var els []Timestamped
	for ts := int64(100); ts <= 3500; ts += 500 {
		els = append(els, el(ts, float64(ts)))
	}
	batches, err := Replay(spec, els)
	if err != nil {
		t.Fatal(err)
	}
	// Every tuple must appear in exactly one batch for a tumbling window.
	total := 0
	for _, b := range batches {
		total += len(b.Rows)
		for _, r := range b.Rows {
			ts := r[0].Int
			if ts <= b.Start || ts > b.End {
				t.Errorf("tuple ts=%d outside window (%d,%d]", ts, b.Start, b.End)
			}
		}
	}
	if total != len(els) {
		t.Fatalf("tuples in batches = %d, want %d", total, len(els))
	}
}

func TestSlidingWindowOverlap(t *testing.T) {
	// Range 10s slide 1s: each tuple lands in 10 windows.
	spec := WindowSpec{RangeMS: 10000, SlideMS: 1000}
	count := func(ts int64) int {
		batches, err := Replay(spec, []Timestamped{el(ts, 1)})
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, b := range batches {
			n += len(b.Rows)
		}
		return n
	}
	// Half-open windows: boundary and off-boundary tuples both land in
	// exactly range/slide windows.
	if n := count(5000); n != 10 {
		t.Fatalf("boundary tuple appeared in %d windows, want 10", n)
	}
	// Off-boundary tuples land in exactly range/slide = 10 windows.
	if n := count(5500); n != 10 {
		t.Fatalf("tuple appeared in %d windows, want 10", n)
	}
}

func TestWindowEmissionOrderAndCompleteness(t *testing.T) {
	spec := WindowSpec{RangeMS: 2000, SlideMS: 1000}
	w, err := NewTimeSlidingWindow(spec)
	if err != nil {
		t.Fatal(err)
	}
	var emitted []Batch
	for ts := int64(0); ts <= 10000; ts += 250 {
		emitted = append(emitted, w.Push(el(ts, 0))...)
	}
	emitted = append(emitted, w.Flush()...)
	for i := 1; i < len(emitted); i++ {
		if emitted[i].WindowID != emitted[i-1].WindowID+1 {
			t.Fatalf("window ids not consecutive: %d then %d", emitted[i-1].WindowID, emitted[i].WindowID)
		}
	}
	if len(emitted) == 0 {
		t.Fatal("no windows emitted")
	}
}

func TestLateTuplesDropped(t *testing.T) {
	spec := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	w, _ := NewTimeSlidingWindow(spec)
	w.Push(el(5000, 1))
	w.Push(el(1000, 2)) // late
	if w.Late != 1 {
		t.Fatalf("Late = %d", w.Late)
	}
}

func TestEmptyWindowsEmitted(t *testing.T) {
	spec := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	w, _ := NewTimeSlidingWindow(spec)
	w.Push(el(500, 1))
	batches := w.Push(el(5500, 2)) // jump: windows 1..4 complete, some empty
	foundEmpty := false
	for _, b := range batches {
		if len(b.Rows) == 0 {
			foundEmpty = true
		}
	}
	if !foundEmpty {
		t.Error("gap did not produce empty windows")
	}
}

// Property: for random range/slide and timestamps, every emitted batch
// contains exactly the tuples with Start <= ts <= End, and a tuple at ts
// appears in the number of windows predicted by WindowsFor.
func TestWindowAssignmentProperty(t *testing.T) {
	f := func(rangeSlots, slideSlots uint8, offsets []uint16) bool {
		rng := int64(rangeSlots%20+1) * 100
		slide := int64(slideSlots%10+1) * 100
		spec := WindowSpec{RangeMS: rng, SlideMS: slide}
		var els []Timestamped
		ts := int64(0)
		for _, o := range offsets {
			ts += int64(o % 500)
			els = append(els, el(ts, 1))
		}
		batches, err := Replay(spec, els)
		if err != nil {
			return false
		}
		// Count appearances per timestamp.
		appear := map[int64]int64{}
		for _, b := range batches {
			for _, r := range b.Rows {
				rts := r[0].Int
				if rts <= b.Start || rts > b.End {
					return false
				}
				appear[rts]++
			}
		}
		counts := map[int64]int64{}
		for _, e := range els {
			counts[e.TS]++
		}
		for uts, n := range counts {
			lo, hi, ok := spec.WindowsFor(uts)
			want := int64(0)
			if ok {
				want = (hi - lo + 1) * n
			}
			if appear[uts] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPulseTicks(t *testing.T) {
	p := Pulse{StartMS: 0, FrequencyMS: 1000}
	ticks := p.Ticks(500, 3500)
	want := []int64{1000, 2000, 3000}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v", ticks)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v", ticks)
		}
	}
	if got := p.Ticks(1000, 1000); got != nil {
		t.Errorf("empty interval ticks = %v", got)
	}
	if err := (Pulse{FrequencyMS: 0}).Validate(); err == nil {
		t.Error("zero frequency accepted")
	}
	// Boundary: a tick exactly at 'from' is excluded, at 'to' included.
	ticks = p.Ticks(999, 2000)
	if len(ticks) != 2 || ticks[0] != 1000 || ticks[1] != 2000 {
		t.Fatalf("boundary ticks = %v", ticks)
	}
}

func TestWCacheShareAcrossConsumers(t *testing.T) {
	c := NewWCache()
	c.Register("q1")
	c.Register("q2")
	spec := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	calls := 0
	mat := func() (Batch, error) {
		calls++
		return Batch{WindowID: 5, Start: 4000, End: 5000}, nil
	}
	for i := 0; i < 4; i++ {
		if _, err := c.Get("s", spec, 5, mat); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 1 {
		t.Fatalf("materialise calls = %d, want 1", calls)
	}
	if hits, misses := c.Counts(); hits != 3 || misses != 1 {
		t.Fatalf("hits/misses = %d/%d", hits, misses)
	}
}

func TestWCacheEviction(t *testing.T) {
	c := NewWCache()
	c.Register("q1")
	c.Register("q2")
	spec := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	for id := int64(0); id < 10; id++ {
		c.Put("s", spec, Batch{WindowID: id, End: (id + 1) * 1000})
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Advance("q1", 9000)
	// q2 still at 0: nothing evicted.
	if c.Len() != 10 {
		t.Fatalf("eviction ran early: Len = %d", c.Len())
	}
	c.Advance("q2", 6000)
	if c.Len() != 5 { // windows ending 6000..10000 remain
		t.Fatalf("Len after advance = %d", c.Len())
	}
	c.Unregister("q2")
	// Now min watermark is 9000.
	if c.Len() != 2 {
		t.Fatalf("Len after unregister = %d", c.Len())
	}
}

func TestWCacheKeySeparation(t *testing.T) {
	c := NewWCache()
	specA := WindowSpec{RangeMS: 1000, SlideMS: 1000}
	specB := WindowSpec{RangeMS: 2000, SlideMS: 1000}
	c.Put("s", specA, Batch{WindowID: 1, Rows: []relation.Tuple{{relation.Int(1)}}})
	got, err := c.Get("s", specB, 1, func() (Batch, error) {
		return Batch{WindowID: 1, Rows: []relation.Tuple{{relation.Int(2)}}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows[0][0] != relation.Int(2) {
		t.Error("different specs shared a cache entry")
	}
	// Different stream names separate too.
	got2, _ := c.Get("other", specA, 1, func() (Batch, error) {
		return Batch{WindowID: 1, Rows: []relation.Tuple{{relation.Int(3)}}}, nil
	})
	if got2.Rows[0][0] != relation.Int(3) {
		t.Error("different streams shared a cache entry")
	}
}

func TestWCacheMaterialiseError(t *testing.T) {
	c := NewWCache()
	spec := WindowSpec{RangeMS: 1, SlideMS: 1}
	if _, err := c.Get("s", spec, 1, func() (Batch, error) {
		return Batch{}, fmt.Errorf("boom")
	}); err == nil {
		t.Error("materialise error swallowed")
	}
	if _, err := c.Get("s", spec, 1, func() (Batch, error) {
		return Batch{WindowID: 99}, nil
	}); err == nil {
		t.Error("window id mismatch accepted")
	}
}

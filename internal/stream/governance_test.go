package stream

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
)

func govSpec() WindowSpec { return WindowSpec{RangeMS: 1000, SlideMS: 500} }

func row(v int64) relation.Tuple { return relation.Tuple{relation.Int(v)} }

// Pending-byte accounting must track pushes, emissions, flush, and
// restore exactly (the governance layer subtracts these numbers from a
// budget, so drift would leak or over-shed).
func TestWindowPendingBytesAccounting(t *testing.T) {
	w, err := NewTimeSlidingWindow(govSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := w.PendingBytes(); got != 0 {
		t.Fatalf("empty PendingBytes = %d", got)
	}
	w.Push(Timestamped{TS: 100, Row: row(1)})
	w.Push(Timestamped{TS: 200, Row: row(2)})
	recount := func() int64 {
		w.mu.Lock()
		defer w.mu.Unlock()
		var n int64
		for _, b := range w.pending {
			n += b.Bytes()
		}
		return n
	}
	if got, want := w.PendingBytes(), recount(); got != want || got == 0 {
		t.Fatalf("PendingBytes = %d, recount = %d", got, want)
	}
	// Advancing time emits windows; the estimate must fall in step.
	w.Push(Timestamped{TS: 2600, Row: row(3)})
	if got, want := w.PendingBytes(), recount(); got != want {
		t.Fatalf("after emit: PendingBytes = %d, recount = %d", got, want)
	}
	// Restore from snapshot recomputes the same estimate.
	st := w.Snapshot()
	r, err := RestoreTimeSlidingWindow(st)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := r.PendingBytes(), w.PendingBytes(); got != want {
		t.Fatalf("restored PendingBytes = %d, want %d", got, want)
	}
	if w.Flush(); w.PendingBytes() != 0 {
		t.Fatalf("after Flush: PendingBytes = %d, want 0", w.PendingBytes())
	}
}

// A shed window is gone for good: it frees its bytes, never emits (not
// even as an empty batch), and drops tuples that keep arriving for it.
func TestWindowShedOldestPending(t *testing.T) {
	w, err := NewTimeSlidingWindow(WindowSpec{RangeMS: 1000, SlideMS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.ShedOldestPending(); ok {
		t.Fatal("shed from empty operator")
	}
	w.Push(Timestamped{TS: 100, Row: row(1)})
	before := w.PendingBytes()
	freed, ok := w.ShedOldestPending()
	if !ok || freed != before {
		t.Fatalf("shed freed %d (ok=%t), want %d", freed, ok, before)
	}
	if w.PendingBytes() != 0 || w.Shed != 1 {
		t.Fatalf("after shed: bytes=%d shedCount=%d", w.PendingBytes(), w.Shed)
	}
	// A late arrival for the shed window must not resurrect it.
	w.Push(Timestamped{TS: 200, Row: row(2)})
	if w.PendingBytes() != 0 {
		t.Fatal("tuple for shed window was buffered")
	}
	// Window 1 (end 1000) sheds silently; window 2 (end 2000) emits.
	var got []Batch
	got = append(got, w.Push(Timestamped{TS: 1500, Row: row(3)})...)
	got = append(got, w.Push(Timestamped{TS: 2500, Row: row(4)})...)
	got = append(got, w.Flush()...)
	for _, b := range got {
		if b.End == 1000 {
			t.Fatalf("shed window emitted: %+v", b)
		}
	}
	found := false
	for _, b := range got {
		if b.End == 2000 && len(b.Rows) == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("window 2 missing from %+v", got)
	}
}

// The wCache budget evicts the globally-oldest windows first and pins
// the entry whose insert triggered enforcement.
func TestWCacheBudget(t *testing.T) {
	c := NewWCache()
	c.Register("q")
	spec := govSpec()
	one := Batch{WindowID: 0, End: 500, Rows: []relation.Tuple{row(1)}}
	perEntry := one.Bytes()
	c.SetBudget(3 * perEntry)
	for id := int64(0); id < 5; id++ {
		c.Put("s", spec, Batch{WindowID: id, End: 500 * (id + 1), Rows: []relation.Tuple{row(id)}})
	}
	if c.Len() != 3 || c.Bytes() != 3*perEntry {
		t.Fatalf("len=%d bytes=%d, want 3 entries / %d bytes", c.Len(), c.Bytes(), 3*perEntry)
	}
	// The survivors are the newest windows; 0 and 1 were shed.
	for _, w := range c.SnapshotBatches() {
		if w.Batch.WindowID < 2 {
			t.Fatalf("window %d survived budget eviction", w.Batch.WindowID)
		}
	}
	// An oversized single entry is kept (evicting it would just force a
	// re-materialisation on the next Get).
	big := Batch{WindowID: 9, End: 5000, Rows: make([]relation.Tuple, 100)}
	for i := range big.Rows {
		big.Rows[i] = row(int64(i))
	}
	c.Put("s", spec, big)
	found := false
	for _, w := range c.SnapshotBatches() {
		if w.Batch.WindowID == 9 {
			found = true
		}
	}
	if !found {
		t.Fatal("oversized entry evicted itself")
	}
}

// Watermark eviction and budget eviction must keep the byte estimate
// exact across concurrent producers and consumers (run under -race).
func TestWCacheConcurrentAccounting(t *testing.T) {
	c := NewWCache()
	spec := govSpec()
	c.SetBudget(1 << 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("q%d", g)
			c.Register(name)
			for id := int64(0); id < 200; id++ {
				c.Put(fmt.Sprintf("s%d", g%2), spec, Batch{WindowID: id, End: 500 * (id + 1), Rows: []relation.Tuple{row(id)}})
				if id%3 == 0 {
					_, _ = c.Get(fmt.Sprintf("s%d", g%2), spec, id, func() (Batch, error) {
						return Batch{WindowID: id}, nil
					})
				}
				c.Advance(name, id/2)
			}
			c.Unregister(name)
		}(g)
	}
	wg.Wait()
	var want int64
	for _, w := range c.SnapshotBatches() {
		want += w.Batch.Bytes()
	}
	if got := c.Bytes(); got != want {
		t.Fatalf("Bytes = %d, recount = %d", got, want)
	}
}

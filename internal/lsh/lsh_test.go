package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	if err := (Config{Bits: 32, Bands: 8, Dim: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Bits: 0, Bands: 1, Dim: 1},
		{Bits: 8, Bands: 0, Dim: 1},
		{Bits: 8, Bands: 8, Dim: 0},
		{Bits: 10, Bands: 3, Dim: 1}, // not divisible
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestZNormalize(t *testing.T) {
	out, ok := ZNormalize([]float64{1, 2, 3, 4})
	if !ok {
		t.Fatal("normalisation failed")
	}
	var sum, ss float64
	for _, v := range out {
		sum += v
		ss += v * v
	}
	if math.Abs(sum) > 1e-9 {
		t.Errorf("mean = %g", sum/4)
	}
	if math.Abs(ss/4-1) > 1e-9 {
		t.Errorf("variance = %g", ss/4)
	}
	if _, ok := ZNormalize([]float64{5, 5, 5}); ok {
		t.Error("constant series normalised")
	}
	if _, ok := ZNormalize(nil); ok {
		t.Error("empty series normalised")
	}
}

func TestSignatureIdenticalAndOpposite(t *testing.T) {
	ix, err := New(Config{Bits: 64, Bands: 16, Dim: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	b := []float64{2, 4, 6, 8, 10, 12, 14, 16} // same shape after z-norm
	sa, err := ix.Signature(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := ix.Signature(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("linearly related series have different signatures")
		}
	}
	// Anti-correlated series flip every bit.
	c := []float64{8, 7, 6, 5, 4, 3, 2, 1}
	sc, _ := ix.Signature(c)
	for i := range sa {
		if sa[i] == sc[i] {
			t.Fatal("anti-correlated series share a signature bit")
		}
	}
	if _, err := ix.Signature([]float64{1, 2}); err == nil {
		t.Error("wrong dimension accepted")
	}
}

// buildCorrelatedFixture adds: group A (ids 0..4) correlated ramps with
// noise, group B (ids 10..14) correlated sinusoids, and noise series
// (ids 100..119).
func buildCorrelatedFixture(t *testing.T, ix *Index, dim int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	base := make([]float64, dim)
	for i := range base {
		base[i] = float64(i)
	}
	for id := 0; id < 5; id++ {
		s := make([]float64, dim)
		for i := range s {
			s[i] = base[i]*(1+0.1*float64(id)) + rng.NormFloat64()*0.05
		}
		if ok, err := ix.Add(id, s); err != nil || !ok {
			t.Fatalf("Add(%d) = %t, %v", id, ok, err)
		}
	}
	for id := 10; id < 15; id++ {
		s := make([]float64, dim)
		for i := range s {
			s[i] = math.Sin(float64(i)/3) + rng.NormFloat64()*0.05
		}
		if ok, err := ix.Add(id, s); err != nil || !ok {
			t.Fatalf("Add(%d) = %t, %v", id, ok, err)
		}
	}
	for id := 100; id < 120; id++ {
		s := make([]float64, dim)
		for i := range s {
			s[i] = rng.NormFloat64()
		}
		if _, err := ix.Add(id, s); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorrelatedPairsRecall(t *testing.T) {
	dim := 64
	ix, err := New(Config{Bits: 64, Bands: 16, Dim: dim, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	buildCorrelatedFixture(t, ix, dim)

	got := ix.CorrelatedPairs(0.9)
	found := map[[2]int]bool{}
	for _, p := range got {
		found[[2]int{p.A, p.B}] = true
		if math.Abs(p.R) < 0.9 {
			t.Errorf("pair %v below threshold", p)
		}
	}
	// Every within-group pair must be found (high recall at r≈1).
	for a := 0; a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			if !found[[2]int{a, b}] {
				t.Errorf("missed ramp pair (%d,%d)", a, b)
			}
		}
	}
	for a := 10; a < 15; a++ {
		for b := a + 1; b < 15; b++ {
			if !found[[2]int{a, b}] {
				t.Errorf("missed sinusoid pair (%d,%d)", a, b)
			}
		}
	}
}

func TestLSHPrunesCandidates(t *testing.T) {
	dim := 64
	ix, err := New(Config{Bits: 64, Bands: 8, Dim: dim, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	buildCorrelatedFixture(t, ix, dim)
	st := ix.Stats()
	if st.Series != 30 {
		t.Fatalf("series = %d", st.Series)
	}
	if st.Candidates >= st.AllPairs {
		t.Errorf("no pruning: %d candidates of %d pairs", st.Candidates, st.AllPairs)
	}
}

func TestLSHAgreesWithExactBaseline(t *testing.T) {
	dim := 64
	ix, err := New(Config{Bits: 96, Bands: 24, Dim: dim, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	buildCorrelatedFixture(t, ix, dim)

	exact := ExactPairs(ix.series, 0.95)
	approx := ix.CorrelatedPairs(0.95)
	// LSH must find at least 90% of what the exact baseline finds, and
	// report nothing the baseline rejects (verification is exact).
	exactSet := map[[2]int]bool{}
	for _, p := range exact {
		exactSet[[2]int{p.A, p.B}] = true
	}
	hits := 0
	for _, p := range approx {
		if !exactSet[[2]int{p.A, p.B}] {
			t.Errorf("false positive %v", p)
		} else {
			hits++
		}
	}
	if len(exact) > 0 && float64(hits) < 0.9*float64(len(exact)) {
		t.Errorf("recall = %d/%d", hits, len(exact))
	}
}

func TestConstantSeriesSkipped(t *testing.T) {
	ix, err := New(Config{Bits: 16, Bands: 4, Dim: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := ix.Add(1, []float64{3, 3, 3, 3})
	if err != nil || ok {
		t.Fatalf("constant series: ok=%t err=%v", ok, err)
	}
	if st := ix.Stats(); st.Series != 0 {
		t.Errorf("series = %d", st.Series)
	}
}

func TestPearsonProperties(t *testing.T) {
	// Symmetry and range.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 16)
		ys := make([]float64, 16)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r1, ok1 := Pearson(xs, ys)
		r2, ok2 := Pearson(ys, xs)
		if ok1 != ok2 {
			return false
		}
		if !ok1 {
			return true
		}
		return math.Abs(r1-r2) < 1e-12 && r1 >= -1.0000001 && r1 <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Perfect correlation with itself.
	xs := []float64{1, 5, 2, 8}
	if r, ok := Pearson(xs, xs); !ok || math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %g, %t", r, ok)
	}
}

func TestSignatureDeterministicAcrossInstances(t *testing.T) {
	cfg := Config{Bits: 32, Bands: 8, Dim: 8, Seed: 99}
	a, _ := New(cfg)
	b, _ := New(cfg)
	s := []float64{1, 4, 2, 8, 5, 7, 3, 6}
	sa, _ := a.Signature(s)
	sb, _ := b.Signature(s)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("same seed produced different signatures")
		}
	}
}

// Package lsh implements the Locality-Sensitive Hashing technique the
// paper uses (via a native UDF, citing Giatrakos et al. [7]) to compute
// correlations between the values of multiple streams without comparing
// every pair: window vectors are hashed with random hyperplanes, hashes
// are banded into buckets, and only same-bucket candidates are verified
// with the exact Pearson coefficient.
//
// Random-hyperplane LSH approximates cosine similarity; for z-normalised
// window vectors, cosine similarity equals the Pearson correlation
// coefficient, which is why the technique applies to sensor correlation.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Config sets the signature shape.
type Config struct {
	// Bits is the signature length (number of random hyperplanes).
	Bits int
	// Bands splits the signature; vectors agreeing on all rows of any
	// band become candidates. Bits must be divisible by Bands.
	Bands int
	// Dim is the window vector dimensionality (samples per window).
	Dim int
	// Seed makes hyperplane generation deterministic.
	Seed int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Bits <= 0 || c.Bands <= 0 || c.Dim <= 0 {
		return fmt.Errorf("lsh: Bits, Bands, and Dim must be positive")
	}
	if c.Bits%c.Bands != 0 {
		return fmt.Errorf("lsh: Bits (%d) must be divisible by Bands (%d)", c.Bits, c.Bands)
	}
	return nil
}

// Index hashes fixed-length series and yields candidate pairs.
type Index struct {
	cfg    Config
	planes [][]float64

	// buckets[band][key] = member ids
	buckets []map[uint64][]int
	series  map[int][]float64
	sigs    map[int][]bool
}

// New builds an index with freshly drawn hyperplanes.
func New(cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	planes := make([][]float64, cfg.Bits)
	for i := range planes {
		p := make([]float64, cfg.Dim)
		for j := range p {
			p[j] = rng.NormFloat64()
		}
		planes[i] = p
	}
	buckets := make([]map[uint64][]int, cfg.Bands)
	for i := range buckets {
		buckets[i] = make(map[uint64][]int)
	}
	return &Index{
		cfg: cfg, planes: planes, buckets: buckets,
		series: make(map[int][]float64), sigs: make(map[int][]bool),
	}, nil
}

// ZNormalize returns the z-normalised copy of a series (zero mean, unit
// variance); ok is false for series with zero variance.
func ZNormalize(xs []float64) ([]float64, bool) {
	n := float64(len(xs))
	if n == 0 {
		return nil, false
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / n
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	if ss == 0 {
		return nil, false
	}
	std := math.Sqrt(ss / n)
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = (x - mean) / std
	}
	return out, true
}

// Signature computes the bit signature of a series (which must have
// length Dim). The series is z-normalised internally.
func (ix *Index) Signature(series []float64) ([]bool, error) {
	if len(series) != ix.cfg.Dim {
		return nil, fmt.Errorf("lsh: series length %d, want %d", len(series), ix.cfg.Dim)
	}
	norm, ok := ZNormalize(series)
	if !ok {
		return nil, fmt.Errorf("lsh: zero-variance series")
	}
	sig := make([]bool, ix.cfg.Bits)
	for i, plane := range ix.planes {
		var dot float64
		for j, v := range norm {
			dot += v * plane[j]
		}
		sig[i] = dot >= 0
	}
	return sig, nil
}

// Add inserts a series under an id. Zero-variance series are skipped
// (they correlate with nothing) and reported via the bool result.
func (ix *Index) Add(id int, series []float64) (bool, error) {
	sig, err := ix.Signature(series)
	if err != nil {
		if _, ok := ZNormalize(series); !ok {
			return false, nil // constant series: not an error, just skipped
		}
		return false, err
	}
	cp := make([]float64, len(series))
	copy(cp, series)
	ix.series[id] = cp
	ix.sigs[id] = sig
	rows := ix.cfg.Bits / ix.cfg.Bands
	for b := 0; b < ix.cfg.Bands; b++ {
		key := bandKey(sig[b*rows : (b+1)*rows])
		ix.buckets[b][key] = append(ix.buckets[b][key], id)
	}
	return true, nil
}

func bandKey(bits []bool) uint64 {
	var k uint64
	for _, b := range bits {
		k <<= 1
		if b {
			k |= 1
		}
	}
	return k
}

// Pair is a candidate or verified correlation pair (A < B).
type Pair struct {
	A, B int
	R    float64 // Pearson coefficient (verified pairs only)
}

// Candidates returns the distinct same-bucket pairs.
func (ix *Index) Candidates() []Pair {
	seen := map[[2]int]bool{}
	var out []Pair
	for _, band := range ix.buckets {
		for _, members := range band {
			for i := 0; i < len(members); i++ {
				for j := i + 1; j < len(members); j++ {
					a, b := members[i], members[j]
					if a > b {
						a, b = b, a
					}
					k := [2]int{a, b}
					if seen[k] {
						continue
					}
					seen[k] = true
					out = append(out, Pair{A: a, B: b})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

// CorrelatedPairs verifies candidates exactly and returns the pairs with
// |Pearson| >= minAbsR, sorted by id.
func (ix *Index) CorrelatedPairs(minAbsR float64) []Pair {
	var out []Pair
	for _, c := range ix.Candidates() {
		r, ok := Pearson(ix.series[c.A], ix.series[c.B])
		if ok && math.Abs(r) >= minAbsR {
			out = append(out, Pair{A: c.A, B: c.B, R: r})
		}
	}
	return out
}

// Stats summarises index pruning power.
type Stats struct {
	Series     int
	Candidates int
	AllPairs   int
}

// Stats returns pruning statistics.
func (ix *Index) Stats() Stats {
	n := len(ix.series)
	return Stats{
		Series:     n,
		Candidates: len(ix.Candidates()),
		AllPairs:   n * (n - 1) / 2,
	}
}

// Pearson computes the exact correlation coefficient of two equal-length
// series; ok is false for fewer than two points or zero variance.
func Pearson(xs, ys []float64) (float64, bool) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, false
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return 0, false
	}
	return cov / math.Sqrt(vx*vy), true
}

// ExactPairs is the baseline the LSH benchmark compares against: all
// O(n²) pairs verified exactly.
func ExactPairs(series map[int][]float64, minAbsR float64) []Pair {
	ids := make([]int, 0, len(series))
	for id := range series {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var out []Pair
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			r, ok := Pearson(series[ids[i]], series[ids[j]])
			if ok && math.Abs(r) >= minAbsR {
				out = append(out, Pair{A: ids[i], B: ids[j], R: r})
			}
		}
	}
	return out
}

package engine

import (
	"fmt"
	"math"
	"strings"
	"time"
)

// kindOf maps a plan node onto its OpKind, or -1 for unknown
// implementations (external Plan types get no per-kind stats).
func kindOf(p Plan) OpKind {
	switch p.(type) {
	case *ScanPlan:
		return OpScan
	case *ValuesPlan:
		return OpValues
	case *WindowSourcePlan:
		return OpWindowSource
	case *FilterPlan:
		return OpFilter
	case *ProjectPlan:
		return OpProject
	case *HashJoinPlan:
		return OpHashJoin
	case *NestedLoopJoinPlan:
		return OpNestedJoin
	case *LookupJoinPlan:
		return OpLookupJoin
	case *AggregatePlan:
		return OpAggregate
	case *SortPlan:
		return OpSort
	case *DistinctPlan:
		return OpDistinct
	case *LimitPlan:
		return OpLimit
	case *UnionPlan:
		return OpUnion
	case *IndexScanPlan:
		return OpIndexScan
	}
	return -1
}

// PlanKind exposes kindOf for callers outside the package (the lag
// view and tests label operators by kind).
func PlanKind(p Plan) (OpKind, bool) {
	k := kindOf(p)
	return k, k >= 0
}

// Vectorizable reports whether the columnar kernels cover the whole
// subtree rooted at p — the condition under which execution takes the
// vectorized path when the context enables it.
func Vectorizable(p Plan) bool { return canVectorize(p) }

// ExplainAnalyze renders a plan tree like Explain, annotating every
// node with the observed per-operator-kind counters accumulated in
// stats: Execute calls, output rows, inclusive wall time, and — for
// row-reducing operators whose input cardinality is identifiable —
// the observed selectivity. Stats are tracked per operator *kind*;
// when a kind occurs more than once in the tree its counters are the
// aggregate over all occurrences, and the line says so.
//
// vectorized marks subtrees the columnar kernels would execute given
// ExecContext.Vectorized (interior nodes of such a subtree run fused,
// so their wall time reports under the subtree root).
func ExplainAnalyze(p Plan, stats *ExecStats, vectorized bool) string {
	return ExplainAnalyzeWithEstimates(p, stats, vectorized, nil)
}

// ExplainAnalyzeWithEstimates renders ExplainAnalyze with the cost
// model's per-node estimates alongside the observed counters
// (`est_rows=` next to `rows=`), so misestimates are visible at a
// glance. A nil Estimates renders exactly like ExplainAnalyze.
func ExplainAnalyzeWithEstimates(p Plan, stats *ExecStats, vectorized bool, est Estimates) string {
	kindCount := make(map[OpKind]int)
	var count func(Plan)
	count = func(p Plan) {
		if k := kindOf(p); k >= 0 {
			kindCount[k]++
		}
		for _, c := range p.Children() {
			count(c)
		}
	}
	count(p)

	var sb strings.Builder
	var rec func(p Plan, depth int, inVec bool)
	rec = func(p Plan, depth int, inVec bool) {
		vecRoot := false
		if vectorized && !inVec && canVectorize(p) {
			vecRoot = true
			inVec = true
		}
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(p.String())
		k := kindOf(p)
		if k >= 0 && stats != nil {
			c := stats.Ops[k]
			fmt.Fprintf(&sb, "  calls=%d", c.Calls)
			if e, ok := est[p]; ok {
				// Estimates are per window tick; observed rows aggregate
				// over calls, so scale for an apples-to-apples column.
				perCall := e.EstRows * float64(c.Calls)
				fmt.Fprintf(&sb, " est_rows=%.0f obs_rows=%d", perCall, c.RowsOut)
			} else {
				fmt.Fprintf(&sb, " rows=%d", c.RowsOut)
			}
			// Selectivity only renders for operators that actually ran:
			// a pruned or never-ticked operator has calls=0 and rows=0,
			// and 0/0 must not leak a NaN into the output.
			if in, ok := inputRows(p, stats, kindCount); ok && in > 0 && c.Calls > 0 {
				sel := 100 * float64(c.RowsOut) / float64(in)
				if !math.IsNaN(sel) && !math.IsInf(sel, 0) {
					fmt.Fprintf(&sb, " sel=%.1f%%", sel)
				}
			}
			if c.WallNS > 0 {
				fmt.Fprintf(&sb, " time=%s", time.Duration(c.WallNS).Round(time.Microsecond))
			}
			if n := kindCount[k]; n > 1 {
				fmt.Fprintf(&sb, " (aggregated over %d %s operators)", n, k)
			}
		}
		if vecRoot {
			sb.WriteString("  [vectorized]")
		} else if inVec {
			sb.WriteString("  [vectorized, fused]")
		}
		sb.WriteByte('\n')
		for _, c := range p.Children() {
			rec(c, depth+1, inVec)
		}
	}
	rec(p, 0, false)
	return sb.String()
}

// inputRows derives the observed input cardinality of p from its
// children's output counters. Per-kind aggregation makes this
// ambiguous when p's kind or a child's kind occurs more than once in
// the tree, so it only reports when every involved kind is unique.
func inputRows(p Plan, stats *ExecStats, kindCount map[OpKind]int) (int64, bool) {
	if kindCount[kindOf(p)] != 1 {
		return 0, false
	}
	children := p.Children()
	if len(children) == 0 {
		return 0, false
	}
	var in int64
	for _, c := range children {
		k := kindOf(c)
		if k < 0 || kindCount[k] != 1 {
			return 0, false
		}
		in += stats.Ops[k].RowsOut
	}
	return in, true
}

package engine

import (
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
)

func lookupFixture(t *testing.T) (*relation.Catalog, *relation.Table) {
	t.Helper()
	cat := relation.NewCatalog()
	tb, err := cat.Create("dim", relation.NewSchema(
		relation.Col("id", relation.TInt),
		relation.Col("name", relation.TString)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		tb.MustInsert(relation.Tuple{relation.Int(i), relation.String_("n")})
	}
	return cat, tb
}

func probeSide(rows ...relation.Tuple) Plan {
	schema := relation.NewSchema(relation.Col("w.key", relation.TInt))
	return NewValuesPlan("w", schema, rows)
}

func TestLookupJoinScanAndIndexPaths(t *testing.T) {
	cat, tb := lookupFixture(t)
	probe := probeSide(
		relation.Tuple{relation.Int(5)},
		relation.Tuple{relation.Int(7)},
		relation.Tuple{relation.Int(500)}, // no match
		relation.Tuple{relation.Null},     // NULL never joins
	)
	lj := NewLookupJoinPlan(probe, "dim", "d", tb.Schema(),
		[]sql.Expr{sql.Col("w.key")}, []string{"id"}, nil)
	if !strings.Contains(lj.String(), "LookupJoin(dim") {
		t.Errorf("String = %s", lj.String())
	}
	if len(lj.Children()) != 1 {
		t.Error("Children")
	}
	if lj.Schema().Arity() != 3 {
		t.Errorf("schema = %v", lj.Schema())
	}

	ctx := NewExecContext(cat)
	rows, err := lj.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if ctx.Stats.IndexLookups != 0 {
		t.Error("index lookups counted without an index")
	}
	scannedBefore := ctx.Stats.RowsScanned

	// With an index, probes stop scanning.
	if err := tb.CreateIndex("id"); err != nil {
		t.Fatal(err)
	}
	ctx2 := NewExecContext(cat)
	rows, err = lj.Execute(ctx2)
	if err != nil || len(rows) != 2 {
		t.Fatalf("indexed rows = %v, %v", rows, err)
	}
	if ctx2.Stats.IndexLookups != 3 { // three non-NULL probes
		t.Errorf("IndexLookups = %d", ctx2.Stats.IndexLookups)
	}
	if ctx2.Stats.RowsScanned >= scannedBefore {
		t.Errorf("index did not reduce scanning: %d vs %d", ctx2.Stats.RowsScanned, scannedBefore)
	}
}

func TestLookupJoinResidual(t *testing.T) {
	cat, tb := lookupFixture(t)
	probe := probeSide(relation.Tuple{relation.Int(5)}, relation.Tuple{relation.Int(6)})
	residual := sql.Bin(">", sql.Col("d.id"), sql.Lit(relation.Int(5)))
	lj := NewLookupJoinPlan(probe, "dim", "d", tb.Schema(),
		[]sql.Expr{sql.Col("w.key")}, []string{"id"}, residual)
	ctx := NewExecContext(cat)
	rows, err := lj.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("residual rows = %v", rows)
	}
	if id, _ := rows[0][1].AsInt(); id != 6 {
		t.Errorf("residual kept id=%v", rows[0][1])
	}
}

func TestLookupJoinUnknownTable(t *testing.T) {
	cat := relation.NewCatalog()
	lj := NewLookupJoinPlan(probeSide(relation.Tuple{relation.Int(1)}),
		"ghost", "g", relation.NewSchema(relation.Col("id", relation.TInt)),
		[]sql.Expr{sql.Col("w.key")}, []string{"id"}, nil)
	if _, err := lj.Execute(NewExecContext(cat)); err == nil {
		t.Error("unknown table accepted")
	}
}

func TestNestedLoopLeftOuterNonEqui(t *testing.T) {
	cat := relation.NewCatalog()
	a, _ := cat.Create("a", relation.NewSchema(relation.Col("x", relation.TInt)))
	bTab, _ := cat.Create("b", relation.NewSchema(relation.Col("y", relation.TInt)))
	a.MustInsert(relation.Tuple{relation.Int(1)})
	a.MustInsert(relation.Tuple{relation.Int(10)})
	bTab.MustInsert(relation.Tuple{relation.Int(5)})
	ctx := NewExecContext(cat)
	_, rows, err := Run(ctx, "SELECT a.x, b.y FROM a LEFT JOIN b ON a.x > b.y ORDER BY a.x", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if !rows[0][1].IsNull() { // x=1 has no y<1
		t.Errorf("expected NULL pad: %v", rows[0])
	}
	if rows[1][1].IsNull() {
		t.Errorf("expected match: %v", rows[1])
	}
}

func TestExpressionOperatorMatrix(t *testing.T) {
	cat := relation.NewCatalog()
	ctx := NewExecContext(cat)
	cases := []struct {
		query string
		want  relation.Value
	}{
		{"SELECT 7 % 3", relation.Int(1)},
		{"SELECT 10 / 4", relation.Float(2.5)},
		{"SELECT 'a' || 1", relation.String_("a1")},
		{"SELECT 1 <> 2", relation.Bool_(true)},
		{"SELECT 2 >= 2", relation.Bool_(true)},
		{"SELECT NOT (1 = 1)", relation.Bool_(false)},
		{"SELECT NULL IS NULL", relation.Bool_(true)},
		{"SELECT 1 IS NOT NULL", relation.Bool_(true)},
		{"SELECT CASE WHEN 1 = 2 THEN 'x' END", relation.Null},
		{"SELECT 3 IN (1, 2)", relation.Bool_(false)},
		{"SELECT 2 NOT IN (1, 3)", relation.Bool_(true)},
		{"SELECT -(1 + 2)", relation.Int(-3)},
		{"SELECT coalesce(NULL, NULL, 'z')", relation.String_("z")},
		{"SELECT lower('AbC')", relation.String_("abc")},
		{"SELECT 1 AND 0", relation.Bool_(false)},
		{"SELECT 0 OR 1", relation.Bool_(true)},
	}
	for _, c := range cases {
		_, rows, err := Run(ctx, c.query, nil)
		if err != nil {
			t.Errorf("%s: %v", c.query, err)
			continue
		}
		if rows[0][0] != c.want {
			t.Errorf("%s = %v, want %v", c.query, rows[0][0], c.want)
		}
	}
}

func TestThreeValuedAndOrWithNull(t *testing.T) {
	cat := relation.NewCatalog()
	tb, _ := cat.Create("t", relation.NewSchema(relation.Col("a", relation.TInt)))
	tb.MustInsert(relation.Tuple{relation.Null})
	ctx := NewExecContext(cat)
	// NULL AND FALSE = FALSE; NULL OR TRUE = TRUE; NULL AND TRUE = NULL.
	_, rows, err := Run(ctx, "SELECT (a = 1) AND (1 = 2), (a = 1) OR (1 = 1), (a = 1) AND (1 = 1) FROM t", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0] != relation.Bool_(false) {
		t.Errorf("NULL AND FALSE = %v", rows[0][0])
	}
	if rows[0][1] != relation.Bool_(true) {
		t.Errorf("NULL OR TRUE = %v", rows[0][1])
	}
	if !rows[0][2].IsNull() {
		t.Errorf("NULL AND TRUE = %v", rows[0][2])
	}
}

func TestEvalErrorPaths(t *testing.T) {
	cat := relation.NewCatalog()
	ctx := NewExecContext(cat)
	for _, q := range []string{
		"SELECT 'a' + 1",   // string arithmetic
		"SELECT 'a' < 1",   // incomparable
		"SELECT -'a'",      // unary minus on string
		"SELECT abs('x')",  // abs on string
		"SELECT length(5)", // length on int
		"SELECT upper(5)",  // upper on int
		"SELECT abs(1, 2)", // arity
		"SELECT avg(1)",    // aggregate without group context is fine...
	} {
		_, _, err := Run(ctx, q, nil)
		if q == "SELECT avg(1)" {
			if err != nil {
				t.Errorf("%s should work as global aggregate: %v", q, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s accepted", q)
		}
	}
}

func TestHasAggregate(t *testing.T) {
	if !HasAggregate(sql.MustParse("SELECT avg(a) FROM t").Items[0].Expr) {
		t.Error("avg not detected")
	}
	if HasAggregate(sql.MustParse("SELECT abs(a) FROM t").Items[0].Expr) {
		t.Error("abs misdetected")
	}
	if HasAggregate(nil) {
		t.Error("nil expression")
	}
}

func TestAliasPlanString(t *testing.T) {
	p := NewAliasPlan(probeSide(), "sub")
	if p.String() != "Alias(sub)" || len(p.Children()) != 1 {
		t.Errorf("alias plan = %s", p.String())
	}
}

func TestRewriteAggRefsAllShapes(t *testing.T) {
	cat := fixture(t)
	// Exercise CASE / IN / IS NULL / unary / concat containing aggregates
	// and group expressions.
	_, rows := runQuery(t, cat, `
		SELECT CASE WHEN avg(val) > 60 THEN 'hi' ELSE 'lo' END,
		       sid IN (1, 2),
		       avg(val) IS NULL,
		       -avg(val),
		       'v=' || sid
		FROM msmt GROUP BY sid ORDER BY sid LIMIT 1`)
	if rows[0][0] != relation.String_("hi") {
		t.Errorf("case over aggregate = %v", rows[0][0])
	}
	if rows[0][1] != relation.Bool_(true) {
		t.Errorf("in over group col = %v", rows[0][1])
	}
	if rows[0][2] != relation.Bool_(false) {
		t.Errorf("is null over aggregate = %v", rows[0][2])
	}
}

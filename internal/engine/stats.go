package engine

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/relation"
)

// statsBuckets is the equi-depth histogram resolution: enough to
// distinguish order-of-magnitude selectivity differences, small enough
// that ANALYZE over the demo fleet stays sub-millisecond.
const statsBuckets = 10

// Bucket is one equi-depth histogram bucket: roughly RowCount/buckets
// non-null values fall between Lo and Hi (inclusive), Distinct of them
// distinct.
type Bucket struct {
	Lo, Hi   relation.Value
	Count    int64
	Distinct int64
}

// ColumnStats summarises one column of an analyzed relation: null
// count, number of distinct values (NDV), min/max, and an equi-depth
// histogram over the non-null values (comparable types only).
type ColumnStats struct {
	Name      string
	NullCount int64
	NDV       int64
	Min, Max  relation.Value
	Hist      []Bucket
}

// EqSelectivity estimates the fraction of rows matching col = v: the
// classic 1/NDV uniform-frequency assumption, refined to 0 when v falls
// outside the observed [Min, Max] range.
func (c *ColumnStats) EqSelectivity(rows int64, v relation.Value) float64 {
	if rows <= 0 || c.NDV <= 0 {
		return defaultEqSelectivity
	}
	if v.IsNull() {
		return 0
	}
	if !v.IsNull() && !c.Min.IsNull() && !c.Max.IsNull() {
		if lo, ok := relation.Compare(v, c.Min); ok && lo < 0 {
			return 0
		}
		if hi, ok := relation.Compare(v, c.Max); ok && hi > 0 {
			return 0
		}
	}
	sel := 1 / float64(c.NDV)
	if c.NullCount > 0 {
		sel *= float64(rows-c.NullCount) / float64(rows)
	}
	return sel
}

// RangeSelectivity estimates the fraction of rows satisfying col <op> v
// for op in <, <=, >, >= by walking the equi-depth histogram (each
// bucket holds ~1/buckets of the rows; the matching bucket contributes
// linearly interpolated mass).
func (c *ColumnStats) RangeSelectivity(op string, v relation.Value) float64 {
	if len(c.Hist) == 0 || v.IsNull() {
		return defaultRangeSelectivity
	}
	var total, below int64
	for _, b := range c.Hist {
		total += b.Count
		if cmp, ok := relation.Compare(v, b.Hi); ok && cmp >= 0 {
			below += b.Count
			continue
		}
		if cmp, ok := relation.Compare(v, b.Lo); ok && cmp > 0 {
			// v lands inside this bucket; assume half its mass is below.
			below += b.Count / 2
		}
	}
	if total == 0 {
		return defaultRangeSelectivity
	}
	frac := float64(below) / float64(total)
	switch op {
	case "<", "<=":
		return clampSel(frac)
	case ">", ">=":
		return clampSel(1 - frac)
	}
	return defaultRangeSelectivity
}

// TableStats is the ANALYZE output for one relation.
type TableStats struct {
	Table    string
	RowCount int64
	Cols     map[string]*ColumnStats // keyed by lower-cased column name
	// Gen is the catalog generation the pass ran at; the store discards
	// the entry when the catalog's table set changes.
	Gen uint64
}

// Col returns the named column's stats (case-insensitive), or nil.
func (t *TableStats) Col(name string) *ColumnStats {
	if t == nil {
		return nil
	}
	return t.Cols[strings.ToLower(name)]
}

// streamStats tracks a window source's observed shape, refreshed from
// the windowed samples the engine feeds back after each execution: an
// exponentially weighted moving average of rows per window plus a
// sampled per-column NDV from the most recent sampled window.
type streamStats struct {
	avgRows float64
	windows int64
	ndv     map[string]int64 // column -> NDV of last sampled window
}

// Stream-sample cost bounds: the EWMA row count updates on every
// window (a few float ops), but the per-column NDV scan stringifies
// every sampled value, so it runs only one window in ndvSampleEvery
// and caps the rows it reads — stats collection must not tax the
// ingest path it observes.
const (
	ndvSampleEvery = 16
	ndvSampleRows  = 256
)

// Selectivity defaults used when no statistics apply; the feedback loop
// replaces the filter default with the fleet's observed average.
const (
	defaultEqSelectivity    = 0.1
	defaultRangeSelectivity = 1.0 / 3
	defaultTableRows        = 1000
	defaultStreamRows       = 64
)

// StatsStore holds per-relation statistics over one catalog plus
// per-stream windowed samples and the observed-cardinality feedback the
// continuous queries report. It is the substrate of the cost-based
// planner: Analyze populates it, Table/Stream/FilterSelectivity answer
// estimation queries, Feedback and ObserveSource keep it fresh.
//
// Entries are invalidated when the catalog's Generation moves (table
// set changed); stale tables are re-analyzed lazily on next access, so
// the store is "persisted in the catalog" in the sense that its
// lifetime and validity are tied to the catalog it was built over.
// All methods are safe for concurrent use.
type StatsStore struct {
	mu     sync.RWMutex
	cat    *relation.Catalog
	tables map[string]*TableStats
	strms  map[string]*streamStats

	// Observed filter selectivity feedback: total input and output rows
	// of filter operators across executions. The ratio seasons the
	// default selectivity for predicates statistics cannot resolve.
	filterIn, filterOut int64
}

// NewStatsStore builds an empty store over a catalog. Call Analyze to
// populate it eagerly, or let lookups trigger per-table analysis.
func NewStatsStore(cat *relation.Catalog) *StatsStore {
	return &StatsStore{
		cat:    cat,
		tables: make(map[string]*TableStats),
		strms:  make(map[string]*streamStats),
	}
}

// Analyze runs the ANALYZE pass over every table in the catalog,
// (re)computing row counts, per-column NDV and equi-depth histograms.
func (s *StatsStore) Analyze() {
	if s == nil || s.cat == nil {
		return
	}
	for _, name := range s.cat.Names() {
		s.AnalyzeTable(name)
	}
}

// AnalyzeTable (re)computes one table's statistics; unknown tables are
// ignored (nil return).
func (s *StatsStore) AnalyzeTable(name string) *TableStats {
	if s == nil || s.cat == nil {
		return nil
	}
	t, err := s.cat.Get(name)
	if err != nil {
		return nil
	}
	ts := analyzeRows(t.Name(), t.Schema(), t.Rows())
	ts.Gen = s.cat.Generation()
	s.mu.Lock()
	s.tables[strings.ToLower(t.Name())] = ts
	s.mu.Unlock()
	return ts
}

// Table returns a table's statistics, lazily (re)analyzing when absent
// or built under an older catalog generation. Nil when the table does
// not exist.
func (s *StatsStore) Table(name string) *TableStats {
	if s == nil || s.cat == nil {
		return nil
	}
	gen := s.cat.Generation()
	s.mu.RLock()
	ts := s.tables[strings.ToLower(name)]
	s.mu.RUnlock()
	if ts != nil && ts.Gen == gen {
		return ts
	}
	return s.AnalyzeTable(name)
}

// ObserveSource folds one executed window batch of a named source
// (stream reference) into its windowed-sample statistics: EWMA row
// count plus per-column NDV of this batch.
func (s *StatsStore) ObserveSource(name string, schema relation.Schema, rows []relation.Tuple) {
	if s == nil {
		return
	}
	key := strings.ToLower(name)
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.strms[key]
	if st == nil {
		st = &streamStats{ndv: make(map[string]int64)}
		s.strms[key] = st
	}
	st.windows++
	const alpha = 0.2
	if st.windows == 1 {
		st.avgRows = float64(len(rows))
	} else {
		st.avgRows += alpha * (float64(len(rows)) - st.avgRows)
	}
	if len(rows) == 0 || st.windows%ndvSampleEvery != 1 {
		return
	}
	sample := rows
	if len(sample) > ndvSampleRows {
		sample = sample[:ndvSampleRows]
	}
	for j, col := range schema.Columns {
		seen := make(map[string]struct{}, 8)
		for _, r := range sample {
			if j < len(r) {
				seen[r[j].String()] = struct{}{}
			}
		}
		st.ndv[strings.ToLower(col.Name)] = int64(len(seen))
	}
}

// StreamRows returns the EWMA rows-per-window of a source, or the
// default when it has not been observed yet.
func (s *StatsStore) StreamRows(name string) float64 {
	if s == nil {
		return defaultStreamRows
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st := s.strms[strings.ToLower(name)]; st != nil && st.windows > 0 {
		return st.avgRows
	}
	return defaultStreamRows
}

// StreamColNDV returns the sampled per-window NDV of a source column
// (0 when unobserved).
func (s *StatsStore) StreamColNDV(name, col string) int64 {
	if s == nil {
		return 0
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if st := s.strms[strings.ToLower(name)]; st != nil {
		return st.ndv[strings.ToLower(col)]
	}
	return 0
}

// Feedback folds one execution's observed per-operator cardinalities
// back into the store: the filter in/out ratio replaces the built-in
// default selectivity for predicates the statistics cannot resolve, so
// repeated misestimates self-correct.
func (s *StatsStore) Feedback(st *ExecStats) {
	if s == nil || st == nil {
		return
	}
	f := st.Ops[OpFilter]
	if f.Calls == 0 {
		return
	}
	// A filter's input is what the tree below produced; approximate it
	// with the scan-shaped operators' output (sources feed filters in
	// the unfolded fleet's plan shapes).
	in := st.Ops[OpScan].RowsOut + st.Ops[OpWindowSource].RowsOut + st.Ops[OpValues].RowsOut
	if in <= 0 {
		return
	}
	s.mu.Lock()
	s.filterIn += in
	s.filterOut += f.RowsOut
	s.mu.Unlock()
}

// ObservedFilterSelectivity returns the fleet-wide observed filter
// selectivity, or the static default before any feedback arrived.
func (s *StatsStore) ObservedFilterSelectivity() float64 {
	if s == nil {
		return defaultEqSelectivity
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.filterIn <= 0 {
		return defaultEqSelectivity
	}
	return clampSel(float64(s.filterOut) / float64(s.filterIn))
}

// analyzeRows computes stats for one materialized relation.
func analyzeRows(table string, schema relation.Schema, rows []relation.Tuple) *TableStats {
	ts := &TableStats{
		Table:    table,
		RowCount: int64(len(rows)),
		Cols:     make(map[string]*ColumnStats, schema.Arity()),
	}
	for j, col := range schema.Columns {
		cs := &ColumnStats{Name: col.Name, Min: relation.Null, Max: relation.Null}
		vals := make([]relation.Value, 0, len(rows))
		distinct := make(map[string]struct{}, len(rows))
		for _, r := range rows {
			if j >= len(r) {
				continue
			}
			v := r[j]
			if v.IsNull() {
				cs.NullCount++
				continue
			}
			distinct[v.String()] = struct{}{}
			vals = append(vals, v)
		}
		cs.NDV = int64(len(distinct))
		if len(vals) > 0 {
			sort.SliceStable(vals, func(a, b int) bool {
				c, ok := relation.Compare(vals[a], vals[b])
				return ok && c < 0
			})
			cs.Min, cs.Max = vals[0], vals[len(vals)-1]
			cs.Hist = equiDepth(vals)
		}
		ts.Cols[strings.ToLower(col.Name)] = cs
	}
	return ts
}

// equiDepth builds an equi-depth histogram over sorted non-null values.
func equiDepth(sorted []relation.Value) []Bucket {
	n := len(sorted)
	buckets := statsBuckets
	if n < buckets {
		buckets = n
	}
	out := make([]Bucket, 0, buckets)
	per := n / buckets
	rem := n % buckets
	i := 0
	for b := 0; b < buckets; b++ {
		size := per
		if b < rem {
			size++
		}
		if size == 0 {
			break
		}
		slice := sorted[i : i+size]
		distinct := make(map[string]struct{}, size)
		for _, v := range slice {
			distinct[v.String()] = struct{}{}
		}
		out = append(out, Bucket{
			Lo:       slice[0],
			Hi:       slice[size-1],
			Count:    int64(size),
			Distinct: int64(len(distinct)),
		})
		i += size
	}
	return out
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

package engine

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// OpKind identifies a physical operator type for per-operator
// statistics.
type OpKind int

// Operator kinds, one per Plan implementation.
const (
	OpScan OpKind = iota
	OpValues
	OpWindowSource
	OpFilter
	OpProject
	OpHashJoin
	OpNestedJoin
	OpLookupJoin
	OpAggregate
	OpSort
	OpDistinct
	OpLimit
	OpUnion
	OpIndexScan
	NumOpKinds // array bound, keep last
)

var opKindNames = [NumOpKinds]string{
	"scan", "values", "window_source", "filter", "project",
	"hash_join", "nested_join", "lookup_join", "aggregate",
	"sort", "distinct", "limit", "union", "index_scan",
}

func (k OpKind) String() string {
	if k < 0 || k >= NumOpKinds {
		return "unknown"
	}
	return opKindNames[k]
}

// OpCounters are one operator kind's per-execution counters.
type OpCounters struct {
	Calls   int64 // Execute invocations
	RowsOut int64 // rows returned by this operator kind
	// WallNS is inclusive wall time spent evaluating operators of this
	// kind (children included), measured at the execChild boundary.
	// Inside a fused vectorized subtree only the subtree root is
	// timed; interior kernels report under the root's kind.
	WallNS int64
}

// ExecStats accumulates counters during plan execution; the adaptive
// indexing machinery, the telemetry layer, and the benchmarks read
// them. Ops breaks invocation and output-row counts down per operator
// kind (fixed array: no allocation on the execution path).
type ExecStats struct {
	RowsScanned   int64
	RowsProduced  int64
	HashProbes    int64
	IndexLookups  int64
	OperatorCount int64
	Ops           [NumOpKinds]OpCounters
}

// enter records one Execute invocation of an operator kind.
func (s *ExecStats) enter(k OpKind) {
	s.OperatorCount++
	s.Ops[k].Calls++
}

// produced records an operator's output rows (also feeding the
// aggregate RowsProduced counter, as before).
func (s *ExecStats) produced(k OpKind, n int) {
	s.RowsProduced += int64(n)
	s.Ops[k].RowsOut += int64(n)
}

// Add folds another execution's counters into s. exastream uses it to
// accumulate per-query stats across windows — the observed
// cardinalities EXPLAIN ANALYZE renders and StatsStore.Feedback folds
// back into the cost model (see stats.go).
func (s *ExecStats) Add(o *ExecStats) {
	s.RowsScanned += o.RowsScanned
	s.RowsProduced += o.RowsProduced
	s.HashProbes += o.HashProbes
	s.IndexLookups += o.IndexLookups
	s.OperatorCount += o.OperatorCount
	for k := range s.Ops {
		s.Ops[k].Calls += o.Ops[k].Calls
		s.Ops[k].RowsOut += o.Ops[k].RowsOut
		s.Ops[k].WallNS += o.Ops[k].WallNS
	}
}

// ExecContext carries everything a plan needs to run.
type ExecContext struct {
	Catalog *relation.Catalog
	Funcs   *FuncRegistry
	Stats   ExecStats
	// Interpret makes operators evaluate expressions with the reference
	// interpreter (Eval) instead of compiled closures. It exists so the
	// compiled pipeline can be ablated in benchmarks and bisected when
	// chasing a miscompilation; production paths leave it false.
	Interpret bool
	// Vectorized routes execution through the columnar batch kernels
	// (vec.go) wherever a subtree supports them; operators without a
	// kernel fall back to this row path transparently. Off, plans run
	// tuple-at-a-time exactly as before — that path doubles as the
	// differential oracle for the kernels.
	Vectorized bool
}

// NewExecContext returns a context over a catalog with built-in functions.
func NewExecContext(cat *relation.Catalog) *ExecContext {
	return &ExecContext{Catalog: cat, Funcs: NewFuncRegistry()}
}

// Plan is a node of a physical query plan. Execute returns the full
// result; the engine materialises intermediate results, matching the
// window-batch-at-a-time execution model of the stream engine.
type Plan interface {
	Schema() relation.Schema
	Execute(ctx *ExecContext) ([]relation.Tuple, error)
	Children() []Plan
	String() string
}

// Explain renders a plan tree as an indented outline.
func Explain(p Plan) string {
	var sb strings.Builder
	var rec func(p Plan, depth int)
	rec = func(p Plan, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(p.String())
		sb.WriteByte('\n')
		for _, c := range p.Children() {
			rec(c, depth+1)
		}
	}
	rec(p, 0)
	return sb.String()
}

// ---- Scan ----

// ScanPlan reads a base table from the catalog.
type ScanPlan struct {
	Table  string
	Alias  string
	schema relation.Schema
}

// NewScanPlan builds a scan; the schema is qualified by the alias (or the
// table name) so joined plans have unambiguous columns.
func NewScanPlan(table, alias string, schema relation.Schema) *ScanPlan {
	name := alias
	if name == "" {
		name = table
	}
	return &ScanPlan{Table: table, Alias: name, schema: schema.Qualify(name)}
}

// Schema implements Plan.
func (s *ScanPlan) Schema() relation.Schema { return s.schema }

// Children implements Plan.
func (s *ScanPlan) Children() []Plan { return nil }

func (s *ScanPlan) String() string {
	if s.Alias != s.Table {
		return fmt.Sprintf("Scan(%s AS %s)", s.Table, s.Alias)
	}
	return fmt.Sprintf("Scan(%s)", s.Table)
}

// Execute implements Plan.
func (s *ScanPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpScan)
	t, err := ctx.Catalog.Get(s.Table)
	if err != nil {
		return nil, err
	}
	rows := t.Rows()
	ctx.Stats.RowsScanned += int64(len(rows))
	return rows, nil
}

// ---- Values (materialised input, used for window batches) ----

// ValuesPlan serves a pre-materialised batch of rows; the stream layer
// wraps window contents in it.
type ValuesPlan struct {
	Rows   []relation.Tuple
	Name   string
	schema relation.Schema

	cb *relation.ColBatch // lazy transpose for the columnar path
}

// NewValuesPlan wraps rows under the given qualified schema.
func NewValuesPlan(name string, schema relation.Schema, rows []relation.Tuple) *ValuesPlan {
	return &ValuesPlan{Rows: rows, Name: name, schema: schema}
}

// Schema implements Plan.
func (v *ValuesPlan) Schema() relation.Schema { return v.schema }

// Children implements Plan.
func (v *ValuesPlan) Children() []Plan { return nil }

func (v *ValuesPlan) String() string { return fmt.Sprintf("Values(%s, %d rows)", v.Name, len(v.Rows)) }

// Execute implements Plan.
func (v *ValuesPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpValues)
	ctx.Stats.RowsScanned += int64(len(v.Rows))
	return v.Rows, nil
}

// ---- Filter ----

// FilterPlan keeps rows satisfying a predicate.
type FilterPlan struct {
	Input Plan
	Pred  sql.Expr

	pred  CompiledExpr // compiled on first Execute
	vpred vecExpr      // columnar kernel, compiled on first executeVec

	// executeVec scratch, reused across serialized executions (see the
	// concurrency contract in vec.go).
	keep *relation.Bitmap
	vf   vecFrame
}

// Schema implements Plan.
func (f *FilterPlan) Schema() relation.Schema { return f.Input.Schema() }

// Children implements Plan.
func (f *FilterPlan) Children() []Plan { return []Plan{f.Input} }

func (f *FilterPlan) String() string { return "Filter(" + f.Pred.String() + ")" }

// Execute implements Plan.
func (f *FilterPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpFilter)
	in, err := execChild(ctx, f.Input)
	if err != nil {
		return nil, err
	}
	if f.pred == nil {
		f.pred, err = exprFor(ctx, f.Pred, f.Input.Schema())
		if err != nil {
			return nil, err
		}
	}
	var out []relation.Tuple
	for _, row := range in {
		v, err := f.pred(row)
		if err != nil {
			return nil, err
		}
		if v.Truthy() {
			out = append(out, row)
		}
	}
	ctx.Stats.produced(OpFilter, len(out))
	return out, nil
}

// ---- Project ----

// ProjectPlan computes output expressions per row.
type ProjectPlan struct {
	Input  Plan
	Exprs  []sql.Expr
	Names  []string
	schema relation.Schema

	exprs  []CompiledExpr // compiled on first Execute
	vexprs []vecExpr      // columnar kernels, compiled on first executeVec

	// executeVec scratch, reused across serialized executions.
	vout []*relation.Vector
	vf   vecFrame
}

// NewProjectPlan builds a projection with explicit output column names.
// Output types are inferred lazily as TNull (untyped); consumers relying
// on types should look at values.
func NewProjectPlan(input Plan, exprs []sql.Expr, names []string) *ProjectPlan {
	cols := make([]relation.Column, len(exprs))
	for i := range exprs {
		cols[i] = relation.Column{Name: names[i], Type: relation.TNull}
	}
	return &ProjectPlan{Input: input, Exprs: exprs, Names: names, schema: relation.Schema{Columns: cols}}
}

// Schema implements Plan.
func (p *ProjectPlan) Schema() relation.Schema { return p.schema }

// Children implements Plan.
func (p *ProjectPlan) Children() []Plan { return []Plan{p.Input} }

func (p *ProjectPlan) String() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = e.String()
	}
	return "Project(" + strings.Join(parts, ", ") + ")"
}

// Execute implements Plan.
func (p *ProjectPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpProject)
	in, err := execChild(ctx, p.Input)
	if err != nil {
		return nil, err
	}
	if p.exprs == nil {
		p.exprs = exprsFor(ctx, p.Exprs, p.Input.Schema())
	}
	out := make([]relation.Tuple, len(in))
	for i, row := range in {
		t := make(relation.Tuple, len(p.exprs))
		for j, e := range p.exprs {
			v, err := e(row)
			if err != nil {
				return nil, err
			}
			t[j] = v
		}
		out[i] = t
	}
	ctx.Stats.produced(OpProject, len(out))
	return out, nil
}

// ---- Joins ----

// HashJoinPlan is an equi-join on key expressions: it builds a hash table
// on the right input and probes with the left. Non-equi residual
// predicates are applied after the probe.
type HashJoinPlan struct {
	Left, Right         Plan
	LeftKeys, RightKeys []sql.Expr
	Residual            sql.Expr
	LeftOuter           bool
	schema              relation.Schema

	// Compiled on first Execute.
	leftKey, rightKey *compiledKey
	residual          CompiledExpr
}

// NewHashJoinPlan constructs a hash join.
func NewHashJoinPlan(left, right Plan, leftKeys, rightKeys []sql.Expr, residual sql.Expr, leftOuter bool) *HashJoinPlan {
	return &HashJoinPlan{
		Left: left, Right: right,
		LeftKeys: leftKeys, RightKeys: rightKeys,
		Residual: residual, LeftOuter: leftOuter,
		schema: left.Schema().Concat(right.Schema()),
	}
}

// Schema implements Plan.
func (j *HashJoinPlan) Schema() relation.Schema { return j.schema }

// Children implements Plan.
func (j *HashJoinPlan) Children() []Plan { return []Plan{j.Left, j.Right} }

func (j *HashJoinPlan) String() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = j.LeftKeys[i].String() + "=" + j.RightKeys[i].String()
	}
	kind := "HashJoin"
	if j.LeftOuter {
		kind = "HashLeftJoin"
	}
	return kind + "(" + strings.Join(parts, ", ") + ")"
}

// Execute implements Plan.
func (j *HashJoinPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpHashJoin)
	leftRows, err := execChild(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	rightRows, err := execChild(ctx, j.Right)
	if err != nil {
		return nil, err
	}
	if j.leftKey == nil {
		j.leftKey = newCompiledKey(ctx, j.LeftKeys, j.Left.Schema())
		j.rightKey = newCompiledKey(ctx, j.RightKeys, j.Right.Schema())
		if j.Residual != nil {
			if j.residual, err = exprFor(ctx, j.Residual, j.schema); err != nil {
				return nil, err
			}
		}
	}
	build := make(map[string][]relation.Tuple, len(rightRows))
	for _, row := range rightRows {
		k, ok, err := j.rightKey.eval(row)
		if err != nil {
			return nil, err
		}
		if ok {
			build[k] = append(build[k], row)
		}
	}
	var out []relation.Tuple
	nullRight := make(relation.Tuple, j.Right.Schema().Arity())
	for i := range nullRight {
		nullRight[i] = relation.Null
	}
	for _, lrow := range leftRows {
		k, ok, err := j.leftKey.eval(lrow)
		ctx.Stats.HashProbes++
		if err != nil {
			return nil, err
		}
		matched := false
		if ok {
			for _, rrow := range build[k] {
				joined := lrow.Concat(rrow)
				if j.residual != nil {
					v, err := j.residual(joined)
					if err != nil {
						return nil, err
					}
					if !v.Truthy() {
						continue
					}
				}
				matched = true
				out = append(out, joined)
			}
		}
		if !matched && j.LeftOuter {
			out = append(out, lrow.Concat(nullRight))
		}
	}
	ctx.Stats.produced(OpHashJoin, len(out))
	return out, nil
}

// NestedLoopJoinPlan joins with an arbitrary predicate; it is the
// fallback when no equi-keys exist.
type NestedLoopJoinPlan struct {
	Left, Right Plan
	On          sql.Expr // nil = cross product
	LeftOuter   bool
	schema      relation.Schema

	on CompiledExpr // compiled on first Execute
}

// NewNestedLoopJoinPlan constructs a nested-loop join.
func NewNestedLoopJoinPlan(left, right Plan, on sql.Expr, leftOuter bool) *NestedLoopJoinPlan {
	return &NestedLoopJoinPlan{Left: left, Right: right, On: on, LeftOuter: leftOuter,
		schema: left.Schema().Concat(right.Schema())}
}

// Schema implements Plan.
func (j *NestedLoopJoinPlan) Schema() relation.Schema { return j.schema }

// Children implements Plan.
func (j *NestedLoopJoinPlan) Children() []Plan { return []Plan{j.Left, j.Right} }

func (j *NestedLoopJoinPlan) String() string {
	on := "true"
	if j.On != nil {
		on = j.On.String()
	}
	kind := "NestedLoopJoin"
	if j.LeftOuter {
		kind = "NestedLoopLeftJoin"
	}
	return kind + "(" + on + ")"
}

// Execute implements Plan.
func (j *NestedLoopJoinPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpNestedJoin)
	leftRows, err := execChild(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	rightRows, err := execChild(ctx, j.Right)
	if err != nil {
		return nil, err
	}
	if j.On != nil && j.on == nil {
		if j.on, err = exprFor(ctx, j.On, j.schema); err != nil {
			return nil, err
		}
	}
	var out []relation.Tuple
	nullRight := make(relation.Tuple, j.Right.Schema().Arity())
	for i := range nullRight {
		nullRight[i] = relation.Null
	}
	for _, lrow := range leftRows {
		matched := false
		for _, rrow := range rightRows {
			joined := lrow.Concat(rrow)
			if j.on != nil {
				v, err := j.on(joined)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			matched = true
			out = append(out, joined)
		}
		if !matched && j.LeftOuter {
			out = append(out, lrow.Concat(nullRight))
		}
	}
	ctx.Stats.produced(OpNestedJoin, len(out))
	return out, nil
}

// ---- Aggregate ----

// AggregatePlan groups rows by the group expressions and computes
// aggregate calls. Output columns are the group expressions followed by
// the aggregates, each named by its expression text so upstream
// projections can reference them.
type AggregatePlan struct {
	Input      Plan
	GroupExprs []sql.Expr
	Aggs       []*sql.FuncExpr
	schema     relation.Schema

	// Compiled on first Execute.
	groups   []CompiledExpr
	aggArgs  [][2]CompiledExpr // [arg0, arg1]; arg1 only for corr
	compiled bool
}

// NewAggregatePlan constructs an aggregation.
func NewAggregatePlan(input Plan, groupExprs []sql.Expr, aggs []*sql.FuncExpr) *AggregatePlan {
	cols := make([]relation.Column, 0, len(groupExprs)+len(aggs))
	for _, g := range groupExprs {
		cols = append(cols, relation.Column{Name: exprName(g), Type: relation.TNull})
	}
	for _, a := range aggs {
		cols = append(cols, relation.Column{Name: a.String(), Type: relation.TNull})
	}
	return &AggregatePlan{Input: input, GroupExprs: groupExprs, Aggs: aggs,
		schema: relation.Schema{Columns: cols}}
}

// exprName yields the output column name for a group expression: bare
// column refs keep their (qualified) name, others use the printed form.
func exprName(e sql.Expr) string {
	if c, ok := e.(*sql.ColumnRef); ok {
		return c.FullName()
	}
	return e.String()
}

// Schema implements Plan.
func (a *AggregatePlan) Schema() relation.Schema { return a.schema }

// Children implements Plan.
func (a *AggregatePlan) Children() []Plan { return []Plan{a.Input} }

func (a *AggregatePlan) String() string {
	groups := make([]string, len(a.GroupExprs))
	for i, g := range a.GroupExprs {
		groups[i] = g.String()
	}
	aggs := make([]string, len(a.Aggs))
	for i, g := range a.Aggs {
		aggs[i] = g.String()
	}
	return fmt.Sprintf("Aggregate(groups=[%s], aggs=[%s])",
		strings.Join(groups, ", "), strings.Join(aggs, ", "))
}

// aggState accumulates one aggregate for one group.
type aggState struct {
	count   int64
	sum     float64
	sumSq   float64
	sumXY   float64
	sumY    float64
	sumYSq  float64
	min     relation.Value
	max     relation.Value
	first   relation.Value
	last    relation.Value
	seen    map[relation.Value]struct{} // for DISTINCT
	started bool
}

// Execute implements Plan.
func (a *AggregatePlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpAggregate)
	in, err := execChild(ctx, a.Input)
	if err != nil {
		return nil, err
	}
	if !a.compiled {
		schema := a.Input.Schema()
		a.groups = exprsFor(ctx, a.GroupExprs, schema)
		a.aggArgs = make([][2]CompiledExpr, len(a.Aggs))
		for i, agg := range a.Aggs {
			if len(agg.Args) > 0 {
				a.aggArgs[i][0], _ = exprFor(ctx, agg.Args[0], schema)
			}
			if len(agg.Args) == 2 && strings.EqualFold(agg.Name, "corr") {
				a.aggArgs[i][1], _ = exprFor(ctx, agg.Args[1], schema)
			}
		}
		a.compiled = true
	}

	type group struct {
		key    relation.Tuple
		states []*aggState
		order  int
	}
	groups := make(map[string]*group)
	var orderCounter int

	idx := make([]int, len(a.GroupExprs))
	for i := range idx {
		idx[i] = i
	}
	keyBuf := make(relation.Tuple, len(a.GroupExprs))
	for _, row := range in {
		for i, g := range a.groups {
			v, err := g(row)
			if err != nil {
				return nil, err
			}
			keyBuf[i] = v
		}
		k := keyBuf.Key(idx)
		grp, ok := groups[k]
		if !ok {
			grp = &group{key: append(relation.Tuple(nil), keyBuf...),
				states: make([]*aggState, len(a.Aggs)), order: orderCounter}
			orderCounter++
			for i := range grp.states {
				grp.states[i] = &aggState{seen: make(map[relation.Value]struct{})}
			}
			groups[k] = grp
		}
		for i, agg := range a.Aggs {
			if err := accumulate(grp.states[i], agg, a.aggArgs[i][0], a.aggArgs[i][1], row); err != nil {
				return nil, err
			}
		}
	}

	// A global aggregate over zero rows still yields one output row.
	if len(groups) == 0 && len(a.GroupExprs) == 0 {
		grp := &group{states: make([]*aggState, len(a.Aggs))}
		for i := range grp.states {
			grp.states[i] = &aggState{seen: make(map[relation.Value]struct{})}
		}
		groups[""] = grp
	}

	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })

	out := make([]relation.Tuple, 0, len(ordered))
	for _, g := range ordered {
		row := make(relation.Tuple, 0, len(g.key)+len(a.Aggs))
		row = append(row, g.key...)
		for i, agg := range a.Aggs {
			row = append(row, finalize(g.states[i], agg))
		}
		out = append(out, row)
	}
	ctx.Stats.produced(OpAggregate, len(out))
	return out, nil
}

func accumulate(st *aggState, agg *sql.FuncExpr, arg, yarg CompiledExpr, row relation.Tuple) error {
	name := strings.ToLower(agg.Name)
	if agg.Star {
		st.count++
		return nil
	}
	if len(agg.Args) == 0 {
		return fmt.Errorf("engine: aggregate %s requires an argument", name)
	}
	v, err := arg(row)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil // SQL aggregates skip NULLs
	}
	if agg.Distinct {
		if _, dup := st.seen[v]; dup {
			return nil
		}
		st.seen[v] = struct{}{}
	}
	if !st.started {
		st.first = v
		st.started = true
	}
	st.last = v
	st.count++
	switch name {
	case "count", "first", "last":
	case "sum", "avg":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("engine: %s over non-numeric value %s", name, v)
		}
		st.sum += f
	case "stddev":
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("engine: stddev over non-numeric value %s", v)
		}
		st.sum += f
		st.sumSq += f * f
	case "corr":
		if len(agg.Args) != 2 {
			return fmt.Errorf("engine: corr expects 2 arguments")
		}
		y, err := yarg(row)
		if err != nil {
			return err
		}
		if y.IsNull() {
			st.count-- // pair incomplete; undo the count
			return nil
		}
		xf, ok1 := v.AsFloat()
		yf, ok2 := y.AsFloat()
		if !ok1 || !ok2 {
			return fmt.Errorf("engine: corr over non-numeric values")
		}
		st.sum += xf
		st.sumSq += xf * xf
		st.sumY += yf
		st.sumYSq += yf * yf
		st.sumXY += xf * yf
	case "min":
		if st.min.IsNull() {
			st.min = v
		} else if c, ok := relation.Compare(v, st.min); ok && c < 0 {
			st.min = v
		}
	case "max":
		if st.max.IsNull() {
			st.max = v
		} else if c, ok := relation.Compare(v, st.max); ok && c > 0 {
			st.max = v
		}
	default:
		return fmt.Errorf("engine: unknown aggregate %q", name)
	}
	return nil
}

func finalize(st *aggState, agg *sql.FuncExpr) relation.Value {
	switch strings.ToLower(agg.Name) {
	case "count":
		return relation.Int(st.count)
	case "sum":
		if st.count == 0 {
			return relation.Null
		}
		return relation.Float(st.sum)
	case "avg":
		if st.count == 0 {
			return relation.Null
		}
		return relation.Float(st.sum / float64(st.count))
	case "stddev":
		if st.count < 2 {
			return relation.Null
		}
		n := float64(st.count)
		variance := (st.sumSq - st.sum*st.sum/n) / (n - 1)
		if variance < 0 {
			variance = 0
		}
		return relation.Float(math.Sqrt(variance))
	case "corr":
		if st.count < 2 {
			return relation.Null
		}
		n := float64(st.count)
		cov := st.sumXY - st.sum*st.sumY/n
		vx := st.sumSq - st.sum*st.sum/n
		vy := st.sumYSq - st.sumY*st.sumY/n
		if vx <= 0 || vy <= 0 {
			return relation.Null
		}
		return relation.Float(cov / math.Sqrt(vx*vy))
	case "min":
		return st.min
	case "max":
		return st.max
	case "first":
		return st.first
	case "last":
		return st.last
	default:
		return relation.Null
	}
}

// ---- Sort / Distinct / Limit / Union ----

// SortPlan orders rows by expressions.
type SortPlan struct {
	Input Plan
	Items []sql.OrderItem

	items []CompiledExpr // compiled on first Execute
}

// Schema implements Plan.
func (s *SortPlan) Schema() relation.Schema { return s.Input.Schema() }

// Children implements Plan.
func (s *SortPlan) Children() []Plan { return []Plan{s.Input} }

func (s *SortPlan) String() string {
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		parts[i] = it.String()
	}
	return "Sort(" + strings.Join(parts, ", ") + ")"
}

// Execute implements Plan.
func (s *SortPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpSort)
	in, err := execChild(ctx, s.Input)
	if err != nil {
		return nil, err
	}
	if s.items == nil {
		schema := s.Input.Schema()
		s.items = make([]CompiledExpr, len(s.Items))
		for j, it := range s.Items {
			s.items[j], _ = exprFor(ctx, it.Expr, schema)
		}
	}
	keys := make([][]relation.Value, len(in))
	for i, row := range in {
		ks := make([]relation.Value, len(s.items))
		for j, it := range s.items {
			v, err := it(row)
			if err != nil {
				return nil, err
			}
			ks[j] = v
		}
		keys[i] = ks
	}
	idx := make([]int, len(in))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool {
		for j, it := range s.Items {
			c, ok := relation.Compare(keys[idx[x]][j], keys[idx[y]][j])
			if !ok || c == 0 {
				continue
			}
			if it.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	out := make([]relation.Tuple, len(in))
	for i, p := range idx {
		out[i] = in[p]
	}
	return out, nil
}

// DistinctPlan removes duplicate rows.
type DistinctPlan struct {
	Input Plan
}

// Schema implements Plan.
func (d *DistinctPlan) Schema() relation.Schema { return d.Input.Schema() }

// Children implements Plan.
func (d *DistinctPlan) Children() []Plan { return []Plan{d.Input} }

func (d *DistinctPlan) String() string { return "Distinct" }

// Execute implements Plan.
func (d *DistinctPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpDistinct)
	in, err := execChild(ctx, d.Input)
	if err != nil {
		return nil, err
	}
	arity := d.Input.Schema().Arity()
	idx := make([]int, arity)
	for i := range idx {
		idx[i] = i
	}
	seen := make(map[string]struct{}, len(in))
	var out []relation.Tuple
	for _, row := range in {
		k := row.Key(idx)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, row)
	}
	ctx.Stats.produced(OpDistinct, len(out))
	return out, nil
}

// LimitPlan truncates the result.
type LimitPlan struct {
	Input Plan
	N     int

	// executeVec scratch, reused across serialized executions.
	keep *relation.Bitmap
	vf   vecFrame
}

// Schema implements Plan.
func (l *LimitPlan) Schema() relation.Schema { return l.Input.Schema() }

// Children implements Plan.
func (l *LimitPlan) Children() []Plan { return []Plan{l.Input} }

func (l *LimitPlan) String() string { return fmt.Sprintf("Limit(%d)", l.N) }

// Execute implements Plan.
func (l *LimitPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpLimit)
	in, err := execChild(ctx, l.Input)
	if err != nil {
		return nil, err
	}
	if len(in) > l.N {
		in = in[:l.N]
	}
	return in, nil
}

// UnionPlan concatenates branch outputs; Distinct applies set semantics.
type UnionPlan struct {
	Inputs   []Plan
	Distinct bool
}

// Schema implements Plan.
func (u *UnionPlan) Schema() relation.Schema { return u.Inputs[0].Schema() }

// Children implements Plan.
func (u *UnionPlan) Children() []Plan { return u.Inputs }

func (u *UnionPlan) String() string {
	if u.Distinct {
		return fmt.Sprintf("Union(distinct, %d branches)", len(u.Inputs))
	}
	return fmt.Sprintf("UnionAll(%d branches)", len(u.Inputs))
}

// Execute implements Plan.
func (u *UnionPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpUnion)
	arity := u.Schema().Arity()
	var out []relation.Tuple
	for _, in := range u.Inputs {
		rows, err := execChild(ctx, in)
		if err != nil {
			return nil, err
		}
		if in.Schema().Arity() != arity {
			return nil, fmt.Errorf("engine: union branches have different arity")
		}
		out = append(out, rows...)
	}
	if u.Distinct {
		d := &DistinctPlan{Input: NewValuesPlan("union", u.Schema(), out)}
		return d.Execute(ctx)
	}
	ctx.Stats.produced(OpUnion, len(out))
	return out, nil
}

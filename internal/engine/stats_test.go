package engine

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
)

// statsRig builds a catalog with a sensors table of n rows: sid 0..n-1
// (unique), kind cycling over 5 values, val = sid as float.
func statsRig(t *testing.T, n int64) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	sensors, err := cat.Create("sensors", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("kind", relation.TString),
		relation.Col("val", relation.TFloat)))
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"temperature", "pressure", "vibration", "flow", "speed"}
	for i := int64(0); i < n; i++ {
		sensors.MustInsert(relation.Tuple{
			relation.Int(i),
			relation.String_(kinds[i%int64(len(kinds))]),
			relation.Float(float64(i)),
		})
	}
	return cat
}

func TestAnalyzeTableStats(t *testing.T) {
	cat := statsRig(t, 1000)
	st := NewStatsStore(cat)
	ts := st.Table("sensors")
	if ts == nil {
		t.Fatal("no stats for sensors")
	}
	if ts.RowCount != 1000 {
		t.Fatalf("RowCount = %d, want 1000", ts.RowCount)
	}
	sid := ts.Col("sid")
	if sid == nil || sid.NDV != 1000 {
		t.Fatalf("sid NDV = %+v, want 1000", sid)
	}
	kind := ts.Col("KIND") // case-insensitive
	if kind == nil || kind.NDV != 5 {
		t.Fatalf("kind NDV = %+v, want 5", kind)
	}
	if len(sid.Hist) == 0 {
		t.Fatal("sid has no histogram")
	}

	// Unique column: eq selectivity is 1/NDV; out-of-range pins to 0.
	if got := sid.EqSelectivity(ts.RowCount, relation.Int(500)); got != 1.0/1000 {
		t.Errorf("eq sel in range = %v, want 0.001", got)
	}
	if got := sid.EqSelectivity(ts.RowCount, relation.Int(5000)); got != 0 {
		t.Errorf("eq sel out of range = %v, want 0", got)
	}

	// Range selectivity through the equi-depth histogram: the median
	// splits roughly in half, and < is monotone in v.
	mid := sid.RangeSelectivity("<", relation.Int(500))
	if mid < 0.35 || mid > 0.65 {
		t.Errorf("sel(sid < 500) = %v, want ~0.5", mid)
	}
	lo := sid.RangeSelectivity("<", relation.Int(100))
	hi := sid.RangeSelectivity("<", relation.Int(900))
	if !(lo < mid && mid < hi) {
		t.Errorf("range selectivity not monotone: %v %v %v", lo, mid, hi)
	}
}

func TestStatsStoreInvalidatedByCatalogGeneration(t *testing.T) {
	cat := statsRig(t, 100)
	st := NewStatsStore(cat)
	before := st.Table("sensors")
	if before == nil || before.RowCount != 100 {
		t.Fatalf("unexpected initial stats: %+v", before)
	}
	// Creating a table bumps the catalog generation; the cached entry
	// must be re-analyzed on next access, not served stale.
	if _, err := cat.Create("other", relation.NewSchema(relation.Col("x", relation.TInt))); err != nil {
		t.Fatal(err)
	}
	after := st.Table("sensors")
	if after == nil {
		t.Fatal("stats vanished after generation bump")
	}
	if after.Gen == before.Gen {
		t.Fatalf("stats not refreshed: gen still %d", after.Gen)
	}
}

func TestStreamStatsEWMAAndNDV(t *testing.T) {
	st := NewStatsStore(relation.NewCatalog())
	schema := relation.NewSchema(
		relation.Col("sid", relation.TInt), relation.Col("val", relation.TFloat))
	mkRows := func(n int) []relation.Tuple {
		rows := make([]relation.Tuple, n)
		for i := range rows {
			rows[i] = relation.Tuple{relation.Int(int64(i % 4)), relation.Float(1)}
		}
		return rows
	}
	if got := st.StreamRows("m"); got != defaultStreamRows {
		t.Fatalf("unobserved StreamRows = %v, want default %v", got, float64(defaultStreamRows))
	}
	st.ObserveSource("m", schema, mkRows(100))
	if got := st.StreamRows("m"); got != 100 {
		t.Fatalf("first observation StreamRows = %v, want 100", got)
	}
	st.ObserveSource("m", schema, mkRows(20))
	got := st.StreamRows("m")
	if !(got > 20 && got < 100) {
		t.Fatalf("EWMA after 100,20 = %v, want between", got)
	}
	if ndv := st.StreamColNDV("m", "sid"); ndv != 4 {
		t.Fatalf("stream sid NDV = %d, want 4", ndv)
	}
}

func TestFeedbackObservedFilterSelectivity(t *testing.T) {
	st := NewStatsStore(relation.NewCatalog())
	if got := st.ObservedFilterSelectivity(); got != defaultEqSelectivity {
		t.Fatalf("before feedback = %v, want default", got)
	}
	var ex ExecStats
	ex.Ops[OpScan] = OpCounters{Calls: 1, RowsOut: 200}
	ex.Ops[OpFilter] = OpCounters{Calls: 1, RowsOut: 50}
	st.Feedback(&ex)
	if got := st.ObservedFilterSelectivity(); got != 0.25 {
		t.Fatalf("after feedback = %v, want 0.25", got)
	}
}

func TestOptimizeWithStatsChoosesIndexScan(t *testing.T) {
	cat := statsRig(t, 1000)
	st := NewStatsStore(cat)
	tbl, _ := cat.Get("sensors")
	scan := NewScanPlan(tbl.Name(), "s", tbl.Schema())
	pred := sql.Bin("AND",
		sql.Bin("=", &sql.ColumnRef{Table: "s", Name: "sid"}, sql.Lit(relation.Int(7))),
		sql.Bin(">", &sql.ColumnRef{Table: "s", Name: "val"}, sql.Lit(relation.Float(-1))))
	var before Plan = &FilterPlan{Input: scan, Pred: pred}

	after := OptimizeWithStats(before, st)
	found := CollectIndexScans(after)
	if len(found) != 1 {
		t.Fatalf("expected one index scan, got %d in:\n%s", len(found), after.String())
	}
	is := found[0]
	if is.Table != "sensors" || len(is.Cols) != 1 || is.Cols[0] != "sid" {
		t.Fatalf("unexpected index scan target: %+v", is)
	}
	if is.Residual == nil {
		t.Fatal("range conjunct should remain as residual")
	}

	// Differential: both plans return the same rows.
	ctx := NewExecContext(cat)
	want, err := before.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := after.Execute(NewExecContext(cat))
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("index scan changed results:\nwant %v\ngot  %v", want, got)
	}
}

func TestOptimizeWithStatsKeepsTinyTableScan(t *testing.T) {
	cat := statsRig(t, 4) // below indexScanMinRows
	st := NewStatsStore(cat)
	tbl, _ := cat.Get("sensors")
	var p Plan = &FilterPlan{
		Input: NewScanPlan(tbl.Name(), "s", tbl.Schema()),
		Pred:  sql.Bin("=", &sql.ColumnRef{Table: "s", Name: "sid"}, sql.Lit(relation.Int(1))),
	}
	if got := OptimizeWithStats(p, st); len(CollectIndexScans(got)) != 0 {
		t.Fatalf("tiny table should stay a scan:\n%s", got.String())
	}
}

func TestReorderLookupChainBySelectivity(t *testing.T) {
	// Stream rows join two tables: "wide" matches many rows per probe
	// (NDV 2 over 100 rows), "narrow" exactly one (unique key). The
	// optimizer must probe narrow first.
	cat := relation.NewCatalog()
	wide, err := cat.Create("wide", relation.NewSchema(
		relation.Col("k", relation.TInt), relation.Col("w", relation.TInt)))
	if err != nil {
		t.Fatal(err)
	}
	narrow, err := cat.Create("narrow", relation.NewSchema(
		relation.Col("id", relation.TInt), relation.Col("n", relation.TInt)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100; i++ {
		wide.MustInsert(relation.Tuple{relation.Int(i % 2), relation.Int(i)})
		narrow.MustInsert(relation.Tuple{relation.Int(i), relation.Int(i * 10)})
	}
	st := NewStatsStore(cat)

	src := NewWindowSourcePlan("m", relation.NewSchema(
		relation.Col("m.sid", relation.TInt), relation.Col("m.flag", relation.TInt)))
	inner := NewLookupJoinPlan(src, "wide", "a", wide.Schema(),
		[]sql.Expr{&sql.ColumnRef{Table: "m", Name: "flag"}}, []string{"k"}, nil)
	top := NewLookupJoinPlan(inner, "narrow", "b", narrow.Schema(),
		[]sql.Expr{&sql.ColumnRef{Table: "m", Name: "sid"}}, []string{"id"}, nil)
	proj := NewProjectPlan(top, []sql.Expr{
		&sql.ColumnRef{Table: "b", Name: "n"},
		&sql.ColumnRef{Table: "a", Name: "w"},
	}, []string{"n", "w"})

	opt := OptimizeWithStats(proj, st)
	optTop, ok := opt.(*ProjectPlan).Input.(*LookupJoinPlan)
	if !ok {
		t.Fatalf("optimized root is not a lookup join:\n%s", opt.String())
	}
	if optTop.Table != "wide" {
		t.Fatalf("chain not reordered: outermost join is %s, want wide last", optTop.Table)
	}

	rows := []relation.Tuple{
		{relation.Int(3), relation.Int(1)},
		{relation.Int(8), relation.Int(0)},
	}
	exec := func(p Plan) []string {
		src.Bind(rows)
		out, err := p.Execute(NewExecContext(cat))
		if err != nil {
			t.Fatal(err)
		}
		var ss []string
		for _, r := range out {
			ss = append(ss, fmt.Sprint(r))
		}
		sort.Strings(ss)
		return ss
	}
	want := exec(proj)
	got := exec(opt)
	if len(want) == 0 {
		t.Fatal("oracle produced no rows — vacuous differential")
	}
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("reorder changed the result set:\nwant %v\ngot  %v", want, got)
	}
}

func TestEstimatePlanCoversTree(t *testing.T) {
	cat := statsRig(t, 1000)
	st := NewStatsStore(cat)
	stmt := sql.MustParse(`SELECT s.kind, count(*) FROM sensors AS s WHERE s.sid < 500 GROUP BY s.kind`)
	plan, err := Build(stmt, CatalogResolver(cat))
	if err != nil {
		t.Fatal(err)
	}
	est := EstimatePlan(plan, st)
	var walk func(Plan)
	walk = func(p Plan) {
		e, ok := est[p]
		if !ok {
			t.Fatalf("no estimate for node %T", p)
		}
		if e.EstRows < 0 || e.EstCost < 0 {
			t.Fatalf("negative estimate for %T: %+v", p, e)
		}
		for _, c := range p.Children() {
			walk(c)
		}
	}
	walk(plan)
	// The scan estimate must reflect ANALYZE, not the default.
	for p, e := range est {
		if _, ok := p.(*ScanPlan); ok && e.EstRows != 1000 {
			t.Fatalf("scan estimate = %v, want 1000", e.EstRows)
		}
	}
}

// TestExplainAnalyzeZeroCallOperators pins the selectivity guard: an
// operator that never executed (calls=0 — e.g. a pruned union branch
// in an aggregated kind) must not render a selectivity, a NaN, or an
// Inf, and nil estimates must render the legacy format.
func TestExplainAnalyzeZeroCallOperators(t *testing.T) {
	cat := statsRig(t, 10)
	tbl, _ := cat.Get("sensors")
	var p Plan = &FilterPlan{
		Input: NewScanPlan(tbl.Name(), "s", tbl.Schema()),
		Pred:  sql.Bin("=", &sql.ColumnRef{Table: "s", Name: "sid"}, sql.Lit(relation.Int(1))),
	}
	var st ExecStats
	// The scan produced rows on a previous tick, but the filter was
	// never invoked: input > 0 with calls=0 used to print sel=0.0%.
	st.Ops[OpScan] = OpCounters{Calls: 1, RowsOut: 10}
	st.Ops[OpFilter] = OpCounters{Calls: 0, RowsOut: 0}

	out := ExplainAnalyze(p, &st, false)
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("explain output leaks %s:\n%s", bad, out)
		}
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "calls=0") && strings.Contains(line, "sel=") {
			t.Fatalf("zero-call operator renders selectivity:\n%s", out)
		}
	}

	// With estimates attached, the same guard holds and the est-vs-obs
	// column appears.
	est := EstimatePlan(p, NewStatsStore(cat))
	out = ExplainAnalyzeWithEstimates(p, &st, false, est)
	if !strings.Contains(out, "est_rows=") || !strings.Contains(out, "obs_rows=") {
		t.Fatalf("estimates column missing:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Fatalf("explain-with-estimates leaks NaN/Inf:\n%s", out)
	}
}

package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
)

// Property: the optimiser never changes query results. Random small
// schemas, data, and queries (filters, joins, unions, aggregates) are
// executed through Build (optimised) and BuildUnoptimized; the
// multisets of result rows must coincide.
func TestOptimizerPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 120; trial++ {
		cat := randomCatalog(rng)
		query := randomSQL(rng)
		stmt, err := sql.Parse(query)
		if err != nil {
			t.Fatalf("trial %d: generated invalid SQL %q: %v", trial, query, err)
		}
		resolver := CatalogResolver(cat)

		opt, err1 := Build(stmt, resolver)
		naive, err2 := BuildUnoptimized(stmt, resolver)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: build disagreement for %q: %v vs %v", trial, query, err1, err2)
		}
		if err1 != nil {
			continue
		}
		rows1, err1 := opt.Execute(NewExecContext(cat))
		rows2, err2 := naive.Execute(NewExecContext(cat))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: execute disagreement for %q: %v vs %v", trial, query, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !sameMultiset(rows1, rows2) {
			t.Fatalf("trial %d: results differ for %q\noptimized: %v\nnaive:     %v\nplan:\n%s",
				trial, query, rows1, rows2, Explain(opt))
		}
	}
}

func sameMultiset(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(t relation.Tuple) string {
		parts := make([]string, len(t))
		for i, v := range t {
			parts[i] = v.String()
		}
		return strings.Join(parts, "|")
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = key(a[i])
		kb[i] = key(b[i])
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// randomCatalog builds tables r(a,b,c) and s(a,d) with random small-int
// data (small domains force joins and duplicates).
func randomCatalog(rng *rand.Rand) *relation.Catalog {
	cat := relation.NewCatalog()
	r, _ := cat.Create("r", relation.NewSchema(
		relation.Col("a", relation.TInt),
		relation.Col("b", relation.TInt),
		relation.Col("c", relation.TString)))
	for i := 0; i < 4+rng.Intn(12); i++ {
		r.MustInsert(relation.Tuple{
			relation.Int(int64(rng.Intn(4))),
			relation.Int(int64(rng.Intn(6))),
			relation.String_(string(rune('p' + rng.Intn(3)))),
		})
	}
	s, _ := cat.Create("s", relation.NewSchema(
		relation.Col("a", relation.TInt),
		relation.Col("d", relation.TInt)))
	for i := 0; i < 3+rng.Intn(8); i++ {
		s.MustInsert(relation.Tuple{
			relation.Int(int64(rng.Intn(4))),
			relation.Int(int64(rng.Intn(6))),
		})
	}
	return cat
}

// randomSQL emits one of several shapes with random predicates.
func randomSQL(rng *rand.Rand) string {
	pred := func(col string) string {
		ops := []string{"=", "<", ">", "<=", ">=", "<>"}
		return fmt.Sprintf("%s %s %d", col, ops[rng.Intn(len(ops))], rng.Intn(5))
	}
	switch rng.Intn(6) {
	case 0: // filter only
		return "SELECT a, b FROM r WHERE " + pred("a")
	case 1: // implicit join via cross product + where
		return fmt.Sprintf("SELECT r.b, s.d FROM r, s WHERE r.a = s.a AND %s", pred("r.b"))
	case 2: // explicit join with residual
		return "SELECT r.c FROM r JOIN s ON r.a = s.a AND r.b > s.d"
	case 3: // duplicate union branches (distinct semantics)
		b := "SELECT a FROM r WHERE " + pred("b")
		return b + " UNION " + b + " UNION SELECT a FROM s"
	case 4: // aggregate over a join
		return fmt.Sprintf(
			"SELECT r.a, count(*), avg(s.d) FROM r, s WHERE r.a = s.a AND %s GROUP BY r.a",
			pred("s.d"))
	default: // union all keeps multiplicity
		b := "SELECT a FROM r WHERE " + pred("a")
		return b + " UNION ALL " + b
	}
}

package engine

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// TableResolver maps a FROM item to a plan for its contents. The stream
// layer supplies a resolver that materialises window batches; the default
// resolver handles only base tables.
type TableResolver func(tr *sql.TableRef) (Plan, error)

// CatalogResolver resolves base tables against a catalog and rejects
// stream references (which need the DSMS layer).
func CatalogResolver(cat *relation.Catalog) TableResolver {
	return func(tr *sql.TableRef) (Plan, error) {
		if tr.IsStream || tr.Window != nil {
			return nil, fmt.Errorf("engine: stream %q needs a stream-aware resolver", tr.Table)
		}
		t, err := cat.Get(tr.Table)
		if err != nil {
			return nil, err
		}
		return NewScanPlan(t.Name(), tr.Name(), t.Schema()), nil
	}
}

// AliasPlan re-qualifies a child plan's schema under a new alias
// (derived tables).
type AliasPlan struct {
	Input  Plan
	Alias  string
	schema relation.Schema
}

// NewAliasPlan wraps input under alias.
func NewAliasPlan(input Plan, alias string) *AliasPlan {
	return &AliasPlan{Input: input, Alias: alias, schema: input.Schema().Qualify(alias)}
}

// Schema implements Plan.
func (a *AliasPlan) Schema() relation.Schema { return a.schema }

// Children implements Plan.
func (a *AliasPlan) Children() []Plan { return []Plan{a.Input} }

func (a *AliasPlan) String() string { return fmt.Sprintf("Alias(%s)", a.Alias) }

// Execute implements Plan.
func (a *AliasPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	return a.Input.Execute(ctx)
}

// Build compiles a SELECT statement into an executable plan using the
// given resolver, then applies the optimiser.
func Build(stmt *sql.SelectStmt, resolve TableResolver) (Plan, error) {
	p, err := buildUnoptimized(stmt, resolve)
	if err != nil {
		return nil, err
	}
	return Optimize(p), nil
}

// BuildUnoptimized compiles without optimisation; the ablation benchmarks
// compare it against Build.
func BuildUnoptimized(stmt *sql.SelectStmt, resolve TableResolver) (Plan, error) {
	return buildUnoptimized(stmt, resolve)
}

func buildUnoptimized(stmt *sql.SelectStmt, resolve TableResolver) (Plan, error) {
	branches := stmt.Branches()
	plans := make([]Plan, len(branches))
	for i, b := range branches {
		p, err := buildBranch(b, resolve)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	if len(plans) == 1 {
		return plans[0], nil
	}
	return &UnionPlan{Inputs: plans, Distinct: !stmt.UnionAll}, nil
}

func buildBranch(stmt *sql.SelectStmt, resolve TableResolver) (Plan, error) {
	var plan Plan
	for i, tr := range stmt.From {
		p, err := buildTableRef(tr, resolve)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			plan = p
			continue
		}
		plan = NewNestedLoopJoinPlan(plan, p, nil, false)
	}
	if plan == nil {
		// SELECT without FROM evaluates items once against an empty row.
		plan = NewValuesPlan("dual", relation.Schema{}, []relation.Tuple{{}})
	}

	if stmt.Where != nil {
		plan = &FilterPlan{Input: plan, Pred: stmt.Where}
	}

	// Collect aggregates from items, HAVING and ORDER BY.
	var aggs []*sql.FuncExpr
	aggSeen := map[string]bool{}
	collect := func(e sql.Expr) {
		walkExpr(e, func(x sql.Expr) {
			if f, ok := x.(*sql.FuncExpr); ok && IsAggregate(f.Name) {
				if !aggSeen[f.String()] {
					aggSeen[f.String()] = true
					aggs = append(aggs, f)
				}
			}
		})
	}
	for _, it := range stmt.Items {
		if !it.Star {
			collect(it.Expr)
		}
	}
	collect(stmt.Having)
	for _, o := range stmt.OrderBy {
		collect(o.Expr)
	}

	grouped := len(stmt.GroupBy) > 0 || len(aggs) > 0
	if grouped {
		plan = NewAggregatePlan(plan, stmt.GroupBy, aggs)
		if stmt.Having != nil {
			plan = &FilterPlan{Input: plan, Pred: rewriteAggRefs(stmt.Having, stmt.GroupBy)}
		}
	} else if stmt.Having != nil {
		return nil, fmt.Errorf("engine: HAVING without GROUP BY or aggregates")
	}

	// Expand projection items.
	inSchema := plan.Schema()
	var exprs []sql.Expr
	var names []string
	for _, it := range stmt.Items {
		if it.Star {
			for _, c := range inSchema.Columns {
				if it.Table != "" && !strings.HasPrefix(strings.ToLower(c.Name), strings.ToLower(it.Table)+".") {
					continue
				}
				exprs = append(exprs, sql.Col(c.Name))
				names = append(names, c.Name)
			}
			continue
		}
		e := it.Expr
		if grouped {
			e = rewriteAggRefs(e, stmt.GroupBy)
		}
		exprs = append(exprs, e)
		name := it.Alias
		if name == "" {
			name = exprName(it.Expr)
		}
		names = append(names, name)
	}
	if len(exprs) == 0 {
		return nil, fmt.Errorf("engine: empty projection")
	}

	// ORDER BY: prefer sorting on the projected output (aliases resolve
	// there); fall back to sorting the pre-projection input.
	project := NewProjectPlan(plan, exprs, names)
	if len(stmt.OrderBy) > 0 {
		rewritten := make([]sql.OrderItem, len(stmt.OrderBy))
		resolvable := true
		for i, o := range stmt.OrderBy {
			e := o.Expr
			if grouped {
				e = rewriteAggRefs(e, stmt.GroupBy)
			}
			rewritten[i] = sql.OrderItem{Expr: e, Desc: o.Desc}
			if !ResolvesAgainst(e, project.Schema()) {
				resolvable = false
			}
		}
		if resolvable {
			plan = &SortPlan{Input: project, Items: rewritten}
		} else {
			// Sort below the projection when items reference source columns.
			allBelow := true
			for _, o := range rewritten {
				if !ResolvesAgainst(o.Expr, inSchema) {
					allBelow = false
				}
			}
			if !allBelow {
				return nil, fmt.Errorf("engine: ORDER BY expression not resolvable")
			}
			sorted := &SortPlan{Input: plan, Items: rewritten}
			plan = NewProjectPlan(sorted, exprs, names)
		}
	} else {
		plan = project
	}

	if stmt.Distinct {
		plan = &DistinctPlan{Input: plan}
	}
	if stmt.Limit >= 0 {
		plan = &LimitPlan{Input: plan, N: stmt.Limit}
	}
	return plan, nil
}

// ResolvesAgainst reports whether every column reference in e can be
// resolved in the schema (treating aggregate calls as resolved columns).
func ResolvesAgainst(e sql.Expr, schema relation.Schema) bool {
	ok := true
	walkExpr(e, func(x sql.Expr) {
		switch c := x.(type) {
		case *sql.ColumnRef:
			if !schema.Has(c.FullName()) {
				ok = false
			}
		case *sql.FuncExpr:
			if IsAggregate(c.Name) && !schema.Has(c.String()) {
				ok = false
			}
		}
	})
	return ok
}

// rewriteAggRefs replaces aggregate calls and group expressions with
// column references into the aggregate plan's output schema.
func rewriteAggRefs(e sql.Expr, groupExprs []sql.Expr) sql.Expr {
	if e == nil {
		return nil
	}
	for _, g := range groupExprs {
		if e.String() == g.String() {
			return sql.Col(exprName(g))
		}
	}
	switch x := e.(type) {
	case *sql.FuncExpr:
		if IsAggregate(x.Name) {
			return &sql.ColumnRef{Name: x.String()}
		}
		args := make([]sql.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewriteAggRefs(a, groupExprs)
		}
		return &sql.FuncExpr{Name: x.Name, Args: args, Star: x.Star, Distinct: x.Distinct}
	case *sql.BinaryExpr:
		return sql.Bin(x.Op, rewriteAggRefs(x.Left, groupExprs), rewriteAggRefs(x.Right, groupExprs))
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: rewriteAggRefs(x.Expr, groupExprs)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: rewriteAggRefs(x.Expr, groupExprs), Negate: x.Negate}
	case *sql.CaseExpr:
		out := &sql.CaseExpr{Else: rewriteAggRefs(x.Else, groupExprs)}
		for _, w := range x.Whens {
			out.Whens = append(out.Whens, sql.CaseWhen{
				Cond: rewriteAggRefs(w.Cond, groupExprs),
				Then: rewriteAggRefs(w.Then, groupExprs),
			})
		}
		return out
	case *sql.InExpr:
		out := &sql.InExpr{Expr: rewriteAggRefs(x.Expr, groupExprs), Negate: x.Negate}
		for _, i := range x.List {
			out.List = append(out.List, rewriteAggRefs(i, groupExprs))
		}
		return out
	default:
		return e
	}
}

func buildTableRef(tr *sql.TableRef, resolve TableResolver) (Plan, error) {
	var plan Plan
	var err error
	if tr.Subquery != nil {
		plan, err = buildUnoptimized(tr.Subquery, resolve)
		if err != nil {
			return nil, err
		}
		plan = NewAliasPlan(plan, tr.Alias)
	} else {
		plan, err = resolve(tr)
		if err != nil {
			return nil, err
		}
	}
	for _, j := range tr.Joins {
		right, err := buildTableRef(&sql.TableRef{
			Table: j.Right.Table, IsStream: j.Right.IsStream, Window: j.Right.Window,
			Subquery: j.Right.Subquery, Alias: j.Right.Alias,
		}, resolve)
		if err != nil {
			return nil, err
		}
		plan = buildJoin(plan, right, j)
	}
	return plan, nil
}

// buildJoin picks a hash join when the ON condition contains usable
// equi-join keys, otherwise a nested-loop join.
func buildJoin(left, right Plan, j sql.Join) Plan {
	outer := j.Kind == sql.JoinLeft
	if j.On == nil {
		return NewNestedLoopJoinPlan(left, right, nil, outer)
	}
	leftKeys, rightKeys, residual := ExtractEquiKeys(j.On, left.Schema(), right.Schema())
	if len(leftKeys) > 0 {
		return NewHashJoinPlan(left, right, leftKeys, rightKeys, residual, outer)
	}
	return NewNestedLoopJoinPlan(left, right, j.On, outer)
}

// ExtractEquiKeys splits a join predicate into equi-key pairs (left-side
// expression, right-side expression) plus a residual predicate for the
// remaining conjuncts. It returns no keys when the condition has no
// usable equality.
func ExtractEquiKeys(on sql.Expr, leftSchema, rightSchema relation.Schema) (leftKeys, rightKeys []sql.Expr, residual sql.Expr) {
	conjuncts := SplitConjuncts(on)
	var rest []sql.Expr
	for _, c := range conjuncts {
		be, ok := c.(*sql.BinaryExpr)
		if !ok || be.Op != "=" {
			rest = append(rest, c)
			continue
		}
		switch {
		case ResolvesAgainst(be.Left, leftSchema) && ResolvesAgainst(be.Right, rightSchema):
			leftKeys = append(leftKeys, be.Left)
			rightKeys = append(rightKeys, be.Right)
		case ResolvesAgainst(be.Right, leftSchema) && ResolvesAgainst(be.Left, rightSchema):
			leftKeys = append(leftKeys, be.Right)
			rightKeys = append(rightKeys, be.Left)
		default:
			rest = append(rest, c)
		}
	}
	return leftKeys, rightKeys, sql.AndAll(rest...)
}

// SplitConjuncts flattens an AND tree into its conjuncts.
func SplitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(*sql.BinaryExpr); ok && be.Op == "AND" {
		return append(SplitConjuncts(be.Left), SplitConjuncts(be.Right)...)
	}
	return []sql.Expr{e}
}

// Run parses, builds, and executes a SQL(+) query against a catalog,
// returning the result schema and rows. It is the one-call API used by
// tests and examples.
func Run(ctx *ExecContext, query string, resolve TableResolver) (relation.Schema, []relation.Tuple, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return relation.Schema{}, nil, err
	}
	if resolve == nil {
		resolve = CatalogResolver(ctx.Catalog)
	}
	plan, err := Build(stmt, resolve)
	if err != nil {
		return relation.Schema{}, nil, err
	}
	rows, err := plan.Execute(ctx)
	if err != nil {
		return relation.Schema{}, nil, err
	}
	return plan.Schema(), rows, nil
}

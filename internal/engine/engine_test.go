package engine

import (
	"math"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
)

// fixture builds a catalog with sensors/measurements/turbines tables.
func fixture(t *testing.T) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()

	sensors, err := cat.Create("sensors", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("tid", relation.TInt),
		relation.Col("kind", relation.TString),
	))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []relation.Tuple{
		{relation.Int(1), relation.Int(10), relation.String_("temp")},
		{relation.Int(2), relation.Int(10), relation.String_("pressure")},
		{relation.Int(3), relation.Int(20), relation.String_("temp")},
		{relation.Int(4), relation.Int(30), relation.String_("vibration")},
	} {
		sensors.MustInsert(r)
	}

	msmt, err := cat.Create("msmt", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("ts", relation.TTime),
		relation.Col("val", relation.TFloat),
	))
	if err != nil {
		t.Fatal(err)
	}
	vals := []struct {
		sid int64
		ts  int64
		v   float64
	}{
		{1, 1000, 70}, {1, 2000, 72}, {1, 3000, 75},
		{2, 1000, 5.1}, {2, 2000, 5.0},
		{3, 1000, 60}, {3, 2000, 58},
	}
	for _, r := range vals {
		msmt.MustInsert(relation.Tuple{relation.Int(r.sid), relation.Time(r.ts), relation.Float(r.v)})
	}

	turbines, err := cat.Create("turbines", relation.NewSchema(
		relation.Col("tid", relation.TInt),
		relation.Col("model", relation.TString),
	))
	if err != nil {
		t.Fatal(err)
	}
	turbines.MustInsert(relation.Tuple{relation.Int(10), relation.String_("SGT-400")})
	turbines.MustInsert(relation.Tuple{relation.Int(20), relation.String_("SGT-800")})
	return cat
}

func runQuery(t *testing.T, cat *relation.Catalog, q string) (relation.Schema, []relation.Tuple) {
	t.Helper()
	ctx := NewExecContext(cat)
	schema, rows, err := Run(ctx, q, nil)
	if err != nil {
		t.Fatalf("Run(%q): %v", q, err)
	}
	return schema, rows
}

func TestSelectProjectFilter(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat, "SELECT sid, val FROM msmt WHERE val > 60")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if f, _ := r[1].AsFloat(); f <= 60 {
			t.Errorf("filter leaked %v", r)
		}
	}
}

func TestSelectStar(t *testing.T) {
	cat := fixture(t)
	schema, rows := runQuery(t, cat, "SELECT * FROM sensors")
	if schema.Arity() != 3 || len(rows) != 4 {
		t.Fatalf("schema=%v rows=%d", schema, len(rows))
	}
	if !strings.Contains(schema.Columns[0].Name, "sid") {
		t.Errorf("schema names = %v", schema.Names())
	}
}

func TestQualifiedStarAndAlias(t *testing.T) {
	cat := fixture(t)
	schema, rows := runQuery(t, cat,
		"SELECT s.* FROM sensors AS s JOIN turbines AS t ON s.tid = t.tid")
	if schema.Arity() != 3 {
		t.Fatalf("schema = %v", schema.Names())
	}
	if len(rows) != 3 { // sensors 1,2,3 have matching turbines
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestJoinHashVsNested(t *testing.T) {
	cat := fixture(t)
	// Equi-join should produce a hash join plan.
	stmt := sql.MustParse("SELECT s.sid, t.model FROM sensors s JOIN turbines t ON s.tid = t.tid")
	plan, err := Build(stmt, CatalogResolver(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(plan), "HashJoin") {
		t.Errorf("expected hash join:\n%s", Explain(plan))
	}
	ctx := NewExecContext(cat)
	rows, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Non-equi condition falls back to nested loop.
	stmt2 := sql.MustParse("SELECT s.sid FROM sensors s JOIN turbines t ON s.tid > t.tid")
	plan2, err := Build(stmt2, CatalogResolver(cat))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(Explain(plan2), "NestedLoopJoin") {
		t.Errorf("expected nested loop:\n%s", Explain(plan2))
	}
}

func TestLeftJoinProducesNulls(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT s.sid, t.model FROM sensors s LEFT JOIN turbines t ON s.tid = t.tid ORDER BY s.sid")
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// sensor 4 (tid 30) has no turbine.
	last := rows[3]
	if last[0] != relation.Int(4) || !last[1].IsNull() {
		t.Errorf("left join null row = %v", last)
	}
}

func TestImplicitCrossJoinWithWhereBecomesHashJoin(t *testing.T) {
	cat := fixture(t)
	stmt := sql.MustParse("SELECT s.sid, t.model FROM sensors s, turbines t WHERE s.tid = t.tid AND s.kind = 'temp'")
	plan, err := Build(stmt, CatalogResolver(cat))
	if err != nil {
		t.Fatal(err)
	}
	ex := Explain(plan)
	if !strings.Contains(ex, "HashJoin") {
		t.Errorf("cross join not converted:\n%s", ex)
	}
	ctx := NewExecContext(cat)
	rows, err := plan.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// The kind predicate must be pushed below the join.
	if !strings.Contains(ex, "Filter((s.kind = 'temp'))") && !strings.Contains(ex, "Filter((s.kind = 'temp')") {
		t.Logf("explain:\n%s", ex)
	}
}

func TestAggregates(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT sid, count(*) AS n, avg(val) AS a, min(val) AS lo, max(val) AS hi FROM msmt GROUP BY sid ORDER BY sid")
	if len(rows) != 3 {
		t.Fatalf("rows = %v", rows)
	}
	r0 := rows[0]
	if r0[0] != relation.Int(1) || r0[1] != relation.Int(3) {
		t.Errorf("group 1 = %v", r0)
	}
	if a, _ := r0[2].AsFloat(); math.Abs(a-72.333333) > 1e-4 {
		t.Errorf("avg = %v", r0[2])
	}
	if lo, _ := r0[3].AsFloat(); lo != 70 {
		t.Errorf("min = %v", r0[3])
	}
	if hi, _ := r0[4].AsFloat(); hi != 75 {
		t.Errorf("max = %v", r0[4])
	}
}

func TestGlobalAggregateOnEmptyInput(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat, "SELECT count(*) FROM msmt WHERE val > 1000")
	if len(rows) != 1 || rows[0][0] != relation.Int(0) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestHaving(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT sid, count(*) FROM msmt GROUP BY sid HAVING count(*) >= 3")
	if len(rows) != 1 || rows[0][0] != relation.Int(1) {
		t.Fatalf("rows = %v", rows)
	}
}

func TestStddevAndCorr(t *testing.T) {
	cat := relation.NewCatalog()
	tb, _ := cat.Create("xy", relation.NewSchema(
		relation.Col("x", relation.TFloat), relation.Col("y", relation.TFloat)))
	for i := 0; i < 10; i++ {
		x := float64(i)
		tb.MustInsert(relation.Tuple{relation.Float(x), relation.Float(2*x + 1)})
	}
	_, rows := runQuery(t, cat, "SELECT stddev(x), corr(x, y) FROM xy")
	sd, _ := rows[0][0].AsFloat()
	if math.Abs(sd-3.0276) > 1e-3 {
		t.Errorf("stddev = %v", rows[0][0])
	}
	r, _ := rows[0][1].AsFloat()
	if math.Abs(r-1.0) > 1e-9 {
		t.Errorf("corr = %v (want 1.0 for perfectly linear data)", rows[0][1])
	}
}

func TestDistinctAndLimit(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat, "SELECT DISTINCT kind FROM sensors")
	if len(rows) != 3 {
		t.Fatalf("distinct rows = %v", rows)
	}
	_, rows = runQuery(t, cat, "SELECT sid FROM msmt LIMIT 2")
	if len(rows) != 2 {
		t.Fatalf("limit rows = %v", rows)
	}
}

func TestOrderByDesc(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat, "SELECT val FROM msmt ORDER BY val DESC LIMIT 3")
	want := []float64{75, 72, 70}
	for i, w := range want {
		if f, _ := rows[i][0].AsFloat(); f != w {
			t.Fatalf("order = %v", rows)
		}
	}
}

func TestOrderByAliasAndAggregate(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT sid, avg(val) AS m FROM msmt GROUP BY sid ORDER BY m DESC")
	if rows[0][0] != relation.Int(1) {
		t.Fatalf("order by alias = %v", rows)
	}
	// Order by underlying column not in projection.
	_, rows = runQuery(t, cat, "SELECT val FROM msmt ORDER BY ts DESC, sid")
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
}

func TestUnionAllAndDistinct(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT kind FROM sensors UNION ALL SELECT kind FROM sensors")
	if len(rows) != 8 {
		t.Fatalf("union all rows = %d", len(rows))
	}
	_, rows = runQuery(t, cat,
		"SELECT kind FROM sensors UNION SELECT kind FROM sensors")
	if len(rows) != 3 {
		t.Fatalf("union distinct rows = %d", len(rows))
	}
}

func TestDuplicateUnionBranchElimination(t *testing.T) {
	cat := fixture(t)
	stmt := sql.MustParse("SELECT kind FROM sensors UNION SELECT kind FROM sensors UNION SELECT kind FROM sensors")
	unopt, err := BuildUnoptimized(stmt, CatalogResolver(cat))
	if err != nil {
		t.Fatal(err)
	}
	opt := Optimize(unopt)
	if CountOperators(opt) >= CountOperators(unopt)+1 {
		t.Errorf("optimizer did not shrink duplicate unions: %d vs %d",
			CountOperators(opt), CountOperators(unopt))
	}
	if strings.Contains(Explain(opt), "Union(") && strings.Count(Explain(opt), "Scan(") > 1 {
		t.Errorf("duplicate branches remain:\n%s", Explain(opt))
	}
}

func TestSubqueryExecution(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT m FROM (SELECT sid, avg(val) AS m FROM msmt GROUP BY sid) AS g WHERE g.m > 60")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	cat := relation.NewCatalog()
	_, rows := runQuery(t, cat, "SELECT 1 + 2 AS three, 'x' || 'y'")
	if rows[0][0] != relation.Int(3) || rows[0][1] != relation.String_("xy") {
		t.Fatalf("rows = %v", rows)
	}
}

func TestScalarFunctions(t *testing.T) {
	cat := relation.NewCatalog()
	_, rows := runQuery(t, cat,
		"SELECT abs(-4), coalesce(NULL, 7), upper('abc'), length('abcd'), round(2.6)")
	want := relation.Tuple{relation.Int(4), relation.Int(7), relation.String_("ABC"), relation.Int(4), relation.Float(3)}
	for i, w := range want {
		if rows[0][i] != w {
			t.Errorf("func %d = %v, want %v", i, rows[0][i], w)
		}
	}
}

func TestCustomUDF(t *testing.T) {
	cat := fixture(t)
	ctx := NewExecContext(cat)
	ctx.Funcs.Register("c2f", func(args []relation.Value) (relation.Value, error) {
		f, _ := args[0].AsFloat()
		return relation.Float(f*9/5 + 32), nil
	})
	_, rows, err := Run(ctx, "SELECT c2f(val) FROM msmt WHERE sid = 1 ORDER BY ts LIMIT 1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if f, _ := rows[0][0].AsFloat(); f != 158 {
		t.Fatalf("c2f(70) = %v", rows[0][0])
	}
}

func TestErrorPaths(t *testing.T) {
	cat := fixture(t)
	ctx := NewExecContext(cat)
	for _, q := range []string{
		"SELECT nope FROM sensors",
		"SELECT * FROM missing_table",
		"SELECT unknown_fn(1) FROM sensors",
		"SELECT sid FROM msmt HAVING sid > 1",
		"SELECT kind FROM sensors UNION SELECT sid, kind FROM sensors",
		"SELECT * FROM STREAM s [RANGE 10 SLIDE 10]", // no stream resolver
	} {
		if _, _, err := Run(ctx, q, nil); err == nil {
			t.Errorf("Run(%q) succeeded, want error", q)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	cat := relation.NewCatalog()
	tb, _ := cat.Create("t", relation.NewSchema(relation.Col("a", relation.TInt)))
	tb.MustInsert(relation.Tuple{relation.Null})
	tb.MustInsert(relation.Tuple{relation.Int(1)})
	// NULL comparisons are not truthy: only a=1 row passes.
	_, rows := runQuery(t, cat, "SELECT a FROM t WHERE a = 1")
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	// IS NULL finds the null.
	_, rows = runQuery(t, cat, "SELECT a FROM t WHERE a IS NULL")
	if len(rows) != 1 || !rows[0][0].IsNull() {
		t.Fatalf("rows = %v", rows)
	}
	// NULL doesn't join.
	tb2, _ := cat.Create("u", relation.NewSchema(relation.Col("a", relation.TInt)))
	tb2.MustInsert(relation.Tuple{relation.Null})
	tb2.MustInsert(relation.Tuple{relation.Int(1)})
	_, rows = runQuery(t, cat, "SELECT t.a FROM t JOIN u ON t.a = u.a")
	if len(rows) != 1 {
		t.Fatalf("null join rows = %v", rows)
	}
}

func TestCaseAndInExecution(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT sid, CASE WHEN kind = 'temp' THEN 'T' ELSE 'O' END AS c FROM sensors WHERE sid IN (1, 4) ORDER BY sid")
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][1] != relation.String_("T") || rows[1][1] != relation.String_("O") {
		t.Fatalf("case results = %v", rows)
	}
}

func TestExplainShape(t *testing.T) {
	cat := fixture(t)
	stmt := sql.MustParse("SELECT sid FROM msmt WHERE val > 0 ORDER BY sid LIMIT 5")
	plan, err := Build(stmt, CatalogResolver(cat))
	if err != nil {
		t.Fatal(err)
	}
	ex := Explain(plan)
	for _, op := range []string{"Limit", "Sort", "Project", "Filter", "Scan"} {
		if !strings.Contains(ex, op) {
			t.Errorf("Explain missing %s:\n%s", op, ex)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	cat := fixture(t)
	ctx := NewExecContext(cat)
	if _, _, err := Run(ctx, "SELECT s.sid FROM sensors s JOIN turbines t ON s.tid = t.tid", nil); err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.RowsScanned == 0 || ctx.Stats.HashProbes == 0 || ctx.Stats.OperatorCount == 0 {
		t.Errorf("stats not accumulated: %+v", ctx.Stats)
	}
}

func TestFirstLastAggregates(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat,
		"SELECT first(val), last(val) FROM msmt WHERE sid = 1")
	if f, _ := rows[0][0].AsFloat(); f != 70 {
		t.Errorf("first = %v", rows[0][0])
	}
	if l, _ := rows[0][1].AsFloat(); l != 75 {
		t.Errorf("last = %v", rows[0][1])
	}
}

func TestCountDistinct(t *testing.T) {
	cat := fixture(t)
	_, rows := runQuery(t, cat, "SELECT count(DISTINCT kind) FROM sensors")
	if rows[0][0] != relation.Int(3) {
		t.Fatalf("count distinct = %v", rows[0][0])
	}
}

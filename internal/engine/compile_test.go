package engine

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
)

// exprGen generates random expressions over a random schema, biased to
// exercise NULL propagation, type errors, unknown columns/functions and
// constant subtrees (the folding path).
type exprGen struct {
	rng    *rand.Rand
	schema relation.Schema
}

func (g *exprGen) value() relation.Value {
	switch g.rng.Intn(6) {
	case 0:
		return relation.Null
	case 1:
		return relation.Int(int64(g.rng.Intn(7) - 3))
	case 2:
		return relation.Float(float64(g.rng.Intn(9))/2 - 1)
	case 3:
		return relation.String_([]string{"a", "bb", "turbine", ""}[g.rng.Intn(4)])
	case 4:
		return relation.Bool_(g.rng.Intn(2) == 0)
	default:
		return relation.Int(int64(g.rng.Intn(100)))
	}
}

func (g *exprGen) column() sql.Expr {
	// 1 in 8 references a column that does not exist (error path).
	if g.rng.Intn(8) == 0 {
		return sql.Col("no_such_col")
	}
	return sql.Col(g.schema.Columns[g.rng.Intn(len(g.schema.Columns))].Name)
}

func (g *exprGen) expr(depth int) sql.Expr {
	if depth <= 0 {
		if g.rng.Intn(2) == 0 {
			return sql.Lit(g.value())
		}
		return g.column()
	}
	switch g.rng.Intn(12) {
	case 0, 1:
		ops := []string{"+", "-", "*", "/", "%", "||"}
		return sql.Bin(ops[g.rng.Intn(len(ops))], g.expr(depth-1), g.expr(depth-1))
	case 2, 3:
		ops := []string{"=", "<>", "<", "<=", ">", ">="}
		return sql.Bin(ops[g.rng.Intn(len(ops))], g.expr(depth-1), g.expr(depth-1))
	case 4, 5:
		ops := []string{"AND", "OR"}
		return sql.Bin(ops[g.rng.Intn(2)], g.expr(depth-1), g.expr(depth-1))
	case 6:
		return &sql.UnaryExpr{Op: "NOT", Expr: g.expr(depth - 1)}
	case 7:
		return &sql.UnaryExpr{Op: "-", Expr: g.expr(depth - 1)}
	case 8:
		return &sql.IsNullExpr{Expr: g.expr(depth - 1), Negate: g.rng.Intn(2) == 0}
	case 9:
		n := 1 + g.rng.Intn(3)
		list := make([]sql.Expr, n)
		for i := range list {
			list[i] = g.expr(depth - 1)
		}
		return &sql.InExpr{Expr: g.expr(depth - 1), List: list, Negate: g.rng.Intn(2) == 0}
	case 10:
		n := 1 + g.rng.Intn(2)
		whens := make([]sql.CaseWhen, n)
		for i := range whens {
			whens[i] = sql.CaseWhen{Cond: g.expr(depth - 1), Then: g.expr(depth - 1)}
		}
		var els sql.Expr
		if g.rng.Intn(2) == 0 {
			els = g.expr(depth - 1)
		}
		return &sql.CaseExpr{Whens: whens, Else: els}
	default:
		switch g.rng.Intn(5) {
		case 0: // unknown function (error path)
			return &sql.FuncExpr{Name: "no_such_fn", Args: []sql.Expr{g.expr(depth - 1)}}
		case 1: // aggregate outside GROUP BY (error path)
			return &sql.FuncExpr{Name: "sum", Args: []sql.Expr{g.expr(depth - 1)}}
		default:
			names := []string{"abs", "coalesce", "upper", "length", "round", "concat"}
			name := names[g.rng.Intn(len(names))]
			n := 1
			if name == "coalesce" || name == "concat" {
				n = 1 + g.rng.Intn(3)
			}
			args := make([]sql.Expr, n)
			for i := range args {
				args[i] = g.expr(depth - 1)
			}
			return &sql.FuncExpr{Name: name, Args: args}
		}
	}
}

func (g *exprGen) row() relation.Tuple {
	t := make(relation.Tuple, len(g.schema.Columns))
	for i := range t {
		t[i] = g.value()
	}
	return t
}

func sameValue(a, b relation.Value) bool {
	if a.Type == relation.TFloat && b.Type == relation.TFloat &&
		math.IsNaN(a.Float) && math.IsNaN(b.Float) {
		return true
	}
	return a == b
}

// TestCompileMatchesEval is the differential test: for ~200 seeded
// random expressions over random schemas, the compiled closure must
// agree with the reference interpreter on every row — same value, or
// same error text, covering NULL and type-error paths.
func TestCompileMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	funcs := NewFuncRegistry()
	for round := 0; round < 200; round++ {
		cols := make([]relation.Column, 2+rng.Intn(4))
		for i := range cols {
			cols[i] = relation.Column{Name: fmt.Sprintf("c%d", i), Type: relation.TNull}
		}
		g := &exprGen{rng: rng, schema: relation.Schema{Columns: cols}}
		e := g.expr(1 + rng.Intn(3))
		compiled, err := Compile(e, g.schema, funcs)
		if err != nil {
			t.Fatalf("round %d: Compile(%s): %v", round, e, err)
		}
		for r := 0; r < 5; r++ {
			row := g.row()
			want, wantErr := Eval(e, g.schema, row, funcs)
			got, gotErr := compiled(row)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("round %d: %s over %v: Eval err %v, Compile err %v",
					round, e, row, wantErr, gotErr)
			}
			if wantErr != nil {
				if wantErr.Error() != gotErr.Error() {
					t.Fatalf("round %d: %s over %v: Eval err %q, Compile err %q",
						round, e, row, wantErr, gotErr)
				}
				continue
			}
			if !sameValue(want, got) {
				t.Fatalf("round %d: %s over %v: Eval %v, Compile %v",
					round, e, row, want, got)
			}
		}
	}
}

// TestCompileConstantFolding checks that all-literal subtrees fold to a
// single baked value (and that baked errors stay per-row errors).
func TestCompileConstantFolding(t *testing.T) {
	schema := relation.Schema{Columns: []relation.Column{{Name: "x", Type: relation.TInt}}}
	funcs := NewFuncRegistry()

	c, _, err := func() (CompiledExpr, bool, error) {
		e := sql.Bin("+", sql.Lit(relation.Int(2)), sql.Lit(relation.Int(3)))
		c, err := Compile(e, schema, funcs)
		v, verr := c(nil) // constant: must not touch the row
		if verr != nil || v != relation.Int(5) {
			return nil, false, fmt.Errorf("2+3 folded to %v, %v", v, verr)
		}
		return c, true, err
	}()
	if err != nil {
		t.Fatal(err)
	}
	_ = c

	// false AND <error> short-circuits at compile time, like Eval does
	// per row.
	e := sql.Bin("AND", sql.Lit(relation.Bool_(false)), sql.Col("no_such_col"))
	cc, err := Compile(e, schema, funcs)
	if err != nil {
		t.Fatal(err)
	}
	v, verr := cc(nil)
	if verr != nil || v != relation.Bool_(false) {
		t.Fatalf("false AND err = %v, %v; want false, nil", v, verr)
	}

	// An unresolvable column alone errors on every row, not at compile.
	bad, err := Compile(sql.Col("no_such_col"), schema, funcs)
	if err != nil {
		t.Fatalf("Compile of bad column must not fail eagerly: %v", err)
	}
	if _, verr := bad(relation.Tuple{relation.Int(1)}); verr == nil {
		t.Fatal("expected per-row error for unknown column")
	}
}

func BenchmarkCompiledVsInterpreted(b *testing.B) {
	schema := relation.Schema{Columns: []relation.Column{
		{Name: "s.turbine", Type: relation.TString},
		{Name: "s.temperature", Type: relation.TFloat},
		{Name: "s.rpm", Type: relation.TFloat},
	}}
	// (temperature * 1.8 + 32 > 190) AND (rpm >= 1000 OR turbine = 'T01')
	e := sql.Bin("AND",
		sql.Bin(">",
			sql.Bin("+", sql.Bin("*", sql.Col("s.temperature"), sql.Lit(relation.Float(1.8))), sql.Lit(relation.Float(32))),
			sql.Lit(relation.Float(190))),
		sql.Bin("OR",
			sql.Bin(">=", sql.Col("s.rpm"), sql.Lit(relation.Float(1000))),
			sql.Bin("=", sql.Col("s.turbine"), sql.Lit(relation.String_("T01")))))
	funcs := NewFuncRegistry()
	rows := make([]relation.Tuple, 64)
	for i := range rows {
		rows[i] = relation.Tuple{
			relation.String_(fmt.Sprintf("T%02d", i%8)),
			relation.Float(80 + float64(i)),
			relation.Float(900 + 10*float64(i)),
		}
	}

	b.Run("interpreted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			row := rows[i%len(rows)]
			if _, err := Eval(e, schema, row, funcs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("compiled", func(b *testing.B) {
		c, err := Compile(e, schema, funcs)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			row := rows[i%len(rows)]
			if _, err := c(row); err != nil {
				b.Fatal(err)
			}
		}
	})
}

package engine

import (
	"fmt"
	"time"

	"repro/internal/relation"
	"repro/internal/sql"
)

// This file is the batch-at-a-time execution path: operators that have a
// columnar kernel implement vecPlan and exchange vecFrames (column
// vectors plus a selection bitmap) instead of materialised tuple slices,
// so a window is processed with a handful of vector loops rather than a
// closure call per tuple. The tuple-at-a-time Execute path is kept
// intact as the differential oracle and as the fallback for operators
// without a kernel; execChild stitches the two together at any point in
// a plan tree.
//
// Semantics contract: for every (sub-expression, row) pair, the columnar
// evaluator computes exactly what the row path computes, and it
// evaluates the same pair set — AND/OR narrow the evaluation selection
// the way short-circuiting narrows the row set. Error *presence* is
// therefore identical; when several nodes can fail, the row path stops
// at the first failing row of the whole expression while the columnar
// path stops at the first failing row of one node, so which error is
// reported may differ.
//
// Concurrency contract: kernels follow the plan execution contract —
// executions of one compiled plan are serialized by the owner (the
// stream engine's per-query execMu), exactly like Bind and the lazy
// compiled-flag writes on the row path. Kernels exploit this by keeping
// per-node scratch buffers (vecBufs, FilterPlan.keep, the window
// source's frame) that are overwritten on the next execution; their
// outputs are always consumed — materialized or reduced — before the
// execution returns. The *input* vectors of a shared window batch are
// read-only and safely shared across concurrently executing queries.

// vecFrame is a columnar intermediate result: column vectors of logical
// length n plus an optional selection bitmap (nil = every row selected).
// Values at unselected positions are unspecified.
type vecFrame struct {
	cols []*relation.Vector
	n    int
	sel  *relation.Bitmap
}

// vecBufs is scratch owned by one kernel closure and reused across
// executions under the concurrency contract above: each execution
// overwrites the previous one's buffers and result header. Handed-out
// slices have unspecified contents — nothing is cleared, so callers
// must write every position they later read.
type vecBufs struct {
	out   relation.Vector
	bools []bool
	sts   []uint8
}

func (b *vecBufs) boolSlice(n int) []bool {
	if cap(b.bools) < n {
		b.bools = make([]bool, n)
	}
	b.bools = b.bools[:n]
	return b.bools
}

func (b *vecBufs) stSlice(n int) []uint8 {
	if cap(b.sts) < n {
		b.sts = make([]uint8, n)
	}
	b.sts = b.sts[:n]
	return b.sts
}

// boolVec wraps the kernel's result, reusing the header allocation.
func (b *vecBufs) boolVec(vals []bool, nulls *relation.Bitmap) *relation.Vector {
	return b.out.ResetBool(vals, nulls)
}

func selCount(n int, sel *relation.Bitmap) int {
	if sel == nil {
		return n
	}
	return sel.Count()
}

func (f *vecFrame) count() int { return selCount(f.n, f.sel) }

// eachSel visits selected row indexes in ascending order; fn returns
// false to stop early (error propagation).
func eachSel(n int, sel *relation.Bitmap, fn func(i int) bool) {
	if sel == nil {
		for i := 0; i < n; i++ {
			if !fn(i) {
				return
			}
		}
		return
	}
	for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
		if !fn(i) {
			return
		}
	}
}

// materialize converts the frame back to tuples — the boundary to row
// operators and result sinks. All tuples share one flat backing array
// (two allocations per frame instead of one per row), and each column
// is written with its type dispatch hoisted out of the row loop.
func (f *vecFrame) materialize() []relation.Tuple {
	cnt := f.count()
	if cnt == 0 {
		return nil
	}
	ncols := len(f.cols)
	backing := make([]relation.Value, cnt*ncols)
	out := make([]relation.Tuple, cnt)
	for k := range out {
		out[k] = relation.Tuple(backing[k*ncols : (k+1)*ncols : (k+1)*ncols])
	}
	var idxs []int
	if f.sel != nil {
		idxs = make([]int, 0, cnt)
		for i := f.sel.Next(0); i >= 0; i = f.sel.Next(i + 1) {
			idxs = append(idxs, i)
		}
	}
	for j, c := range f.cols {
		fillColumn(backing, j, ncols, c, f.n, idxs)
	}
	return out
}

// fillColumn writes column j of the materialised frame: slot k of the
// backing gets the k-th selected element of v. idxs lists the selected
// row indexes (nil = all n rows).
func fillColumn(backing []relation.Value, j, stride int, v *relation.Vector, n int, idxs []int) {
	var nb *relation.Bitmap
	if v.HasNulls() {
		nb = v.Nulls()
	}
	et := v.ElemType()
	if et == relation.TNull { // generic or all-NULL layout
		if idxs == nil {
			for i := 0; i < n; i++ {
				backing[i*stride+j] = v.Value(i)
			}
		} else {
			for k, i := range idxs {
				backing[k*stride+j] = v.Value(i)
			}
		}
		return
	}
	switch et {
	case relation.TInt, relation.TTime:
		ints := v.Ints()
		if idxs == nil {
			for i := 0; i < n; i++ {
				if nb != nil && nb.Get(i) {
					backing[i*stride+j] = relation.Null
				} else {
					backing[i*stride+j] = relation.Value{Type: et, Int: ints[i]}
				}
			}
		} else {
			for k, i := range idxs {
				if nb != nil && nb.Get(i) {
					backing[k*stride+j] = relation.Null
				} else {
					backing[k*stride+j] = relation.Value{Type: et, Int: ints[i]}
				}
			}
		}
	case relation.TFloat:
		fs := v.Floats()
		if idxs == nil {
			for i := 0; i < n; i++ {
				if nb != nil && nb.Get(i) {
					backing[i*stride+j] = relation.Null
				} else {
					backing[i*stride+j] = relation.Value{Type: relation.TFloat, Float: fs[i]}
				}
			}
		} else {
			for k, i := range idxs {
				if nb != nil && nb.Get(i) {
					backing[k*stride+j] = relation.Null
				} else {
					backing[k*stride+j] = relation.Value{Type: relation.TFloat, Float: fs[i]}
				}
			}
		}
	case relation.TString:
		ss := v.Strs()
		if idxs == nil {
			for i := 0; i < n; i++ {
				if nb != nil && nb.Get(i) {
					backing[i*stride+j] = relation.Null
				} else {
					backing[i*stride+j] = relation.Value{Type: relation.TString, Str: ss[i]}
				}
			}
		} else {
			for k, i := range idxs {
				if nb != nil && nb.Get(i) {
					backing[k*stride+j] = relation.Null
				} else {
					backing[k*stride+j] = relation.Value{Type: relation.TString, Str: ss[i]}
				}
			}
		}
	case relation.TBool:
		bs := v.Bools()
		if idxs == nil {
			for i := 0; i < n; i++ {
				if nb != nil && nb.Get(i) {
					backing[i*stride+j] = relation.Null
				} else {
					backing[i*stride+j] = relation.Value{Type: relation.TBool, Bool: bs[i]}
				}
			}
		} else {
			for k, i := range idxs {
				if nb != nil && nb.Get(i) {
					backing[k*stride+j] = relation.Null
				} else {
					backing[k*stride+j] = relation.Value{Type: relation.TBool, Bool: bs[i]}
				}
			}
		}
	}
}

// vecPlan is implemented by operators with a columnar kernel.
type vecPlan interface {
	executeVec(ctx *ExecContext) (*vecFrame, error)
}

// canVectorize reports whether the whole subtree rooted at p has
// columnar kernels. Operators outside the set run on the row path with
// any vectorizable subtree below them materialised at the boundary.
func canVectorize(p Plan) bool {
	switch x := p.(type) {
	case *WindowSourcePlan, *ValuesPlan:
		return true
	case *FilterPlan:
		return canVectorize(x.Input)
	case *ProjectPlan:
		return canVectorize(x.Input)
	case *LimitPlan:
		return canVectorize(x.Input)
	case *LookupJoinPlan:
		return canVectorize(x.Left)
	default:
		return false
	}
}

// execChild evaluates a child plan: columnar when the context asks for
// it and the subtree has kernels, the ordinary row path otherwise. Row
// operators call it in place of child.Execute so a vectorizable subtree
// below a row-only operator still runs columnar. It also charges the
// subtree's inclusive wall time to the node's operator kind — the
// "eval ns" column of EXPLAIN ANALYZE (two clock reads per operator
// per window; windows are µs-scale, so the cost is noise).
func execChild(ctx *ExecContext, p Plan) ([]relation.Tuple, error) {
	start := time.Now()
	rows, err := execChildUntimed(ctx, p)
	if k := kindOf(p); k >= 0 {
		ctx.Stats.Ops[k].WallNS += int64(time.Since(start))
	}
	return rows, err
}

func execChildUntimed(ctx *ExecContext, p Plan) ([]relation.Tuple, error) {
	if ctx.Vectorized && canVectorize(p) {
		f, err := p.(vecPlan).executeVec(ctx)
		if err != nil {
			return nil, err
		}
		return f.materialize(), nil
	}
	return p.Execute(ctx)
}

// ExecutePlan is the engine's top-level entry point: it picks the
// columnar path when ctx.Vectorized is set and the plan supports it,
// and the tuple-at-a-time path otherwise.
func ExecutePlan(ctx *ExecContext, p Plan) ([]relation.Tuple, error) {
	return execChild(ctx, p)
}

// execVecChild runs a child already known (via canVectorize) to have a
// kernel.
func execVecChild(ctx *ExecContext, p Plan) (*vecFrame, error) {
	return p.(vecPlan).executeVec(ctx)
}

// ---- operator kernels ----

func frameOf(cb *relation.ColBatch) *vecFrame {
	cols := make([]*relation.Vector, cb.Arity())
	for j := range cols {
		cols[j] = cb.Col(j)
	}
	return &vecFrame{cols: cols, n: cb.Len()}
}

func (w *WindowSourcePlan) executeVec(ctx *ExecContext) (*vecFrame, error) {
	ctx.Stats.enter(OpWindowSource)
	cb := w.cols
	if cb == nil {
		cb = relation.Transpose(w.rows)
	}
	n := cb.Len()
	ctx.Stats.RowsScanned += int64(n)
	ctx.Stats.produced(OpWindowSource, n)
	ar := cb.Arity()
	if cap(w.vf.cols) < ar {
		w.vf.cols = make([]*relation.Vector, ar)
	}
	w.vf.cols = w.vf.cols[:ar]
	for j := 0; j < ar; j++ {
		w.vf.cols[j] = cb.Col(j)
	}
	w.vf.n = n
	w.vf.sel = nil
	return &w.vf, nil
}

func (v *ValuesPlan) executeVec(ctx *ExecContext) (*vecFrame, error) {
	ctx.Stats.enter(OpValues)
	if v.cb == nil {
		v.cb = relation.Transpose(v.Rows)
	}
	ctx.Stats.RowsScanned += int64(len(v.Rows))
	return frameOf(v.cb), nil
}

func (f *FilterPlan) executeVec(ctx *ExecContext) (*vecFrame, error) {
	ctx.Stats.enter(OpFilter)
	in, err := execVecChild(ctx, f.Input)
	if err != nil {
		return nil, err
	}
	if f.vpred == nil {
		f.vpred = vecExprFor(ctx, f.Pred, f.Input.Schema())
	}
	pv, err := f.vpred(in.cols, in.n, in.sel)
	if err != nil {
		return nil, err
	}
	f.keep = f.keep.Reset(in.n)
	keep := f.keep
	kept := 0
	if bs, nb, ok := boolAccess(pv); ok {
		// Typed predicate result: tight loop, no per-row dispatch.
		if in.sel == nil {
			for i := 0; i < in.n; i++ {
				if bs[i] && (nb == nil || !nb.Get(i)) {
					keep.Set(i)
					kept++
				}
			}
		} else {
			for i := in.sel.Next(0); i >= 0; i = in.sel.Next(i + 1) {
				if bs[i] && (nb == nil || !nb.Get(i)) {
					keep.Set(i)
					kept++
				}
			}
		}
	} else {
		eachSel(in.n, in.sel, func(i int) bool {
			if isNull, truthy := truthVals(pv, i); !isNull && truthy {
				keep.Set(i)
				kept++
			}
			return true
		})
	}
	ctx.Stats.produced(OpFilter, kept)
	f.vf = vecFrame{cols: in.cols, n: in.n, sel: keep}
	return &f.vf, nil
}

// boolAccess returns direct truth accessors for a typed bool column:
// the values and the null bitmap (nil = no nulls). ok is false for any
// other layout (generic, all-NULL, non-bool).
func boolAccess(v *relation.Vector) (vals []bool, nb *relation.Bitmap, ok bool) {
	if v.ElemType() != relation.TBool {
		return nil, nil, false
	}
	if v.HasNulls() {
		nb = v.Nulls()
	}
	return v.Bools(), nb, true
}

func (p *ProjectPlan) executeVec(ctx *ExecContext) (*vecFrame, error) {
	ctx.Stats.enter(OpProject)
	in, err := execVecChild(ctx, p.Input)
	if err != nil {
		return nil, err
	}
	if p.vexprs == nil {
		p.vexprs = vecExprsFor(ctx, p.Exprs, p.Input.Schema())
	}
	if cap(p.vout) < len(p.vexprs) {
		p.vout = make([]*relation.Vector, len(p.vexprs))
	}
	out := p.vout[:len(p.vexprs)]
	for j, ve := range p.vexprs {
		out[j], err = ve(in.cols, in.n, in.sel)
		if err != nil {
			return nil, err
		}
	}
	ctx.Stats.produced(OpProject, in.count())
	p.vf = vecFrame{cols: out, n: in.n, sel: in.sel}
	return &p.vf, nil
}

func (l *LimitPlan) executeVec(ctx *ExecContext) (*vecFrame, error) {
	ctx.Stats.enter(OpLimit)
	in, err := execVecChild(ctx, l.Input)
	if err != nil {
		return nil, err
	}
	if in.count() <= l.N {
		return in, nil
	}
	l.keep = l.keep.Reset(in.n)
	keep := l.keep
	taken := 0
	eachSel(in.n, in.sel, func(i int) bool {
		keep.Set(i)
		taken++
		return taken < l.N
	})
	l.vf = vecFrame{cols: in.cols, n: in.n, sel: keep}
	return &l.vf, nil
}

func (j *LookupJoinPlan) executeVec(ctx *ExecContext) (*vecFrame, error) {
	ctx.Stats.enter(OpLookupJoin)
	left, err := execVecChild(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	table, err := ctx.Catalog.Get(j.Table)
	if err != nil {
		return nil, err
	}
	if j.vleftKeys == nil {
		j.vleftKeys = vecExprsFor(ctx, j.LeftKeys, j.Left.Schema())
	}
	if j.Residual != nil && j.residual == nil {
		if j.residual, err = exprFor(ctx, j.Residual, j.schema); err != nil {
			return nil, err
		}
	}

	// Evaluate the key expressions column-wise, dropping a row from the
	// probe set as soon as one of its keys is NULL — the row path skips
	// such rows and never evaluates their remaining keys.
	probeSel := left.sel
	var owned *relation.Bitmap
	kvecs := make([]*relation.Vector, len(j.vleftKeys))
	for ki, ke := range j.vleftKeys {
		kv, err := ke(left.cols, left.n, probeSel)
		if err != nil {
			return nil, err
		}
		kvecs[ki] = kv
		eachSel(left.n, probeSel, func(i int) bool {
			if kv.IsNull(i) {
				if owned == nil {
					if probeSel != nil {
						owned = probeSel.Clone()
					} else {
						owned = relation.NewBitmap(left.n)
						owned.SetAll()
					}
				}
				owned.Clear(i)
			}
			return true
		})
		if owned != nil {
			probeSel = owned
		}
	}

	probes := selCount(left.n, probeSel)
	var matches [][]relation.Tuple
	if probes > 0 {
		keys := make([][]relation.Value, left.n)
		eachSel(left.n, probeSel, func(i int) bool {
			vals := make([]relation.Value, len(kvecs))
			for k, kv := range kvecs {
				vals[k] = kv.Value(i)
			}
			keys[i] = vals
			return true
		})
		var usedIndex bool
		matches, usedIndex, err = table.LookupBatch(j.TableCols, keys)
		if err != nil {
			return nil, err
		}
		if usedIndex {
			ctx.Stats.IndexLookups += int64(probes)
		} else {
			ctx.Stats.RowsScanned += int64(table.Len()) * int64(probes)
		}
	}

	larity := len(left.cols)
	builders := make([]*relation.VectorBuilder, j.schema.Arity())
	for i := range builders {
		builders[i] = relation.NewVectorBuilder(probes)
	}
	total := 0
	var rerr error
	eachSel(left.n, probeSel, func(i int) bool {
		for _, rrow := range matches[i] {
			if j.residual != nil {
				joined := make(relation.Tuple, 0, j.schema.Arity())
				for c := 0; c < larity; c++ {
					joined = append(joined, left.cols[c].Value(i))
				}
				joined = append(joined, rrow...)
				v, err := j.residual(joined)
				if err != nil {
					rerr = err
					return false
				}
				if !v.Truthy() {
					continue
				}
				for c, val := range joined {
					builders[c].Append(val)
				}
			} else {
				for c := 0; c < larity; c++ {
					builders[c].Append(left.cols[c].Value(i))
				}
				for c, val := range rrow {
					builders[larity+c].Append(val)
				}
			}
			total++
		}
		return true
	})
	if rerr != nil {
		return nil, rerr
	}
	ctx.Stats.produced(OpLookupJoin, total)
	out := make([]*relation.Vector, len(builders))
	for i, b := range builders {
		out[i] = b.Build()
	}
	return &vecFrame{cols: out, n: total}, nil
}

// ---- vectorized expressions ----

// vecExpr evaluates an expression over the selected rows of a columnar
// input, returning a vector of length n defined at selected positions.
type vecExpr func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error)

// vecExprFor is the columnar counterpart of exprFor: compiled kernels by
// default, the reference interpreter applied row-wise when the context
// asks for interpretation.
func vecExprFor(ctx *ExecContext, e sql.Expr, schema relation.Schema) vecExpr {
	if ctx.Interpret {
		funcs := ctx.Funcs
		return vecRowFallback(func(row relation.Tuple) (relation.Value, error) {
			return Eval(e, schema, row, funcs)
		}, schema.Arity())
	}
	return compileVec(e, schema, ctx.Funcs)
}

func vecExprsFor(ctx *ExecContext, exprs []sql.Expr, schema relation.Schema) []vecExpr {
	out := make([]vecExpr, len(exprs))
	for i, e := range exprs {
		out[i] = vecExprFor(ctx, e, schema)
	}
	return out
}

// compileVec builds the columnar evaluator for e, reusing compileNode's
// constant folding: constant subtrees broadcast a single value, column
// references alias the input vector, comparison/arithmetic/logic nodes
// get typed loops, and every other node shape falls back to the compiled
// row closure applied per selected row (exact row semantics by
// construction).
func compileVec(e sql.Expr, schema relation.Schema, funcs *FuncRegistry) vecExpr {
	rowC, constant := compileNode(e, schema, funcs)
	if constant {
		v, err := rowC(nil)
		if err != nil {
			return vecErr(err)
		}
		return vecConst(v)
	}
	switch x := e.(type) {
	case *sql.ColumnRef:
		idx, err := schema.IndexOf(x.FullName())
		if err != nil {
			return vecErr(err)
		}
		return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
			if n == 0 {
				// An empty batch may transpose to zero columns.
				return relation.NewGenericVector(nil), nil
			}
			return cols[idx], nil
		}
	case *sql.BinaryExpr:
		return compileVecBinary(x, schema, funcs, rowC)
	default:
		return vecRowFallback(rowC, schema.Arity())
	}
}

// vecErr defers a per-row error: it fires only when at least one row is
// selected, matching the row path over empty inputs.
func vecErr(err error) vecExpr {
	return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
		if selCount(n, sel) == 0 {
			return relation.NewConstVector(relation.Null, n), nil
		}
		return nil, err
	}
}

func vecConst(v relation.Value) vecExpr {
	return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
		return relation.NewConstVector(v, n), nil
	}
}

// vecRowFallback applies a row closure per selected row through a
// gathered scratch tuple. It is cold by construction (only node shapes
// without a typed kernel land here), so it allocates per call instead
// of carrying vecBufs scratch.
func vecRowFallback(rowC CompiledExpr, arity int) vecExpr {
	return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
		vals := make([]relation.Value, n)
		scratch := make(relation.Tuple, arity)
		var err error
		eachSel(n, sel, func(i int) bool {
			for j, c := range cols {
				scratch[j] = c.Value(i)
			}
			vals[i], err = rowC(scratch)
			return err == nil
		})
		if err != nil {
			return nil, err
		}
		return relation.NewGenericVector(vals), nil
	}
}

func compileVecBinary(x *sql.BinaryExpr, schema relation.Schema, funcs *FuncRegistry, rowC CompiledExpr) vecExpr {
	switch x.Op {
	case "AND":
		return compileVecLogic(x, schema, funcs, true)
	case "OR":
		return compileVecLogic(x, schema, funcs, false)
	case "=", "<>", "<", "<=", ">", ">=":
		return compileVecCompare(x, schema, funcs, rowC)
	case "+", "-", "*", "/", "%":
		return compileVecArith(x, schema, funcs, rowC)
	default:
		// "||" and unknown operators take the row closure per row.
		return vecRowFallback(rowC, schema.Arity())
	}
}

// truthVals reads the SQL truth value of element i.
func truthVals(v *relation.Vector, i int) (isNull, truthy bool) {
	if v.IsNull(i) {
		return true, false
	}
	if v.ElemType() == relation.TBool {
		return false, v.Bools()[i]
	}
	return false, v.Value(i).Truthy()
}

// compileVecLogic compiles AND (and=true) / OR (and=false). The right
// operand is evaluated on exactly the rows where the row path would
// reach it — left not definitely false for AND, not definitely true for
// OR — so a failing right operand fires on the same row set.
func compileVecLogic(x *sql.BinaryExpr, schema relation.Schema, funcs *FuncRegistry, and bool) vecExpr {
	le := compileVec(x.Left, schema, funcs)
	re := compileVec(x.Right, schema, funcs)
	bufs := new(vecBufs)
	return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
		lv, err := le(cols, n, sel)
		if err != nil {
			return nil, err
		}
		// Left truth state per row: short-circuit, pass-through, or null.
		// st is reused scratch, so every selected slot is stored
		// explicitly — including scut, which is no longer the zero value
		// of a fresh buffer.
		const scut, pass, isnull = uint8(0), uint8(1), uint8(2)
		st := bufs.stSlice(n)
		rsel := sel
		var owned *relation.Bitmap
		clearRow := func(i int) { // lazily narrow the right selection
			if owned == nil {
				if sel != nil {
					owned = sel.Clone()
				} else {
					owned = relation.NewBitmap(n)
					owned.SetAll()
				}
				rsel = owned
			}
			owned.Clear(i)
		}
		if lb, lnb, ok := boolAccess(lv); ok {
			if sel == nil {
				for i := 0; i < n; i++ {
					if lnb != nil && lnb.Get(i) {
						st[i] = isnull
					} else if lb[i] == and {
						st[i] = pass
					} else {
						st[i] = scut
						clearRow(i)
					}
				}
			} else {
				for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
					if lnb != nil && lnb.Get(i) {
						st[i] = isnull
					} else if lb[i] == and {
						st[i] = pass
					} else {
						st[i] = scut
						clearRow(i)
					}
				}
			}
		} else {
			eachSel(n, sel, func(i int) bool {
				null, truthy := truthVals(lv, i)
				switch {
				case null:
					st[i] = isnull
				case truthy == and:
					st[i] = pass
				default:
					st[i] = scut
					clearRow(i)
				}
				return true
			})
		}
		rv, err := re(cols, n, rsel)
		if err != nil {
			return nil, err
		}
		out := bufs.boolSlice(n)
		var nulls *relation.Bitmap
		setNull := func(i int) {
			if nulls == nil {
				nulls = relation.NewBitmap(n)
			}
			nulls.Set(i)
		}
		if rb, rnb, ok := boolAccess(rv); ok {
			if sel == nil {
				for i := 0; i < n; i++ {
					if st[i] == scut {
						out[i] = !and
						continue
					}
					rNull := rnb != nil && rnb.Get(i)
					if !rNull && rb[i] != and {
						out[i] = !and
					} else if st[i] == isnull || rNull {
						setNull(i)
					} else {
						out[i] = and
					}
				}
			} else {
				for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
					if st[i] == scut {
						out[i] = !and
						continue
					}
					rNull := rnb != nil && rnb.Get(i)
					if !rNull && rb[i] != and {
						out[i] = !and
					} else if st[i] == isnull || rNull {
						setNull(i)
					} else {
						out[i] = and
					}
				}
			}
		} else {
			eachSel(n, sel, func(i int) bool {
				if st[i] == scut {
					out[i] = !and
					return true
				}
				rNull, rTruthy := truthVals(rv, i)
				if !rNull && rTruthy != and {
					out[i] = !and
					return true
				}
				if st[i] == isnull || rNull {
					setNull(i)
					return true
				}
				out[i] = and
				return true
			})
		}
		return bufs.boolVec(out, nulls), nil
	}
}

// cmpAccept maps a comparison operator to its acceptance table, indexed
// by sign(cmp)+1: [accept-less, accept-equal, accept-greater]. A table
// lookup replaces a per-row closure call in the compare kernels.
func cmpAccept(op string) [3]bool {
	switch op {
	case "=":
		return [3]bool{false, true, false}
	case "<>":
		return [3]bool{true, false, true}
	case "<":
		return [3]bool{true, false, false}
	case "<=":
		return [3]bool{true, true, false}
	case ">":
		return [3]bool{false, false, true}
	default: // ">="
		return [3]bool{false, true, true}
	}
}

// cmpIdx maps an arbitrary comparison result to its acceptance-table
// index.
func cmpIdx(c int) int {
	switch {
	case c < 0:
		return 0
	case c > 0:
		return 2
	default:
		return 1
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpStr(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// floatAt returns a numeric accessor for a typed numeric column, or nil.
func floatAt(v *relation.Vector) func(i int) float64 {
	switch v.ElemType() {
	case relation.TInt, relation.TTime:
		ints := v.Ints()
		return func(i int) float64 { return float64(ints[i]) }
	case relation.TFloat:
		fs := v.Floats()
		return func(i int) float64 { return fs[i] }
	}
	return nil
}

func compileVecCompare(x *sql.BinaryExpr, schema relation.Schema, funcs *FuncRegistry, rowC CompiledExpr) vecExpr {
	test := cmpAccept(x.Op)
	lRow, lc := compileNode(x.Left, schema, funcs)
	rRow, rc := compileNode(x.Right, schema, funcs)
	if rc {
		s, err := rRow(nil)
		if err != nil {
			return vecRowFallback(rowC, schema.Arity())
		}
		le := compileVec(x.Left, schema, funcs)
		bufs := new(vecBufs)
		return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
			v, err := le(cols, n, sel)
			if err != nil {
				return nil, err
			}
			return cmpVecScalar(bufs, test, v, s, false, n, sel)
		}
	}
	if lc {
		s, err := lRow(nil)
		if err != nil {
			return vecRowFallback(rowC, schema.Arity())
		}
		re := compileVec(x.Right, schema, funcs)
		bufs := new(vecBufs)
		return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
			v, err := re(cols, n, sel)
			if err != nil {
				return nil, err
			}
			return cmpVecScalar(bufs, test, v, s, true, n, sel)
		}
	}
	le := compileVec(x.Left, schema, funcs)
	re := compileVec(x.Right, schema, funcs)
	bufs := new(vecBufs)
	return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
		a, err := le(cols, n, sel)
		if err != nil {
			return nil, err
		}
		b, err := re(cols, n, sel)
		if err != nil {
			return nil, err
		}
		return cmpVecVec(bufs, test, a, b, n, sel)
	}
}

// cmpVecScalar compares a vector against a folded constant; scalarLeft
// says which side of the operator the constant sat on (it matters for
// ordering comparisons and error messages). The typed cases run direct
// loops: acceptance is a table lookup on the comparison sign, with the
// constant side folded into a flipped table instead of a per-row branch.
func cmpVecScalar(bufs *vecBufs, test [3]bool, v *relation.Vector, s relation.Value, scalarLeft bool, n int, sel *relation.Bitmap) (*relation.Vector, error) {
	if s.IsNull() {
		return relation.NewConstVector(relation.Null, n), nil
	}
	out := bufs.boolSlice(n)
	var nulls *relation.Bitmap
	setNull := func(i int) {
		if nulls == nil {
			nulls = relation.NewBitmap(n)
		}
		nulls.Set(i)
	}
	acc := test
	if scalarLeft {
		acc = [3]bool{test[2], test[1], test[0]}
	}
	et := v.ElemType()
	sf, sNum := s.AsFloat()
	var nb *relation.Bitmap
	if v.HasNulls() {
		nb = v.Nulls()
	}
	switch {
	case (et == relation.TInt || et == relation.TTime) && sNum:
		ints := v.Ints()
		if sel == nil {
			for i := 0; i < n; i++ {
				if nb != nil && nb.Get(i) {
					setNull(i)
					continue
				}
				out[i] = acc[cmpFloat(float64(ints[i]), sf)+1]
			}
		} else {
			for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
				if nb != nil && nb.Get(i) {
					setNull(i)
					continue
				}
				out[i] = acc[cmpFloat(float64(ints[i]), sf)+1]
			}
		}
	case et == relation.TFloat && sNum:
		fs := v.Floats()
		if sel == nil {
			for i := 0; i < n; i++ {
				if nb != nil && nb.Get(i) {
					setNull(i)
					continue
				}
				out[i] = acc[cmpFloat(fs[i], sf)+1]
			}
		} else {
			for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
				if nb != nil && nb.Get(i) {
					setNull(i)
					continue
				}
				out[i] = acc[cmpFloat(fs[i], sf)+1]
			}
		}
	case et == relation.TString && s.Type == relation.TString:
		ss := v.Strs()
		if sel == nil {
			for i := 0; i < n; i++ {
				if nb != nil && nb.Get(i) {
					setNull(i)
					continue
				}
				out[i] = acc[cmpStr(ss[i], s.Str)+1]
			}
		} else {
			for i := sel.Next(0); i >= 0; i = sel.Next(i + 1) {
				if nb != nil && nb.Get(i) {
					setNull(i)
					continue
				}
				out[i] = acc[cmpStr(ss[i], s.Str)+1]
			}
		}
	default:
		var err error
		eachSel(n, sel, func(i int) bool {
			a := v.Value(i)
			if a.IsNull() {
				setNull(i)
				return true
			}
			l, r := a, s
			if scalarLeft {
				l, r = s, a
			}
			c, ok := relation.Compare(l, r)
			if !ok {
				err = fmt.Errorf("engine: cannot compare %s and %s", l.Type, r.Type)
				return false
			}
			out[i] = test[cmpIdx(c)]
			return true
		})
		if err != nil {
			return nil, err
		}
	}
	return bufs.boolVec(out, nulls), nil
}

func cmpVecVec(bufs *vecBufs, test [3]bool, a, b *relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
	out := bufs.boolSlice(n)
	var nulls *relation.Bitmap
	setNull := func(i int) {
		if nulls == nil {
			nulls = relation.NewBitmap(n)
		}
		nulls.Set(i)
	}
	if af, bf := floatAt(a), floatAt(b); af != nil && bf != nil {
		eachSel(n, sel, func(i int) bool {
			if a.IsNull(i) || b.IsNull(i) {
				setNull(i)
				return true
			}
			out[i] = test[cmpFloat(af(i), bf(i))+1]
			return true
		})
		return bufs.boolVec(out, nulls), nil
	}
	var err error
	eachSel(n, sel, func(i int) bool {
		x, y := a.Value(i), b.Value(i)
		if x.IsNull() || y.IsNull() {
			setNull(i)
			return true
		}
		c, ok := relation.Compare(x, y)
		if !ok {
			err = fmt.Errorf("engine: cannot compare %s and %s", x.Type, y.Type)
			return false
		}
		out[i] = test[cmpIdx(c)]
		return true
	})
	if err != nil {
		return nil, err
	}
	return bufs.boolVec(out, nulls), nil
}

func compileVecArith(x *sql.BinaryExpr, schema relation.Schema, funcs *FuncRegistry, rowC CompiledExpr) vecExpr {
	op := x.Op[0]
	lRow, lc := compileNode(x.Left, schema, funcs)
	rRow, rc := compileNode(x.Right, schema, funcs)
	if rc {
		s, err := rRow(nil)
		if err != nil {
			return vecRowFallback(rowC, schema.Arity())
		}
		le := compileVec(x.Left, schema, funcs)
		return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
			v, err := le(cols, n, sel)
			if err != nil {
				return nil, err
			}
			return arithVecScalar(op, v, s, false, n, sel)
		}
	}
	if lc {
		s, err := lRow(nil)
		if err != nil {
			return vecRowFallback(rowC, schema.Arity())
		}
		re := compileVec(x.Right, schema, funcs)
		return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
			v, err := re(cols, n, sel)
			if err != nil {
				return nil, err
			}
			return arithVecScalar(op, v, s, true, n, sel)
		}
	}
	le := compileVec(x.Left, schema, funcs)
	re := compileVec(x.Right, schema, funcs)
	return func(cols []*relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
		a, err := le(cols, n, sel)
		if err != nil {
			return nil, err
		}
		b, err := re(cols, n, sel)
		if err != nil {
			return nil, err
		}
		return arithVecVec(op, a, b, n, sel)
	}
}

// arithVecScalar mirrors relation.Arith element-wise: int⊕int stays
// integral for + - *, every other numeric mix produces floats, and the
// leftover shapes (int/int division's per-row result type, modulo,
// non-numerics) run Arith itself per row.
func arithVecScalar(op byte, v *relation.Vector, s relation.Value, scalarLeft bool, n int, sel *relation.Bitmap) (*relation.Vector, error) {
	if s.IsNull() {
		return relation.NewConstVector(relation.Null, n), nil
	}
	et := v.ElemType()
	if et == relation.TInt && s.Type == relation.TInt && (op == '+' || op == '-' || op == '*') {
		ints := v.Ints()
		hasN := v.HasNulls()
		res := make([]int64, n)
		var nulls *relation.Bitmap
		eachSel(n, sel, func(i int) bool {
			if hasN && v.IsNull(i) {
				if nulls == nil {
					nulls = relation.NewBitmap(n)
				}
				nulls.Set(i)
				return true
			}
			a, b := ints[i], s.Int
			if scalarLeft {
				a, b = b, a
			}
			switch op {
			case '+':
				res[i] = a + b
			case '-':
				res[i] = a - b
			default:
				res[i] = a * b
			}
			return true
		})
		return relation.NewIntVector(res, nulls), nil
	}
	af := floatAt(v)
	sf, sNum := s.AsFloat()
	intInt := et == relation.TInt && s.Type == relation.TInt
	if af != nil && sNum && op != '%' && !(op == '/' && intInt) {
		hasN := v.HasNulls()
		res := make([]float64, n)
		var nulls *relation.Bitmap
		var err error
		eachSel(n, sel, func(i int) bool {
			if hasN && v.IsNull(i) {
				if nulls == nil {
					nulls = relation.NewBitmap(n)
				}
				nulls.Set(i)
				return true
			}
			a, b := af(i), sf
			if scalarLeft {
				a, b = b, a
			}
			switch op {
			case '+':
				res[i] = a + b
			case '-':
				res[i] = a - b
			case '*':
				res[i] = a * b
			default:
				if b == 0 {
					err = fmt.Errorf("relation: division by zero")
					return false
				}
				res[i] = a / b
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		return relation.NewFloatVector(res, nulls), nil
	}
	vals := make([]relation.Value, n)
	var err error
	eachSel(n, sel, func(i int) bool {
		a, b := v.Value(i), s
		if scalarLeft {
			a, b = b, a
		}
		vals[i], err = relation.Arith(op, a, b)
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	return relation.NewGenericVector(vals), nil
}

func arithVecVec(op byte, a, b *relation.Vector, n int, sel *relation.Bitmap) (*relation.Vector, error) {
	at, bt := a.ElemType(), b.ElemType()
	if at == relation.TInt && bt == relation.TInt && (op == '+' || op == '-' || op == '*') {
		ai, bi := a.Ints(), b.Ints()
		res := make([]int64, n)
		var nulls *relation.Bitmap
		eachSel(n, sel, func(i int) bool {
			if a.IsNull(i) || b.IsNull(i) {
				if nulls == nil {
					nulls = relation.NewBitmap(n)
				}
				nulls.Set(i)
				return true
			}
			switch op {
			case '+':
				res[i] = ai[i] + bi[i]
			case '-':
				res[i] = ai[i] - bi[i]
			default:
				res[i] = ai[i] * bi[i]
			}
			return true
		})
		return relation.NewIntVector(res, nulls), nil
	}
	intInt := at == relation.TInt && bt == relation.TInt
	if af, bf := floatAt(a), floatAt(b); af != nil && bf != nil && op != '%' && !(op == '/' && intInt) {
		res := make([]float64, n)
		var nulls *relation.Bitmap
		var err error
		eachSel(n, sel, func(i int) bool {
			if a.IsNull(i) || b.IsNull(i) {
				if nulls == nil {
					nulls = relation.NewBitmap(n)
				}
				nulls.Set(i)
				return true
			}
			x, y := af(i), bf(i)
			switch op {
			case '+':
				res[i] = x + y
			case '-':
				res[i] = x - y
			case '*':
				res[i] = x * y
			default:
				if y == 0 {
					err = fmt.Errorf("relation: division by zero")
					return false
				}
				res[i] = x / y
			}
			return true
		})
		if err != nil {
			return nil, err
		}
		return relation.NewFloatVector(res, nulls), nil
	}
	vals := make([]relation.Value, n)
	var err error
	eachSel(n, sel, func(i int) bool {
		vals[i], err = relation.Arith(op, a.Value(i), b.Value(i))
		return err == nil
	})
	if err != nil {
		return nil, err
	}
	return relation.NewGenericVector(vals), nil
}

// Package engine implements ExaStream's relational query processor: an
// expression evaluator, materialising plan operators (scan, filter,
// project, hash/nested-loop join, aggregate, sort, distinct, limit,
// union), a planner that compiles SQL(+) ASTs to plans, and the
// optimisations the paper relies on to make unfolded query fleets
// executable (predicate pushdown, hash-join detection, duplicate-union
// and self-join elimination).
package engine

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// ScalarFunc is a scalar UDF: it maps argument values to a result.
type ScalarFunc func(args []relation.Value) (relation.Value, error)

// FuncRegistry holds scalar UDFs by lower-case name. ExaStream registers
// its native UDFs here (paper §2: "natively supports User Defined
// Functions with arbitrary user code").
type FuncRegistry struct {
	scalars map[string]ScalarFunc
}

// NewFuncRegistry returns a registry preloaded with built-in scalar
// functions: abs, coalesce, upper, lower, length, round, concat.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{scalars: make(map[string]ScalarFunc)}
	r.Register("abs", func(args []relation.Value) (relation.Value, error) {
		if err := arity("abs", args, 1); err != nil {
			return relation.Null, err
		}
		v := args[0]
		switch v.Type {
		case relation.TInt:
			if v.Int < 0 {
				return relation.Int(-v.Int), nil
			}
			return v, nil
		case relation.TFloat:
			return relation.Float(math.Abs(v.Float)), nil
		case relation.TNull:
			return relation.Null, nil
		}
		return relation.Null, fmt.Errorf("engine: abs: non-numeric argument %s", v)
	})
	r.Register("coalesce", func(args []relation.Value) (relation.Value, error) {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return relation.Null, nil
	})
	r.Register("upper", stringFunc("upper", strings.ToUpper))
	r.Register("lower", stringFunc("lower", strings.ToLower))
	r.Register("length", func(args []relation.Value) (relation.Value, error) {
		if err := arity("length", args, 1); err != nil {
			return relation.Null, err
		}
		if args[0].IsNull() {
			return relation.Null, nil
		}
		if args[0].Type != relation.TString {
			return relation.Null, fmt.Errorf("engine: length: non-string argument")
		}
		return relation.Int(int64(len(args[0].Str))), nil
	})
	r.Register("round", func(args []relation.Value) (relation.Value, error) {
		if err := arity("round", args, 1); err != nil {
			return relation.Null, err
		}
		f, ok := args[0].AsFloat()
		if !ok {
			if args[0].IsNull() {
				return relation.Null, nil
			}
			return relation.Null, fmt.Errorf("engine: round: non-numeric argument")
		}
		return relation.Float(math.Round(f)), nil
	})
	r.Register("concat", func(args []relation.Value) (relation.Value, error) {
		var sb strings.Builder
		for _, a := range args {
			if a.IsNull() {
				continue
			}
			if a.Type == relation.TString {
				sb.WriteString(a.Str)
			} else {
				sb.WriteString(strings.Trim(a.String(), "'"))
			}
		}
		return relation.String_(sb.String()), nil
	})
	return r
}

func stringFunc(name string, f func(string) string) ScalarFunc {
	return func(args []relation.Value) (relation.Value, error) {
		if err := arity(name, args, 1); err != nil {
			return relation.Null, err
		}
		if args[0].IsNull() {
			return relation.Null, nil
		}
		if args[0].Type != relation.TString {
			return relation.Null, fmt.Errorf("engine: %s: non-string argument", name)
		}
		return relation.String_(f(args[0].Str)), nil
	}
}

func arity(name string, args []relation.Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("engine: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

// Register installs a scalar UDF, replacing any previous one of the name.
func (r *FuncRegistry) Register(name string, f ScalarFunc) {
	r.scalars[strings.ToLower(name)] = f
}

// Lookup returns the named scalar function.
func (r *FuncRegistry) Lookup(name string) (ScalarFunc, bool) {
	f, ok := r.scalars[strings.ToLower(name)]
	return f, ok
}

// aggregateNames lists the built-in SQL aggregate functions.
var aggregateNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
	"stddev": true, "corr": true, "first": true, "last": true,
}

// IsAggregate reports whether name is a built-in aggregate function.
func IsAggregate(name string) bool { return aggregateNames[strings.ToLower(name)] }

// HasAggregate reports whether the expression tree contains an aggregate
// call.
func HasAggregate(e sql.Expr) bool {
	found := false
	walkExpr(e, func(x sql.Expr) {
		if f, ok := x.(*sql.FuncExpr); ok && IsAggregate(f.Name) {
			found = true
		}
	})
	return found
}

// walkExpr visits every node of the expression tree in preorder.
func walkExpr(e sql.Expr, visit func(sql.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *sql.BinaryExpr:
		walkExpr(x.Left, visit)
		walkExpr(x.Right, visit)
	case *sql.UnaryExpr:
		walkExpr(x.Expr, visit)
	case *sql.IsNullExpr:
		walkExpr(x.Expr, visit)
	case *sql.FuncExpr:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	case *sql.CaseExpr:
		for _, w := range x.Whens {
			walkExpr(w.Cond, visit)
			walkExpr(w.Then, visit)
		}
		walkExpr(x.Else, visit)
	case *sql.InExpr:
		walkExpr(x.Expr, visit)
		for _, i := range x.List {
			walkExpr(i, visit)
		}
	}
}

// Eval evaluates expr against one tuple under the given schema.
// Aggregate calls are resolved as column references named by the
// expression text (the aggregate plan materialises them that way); if no
// such column exists the evaluation fails.
func Eval(e sql.Expr, schema relation.Schema, row relation.Tuple, funcs *FuncRegistry) (relation.Value, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return x.Value, nil
	case *sql.ColumnRef:
		i, err := schema.IndexOf(x.FullName())
		if err != nil {
			return relation.Null, err
		}
		return row[i], nil
	case *sql.BinaryExpr:
		return evalBinary(x, schema, row, funcs)
	case *sql.UnaryExpr:
		v, err := Eval(x.Expr, schema, row, funcs)
		if err != nil {
			return relation.Null, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return relation.Null, nil
			}
			return relation.Bool_(!v.Truthy()), nil
		case "-":
			switch v.Type {
			case relation.TInt:
				return relation.Int(-v.Int), nil
			case relation.TFloat:
				return relation.Float(-v.Float), nil
			case relation.TNull:
				return relation.Null, nil
			}
			return relation.Null, fmt.Errorf("engine: unary minus on %s", v.Type)
		}
		return relation.Null, fmt.Errorf("engine: unknown unary op %q", x.Op)
	case *sql.IsNullExpr:
		v, err := Eval(x.Expr, schema, row, funcs)
		if err != nil {
			return relation.Null, err
		}
		return relation.Bool_(v.IsNull() != x.Negate), nil
	case *sql.InExpr:
		v, err := Eval(x.Expr, schema, row, funcs)
		if err != nil {
			return relation.Null, err
		}
		if v.IsNull() {
			return relation.Null, nil
		}
		for _, item := range x.List {
			iv, err := Eval(item, schema, row, funcs)
			if err != nil {
				return relation.Null, err
			}
			if relation.Equal(v, iv) {
				return relation.Bool_(!x.Negate), nil
			}
		}
		return relation.Bool_(x.Negate), nil
	case *sql.CaseExpr:
		for _, w := range x.Whens {
			c, err := Eval(w.Cond, schema, row, funcs)
			if err != nil {
				return relation.Null, err
			}
			if c.Truthy() {
				return Eval(w.Then, schema, row, funcs)
			}
		}
		if x.Else != nil {
			return Eval(x.Else, schema, row, funcs)
		}
		return relation.Null, nil
	case *sql.FuncExpr:
		// Aggregates reach Eval only above an aggregate plan, which
		// exposes them as columns named by their expression text.
		if IsAggregate(x.Name) {
			i, err := schema.IndexOf(x.String())
			if err != nil {
				return relation.Null, fmt.Errorf("engine: aggregate %s outside GROUP BY context", x)
			}
			return row[i], nil
		}
		if funcs == nil {
			return relation.Null, fmt.Errorf("engine: no function registry for %s", x.Name)
		}
		f, ok := funcs.Lookup(x.Name)
		if !ok {
			return relation.Null, fmt.Errorf("engine: unknown function %q", x.Name)
		}
		args := make([]relation.Value, len(x.Args))
		for i, a := range x.Args {
			v, err := Eval(a, schema, row, funcs)
			if err != nil {
				return relation.Null, err
			}
			args[i] = v
		}
		return f(args)
	default:
		return relation.Null, fmt.Errorf("engine: cannot evaluate %T", e)
	}
}

func evalBinary(x *sql.BinaryExpr, schema relation.Schema, row relation.Tuple, funcs *FuncRegistry) (relation.Value, error) {
	// AND/OR get short-circuit evaluation with three-valued logic.
	switch x.Op {
	case "AND":
		l, err := Eval(x.Left, schema, row, funcs)
		if err != nil {
			return relation.Null, err
		}
		if !l.IsNull() && !l.Truthy() {
			return relation.Bool_(false), nil
		}
		r, err := Eval(x.Right, schema, row, funcs)
		if err != nil {
			return relation.Null, err
		}
		if !r.IsNull() && !r.Truthy() {
			return relation.Bool_(false), nil
		}
		if l.IsNull() || r.IsNull() {
			return relation.Null, nil
		}
		return relation.Bool_(true), nil
	case "OR":
		l, err := Eval(x.Left, schema, row, funcs)
		if err != nil {
			return relation.Null, err
		}
		if !l.IsNull() && l.Truthy() {
			return relation.Bool_(true), nil
		}
		r, err := Eval(x.Right, schema, row, funcs)
		if err != nil {
			return relation.Null, err
		}
		if !r.IsNull() && r.Truthy() {
			return relation.Bool_(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return relation.Null, nil
		}
		return relation.Bool_(false), nil
	}

	l, err := Eval(x.Left, schema, row, funcs)
	if err != nil {
		return relation.Null, err
	}
	r, err := Eval(x.Right, schema, row, funcs)
	if err != nil {
		return relation.Null, err
	}
	switch x.Op {
	case "+", "-", "*", "/", "%":
		return relation.Arith(x.Op[0], l, r)
	case "||":
		if l.IsNull() || r.IsNull() {
			return relation.Null, nil
		}
		return relation.String_(asString(l) + asString(r)), nil
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return relation.Null, nil
		}
		c, ok := relation.Compare(l, r)
		if !ok {
			return relation.Null, fmt.Errorf("engine: cannot compare %s and %s", l.Type, r.Type)
		}
		var b bool
		switch x.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return relation.Bool_(b), nil
	}
	return relation.Null, fmt.Errorf("engine: unknown binary op %q", x.Op)
}

func asString(v relation.Value) string {
	if v.Type == relation.TString {
		return v.Str
	}
	return strings.Trim(v.String(), "'")
}

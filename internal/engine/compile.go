package engine

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/sql"
)

// CompiledExpr is an expression compiled against a fixed schema: column
// ordinals are resolved and constant subtrees folded once, so per-row
// evaluation is a closure call instead of a tree interpretation with
// string lookups. Compiled closures are safe for sequential reuse; a
// plan executes under its query's execution lock, so operators compile
// once and evaluate many windows.
type CompiledExpr func(row relation.Tuple) (relation.Value, error)

// Compile translates an expression into a CompiledExpr over the given
// schema. It is the compile-once counterpart of Eval (the reference
// implementation): for every (schema, row) pair the compiled closure
// returns exactly what Eval would, including NULL propagation, error
// messages, and AND/OR short-circuiting — unresolvable columns or
// unknown functions become closures producing the error per row rather
// than compile failures, so operators over empty inputs still succeed
// exactly as the interpreter does. The returned error is reserved for
// structural impossibilities (currently none); callers may treat it as
// fatal.
func Compile(e sql.Expr, schema relation.Schema, funcs *FuncRegistry) (CompiledExpr, error) {
	c, _ := compileNode(e, schema, funcs)
	return c, nil
}

// constExpr wraps a fixed value.
func constExpr(v relation.Value) CompiledExpr {
	return func(relation.Tuple) (relation.Value, error) { return v, nil }
}

// errExpr wraps a fixed evaluation error, preserving Eval's per-row
// error semantics for expressions that can never succeed.
func errExpr(err error) CompiledExpr {
	return func(relation.Tuple) (relation.Value, error) { return relation.Null, err }
}

// fold evaluates a constant closure once and bakes the result (value or
// error) into a trivial closure.
func fold(c CompiledExpr) CompiledExpr {
	v, err := c(nil)
	if err != nil {
		return errExpr(err)
	}
	return constExpr(v)
}

// compileNode compiles one node and reports whether it is a constant
// subtree (no column references, deterministic operators only; function
// calls are never folded because UDFs may be impure). Constant subtrees
// are already folded in the returned closure.
func compileNode(e sql.Expr, schema relation.Schema, funcs *FuncRegistry) (CompiledExpr, bool) {
	switch x := e.(type) {
	case *sql.Literal:
		return constExpr(x.Value), true
	case *sql.ColumnRef:
		i, err := schema.IndexOf(x.FullName())
		if err != nil {
			return errExpr(err), false
		}
		return func(row relation.Tuple) (relation.Value, error) {
			return row[i], nil
		}, false
	case *sql.BinaryExpr:
		return compileBinary(x, schema, funcs)
	case *sql.UnaryExpr:
		in, c := compileNode(x.Expr, schema, funcs)
		switch x.Op {
		case "NOT":
			out := func(row relation.Tuple) (relation.Value, error) {
				v, err := in(row)
				if err != nil {
					return relation.Null, err
				}
				if v.IsNull() {
					return relation.Null, nil
				}
				return relation.Bool_(!v.Truthy()), nil
			}
			if c {
				return fold(out), true
			}
			return out, false
		case "-":
			out := func(row relation.Tuple) (relation.Value, error) {
				v, err := in(row)
				if err != nil {
					return relation.Null, err
				}
				switch v.Type {
				case relation.TInt:
					return relation.Int(-v.Int), nil
				case relation.TFloat:
					return relation.Float(-v.Float), nil
				case relation.TNull:
					return relation.Null, nil
				}
				return relation.Null, fmt.Errorf("engine: unary minus on %s", v.Type)
			}
			if c {
				return fold(out), true
			}
			return out, false
		}
		// Unknown unary op: Eval evaluates the operand first, then fails.
		err := fmt.Errorf("engine: unknown unary op %q", x.Op)
		return func(row relation.Tuple) (relation.Value, error) {
			if _, e := in(row); e != nil {
				return relation.Null, e
			}
			return relation.Null, err
		}, false
	case *sql.IsNullExpr:
		in, c := compileNode(x.Expr, schema, funcs)
		negate := x.Negate
		out := func(row relation.Tuple) (relation.Value, error) {
			v, err := in(row)
			if err != nil {
				return relation.Null, err
			}
			return relation.Bool_(v.IsNull() != negate), nil
		}
		if c {
			return fold(out), true
		}
		return out, false
	case *sql.InExpr:
		return compileIn(x, schema, funcs)
	case *sql.CaseExpr:
		return compileCase(x, schema, funcs)
	case *sql.FuncExpr:
		return compileFunc(x, schema, funcs)
	default:
		return errExpr(fmt.Errorf("engine: cannot evaluate %T", e)), false
	}
}

func compileIn(x *sql.InExpr, schema relation.Schema, funcs *FuncRegistry) (CompiledExpr, bool) {
	in, c := compileNode(x.Expr, schema, funcs)
	items := make([]CompiledExpr, len(x.List))
	for i, item := range x.List {
		var ic bool
		items[i], ic = compileNode(item, schema, funcs)
		c = c && ic
	}
	negate := x.Negate
	out := func(row relation.Tuple) (relation.Value, error) {
		v, err := in(row)
		if err != nil {
			return relation.Null, err
		}
		if v.IsNull() {
			return relation.Null, nil
		}
		for _, item := range items {
			iv, err := item(row)
			if err != nil {
				return relation.Null, err
			}
			if relation.Equal(v, iv) {
				return relation.Bool_(!negate), nil
			}
		}
		return relation.Bool_(negate), nil
	}
	if c {
		return fold(out), true
	}
	return out, false
}

func compileCase(x *sql.CaseExpr, schema relation.Schema, funcs *FuncRegistry) (CompiledExpr, bool) {
	type when struct{ cond, then CompiledExpr }
	whens := make([]when, len(x.Whens))
	c := true
	for i, w := range x.Whens {
		cond, cc := compileNode(w.Cond, schema, funcs)
		then, tc := compileNode(w.Then, schema, funcs)
		whens[i] = when{cond, then}
		c = c && cc && tc
	}
	var els CompiledExpr
	if x.Else != nil {
		var ec bool
		els, ec = compileNode(x.Else, schema, funcs)
		c = c && ec
	}
	out := func(row relation.Tuple) (relation.Value, error) {
		for _, w := range whens {
			cv, err := w.cond(row)
			if err != nil {
				return relation.Null, err
			}
			if cv.Truthy() {
				return w.then(row)
			}
		}
		if els != nil {
			return els(row)
		}
		return relation.Null, nil
	}
	if c {
		return fold(out), true
	}
	return out, false
}

func compileFunc(x *sql.FuncExpr, schema relation.Schema, funcs *FuncRegistry) (CompiledExpr, bool) {
	// Aggregates above an aggregate plan resolve as columns named by
	// their expression text, exactly as in Eval.
	if IsAggregate(x.Name) {
		i, err := schema.IndexOf(x.String())
		if err != nil {
			return errExpr(fmt.Errorf("engine: aggregate %s outside GROUP BY context", x)), false
		}
		return func(row relation.Tuple) (relation.Value, error) {
			return row[i], nil
		}, false
	}
	if funcs == nil {
		return errExpr(fmt.Errorf("engine: no function registry for %s", x.Name)), false
	}
	f, ok := funcs.Lookup(x.Name)
	if !ok {
		return errExpr(fmt.Errorf("engine: unknown function %q", x.Name)), false
	}
	args := make([]CompiledExpr, len(x.Args))
	for i, a := range x.Args {
		args[i], _ = compileNode(a, schema, funcs)
	}
	// Never folded: registered UDFs may be impure.
	return func(row relation.Tuple) (relation.Value, error) {
		vals := make([]relation.Value, len(args))
		for i, a := range args {
			v, err := a(row)
			if err != nil {
				return relation.Null, err
			}
			vals[i] = v
		}
		return f(vals)
	}, false
}

func compileBinary(x *sql.BinaryExpr, schema relation.Schema, funcs *FuncRegistry) (CompiledExpr, bool) {
	l, lc := compileNode(x.Left, schema, funcs)
	r, rc := compileNode(x.Right, schema, funcs)
	switch x.Op {
	case "AND":
		out := func(row relation.Tuple) (relation.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relation.Null, err
			}
			if !lv.IsNull() && !lv.Truthy() {
				return relation.Bool_(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return relation.Null, err
			}
			if !rv.IsNull() && !rv.Truthy() {
				return relation.Bool_(false), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null, nil
			}
			return relation.Bool_(true), nil
		}
		if lc && rc {
			return fold(out), true
		}
		if lc {
			// A constant false left side short-circuits the whole
			// conjunction without ever touching the right side.
			if lv, err := l(nil); err == nil && !lv.IsNull() && !lv.Truthy() {
				return constExpr(relation.Bool_(false)), true
			}
		}
		return out, false
	case "OR":
		out := func(row relation.Tuple) (relation.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relation.Null, err
			}
			if !lv.IsNull() && lv.Truthy() {
				return relation.Bool_(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return relation.Null, err
			}
			if !rv.IsNull() && rv.Truthy() {
				return relation.Bool_(true), nil
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null, nil
			}
			return relation.Bool_(false), nil
		}
		if lc && rc {
			return fold(out), true
		}
		if lc {
			if lv, err := l(nil); err == nil && !lv.IsNull() && lv.Truthy() {
				return constExpr(relation.Bool_(true)), true
			}
		}
		return out, false
	case "+", "-", "*", "/", "%":
		op := x.Op[0]
		out := func(row relation.Tuple) (relation.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relation.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return relation.Null, err
			}
			return relation.Arith(op, lv, rv)
		}
		if lc && rc {
			return fold(out), true
		}
		return out, false
	case "||":
		out := func(row relation.Tuple) (relation.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relation.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return relation.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null, nil
			}
			return relation.String_(asString(lv) + asString(rv)), nil
		}
		if lc && rc {
			return fold(out), true
		}
		return out, false
	case "=", "<>", "<", "<=", ">", ">=":
		var test func(int) bool
		switch x.Op {
		case "=":
			test = func(c int) bool { return c == 0 }
		case "<>":
			test = func(c int) bool { return c != 0 }
		case "<":
			test = func(c int) bool { return c < 0 }
		case "<=":
			test = func(c int) bool { return c <= 0 }
		case ">":
			test = func(c int) bool { return c > 0 }
		case ">=":
			test = func(c int) bool { return c >= 0 }
		}
		out := func(row relation.Tuple) (relation.Value, error) {
			lv, err := l(row)
			if err != nil {
				return relation.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return relation.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return relation.Null, nil
			}
			c, ok := relation.Compare(lv, rv)
			if !ok {
				return relation.Null, fmt.Errorf("engine: cannot compare %s and %s", lv.Type, rv.Type)
			}
			return relation.Bool_(test(c)), nil
		}
		if lc && rc {
			return fold(out), true
		}
		return out, false
	}
	// Unknown binary op: Eval evaluates both operands first, then fails.
	err := fmt.Errorf("engine: unknown binary op %q", x.Op)
	return func(row relation.Tuple) (relation.Value, error) {
		if _, e := l(row); e != nil {
			return relation.Null, e
		}
		if _, e := r(row); e != nil {
			return relation.Null, e
		}
		return relation.Null, err
	}, false
}

// compileAll compiles a list of expressions against one schema.
func compileAll(exprs []sql.Expr, schema relation.Schema, funcs *FuncRegistry) []CompiledExpr {
	out := make([]CompiledExpr, len(exprs))
	for i, e := range exprs {
		out[i], _ = compileNode(e, schema, funcs)
	}
	return out
}

// exprFor returns the per-row evaluator for e under ctx: the compiled
// closure by default, or a thin wrapper over the reference interpreter
// when ctx.Interpret is set (the pre-compilation execution path, kept
// selectable for A/B measurement and debugging).
func exprFor(ctx *ExecContext, e sql.Expr, schema relation.Schema) (CompiledExpr, error) {
	if ctx.Interpret {
		funcs := ctx.Funcs
		return func(row relation.Tuple) (relation.Value, error) {
			return Eval(e, schema, row, funcs)
		}, nil
	}
	return Compile(e, schema, ctx.Funcs)
}

// exprsFor is exprFor over a list.
func exprsFor(ctx *ExecContext, exprs []sql.Expr, schema relation.Schema) []CompiledExpr {
	if !ctx.Interpret {
		return compileAll(exprs, schema, ctx.Funcs)
	}
	out := make([]CompiledExpr, len(exprs))
	for i, e := range exprs {
		out[i], _ = exprFor(ctx, e, schema)
	}
	return out
}

// compiledKey evaluates a fixed list of key expressions into a reusable
// buffer and encodes them as a join/group key. The zero ok return marks
// NULL keys (which never join).
type compiledKey struct {
	fns []CompiledExpr
	idx []int
	buf relation.Tuple
}

func newCompiledKey(ctx *ExecContext, exprs []sql.Expr, schema relation.Schema) *compiledKey {
	idx := make([]int, len(exprs))
	for i := range idx {
		idx[i] = i
	}
	return &compiledKey{
		fns: exprsFor(ctx, exprs, schema),
		idx: idx,
		buf: make(relation.Tuple, len(exprs)),
	}
}

// eval computes the key of one row; numerics are normalised so that
// 1 = 1.0 joins (mirroring the interpreted evalKey).
func (k *compiledKey) eval(row relation.Tuple) (string, bool, error) {
	for i, f := range k.fns {
		v, err := f(row)
		if err != nil {
			return "", false, err
		}
		if v.IsNull() {
			return "", false, nil
		}
		if f, ok := v.AsFloat(); ok {
			v = relation.Float(f)
		}
		k.buf[i] = v
	}
	return k.buf.Key(k.idx), true, nil
}

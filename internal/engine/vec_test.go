package engine

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/sql"
)

// windowSchema is the unqualified tuple schema of the test stream `w`:
// typed columns of every vector layout plus `mix`, whose values mix
// types so its column degrades to the generic layout.
func windowSchema() relation.Schema {
	return relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("ts", relation.TTime),
		relation.Col("val", relation.TFloat),
		relation.Col("tag", relation.TString),
		relation.Col("ok", relation.TBool),
		relation.Col("mix", relation.TNull),
	)
}

// randomBatch draws a window batch: empty batches, NULL-heavy columns,
// and occasionally an all-NULL column, so the differential covers the
// typed, generic, and degenerate vector layouts.
func randomBatch(rng *rand.Rand) []relation.Tuple {
	var n int
	switch rng.Intn(5) {
	case 0:
		n = 0
	case 1:
		n = 1
	default:
		n = 2 + rng.Intn(40)
	}
	allNullCol := -1
	if rng.Intn(4) == 0 {
		allNullCol = rng.Intn(6)
	}
	tags := []string{"p", "q", "r"}
	rows := make([]relation.Tuple, n)
	for i := range rows {
		row := relation.Tuple{
			relation.Int(int64(rng.Intn(6))),
			relation.Time(int64(i) * 100),
			relation.Float(float64(rng.Intn(50))),
			relation.String_(tags[rng.Intn(len(tags))]),
			relation.Bool_(rng.Intn(2) == 0),
			relation.Null,
		}
		switch rng.Intn(3) { // mixed-type column
		case 0:
			row[5] = relation.Int(int64(rng.Intn(4)))
		case 1:
			row[5] = relation.String_(tags[rng.Intn(len(tags))])
		}
		for j := range row {
			if j == allNullCol || rng.Intn(8) == 0 {
				row[j] = relation.Null
			}
		}
		rows[i] = row
	}
	return rows
}

// randomWindowSQL draws a query shape over `w` (optionally joining the
// static `dim` table). Constant predicates produce full- and
// zero-selection bitmaps; AND/OR, every comparison type, arithmetic,
// the mixed column, and row-fallback shapes (IS NULL, CASE) are all in
// the pool.
func randomWindowSQL(rng *rand.Rand) string {
	pred := func() string {
		switch rng.Intn(12) {
		case 0:
			return fmt.Sprintf("w.val > %d", rng.Intn(50))
		case 1:
			return fmt.Sprintf("w.sid <= %d", rng.Intn(6))
		case 2:
			return "w.tag <> 'p'"
		case 3:
			return "w.ok"
		case 4:
			return fmt.Sprintf("w.sid = %d AND w.val >= %d", rng.Intn(6), rng.Intn(50))
		case 5:
			return fmt.Sprintf("w.val < %d OR w.tag = 'q'", rng.Intn(50))
		case 6:
			return fmt.Sprintf("w.sid + 1 < %d", rng.Intn(8))
		case 7:
			return "w.val * 2 > w.sid"
		case 8:
			return fmt.Sprintf("w.ts >= %d", rng.Intn(4000))
		case 9:
			return "1 = 1" // full selection
		case 10:
			return "1 = 2" // zero selection
		default:
			return "w.mix IS NULL" // row fallback inside the kernel tree
		}
	}
	switch rng.Intn(6) {
	case 0:
		return "SELECT w.sid, w.val FROM w WHERE " + pred()
	case 1:
		return fmt.Sprintf("SELECT w.sid + w.val, w.tag FROM w WHERE %s LIMIT %d", pred(), 1+rng.Intn(6))
	case 2:
		return "SELECT * FROM w WHERE " + pred()
	case 3: // aggregate above the columnar subtree
		return "SELECT w.sid, avg(w.val) FROM w WHERE " + pred() + " GROUP BY w.sid"
	case 4: // join with a static table above the columnar subtree
		return "SELECT w.sid, d.name FROM w, dim AS d WHERE w.sid = d.id AND " + pred()
	default:
		return "SELECT CASE WHEN w.val > 25 THEN 'hi' ELSE w.tag END FROM w WHERE " + pred()
	}
}

func dimCatalog(t *testing.T, indexed bool) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	tb, err := cat.Create("dim", relation.NewSchema(
		relation.Col("id", relation.TInt),
		relation.Col("name", relation.TString)))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 6; i++ {
		tb.MustInsert(relation.Tuple{relation.Int(i), relation.String_(fmt.Sprintf("n%d", i))})
	}
	if indexed {
		if err := tb.CreateIndex("id"); err != nil {
			t.Fatal(err)
		}
	}
	return cat
}

// diffExec runs the same plan over the same bound batch on the row path
// and the vectorized path and requires identical tuple multisets. Error
// identity may differ between the paths (see the semantics contract in
// vec.go) but error presence must not.
func diffExec(t *testing.T, cat *relation.Catalog, plan Plan, label string) {
	t.Helper()
	rctx := NewExecContext(cat)
	rowRes, rowErr := ExecutePlan(rctx, plan)
	vctx := NewExecContext(cat)
	vctx.Vectorized = true
	vecRes, vecErr := ExecutePlan(vctx, plan)
	if (rowErr == nil) != (vecErr == nil) {
		t.Fatalf("%s: error disagreement: row=%v vec=%v", label, rowErr, vecErr)
	}
	if rowErr != nil {
		return
	}
	if !sameMultiset(rowRes, vecRes) {
		t.Fatalf("%s: results differ\nrow: %v\nvec: %v\nplan:\n%s", label, rowRes, vecRes, Explain(plan))
	}
}

// TestVectorizedDifferentialSeeded is the seeded row-vs-vectorized
// differential: random plans over random window batches, each plan
// re-executed over several batches so the kernels' reused scratch
// (vecBufs, selection bitmaps, frames) is exercised across executions.
func TestVectorizedDifferentialSeeded(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	cat := dimCatalog(t, true)
	schema := windowSchema()
	for trial := 0; trial < 150; trial++ {
		query := randomWindowSQL(rng)
		stmt, err := sql.Parse(query)
		if err != nil {
			t.Fatalf("trial %d: generated invalid SQL %q: %v", trial, query, err)
		}
		wsp := NewWindowSourcePlan("w", schema.Qualify("w"))
		resolver := func(tr *sql.TableRef) (Plan, error) {
			if tr.Table == "w" {
				return wsp, nil
			}
			return CatalogResolver(cat)(tr)
		}
		plan, err := Build(stmt, resolver)
		if err != nil {
			t.Fatalf("trial %d: Build(%q): %v", trial, query, err)
		}
		for b := 0; b < 3; b++ {
			rows := randomBatch(rng)
			wsp.Bind(rows)
			if rng.Intn(2) == 0 {
				// Half the executions get a pre-transposed batch, the way
				// the stream engine shares one transposition per window.
				wsp.BindColumns(relation.Transpose(rows))
			}
			diffExec(t, cat, plan, fmt.Sprintf("trial %d batch %d: %s", trial, b, query))
		}
	}
}

// TestVectorizedLookupJoinDifferential drives the lookup-join kernel
// directly: scan and indexed probes, NULL keys, residual predicates,
// and empty probe batches.
func TestVectorizedLookupJoinDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	schema := windowSchema()
	for _, indexed := range []bool{false, true} {
		cat := dimCatalog(t, indexed)
		for _, residual := range []sql.Expr{nil, sql.Bin(">", sql.Col("d.id"), sql.Lit(relation.Int(2)))} {
			wsp := NewWindowSourcePlan("w", schema.Qualify("w"))
			probe := &FilterPlan{Input: wsp, Pred: sql.MustParse("SELECT 1 FROM t WHERE w.val >= 10").Where}
			tb, err := cat.Get("dim")
			if err != nil {
				t.Fatal(err)
			}
			lj := NewLookupJoinPlan(probe, "dim", "d", tb.Schema(),
				[]sql.Expr{sql.Col("w.sid")}, []string{"id"}, residual)
			for b := 0; b < 6; b++ {
				rows := randomBatch(rng)
				wsp.Bind(rows)
				if b%2 == 0 {
					wsp.BindColumns(relation.Transpose(rows))
				}
				diffExec(t, cat, lj, fmt.Sprintf("indexed=%v residual=%v batch %d", indexed, residual != nil, b))
			}
		}
	}
}

// TestVectorizedEdgeBatches pins the degenerate shapes explicitly:
// empty batch, all-NULL predicate column, constant-true and
// constant-false predicates.
func TestVectorizedEdgeBatches(t *testing.T) {
	cat := dimCatalog(t, false)
	schema := windowSchema()
	mk := func(query string) (Plan, *WindowSourcePlan) {
		t.Helper()
		wsp := NewWindowSourcePlan("w", schema.Qualify("w"))
		resolver := func(tr *sql.TableRef) (Plan, error) {
			if tr.Table == "w" {
				return wsp, nil
			}
			return CatalogResolver(cat)(tr)
		}
		plan, err := Build(sql.MustParse(query), resolver)
		if err != nil {
			t.Fatalf("Build(%q): %v", query, err)
		}
		return plan, wsp
	}
	someRows := []relation.Tuple{
		{relation.Int(1), relation.Time(0), relation.Null, relation.String_("p"), relation.Bool_(true), relation.Null},
		{relation.Int(2), relation.Time(100), relation.Null, relation.String_("q"), relation.Bool_(false), relation.Int(3)},
	}
	cases := []struct {
		name  string
		query string
		rows  []relation.Tuple
		want  int
	}{
		{"empty batch", "SELECT w.sid FROM w WHERE w.val > 0", nil, 0},
		{"all-null predicate column", "SELECT w.sid FROM w WHERE w.val > 0", someRows, 0},
		{"const true keeps all", "SELECT w.sid FROM w WHERE 1 = 1", someRows, 2},
		{"const false drops all", "SELECT w.sid FROM w WHERE 1 = 2", someRows, 0},
	}
	for _, c := range cases {
		plan, wsp := mk(c.query)
		wsp.Bind(c.rows)
		ctx := NewExecContext(cat)
		ctx.Vectorized = true
		got, err := ExecutePlan(ctx, plan)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(got) != c.want {
			t.Errorf("%s: got %d rows, want %d: %v", c.name, len(got), c.want, got)
		}
		diffExec(t, cat, plan, c.name)
	}
}

// TestVectorizedSharedWindowRace models the parallel window pool: many
// queries execute concurrently over the same shared window batch (rows
// and one shared transposition), each with its own compiled plan. The
// shared vectors are read-only; run under -race.
func TestVectorizedSharedWindowRace(t *testing.T) {
	cat := dimCatalog(t, true)
	schema := windowSchema()
	rng := rand.New(rand.NewSource(7))
	rows := randomBatch(rng)
	for len(rows) < 8 {
		rows = randomBatch(rng)
	}
	cb := relation.Transpose(rows)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			query := fmt.Sprintf(
				"SELECT w.sid, w.val, d.name FROM w, dim AS d WHERE w.sid = d.id AND w.val > %d", g)
			wsp := NewWindowSourcePlan("w", schema.Qualify("w"))
			resolver := func(tr *sql.TableRef) (Plan, error) {
				if tr.Table == "w" {
					return wsp, nil
				}
				return CatalogResolver(cat)(tr)
			}
			plan, err := Build(sql.MustParse(query), resolver)
			if err != nil {
				errs[g] = err
				return
			}
			ctx := NewExecContext(cat)
			ctx.Vectorized = true
			for iter := 0; iter < 100; iter++ {
				wsp.Bind(rows)
				wsp.BindColumns(cb)
				if _, err := ExecutePlan(ctx, plan); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
}

package engine

import (
	"math"
	"sort"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// PlanEstimate is the cost model's verdict for one plan node: EstRows is
// the estimated output cardinality, EstCost the estimated cumulative
// work (rows touched, abstract units — comparable only within one tree).
type PlanEstimate struct {
	EstRows float64
	EstCost float64
}

// Estimates annotates plan nodes with their estimates. It is a side
// table keyed by node identity rather than fields on each struct, so the
// execution-path types stay lean; EXPLAIN joins it against the observed
// ExecStats to render the estimated-vs-observed column.
type Estimates map[Plan]PlanEstimate

// Cost-model knobs. The absolute values only matter relative to each
// other; they are deliberately coarse (the model exists to rank
// alternatives, not to predict wall time).
const (
	// indexScanMaxSel is the largest estimated predicate selectivity for
	// which Filter(Scan) is rewritten into an IndexScanPlan: above it, a
	// full scan touches fewer total rows than probe + residual.
	indexScanMaxSel = 0.25
	// indexScanMinRows is the smallest table worth index-scanning;
	// below it the scan is already effectively free.
	indexScanMinRows = 8
)

// EstimatePlan walks a plan tree bottom-up computing per-node estimated
// cardinality and cost from the statistics store. A nil store yields
// pure-default estimates (still useful for relative comparisons).
func EstimatePlan(p Plan, st *StatsStore) Estimates {
	est := make(Estimates)
	estimateNode(p, st, est)
	return est
}

func estimateNode(p Plan, st *StatsStore, est Estimates) PlanEstimate {
	var e PlanEstimate
	switch n := p.(type) {
	case *ScanPlan:
		e.EstRows = tableRowEstimate(st, n.Table)
		e.EstCost = e.EstRows
	case *IndexScanPlan:
		base := tableRowEstimate(st, n.Table)
		sel := 1.0
		ts := st.Table(n.Table)
		for i, col := range n.Cols {
			if cs := ts.Col(col); cs != nil {
				sel *= cs.EqSelectivity(int64(base), n.Vals[i])
			} else {
				sel *= defaultEqSelectivity
			}
		}
		e.EstRows = base * clampSel(sel)
		e.EstCost = 1 + e.EstRows // probe + emit
	case *ValuesPlan:
		e.EstRows = float64(len(n.Rows))
		e.EstCost = e.EstRows
	case *WindowSourcePlan:
		e.EstRows = st.StreamRows(n.Name)
		e.EstCost = e.EstRows
	case *AliasPlan:
		e = estimateNode(n.Input, st, est)
	case *FilterPlan:
		in := estimateNode(n.Input, st, est)
		e.EstRows = in.EstRows * exprSelectivity(n.Pred, n.Input, st)
		e.EstCost = in.EstCost + in.EstRows
	case *ProjectPlan:
		in := estimateNode(n.Input, st, est)
		e.EstRows = in.EstRows
		e.EstCost = in.EstCost + in.EstRows
	case *HashJoinPlan:
		l := estimateNode(n.Left, st, est)
		r := estimateNode(n.Right, st, est)
		match := equiMatchFactor(n, st, n.LeftKeys, n.RightKeys)
		e.EstRows = l.EstRows * r.EstRows * match
		e.EstCost = l.EstCost + r.EstCost + l.EstRows + r.EstRows + e.EstRows
	case *NestedLoopJoinPlan:
		l := estimateNode(n.Left, st, est)
		r := estimateNode(n.Right, st, est)
		sel := 1.0
		if n.On != nil {
			sel = exprSelectivity(n.On, n, st)
		}
		e.EstRows = l.EstRows * r.EstRows * sel
		e.EstCost = l.EstCost + r.EstCost + l.EstRows*r.EstRows
	case *LookupJoinPlan:
		l := estimateNode(n.Left, st, est)
		mpp := matchesPerProbe(n, st)
		e.EstRows = l.EstRows * mpp
		e.EstCost = l.EstCost + l.EstRows + e.EstRows
	case *AggregatePlan:
		in := estimateNode(n.Input, st, est)
		e.EstRows = groupEstimate(n, in.EstRows, st)
		e.EstCost = in.EstCost + in.EstRows
	case *SortPlan:
		in := estimateNode(n.Input, st, est)
		e.EstRows = in.EstRows
		e.EstCost = in.EstCost + in.EstRows*math.Log2(in.EstRows+2)
	case *DistinctPlan:
		in := estimateNode(n.Input, st, est)
		e.EstRows = in.EstRows
		e.EstCost = in.EstCost + in.EstRows
	case *LimitPlan:
		in := estimateNode(n.Input, st, est)
		e.EstRows = math.Min(float64(n.N), in.EstRows)
		e.EstCost = in.EstCost
	case *UnionPlan:
		for _, in := range n.Inputs {
			c := estimateNode(in, st, est)
			e.EstRows += c.EstRows
			e.EstCost += c.EstCost
		}
		if n.Distinct {
			e.EstCost += e.EstRows
		}
	default:
		// Unknown plan implementation: estimate children, propagate the
		// widest.
		for _, c := range p.Children() {
			ce := estimateNode(c, st, est)
			e.EstRows = math.Max(e.EstRows, ce.EstRows)
			e.EstCost += ce.EstCost
		}
	}
	est[p] = e
	return e
}

func tableRowEstimate(st *StatsStore, table string) float64 {
	if ts := st.Table(table); ts != nil {
		return float64(ts.RowCount)
	}
	return defaultTableRows
}

// exprSelectivity estimates the fraction of under's rows satisfying e,
// resolving column references to the statistics of whatever leaf
// supplies them. Unresolvable predicates fall back to the fleet's
// observed filter selectivity (the feedback loop's contribution).
func exprSelectivity(e sql.Expr, under Plan, st *StatsStore) float64 {
	switch x := e.(type) {
	case *sql.BinaryExpr:
		switch x.Op {
		case "AND":
			return clampSel(exprSelectivity(x.Left, under, st) * exprSelectivity(x.Right, under, st))
		case "OR":
			s1 := exprSelectivity(x.Left, under, st)
			s2 := exprSelectivity(x.Right, under, st)
			return clampSel(s1 + s2 - s1*s2)
		case "=":
			return compareSelectivity(x, under, st, true)
		case "<>", "!=":
			return clampSel(1 - compareSelectivity(x, under, st, true))
		case "<", "<=", ">", ">=":
			return compareSelectivity(x, under, st, false)
		}
	case *sql.UnaryExpr:
		if x.Op == "NOT" {
			return clampSel(1 - exprSelectivity(x.Expr, under, st))
		}
	case *sql.IsNullExpr:
		if cs, rows, _, ok := columnStatsFor(under, x.Expr, st); ok && rows > 0 {
			frac := float64(cs.NullCount) / float64(rows)
			if x.Negate {
				return clampSel(1 - frac)
			}
			return clampSel(frac)
		}
	}
	return st.ObservedFilterSelectivity()
}

// compareSelectivity handles col <op> literal (either orientation) and
// col = col comparisons.
func compareSelectivity(be *sql.BinaryExpr, under Plan, st *StatsStore, eq bool) float64 {
	col, lit, op := be.Left, be.Right, be.Op
	if _, ok := col.(*sql.Literal); ok {
		col, lit = lit, col
		op = flipCompare(op)
	}
	cr, isCol := col.(*sql.ColumnRef)
	l, isLit := lit.(*sql.Literal)
	if !isCol {
		if eq {
			return defaultEqSelectivity
		}
		return defaultRangeSelectivity
	}
	if !isLit {
		// col = col (self-join-style equality inside one input): use the
		// larger NDV of the two sides, the textbook estimate.
		if eq {
			n1 := columnNDVFor(under, col, st)
			n2 := columnNDVFor(under, lit, st)
			if n := maxInt64(n1, n2); n > 0 {
				return clampSel(1 / float64(n))
			}
			return defaultEqSelectivity
		}
		return defaultRangeSelectivity
	}
	cs, rows, streamNDV, ok := columnStatsForRef(under, cr, st)
	if !ok {
		if eq {
			return defaultEqSelectivity
		}
		return defaultRangeSelectivity
	}
	if cs != nil {
		if eq {
			return clampSel(cs.EqSelectivity(rows, l.Value))
		}
		return clampSel(cs.RangeSelectivity(op, l.Value))
	}
	// Stream column: only a sampled NDV is available.
	if eq && streamNDV > 0 {
		return clampSel(1 / float64(streamNDV))
	}
	if eq {
		return defaultEqSelectivity
	}
	return defaultRangeSelectivity
}

func flipCompare(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// sourceLeaf finds the leaf plan (scan, window source, values, index
// scan) whose schema supplies the qualified column name.
func sourceLeaf(p Plan, name string) Plan {
	children := p.Children()
	if len(children) == 0 {
		if p.Schema().Has(name) {
			return p
		}
		return nil
	}
	for _, c := range children {
		if l := sourceLeaf(c, name); l != nil {
			return l
		}
	}
	return nil
}

// columnStatsForRef resolves a column reference to its source leaf's
// statistics: (cs, rowCount) for static tables, streamNDV for window
// sources. ok is false when no leaf supplies the column or no stats
// apply.
func columnStatsForRef(under Plan, cr *sql.ColumnRef, st *StatsStore) (cs *ColumnStats, rows int64, streamNDV int64, ok bool) {
	leaf := sourceLeaf(under, cr.FullName())
	if leaf == nil {
		return nil, 0, 0, false
	}
	switch l := leaf.(type) {
	case *ScanPlan:
		ts := st.Table(l.Table)
		if ts == nil {
			return nil, 0, 0, false
		}
		return ts.Col(cr.Name), ts.RowCount, 0, ts.Col(cr.Name) != nil
	case *IndexScanPlan:
		ts := st.Table(l.Table)
		if ts == nil {
			return nil, 0, 0, false
		}
		return ts.Col(cr.Name), ts.RowCount, 0, ts.Col(cr.Name) != nil
	case *WindowSourcePlan:
		if ndv := st.StreamColNDV(l.Name, cr.Name); ndv > 0 {
			return nil, 0, ndv, true
		}
		if ndv := st.StreamColNDV(l.Name, cr.FullName()); ndv > 0 {
			return nil, 0, ndv, true
		}
	}
	return nil, 0, 0, false
}

func columnStatsFor(under Plan, e sql.Expr, st *StatsStore) (cs *ColumnStats, rows int64, streamNDV int64, ok bool) {
	cr, isCol := e.(*sql.ColumnRef)
	if !isCol {
		return nil, 0, 0, false
	}
	return columnStatsForRef(under, cr, st)
}

// columnNDVFor returns the NDV of a column expression, 0 when unknown.
func columnNDVFor(under Plan, e sql.Expr, st *StatsStore) int64 {
	cs, _, streamNDV, ok := columnStatsFor(under, e, st)
	if !ok {
		return 0
	}
	if cs != nil {
		return cs.NDV
	}
	return streamNDV
}

// equiMatchFactor estimates the per-pair match probability of an
// equi-join: 1/max(NDV_left, NDV_right) per key, multiplied across keys.
func equiMatchFactor(j *HashJoinPlan, st *StatsStore, leftKeys, rightKeys []sql.Expr) float64 {
	f := 1.0
	for i := range leftKeys {
		nl := columnNDVFor(j.Left, leftKeys[i], st)
		nr := columnNDVFor(j.Right, rightKeys[i], st)
		if n := maxInt64(nl, nr); n > 0 {
			f *= 1 / float64(n)
		} else {
			f *= defaultEqSelectivity
		}
	}
	return clampSel(f)
}

// matchesPerProbe estimates how many base-table rows one left row's
// lookup returns: rows × Π 1/NDV over the lookup columns.
func matchesPerProbe(j *LookupJoinPlan, st *StatsStore) float64 {
	ts := st.Table(j.Table)
	rows := float64(defaultTableRows)
	if ts != nil {
		rows = float64(ts.RowCount)
	}
	sel := 1.0
	for _, col := range j.TableCols {
		if cs := ts.Col(col); cs != nil && cs.NDV > 0 {
			sel *= 1 / float64(cs.NDV)
		} else {
			sel *= defaultEqSelectivity
		}
	}
	return rows * clampSel(sel)
}

// groupEstimate bounds an aggregation's output by the product of the
// group columns' NDVs when resolvable, capped at the input cardinality.
func groupEstimate(a *AggregatePlan, inRows float64, st *StatsStore) float64 {
	if len(a.GroupExprs) == 0 {
		return 1
	}
	prod := 1.0
	for _, g := range a.GroupExprs {
		if n := columnNDVFor(a.Input, g, st); n > 0 {
			prod *= float64(n)
		} else {
			// Unknown group key: assume it alone explains the input.
			return inRows
		}
	}
	return math.Min(prod, inRows)
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// OptimizeWithStats applies the statistics-driven rewrites on top of an
// already-built (and adapted) physical plan:
//
//  1. index-scan choice: Filter(Scan) with constant equality conjuncts
//     whose estimated selectivity beats indexScanMaxSel becomes an
//     IndexScanPlan (adaptive indexing turns its probes into real O(1)
//     lookups, exactly as for lookup joins);
//  2. lookup-join reorder: a chain of lookup joins over one spine is
//     reordered by ascending estimated matches-per-probe, so the most
//     selective join shrinks the intermediate result first.
//
// Rewrites preserve result multiset but not row order or output column
// order; callers above resolve columns by name (projection, residuals),
// and the chain is never reordered at the plan root or directly under a
// Union, where positional layout is observable.
func OptimizeWithStats(p Plan, st *StatsStore) Plan {
	if st == nil {
		return p
	}
	return rewriteWithStats(p, nil, st)
}

func rewriteWithStats(p Plan, parent Plan, st *StatsStore) Plan {
	switch n := p.(type) {
	case *FilterPlan:
		if scan, ok := n.Input.(*ScanPlan); ok {
			if ix, ok := toIndexScan(n, scan, st); ok {
				return ix
			}
		}
		n.Input = rewriteWithStats(n.Input, n, st)
		return n
	case *ProjectPlan:
		n.Input = rewriteWithStats(n.Input, n, st)
		return n
	case *AliasPlan:
		return NewAliasPlan(rewriteWithStats(n.Input, n, st), n.Alias)
	case *SortPlan:
		n.Input = rewriteWithStats(n.Input, n, st)
		return n
	case *DistinctPlan:
		n.Input = rewriteWithStats(n.Input, n, st)
		return n
	case *LimitPlan:
		n.Input = rewriteWithStats(n.Input, n, st)
		return n
	case *AggregatePlan:
		return NewAggregatePlan(rewriteWithStats(n.Input, n, st), n.GroupExprs, n.Aggs)
	case *NestedLoopJoinPlan:
		return NewNestedLoopJoinPlan(
			rewriteWithStats(n.Left, n, st), rewriteWithStats(n.Right, n, st), n.On, n.LeftOuter)
	case *HashJoinPlan:
		return NewHashJoinPlan(
			rewriteWithStats(n.Left, n, st), rewriteWithStats(n.Right, n, st),
			n.LeftKeys, n.RightKeys, n.Residual, n.LeftOuter)
	case *UnionPlan:
		for i, in := range n.Inputs {
			n.Inputs[i] = rewriteWithStats(in, n, st)
		}
		return n
	case *LookupJoinPlan:
		out := n
		if _, isUnion := parent.(*UnionPlan); parent != nil && !isUnion {
			out = reorderLookupChain(n, st)
		}
		// Recurse below the chain's spine (every rewrite preserves the
		// spine's schema, so the chain members' cached schemas stay valid).
		inner := out
		for {
			lj, ok := inner.Left.(*LookupJoinPlan)
			if !ok {
				break
			}
			inner = lj
		}
		inner.Left = rewriteWithStats(inner.Left, inner, st)
		return out
	default:
		return p
	}
}

// toIndexScan rewrites Filter(Scan) into an IndexScanPlan when the
// filter contains constant equality conjuncts on scan columns whose
// combined estimated selectivity clears the threshold.
func toIndexScan(f *FilterPlan, scan *ScanPlan, st *StatsStore) (Plan, bool) {
	ts := st.Table(scan.Table)
	if ts == nil || ts.RowCount < indexScanMinRows {
		return nil, false
	}
	var cols []string
	var vals []relation.Value
	var rest []sql.Expr
	sel := 1.0
	for _, c := range SplitConjuncts(f.Pred) {
		col, lit, ok := constEquality(c, scan.Alias)
		if !ok {
			rest = append(rest, c)
			continue
		}
		cs := ts.Col(col)
		if cs == nil {
			rest = append(rest, c)
			continue
		}
		cols = append(cols, col)
		vals = append(vals, lit)
		sel *= cs.EqSelectivity(ts.RowCount, lit)
	}
	if len(cols) == 0 || clampSel(sel) > indexScanMaxSel {
		return nil, false
	}
	// The scan's schema is qualified by its alias; recover the bare
	// table schema for the constructor from the catalog-independent
	// qualified form.
	qualified := scan.Schema()
	bare := make([]relation.Column, len(qualified.Columns))
	prefix := strings.ToLower(scan.Alias) + "."
	for i, c := range qualified.Columns {
		name := c.Name
		if strings.HasPrefix(strings.ToLower(name), prefix) {
			name = name[len(prefix):]
		}
		bare[i] = relation.Column{Name: name, Type: c.Type}
	}
	return NewIndexScanPlan(scan.Table, scan.Alias,
		relation.Schema{Columns: bare}, cols, vals, sql.AndAll(rest...)), true
}

// constEquality matches `alias.col = literal` (either orientation)
// against the given alias, returning the bare column name and value.
func constEquality(e sql.Expr, alias string) (string, relation.Value, bool) {
	be, ok := e.(*sql.BinaryExpr)
	if !ok || be.Op != "=" {
		return "", relation.Null, false
	}
	col, lit := be.Left, be.Right
	if _, isLit := col.(*sql.Literal); isLit {
		col, lit = lit, col
	}
	cr, okCol := col.(*sql.ColumnRef)
	l, okLit := lit.(*sql.Literal)
	if !okCol || !okLit || l.Value.IsNull() {
		return "", relation.Null, false
	}
	if cr.Table != "" && !strings.EqualFold(cr.Table, alias) {
		return "", relation.Null, false
	}
	return cr.Name, l.Value, true
}

// reorderLookupChain reorders a maximal chain of lookup joins
// j_k(...(j_1(spine))) by ascending estimated matches-per-probe. Safe
// only when every member's keys and residual resolve against the spine
// alone (plus its own table), so any order is executable; otherwise the
// chain is returned untouched. The rebuilt chain concatenates table
// columns in the new order — consumers resolve by name.
func reorderLookupChain(top *LookupJoinPlan, st *StatsStore) *LookupJoinPlan {
	var chain []*LookupJoinPlan
	var spine Plan = top
	for {
		lj, ok := spine.(*LookupJoinPlan)
		if !ok {
			break
		}
		chain = append(chain, lj)
		spine = lj.Left
	}
	if len(chain) < 2 {
		return top
	}
	spineSchema := spine.Schema()
	for _, lj := range chain {
		for _, k := range lj.LeftKeys {
			if !ResolvesAgainst(k, spineSchema) {
				return top
			}
		}
		if lj.Residual != nil &&
			!ResolvesAgainst(lj.Residual, spineSchema.Concat(ownColumns(lj))) {
			return top
		}
	}
	order := make([]int, len(chain))
	for i := range order {
		order[i] = i
	}
	mpp := make([]float64, len(chain))
	for i, lj := range chain {
		mpp[i] = matchesPerProbe(lj, st)
	}
	sort.SliceStable(order, func(a, b int) bool { return mpp[order[a]] < mpp[order[b]] })
	same := true
	// chain[] is outermost-first; execution order is innermost-first.
	for i := range order {
		if order[i] != len(chain)-1-i {
			same = false
			break
		}
	}
	if same {
		return top
	}
	// Rebuild innermost-first: the most selective member (fewest
	// matches per probe, order[0]) executes first so every later probe
	// runs over the smallest possible intermediate result.
	cur := spine
	var rebuilt *LookupJoinPlan
	for _, idx := range order {
		lj := chain[idx]
		rebuilt = &LookupJoinPlan{
			Left: cur, Table: lj.Table, Alias: lj.Alias,
			LeftKeys: lj.LeftKeys, TableCols: lj.TableCols, Residual: lj.Residual,
			schema: cur.Schema().Concat(ownColumns(lj)),
		}
		cur = rebuilt
	}
	return rebuilt
}

// ownColumns returns the (already alias-qualified) columns a lookup
// join appends to its left input's schema.
func ownColumns(j *LookupJoinPlan) relation.Schema {
	full := j.Schema().Columns
	leftArity := j.Left.Schema().Arity()
	return relation.Schema{Columns: full[leftArity:]}
}

package engine

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// LookupJoinPlan joins a (typically small) left input against a base
// table by point lookups on the table's columns. When the table has a
// hash index on exactly those columns each probe is O(1); otherwise every
// probe scans, which is what ExaStream's adaptive indexing notices and
// fixes by building the index at runtime.
type LookupJoinPlan struct {
	Left      Plan
	Table     string
	Alias     string
	LeftKeys  []sql.Expr // evaluated against left rows
	TableCols []string   // bare column names in the base table
	Residual  sql.Expr
	schema    relation.Schema

	// Compiled on first Execute.
	leftKeys []CompiledExpr
	residual CompiledExpr
	compiled bool

	vleftKeys []vecExpr // columnar key kernels, compiled on first executeVec
}

// NewLookupJoinPlan builds the plan; tableSchema is the base table's
// (unqualified) schema.
func NewLookupJoinPlan(left Plan, table, alias string, tableSchema relation.Schema,
	leftKeys []sql.Expr, tableCols []string, residual sql.Expr) *LookupJoinPlan {
	name := alias
	if name == "" {
		name = table
	}
	return &LookupJoinPlan{
		Left: left, Table: table, Alias: name,
		LeftKeys: leftKeys, TableCols: tableCols, Residual: residual,
		schema: left.Schema().Concat(tableSchema.Qualify(name)),
	}
}

// Schema implements Plan.
func (j *LookupJoinPlan) Schema() relation.Schema { return j.schema }

// Children implements Plan.
func (j *LookupJoinPlan) Children() []Plan { return []Plan{j.Left} }

func (j *LookupJoinPlan) String() string {
	keys := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		keys[i] = j.LeftKeys[i].String() + "=" + j.Alias + "." + j.TableCols[i]
	}
	return fmt.Sprintf("LookupJoin(%s, %s)", j.Table, strings.Join(keys, ", "))
}

// Execute implements Plan.
func (j *LookupJoinPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpLookupJoin)
	leftRows, err := execChild(ctx, j.Left)
	if err != nil {
		return nil, err
	}
	table, err := ctx.Catalog.Get(j.Table)
	if err != nil {
		return nil, err
	}
	if !j.compiled {
		j.leftKeys = exprsFor(ctx, j.LeftKeys, j.Left.Schema())
		if j.Residual != nil {
			if j.residual, err = exprFor(ctx, j.Residual, j.schema); err != nil {
				return nil, err
			}
		}
		j.compiled = true
	}
	var out []relation.Tuple
	vals := make([]relation.Value, len(j.leftKeys))
	for _, lrow := range leftRows {
		skip := false
		for i, k := range j.leftKeys {
			v, err := k(lrow)
			if err != nil {
				return nil, err
			}
			if v.IsNull() {
				skip = true
				break
			}
			vals[i] = v
		}
		if skip {
			continue
		}
		matches, usedIndex, err := table.Lookup(j.TableCols, vals)
		if err != nil {
			return nil, err
		}
		if usedIndex {
			ctx.Stats.IndexLookups++
		} else {
			ctx.Stats.RowsScanned += int64(table.Len())
		}
		for _, rrow := range matches {
			joined := lrow.Concat(rrow)
			if j.residual != nil {
				v, err := j.residual(joined)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			out = append(out, joined)
		}
	}
	ctx.Stats.produced(OpLookupJoin, len(out))
	return out, nil
}

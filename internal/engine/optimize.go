package engine

import (
	"repro/internal/sql"
)

// Optimize applies the rewrite passes the paper calls out for executing
// unfolded query fleets efficiently (§2: "the queries ... can be very
// inefficient, e.g., they contain many redundant joins and unions"):
//
//  1. duplicate-union-branch elimination,
//  2. predicate pushdown through filters into join inputs,
//  3. cross-product + equality predicate → hash join conversion,
//  4. filter fusion (adjacent filters merge).
//
// Passes iterate to a fixpoint bounded by plan depth.
func Optimize(p Plan) Plan {
	for i := 0; i < 8; i++ {
		var changed bool
		p, changed = rewriteOnce(p)
		if !changed {
			break
		}
	}
	return p
}

func rewriteOnce(p Plan) (Plan, bool) {
	changed := false

	// Rewrite children first (bottom-up).
	switch n := p.(type) {
	case *FilterPlan:
		in, c := rewriteOnce(n.Input)
		if c {
			n.Input = in
			changed = true
		}
	case *ProjectPlan:
		in, c := rewriteOnce(n.Input)
		if c {
			n.Input = in
			changed = true
		}
	case *AliasPlan:
		in, c := rewriteOnce(n.Input)
		if c {
			*n = *NewAliasPlan(in, n.Alias)
			changed = true
		}
	case *SortPlan:
		in, c := rewriteOnce(n.Input)
		if c {
			n.Input = in
			changed = true
		}
	case *DistinctPlan:
		in, c := rewriteOnce(n.Input)
		if c {
			n.Input = in
			changed = true
		}
	case *LimitPlan:
		in, c := rewriteOnce(n.Input)
		if c {
			n.Input = in
			changed = true
		}
	case *AggregatePlan:
		in, c := rewriteOnce(n.Input)
		if c {
			*n = *NewAggregatePlan(in, n.GroupExprs, n.Aggs)
			changed = true
		}
	case *NestedLoopJoinPlan:
		l, c1 := rewriteOnce(n.Left)
		r, c2 := rewriteOnce(n.Right)
		if c1 || c2 {
			*n = *NewNestedLoopJoinPlan(l, r, n.On, n.LeftOuter)
			changed = true
		}
	case *HashJoinPlan:
		l, c1 := rewriteOnce(n.Left)
		r, c2 := rewriteOnce(n.Right)
		if c1 || c2 {
			*n = *NewHashJoinPlan(l, r, n.LeftKeys, n.RightKeys, n.Residual, n.LeftOuter)
			changed = true
		}
	case *UnionPlan:
		for i, in := range n.Inputs {
			ri, c := rewriteOnce(in)
			if c {
				n.Inputs[i] = ri
				changed = true
			}
		}
	}

	// Local rewrites at this node.
	if out, c := rewriteNode(p); c {
		return out, true
	}
	return p, changed
}

func rewriteNode(p Plan) (Plan, bool) {
	switch n := p.(type) {
	case *UnionPlan:
		if out, c := dedupUnion(n); c {
			return out, true
		}
	case *FilterPlan:
		// Fuse adjacent filters.
		if inner, ok := n.Input.(*FilterPlan); ok {
			return &FilterPlan{Input: inner.Input, Pred: sql.AndAll(inner.Pred, n.Pred)}, true
		}
		// Push predicates into join inputs and convert cross joins.
		if j, ok := n.Input.(*NestedLoopJoinPlan); ok && !j.LeftOuter {
			if out, c := pushIntoJoin(n, j); c {
				return out, true
			}
		}
	}
	return p, false
}

// dedupUnion removes syntactically identical union branches (Distinct
// semantics) and collapses a single-branch union. For UNION ALL, branch
// multiplicity matters, so only exact whole-plan duplicates under
// Distinct are removed.
func dedupUnion(u *UnionPlan) (Plan, bool) {
	if !u.Distinct && len(u.Inputs) > 1 {
		return u, false
	}
	seen := map[string]bool{}
	var kept []Plan
	for _, in := range u.Inputs {
		sig := Explain(in)
		if u.Distinct && seen[sig] {
			continue
		}
		seen[sig] = true
		kept = append(kept, in)
	}
	if len(kept) == 1 && u.Distinct {
		return &DistinctPlan{Input: kept[0]}, true
	}
	if len(kept) != len(u.Inputs) {
		return &UnionPlan{Inputs: kept, Distinct: u.Distinct}, true
	}
	return u, false
}

// pushIntoJoin distributes a filter's conjuncts over a cross/nested-loop
// join: conjuncts referencing only one side push into that side; equality
// conjuncts across sides become hash-join keys; the rest stays above.
func pushIntoJoin(f *FilterPlan, j *NestedLoopJoinPlan) (Plan, bool) {
	conjuncts := SplitConjuncts(sql.AndAll(f.Pred, j.On))
	var leftOnly, rightOnly, cross []sql.Expr
	ls, rs := j.Left.Schema(), j.Right.Schema()
	for _, c := range conjuncts {
		switch {
		case ResolvesAgainst(c, ls):
			leftOnly = append(leftOnly, c)
		case ResolvesAgainst(c, rs):
			rightOnly = append(rightOnly, c)
		default:
			cross = append(cross, c)
		}
	}
	if len(leftOnly) == 0 && len(rightOnly) == 0 && len(cross) == len(conjuncts) {
		// Nothing to push; try converting to a hash join anyway.
		lk, rk, residual := ExtractEquiKeys(sql.AndAll(cross...), ls, rs)
		if len(lk) == 0 {
			return f, false
		}
		return NewHashJoinPlan(j.Left, j.Right, lk, rk, residual, false), true
	}
	left := j.Left
	if len(leftOnly) > 0 {
		left = &FilterPlan{Input: left, Pred: sql.AndAll(leftOnly...)}
	}
	right := j.Right
	if len(rightOnly) > 0 {
		right = &FilterPlan{Input: right, Pred: sql.AndAll(rightOnly...)}
	}
	lk, rk, residual := ExtractEquiKeys(sql.AndAll(cross...), ls, rs)
	if len(lk) > 0 {
		return NewHashJoinPlan(left, right, lk, rk, residual, false), true
	}
	var out Plan = NewNestedLoopJoinPlan(left, right, sql.AndAll(cross...), false)
	return out, true
}

// CountOperators returns the number of nodes in a plan tree; benchmarks
// use it to quantify optimisation effects.
func CountOperators(p Plan) int {
	n := 1
	for _, c := range p.Children() {
		n += CountOperators(c)
	}
	return n
}

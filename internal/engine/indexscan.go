package engine

import (
	"fmt"
	"strings"

	"repro/internal/relation"
	"repro/internal/sql"
)

// IndexScanPlan reads the rows of a base table matching constant
// equality predicates through Table.Lookup, so a hash index on exactly
// those columns serves the scan in O(matches) instead of O(table). The
// stats-driven optimizer emits it in place of Filter(Scan) when the
// predicate is estimated selective enough to beat a full scan; like
// LookupJoinPlan, a missing index degrades to a scan that the adaptive
// indexer notices and fixes.
type IndexScanPlan struct {
	Table string
	Alias string
	Cols  []string         // bare column names in the base table
	Vals  []relation.Value // constants matched against Cols
	// Residual holds the predicate conjuncts the lookup does not cover,
	// applied to each matching row (references qualified columns).
	Residual sql.Expr
	schema   relation.Schema

	residual CompiledExpr // compiled on first Execute
	compiled bool
}

// NewIndexScanPlan builds an index scan; tableSchema is the base
// table's (unqualified) schema.
func NewIndexScanPlan(table, alias string, tableSchema relation.Schema,
	cols []string, vals []relation.Value, residual sql.Expr) *IndexScanPlan {
	name := alias
	if name == "" {
		name = table
	}
	return &IndexScanPlan{
		Table: table, Alias: name, Cols: cols, Vals: vals, Residual: residual,
		schema: tableSchema.Qualify(name),
	}
}

// Schema implements Plan.
func (s *IndexScanPlan) Schema() relation.Schema { return s.schema }

// Children implements Plan.
func (s *IndexScanPlan) Children() []Plan { return nil }

func (s *IndexScanPlan) String() string {
	preds := make([]string, len(s.Cols))
	for i := range s.Cols {
		preds[i] = s.Alias + "." + s.Cols[i] + "=" + s.Vals[i].String()
	}
	out := fmt.Sprintf("IndexScan(%s, %s)", s.Table, strings.Join(preds, ", "))
	if s.Residual != nil {
		out += " residual=" + s.Residual.String()
	}
	return out
}

// Execute implements Plan.
func (s *IndexScanPlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpIndexScan)
	t, err := ctx.Catalog.Get(s.Table)
	if err != nil {
		return nil, err
	}
	if !s.compiled {
		if s.Residual != nil {
			if s.residual, err = exprFor(ctx, s.Residual, s.schema); err != nil {
				return nil, err
			}
		}
		s.compiled = true
	}
	matches, usedIndex, err := t.Lookup(s.Cols, s.Vals)
	if err != nil {
		return nil, err
	}
	if usedIndex {
		ctx.Stats.IndexLookups++
	} else {
		ctx.Stats.RowsScanned += int64(t.Len())
	}
	out := matches
	if s.residual != nil {
		out = nil
		for _, row := range matches {
			v, err := s.residual(row)
			if err != nil {
				return nil, err
			}
			if v.Truthy() {
				out = append(out, row)
			}
		}
	}
	ctx.Stats.produced(OpIndexScan, len(out))
	return out, nil
}

// CollectIndexScans returns every IndexScanPlan in a plan tree; the
// stream engine feeds their (table, cols) patterns to the adaptive
// indexer exactly like lookup-join probes.
func CollectIndexScans(p Plan) []*IndexScanPlan {
	var out []*IndexScanPlan
	var rec func(Plan)
	rec = func(p Plan) {
		if s, ok := p.(*IndexScanPlan); ok {
			out = append(out, s)
		}
		for _, c := range p.Children() {
			rec(c)
		}
	}
	rec(p)
	return out
}

package engine

import "repro/internal/relation"

// WindowSourcePlan is a rebindable leaf: a scan whose rows are swapped
// out between executions. It lets a continuous query's physical plan be
// built and optimized once, then re-executed every window tick by
// rebinding the current window batch — the compile-once/execute-many
// contract of the streaming pipeline. Bind and Execute must not race;
// the stream engine serializes them under the owning query's execution
// lock.
type WindowSourcePlan struct {
	Name   string
	schema relation.Schema
	rows   []relation.Tuple
	cols   *relation.ColBatch

	// executeVec scratch, reused across serialized executions (see the
	// concurrency contract in vec.go).
	vf vecFrame
}

// NewWindowSourcePlan creates an unbound window source with a fixed
// schema (already qualified with the stream alias).
func NewWindowSourcePlan(name string, schema relation.Schema) *WindowSourcePlan {
	return &WindowSourcePlan{Name: name, schema: schema}
}

// Bind points the source at the rows of the current window batch. The
// slice is retained, not copied; callers must not mutate it until the
// next Bind. Any previously bound column batch is dropped so a
// row-only rebind can never serve stale columns.
func (w *WindowSourcePlan) Bind(rows []relation.Tuple) {
	w.rows = rows
	w.cols = nil
}

// BindColumns attaches the columnar form of the bound batch. The
// vectorized path reads it directly; when absent, executeVec transposes
// the bound rows itself. Callers pass the batch's shared transpose so
// every query over the same window reuses one columnar copy.
func (w *WindowSourcePlan) BindColumns(cb *relation.ColBatch) { w.cols = cb }

func (w *WindowSourcePlan) Schema() relation.Schema { return w.schema }

func (w *WindowSourcePlan) Execute(ctx *ExecContext) ([]relation.Tuple, error) {
	ctx.Stats.enter(OpWindowSource)
	ctx.Stats.RowsScanned += int64(len(w.rows))
	ctx.Stats.produced(OpWindowSource, len(w.rows))
	return w.rows, nil
}

func (w *WindowSourcePlan) Children() []Plan { return nil }

// String is deliberately independent of the currently bound batch:
// optimizer signatures (e.g. union dedup) compare plan strings, and two
// sources over the same stream reference stay interchangeable across
// ticks.
func (w *WindowSourcePlan) String() string { return "WindowSource(" + w.Name + ")" }

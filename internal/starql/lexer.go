package starql

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tEOF    tokKind = iota
	tIdent          // keywords, prefixed names, plain names
	tVar            // ?x or $x (Text holds the name without the sigil)
	tParam          // $x specifically (macro parameter)
	tIRI            // <...>
	tString         // "..." with optional ^^datatype (datatype in Extra)
	tNumber
	tPunct
)

type token struct {
	kind  tokKind
	text  string
	extra string // datatype IRI or CURIE for typed strings
	pos   int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// isIdentChar reports characters allowed inside prefixed names and
// keywords. ':' supports CURIEs; '-' supports names like S_out-1.
func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == ':' || c == '#' || c == '/'
}

// lex tokenises STARQL text.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '#' && (i == 0 || src[i-1] == '\n' || src[i-1] == ' '):
			// Line comment only at line/space boundary ('#' also occurs
			// inside IRIs and CURIEs, which are lexed elsewhere).
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '<' && isIRIBody(src[i+1:]):
			j := strings.IndexByte(src[i:], '>')
			toks = append(toks, token{tIRI, src[i+1 : i+j], "", i})
			i += j + 1
		case c == '"':
			text, extra, n, err := lexString(src[i:])
			if err != nil {
				return nil, fmt.Errorf("starql: %v at offset %d", err, i)
			}
			toks = append(toks, token{tString, text, extra, i})
			i += n
		case c == '?' || c == '$':
			j := i + 1
			for j < len(src) && isNameChar(src[j]) {
				j++
			}
			if j == i+1 {
				return nil, fmt.Errorf("starql: empty variable at offset %d", i)
			}
			kind := tVar
			if c == '$' {
				kind = tParam
			}
			toks = append(toks, token{kind, src[i+1 : j], "", i})
			i = j
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.') {
				j++
			}
			// A trailing '.' is a statement dot, not part of the number.
			if j > i && src[j-1] == '.' {
				j--
			}
			toks = append(toks, token{tNumber, src[i:j], "", i})
			i = j
		case isIdentStart(c):
			j := i
			for j < len(src) {
				if isIdentChar(src[j]) {
					j++
					continue
				}
				// '.' joins identifier segments only when surrounded by
				// ident chars (MONOTONIC.HAVING), not as a triple dot.
				if src[j] == '.' && j+1 < len(src) && j > i && isIdentStart(src[j+1]) {
					j++
					continue
				}
				break
			}
			text := src[i:j]
			// A lone ':' is punctuation ("?y :" after a FORALL var list).
			if text == ":" {
				toks = append(toks, token{tPunct, ":", "", i})
				i = j
				break
			}
			// A trailing ':' is clause punctuation ("IN SEQ:"), not part
			// of a CURIE; split it off.
			if len(text) > 1 && strings.HasSuffix(text, ":") {
				toks = append(toks, token{tIdent, text[:len(text)-1], "", i})
				toks = append(toks, token{tPunct, ":", "", j - 1})
			} else {
				toks = append(toks, token{tIdent, text, "", i})
			}
			i = j
		default:
			for _, op := range []string{"->", "<=", ">=", "!=", "="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, token{tPunct, op, "", i})
					i += len(op)
					goto next
				}
			}
			if strings.ContainsRune("{}[](),.;:<>-+*", rune(c)) {
				toks = append(toks, token{tPunct, string(c), "", i})
				i++
				goto next
			}
			return nil, fmt.Errorf("starql: unexpected character %q at offset %d", string(c), i)
		next:
		}
	}
	toks = append(toks, token{tEOF, "", "", len(src)})
	return toks, nil
}

// isIRIBody reports whether the text after '<' looks like an IRI body:
// a '>' occurs before any whitespace. Otherwise '<' is the comparison
// operator.
func isIRIBody(rest string) bool {
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r', '=', '?', '$':
			return false
		}
	}
	return false
}

func isIdentStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':'
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}

// lexString reads "..." with optional ^^<iri> or ^^curie suffix; returns
// the body, the datatype, and the consumed byte count.
func lexString(src string) (body, datatype string, n int, err error) {
	j := 1
	var sb strings.Builder
	for j < len(src) {
		if src[j] == '\\' && j+1 < len(src) {
			sb.WriteByte(src[j+1])
			j += 2
			continue
		}
		if src[j] == '"' {
			j++
			if strings.HasPrefix(src[j:], "^^") {
				j += 2
				if j < len(src) && src[j] == '<' {
					k := strings.IndexByte(src[j:], '>')
					if k < 0 {
						return "", "", 0, fmt.Errorf("unterminated datatype IRI")
					}
					datatype = src[j+1 : j+k]
					j += k + 1
				} else {
					k := j
					for k < len(src) && isIdentChar(src[k]) {
						k++
					}
					datatype = src[j:k]
					j = k
				}
			}
			return sb.String(), datatype, j, nil
		}
		sb.WriteByte(src[j])
		j++
	}
	return "", "", 0, fmt.Errorf("unterminated string literal")
}

// Package starql implements the STARQL query language of the paper
// (Özçep, Möller, Neuenstadt [12]): continuous semantic queries that
// blend streaming and static data over an OWL 2 QL ontology, with
// window operators, pulse declarations, sequencing (StdSeq), and
// HAVING conditions with EXISTS/FORALL quantification over window
// states — the language of the paper's Figure 1.
//
// The package provides the parser, the semantic checks, the sequence
// evaluator for HAVING conditions, and the STARQL→SQL(+) translator that
// performs enrichment (PerfectRef) and unfolding (GAV mappings).
package starql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Node is a term position in a triple pattern: a variable, an IRI, or a
// literal.
type Node struct {
	Var  string   // "?x" style variables, stored without '?'
	Term rdf.Term // constant when Var == ""
}

// NVar returns a variable node.
func NVar(name string) Node { return Node{Var: name} }

// NTerm returns a constant node.
func NTerm(t rdf.Term) Node { return Node{Term: t} }

// IsVar reports whether the node is a variable.
func (n Node) IsVar() bool { return n.Var != "" }

// String renders the node.
func (n Node) String() string {
	if n.IsVar() {
		return "?" + n.Var
	}
	return n.Term.String()
}

// TriplePattern is one BGP or CONSTRUCT pattern. An empty Object (zero
// Node) with a non-empty predicate denotes the two-element form
// "?s sie:showsFailure", read as ∃o: (s, p, o).
type TriplePattern struct {
	S, P, O  Node
	NoObject bool // two-element form
	TypeAtom bool // "?s a Class" (P holds the class IRI)
}

// String renders the pattern.
func (t TriplePattern) String() string {
	if t.TypeAtom {
		return t.S.String() + " a " + t.P.String()
	}
	if t.NoObject {
		return t.S.String() + " " + t.P.String()
	}
	return t.S.String() + " " + t.P.String() + " " + t.O.String()
}

// StreamClause is one "FROM STREAM s [NOW-range, NOW]->slide" input.
type StreamClause struct {
	Name    string
	RangeMS int64
	SlideMS int64
}

// PulseClause is "USING PULSE WITH START = ..., FREQUENCY = ...".
type PulseClause struct {
	StartMS     int64
	FrequencyMS int64
}

// Query is a parsed STARQL CREATE STREAM statement.
type Query struct {
	Name         string
	Construct    []TriplePattern
	Streams      []StreamClause
	StaticIRI    string
	OntologyIRI  string
	Pulse        *PulseClause
	Where        []TriplePattern
	WhereFilters []FilterPattern
	SequenceBy   string // sequencing method, e.g. "StdSeq"
	SeqAlias     string // "AS seq"
	Having       HavingExpr

	// Aggregates holds macro definitions from CREATE AGGREGATE
	// statements parsed alongside the query.
	Aggregates map[string]*AggregateDef

	Prefixes rdf.PrefixMap
}

// FilterPattern is a WHERE-clause FILTER(?x op literal) condition on the
// static bindings.
type FilterPattern struct {
	Arg   Node
	Op    string
	Value Node
}

// String renders the filter.
func (f FilterPattern) String() string {
	return "FILTER(" + f.Arg.String() + " " + f.Op + " " + f.Value.String() + ")"
}

// AggregateDef is a "CREATE AGGREGATE NAME:SUB ($a, $b) AS HAVING body"
// macro: the body is a HAVING expression with $-parameters.
type AggregateDef struct {
	Name   string // canonical "MONOTONIC.HAVING"
	Params []string
	Body   HavingExpr
}

// WhereVars returns the distinct variables of the WHERE clause in order
// of first appearance.
func (q *Query) WhereVars() []string {
	seen := map[string]bool{}
	var out []string
	add := func(n Node) {
		if n.IsVar() && !seen[n.Var] {
			seen[n.Var] = true
			out = append(out, n.Var)
		}
	}
	for _, t := range q.Where {
		add(t.S)
		if !t.TypeAtom {
			add(t.P)
			if !t.NoObject {
				add(t.O)
			}
		}
	}
	return out
}

// Validate performs the semantic checks the paper's query formulation
// layer applies before enrichment.
func (q *Query) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("starql: output stream has no name")
	}
	if len(q.Streams) == 0 {
		return fmt.Errorf("starql: query %s reads no stream", q.Name)
	}
	for _, s := range q.Streams {
		if s.RangeMS <= 0 || s.SlideMS <= 0 {
			return fmt.Errorf("starql: query %s: window range and slide must be positive", q.Name)
		}
	}
	if q.Pulse != nil && q.Pulse.FrequencyMS <= 0 {
		return fmt.Errorf("starql: query %s: pulse frequency must be positive", q.Name)
	}
	if len(q.Construct) == 0 {
		return fmt.Errorf("starql: query %s constructs nothing", q.Name)
	}
	// CONSTRUCT variables must be bound in WHERE or HAVING scope.
	whereVars := map[string]bool{}
	for _, v := range q.WhereVars() {
		whereVars[v] = true
	}
	for _, f := range q.WhereFilters {
		if f.Arg.IsVar() && !whereVars[f.Arg.Var] {
			return fmt.Errorf("starql: query %s: FILTER variable ?%s not bound in WHERE", q.Name, f.Arg.Var)
		}
		if f.Value.IsVar() {
			return fmt.Errorf("starql: query %s: FILTER right-hand side must be a constant", q.Name)
		}
	}
	for _, t := range q.Construct {
		for _, n := range []Node{t.S, t.P, t.O} {
			if n.IsVar() && !whereVars[n.Var] {
				return fmt.Errorf("starql: query %s: CONSTRUCT variable ?%s not bound in WHERE", q.Name, n.Var)
			}
		}
	}
	if q.Having != nil {
		if err := q.Having.check(&checkCtx{
			stateVars: map[string]bool{},
			valueVars: map[string]bool{},
			whereVars: whereVars,
			aggs:      q.Aggregates,
		}); err != nil {
			return fmt.Errorf("starql: query %s: HAVING: %w", q.Name, err)
		}
	}
	return nil
}

// String reassembles a readable form of the query (not a verbatim echo).
func (q *Query) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CREATE STREAM %s AS\n", q.Name)
	sb.WriteString("CONSTRUCT GRAPH NOW {")
	for i, t := range q.Construct {
		if i > 0 {
			sb.WriteString(" . ")
		}
		sb.WriteString(" " + t.String())
	}
	sb.WriteString(" }\n")
	for _, s := range q.Streams {
		fmt.Fprintf(&sb, "FROM STREAM %s [NOW-%dms, NOW]->%dms\n", s.Name, s.RangeMS, s.SlideMS)
	}
	if q.Pulse != nil {
		fmt.Fprintf(&sb, "USING PULSE WITH START = %dms, FREQUENCY = %dms\n", q.Pulse.StartMS, q.Pulse.FrequencyMS)
	}
	sb.WriteString("WHERE {")
	for i, t := range q.Where {
		if i > 0 {
			sb.WriteString(" . ")
		}
		sb.WriteString(" " + t.String())
	}
	sb.WriteString(" }\n")
	if q.SequenceBy != "" {
		fmt.Fprintf(&sb, "SEQUENCE BY %s AS %s\n", q.SequenceBy, q.SeqAlias)
	}
	if q.Having != nil {
		sb.WriteString("HAVING " + q.Having.String() + "\n")
	}
	return sb.String()
}

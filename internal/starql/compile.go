package starql

import (
	"fmt"
	"sync"

	"repro/internal/rdf"
	"repro/internal/relation"
)

// This file lowers a checked HAVING condition into a compile-once,
// evaluate-many program, mirroring how internal/engine compiles
// relational expressions (DESIGN.md §8/§10). The tree interpreter in
// sequence.go (matches) stays as the reference semantics and the
// differential-test oracle; the compiler must agree with it on every
// well-formed condition.
//
// Two costs dominate the interpreter on the Figure 1 workload: every
// quantifier iteration and every generator atom allocates a child
// environment by copying two maps (evalEnv.child), and aggregate macros
// re-substitute their body on every call. The compiled form removes
// both: variables live in integer-indexed frame slots resolved at
// compile time (bindings are written and restored in place while
// backtracking), and macros are expanded exactly once, at compile time.
//
// The program is built in continuation-passing style: compiling a node
// bakes in the continuation that consumes each solution, so conjunction
// chains, disjunction alternatives, and generator loops become static
// closure graphs with no per-evaluation closure allocation. Generator
// semantics follow matches() exactly: a graph atom with a fresh object
// variable emits one solution per value; quantifiers bind their state
// slots, explore, and restore before yielding to the continuation
// (matches() likewise returns the *original* environment from EXISTS /
// FORALL).
//
// One documented deviation: the compiled program short-circuits
// disjunctions and quantifier searches, so a branch that would error at
// runtime is not evaluated once an earlier branch already satisfied the
// condition; the interpreter, which materialises full solution lists,
// reports such errors. Conditions that pass Query.Validate only error
// on genuinely malformed constructs (e.g. an unguarded FORALL with
// value variables), where both forms fail identically.

// maxMacroExpansionDepth bounds compile-time aggregate-macro expansion
// so a (hypothetical) self-referential macro cannot hang compilation.
const maxMacroExpansionDepth = 64

// chVal is a value-variable slot: ok reports whether the slot is bound.
type chVal struct {
	v  relation.Value
	ok bool
}

// chTerm is a WHERE-binding slot, filled once per Eval.
type chTerm struct {
	t  rdf.Term
	ok bool
}

// chEnv is the slot-indexed evaluation frame: the compiled program's
// replacement for evalEnv. States holds one index per state variable
// (-1 = unbound), values one slot per value variable, binding one slot
// per referenced WHERE variable.
type chEnv struct {
	seq     *Sequence
	states  []int
	values  []chVal
	binding []chTerm
}

// chProg evaluates the residual program under env, feeding every
// solution to its statically-baked continuation; it reports whether any
// solution was accepted.
type chProg func(env *chEnv) (bool, error)

// chValFn resolves a node to a comparable value (resolveValue).
type chValFn func(env *chEnv) (relation.Value, error)

// chIRIFn resolves a node to a subject IRI string (resolveIRI).
type chIRIFn func(env *chEnv) (string, error)

// contAccept is the terminal continuation: the first solution wins.
func contAccept(*chEnv) (bool, error) { return true, nil }

// CompiledHaving is a HAVING condition lowered to a flat closure
// program over slot-indexed environment frames. It is immutable after
// CompileHaving and safe for concurrent Eval calls (frames are pooled
// per evaluation).
type CompiledHaving struct {
	prog      chProg
	numStates int
	numValues int
	bindNames []string
	pool      sync.Pool
}

// CompileHaving compiles a checked HAVING condition, pre-expanding
// aggregate macros from defs. The returned program evaluates the same
// conditions as EvalHaving; keep the interpreter for debugging and as
// the differential oracle (see TestCompiledHavingMatchesInterpreter).
func CompileHaving(h HavingExpr, defs map[string]*AggregateDef) *CompiledHaving {
	c := &havingCompiler{
		states: map[string]int{},
		values: map[string]int{},
		binds:  map[string]int{},
		aggs:   defs,
	}
	prog := c.compile(h, contAccept)
	ch := &CompiledHaving{
		prog:      prog,
		numStates: len(c.states),
		numValues: len(c.values),
		bindNames: c.bindNames,
	}
	ch.pool.New = func() any {
		return &chEnv{
			states:  make([]int, ch.numStates),
			values:  make([]chVal, ch.numValues),
			binding: make([]chTerm, len(ch.bindNames)),
		}
	}
	return ch
}

// Slots reports the compiled frame layout: state-variable, value-
// variable, and WHERE-binding slot counts.
func (ch *CompiledHaving) Slots() (states, values, bindings int) {
	return ch.numStates, ch.numValues, len(ch.bindNames)
}

// Eval evaluates the compiled condition over a sequence under a WHERE
// binding. Equivalent to EvalHaving on the source condition.
func (ch *CompiledHaving) Eval(seq *Sequence, binding Binding) (bool, error) {
	env := ch.pool.Get().(*chEnv)
	env.seq = seq
	for i := range env.states {
		env.states[i] = -1
	}
	for i := range env.values {
		env.values[i] = chVal{}
	}
	for i, name := range ch.bindNames {
		if t, ok := binding[name]; ok {
			env.binding[i] = chTerm{t, true}
		} else {
			env.binding[i] = chTerm{}
		}
	}
	ok, err := ch.prog(env)
	env.seq = nil
	ch.pool.Put(env)
	return ok, err
}

// havingCompiler allocates frame slots while walking the condition.
// Slots are keyed by variable name: combined with save/restore at every
// binding site this reproduces the interpreter's dynamic scoping
// (nested binders shadow, siblings reuse).
type havingCompiler struct {
	states    map[string]int
	values    map[string]int
	binds     map[string]int
	bindNames []string
	aggs      map[string]*AggregateDef
	depth     int // macro expansion depth
}

func (c *havingCompiler) stateSlot(name string) int {
	if i, ok := c.states[name]; ok {
		return i
	}
	i := len(c.states)
	c.states[name] = i
	return i
}

func (c *havingCompiler) valueSlot(name string) int {
	if i, ok := c.values[name]; ok {
		return i
	}
	i := len(c.values)
	c.values[name] = i
	return i
}

func (c *havingCompiler) bindSlot(name string) int {
	if i, ok := c.binds[name]; ok {
		return i
	}
	i := len(c.binds)
	c.binds[name] = i
	c.bindNames = append(c.bindNames, name)
	return i
}

// errProg defers a compile-time-detected fault to evaluation time, so
// the compiled program errors exactly where the interpreter does.
func errProg(err error) chProg {
	return func(*chEnv) (bool, error) { return false, err }
}

// compile lowers h with continuation k. The continuation is static —
// conjunction threads it, generators call it per solution — so the
// whole program is one closure graph built once.
func (c *havingCompiler) compile(h HavingExpr, k chProg) chProg {
	switch x := h.(type) {
	case *AndExpr:
		return c.compile(x.L, c.compile(x.R, k))
	case *OrExpr:
		l := c.compile(x.L, k)
		r := c.compile(x.R, k)
		return func(env *chEnv) (bool, error) {
			ok, err := l(env)
			if err != nil || ok {
				return ok, err
			}
			return r(env)
		}
	case *NotExpr:
		// Negation as failure: succeed with the frame unchanged iff the
		// sub-program has no solution (generators restore their slots).
		sub := c.compile(x.E, contAccept)
		return func(env *chEnv) (bool, error) {
			ok, err := sub(env)
			if err != nil {
				return false, err
			}
			if ok {
				return false, nil
			}
			return k(env)
		}
	case *ExistsExpr:
		slot := c.stateSlot(x.StateVar)
		cond := c.compile(x.Cond, contAccept)
		return func(env *chEnv) (bool, error) {
			old := env.states[slot]
			found := false
			var err error
			for i := range env.seq.States {
				env.states[slot] = i
				found, err = cond(env)
				if err != nil || found {
					break
				}
			}
			env.states[slot] = old
			if err != nil {
				return false, err
			}
			if found {
				// As in matches(): the quantifier yields the original
				// frame, its state binding does not escape.
				return k(env)
			}
			return false, nil
		}
	case *ForallExpr:
		return c.compileForall(x, k)
	case *ifThenExpr:
		fail := c.compileGuardFail(x.guard, x.then)
		return func(env *chEnv) (bool, error) {
			bad, err := fail(env)
			if err != nil {
				return false, err
			}
			if bad {
				return false, nil
			}
			return k(env)
		}
	case *GraphAtom:
		return c.compileGraphAtom(x, k)
	case *Comparison:
		return c.compileComparison(x, k)
	case *AggCall:
		return c.compileAggCall(x, k)
	default:
		return errProg(fmt.Errorf("starql: cannot evaluate %T", h))
	}
}

// compileGuardFail compiles "some guard solution falsifies then": the
// building block of guarded implication (FORALL ... IF/THEN and the
// standalone IF/THEN carrier). The guard runs with a continuation that
// tests the conclusion and keeps backtracking while it holds, so the
// search stops at the first counterexample.
func (c *havingCompiler) compileGuardFail(guard, then HavingExpr) chProg {
	concl := c.compile(then, contAccept)
	return c.compile(guard, func(env *chEnv) (bool, error) {
		ok, err := concl(env)
		if err != nil {
			return false, err
		}
		return !ok, nil
	})
}

func (c *havingCompiler) compileForall(f *ForallExpr, k chProg) chProg {
	var check chProg
	switch {
	case f.Guard != nil:
		fail := c.compileGuardFail(f.Guard, f.Conclusion)
		check = func(env *chEnv) (bool, error) {
			bad, err := fail(env)
			if err != nil {
				return false, err
			}
			return !bad, nil
		}
	case len(f.ValueVars) > 0:
		check = errProg(fmt.Errorf("starql: FORALL with value variables requires an IF guard"))
	default:
		check = c.compile(f.Conclusion, contAccept)
	}
	s1 := c.stateSlot(f.StateVar1)
	if f.StateVar2 == "" {
		return func(env *chEnv) (bool, error) {
			old := env.states[s1]
			for i := range env.seq.States {
				env.states[s1] = i
				ok, err := check(env)
				if err != nil || !ok {
					env.states[s1] = old
					return false, err
				}
			}
			env.states[s1] = old
			return k(env)
		}
	}
	s2 := c.stateSlot(f.StateVar2)
	strict, weak := f.Rel == "<", f.Rel == "<="
	return func(env *chEnv) (bool, error) {
		old1, old2 := env.states[s1], env.states[s2]
		n := len(env.seq.States)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if strict && i >= j {
					continue
				}
				if weak && i > j {
					continue
				}
				env.states[s1], env.states[s2] = i, j
				ok, err := check(env)
				if err != nil || !ok {
					env.states[s1], env.states[s2] = old1, old2
					return false, err
				}
			}
		}
		env.states[s1], env.states[s2] = old1, old2
		return k(env)
	}
}

func (c *havingCompiler) compileGraphAtom(g *GraphAtom, k chProg) chProg {
	sslot := c.stateSlot(g.StateVar)
	subj := c.compileIRI(g.Pattern.S)
	unboundState := fmt.Errorf("starql: unbound state variable ?%s", g.StateVar)
	var predErr error
	var pred string
	if g.Pattern.P.IsVar() {
		predErr = fmt.Errorf("starql: variable predicate in graph atom")
	} else {
		pred = g.Pattern.P.Term.Value
	}
	// vals resolves the atom's value list at the bound state, preserving
	// the interpreter's error order (state, then subject, then predicate).
	vals := func(env *chEnv) ([]relation.Value, error) {
		idx := env.states[sslot]
		if idx < 0 {
			return nil, unboundState
		}
		s, err := subj(env)
		if err != nil {
			return nil, err
		}
		if predErr != nil {
			return nil, predErr
		}
		return env.seq.States[idx].Values(s, pred), nil
	}
	if g.Pattern.TypeAtom || g.Pattern.NoObject {
		return func(env *chEnv) (bool, error) {
			vs, err := vals(env)
			if err != nil {
				return false, err
			}
			if len(vs) > 0 {
				return k(env)
			}
			return false, nil
		}
	}
	obj := g.Pattern.O
	if obj.IsVar() {
		vslot := c.valueSlot(obj.Var)
		return func(env *chEnv) (bool, error) {
			vs, err := vals(env)
			if err != nil {
				return false, err
			}
			if bound := env.values[vslot]; bound.ok {
				for _, v := range vs {
					if relation.Equal(v, bound.v) {
						return k(env)
					}
				}
				return false, nil
			}
			// Generator position: one solution per value, restoring the
			// slot while backtracking (evalEnv.child without the copies).
			for _, v := range vs {
				env.values[vslot] = chVal{v, true}
				ok, err := k(env)
				if err != nil || ok {
					env.values[vslot] = chVal{}
					return ok, err
				}
			}
			env.values[vslot] = chVal{}
			return false, nil
		}
	}
	want := termToValue(obj.Term)
	return func(env *chEnv) (bool, error) {
		vs, err := vals(env)
		if err != nil {
			return false, err
		}
		for _, v := range vs {
			if relation.Equal(v, want) {
				return k(env)
			}
		}
		return false, nil
	}
}

func (c *havingCompiler) compileComparison(cm *Comparison, k chProg) chProg {
	right := c.compileValue(cm.Right)
	lefts := make([]chValFn, len(cm.Left))
	for i, l := range cm.Left {
		lefts[i] = c.compileValue(l)
	}
	var test func(int) bool
	switch cm.Op {
	case "<":
		test = func(d int) bool { return d < 0 }
	case "<=":
		test = func(d int) bool { return d <= 0 }
	case ">":
		test = func(d int) bool { return d > 0 }
	case ">=":
		test = func(d int) bool { return d >= 0 }
	case "=":
		test = func(d int) bool { return d == 0 }
	case "!=":
		test = func(d int) bool { return d != 0 }
	}
	return func(env *chEnv) (bool, error) {
		rv, err := right(env)
		if err != nil {
			return false, err
		}
		for _, lf := range lefts {
			lv, err := lf(env)
			if err != nil {
				return false, err
			}
			d, ok := relation.Compare(lv, rv)
			if !ok {
				return false, nil // incomparable types: false, not error
			}
			if test == nil || !test(d) {
				return false, nil
			}
		}
		return k(env)
	}
}

func (c *havingCompiler) compileAggCall(a *AggCall, k chProg) chProg {
	if def, ok := c.aggs[a.Name]; ok {
		if len(a.Args) != len(def.Params) {
			return errProg(fmt.Errorf("starql: aggregate %s arity mismatch", a.Name))
		}
		if c.depth >= maxMacroExpansionDepth {
			return errProg(fmt.Errorf("starql: aggregate %s expands too deeply", a.Name))
		}
		// Macro pre-expansion: substitute once here instead of on every
		// evaluation (evalAggCall re-expands per call).
		c.depth++
		body := c.compile(a.Expand(def), contAccept)
		c.depth--
		return func(env *chEnv) (bool, error) {
			ok, err := body(env)
			if err != nil {
				return false, err
			}
			if ok {
				return k(env)
			}
			return false, nil
		}
	}
	switch a.Name {
	case "THRESHOLD.ABOVE":
		if len(a.Args) != 3 {
			return errProg(fmt.Errorf("starql: THRESHOLD.ABOVE expects 3 arguments"))
		}
		subj := c.compileIRI(a.Args[0])
		attr := a.Args[1].Term.Value
		limit := c.compileValue(a.Args[2])
		return func(env *chEnv) (bool, error) {
			s, err := subj(env)
			if err != nil {
				return false, err
			}
			lim, err := limit(env)
			if err != nil {
				return false, err
			}
			for si := range env.seq.States {
				for _, v := range env.seq.States[si].Values(s, attr) {
					if d, ok := relation.Compare(v, lim); ok && d > 0 {
						return k(env)
					}
				}
			}
			return false, nil
		}
	case "TREND.INCREASE":
		if len(a.Args) != 2 {
			return errProg(fmt.Errorf("starql: TREND.INCREASE expects 2 arguments"))
		}
		subj := c.compileIRI(a.Args[0])
		attr := a.Args[1].Term.Value
		return func(env *chEnv) (bool, error) {
			s, err := subj(env)
			if err != nil {
				return false, err
			}
			series := seriesOf(env.seq, s, attr)
			if len(series) < 2 || series[len(series)-1] <= series[0] {
				return false, nil
			}
			return k(env)
		}
	case "PEARSON.CORRELATION":
		if len(a.Args) != 4 {
			return errProg(fmt.Errorf("starql: PEARSON.CORRELATION expects 4 arguments"))
		}
		sa := c.compileIRI(a.Args[0])
		sb := c.compileIRI(a.Args[1])
		attr := a.Args[2].Term.Value
		min := c.compileValue(a.Args[3])
		return func(env *chEnv) (bool, error) {
			s1, err := sa(env)
			if err != nil {
				return false, err
			}
			s2, err := sb(env)
			if err != nil {
				return false, err
			}
			m, err := min(env)
			if err != nil {
				return false, err
			}
			minF, _ := m.AsFloat()
			r, ok := PearsonOverStates(env.seq, s1, s2, attr)
			if ok && r >= minF {
				return k(env)
			}
			return false, nil
		}
	default:
		return errProg(fmt.Errorf("starql: unknown aggregate %s", a.Name))
	}
}

// compileValue mirrors resolveValue: state index, then bound value
// variable, then WHERE binding, then unbound error — decided per
// evaluation against the slots, as the interpreter decides against its
// maps.
func (c *havingCompiler) compileValue(n Node) chValFn {
	if !n.IsVar() {
		v := termToValue(n.Term)
		return func(*chEnv) (relation.Value, error) { return v, nil }
	}
	ss := c.stateSlot(n.Var)
	vs := c.valueSlot(n.Var)
	bs := c.bindSlot(n.Var)
	unbound := fmt.Errorf("starql: unbound variable ?%s", n.Var)
	return func(env *chEnv) (relation.Value, error) {
		if i := env.states[ss]; i >= 0 {
			return relation.Int(int64(i)), nil
		}
		if bv := env.values[vs]; bv.ok {
			return bv.v, nil
		}
		if bt := env.binding[bs]; bt.ok {
			return termToValue(bt.t), nil
		}
		return relation.Null, unbound
	}
}

// compileIRI mirrors resolveIRI: WHERE binding first, then bound value
// variable, then unbound error.
func (c *havingCompiler) compileIRI(n Node) chIRIFn {
	if !n.IsVar() {
		s := n.Term.Value
		return func(*chEnv) (string, error) { return s, nil }
	}
	bs := c.bindSlot(n.Var)
	vs := c.valueSlot(n.Var)
	unbound := fmt.Errorf("starql: unbound subject variable ?%s", n.Var)
	return func(env *chEnv) (string, error) {
		if bt := env.binding[bs]; bt.ok {
			return bt.t.Value, nil
		}
		if bv := env.values[vs]; bv.ok {
			return rawString(bv.v), nil
		}
		return "", unbound
	}
}

package starql

import (
	"testing"

	"repro/internal/rdf"
)

// BenchmarkHavingMatcher measures one evaluation of the Figure 1
// monotonicity condition (EXISTS + guarded two-state FORALL via the
// MONOTONIC.HAVING macro) over a 10-state window: the compiled
// slot-frame program vs the environment-copying tree interpreter.
// Recorded in BENCH_PR4.json via `optique-bench -exp record`.
func BenchmarkHavingMatcher(b *testing.B) {
	q := MustParse(figure1)
	subject := "http://x/sensor/1"
	vals := make([]float64, 10)
	fails := make([]bool, 10)
	for i := range vals {
		vals[i] = float64(10 + i)
	}
	fails[len(fails)-1] = true
	seq := buildSeq(subject, vals, fails)
	binding := Binding{"c2": rdf.NewIRI(subject)}

	b.Run("matcher=compiled", func(b *testing.B) {
		compiled := CompileHaving(q.Having, q.Aggregates)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := compiled.Eval(seq, binding)
			if err != nil || !ok {
				b.Fatalf("eval = %t, %v", ok, err)
			}
		}
	})
	b.Run("matcher=interpreted", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ok, err := EvalHaving(q.Having, seq, binding, q.Aggregates)
			if err != nil || !ok {
				b.Fatalf("eval = %t, %v", ok, err)
			}
		}
	})
}

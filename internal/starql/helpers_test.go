package starql

import (
	"testing"

	"repro/internal/obda/mapping"
	"repro/internal/relation"
	"repro/internal/sql"
)

// mappingSetWrap bundles the test mapping set with its catalog so
// translation tests can evaluate static fleets.
type mappingSetWrap struct {
	set *mapping.Set
	cat *relation.Catalog
}

// newTestMappings builds the Siemens-flavoured deployment used across the
// starql tests: assemblies and sensors in static tables, measurements on
// the S_Msmt stream, and a showsFailure property realised from the
// stream's fail flag.
func newTestMappings(t *testing.T) *mappingSetWrap {
	t.Helper()
	const (
		sensorT   = "http://siemens.com/data/sensor/{sid}"
		assemblyT = "http://siemens.com/data/assembly/{aid}"
	)
	set, err := mapping.NewSet(
		mapping.Mapping{
			ID: "assembly", Pred: sieNS + "Assembly", IsClass: true,
			Subject:    mapping.MustParseTemplate(assemblyT),
			Source:     mapping.SourceRef{Table: "assemblies"},
			KeyColumns: []string{"aid"},
		},
		mapping.Mapping{
			ID: "sensor", Pred: sieNS + "Sensor", IsClass: true,
			Subject:    mapping.MustParseTemplate(sensorT),
			Source:     mapping.SourceRef{Table: "sensors"},
			KeyColumns: []string{"sid"},
		},
		mapping.Mapping{
			ID: "inAssembly", Pred: sieNS + "inAssembly",
			Subject:    mapping.MustParseTemplate(assemblyT),
			Object:     mapping.MustParseTemplate(sensorT),
			Source:     mapping.SourceRef{Table: "sensors"},
			KeyColumns: []string{"sid"},
		},
		mapping.Mapping{
			ID: "hasValue", Pred: sieNS + "hasValue",
			Subject: mapping.MustParseTemplate(sensorT),
			Object:  mapping.MustParseTemplate("{val}"), ObjectIsData: true,
			Source: mapping.SourceRef{Table: "S_Msmt", IsStream: true},
		},
		mapping.Mapping{
			ID: "showsFailure", Pred: sieNS + "showsFailure",
			Subject: mapping.MustParseTemplate(sensorT),
			Object:  mapping.MustParseTemplate("{fail}"), ObjectIsData: true,
			Source: mapping.SourceRef{
				Table: "S_Msmt", IsStream: true,
				Where: sql.Bin("=", sql.Col("fail"), sql.Lit(relation.Int(1))),
			},
		},
	)
	if err != nil {
		t.Fatal(err)
	}

	cat := relation.NewCatalog()
	assemblies, err := cat.Create("assemblies", relation.NewSchema(
		relation.Col("aid", relation.TInt),
		relation.Col("name", relation.TString),
	))
	if err != nil {
		t.Fatal(err)
	}
	assemblies.MustInsert(relation.Tuple{relation.Int(1), relation.String_("burner")})
	assemblies.MustInsert(relation.Tuple{relation.Int(2), relation.String_("rotor")})

	sensors, err := cat.Create("sensors", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("aid", relation.TInt),
	))
	if err != nil {
		t.Fatal(err)
	}
	// Sensors 7 and 8 in assembly 1, sensor 9 in assembly 2.
	sensors.MustInsert(relation.Tuple{relation.Int(7), relation.Int(1)})
	sensors.MustInsert(relation.Tuple{relation.Int(8), relation.Int(1)})
	sensors.MustInsert(relation.Tuple{relation.Int(9), relation.Int(2)})

	return &mappingSetWrap{set: set, cat: cat}
}

// mappingForObjectProp is a stream-sourced object-property mapping used
// by the sequence-builder tests.
func mappingForObjectProp() mapping.Mapping {
	return mapping.Mapping{
		ID:      "emits",
		Pred:    sieNS + "emits",
		Subject: mapping.MustParseTemplate("http://siemens.com/data/sensor/{sid}"),
		Object:  mapping.MustParseTemplate("http://siemens.com/data/reading/{sid}"),
		Source:  mapping.SourceRef{Table: "S_Msmt", IsStream: true},
	}
}

// mappingHasSid exposes the sensor id as a data property for the filter
// tests.
func mappingHasSid() mapping.Mapping {
	return mapping.Mapping{
		ID:      "hasSid",
		Pred:    sieNS + "hasSid",
		Subject: mapping.MustParseTemplate("http://siemens.com/data/sensor/{sid}"),
		Object:  mapping.MustParseTemplate("{sid}"), ObjectIsData: true,
		Source:     mapping.SourceRef{Table: "sensors"},
		KeyColumns: []string{"sid"},
	}
}

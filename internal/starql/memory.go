package starql

import (
	"fmt"
	"sort"
)

// MemoryClass is the verdict of the bounded-memory analysis: whether a
// registered query can be answered with constant state per open window.
// The criteria follow Schiff & Özçep's bounded-memory conditions for
// streams with application time: a HAVING condition is bounded when
// every quantifier ranges over a single sequence state at a time (each
// state can be folded into an O(1) accumulator as it arrives), and
// unbounded when it relates pairs of states or back-references a state
// bound by an enclosing quantifier — those force the evaluator to
// retain the full state sequence of the window.
type MemoryClass int

const (
	// MemBounded: constant per-window state; the window contents can be
	// folded into fixed-size accumulators.
	MemBounded MemoryClass = iota
	// MemUnbounded: per-window state grows with the window contents
	// (full sequence retention).
	MemUnbounded
)

// String renders the class for diagnostics and docs.
func (m MemoryClass) String() string {
	if m == MemBounded {
		return "bounded"
	}
	return "unbounded"
}

// MemoryModel parameterises the byte estimates of the analysis. The
// defaults are deliberately round: the point of the budget is admission
// control and degradation thresholds, not capacity planning.
type MemoryModel struct {
	// BytesPerState estimates one sequence state (one RDF mini-graph of
	// assertions for a pulse instant).
	BytesPerState int64
	// Headroom multiplies the bounded estimate so ordinary jitter (a
	// burst of tuples in one pulse) does not trip enforcement.
	Headroom int64
}

// DefaultMemoryModel is used by AnalyzeMemory.
var DefaultMemoryModel = MemoryModel{BytesPerState: 256, Headroom: 4}

// MemoryAnalysis is the result of the registration-time memory pass:
// the boundedness class, the reasons behind an unbounded verdict, and
// the sizing inputs the budget derivation uses.
type MemoryAnalysis struct {
	Class   MemoryClass
	Reasons []string // why the query is unbounded; empty when bounded

	// Overlap is the worst-case number of simultaneously open windows
	// across the query's streams: ceil(Range/Slide) maximised over
	// stream clauses (1 for tumbling windows).
	Overlap int64
	// StatesPerWindow is the estimated number of sequence states one
	// window holds (range / pulse frequency, or range / slide without a
	// pulse clause).
	StatesPerWindow int64
	// WindowBytes is the estimated working set of the query's open
	// windows under the model: sum over streams of
	// overlap × statesPerWindow × BytesPerState.
	WindowBytes int64
}

// Budget derives the per-query byte budget from the analysis.
// defaultBudget is the operator-configured per-query budget (0 disables
// governance, so 0 in → 0 out). Bounded queries get the larger of their
// modelled working set (with headroom) and the default — their state is
// provably constant, so a generous budget costs nothing and avoids
// false degradation. Unbounded queries get exactly the default: their
// growth is the thing the budget exists to cap.
func (a MemoryAnalysis) Budget(defaultBudget int64) int64 {
	if defaultBudget <= 0 {
		return 0
	}
	if a.Class == MemUnbounded {
		return defaultBudget
	}
	sized := a.WindowBytes * DefaultMemoryModel.Headroom
	if sized > defaultBudget {
		return sized
	}
	return defaultBudget
}

// AnalyzeMemory classifies a parsed STARQL query as bounded or
// unbounded per-window memory and estimates its working set. It is a
// pure registration-time pass: no runtime cost, following the posture
// of OBDA constraints — decide cheaply at registration, never pay per
// tuple.
func AnalyzeMemory(q *Query) MemoryAnalysis {
	return AnalyzeMemoryWith(q, DefaultMemoryModel)
}

// AnalyzeMemoryWith is AnalyzeMemory under an explicit cost model.
func AnalyzeMemoryWith(q *Query, model MemoryModel) MemoryAnalysis {
	a := MemoryAnalysis{Overlap: 1, StatesPerWindow: 1}
	for _, sc := range q.Streams {
		if sc.SlideMS <= 0 || sc.RangeMS <= 0 {
			continue
		}
		overlap := ceilDiv64(sc.RangeMS, sc.SlideMS)
		if overlap > a.Overlap {
			a.Overlap = overlap
		}
		step := sc.SlideMS
		if q.Pulse != nil && q.Pulse.FrequencyMS > 0 {
			step = q.Pulse.FrequencyMS
		}
		states := ceilDiv64(sc.RangeMS, step)
		if states < 1 {
			states = 1
		}
		if states > a.StatesPerWindow {
			a.StatesPerWindow = states
		}
		a.WindowBytes += overlap * states * model.BytesPerState
	}
	if a.WindowBytes == 0 {
		a.WindowBytes = a.Overlap * a.StatesPerWindow * model.BytesPerState
	}

	if q.Having != nil {
		w := &memWalk{aggs: q.Aggregates, reasons: map[string]bool{}}
		w.walk(q.Having, nil, nil)
		if len(w.reasons) > 0 {
			a.Class = MemUnbounded
			for r := range w.reasons {
				a.Reasons = append(a.Reasons, r)
			}
			sort.Strings(a.Reasons)
		}
	}
	return a
}

func ceilDiv64(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

// memWalk walks a HAVING expression tracking which state variables are
// bound by enclosing quantifiers, mirroring the scope tracking of the
// validation pass (having.go). A sub-expression is unbounded when it
// quantifies over two states jointly (FORALL ?i < ?j), or when a
// nested quantifier's body references a state bound further out — a
// backreference across quantifier scopes: evaluating the inner
// quantifier for each binding of the outer state requires the full
// sequence to be retained.
type memWalk struct {
	aggs    map[string]*AggregateDef
	reasons map[string]bool
}

// walk descends into e. enclosing holds state variables bound by
// quantifiers strictly above the innermost one; local holds the
// innermost quantifier's own state variables.
func (w *memWalk) walk(e HavingExpr, enclosing, local map[string]bool) {
	switch x := e.(type) {
	case *AndExpr:
		w.walk(x.L, enclosing, local)
		w.walk(x.R, enclosing, local)
	case *OrExpr:
		w.walk(x.L, enclosing, local)
		w.walk(x.R, enclosing, local)
	case *NotExpr:
		w.walk(x.E, enclosing, local)
	case *ExistsExpr:
		w.walk(x.Cond, union(enclosing, local), set(x.StateVar))
	case *ForallExpr:
		if x.StateVar2 != "" {
			w.reasons[fmt.Sprintf("FORALL ?%s %s ?%s relates pairs of sequence states", x.StateVar1, x.Rel, x.StateVar2)] = true
		}
		inner := set(x.StateVar1)
		if x.StateVar2 != "" {
			inner[x.StateVar2] = true
		}
		out := union(enclosing, local)
		if x.Guard != nil {
			w.walk(x.Guard, out, inner)
		}
		w.walk(x.Conclusion, out, inner)
	case *GraphAtom:
		if enclosing[x.StateVar] {
			w.reasons["graph atom back-references a state bound by an enclosing quantifier"] = true
		}
	case *Comparison:
		for _, n := range append(append([]Node{}, x.Left...), x.Right) {
			if n.IsVar() && enclosing[n.Var] {
				w.reasons["comparison back-references a state bound by an enclosing quantifier"] = true
			}
		}
	case *AggCall:
		if def, ok := w.aggs[x.Name]; ok {
			w.walk(x.Expand(def), enclosing, local)
			return
		}
		if _, builtin := builtinAggregates[x.Name]; builtin {
			// The native aggregates (Pearson via running sufficient
			// statistics, threshold/trend via incremental scans) all fold
			// in O(1) state.
			return
		}
		w.reasons[fmt.Sprintf("unknown aggregate %s assumed to retain the sequence", x.Name)] = true
	}
}

func set(v string) map[string]bool { return map[string]bool{v: true} }

func union(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

package starql

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/relation"
)

// sameSequence compares two sequences state-by-state (nil-vs-empty
// state slices are equal; the row and columnar builders may differ in
// that representation only).
func sameSequence(a, b *Sequence) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.States {
		if a.States[i].TS != b.States[i].TS {
			return false
		}
		if !reflect.DeepEqual(a.States[i].props, b.States[i].props) {
			return false
		}
	}
	return true
}

// TestBuildColumnarMatchesBuild is the sequence-builder differential:
// the columnar build over a window batch must produce exactly the
// sequence the row build produces, for random batches, subject
// filters, NULL-bearing rows, and empty windows.
func TestBuildColumnarMatchesBuild(t *testing.T) {
	set := testMappings(t)
	sb, err := NewSequenceBuilder(msmtStreamSchema(), set.set)
	if err != nil {
		t.Fatal(err)
	}
	s7 := "http://siemens.com/data/sensor/7"
	rng := rand.New(rand.NewSource(31))
	randRows := func(n int) []relation.Tuple {
		rows := make([]relation.Tuple, n)
		for i := range rows {
			rows[i] = row(int64(rng.Intn(4)+6), int64(rng.Intn(5))*1000, float64(rng.Intn(40)+50), int64(rng.Intn(2)))
			if rng.Intn(6) == 0 {
				rows[i][2] = relation.Null // NULL measurement value
			}
		}
		return rows
	}
	subjectsPool := []map[string]bool{nil, {s7: true}, {}}
	for trial := 0; trial < 60; trial++ {
		batch := batchOf(randRows(rng.Intn(30))...)
		if rng.Intn(2) == 0 {
			batch.Columns() // pre-materialise the shared transpose
		}
		subjects := subjectsPool[rng.Intn(len(subjectsPool))]
		want, err1 := sb.Build(batch, subjects)
		got, err2 := sb.BuildColumnar(batch, subjects)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: error disagreement: row=%v columnar=%v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !sameSequence(want, got) {
			t.Fatalf("trial %d: sequences differ\nrow:      %+v\ncolumnar: %+v", trial, want, got)
		}
	}
}

// TestBuildColumnarErrorParity pins the timestamp-error contract: a row
// whose timestamp column is not an integer fails both builders.
func TestBuildColumnarErrorParity(t *testing.T) {
	set := testMappings(t)
	sb, err := NewSequenceBuilder(msmtStreamSchema(), set.set)
	if err != nil {
		t.Fatal(err)
	}
	bad := batchOf(
		row(7, 1000, 70, 0),
		relation.Tuple{relation.Int(7), relation.Null, relation.Float(70), relation.Int(0)},
	)
	if _, err := sb.Build(bad, nil); err == nil {
		t.Fatal("row build accepted a NULL timestamp")
	}
	if _, err := sb.BuildColumnar(bad, nil); err == nil {
		t.Fatal("columnar build accepted a NULL timestamp")
	}
}

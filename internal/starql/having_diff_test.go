package starql

import (
	"math/rand"
	"testing"

	"repro/internal/rdf"
	"repro/internal/relation"
)

// Differential test: the compiled HAVING matcher must agree with the
// reference interpreter (matches) on randomly generated conditions over
// randomly generated sequences, mirroring engine's TestCompileMatchesEval.
// The generator is scope-aware and only produces well-formed conditions
// (every variable reference is bound on every evaluation path), because
// the compiled program legitimately short-circuits branches the
// interpreter materialises — see the deviation note in compile.go.

const diffSubjA = "http://x/sensor/A"
const diffSubjB = "http://x/sensor/B"

var cmpOps = []string{"<", "<=", ">", ">=", "=", "!="}

// havingGen generates random well-formed HAVING conditions.
type havingGen struct {
	rng  *rand.Rand
	next int
	pool map[string][]string // per-prefix previously issued names
}

func newHavingGen(rng *rand.Rand) *havingGen {
	return &havingGen{rng: rng, pool: map[string][]string{}}
}

// fresh issues a variable name; 1 in 8 reuses an earlier name of the
// same kind to exercise the dynamic shadowing semantics both
// evaluators share.
func (g *havingGen) fresh(prefix string) string {
	if prev := g.pool[prefix]; len(prev) > 0 && g.rng.Intn(8) == 0 {
		return prev[g.rng.Intn(len(prev))]
	}
	g.next++
	name := prefix + string(rune('0'+g.next%10)) + string(rune('a'+g.next/10%26))
	g.pool[prefix] = append(g.pool[prefix], name)
	return name
}

func (g *havingGen) subject() Node {
	switch g.rng.Intn(4) {
	case 0:
		return NVar("t")
	case 1:
		return NTerm(rdf.NewIRI(diffSubjA))
	default:
		return NVar("s")
	}
}

func (g *havingGen) attr() Node {
	if g.rng.Intn(3) == 0 {
		return NTerm(rdf.NewIRI(sieNS + "aux"))
	}
	return NTerm(rdf.NewIRI(sieNS + "hasValue"))
}

func (g *havingGen) numConst() Node {
	if g.rng.Intn(2) == 0 {
		return NTerm(rdf.NewDouble(float64(1 + g.rng.Intn(5))))
	}
	return NTerm(rdf.NewInteger(int64(g.rng.Intn(5))))
}

// bindAtom is a generator atom binding value variable x at state k.
func (g *havingGen) bindAtom(k, x string) HavingExpr {
	return &GraphAtom{StateVar: k, Pattern: TriplePattern{
		S: g.subject(), P: g.attr(), O: NVar(x)}}
}

// valueUse consumes a bound value variable in a comparison.
func (g *havingGen) valueUse(x string, states []string) HavingExpr {
	op := cmpOps[g.rng.Intn(len(cmpOps))]
	left := []Node{NVar(x)}
	if g.rng.Intn(4) == 0 {
		left = append(left, g.numConst())
	}
	right := g.numConst()
	if len(states) > 0 && g.rng.Intn(4) == 0 {
		right = NVar(states[g.rng.Intn(len(states))])
	}
	return &Comparison{Left: left, Op: op, Right: right}
}

func (g *havingGen) comparison(states []string) HavingExpr {
	operand := func() Node {
		switch {
		case len(states) > 0 && g.rng.Intn(3) == 0:
			return NVar(states[g.rng.Intn(len(states))])
		case g.rng.Intn(8) == 0:
			return NVar("s") // IRI vs number: incomparable, stays false
		default:
			return g.numConst()
		}
	}
	left := []Node{operand()}
	if g.rng.Intn(3) == 0 {
		left = append(left, operand())
	}
	return &Comparison{Left: left, Op: cmpOps[g.rng.Intn(len(cmpOps))], Right: operand()}
}

// atom produces one of the graph-atom forms at state k.
func (g *havingGen) atom(k string) HavingExpr {
	fail := NTerm(rdf.NewIRI(sieNS + "showsFailure"))
	switch g.rng.Intn(4) {
	case 0:
		return &GraphAtom{StateVar: k, Pattern: TriplePattern{S: g.subject(), P: fail, NoObject: true}}
	case 1:
		return &GraphAtom{StateVar: k, Pattern: TriplePattern{S: g.subject(), P: fail, TypeAtom: true}}
	case 2:
		return &GraphAtom{StateVar: k, Pattern: TriplePattern{
			S: g.subject(), P: g.attr(), O: NTerm(rdf.NewDouble(float64(1 + g.rng.Intn(5))))}}
	default:
		x := g.fresh("x")
		return &AndExpr{g.bindAtom(k, x), g.valueUse(x, nil)}
	}
}

func (g *havingGen) leaf(states []string) HavingExpr {
	switch g.rng.Intn(6) {
	case 0:
		return &AggCall{Name: "THRESHOLD.ABOVE", Args: []Node{g.subject(), g.attr(), g.numConst()}}
	case 1:
		return &AggCall{Name: "TREND.INCREASE", Args: []Node{g.subject(), g.attr()}}
	case 2:
		return &AggCall{Name: "PEARSON.CORRELATION",
			Args: []Node{NVar("s"), NVar("t"), g.attr(), g.numConst()}}
	case 3:
		if g.rng.Intn(2) == 0 {
			return &AggCall{Name: "MONOTONIC.HAVING", Args: []Node{g.subject(), g.attr()}}
		}
		return &AggCall{Name: "SPIKE.HAVING", Args: []Node{g.subject(), g.attr(), g.numConst()}}
	case 4:
		if len(states) > 0 {
			return g.atom(states[g.rng.Intn(len(states))])
		}
		fallthrough
	default:
		return g.comparison(states)
	}
}

func (g *havingGen) expr(depth int, states []string) HavingExpr {
	if depth <= 0 {
		return g.leaf(states)
	}
	grow := func(vs ...string) []string {
		return append(append([]string{}, states...), vs...)
	}
	switch g.rng.Intn(8) {
	case 0:
		return &AndExpr{g.expr(depth-1, states), g.expr(depth-1, states)}
	case 1:
		return &OrExpr{g.expr(depth-1, states), g.expr(depth-1, states)}
	case 2:
		return &NotExpr{g.expr(depth-1, states)}
	case 3:
		k := g.fresh("k")
		return &ExistsExpr{StateVar: k, Cond: g.expr(depth-1, grow(k))}
	case 4: // single-state FORALL, guarded half the time
		i := g.fresh("i")
		if g.rng.Intn(2) == 0 {
			x := g.fresh("x")
			return &ForallExpr{StateVar1: i, ValueVars: []string{x},
				Guard:      g.bindAtom(i, x),
				Conclusion: g.valueUse(x, grow(i))}
		}
		return &ForallExpr{StateVar1: i, Conclusion: g.expr(depth-1, grow(i))}
	case 5: // two-state FORALL with guard: the Figure 1 shape, randomized
		i, j := g.fresh("i"), g.fresh("j")
		x, y := g.fresh("x"), g.fresh("y")
		rel := "<"
		if g.rng.Intn(2) == 0 {
			rel = "<="
		}
		guard := HavingExpr(&AndExpr{g.bindAtom(i, x), g.bindAtom(j, y)})
		if len(states) > 0 && g.rng.Intn(2) == 0 {
			k := states[g.rng.Intn(len(states))]
			guard = &AndExpr{
				&Comparison{Left: []Node{NVar(i), NVar(j)}, Op: "<", Right: NVar(k)},
				guard}
		}
		return &ForallExpr{StateVar1: i, Rel: rel, StateVar2: j, ValueVars: []string{x, y},
			Guard:      guard,
			Conclusion: &Comparison{Left: []Node{NVar(x)}, Op: cmpOps[g.rng.Intn(len(cmpOps))], Right: NVar(y)}}
	case 6: // standalone IF/THEN carrier
		if len(states) == 0 {
			return g.leaf(states)
		}
		k := states[g.rng.Intn(len(states))]
		x := g.fresh("x")
		return &ifThenExpr{guard: g.bindAtom(k, x), then: g.valueUse(x, states)}
	default:
		return g.leaf(states)
	}
}

// randDiffSeq builds a random sequence over the two test subjects
// (0–6 states, 0–2 values per property, occasional failure flags).
func randDiffSeq(rng *rand.Rand) *Sequence {
	seq := &Sequence{}
	n := rng.Intn(7)
	for i := 0; i < n; i++ {
		st := State{TS: int64(i+1) * 500, props: map[string]map[string][]relation.Value{}}
		for _, sub := range []string{diffSubjA, diffSubjB} {
			props := map[string][]relation.Value{}
			if rng.Intn(4) > 0 {
				var vals []relation.Value
				for v := 0; v <= rng.Intn(2); v++ {
					vals = append(vals, relation.Float(float64(1+rng.Intn(5))))
				}
				props[sieNS+"hasValue"] = vals
			}
			if rng.Intn(3) == 0 {
				props[sieNS+"aux"] = []relation.Value{relation.Int(int64(rng.Intn(4)))}
			}
			if rng.Intn(3) == 0 {
				props[sieNS+"showsFailure"] = []relation.Value{relation.Int(1)}
			}
			if len(props) > 0 {
				st.props[sub] = props
			}
		}
		seq.States = append(seq.States, st)
	}
	return seq
}

// diffAggregates returns the macro library for the generator: the
// paper's MONOTONIC.HAVING plus a value-variable-using SPIKE macro.
func diffAggregates() map[string]*AggregateDef {
	aggs := map[string]*AggregateDef{}
	for name, def := range MustParse(figure1).Aggregates {
		aggs[name] = def
	}
	aggs["SPIKE.HAVING"] = &AggregateDef{
		Name: "SPIKE.HAVING", Params: []string{"var", "attr", "lim"},
		Body: &ExistsExpr{StateVar: "mk", Cond: &AndExpr{
			&GraphAtom{StateVar: "mk", Pattern: TriplePattern{
				S: NVar("var"), P: NVar("attr"), O: NVar("mx")}},
			&Comparison{Left: []Node{NVar("mx")}, Op: ">", Right: NVar("lim")}}},
	}
	return aggs
}

// TestCompiledHavingMatchesInterpreter is the differential oracle: 200
// generated conditions, each evaluated over several random sequences
// (including empty ones) by both the interpreter and the compiled
// program, asserting identical outcomes.
func TestCompiledHavingMatchesInterpreter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	aggs := diffAggregates()
	binding := Binding{
		"s": rdf.NewIRI(diffSubjA),
		"t": rdf.NewIRI(diffSubjB),
	}
	trues, falses := 0, 0
	for i := 0; i < 200; i++ {
		gen := newHavingGen(rng)
		h := gen.expr(1+rng.Intn(3), nil)
		compiled := CompileHaving(h, aggs)
		for s := 0; s < 5; s++ {
			seq := randDiffSeq(rng)
			want, errI := EvalHaving(h, seq, binding, aggs)
			got, errC := compiled.Eval(seq, binding)
			if errI != nil {
				// The generator only emits well-formed conditions; an
				// interpreter error means the generator regressed.
				t.Fatalf("expr %d: interpreter error on well-formed condition: %v\n%s", i, errI, h)
			}
			if errC != nil {
				t.Fatalf("expr %d: compiled error: %v\n%s", i, errC, h)
			}
			if got != want {
				t.Fatalf("expr %d seq %d: compiled=%t interpreter=%t\nexpr: %s\nstates: %d",
					i, s, got, want, h, seq.Len())
			}
			if want {
				trues++
			} else {
				falses++
			}
		}
	}
	// The corpus must exercise both outcomes, or the test proves nothing.
	if trues < 50 || falses < 50 {
		t.Fatalf("degenerate corpus: %d true / %d false evaluations", trues, falses)
	}
}

// TestCompiledHavingErrorParity: malformed conditions that reach
// evaluation must fail in both forms.
func TestCompiledHavingErrorParity(t *testing.T) {
	seq := buildSeq("http://x/sensor/1", []float64{1, 2}, nil)
	b := Binding{}
	cases := []struct {
		name string
		h    HavingExpr
	}{
		{"unbound subject", &ExistsExpr{StateVar: "k", Cond: &GraphAtom{
			StateVar: "k",
			Pattern:  TriplePattern{S: NVar("ghost"), P: attrNode(), NoObject: true}}}},
		{"unbound comparison var", &Comparison{
			Left: []Node{NVar("ghost")}, Op: "<", Right: NTerm(rdf.NewInteger(1))}},
		{"unknown aggregate", &AggCall{Name: "NO.SUCH", Args: []Node{NVar("s")}}},
		{"unguarded value-var FORALL", &ForallExpr{
			StateVar1: "i", ValueVars: []string{"x"},
			Conclusion: &Comparison{Left: []Node{NVar("x")}, Op: "<", Right: NTerm(rdf.NewInteger(5))}}},
		{"macro arity mismatch", &AggCall{Name: "MONOTONIC.HAVING", Args: []Node{NVar("s")}}},
		{"unbound state var", &GraphAtom{StateVar: "k",
			Pattern: TriplePattern{S: NVar("s"), P: attrNode(), NoObject: true}}},
	}
	aggs := diffAggregates()
	for _, c := range cases {
		_, errI := EvalHaving(c.h, seq, b, aggs)
		_, errC := CompileHaving(c.h, aggs).Eval(seq, b)
		if errI == nil || errC == nil {
			t.Errorf("%s: interpreter err=%v, compiled err=%v (want both non-nil)", c.name, errI, errC)
			continue
		}
		if errI.Error() != errC.Error() {
			t.Errorf("%s: error mismatch: interpreter %q vs compiled %q", c.name, errI, errC)
		}
	}
}

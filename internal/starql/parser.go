package starql

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Parse reads a STARQL document: optional PREFIX declarations, one
// CREATE STREAM statement, and any number of CREATE AGGREGATE macro
// definitions (before or after the query).
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &sparser{
		toks:     toks,
		prefixes: rdf.StandardPrefixes(),
		aggs:     make(map[string]*AggregateDef),
	}
	var q *Query
	for !p.at(tEOF) {
		switch {
		case p.peekKW("PREFIX"):
			if err := p.parsePrefix(); err != nil {
				return nil, err
			}
		case p.peekKW("CREATE"):
			kind := p.lookaheadKW(1)
			switch strings.ToUpper(kind) {
			case "STREAM":
				if q != nil {
					return nil, fmt.Errorf("starql: multiple CREATE STREAM statements")
				}
				q, err = p.parseCreateStream()
				if err != nil {
					return nil, err
				}
			case "AGGREGATE":
				if err := p.parseCreateAggregate(); err != nil {
					return nil, err
				}
			default:
				return nil, fmt.Errorf("starql: expected STREAM or AGGREGATE after CREATE, found %q", kind)
			}
		default:
			return nil, fmt.Errorf("starql: unexpected %s", p.peek())
		}
	}
	if q == nil {
		return nil, fmt.Errorf("starql: no CREATE STREAM statement")
	}
	q.Aggregates = p.aggs
	q.Prefixes = p.prefixes
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse panics on error; for statically-known queries.
func MustParse(src string) *Query {
	q, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return q
}

type sparser struct {
	toks     []token
	pos      int
	prefixes rdf.PrefixMap
	aggs     map[string]*AggregateDef
}

func (p *sparser) peek() token       { return p.toks[p.pos] }
func (p *sparser) next() token       { t := p.toks[p.pos]; p.pos++; return t }
func (p *sparser) at(k tokKind) bool { return p.peek().kind == k }

func (p *sparser) peekKW(kw string) bool {
	t := p.peek()
	return t.kind == tIdent && strings.EqualFold(t.text, kw)
}

func (p *sparser) lookaheadKW(n int) string {
	if p.pos+n < len(p.toks) && p.toks[p.pos+n].kind == tIdent {
		return p.toks[p.pos+n].text
	}
	return ""
}

func (p *sparser) acceptKW(kw string) bool {
	if p.peekKW(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *sparser) expectKW(kw string) error {
	if !p.acceptKW(kw) {
		return fmt.Errorf("starql: expected %s, found %s", kw, p.peek())
	}
	return nil
}

func (p *sparser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *sparser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("starql: expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *sparser) expectIdent() (string, error) {
	t := p.peek()
	if t.kind != tIdent {
		return "", fmt.Errorf("starql: expected identifier, found %s", t)
	}
	p.pos++
	return t.text, nil
}

func (p *sparser) parsePrefix() error {
	p.pos++ // PREFIX
	var name string
	if !p.acceptPunct(":") { // empty prefix: "PREFIX : <iri>"
		n, err := p.expectIdent()
		if err != nil {
			return err
		}
		name = strings.TrimSuffix(n, ":")
		p.acceptPunct(":")
	}
	t := p.peek()
	if t.kind != tIRI {
		return fmt.Errorf("starql: expected IRI after PREFIX %s, found %s", name, t)
	}
	p.pos++
	p.prefixes[name] = t.text
	return nil
}

func (p *sparser) parseCreateStream() (*Query, error) {
	p.pos++ // CREATE
	p.pos++ // STREAM
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q := &Query{Name: name}
	if err := p.expectKW("AS"); err != nil {
		return nil, err
	}
	if err := p.expectKW("CONSTRUCT"); err != nil {
		return nil, err
	}
	if err := p.expectKW("GRAPH"); err != nil {
		return nil, err
	}
	if err := p.expectKW("NOW"); err != nil {
		return nil, err
	}
	patterns, err := p.parsePatternBlock()
	if err != nil {
		return nil, err
	}
	q.Construct = patterns

	if err := p.expectKW("FROM"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptKW("STREAM"):
			sc, err := p.parseStreamClause()
			if err != nil {
				return nil, err
			}
			q.Streams = append(q.Streams, sc)
		case p.acceptKW("STATIC"):
			if err := p.expectKW("DATA"); err != nil {
				return nil, err
			}
			t := p.next()
			if t.kind != tIRI {
				return nil, fmt.Errorf("starql: expected IRI after STATIC DATA, found %s", t)
			}
			q.StaticIRI = t.text
		case p.acceptKW("ONTOLOGY"):
			t := p.next()
			if t.kind != tIRI {
				return nil, fmt.Errorf("starql: expected IRI after ONTOLOGY, found %s", t)
			}
			q.OntologyIRI = t.text
		default:
			return nil, fmt.Errorf("starql: expected STREAM, STATIC DATA, or ONTOLOGY in FROM, found %s", p.peek())
		}
		if !p.acceptPunct(",") {
			break
		}
	}

	if p.acceptKW("USING") {
		if err := p.expectKW("PULSE"); err != nil {
			return nil, err
		}
		if err := p.expectKW("WITH"); err != nil {
			return nil, err
		}
		pulse := &PulseClause{}
		for {
			key, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct("="); err != nil {
				return nil, err
			}
			t := p.next()
			if t.kind != tString && t.kind != tNumber {
				return nil, fmt.Errorf("starql: expected literal for %s, found %s", key, t)
			}
			switch strings.ToUpper(key) {
			case "START":
				ms, err := ParseClockTime(t.text)
				if err != nil {
					return nil, err
				}
				pulse.StartMS = ms
			case "FREQUENCY":
				ms, err := ParseDuration(t.text)
				if err != nil {
					return nil, err
				}
				pulse.FrequencyMS = ms
			default:
				return nil, fmt.Errorf("starql: unknown pulse parameter %q", key)
			}
			if !p.acceptPunct(",") {
				break
			}
		}
		q.Pulse = pulse
	}

	if err := p.expectKW("WHERE"); err != nil {
		return nil, err
	}
	where, filters, err := p.parsePatternBlockWithFilters()
	if err != nil {
		return nil, err
	}
	q.Where = where
	q.WhereFilters = filters

	if p.acceptKW("SEQUENCE") {
		if err := p.expectKW("BY"); err != nil {
			return nil, err
		}
		m, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		q.SequenceBy = m
		if p.acceptKW("AS") {
			a, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.SeqAlias = a
		}
	}

	if p.acceptKW("HAVING") {
		h, err := p.parseHaving()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	return q, nil
}

func (p *sparser) parseStreamClause() (StreamClause, error) {
	name, err := p.expectIdent()
	if err != nil {
		return StreamClause{}, err
	}
	sc := StreamClause{Name: name}
	if err := p.expectPunct("["); err != nil {
		return sc, err
	}
	if err := p.expectKW("NOW"); err != nil {
		return sc, err
	}
	if err := p.expectPunct("-"); err != nil {
		return sc, err
	}
	t := p.next()
	if t.kind != tString && t.kind != tNumber {
		return sc, fmt.Errorf("starql: expected window range literal, found %s", t)
	}
	rng, err := ParseDuration(t.text)
	if err != nil {
		return sc, err
	}
	sc.RangeMS = rng
	if err := p.expectPunct(","); err != nil {
		return sc, err
	}
	if err := p.expectKW("NOW"); err != nil {
		return sc, err
	}
	if err := p.expectPunct("]"); err != nil {
		return sc, err
	}
	if err := p.expectPunct("->"); err != nil {
		return sc, err
	}
	t = p.next()
	if t.kind != tString && t.kind != tNumber {
		return sc, fmt.Errorf("starql: expected slide literal, found %s", t)
	}
	slide, err := ParseDuration(t.text)
	if err != nil {
		return sc, err
	}
	sc.SlideMS = slide
	return sc, nil
}

// parsePatternBlock parses "{ t1 . t2 . ... }" where each triple has 2
// or 3 components; FILTER conditions are collected separately.
func (p *sparser) parsePatternBlock() ([]TriplePattern, error) {
	pats, filters, err := p.parsePatternBlockWithFilters()
	if err != nil {
		return nil, err
	}
	if len(filters) > 0 {
		return nil, fmt.Errorf("starql: FILTER is only allowed in WHERE")
	}
	return pats, nil
}

func (p *sparser) parsePatternBlockWithFilters() ([]TriplePattern, []FilterPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, nil, err
	}
	var out []TriplePattern
	var filters []FilterPattern
	for !p.acceptPunct("}") {
		if p.acceptKW("FILTER") {
			f, err := p.parseFilter()
			if err != nil {
				return nil, nil, err
			}
			filters = append(filters, f)
			p.acceptPunct(".")
			continue
		}
		tp, err := p.parseTriplePattern()
		if err != nil {
			return nil, nil, err
		}
		out = append(out, tp)
		p.acceptPunct(".") // separator and optional terminator
	}
	return out, filters, nil
}

// parseFilter parses "( arg op value )" after the FILTER keyword.
func (p *sparser) parseFilter() (FilterPattern, error) {
	if err := p.expectPunct("("); err != nil {
		return FilterPattern{}, err
	}
	arg, err := p.parseNode()
	if err != nil {
		return FilterPattern{}, err
	}
	var op string
	for _, cand := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.acceptPunct(cand) {
			op = cand
			break
		}
	}
	if op == "" {
		return FilterPattern{}, fmt.Errorf("starql: expected comparison in FILTER, found %s", p.peek())
	}
	val, err := p.parseNode()
	if err != nil {
		return FilterPattern{}, err
	}
	if err := p.expectPunct(")"); err != nil {
		return FilterPattern{}, err
	}
	return FilterPattern{Arg: arg, Op: op, Value: val}, nil
}

func (p *sparser) parseTriplePattern() (TriplePattern, error) {
	s, err := p.parseNode()
	if err != nil {
		return TriplePattern{}, err
	}
	// Predicate: "a" keyword, rdf:type, or a term.
	if p.acceptKW("a") {
		cls, err := p.parseNode()
		if err != nil {
			return TriplePattern{}, err
		}
		return TriplePattern{S: s, P: cls, TypeAtom: true}, nil
	}
	pred, err := p.parseNode()
	if err != nil {
		return TriplePattern{}, err
	}
	if !pred.IsVar() && pred.Term.IsIRI() && pred.Term.Value == rdf.RDFType {
		cls, err := p.parseNode()
		if err != nil {
			return TriplePattern{}, err
		}
		return TriplePattern{S: s, P: cls, TypeAtom: true}, nil
	}
	// Two-element form: next token closes the pattern.
	if t := p.peek(); t.kind == tPunct && (t.text == "." || t.text == "}") {
		return TriplePattern{S: s, P: pred, NoObject: true}, nil
	}
	o, err := p.parseNode()
	if err != nil {
		return TriplePattern{}, err
	}
	return TriplePattern{S: s, P: pred, O: o}, nil
}

func (p *sparser) parseNode() (Node, error) {
	t := p.next()
	switch t.kind {
	case tVar, tParam:
		return NVar(t.text), nil
	case tIRI:
		return NTerm(rdf.NewIRI(t.text)), nil
	case tIdent:
		iri, err := p.prefixes.Expand(t.text)
		if err != nil {
			return Node{}, fmt.Errorf("starql: %v", err)
		}
		return NTerm(rdf.NewIRI(iri)), nil
	case tString:
		if t.extra != "" {
			dt, err := p.prefixes.Expand(t.extra)
			if err != nil {
				return Node{}, err
			}
			return NTerm(rdf.NewTypedLiteral(t.text, dt)), nil
		}
		return NTerm(rdf.NewLiteral(t.text)), nil
	case tNumber:
		if strings.Contains(t.text, ".") {
			return NTerm(rdf.NewTypedLiteral(t.text, rdf.XSDDouble)), nil
		}
		return NTerm(rdf.NewTypedLiteral(t.text, rdf.XSDInteger)), nil
	default:
		return Node{}, fmt.Errorf("starql: expected term, found %s", t)
	}
}

func (p *sparser) parseCreateAggregate() error {
	p.pos++ // CREATE
	p.pos++ // AGGREGATE
	rawName, err := p.expectIdent()
	if err != nil {
		return err
	}
	// Accept NAME:SUB and NAME.SUB; canonical form is dotted upper case.
	name := strings.ToUpper(strings.ReplaceAll(rawName, ":", "."))
	if err := p.expectPunct("("); err != nil {
		return err
	}
	var params []string
	for {
		t := p.next()
		if t.kind != tParam && t.kind != tVar {
			return fmt.Errorf("starql: expected parameter, found %s", t)
		}
		params = append(params, t.text)
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return err
	}
	if err := p.expectKW("AS"); err != nil {
		return err
	}
	if err := p.expectKW("HAVING"); err != nil {
		return err
	}
	body, err := p.parseHaving()
	if err != nil {
		return err
	}
	if _, dup := p.aggs[name]; dup {
		return fmt.Errorf("starql: aggregate %s defined twice", name)
	}
	p.aggs[name] = &AggregateDef{Name: name, Params: params, Body: body}
	return nil
}

// ---- HAVING expression parsing ----

func (p *sparser) parseHaving() (HavingExpr, error) { return p.parseHavingOr() }

func (p *sparser) parseHavingOr() (HavingExpr, error) {
	left, err := p.parseHavingAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("OR") {
		right, err := p.parseHavingAnd()
		if err != nil {
			return nil, err
		}
		left = &OrExpr{left, right}
	}
	return left, nil
}

func (p *sparser) parseHavingAnd() (HavingExpr, error) {
	left, err := p.parseHavingPrimary()
	if err != nil {
		return nil, err
	}
	for p.acceptKW("AND") {
		right, err := p.parseHavingPrimary()
		if err != nil {
			return nil, err
		}
		left = &AndExpr{left, right}
	}
	return left, nil
}

func (p *sparser) parseHavingPrimary() (HavingExpr, error) {
	switch {
	case p.acceptKW("NOT"):
		e, err := p.parseHavingPrimary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{e}, nil
	case p.acceptKW("EXISTS"):
		return p.parseExists()
	case p.acceptKW("FORALL"):
		return p.parseForall()
	case p.acceptKW("IF"):
		return p.parseIfThen()
	case p.acceptKW("GRAPH"):
		return p.parseGraphAtom()
	case p.acceptPunct("("):
		e, err := p.parseHaving()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	// Aggregate call: IDENT '(' args ')'.
	if t := p.peek(); t.kind == tIdent &&
		p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "(" {
		p.pos += 2
		name := strings.ToUpper(strings.ReplaceAll(t.text, ":", "."))
		var args []Node
		for {
			n, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			args = append(args, n)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &AggCall{Name: name, Args: args}, nil
	}
	return p.parseComparison()
}

func (p *sparser) parseExists() (HavingExpr, error) {
	t := p.next()
	if t.kind != tVar {
		return nil, fmt.Errorf("starql: expected state variable after EXISTS, found %s", t)
	}
	if err := p.expectKW("IN"); err != nil {
		return nil, err
	}
	if _, err := p.expectIdent(); err != nil { // SEQ / seq alias
		return nil, err
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	cond, err := p.parseHaving()
	if err != nil {
		return nil, err
	}
	return &ExistsExpr{StateVar: t.text, Cond: cond}, nil
}

func (p *sparser) parseForall() (HavingExpr, error) {
	f := &ForallExpr{}
	t := p.next()
	if t.kind != tVar {
		return nil, fmt.Errorf("starql: expected state variable after FORALL, found %s", t)
	}
	f.StateVar1 = t.text
	if p.acceptPunct("<") {
		f.Rel = "<"
	} else if p.acceptPunct("<=") {
		f.Rel = "<="
	}
	if f.Rel != "" {
		t = p.next()
		if t.kind != tVar {
			return nil, fmt.Errorf("starql: expected second state variable, found %s", t)
		}
		f.StateVar2 = t.text
	}
	if err := p.expectKW("IN"); err != nil {
		return nil, err
	}
	if _, err := p.expectIdent(); err != nil {
		return nil, err
	}
	for p.acceptPunct(",") {
		t = p.next()
		if t.kind != tVar {
			return nil, fmt.Errorf("starql: expected value variable, found %s", t)
		}
		f.ValueVars = append(f.ValueVars, t.text)
	}
	if err := p.expectPunct(":"); err != nil {
		return nil, err
	}
	body, err := p.parseHaving()
	if err != nil {
		return nil, err
	}
	if ifTE, ok := body.(*ifThenExpr); ok {
		f.Guard, f.Conclusion = ifTE.guard, ifTE.then
	} else {
		f.Conclusion = body
	}
	return f, nil
}

// ifThenExpr is a parse-time carrier for IF (...) THEN ...; it only
// appears inside FORALL, which absorbs it into guard/conclusion.
type ifThenExpr struct {
	guard, then HavingExpr
}

func (i *ifThenExpr) String() string {
	return "IF (" + i.guard.String() + ") THEN " + i.then.String()
}
func (i *ifThenExpr) check(ctx *checkCtx) error {
	if err := i.guard.check(ctx); err != nil {
		return err
	}
	return i.then.check(ctx)
}
func (i *ifThenExpr) substitute(args map[string]Node) HavingExpr {
	return &ifThenExpr{i.guard.substitute(args), i.then.substitute(args)}
}

func (p *sparser) parseIfThen() (HavingExpr, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	guard, err := p.parseHaving()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKW("THEN"); err != nil {
		return nil, err
	}
	then, err := p.parseHaving()
	if err != nil {
		return nil, err
	}
	return &ifThenExpr{guard, then}, nil
}

func (p *sparser) parseGraphAtom() (HavingExpr, error) {
	t := p.next()
	if t.kind != tVar {
		return nil, fmt.Errorf("starql: expected state variable after GRAPH, found %s", t)
	}
	pats, err := p.parsePatternBlock()
	if err != nil {
		return nil, err
	}
	if len(pats) != 1 {
		return nil, fmt.Errorf("starql: GRAPH block must contain exactly one pattern, got %d", len(pats))
	}
	return &GraphAtom{StateVar: t.text, Pattern: pats[0]}, nil
}

func (p *sparser) parseComparison() (HavingExpr, error) {
	var left []Node
	for {
		n, err := p.parseNode()
		if err != nil {
			return nil, err
		}
		left = append(left, n)
		if !p.acceptPunct(",") {
			break
		}
	}
	var op string
	for _, cand := range []string{"<=", ">=", "!=", "=", "<", ">"} {
		if p.acceptPunct(cand) {
			op = cand
			break
		}
	}
	if op == "" {
		return nil, fmt.Errorf("starql: expected comparison operator, found %s", p.peek())
	}
	right, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	return &Comparison{Left: left, Op: op, Right: right}, nil
}

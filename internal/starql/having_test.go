package starql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/relation"
)

// buildSeq constructs a sequence directly for evaluator unit tests:
// states[i] asserts hasValue=vals[i] (and showsFailure when fail[i]).
func buildSeq(subject string, vals []float64, fail []bool) *Sequence {
	seq := &Sequence{}
	for i, v := range vals {
		st := State{TS: int64(i+1) * 1000, props: map[string]map[string][]relation.Value{
			subject: {sieNS + "hasValue": {relation.Float(v)}},
		}}
		if fail != nil && fail[i] {
			st.props[subject][sieNS+"showsFailure"] = []relation.Value{relation.Int(1)}
		}
		seq.States = append(seq.States, st)
	}
	return seq
}

func attrNode() Node { return NTerm(rdf.NewIRI(sieNS + "hasValue")) }
func sensorBinding() Binding {
	return Binding{"s": rdf.NewIRI("http://x/sensor/1")}
}

func TestHavingOrNotExprs(t *testing.T) {
	seq := buildSeq("http://x/sensor/1", []float64{10, 20}, nil)
	b := sensorBinding()
	above := &AggCall{Name: "THRESHOLD.ABOVE", Args: []Node{NVar("s"), attrNode(), NTerm(rdf.NewInteger(15))}}
	aboveHigh := &AggCall{Name: "THRESHOLD.ABOVE", Args: []Node{NVar("s"), attrNode(), NTerm(rdf.NewInteger(99))}}

	or := &OrExpr{aboveHigh, above}
	if ok, err := EvalHaving(or, seq, b, nil); err != nil || !ok {
		t.Errorf("OR = %t, %v", ok, err)
	}
	not := &NotExpr{aboveHigh}
	if ok, err := EvalHaving(not, seq, b, nil); err != nil || !ok {
		t.Errorf("NOT = %t, %v", ok, err)
	}
	and := &AndExpr{above, &NotExpr{aboveHigh}}
	if ok, err := EvalHaving(and, seq, b, nil); err != nil || !ok {
		t.Errorf("AND = %t, %v", ok, err)
	}
	// Strings render.
	for _, e := range []HavingExpr{or, not, and} {
		if e.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestHavingSingleStateForall(t *testing.T) {
	subject := "http://x/sensor/1"
	b := sensorBinding()
	// FORALL ?i IN seq: IF (GRAPH ?i {?s hasValue ?x}) THEN ?x <= 50.
	forall := &ForallExpr{
		StateVar1: "i",
		ValueVars: []string{"x"},
		Guard: &GraphAtom{StateVar: "i", Pattern: TriplePattern{
			S: NVar("s"), P: attrNode(), O: NVar("x")}},
		Conclusion: &Comparison{Left: []Node{NVar("x")}, Op: "<=", Right: NTerm(rdf.NewInteger(50))},
	}
	if ok, err := EvalHaving(forall, buildSeq(subject, []float64{10, 20, 30}, nil), b, nil); err != nil || !ok {
		t.Errorf("all below 50 = %t, %v", ok, err)
	}
	if ok, _ := EvalHaving(forall, buildSeq(subject, []float64{10, 90}, nil), b, nil); ok {
		t.Error("90 accepted")
	}
	if !strings.Contains(forall.String(), "FORALL ?i IN seq, ?x") {
		t.Errorf("String = %s", forall.String())
	}
}

func TestHavingUnguardedForallWithValueVarsRejected(t *testing.T) {
	b := sensorBinding()
	bad := &ForallExpr{
		StateVar1:  "i",
		ValueVars:  []string{"x"},
		Conclusion: &Comparison{Left: []Node{NVar("x")}, Op: "<=", Right: NTerm(rdf.NewInteger(5))},
	}
	if _, err := EvalHaving(bad, buildSeq("http://x/sensor/1", []float64{1}, nil), b, nil); err == nil {
		t.Error("unguarded value-var FORALL accepted")
	}
}

func TestHavingGraphAtomBoundObject(t *testing.T) {
	subject := "http://x/sensor/1"
	b := sensorBinding()
	// EXISTS ?k: GRAPH ?k {?s hasValue ?x} AND GRAPH ?k {?s hasValue ?x}
	// — second atom sees ?x bound; also constant-object form.
	e := &ExistsExpr{StateVar: "k", Cond: &AndExpr{
		&GraphAtom{StateVar: "k", Pattern: TriplePattern{S: NVar("s"), P: attrNode(), O: NVar("x")}},
		&GraphAtom{StateVar: "k", Pattern: TriplePattern{S: NVar("s"), P: attrNode(), O: NVar("x")}},
	}}
	if ok, err := EvalHaving(e, buildSeq(subject, []float64{7}, nil), b, nil); err != nil || !ok {
		t.Errorf("bound object = %t, %v", ok, err)
	}
	constObj := &ExistsExpr{StateVar: "k", Cond: &GraphAtom{
		StateVar: "k",
		Pattern:  TriplePattern{S: NVar("s"), P: attrNode(), O: NTerm(rdf.NewDouble(7))},
	}}
	if ok, err := EvalHaving(constObj, buildSeq(subject, []float64{7}, nil), b, nil); err != nil || !ok {
		t.Errorf("constant object = %t, %v", ok, err)
	}
	missing := &ExistsExpr{StateVar: "k", Cond: &GraphAtom{
		StateVar: "k",
		Pattern:  TriplePattern{S: NVar("s"), P: attrNode(), O: NTerm(rdf.NewDouble(999))},
	}}
	if ok, _ := EvalHaving(missing, buildSeq(subject, []float64{7}, nil), b, nil); ok {
		t.Error("missing constant matched")
	}
}

func TestHavingTypeAtomAndNoObject(t *testing.T) {
	subject := "http://x/sensor/1"
	b := sensorBinding()
	seq := buildSeq(subject, []float64{1, 2}, []bool{false, true})
	// Two-element form: GRAPH ?k { ?s sie:showsFailure }.
	noObj := &ExistsExpr{StateVar: "k", Cond: &GraphAtom{
		StateVar: "k",
		Pattern:  TriplePattern{S: NVar("s"), P: NTerm(rdf.NewIRI(sieNS + "showsFailure")), NoObject: true},
	}}
	if ok, err := EvalHaving(noObj, seq, b, nil); err != nil || !ok {
		t.Errorf("NoObject atom = %t, %v", ok, err)
	}
	// Type-atom form behaves the same (class realised as flag).
	typeAtom := &ExistsExpr{StateVar: "k", Cond: &GraphAtom{
		StateVar: "k",
		Pattern:  TriplePattern{S: NVar("s"), P: NTerm(rdf.NewIRI(sieNS + "showsFailure")), TypeAtom: true},
	}}
	if ok, err := EvalHaving(typeAtom, seq, b, nil); err != nil || !ok {
		t.Errorf("type atom = %t, %v", ok, err)
	}
}

func TestHavingComparisonOperators(t *testing.T) {
	b := sensorBinding()
	seq := buildSeq("http://x/sensor/1", []float64{5}, nil)
	mk := func(op string, l, r int64) *Comparison {
		return &Comparison{Left: []Node{NTerm(rdf.NewInteger(l))}, Op: op, Right: NTerm(rdf.NewInteger(r))}
	}
	cases := []struct {
		c    *Comparison
		want bool
	}{
		{mk("<", 1, 2), true}, {mk("<=", 2, 2), true}, {mk(">", 3, 2), true},
		{mk(">=", 2, 3), false}, {mk("=", 2, 2), true}, {mk("!=", 2, 2), false},
	}
	for _, c := range cases {
		ok, err := EvalHaving(c.c, seq, b, nil)
		if err != nil || ok != c.want {
			t.Errorf("%s = %t, %v; want %t", c.c, ok, err, c.want)
		}
	}
	// Comma-list LHS: 1, 2 < 3.
	list := &Comparison{
		Left: []Node{NTerm(rdf.NewInteger(1)), NTerm(rdf.NewInteger(2))},
		Op:   "<", Right: NTerm(rdf.NewInteger(3)),
	}
	if ok, err := EvalHaving(list, seq, b, nil); err != nil || !ok {
		t.Errorf("comma list = %t, %v", ok, err)
	}
	if !strings.Contains(list.String(), ", ") {
		t.Errorf("String = %s", list.String())
	}
	// Incomparable values are simply false.
	mixed := &Comparison{Left: []Node{NTerm(rdf.NewLiteral("a"))}, Op: "<", Right: NTerm(rdf.NewInteger(1))}
	if ok, err := EvalHaving(mixed, seq, b, nil); err != nil || ok {
		t.Errorf("incomparable = %t, %v", ok, err)
	}
}

func TestHavingUnboundErrors(t *testing.T) {
	b := Binding{}
	seq := buildSeq("http://x/sensor/1", []float64{1}, nil)
	unboundSubj := &ExistsExpr{StateVar: "k", Cond: &GraphAtom{
		StateVar: "k",
		Pattern:  TriplePattern{S: NVar("ghost"), P: attrNode(), NoObject: true},
	}}
	if _, err := EvalHaving(unboundSubj, seq, b, nil); err == nil {
		t.Error("unbound subject accepted")
	}
	unboundCmp := &Comparison{Left: []Node{NVar("ghost")}, Op: "<", Right: NTerm(rdf.NewInteger(1))}
	if _, err := EvalHaving(unboundCmp, seq, b, nil); err == nil {
		t.Error("unbound comparison var accepted")
	}
	unknownAgg := &AggCall{Name: "NO.SUCH", Args: []Node{NVar("s")}}
	if _, err := EvalHaving(unknownAgg, seq, b, nil); err == nil {
		t.Error("unknown aggregate accepted")
	}
}

func TestQueryStringRendering(t *testing.T) {
	q := MustParse(figure1)
	s := q.String()
	for _, want := range []string{"CREATE STREAM S_out", "CONSTRUCT GRAPH NOW",
		"FROM STREAM S_Msmt", "SEQUENCE BY StdSeq", "HAVING MONOTONIC.HAVING"} {
		if !strings.Contains(s, want) {
			t.Errorf("Query.String missing %q:\n%s", want, s)
		}
	}
	// Aggregate bodies render too.
	def := q.Aggregates["MONOTONIC.HAVING"]
	if !strings.Contains(def.Body.String(), "EXISTS ?k IN SEQ") {
		t.Errorf("aggregate body = %s", def.Body.String())
	}
}

func TestValueToTermRoundTrip(t *testing.T) {
	cases := []struct {
		v    relation.Value
		want rdf.Term
	}{
		{relation.String_("http://a/b"), rdf.NewIRI("http://a/b")},
		{relation.String_("urn:x"), rdf.NewIRI("urn:x")},
		{relation.String_("plain"), rdf.NewLiteral("plain")},
		{relation.Int(5), rdf.NewInteger(5)},
		{relation.Float(2.5), rdf.NewDouble(2.5)},
		{relation.Bool_(true), rdf.NewBoolean(true)},
	}
	for _, c := range cases {
		if got := valueToTerm(c.v); got != c.want {
			t.Errorf("valueToTerm(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestSequenceBuilderObjectProperty(t *testing.T) {
	// An object-property stream mapping renders the object IRI.
	w := newTestMappings(t)
	if err := w.set.Add(mappingForObjectProp()); err != nil {
		t.Fatal(err)
	}
	sb, err := NewSequenceBuilder(msmtStreamSchema(), w.set)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := sb.Build(batchOf(row(7, 1000, 70, 0)), nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := seq.States[0].Values("http://siemens.com/data/sensor/7", sieNS+"emits")
	if len(vals) != 1 || !strings.Contains(vals[0].Str, "reading/") {
		t.Errorf("object property values = %v", vals)
	}
}

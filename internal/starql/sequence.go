package starql

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"repro/internal/obda/mapping"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Binding assigns WHERE-clause variables to RDF terms; it is one answer
// of the unfolded static query.
type Binding map[string]rdf.Term

// State is one element of a STARQL sequence: the ABox snapshot at one
// timestamp, restricted to stream-derived assertions. Property values
// are indexed by subject IRI and property IRI.
type State struct {
	TS    int64
	props map[string]map[string][]relation.Value
}

// Values returns the values of (subject, property) at this state.
func (s *State) Values(subject, property string) []relation.Value {
	return s.props[subject][property]
}

// Sequence is the ordered list of states of one window (StdSeq: one
// state per distinct timestamp, ascending — the standard sequencing of
// [12], which respects functionality constraints by keeping simultaneous
// measurements in one state).
type Sequence struct {
	States []State
}

// Len returns the number of states.
func (s *Sequence) Len() int { return len(s.States) }

// SequenceBuilder turns window batches into sequences using the stream
// mappings: each stream-sourced property mapping contributes assertions
// subject→property→value realised from the batch rows.
type SequenceBuilder struct {
	schema   stream.Schema
	tsIdx    int
	mappings []mapping.Mapping // stream-sourced property mappings

	// Column-ordinal resolution of the mappings, computed once on the
	// first BuildColumnar call (see columnPlans).
	colOnce    sync.Once
	colPlans   []columnPlan
	colPlanErr error
}

// columnPlan caches the ordinal resolution of one stream mapping so the
// columnar build never resolves column names per row.
type columnPlan struct {
	m        mapping.Mapping
	subjCols []int // subject template column ordinals
	objCols  []int // object template ordinals (object properties)
	objData  int   // data-property column ordinal, -1 otherwise
}

// NewSequenceBuilder selects the stream-sourced mappings relevant to the
// given stream from the mapping set.
func NewSequenceBuilder(schema stream.Schema, set *mapping.Set) (*SequenceBuilder, error) {
	tsIdx, err := schema.Tuple.IndexOf(schema.TSCol)
	if err != nil {
		return nil, err
	}
	b := &SequenceBuilder{schema: schema, tsIdx: tsIdx}
	for _, m := range set.All() {
		if m.Source.IsStream && equalFold(m.Source.Table, schema.Name) {
			b.mappings = append(b.mappings, m)
		}
	}
	if len(b.mappings) == 0 {
		return nil, fmt.Errorf("starql: no stream mappings for %q", schema.Name)
	}
	return b, nil
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Build constructs the StdSeq sequence of a window batch, restricted to
// the given subjects (nil means all subjects — used by correlation
// tasks that scan every sensor).
func (b *SequenceBuilder) Build(batch stream.Batch, subjects map[string]bool) (*Sequence, error) {
	byTS := map[int64]*State{}
	for _, row := range batch.Rows {
		ts, ok := row[b.tsIdx].AsInt()
		if !ok {
			return nil, fmt.Errorf("starql: row without timestamp: %v", row)
		}
		st, ok := byTS[ts]
		if !ok {
			st = &State{TS: ts, props: map[string]map[string][]relation.Value{}}
			byTS[ts] = st
		}
		for _, m := range b.mappings {
			// Source-level filter.
			if m.Source.Where != nil {
				v, err := evalRowExpr(m.Source.Where, b.schema.Tuple, row)
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			subj, err := renderTemplateRow(m.Subject, b.schema.Tuple, row)
			if err != nil {
				return nil, err
			}
			if subjects != nil && !subjects[subj] {
				continue
			}
			var val relation.Value
			if m.IsClass {
				val = relation.Bool_(true)
			} else {
				val, err = objectValue(m, b.schema.Tuple, row)
				if err != nil {
					return nil, err
				}
			}
			props, ok := st.props[subj]
			if !ok {
				props = map[string][]relation.Value{}
				st.props[subj] = props
			}
			props[m.Pred] = append(props[m.Pred], val)
		}
	}
	seq := &Sequence{States: make([]State, 0, len(byTS))}
	for _, st := range byTS {
		seq.States = append(seq.States, *st)
	}
	sort.Slice(seq.States, func(i, j int) bool { return seq.States[i].TS < seq.States[j].TS })
	return seq, nil
}

// columnPlans resolves each mapping's template and object columns to
// ordinals in the stream schema, once per builder.
func (b *SequenceBuilder) columnPlans() ([]columnPlan, error) {
	b.colOnce.Do(func() {
		plans := make([]columnPlan, 0, len(b.mappings))
		for _, m := range b.mappings {
			p := columnPlan{m: m, objData: -1}
			for _, c := range m.Subject.Columns {
				idx, err := b.schema.Tuple.IndexOf(c)
				if err != nil {
					b.colPlanErr = err
					return
				}
				p.subjCols = append(p.subjCols, idx)
			}
			if !m.IsClass {
				if m.ObjectIsData {
					idx, err := b.schema.Tuple.IndexOf(m.Object.Columns[0])
					if err != nil {
						b.colPlanErr = err
						return
					}
					p.objData = idx
				} else {
					for _, c := range m.Object.Columns {
						idx, err := b.schema.Tuple.IndexOf(c)
						if err != nil {
							b.colPlanErr = err
							return
						}
						p.objCols = append(p.objCols, idx)
					}
				}
			}
			plans = append(plans, p)
		}
		b.colPlans = plans
	})
	return b.colPlans, b.colPlanErr
}

// BuildColumnar constructs the same StdSeq sequence as Build, but from
// the batch's columnar form: column ordinals are resolved once per
// builder, timestamps are read from the typed int64 payload when the
// column is typed, and subject/object IRIs are rendered once per
// distinct key per window instead of once per row. Iteration stays
// rows-outer/mappings-inner so per-predicate value order matches Build
// exactly.
func (b *SequenceBuilder) BuildColumnar(batch stream.Batch, subjects map[string]bool) (*Sequence, error) {
	plans, err := b.columnPlans()
	if err != nil {
		return nil, err
	}
	cb := batch.Columns()
	n := cb.Len()
	if n == 0 {
		return &Sequence{States: []State{}}, nil
	}
	tsVec := cb.Col(b.tsIdx)
	var tsInts []int64
	if tsVec.ElemType() == relation.TInt && !tsVec.HasNulls() {
		tsInts = tsVec.Ints()
	}
	// Scratch row for mapping source filters, the one part of a mapping
	// that needs a full tuple; filled at most once per row.
	var scratch relation.Tuple
	filled := -1
	rowAt := func(i int) relation.Tuple {
		if filled != i {
			if scratch == nil {
				scratch = make(relation.Tuple, cb.Arity())
			}
			for c := range scratch {
				scratch[c] = cb.Col(c).Value(i)
			}
			filled = i
		}
		return scratch
	}
	subjMemos := make([]map[string]string, len(plans))
	objMemos := make([]map[string]string, len(plans))
	for i := range plans {
		subjMemos[i] = map[string]string{}
		if plans[i].objData < 0 && !plans[i].m.IsClass {
			objMemos[i] = map[string]string{}
		}
	}
	segs := make([]string, 0, 4)
	byTS := map[int64]*State{}
	for i := 0; i < n; i++ {
		var ts int64
		if tsInts != nil {
			ts = tsInts[i]
		} else {
			v, ok := tsVec.Value(i).AsInt()
			if !ok {
				return nil, fmt.Errorf("starql: row without timestamp: %v", cb.Row(i))
			}
			ts = v
		}
		st, ok := byTS[ts]
		if !ok {
			st = &State{TS: ts, props: map[string]map[string][]relation.Value{}}
			byTS[ts] = st
		}
		for pi := range plans {
			p := &plans[pi]
			if p.m.Source.Where != nil {
				v, err := evalRowExpr(p.m.Source.Where, b.schema.Tuple, rowAt(i))
				if err != nil {
					return nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			subj, err := renderColumnar(p.m.Subject, p.subjCols, cb, i, subjMemos[pi], &segs)
			if err != nil {
				return nil, err
			}
			if subjects != nil && !subjects[subj] {
				continue
			}
			var val relation.Value
			switch {
			case p.m.IsClass:
				val = relation.Bool_(true)
			case p.objData >= 0:
				val = cb.Col(p.objData).Value(i)
			default:
				iri, err := renderColumnar(p.m.Object, p.objCols, cb, i, objMemos[pi], &segs)
				if err != nil {
					return nil, err
				}
				val = relation.String_(iri)
			}
			props, ok := st.props[subj]
			if !ok {
				props = map[string][]relation.Value{}
				st.props[subj] = props
			}
			props[p.m.Pred] = append(props[p.m.Pred], val)
		}
	}
	seq := &Sequence{States: make([]State, 0, len(byTS))}
	for _, st := range byTS {
		seq.States = append(seq.States, *st)
	}
	sort.Slice(seq.States, func(i, j int) bool { return seq.States[i].TS < seq.States[j].TS })
	return seq, nil
}

// renderColumnar applies an IRI template to one row of a column batch,
// memoizing by the raw segment key so repeated subjects render once.
func renderColumnar(t mapping.Template, cols []int, cb *relation.ColBatch, i int, memo map[string]string, segs *[]string) (string, error) {
	s := (*segs)[:0]
	for _, c := range cols {
		s = append(s, rawString(cb.Col(c).Value(i)))
	}
	*segs = s
	var key string
	if len(s) == 1 {
		key = s[0]
	} else {
		key = strings.Join(s, "\x1f")
	}
	if r, ok := memo[key]; ok {
		return r, nil
	}
	r, err := t.Render(s)
	if err != nil {
		return "", err
	}
	memo[key] = r
	return r, nil
}

// renderTemplateRow applies an IRI template to one stream row.
func renderTemplateRow(t mapping.Template, schema relation.Schema, row relation.Tuple) (string, error) {
	segs := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		idx, err := schema.IndexOf(c)
		if err != nil {
			return "", err
		}
		segs[i] = rawString(row[idx])
	}
	return t.Render(segs)
}

func rawString(v relation.Value) string {
	switch v.Type {
	case relation.TString:
		return v.Str
	default:
		s := v.String()
		if len(s) >= 2 && s[0] == '\'' && s[len(s)-1] == '\'' {
			return s[1 : len(s)-1]
		}
		return s
	}
}

// objectValue extracts a property mapping's object from a row: the raw
// column for data properties, the rendered IRI for object properties.
func objectValue(m mapping.Mapping, schema relation.Schema, row relation.Tuple) (relation.Value, error) {
	if m.ObjectIsData {
		idx, err := schema.IndexOf(m.Object.Columns[0])
		if err != nil {
			return relation.Null, err
		}
		return row[idx], nil
	}
	iri, err := renderTemplateRow(m.Object, schema, row)
	if err != nil {
		return relation.Null, err
	}
	return relation.String_(iri), nil
}

// evalRowExpr evaluates a mapping source filter against one row without
// needing the full engine context.
func evalRowExpr(e sql.Expr, schema relation.Schema, row relation.Tuple) (relation.Value, error) {
	return rowEval{schema, row}.eval(e)
}

type rowEval struct {
	schema relation.Schema
	row    relation.Tuple
}

func (r rowEval) eval(e sql.Expr) (relation.Value, error) {
	switch x := e.(type) {
	case *sql.Literal:
		return x.Value, nil
	case *sql.ColumnRef:
		idx, err := r.schema.IndexOf(x.Name)
		if err != nil {
			return relation.Null, err
		}
		return r.row[idx], nil
	case *sql.BinaryExpr:
		l, err := r.eval(x.Left)
		if err != nil {
			return relation.Null, err
		}
		rt, err := r.eval(x.Right)
		if err != nil {
			return relation.Null, err
		}
		switch x.Op {
		case "AND":
			return relation.Bool_(l.Truthy() && rt.Truthy()), nil
		case "OR":
			return relation.Bool_(l.Truthy() || rt.Truthy()), nil
		case "+", "-", "*", "/", "%":
			return relation.Arith(x.Op[0], l, rt)
		default:
			c, ok := relation.Compare(l, rt)
			if !ok || l.IsNull() || rt.IsNull() {
				return relation.Bool_(false), nil
			}
			switch x.Op {
			case "=":
				return relation.Bool_(c == 0), nil
			case "<>":
				return relation.Bool_(c != 0), nil
			case "<":
				return relation.Bool_(c < 0), nil
			case "<=":
				return relation.Bool_(c <= 0), nil
			case ">":
				return relation.Bool_(c > 0), nil
			case ">=":
				return relation.Bool_(c >= 0), nil
			}
			return relation.Null, fmt.Errorf("starql: unsupported operator %q in mapping filter", x.Op)
		}
	case *sql.UnaryExpr:
		v, err := r.eval(x.Expr)
		if err != nil {
			return relation.Null, err
		}
		if x.Op == "NOT" {
			return relation.Bool_(!v.Truthy()), nil
		}
		return relation.Null, fmt.Errorf("starql: unsupported unary %q in mapping filter", x.Op)
	default:
		return relation.Null, fmt.Errorf("starql: unsupported expression %T in mapping filter", e)
	}
}

// ---- HAVING evaluation ----

// evalEnv carries variable assignments during HAVING evaluation.
type evalEnv struct {
	seq     *Sequence
	binding Binding
	states  map[string]int
	values  map[string]relation.Value
	aggs    map[string]*AggregateDef
}

func (e *evalEnv) child() *evalEnv {
	out := &evalEnv{seq: e.seq, binding: e.binding, aggs: e.aggs,
		states: map[string]int{}, values: map[string]relation.Value{}}
	for k, v := range e.states {
		out.states[k] = v
	}
	for k, v := range e.values {
		out.values[k] = v
	}
	return out
}

// EvalHaving evaluates a HAVING condition over a sequence under a WHERE
// binding. Aggregate macros are expanded from defs.
func EvalHaving(h HavingExpr, seq *Sequence, binding Binding, defs map[string]*AggregateDef) (bool, error) {
	env := &evalEnv{seq: seq, binding: binding, aggs: defs,
		states: map[string]int{}, values: map[string]relation.Value{}}
	envs, err := matches(h, env)
	if err != nil {
		return false, err
	}
	return len(envs) > 0, nil
}

// matches returns the environments extending env under which h holds;
// atoms with fresh object variables act as binding generators.
func matches(h HavingExpr, env *evalEnv) ([]*evalEnv, error) {
	switch x := h.(type) {
	case *AndExpr:
		ls, err := matches(x.L, env)
		if err != nil {
			return nil, err
		}
		var out []*evalEnv
		for _, l := range ls {
			rs, err := matches(x.R, l)
			if err != nil {
				return nil, err
			}
			out = append(out, rs...)
		}
		return out, nil
	case *OrExpr:
		ls, err := matches(x.L, env)
		if err != nil {
			return nil, err
		}
		rs, err := matches(x.R, env)
		if err != nil {
			return nil, err
		}
		return append(ls, rs...), nil
	case *NotExpr:
		sub, err := matches(x.E, env)
		if err != nil {
			return nil, err
		}
		if len(sub) == 0 {
			return []*evalEnv{env}, nil
		}
		return nil, nil
	case *ExistsExpr:
		for i := range env.seq.States {
			child := env.child()
			child.states[x.StateVar] = i
			sub, err := matches(x.Cond, child)
			if err != nil {
				return nil, err
			}
			if len(sub) > 0 {
				return []*evalEnv{env}, nil
			}
		}
		return nil, nil
	case *ForallExpr:
		ok, err := evalForall(x, env)
		if err != nil {
			return nil, err
		}
		if ok {
			return []*evalEnv{env}, nil
		}
		return nil, nil
	case *ifThenExpr:
		guards, err := matches(x.guard, env)
		if err != nil {
			return nil, err
		}
		for _, g := range guards {
			sub, err := matches(x.then, g)
			if err != nil {
				return nil, err
			}
			if len(sub) == 0 {
				return nil, nil
			}
		}
		return []*evalEnv{env}, nil
	case *GraphAtom:
		return matchGraphAtom(x, env)
	case *Comparison:
		ok, err := evalComparison(x, env)
		if err != nil {
			return nil, err
		}
		if ok {
			return []*evalEnv{env}, nil
		}
		return nil, nil
	case *AggCall:
		ok, err := evalAggCall(x, env)
		if err != nil {
			return nil, err
		}
		if ok {
			return []*evalEnv{env}, nil
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("starql: cannot evaluate %T", h)
	}
}

func evalForall(f *ForallExpr, env *evalEnv) (bool, error) {
	n := len(env.seq.States)
	check := func(child *evalEnv) (bool, error) {
		body := f.Conclusion
		if f.Guard != nil {
			guards, err := matches(f.Guard, child)
			if err != nil {
				return false, err
			}
			for _, g := range guards {
				sub, err := matches(body, g)
				if err != nil {
					return false, err
				}
				if len(sub) == 0 {
					return false, nil
				}
			}
			return true, nil
		}
		if len(f.ValueVars) > 0 {
			return false, fmt.Errorf("starql: FORALL with value variables requires an IF guard")
		}
		sub, err := matches(body, child)
		if err != nil {
			return false, err
		}
		return len(sub) > 0, nil
	}
	if f.StateVar2 == "" {
		for i := 0; i < n; i++ {
			child := env.child()
			child.states[f.StateVar1] = i
			ok, err := check(child)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if f.Rel == "<" && !(i < j) {
				continue
			}
			if f.Rel == "<=" && !(i <= j) {
				continue
			}
			child := env.child()
			child.states[f.StateVar1] = i
			child.states[f.StateVar2] = j
			ok, err := check(child)
			if err != nil || !ok {
				return false, err
			}
		}
	}
	return true, nil
}

func matchGraphAtom(g *GraphAtom, env *evalEnv) ([]*evalEnv, error) {
	idx, ok := env.states[g.StateVar]
	if !ok {
		return nil, fmt.Errorf("starql: unbound state variable ?%s", g.StateVar)
	}
	st := &env.seq.States[idx]
	subj, err := resolveIRI(g.Pattern.S, env)
	if err != nil {
		return nil, err
	}
	var pred string
	if g.Pattern.TypeAtom || !g.Pattern.P.IsVar() {
		p := g.Pattern.P
		if p.IsVar() {
			return nil, fmt.Errorf("starql: variable predicate in graph atom")
		}
		pred = p.Term.Value
	} else {
		return nil, fmt.Errorf("starql: variable predicate in graph atom")
	}
	vals := st.Values(subj, pred)
	if g.Pattern.TypeAtom || g.Pattern.NoObject {
		if len(vals) > 0 {
			return []*evalEnv{env}, nil
		}
		return nil, nil
	}
	obj := g.Pattern.O
	if obj.IsVar() {
		if bound, ok := env.values[obj.Var]; ok {
			for _, v := range vals {
				if relation.Equal(v, bound) {
					return []*evalEnv{env}, nil
				}
			}
			return nil, nil
		}
		var out []*evalEnv
		for _, v := range vals {
			child := env.child()
			child.values[obj.Var] = v
			out = append(out, child)
		}
		return out, nil
	}
	want := termToValue(obj.Term)
	for _, v := range vals {
		if relation.Equal(v, want) {
			return []*evalEnv{env}, nil
		}
	}
	return nil, nil
}

func evalComparison(c *Comparison, env *evalEnv) (bool, error) {
	right, err := resolveValue(c.Right, env)
	if err != nil {
		return false, err
	}
	for _, l := range c.Left {
		left, err := resolveValue(l, env)
		if err != nil {
			return false, err
		}
		cmp, ok := relation.Compare(left, right)
		if !ok {
			return false, nil
		}
		var pass bool
		switch c.Op {
		case "<":
			pass = cmp < 0
		case "<=":
			pass = cmp <= 0
		case ">":
			pass = cmp > 0
		case ">=":
			pass = cmp >= 0
		case "=":
			pass = cmp == 0
		case "!=":
			pass = cmp != 0
		}
		if !pass {
			return false, nil
		}
	}
	return true, nil
}

// resolveIRI resolves a node to a subject IRI string.
func resolveIRI(n Node, env *evalEnv) (string, error) {
	if !n.IsVar() {
		return n.Term.Value, nil
	}
	if t, ok := env.binding[n.Var]; ok {
		return t.Value, nil
	}
	if v, ok := env.values[n.Var]; ok {
		return rawString(v), nil
	}
	return "", fmt.Errorf("starql: unbound subject variable ?%s", n.Var)
}

// resolveValue resolves a node to a comparable value: state variables
// become their state index, bound value variables their value, WHERE
// variables their term, constants their literal value.
func resolveValue(n Node, env *evalEnv) (relation.Value, error) {
	if !n.IsVar() {
		return termToValue(n.Term), nil
	}
	if i, ok := env.states[n.Var]; ok {
		return relation.Int(int64(i)), nil
	}
	if v, ok := env.values[n.Var]; ok {
		return v, nil
	}
	if t, ok := env.binding[n.Var]; ok {
		return termToValue(t), nil
	}
	return relation.Null, fmt.Errorf("starql: unbound variable ?%s", n.Var)
}

// termToValue converts an RDF term to an engine value.
func termToValue(t rdf.Term) relation.Value {
	if t.IsLiteral() {
		switch t.Datatype {
		case rdf.XSDInteger:
			if v, err := t.Integer(); err == nil {
				return relation.Int(v)
			}
		case rdf.XSDDouble, rdf.XSDDecimal:
			if v, err := t.Float(); err == nil {
				return relation.Float(v)
			}
		case rdf.XSDBoolean:
			if v, err := t.Bool(); err == nil {
				return relation.Bool_(v)
			}
		}
	}
	return relation.String_(t.Value)
}

// evalAggCall expands macros and evaluates built-in aggregates.
func evalAggCall(a *AggCall, env *evalEnv) (bool, error) {
	if def, ok := env.aggs[a.Name]; ok {
		if len(a.Args) != len(def.Params) {
			return false, fmt.Errorf("starql: aggregate %s arity mismatch", a.Name)
		}
		body := a.Expand(def)
		sub, err := matches(body, env)
		if err != nil {
			return false, err
		}
		return len(sub) > 0, nil
	}
	switch a.Name {
	case "THRESHOLD.ABOVE":
		// THRESHOLD.ABOVE(?s, attr, limit): some state has value > limit.
		if len(a.Args) != 3 {
			return false, fmt.Errorf("starql: THRESHOLD.ABOVE expects 3 arguments")
		}
		subj, err := resolveIRI(a.Args[0], env)
		if err != nil {
			return false, err
		}
		limit, err := resolveValue(a.Args[2], env)
		if err != nil {
			return false, err
		}
		for _, st := range env.seq.States {
			for _, v := range st.Values(subj, a.Args[1].Term.Value) {
				if c, ok := relation.Compare(v, limit); ok && c > 0 {
					return true, nil
				}
			}
		}
		return false, nil
	case "TREND.INCREASE":
		// TREND.INCREASE(?s, attr): last observed value exceeds the first.
		if len(a.Args) != 2 {
			return false, fmt.Errorf("starql: TREND.INCREASE expects 2 arguments")
		}
		subj, err := resolveIRI(a.Args[0], env)
		if err != nil {
			return false, err
		}
		series := seriesOf(env.seq, subj, a.Args[1].Term.Value)
		if len(series) < 2 {
			return false, nil
		}
		return series[len(series)-1] > series[0], nil
	case "PEARSON.CORRELATION":
		// PEARSON.CORRELATION(?a, ?b, attr, min): correlation of the two
		// subjects' per-state series is at least min.
		if len(a.Args) != 4 {
			return false, fmt.Errorf("starql: PEARSON.CORRELATION expects 4 arguments")
		}
		sa, err := resolveIRI(a.Args[0], env)
		if err != nil {
			return false, err
		}
		sb, err := resolveIRI(a.Args[1], env)
		if err != nil {
			return false, err
		}
		attr := a.Args[2].Term.Value
		min, err := resolveValue(a.Args[3], env)
		if err != nil {
			return false, err
		}
		minF, _ := min.AsFloat()
		r, ok := PearsonOverStates(env.seq, sa, sb, attr)
		return ok && r >= minF, nil
	default:
		return false, fmt.Errorf("starql: unknown aggregate %s", a.Name)
	}
}

// seriesOf extracts the per-state series of a subject's attribute
// (first value per state).
func seriesOf(seq *Sequence, subject, attr string) []float64 {
	var out []float64
	for _, st := range seq.States {
		vals := st.Values(subject, attr)
		if len(vals) == 0 {
			continue
		}
		if f, ok := vals[0].AsFloat(); ok {
			out = append(out, f)
		}
	}
	return out
}

// PearsonOverStates computes the Pearson correlation coefficient of two
// subjects' attribute series over states where both are present.
func PearsonOverStates(seq *Sequence, subjA, subjB, attr string) (float64, bool) {
	var xs, ys []float64
	for _, st := range seq.States {
		va := st.Values(subjA, attr)
		vb := st.Values(subjB, attr)
		if len(va) == 0 || len(vb) == 0 {
			continue
		}
		fa, ok1 := va[0].AsFloat()
		fb, ok2 := vb[0].AsFloat()
		if ok1 && ok2 {
			xs = append(xs, fa)
			ys = append(ys, fb)
		}
	}
	return Pearson(xs, ys)
}

// Pearson computes the correlation coefficient of two equal-length
// series; ok is false for fewer than two points or zero variance.
func Pearson(xs, ys []float64) (float64, bool) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, false
	}
	n := float64(len(xs))
	var sx, sy, sxx, syy, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
	}
	cov := sxy - sx*sy/n
	vx := sxx - sx*sx/n
	vy := syy - sy*sy/n
	if vx <= 0 || vy <= 0 {
		return 0, false
	}
	return cov / math.Sqrt(vx*vy), true
}

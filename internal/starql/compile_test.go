package starql

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/rdf"
)

// figure1Matcher compiles the paper's Figure 1 HAVING condition
// (MONOTONIC.HAVING macro over EXISTS + guarded two-state FORALL).
func figure1Matcher(t testing.TB) (*Query, *CompiledHaving) {
	t.Helper()
	q := MustParse(figure1)
	return q, CompileHaving(q.Having, q.Aggregates)
}

func TestCompileHavingFigure1(t *testing.T) {
	q, compiled := figure1Matcher(t)
	subject := "http://x/sensor/1"
	binding := Binding{"c2": rdf.NewIRI(subject)}
	cases := []struct {
		name string
		seq  *Sequence
		want bool
	}{
		{"monotonic ramp with failure", buildSeq(subject,
			[]float64{10, 12, 15, 19}, []bool{false, false, false, true}), true},
		{"non-monotonic with failure", buildSeq(subject,
			[]float64{10, 18, 15, 19}, []bool{false, false, false, true}), false},
		{"monotonic without failure", buildSeq(subject,
			[]float64{10, 12, 15, 19}, nil), false},
		{"empty window", &Sequence{}, false},
		{"single failing state", buildSeq(subject, []float64{10}, []bool{true}), true},
	}
	for _, c := range cases {
		got, err := compiled.Eval(c.seq, binding)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		want, err := EvalHaving(q.Having, c.seq, binding, q.Aggregates)
		if err != nil {
			t.Fatalf("%s: interpreter: %v", c.name, err)
		}
		if got != c.want || got != want {
			t.Errorf("%s: compiled=%t interpreter=%t want %t", c.name, got, want, c.want)
		}
	}
}

func TestCompiledHavingSlots(t *testing.T) {
	_, compiled := figure1Matcher(t)
	states, values, bindings := compiled.Slots()
	// ?k, ?i, ?j quantify states; ?x, ?y are value variables; ?c2 is the
	// WHERE binding. Reference slots may over-allocate (a variable gets a
	// slot in every namespace it could dynamically resolve through), so
	// assert floors, not exact counts.
	if states < 3 || values < 2 || bindings < 1 {
		t.Errorf("Slots() = %d states, %d values, %d bindings; want >= 3/2/1",
			states, values, bindings)
	}
}

// TestCompiledHavingParallelWindows drives one compiled matcher from
// many goroutines at once, as the parallel window pool does at runtime;
// run under -race this verifies the frame pool and the save/restore
// discipline share nothing across evaluations.
func TestCompiledHavingParallelWindows(t *testing.T) {
	q, compiled := figure1Matcher(t)
	subject := "http://x/sensor/1"
	binding := Binding{"c2": rdf.NewIRI(subject)}
	hit := buildSeq(subject, []float64{10, 12, 15, 19}, []bool{false, false, false, true})
	miss := buildSeq(subject, []float64{10, 18, 15, 19}, []bool{false, false, false, true})

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seq, want := hit, true
				if (i+w)%2 == 0 {
					seq, want = miss, false
				}
				ok, err := compiled.Eval(seq, binding)
				if err != nil || ok != want {
					select {
					case errs <- fmt.Errorf("worker %d iter %d: got %t, %v; want %t", w, i, ok, err, want):
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// The interpreter stays available as the runtime fallback.
	if ok, err := EvalHaving(q.Having, hit, binding, q.Aggregates); err != nil || !ok {
		t.Errorf("interpreter fallback = %t, %v", ok, err)
	}
}

// TestCompiledHavingShadowing: a nested quantifier reusing an enclosing
// variable name must shadow it exactly as the interpreter's dynamic
// environments do.
func TestCompiledHavingShadowing(t *testing.T) {
	subject := "http://x/sensor/1"
	binding := Binding{"s": rdf.NewIRI(subject)}
	// EXISTS ?k: (?k = 1 AND EXISTS ?k: ?k = 0) — inner ?k shadows, both
	// quantifiers must find their own index.
	h := &ExistsExpr{StateVar: "k", Cond: &AndExpr{
		&Comparison{Left: []Node{NVar("k")}, Op: "=", Right: NTerm(rdf.NewInteger(1))},
		&ExistsExpr{StateVar: "k", Cond: &Comparison{
			Left: []Node{NVar("k")}, Op: "=", Right: NTerm(rdf.NewInteger(0))}},
	}}
	seq := buildSeq(subject, []float64{5, 6}, nil)
	want, err := EvalHaving(h, seq, binding, nil)
	if err != nil || !want {
		t.Fatalf("interpreter = %t, %v", want, err)
	}
	got, err := CompileHaving(h, nil).Eval(seq, binding)
	if err != nil || got != want {
		t.Errorf("compiled = %t, %v; want %t", got, err, want)
	}
}

package starql

import (
	"strings"
	"testing"

	"repro/internal/ontology"
	"repro/internal/sql"
)

// testTBox mirrors the Siemens ontology fragment used by Figure 1, with
// a subclass to exercise enrichment.
func testTBox() *ontology.TBox {
	tb := ontology.New()
	tb.AddConceptInclusion(ontology.Named(sieNS+"TemperatureSensor"), ontology.Named(sieNS+"Sensor"))
	tb.AddDomain(sieNS+"inAssembly", ontology.Named(sieNS+"Assembly"))
	tb.AddRange(sieNS+"inAssembly", ontology.Named(sieNS+"Sensor"))
	return tb
}

func TestBGPToCQ(t *testing.T) {
	q := MustParse(figure1)
	c, err := BGPToCQ(q.Where, q.WhereVars())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Body) != 3 || len(c.Head) != 2 {
		t.Fatalf("cq = %v", c)
	}
	if c.Body[0].Pred != sieNS+"Assembly" || !c.Body[0].IsClass() {
		t.Errorf("atom 0 = %v", c.Body[0])
	}
	if c.Body[2].Pred != sieNS+"inAssembly" || c.Body[2].IsClass() {
		t.Errorf("atom 2 = %v", c.Body[2])
	}
}

func TestTranslateFigure1(t *testing.T) {
	q := MustParse(figure1)
	w := newTestMappings(t)
	tr := NewTranslator(testTBox(), w.set, w.cat)
	out, err := tr.Translate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Enrichment explores TemperatureSensor and the domain/range axioms;
	// minimisation then collapses the union to its most general disjunct
	// (inAssembly alone implies Assembly and Sensor via domain/range).
	if out.RewriteStats.Generated <= 1 {
		t.Errorf("enrichment generated %d queries before minimisation", out.RewriteStats.Generated)
	}
	if len(out.Enriched) != 1 {
		t.Errorf("minimised union = %d disjuncts (domain/range should collapse it)", len(out.Enriched))
	}
	if out.RewriteStats.AtomSteps == 0 {
		t.Error("no rewrite steps recorded")
	}
	// Unfolding yields at least one static SQL query.
	if len(out.StaticFleet) == 0 {
		t.Fatal("empty static fleet")
	}
	for _, stmt := range out.StaticFleet {
		if _, err := sql.Parse(stmt.String()); err != nil {
			t.Errorf("fleet SQL does not reparse: %v\n%s", err, stmt)
		}
	}
	// Window and pulse extracted.
	if out.Window.RangeMS != 10_000 || out.Window.SlideMS != 1_000 {
		t.Errorf("window = %+v", out.Window)
	}
	if out.Pulse == nil || out.Pulse.FrequencyMS != 1000 {
		t.Errorf("pulse = %+v", out.Pulse)
	}
}

func TestEvalBindingsFigure1(t *testing.T) {
	q := MustParse(figure1)
	w := newTestMappings(t)
	tr := NewTranslator(testTBox(), w.set, w.cat)
	out, err := tr.Translate(q, Options{SkipStreamFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := tr.EvalBindings(out)
	if err != nil {
		t.Fatal(err)
	}
	// Sensors 7, 8 in assembly 1; sensor 9 in assembly 2.
	if len(bindings) != 3 {
		t.Fatalf("bindings = %v", bindings)
	}
	seen := map[string]bool{}
	for _, b := range bindings {
		c1, c2 := b["c1"], b["c2"]
		if !c1.IsIRI() || !c2.IsIRI() {
			t.Fatalf("non-IRI binding: %v", b)
		}
		seen[c1.Value+"|"+c2.Value] = true
	}
	if !seen["http://siemens.com/data/assembly/1|http://siemens.com/data/sensor/7"] {
		t.Errorf("missing expected binding; got %v", seen)
	}
}

func TestStreamFleetPerBinding(t *testing.T) {
	q := MustParse(figure1)
	w := newTestMappings(t)
	tr := NewTranslator(testTBox(), w.set, w.cat)
	out, err := tr.Translate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// HAVING reads hasValue and showsFailure; 3 bindings × 2 predicates ×
	// 1 stream mapping each, inverted on the sensor variable = 6 queries.
	if len(out.StreamFleet) != 6 {
		t.Fatalf("stream fleet = %d queries:\n%v", len(out.StreamFleet), out.StreamFleet)
	}
	for _, stmt := range out.StreamFleet {
		s := stmt.String()
		if !strings.Contains(s, "STREAM S_Msmt [RANGE 10000 SLIDE 1000]") {
			t.Errorf("fleet query lacks window: %s", s)
		}
		if !strings.Contains(s, "w.sid =") {
			t.Errorf("fleet query lacks sensor selection: %s", s)
		}
		if _, err := sql.Parse(s); err != nil {
			t.Errorf("fleet SQL does not reparse: %v\n%s", err, s)
		}
	}
	// Conciseness claim (E3): the single STARQL query is much shorter
	// than its fleet.
	starqlLen := len(figure1)
	fleetLen := 0
	for _, stmt := range out.StreamFleet {
		fleetLen += len(stmt.String())
	}
	for _, stmt := range out.StaticFleet {
		fleetLen += len(stmt.String())
	}
	if fleetLen <= starqlLen/2 {
		t.Logf("fleet unexpectedly compact: starql=%d fleet=%d", starqlLen, fleetLen)
	}
}

func TestHavingStreamPredicates(t *testing.T) {
	q := MustParse(figure1)
	preds := q.HavingStreamPredicates()
	want := map[string]bool{sieNS + "hasValue": true, sieNS + "showsFailure": true}
	if len(preds) != 2 {
		t.Fatalf("preds = %v", preds)
	}
	for _, p := range preds {
		if !want[p] {
			t.Errorf("unexpected predicate %s", p)
		}
	}
}

func TestTranslateRejectsVariablePredicate(t *testing.T) {
	q := &Query{
		Name:      "s",
		Construct: []TriplePattern{{S: NVar("c"), P: NVar("p"), NoObject: true}},
		Streams:   []StreamClause{{Name: "m", RangeMS: 1000, SlideMS: 1000}},
		Where:     []TriplePattern{{S: NVar("c"), P: NVar("p"), NoObject: true}},
	}
	w := newTestMappings(t)
	tr := NewTranslator(testTBox(), w.set, w.cat)
	if _, err := tr.Translate(q, Options{}); err == nil {
		t.Error("variable predicate accepted")
	}
}

package starql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func analyzeHaving(t *testing.T, h HavingExpr, aggs map[string]*AggregateDef) MemoryAnalysis {
	t.Helper()
	q := &Query{
		Streams:    []StreamClause{{Name: "m", RangeMS: 10_000, SlideMS: 1_000}},
		Pulse:      &PulseClause{FrequencyMS: 1_000},
		Having:     h,
		Aggregates: aggs,
	}
	return AnalyzeMemory(q)
}

// The paper's Figure 1 query expands MONOTONIC.HAVING into a two-state
// FORALL ?i < ?j — the canonical unbounded shape: checking monotonicity
// pairwise retains the whole sequence.
func TestAnalyzeMemoryFigure1Unbounded(t *testing.T) {
	q, err := Parse(figure1)
	if err != nil {
		t.Fatal(err)
	}
	a := AnalyzeMemory(q)
	if a.Class != MemUnbounded {
		t.Fatalf("figure1 classified %v, want unbounded", a.Class)
	}
	if len(a.Reasons) == 0 || !strings.Contains(strings.Join(a.Reasons, "; "), "pairs of sequence states") {
		t.Errorf("reasons = %v, want pair-of-states reason", a.Reasons)
	}
	// RANGE 10s / SLIDE 1s → 10 overlapping windows of ~10 states each.
	if a.Overlap != 10 || a.StatesPerWindow != 10 {
		t.Errorf("overlap=%d states=%d, want 10/10", a.Overlap, a.StatesPerWindow)
	}
	// Unbounded queries get exactly the configured default budget.
	if got := a.Budget(1 << 20); got != 1<<20 {
		t.Errorf("Budget = %d, want %d", got, 1<<20)
	}
}

func TestAnalyzeMemoryBoundedShapes(t *testing.T) {
	attr := NTerm(rdf.NewIRI(sieNS + "hasValue"))
	cases := map[string]HavingExpr{
		"builtin threshold": &AggCall{Name: "THRESHOLD.ABOVE", Args: []Node{NVar("c"), attr, NTerm(rdf.NewInteger(90))}},
		"builtin pearson":   &AggCall{Name: "PEARSON.CORRELATION", Args: []Node{NVar("a"), NVar("b"), attr, NTerm(rdf.NewDouble(0.9))}},
		"single-state forall": &ForallExpr{
			StateVar1: "i", ValueVars: []string{"x"},
			Guard:      &GraphAtom{StateVar: "i", Pattern: TriplePattern{S: NVar("c"), P: attr, O: NVar("x")}},
			Conclusion: &Comparison{Left: []Node{NVar("x")}, Op: "<", Right: NTerm(rdf.NewInteger(90))},
		},
		"exists one state": &ExistsExpr{
			StateVar: "k",
			Cond:     &GraphAtom{StateVar: "k", Pattern: TriplePattern{S: NVar("c"), P: attr, O: NVar("x")}},
		},
		"boolean combination": &AndExpr{
			L: &NotExpr{E: &AggCall{Name: "TREND.INCREASE", Args: []Node{NVar("c"), attr}}},
			R: &OrExpr{
				L: &Comparison{Left: []Node{NVar("x")}, Op: ">", Right: NTerm(rdf.NewInteger(1))},
				R: &AggCall{Name: "THRESHOLD.ABOVE", Args: []Node{NVar("c"), attr, NTerm(rdf.NewInteger(5))}},
			},
		},
	}
	for name, h := range cases {
		a := analyzeHaving(t, h, nil)
		if a.Class != MemBounded {
			t.Errorf("%s classified unbounded: %v", name, a.Reasons)
		}
	}
	// No HAVING at all is trivially bounded.
	if a := analyzeHaving(t, nil, nil); a.Class != MemBounded {
		t.Errorf("nil HAVING classified unbounded: %v", a.Reasons)
	}
}

func TestAnalyzeMemoryUnboundedShapes(t *testing.T) {
	attr := NTerm(rdf.NewIRI(sieNS + "hasValue"))
	cases := map[string]HavingExpr{
		"two-state forall": &ForallExpr{
			StateVar1: "i", Rel: "<", StateVar2: "j", ValueVars: []string{"x", "y"},
			Guard: &AndExpr{
				L: &GraphAtom{StateVar: "i", Pattern: TriplePattern{S: NVar("c"), P: attr, O: NVar("x")}},
				R: &GraphAtom{StateVar: "j", Pattern: TriplePattern{S: NVar("c"), P: attr, O: NVar("y")}},
			},
			Conclusion: &Comparison{Left: []Node{NVar("x")}, Op: "<=", Right: NVar("y")},
		},
		"nested graph backreference": &ExistsExpr{
			StateVar: "k",
			Cond: &ExistsExpr{
				StateVar: "i",
				Cond:     &GraphAtom{StateVar: "k", Pattern: TriplePattern{S: NVar("c"), P: attr, O: NVar("x")}},
			},
		},
		"nested comparison backreference": &ExistsExpr{
			StateVar: "k",
			Cond: &ExistsExpr{
				StateVar: "i",
				Cond:     &Comparison{Left: []Node{NVar("i")}, Op: "<", Right: NVar("k")},
			},
		},
		"unknown aggregate": &AggCall{Name: "NOSUCH.AGG", Args: []Node{NVar("c")}},
	}
	for name, h := range cases {
		a := analyzeHaving(t, h, nil)
		if a.Class != MemUnbounded {
			t.Errorf("%s classified bounded", name)
		}
	}
}

// Macros classify by their expanded body, not their name: a single-state
// macro is bounded, MONOTONIC-style pairwise macros are not.
func TestAnalyzeMemoryMacroExpansion(t *testing.T) {
	attr := NTerm(rdf.NewIRI(sieNS + "hasValue"))
	bounded := &AggregateDef{
		Name: "SPIKE.ANY", Params: []string{"var", "attr"},
		Body: &ExistsExpr{
			StateVar: "k",
			Cond:     &GraphAtom{StateVar: "k", Pattern: TriplePattern{S: NVar("var"), P: NVar("attr"), O: NVar("x")}},
		},
	}
	call := &AggCall{Name: "SPIKE.ANY", Args: []Node{NVar("c"), attr}}
	a := analyzeHaving(t, call, map[string]*AggregateDef{"SPIKE.ANY": bounded})
	if a.Class != MemBounded {
		t.Errorf("single-state macro classified unbounded: %v", a.Reasons)
	}

	pairwise := &AggregateDef{
		Name: "MONO.LITE", Params: []string{"var", "attr"},
		Body: &ForallExpr{
			StateVar1: "i", Rel: "<", StateVar2: "j", ValueVars: []string{"x", "y"},
			Conclusion: &Comparison{Left: []Node{NVar("x")}, Op: "<=", Right: NVar("y")},
		},
	}
	call2 := &AggCall{Name: "MONO.LITE", Args: []Node{NVar("c"), attr}}
	if a := analyzeHaving(t, call2, map[string]*AggregateDef{"MONO.LITE": pairwise}); a.Class != MemUnbounded {
		t.Error("pairwise macro classified bounded")
	}
}

func TestMemoryBudgetDerivation(t *testing.T) {
	bounded := analyzeHaving(t, nil, nil)
	// 10 overlap × 10 states × 256 B = 25600 working set.
	if bounded.WindowBytes != 25_600 {
		t.Fatalf("WindowBytes = %d, want 25600", bounded.WindowBytes)
	}
	// Governance off: zero default yields zero budget.
	if got := bounded.Budget(0); got != 0 {
		t.Errorf("Budget(0) = %d, want 0", got)
	}
	// Bounded queries get max(model × headroom, default).
	if got := bounded.Budget(1 << 30); got != 1<<30 {
		t.Errorf("Budget(1GiB) = %d, want default to win", got)
	}
	if got, want := bounded.Budget(1), bounded.WindowBytes*DefaultMemoryModel.Headroom; got != want {
		t.Errorf("Budget(1) = %d, want sized estimate %d", got, want)
	}
	// Tumbling window with no pulse: one open window, states from slide.
	q := &Query{Streams: []StreamClause{{Name: "m", RangeMS: 1_000, SlideMS: 1_000}}}
	a := AnalyzeMemory(q)
	if a.Overlap != 1 || a.StatesPerWindow != 1 {
		t.Errorf("tumbling overlap=%d states=%d, want 1/1", a.Overlap, a.StatesPerWindow)
	}
}

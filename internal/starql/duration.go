package starql

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseDuration converts a STARQL duration literal into milliseconds.
// It accepts the ISO 8601 subset used by xsd:duration time parts
// ("PT10S", "PT1M30S", "PT0.5S", "PT2H") and the shorthand the demo UI
// uses ("1S", "500MS", "2M", "1H", or a bare integer meaning ms).
func ParseDuration(s string) (int64, error) {
	orig := s
	s = strings.ToUpper(strings.TrimSpace(s))
	if s == "" {
		return 0, fmt.Errorf("starql: empty duration")
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	s = strings.TrimPrefix(s, "P")
	s = strings.TrimPrefix(s, "T")
	var totalMS int64
	num := strings.Builder{}
	flush := func(unit string) error {
		if num.Len() == 0 {
			return fmt.Errorf("starql: duration %q: missing number before %s", orig, unit)
		}
		v, err := strconv.ParseFloat(num.String(), 64)
		if err != nil {
			return fmt.Errorf("starql: duration %q: %v", orig, err)
		}
		num.Reset()
		switch unit {
		case "MS":
			totalMS += int64(v)
		case "S":
			totalMS += int64(v * 1000)
		case "M":
			totalMS += int64(v * 60_000)
		case "H":
			totalMS += int64(v * 3_600_000)
		default:
			return fmt.Errorf("starql: duration %q: unknown unit %q", orig, unit)
		}
		return nil
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9' || c == '.':
			num.WriteByte(c)
		case c == 'M' && i+1 < len(s) && s[i+1] == 'S':
			if err := flush("MS"); err != nil {
				return 0, err
			}
			i++
		case c == 'S' || c == 'M' || c == 'H':
			if err := flush(string(c)); err != nil {
				return 0, err
			}
		default:
			return 0, fmt.Errorf("starql: duration %q: unexpected %q", orig, string(c))
		}
	}
	if num.Len() > 0 {
		return 0, fmt.Errorf("starql: duration %q: trailing number without unit", orig)
	}
	if totalMS <= 0 {
		return 0, fmt.Errorf("starql: duration %q is not positive", orig)
	}
	return totalMS, nil
}

// ParseClockTime converts a pulse START literal like "00:10:00CET" into
// milliseconds since midnight; time-zone suffixes are recorded but
// ignored (the replayer runs on a single simulated clock). Bare integers
// are taken as milliseconds.
func ParseClockTime(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("starql: negative clock time %q", s)
		}
		return n, nil
	}
	// Strip a trailing alphabetic time-zone tag.
	end := len(s)
	for end > 0 && (s[end-1] >= 'A' && s[end-1] <= 'Z' || s[end-1] >= 'a' && s[end-1] <= 'z') {
		end--
	}
	core := s[:end]
	parts := strings.Split(core, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("starql: clock time %q: want HH:MM:SS", s)
	}
	vals := make([]int64, 3)
	for i, p := range parts {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("starql: clock time %q: bad component %q", s, p)
		}
		vals[i] = v
	}
	if vals[1] >= 60 || vals[2] >= 60 {
		return 0, fmt.Errorf("starql: clock time %q out of range", s)
	}
	return (vals[0]*3600 + vals[1]*60 + vals[2]) * 1000, nil
}

package starql

import (
	"strings"
	"testing"
)

const filteredQuery = `
PREFIX sie: <http://siemens.com/ontology#>
PREFIX out: <http://x/out#>
CREATE STREAM s AS
CONSTRUCT GRAPH NOW { ?s rdf:type out:Hot }
FROM STREAM S_Msmt [NOW-"PT5S", NOW]->"PT1S",
STATIC DATA <http://x/static>, ONTOLOGY <http://x/tbox>
WHERE { ?a a sie:Assembly . ?s a sie:Sensor . ?a sie:inAssembly ?s . FILTER(?s != <http://siemens.com/data/sensor/9>) }
SEQUENCE BY StdSeq AS seq
HAVING THRESHOLD.ABOVE(?s, sie:hasValue, 90)
`

func TestParseFilter(t *testing.T) {
	q := MustParse(filteredQuery)
	if len(q.WhereFilters) != 1 {
		t.Fatalf("filters = %v", q.WhereFilters)
	}
	f := q.WhereFilters[0]
	if f.Op != "!=" || !f.Arg.IsVar() || f.Arg.Var != "s" {
		t.Errorf("filter = %+v", f)
	}
	if !strings.Contains(f.String(), "FILTER(?s != ") {
		t.Errorf("String = %s", f.String())
	}
}

func TestParseFilterErrors(t *testing.T) {
	bad := []string{
		// FILTER outside WHERE (in CONSTRUCT).
		strings.Replace(filteredQuery,
			"{ ?s rdf:type out:Hot }",
			"{ ?s rdf:type out:Hot . FILTER(?s = 1) }", 1),
		// Unbound filter variable.
		strings.Replace(filteredQuery, "FILTER(?s !=", "FILTER(?ghost !=", 1),
		// Variable right-hand side.
		strings.Replace(filteredQuery,
			"FILTER(?s != <http://siemens.com/data/sensor/9>)", "FILTER(?s != ?a)", 1),
		// Missing operator.
		strings.Replace(filteredQuery,
			"FILTER(?s != <http://siemens.com/data/sensor/9>)", "FILTER(?s)", 1),
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestBGPToCQWithFilters(t *testing.T) {
	q := MustParse(filteredQuery)
	c, err := BGPToCQ(q.Where, q.WhereVars(), q.WhereFilters...)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Filters) != 1 {
		t.Fatalf("cq filters = %v", c.Filters)
	}
	if !strings.Contains(c.String(), "FILTER(?s !=") {
		t.Errorf("cq String = %s", c)
	}
}

func TestFilterSurvivesRewritingAndUnfolding(t *testing.T) {
	q := MustParse(filteredQuery)
	w := newTestMappings(t)
	tr := NewTranslator(testTBox(), w.set, w.cat)
	out, err := tr.Translate(q, Options{SkipStreamFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every enriched disjunct carries the filter.
	for _, d := range out.Enriched {
		if len(d.Filters) != 1 {
			t.Fatalf("disjunct lost filter: %v", d)
		}
	}
	// The unfolded SQL selects around sensor 9.
	foundCond := false
	for _, stmt := range out.StaticFleet {
		if strings.Contains(stmt.String(), "<> 'http://siemens.com/data/sensor/9'") {
			foundCond = true
		}
	}
	if !foundCond {
		t.Fatalf("filter condition missing from fleet:\n%v", out.StaticFleet)
	}
	// Bindings exclude sensor 9 (sensors 7 and 8 remain).
	bindings, err := tr.EvalBindings(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(bindings) != 2 {
		t.Fatalf("bindings = %v", bindings)
	}
	for _, b := range bindings {
		if b["s"].Value == "http://siemens.com/data/sensor/9" {
			t.Fatalf("filtered sensor bound: %v", b)
		}
	}
}

func TestNumericFilterOnDataProperty(t *testing.T) {
	// FILTER on a data property value: sensors in assemblies with aid > 1.
	src := `
PREFIX sie: <http://siemens.com/ontology#>
PREFIX out: <http://x/out#>
CREATE STREAM s AS
CONSTRUCT GRAPH NOW { ?s rdf:type out:X }
FROM STREAM S_Msmt [NOW-"PT5S", NOW]->"PT1S",
STATIC DATA <http://x/static>, ONTOLOGY <http://x/tbox>
WHERE { ?s a sie:Sensor . ?s sie:hasSid ?v . FILTER(?v >= 8) }
`
	q := MustParse(src)
	w := newTestMappings(t)
	// Add a data property exposing the sensor id as a value.
	if err := w.set.Add(mappingHasSid()); err != nil {
		t.Fatal(err)
	}
	tr := NewTranslator(testTBox(), w.set, w.cat)
	out, err := tr.Translate(q, Options{SkipStreamFleet: true})
	if err != nil {
		t.Fatal(err)
	}
	bindings, err := tr.EvalBindings(out)
	if err != nil {
		t.Fatal(err)
	}
	// Sensors 8 and 9 pass; 7 is filtered.
	seen := map[string]bool{}
	for _, b := range bindings {
		seen[b["s"].Value] = true
	}
	if seen["http://siemens.com/data/sensor/7"] {
		t.Errorf("sensor 7 not filtered: %v", seen)
	}
	if !seen["http://siemens.com/data/sensor/8"] || !seen["http://siemens.com/data/sensor/9"] {
		t.Errorf("sensors 8/9 missing: %v", seen)
	}
}

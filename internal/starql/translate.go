package starql

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/obda/cq"
	"repro/internal/obda/mapping"
	"repro/internal/obda/rewrite"
	"repro/internal/ontology"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// Translation is the output of the STARQL2SQL(+) translator: the
// enrichment and unfolding artefacts plus everything the runtime needs
// to register the query.
type Translation struct {
	Query *Query

	// StaticCQ is the WHERE clause as a conjunctive query.
	StaticCQ cq.CQ
	// Enriched is the UCQ after PerfectRef enrichment (stage i).
	Enriched cq.UCQ
	// StaticFleet is the unfolded SQL fleet for the WHERE bindings
	// (stage ii); its union evaluates to the bindings.
	StaticFleet []*sql.SelectStmt
	// StreamFleet is the fleet of low-level window queries the high-level
	// query replaces: one SQL(+) query per (binding, stream attribute,
	// stream mapping). This is what the paper's engineers wrote by hand.
	StreamFleet []*sql.SelectStmt

	// WindowSpec/Pulse for the runtime.
	Window stream.WindowSpec
	Pulse  *stream.Pulse

	RewriteStats rewrite.Stats
	UnfoldStats  mapping.UnfoldStats
}

// Options tunes the translator.
type Options struct {
	Rewrite rewrite.Options
	Unfold  mapping.UnfoldOptions
	// SkipStreamFleet suppresses per-binding stream fleet generation
	// (used when only the runtime registration is needed).
	SkipStreamFleet bool
	// Bindings, when non-nil, are used for stream-fleet generation
	// instead of evaluating the static fleet (the caller already knows
	// the bindings).
	Bindings []Binding
	// Trace, when non-nil, receives "rewrite" and "unfold" spans with
	// the stage statistics as attributes.
	Trace *telemetry.Trace
}

// Translator holds the deployment assets: ontology, mappings, and the
// static catalog the unfolded queries run on.
type Translator struct {
	TBox     *ontology.TBox
	Mappings *mapping.Set
	Catalog  *relation.Catalog
	// Metrics, when non-nil, receives per-translation instruments
	// (starql.rewrite.*, starql.unfold.*).
	Metrics *telemetry.Registry
}

// NewTranslator bundles the deployment assets.
func NewTranslator(tbox *ontology.TBox, set *mapping.Set, cat *relation.Catalog) *Translator {
	return &Translator{TBox: tbox, Mappings: set, Catalog: cat}
}

// BGPToCQ converts WHERE triple patterns (and FILTER conditions) to a
// conjunctive query whose answer variables are all pattern variables.
func BGPToCQ(patterns []TriplePattern, head []string, filters ...FilterPattern) (cq.CQ, error) {
	var body []cq.Atom
	fresh := 0
	for _, t := range patterns {
		if t.P.IsVar() {
			return cq.CQ{}, fmt.Errorf("starql: variable predicates are not supported in WHERE")
		}
		pred := t.P.Term.Value
		switch {
		case t.TypeAtom:
			body = append(body, cq.ClassAtom(pred, toArg(t.S)))
		case t.NoObject:
			fresh++
			body = append(body, cq.PropAtom(pred, toArg(t.S), cq.V(fmt.Sprintf("_o%d", fresh))))
		default:
			body = append(body, cq.PropAtom(pred, toArg(t.S), toArg(t.O)))
		}
	}
	q := cq.New(head, body...)
	for _, f := range filters {
		if f.Value.IsVar() {
			return cq.CQ{}, fmt.Errorf("starql: FILTER right-hand side must be a constant")
		}
		q.Filters = append(q.Filters, cq.Filter{Arg: toArg(f.Arg), Op: f.Op, Value: f.Value.Term})
	}
	if err := q.Validate(); err != nil {
		return cq.CQ{}, err
	}
	return q, nil
}

// toArg converts a pattern node to a CQ argument.
func toArg(n Node) cq.Arg {
	if n.IsVar() {
		return cq.V(n.Var)
	}
	return cq.C(n.Term)
}

// Translate runs the full pipeline: enrichment of the WHERE clause,
// unfolding into the static SQL fleet, window/pulse extraction, and
// (optionally) the per-binding stream fleet.
func (tr *Translator) Translate(q *Query, opts Options) (*Translation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	out := &Translation{Query: q}

	staticCQ, err := BGPToCQ(q.Where, q.WhereVars(), q.WhereFilters...)
	if err != nil {
		return nil, err
	}
	out.StaticCQ = staticCQ

	rspan := opts.Trace.StartSpan("rewrite")
	enriched, rstats, err := rewrite.PerfectRef(staticCQ, tr.TBox, opts.Rewrite)
	if err != nil {
		rspan.SetAttr("error", err.Error())
		rspan.End()
		return nil, err
	}
	out.Enriched = enriched
	out.RewriteStats = rstats
	rspan.SetAttr("generated", rstats.Generated).
		SetAttr("result", rstats.Result).
		SetAttr("atom_steps", rstats.AtomSteps).
		SetAttr("reduce_steps", rstats.ReduceSteps)
	rspan.End()

	uopts := opts.Unfold
	if uopts.Prune && uopts.Catalog == nil {
		uopts.Catalog = tr.Catalog
	}
	uspan := opts.Trace.StartSpan("unfold")
	fleet, ustats, err := mapping.Unfold(enriched, tr.Mappings, uopts)
	if err != nil {
		uspan.SetAttr("error", err.Error())
		uspan.End()
		return nil, err
	}
	out.StaticFleet = fleet
	out.UnfoldStats = ustats
	uspan.SetAttr("cqs", ustats.CQs).
		SetAttr("combinations", ustats.Combinations).
		SetAttr("pruned", ustats.Pruned).
		SetAttr("constraint_pruned", ustats.ConstraintPruned).
		SetAttr("fk_joins_removed", ustats.FKJoinsRemoved).
		SetAttr("fleet_size", ustats.FleetSize)
	uspan.End()

	sc := q.Streams[0]
	out.Window = stream.WindowSpec{RangeMS: sc.RangeMS, SlideMS: sc.SlideMS}
	if q.Pulse != nil {
		out.Pulse = &stream.Pulse{StartMS: q.Pulse.StartMS, FrequencyMS: q.Pulse.FrequencyMS}
	}

	if !opts.SkipStreamFleet {
		bindings := opts.Bindings
		if bindings == nil {
			bindings, err = tr.EvalBindings(out)
			if err != nil {
				return nil, err
			}
		}
		out.StreamFleet, err = tr.streamFleet(q, bindings, uopts, &out.UnfoldStats)
		if err != nil {
			return nil, err
		}
	}
	tr.recordStats(rstats, out.UnfoldStats)
	return out, nil
}

// recordStats folds one translation's stage statistics into the
// translator's registry (no-op without one). The histograms record the
// per-query rewrite size and unfolding fan-out distributions.
func (tr *Translator) recordStats(r rewrite.Stats, u mapping.UnfoldStats) {
	if tr.Metrics == nil {
		return
	}
	tr.Metrics.Counter("starql.translations").Inc()
	tr.Metrics.Counter("starql.rewrite.generated").Add(int64(r.Generated))
	tr.Metrics.Counter("starql.rewrite.atom_steps").Add(int64(r.AtomSteps))
	tr.Metrics.Counter("starql.rewrite.reduce_steps").Add(int64(r.ReduceSteps))
	tr.Metrics.Counter("starql.unfold.combinations").Add(int64(u.Combinations))
	tr.Metrics.Counter("starql.unfold.pruned").Add(int64(u.Pruned))
	tr.Metrics.Counter("starql.unfold.constraint_pruned").Add(int64(u.ConstraintPruned))
	tr.Metrics.Counter("starql.unfold.fk_joins_removed").Add(int64(u.FKJoinsRemoved))
	tr.Metrics.Counter("starql.unfold.unmapped_atoms").Add(int64(u.UnmappedAtoms))
	tr.Metrics.Histogram("starql.rewrite.ucq_size", telemetry.SizeBuckets).Observe(float64(r.Result))
	tr.Metrics.Histogram("starql.unfold.fleet_size", telemetry.SizeBuckets).Observe(float64(u.FleetSize))
}

// EvalBindings executes the static fleet against the catalog and decodes
// the result rows into WHERE bindings.
func (tr *Translator) EvalBindings(t *Translation) ([]Binding, error) {
	headVars := t.StaticCQ.Head
	seen := map[string]bool{}
	var out []Binding
	ctx := engine.NewExecContext(tr.Catalog)
	for _, stmt := range t.StaticFleet {
		// Static bindings come only from non-stream sources; fleets whose
		// FROM references a stream are runtime-only.
		if referencesStream(stmt) {
			continue
		}
		plan, err := engine.Build(stmt, engine.CatalogResolver(tr.Catalog))
		if err != nil {
			return nil, err
		}
		rows, err := plan.Execute(ctx)
		if err != nil {
			return nil, err
		}
		schema := plan.Schema()
		for _, row := range rows {
			b := Binding{}
			var key strings.Builder
			for _, h := range headVars {
				idx, err := schema.IndexOf(h)
				if err != nil {
					return nil, fmt.Errorf("starql: fleet output lacks variable %s: %w", h, err)
				}
				b[h] = valueToTerm(row[idx])
				key.WriteString(b[h].String())
				key.WriteByte(0x1f)
			}
			if !seen[key.String()] {
				seen[key.String()] = true
				out = append(out, b)
			}
		}
	}
	return out, nil
}

func referencesStream(stmt *sql.SelectStmt) bool {
	for _, b := range stmt.Branches() {
		for _, tr := range b.From {
			if tr.IsStream {
				return true
			}
			for _, j := range tr.Joins {
				if j.Right.IsStream {
					return true
				}
			}
		}
	}
	return false
}

// valueToTerm converts an engine value back to an RDF term: strings that
// look like IRIs become IRIs, everything else becomes a typed literal.
func valueToTerm(v relation.Value) rdf.Term {
	switch v.Type {
	case relation.TString:
		if strings.Contains(v.Str, "://") || strings.HasPrefix(v.Str, "urn:") {
			return rdf.NewIRI(v.Str)
		}
		return rdf.NewLiteral(v.Str)
	case relation.TInt:
		return rdf.NewInteger(v.Int)
	case relation.TFloat:
		return rdf.NewDouble(v.Float)
	case relation.TBool:
		return rdf.NewBoolean(v.Bool)
	case relation.TTime:
		return rdf.NewTypedLiteral(fmt.Sprint(v.Int), rdf.XSDDateTime)
	default:
		return rdf.NewLiteral(v.String())
	}
}

// HavingStreamPredicates returns the distinct predicate IRIs the HAVING
// clause reads from stream states, after macro expansion.
func (q *Query) HavingStreamPredicates() []string {
	if q.Having == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	var walk func(h HavingExpr)
	add := func(iri string) {
		if !seen[iri] {
			seen[iri] = true
			out = append(out, iri)
		}
	}
	walk = func(h HavingExpr) {
		switch x := h.(type) {
		case *AndExpr:
			walk(x.L)
			walk(x.R)
		case *OrExpr:
			walk(x.L)
			walk(x.R)
		case *NotExpr:
			walk(x.E)
		case *ExistsExpr:
			walk(x.Cond)
		case *ForallExpr:
			if x.Guard != nil {
				walk(x.Guard)
			}
			walk(x.Conclusion)
		case *ifThenExpr:
			walk(x.guard)
			walk(x.then)
		case *GraphAtom:
			if !x.Pattern.P.IsVar() {
				add(x.Pattern.P.Term.Value)
			}
		case *AggCall:
			if def, ok := q.Aggregates[x.Name]; ok && len(x.Args) == len(def.Params) {
				walk(x.Expand(def))
				return
			}
			// Built-ins take the attribute as an IRI argument.
			for _, a := range x.Args {
				if !a.IsVar() && a.Term.IsIRI() {
					add(a.Term.Value)
				}
			}
		}
	}
	walk(q.Having)
	return out
}

// streamFleet generates the low-level per-binding window queries: for
// every binding, every HAVING stream predicate, and every stream mapping
// of that predicate, one SQL(+) query that an engineer would otherwise
// write by hand (the paper: "a fleet with hundreds of queries ...
// semantically the same but syntactically different").
//
// With uopts.Prune set, members whose inverted-subject constants
// violate a declared FK constraint of the stream mapping are dropped
// before registration: the FK says every stream tuple's key appears in
// a referenced static table, so a member pinned to a key absent from
// that table can never produce a row. This is where the Figure 1 fleet
// shrinks — each sensor binding only feeds the stream its source
// actually routes to.
func (tr *Translator) streamFleet(q *Query, bindings []Binding, uopts mapping.UnfoldOptions, ustats *mapping.UnfoldStats) ([]*sql.SelectStmt, error) {
	sc := q.Streams[0]
	preds := q.HavingStreamPredicates()
	var fleet []*sql.SelectStmt
	for _, b := range bindings {
		for _, pred := range preds {
			for _, m := range tr.Mappings.ForPred(pred) {
				if !m.Source.IsStream {
					continue
				}
				// The subject of the HAVING atoms is the sensor-like WHERE
				// variable; find a binding value the subject template can
				// invert. Try each bound term.
				for _, v := range q.WhereVars() {
					term, ok := b[v]
					if !ok || !term.IsIRI() {
						continue
					}
					segs, ok := m.Subject.Invert(term.Value)
					if !ok {
						continue
					}
					stmt := sql.NewSelect()
					alias := "w"
					stmt.From = []*sql.TableRef{{
						Table: m.Source.Table, IsStream: true, Alias: alias,
						Window: &sql.WindowSpec{RangeMS: sc.RangeMS, SlideMS: sc.SlideMS},
					}}
					var conds []sql.Expr
					consts := map[string]relation.Value{}
					for i, seg := range segs {
						lit := segmentLit(seg)
						conds = append(conds, sql.Bin("=",
							&sql.ColumnRef{Table: alias, Name: m.Subject.Columns[i]},
							lit))
						if l, ok := lit.(*sql.Literal); ok {
							consts[strings.ToLower(m.Subject.Columns[i])] = l.Value
						}
					}
					if uopts.Prune && fkProvesEmpty(m, consts, tr.Catalog) {
						ustats.ConstraintPruned++
						continue
					}
					if m.Source.Where != nil {
						conds = append(conds, qualify(m.Source.Where, alias))
					}
					stmt.Where = sql.AndAll(conds...)
					if m.IsClass || m.ObjectIsData {
						col := "1"
						if !m.IsClass {
							col = m.Object.Columns[0]
						}
						stmt.Items = []sql.SelectItem{{Expr: &sql.ColumnRef{Table: alias, Name: col}, Alias: "value"}}
					} else {
						stmt.Items = []sql.SelectItem{{Expr: &sql.ColumnRef{Table: alias, Name: m.Object.Columns[0]}, Alias: "value"}}
					}
					fleet = append(fleet, stmt)
				}
			}
		}
	}
	return fleet, nil
}

// fkProvesEmpty reports whether a stream member pinned to the given
// column constants is provably empty under one of the mapping's
// declared FK constraints: all FK columns pinned, and the referenced
// static table holds no matching row.
func fkProvesEmpty(m mapping.Mapping, consts map[string]relation.Value, cat *relation.Catalog) bool {
	if cat == nil {
		return false
	}
	for _, fk := range m.FKs {
		vals := make([]relation.Value, len(fk.Columns))
		covered := true
		for k, col := range fk.Columns {
			v, ok := consts[strings.ToLower(col)]
			if !ok {
				covered = false
				break
			}
			vals[k] = v
		}
		if !covered {
			continue
		}
		ref, err := cat.Get(fk.RefTable)
		if err != nil {
			continue
		}
		matches, _, err := ref.Lookup(fk.RefColumns, vals)
		if err == nil && len(matches) == 0 {
			return true
		}
	}
	return false
}

func segmentLit(seg string) sql.Expr {
	allDigits := len(seg) > 0
	for i := 0; i < len(seg); i++ {
		if seg[i] < '0' || seg[i] > '9' {
			allDigits = false
			break
		}
	}
	if allDigits && len(seg) < 19 {
		var n int64
		for i := 0; i < len(seg); i++ {
			n = n*10 + int64(seg[i]-'0')
		}
		return sql.Lit(relation.Int(n))
	}
	return sql.Lit(relation.String_(seg))
}

// qualify rewrites bare column refs to alias-qualified ones (local copy
// of the mapping package helper, kept unexported there).
func qualify(e sql.Expr, alias string) sql.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *sql.ColumnRef:
		return &sql.ColumnRef{Table: alias, Name: x.Name}
	case *sql.BinaryExpr:
		return sql.Bin(x.Op, qualify(x.Left, alias), qualify(x.Right, alias))
	case *sql.UnaryExpr:
		return &sql.UnaryExpr{Op: x.Op, Expr: qualify(x.Expr, alias)}
	case *sql.IsNullExpr:
		return &sql.IsNullExpr{Expr: qualify(x.Expr, alias), Negate: x.Negate}
	default:
		return e
	}
}

package starql

import (
	"fmt"
	"strings"
)

// HavingExpr is the HAVING condition language: boolean combinations of
// graph atoms over sequence states, comparisons, quantifiers over state
// indexes, guarded implications, and aggregate-macro invocations.
type HavingExpr interface {
	fmt.Stringer
	check(ctx *checkCtx) error
	// substitute replaces $-parameters (macro expansion) and returns the
	// rewritten expression.
	substitute(args map[string]Node) HavingExpr
}

// checkCtx tracks variable scopes during validation.
type checkCtx struct {
	stateVars map[string]bool
	valueVars map[string]bool
	whereVars map[string]bool
	aggs      map[string]*AggregateDef
}

func (c *checkCtx) child() *checkCtx {
	out := &checkCtx{
		stateVars: map[string]bool{},
		valueVars: map[string]bool{},
		whereVars: c.whereVars,
		aggs:      c.aggs,
	}
	for k := range c.stateVars {
		out.stateVars[k] = true
	}
	for k := range c.valueVars {
		out.valueVars[k] = true
	}
	return out
}

// ---- Boolean connectives ----

// AndExpr is conjunction.
type AndExpr struct{ L, R HavingExpr }

func (a *AndExpr) String() string { return "(" + a.L.String() + " AND " + a.R.String() + ")" }
func (a *AndExpr) check(ctx *checkCtx) error {
	if err := a.L.check(ctx); err != nil {
		return err
	}
	return a.R.check(ctx)
}
func (a *AndExpr) substitute(args map[string]Node) HavingExpr {
	return &AndExpr{a.L.substitute(args), a.R.substitute(args)}
}

// OrExpr is disjunction.
type OrExpr struct{ L, R HavingExpr }

func (o *OrExpr) String() string { return "(" + o.L.String() + " OR " + o.R.String() + ")" }
func (o *OrExpr) check(ctx *checkCtx) error {
	if err := o.L.check(ctx); err != nil {
		return err
	}
	return o.R.check(ctx)
}
func (o *OrExpr) substitute(args map[string]Node) HavingExpr {
	return &OrExpr{o.L.substitute(args), o.R.substitute(args)}
}

// NotExpr is negation.
type NotExpr struct{ E HavingExpr }

func (n *NotExpr) String() string                             { return "NOT " + n.E.String() }
func (n *NotExpr) check(ctx *checkCtx) error                  { return n.E.check(ctx) }
func (n *NotExpr) substitute(args map[string]Node) HavingExpr { return &NotExpr{n.E.substitute(args)} }

// ---- Quantifiers ----

// ExistsExpr is "EXISTS ?k IN SEQ: cond".
type ExistsExpr struct {
	StateVar string
	Cond     HavingExpr
}

func (e *ExistsExpr) String() string {
	return "EXISTS ?" + e.StateVar + " IN SEQ: " + e.Cond.String()
}
func (e *ExistsExpr) check(ctx *checkCtx) error {
	child := ctx.child()
	child.stateVars[e.StateVar] = true
	return e.Cond.check(child)
}
func (e *ExistsExpr) substitute(args map[string]Node) HavingExpr {
	return &ExistsExpr{e.StateVar, e.Cond.substitute(args)}
}

// ForallExpr is "FORALL ?i < ?j IN seq, ?x, ?y: IF (guard) THEN conclusion"
// (the guard generates value-variable bindings; the conclusion must hold
// for each). The Rel field orders the two state variables ("<", "<=");
// a single-state form has StateVar2 == "".
type ForallExpr struct {
	StateVar1  string
	Rel        string // "<" or "<=" between the state vars; "" if one var
	StateVar2  string
	ValueVars  []string
	Guard      HavingExpr // nil means unguarded (conclusion must always hold)
	Conclusion HavingExpr
}

func (f *ForallExpr) String() string {
	var sb strings.Builder
	sb.WriteString("FORALL ?" + f.StateVar1)
	if f.StateVar2 != "" {
		sb.WriteString(" " + f.Rel + " ?" + f.StateVar2)
	}
	sb.WriteString(" IN seq")
	for _, v := range f.ValueVars {
		sb.WriteString(", ?" + v)
	}
	sb.WriteString(": ")
	if f.Guard != nil {
		sb.WriteString("IF (" + f.Guard.String() + ") THEN ")
	}
	sb.WriteString(f.Conclusion.String())
	return sb.String()
}

func (f *ForallExpr) check(ctx *checkCtx) error {
	child := ctx.child()
	child.stateVars[f.StateVar1] = true
	if f.StateVar2 != "" {
		child.stateVars[f.StateVar2] = true
		if f.Rel != "<" && f.Rel != "<=" {
			return fmt.Errorf("invalid state relation %q", f.Rel)
		}
	}
	for _, v := range f.ValueVars {
		child.valueVars[v] = true
	}
	if f.Guard != nil {
		if err := f.Guard.check(child); err != nil {
			return err
		}
	}
	return f.Conclusion.check(child)
}

func (f *ForallExpr) substitute(args map[string]Node) HavingExpr {
	out := &ForallExpr{
		StateVar1: f.StateVar1, Rel: f.Rel, StateVar2: f.StateVar2,
		ValueVars: f.ValueVars, Conclusion: f.Conclusion.substitute(args),
	}
	if f.Guard != nil {
		out.Guard = f.Guard.substitute(args)
	}
	return out
}

// ---- Atoms ----

// GraphAtom is "GRAPH ?k { s p o }": the pattern must hold in the
// sequence state bound to the state variable. Patterns follow
// TriplePattern conventions (NoObject = existential object).
type GraphAtom struct {
	StateVar string
	Pattern  TriplePattern
}

func (g *GraphAtom) String() string {
	return "GRAPH ?" + g.StateVar + " { " + g.Pattern.String() + " }"
}

func (g *GraphAtom) check(ctx *checkCtx) error {
	if !ctx.stateVars[g.StateVar] {
		return fmt.Errorf("unbound state variable ?%s", g.StateVar)
	}
	for _, n := range []Node{g.Pattern.S, g.Pattern.P} {
		if n.IsVar() && !ctx.whereVars[n.Var] && !ctx.valueVars[n.Var] {
			return fmt.Errorf("unbound variable ?%s in graph atom", n.Var)
		}
	}
	// Object variables may be fresh: they are bound by the atom itself
	// (generator position).
	return nil
}

func (g *GraphAtom) substitute(args map[string]Node) HavingExpr {
	out := &GraphAtom{StateVar: g.StateVar, Pattern: g.Pattern}
	out.Pattern.S = substNode(g.Pattern.S, args)
	out.Pattern.P = substNode(g.Pattern.P, args)
	out.Pattern.O = substNode(g.Pattern.O, args)
	return out
}

func substNode(n Node, args map[string]Node) Node {
	if n.IsVar() {
		if r, ok := args[n.Var]; ok {
			return r
		}
	}
	return n
}

// Comparison is "a op b" where a, b are value variables, state
// variables, or constants, and op ∈ {<, <=, >, >=, =, !=}. The LHS may
// be a comma list ("?i, ?j < ?k" means both compare).
type Comparison struct {
	Left  []Node
	Op    string
	Right Node
}

func (c *Comparison) String() string {
	parts := make([]string, len(c.Left))
	for i, l := range c.Left {
		parts[i] = l.String()
	}
	return strings.Join(parts, ", ") + " " + c.Op + " " + c.Right.String()
}

func (c *Comparison) check(ctx *checkCtx) error {
	switch c.Op {
	case "<", "<=", ">", ">=", "=", "!=":
	default:
		return fmt.Errorf("invalid comparison operator %q", c.Op)
	}
	for _, n := range append(append([]Node{}, c.Left...), c.Right) {
		if n.IsVar() && !ctx.stateVars[n.Var] && !ctx.valueVars[n.Var] && !ctx.whereVars[n.Var] {
			return fmt.Errorf("unbound variable ?%s in comparison", n.Var)
		}
	}
	return nil
}

func (c *Comparison) substitute(args map[string]Node) HavingExpr {
	out := &Comparison{Op: c.Op, Right: substNode(c.Right, args)}
	for _, l := range c.Left {
		out.Left = append(out.Left, substNode(l, args))
	}
	return out
}

// AggCall invokes a registered aggregate macro, e.g.
// "MONOTONIC.HAVING(?c2, sie:hasValue)".
type AggCall struct {
	Name string // canonical dotted name, upper-cased
	Args []Node
}

func (a *AggCall) String() string {
	parts := make([]string, len(a.Args))
	for i, x := range a.Args {
		parts[i] = x.String()
	}
	return a.Name + "(" + strings.Join(parts, ",") + ")"
}

func (a *AggCall) check(ctx *checkCtx) error {
	def, ok := ctx.aggs[a.Name]
	if !ok {
		if _, builtin := builtinAggregates[a.Name]; builtin {
			return nil
		}
		return fmt.Errorf("unknown aggregate %s", a.Name)
	}
	if len(a.Args) != len(def.Params) {
		return fmt.Errorf("aggregate %s expects %d arguments, got %d", a.Name, len(def.Params), len(a.Args))
	}
	// Check the expanded body.
	return a.Expand(def).check(ctx)
}

// Expand substitutes the call's arguments into the macro body.
func (a *AggCall) Expand(def *AggregateDef) HavingExpr {
	args := map[string]Node{}
	for i, p := range def.Params {
		args[p] = a.Args[i]
	}
	return def.Body.substitute(args)
}

func (a *AggCall) substitute(args map[string]Node) HavingExpr {
	out := &AggCall{Name: a.Name}
	for _, x := range a.Args {
		out.Args = append(out.Args, substNode(x, args))
	}
	return out
}

// builtinAggregates are natively-evaluated sequence aggregates; they
// cover the paper's catalog tasks that are cumbersome as macros
// (Pearson correlation across two streams of states, thresholds).
var builtinAggregates = map[string]struct{}{
	"PEARSON.CORRELATION": {},
	"THRESHOLD.ABOVE":     {},
	"TREND.INCREASE":      {},
}

package starql

import (
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/stream"
)

// figure1 is the paper's Figure 1 query, verbatim up to whitespace, with
// a PREFIX declaration supplying the sie namespace.
const figure1 = `
PREFIX sie: <http://siemens.com/ontology#>
PREFIX : <http://www.optique-project.eu/siemens/out#>

CREATE STREAM S_out AS
CONSTRUCT GRAPH NOW { ?c2 rdf:type :MonInc }
FROM STREAM S_Msmt [NOW-"PT10S"^^xsd:duration, NOW]->"PT1S"^^xsd:duration,
STATIC DATA <http://www.optique-project.eu/siemens/ABoxstatic>,
ONTOLOGY <http://www.optique-project.eu/siemens/TBox>
USING PULSE WITH START = "00:00:00CET", FREQUENCY = "1S"
WHERE {?c1 a sie:Assembly. ?c2 a sie:Sensor. ?c1 sie:inAssembly ?c2.}
SEQUENCE BY StdSeq AS seq
HAVING MONOTONIC.HAVING(?c2, sie:hasValue)

CREATE AGGREGATE MONOTONIC:HAVING ($var, $attr) AS
HAVING EXISTS ?k IN SEQ: GRAPH ?k { $var sie:showsFailure } AND
FORALL ?i < ?j IN seq, ?x, ?y:
IF ( ?i, ?j < ?k AND GRAPH ?i {$var $attr ?x} AND GRAPH ?j {$var $attr ?y}) THEN ?x<=?y
`

const sieNS = "http://siemens.com/ontology#"

func TestParseDurations(t *testing.T) {
	cases := map[string]int64{
		"PT10S":   10_000,
		"PT1M30S": 90_000,
		"PT0.5S":  500,
		"PT2H":    7_200_000,
		"1S":      1_000,
		"500MS":   500,
		"2M":      120_000,
		"250":     250,
	}
	for in, want := range cases {
		got, err := ParseDuration(in)
		if err != nil || got != want {
			t.Errorf("ParseDuration(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "PT", "10X", "S", "PT-1S"} {
		if _, err := ParseDuration(bad); err == nil {
			t.Errorf("ParseDuration(%q) accepted", bad)
		}
	}
}

func TestParseClockTime(t *testing.T) {
	cases := map[string]int64{
		"00:10:00CET": 600_000,
		"01:00:00":    3_600_000,
		"00:00:05Z":   5_000,
		"1234":        1234,
	}
	for in, want := range cases {
		got, err := ParseClockTime(in)
		if err != nil || got != want {
			t.Errorf("ParseClockTime(%q) = %d, %v; want %d", in, got, err, want)
		}
	}
	for _, bad := range []string{"10:00", "xx:yy:zz", "00:99:00", "-5"} {
		if _, err := ParseClockTime(bad); err == nil {
			t.Errorf("ParseClockTime(%q) accepted", bad)
		}
	}
}

func TestParseFigure1(t *testing.T) {
	q, err := Parse(figure1)
	if err != nil {
		t.Fatalf("Parse(figure1): %v", err)
	}
	if q.Name != "S_out" {
		t.Errorf("name = %q", q.Name)
	}
	if len(q.Construct) != 1 || !q.Construct[0].TypeAtom {
		t.Errorf("construct = %v", q.Construct)
	}
	if len(q.Streams) != 1 || q.Streams[0].Name != "S_Msmt" ||
		q.Streams[0].RangeMS != 10_000 || q.Streams[0].SlideMS != 1_000 {
		t.Errorf("streams = %+v", q.Streams)
	}
	if q.StaticIRI == "" || q.OntologyIRI == "" {
		t.Error("static/ontology IRIs missing")
	}
	if q.Pulse == nil || q.Pulse.FrequencyMS != 1000 {
		t.Errorf("pulse = %+v", q.Pulse)
	}
	if len(q.Where) != 3 {
		t.Fatalf("where = %v", q.Where)
	}
	if q.SequenceBy != "StdSeq" || q.SeqAlias != "seq" {
		t.Errorf("sequence = %q as %q", q.SequenceBy, q.SeqAlias)
	}
	call, ok := q.Having.(*AggCall)
	if !ok || call.Name != "MONOTONIC.HAVING" || len(call.Args) != 2 {
		t.Fatalf("having = %v", q.Having)
	}
	def, ok := q.Aggregates["MONOTONIC.HAVING"]
	if !ok || len(def.Params) != 2 {
		t.Fatalf("aggregate def = %+v", q.Aggregates)
	}
	// Body: EXISTS wrapping AND of graph atom and FORALL.
	ex, ok := def.Body.(*ExistsExpr)
	if !ok {
		t.Fatalf("aggregate body = %T", def.Body)
	}
	and, ok := ex.Cond.(*AndExpr)
	if !ok {
		t.Fatalf("exists cond = %T", ex.Cond)
	}
	if _, ok := and.L.(*GraphAtom); !ok {
		t.Errorf("left of AND = %T", and.L)
	}
	fa, ok := and.R.(*ForallExpr)
	if !ok {
		t.Fatalf("right of AND = %T", and.R)
	}
	if fa.StateVar1 != "i" || fa.StateVar2 != "j" || fa.Rel != "<" {
		t.Errorf("forall = %+v", fa)
	}
	if len(fa.ValueVars) != 2 || fa.Guard == nil {
		t.Errorf("forall vars/guard = %+v", fa)
	}
	if _, ok := fa.Conclusion.(*Comparison); !ok {
		t.Errorf("conclusion = %T", fa.Conclusion)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"CREATE STREAM s AS",                     // incomplete
		"CREATE TABLE s AS",                      // wrong kind
		figure1 + "\n" + figure1,                 // two CREATE STREAM
		strings.Replace(figure1, "WHERE", "", 1), // missing WHERE
		strings.Replace(figure1, `"PT10S"^^xsd:duration`, `"PT0S"`, 1), // zero range
	}
	for i, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestValidateUnboundConstructVar(t *testing.T) {
	src := `
CREATE STREAM s AS
CONSTRUCT GRAPH NOW { ?nope a <http://x#C> }
FROM STREAM m [NOW-"1S", NOW]->"1S"
WHERE { ?c a <http://x#Sensor> . }
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("unbound construct var accepted: %v", err)
	}
}

func TestValidateUnknownAggregate(t *testing.T) {
	src := `
CREATE STREAM s AS
CONSTRUCT GRAPH NOW { ?c a <http://x#C> }
FROM STREAM m [NOW-"1S", NOW]->"1S"
WHERE { ?c a <http://x#Sensor> . }
HAVING NOSUCH.AGG(?c, <http://x#v>)
`
	if _, err := Parse(src); err == nil || !strings.Contains(err.Error(), "unknown aggregate") {
		t.Errorf("unknown aggregate accepted: %v", err)
	}
}

// ---- sequence construction and HAVING evaluation ----

func msmtStreamSchema() stream.Schema {
	return stream.Schema{
		Name: "S_Msmt",
		Tuple: relation.NewSchema(
			relation.Col("sid", relation.TInt),
			relation.Col("ts", relation.TTime),
			relation.Col("val", relation.TFloat),
			relation.Col("fail", relation.TInt),
		),
		TSCol: "ts",
	}
}

func testMappings(t *testing.T) *mappingSetWrap {
	t.Helper()
	return newTestMappings(t)
}

func row(sid, ts int64, val float64, fail int64) relation.Tuple {
	return relation.Tuple{relation.Int(sid), relation.Time(ts), relation.Float(val), relation.Int(fail)}
}

func batchOf(rows ...relation.Tuple) stream.Batch {
	b := stream.Batch{WindowID: 1, Start: 0, End: 10_000}
	b.Rows = rows
	return b
}

func TestSequenceBuilderStdSeq(t *testing.T) {
	set := testMappings(t)
	sb, err := NewSequenceBuilder(msmtStreamSchema(), set.set)
	if err != nil {
		t.Fatal(err)
	}
	batch := batchOf(
		row(7, 1000, 70, 0),
		row(7, 2000, 71, 0),
		row(8, 1000, 50, 0),
		row(7, 2000, 72, 0), // second measurement at same ts -> same state
	)
	seq, err := sb.Build(batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 2 {
		t.Fatalf("states = %d, want 2 (distinct timestamps)", seq.Len())
	}
	if seq.States[0].TS != 1000 || seq.States[1].TS != 2000 {
		t.Fatalf("state order: %v %v", seq.States[0].TS, seq.States[1].TS)
	}
	s7 := "http://siemens.com/data/sensor/7"
	vals := seq.States[1].Values(s7, sieNS+"hasValue")
	if len(vals) != 2 {
		t.Fatalf("values at state 2 = %v", vals)
	}
	// Subject filter restricts.
	seq2, err := sb.Build(batch, map[string]bool{s7: true})
	if err != nil {
		t.Fatal(err)
	}
	s8 := "http://siemens.com/data/sensor/8"
	if len(seq2.States[0].Values(s8, sieNS+"hasValue")) != 0 {
		t.Error("subject filter ignored")
	}
}

func TestFigure1HavingDetectsMonotonicRamp(t *testing.T) {
	q := MustParse(figure1)
	set := testMappings(t)
	sb, err := NewSequenceBuilder(msmtStreamSchema(), set.set)
	if err != nil {
		t.Fatal(err)
	}
	sensor := "http://siemens.com/data/sensor/7"
	binding := Binding{
		"c1": rdf.NewIRI("http://siemens.com/data/assembly/1"),
		"c2": rdf.NewIRI(sensor),
	}

	// Monotonic ramp followed by a failure flag: HAVING must hold.
	ramp := batchOf(
		row(7, 1000, 70, 0),
		row(7, 2000, 72, 0),
		row(7, 3000, 75, 0),
		row(7, 4000, 90, 1), // failure state
	)
	seq, err := sb.Build(ramp, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := EvalHaving(q.Having, seq, binding, q.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("monotonic ramp with failure not detected")
	}

	// Non-monotonic values before the failure: HAVING must fail.
	dip := batchOf(
		row(7, 1000, 70, 0),
		row(7, 2000, 65, 0), // dip
		row(7, 3000, 75, 0),
		row(7, 4000, 90, 1),
	)
	seq, err = sb.Build(dip, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = EvalHaving(q.Having, seq, binding, q.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("non-monotonic ramp accepted")
	}

	// Monotonic but no failure flag: HAVING must fail (EXISTS ?k).
	noFail := batchOf(
		row(7, 1000, 70, 0),
		row(7, 2000, 72, 0),
		row(7, 3000, 75, 0),
	)
	seq, err = sb.Build(noFail, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = EvalHaving(q.Having, seq, binding, q.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ramp without failure accepted")
	}

	// Dip after the failure state is irrelevant (?i, ?j < ?k).
	dipAfter := batchOf(
		row(7, 1000, 70, 0),
		row(7, 2000, 72, 0),
		row(7, 3000, 90, 1), // failure
		row(7, 4000, 10, 0), // dip afterwards
	)
	seq, err = sb.Build(dipAfter, nil)
	if err != nil {
		t.Fatal(err)
	}
	ok, err = EvalHaving(q.Having, seq, binding, q.Aggregates)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("dip after failure should not matter")
	}
}

func TestBuiltinAggregates(t *testing.T) {
	set := testMappings(t)
	sb, err := NewSequenceBuilder(msmtStreamSchema(), set.set)
	if err != nil {
		t.Fatal(err)
	}
	s7 := "http://siemens.com/data/sensor/7"
	s8 := "http://siemens.com/data/sensor/8"
	binding := Binding{"a": rdf.NewIRI(s7), "b": rdf.NewIRI(s8)}
	// Correlated ramps on sensors 7 and 8.
	batch := batchOf(
		row(7, 1000, 10, 0), row(8, 1000, 20, 0),
		row(7, 2000, 12, 0), row(8, 2000, 24, 0),
		row(7, 3000, 14, 0), row(8, 3000, 28, 0),
		row(7, 4000, 16, 0), row(8, 4000, 32, 0),
	)
	seq, err := sb.Build(batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	attr := NTerm(rdf.NewIRI(sieNS + "hasValue"))
	pearson := &AggCall{Name: "PEARSON.CORRELATION", Args: []Node{
		NVar("a"), NVar("b"), attr, NTerm(rdf.NewTypedLiteral("0.9", rdf.XSDDouble)),
	}}
	ok, err := EvalHaving(pearson, seq, binding, nil)
	if err != nil || !ok {
		t.Errorf("PEARSON = %t, %v (perfectly correlated ramps)", ok, err)
	}
	trend := &AggCall{Name: "TREND.INCREASE", Args: []Node{NVar("a"), attr}}
	ok, err = EvalHaving(trend, seq, binding, nil)
	if err != nil || !ok {
		t.Errorf("TREND = %t, %v", ok, err)
	}
	thresh := &AggCall{Name: "THRESHOLD.ABOVE", Args: []Node{
		NVar("b"), attr, NTerm(rdf.NewInteger(30)),
	}}
	ok, err = EvalHaving(thresh, seq, binding, nil)
	if err != nil || !ok {
		t.Errorf("THRESHOLD = %t, %v", ok, err)
	}
	threshHigh := &AggCall{Name: "THRESHOLD.ABOVE", Args: []Node{
		NVar("b"), attr, NTerm(rdf.NewInteger(1000)),
	}}
	ok, _ = EvalHaving(threshHigh, seq, binding, nil)
	if ok {
		t.Error("THRESHOLD above 1000 should fail")
	}
}

func TestPearsonFunction(t *testing.T) {
	r, ok := Pearson([]float64{1, 2, 3, 4}, []float64{2, 4, 6, 8})
	if !ok || r < 0.999 {
		t.Errorf("Pearson = %g, %t", r, ok)
	}
	r, ok = Pearson([]float64{1, 2, 3, 4}, []float64{8, 6, 4, 2})
	if !ok || r > -0.999 {
		t.Errorf("anti-correlated Pearson = %g", r)
	}
	if _, ok := Pearson([]float64{1}, []float64{2}); ok {
		t.Error("single point accepted")
	}
	if _, ok := Pearson([]float64{1, 1}, []float64{2, 3}); ok {
		t.Error("zero variance accepted")
	}
}

package rdf

import (
	"sort"
	"sync"
)

// Graph is an in-memory RDF graph with SPO/POS/OSP indexes supporting
// pattern matching with any combination of bound positions. It is safe for
// concurrent use; reads take a shared lock.
//
// The zero value is not ready to use; call NewGraph.
type Graph struct {
	mu  sync.RWMutex
	spo map[Term]map[Term]map[Term]struct{}
	pos map[Term]map[Term]map[Term]struct{}
	osp map[Term]map[Term]map[Term]struct{}
	n   int
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo: make(map[Term]map[Term]map[Term]struct{}),
		pos: make(map[Term]map[Term]map[Term]struct{}),
		osp: make(map[Term]map[Term]map[Term]struct{}),
	}
}

func insert(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	l2, ok := idx[a]
	if !ok {
		l2 = make(map[Term]map[Term]struct{})
		idx[a] = l2
	}
	l3, ok := l2[b]
	if !ok {
		l3 = make(map[Term]struct{})
		l2[b] = l3
	}
	if _, ok := l3[c]; ok {
		return false
	}
	l3[c] = struct{}{}
	return true
}

func remove(idx map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	l2, ok := idx[a]
	if !ok {
		return false
	}
	l3, ok := l2[b]
	if !ok {
		return false
	}
	if _, ok := l3[c]; !ok {
		return false
	}
	delete(l3, c)
	if len(l3) == 0 {
		delete(l2, b)
		if len(l2) == 0 {
			delete(idx, a)
		}
	}
	return true
}

// Add inserts a triple, returning true if it was not already present.
func (g *Graph) Add(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !insert(g.spo, t.S, t.P, t.O) {
		return false
	}
	insert(g.pos, t.P, t.O, t.S)
	insert(g.osp, t.O, t.S, t.P)
	g.n++
	return true
}

// AddAll inserts each triple in ts and returns the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	added := 0
	for _, t := range ts {
		if g.Add(t) {
			added++
		}
	}
	return added
}

// Remove deletes a triple, returning true if it was present.
func (g *Graph) Remove(t Triple) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !remove(g.spo, t.S, t.P, t.O) {
		return false
	}
	remove(g.pos, t.P, t.O, t.S)
	remove(g.osp, t.O, t.S, t.P)
	g.n--
	return true
}

// Len returns the number of triples in the graph.
func (g *Graph) Len() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.n
}

// Has reports whether the exact triple is present.
func (g *Graph) Has(t Triple) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if l2, ok := g.spo[t.S]; ok {
		if l3, ok := l2[t.P]; ok {
			_, ok := l3[t.O]
			return ok
		}
	}
	return false
}

// Wildcard marks an unbound position in Match patterns. Any term with
// this exact value matches every term.
var Wildcard = Term{Kind: KindBlank, Value: "*"}

func isWild(t Term) bool { return t == Wildcard }

// Match returns all triples matching the pattern, where Wildcard in any
// position matches anything. Results are in deterministic (sorted) order.
func (g *Graph) Match(s, p, o Term) []Triple {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []Triple
	emit := func(t Triple) { out = append(out, t) }
	switch {
	case !isWild(s):
		for pp, l3 := range g.spo[s] {
			if !isWild(p) && pp != p {
				continue
			}
			for oo := range l3 {
				if !isWild(o) && oo != o {
					continue
				}
				emit(Triple{s, pp, oo})
			}
		}
	case !isWild(p):
		for oo, l3 := range g.pos[p] {
			if !isWild(o) && oo != o {
				continue
			}
			for ss := range l3 {
				emit(Triple{ss, p, oo})
			}
		}
	case !isWild(o):
		for ss, l3 := range g.osp[o] {
			for pp := range l3 {
				emit(Triple{ss, pp, o})
			}
		}
	default:
		for ss, l2 := range g.spo {
			for pp, l3 := range l2 {
				for oo := range l3 {
					emit(Triple{ss, pp, oo})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Subjects returns the distinct subjects of triples matching (*, p, o).
func (g *Graph) Subjects(p, o Term) []Term {
	ts := g.Match(Wildcard, p, o)
	return distinct(ts, func(t Triple) Term { return t.S })
}

// Objects returns the distinct objects of triples matching (s, p, *).
func (g *Graph) Objects(s, p Term) []Term {
	ts := g.Match(s, p, Wildcard)
	return distinct(ts, func(t Triple) Term { return t.O })
}

func distinct(ts []Triple, f func(Triple) Term) []Term {
	seen := make(map[Term]struct{}, len(ts))
	var out []Term
	for _, t := range ts {
		k := f(t)
		if _, ok := seen[k]; ok {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

// Triples returns every triple in the graph in deterministic order.
func (g *Graph) Triples() []Triple {
	return g.Match(Wildcard, Wildcard, Wildcard)
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	out := NewGraph()
	out.AddAll(g.Triples())
	return out
}

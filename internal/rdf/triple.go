package rdf

import (
	"fmt"
	"strings"
)

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// NewTriple builds a triple from its three terms.
func NewTriple(s, p, o Term) Triple { return Triple{S: s, P: p, O: o} }

// Validate checks positional constraints: the subject must be an IRI or a
// blank node and the predicate must be an IRI.
func (t Triple) Validate() error {
	if err := t.S.Validate(); err != nil {
		return err
	}
	if err := t.P.Validate(); err != nil {
		return err
	}
	if err := t.O.Validate(); err != nil {
		return err
	}
	if t.S.IsLiteral() {
		return fmt.Errorf("rdf: literal subject in %s", t)
	}
	if !t.P.IsIRI() {
		return fmt.Errorf("rdf: non-IRI predicate in %s", t)
	}
	return nil
}

// String renders the triple in N-Triples syntax.
func (t Triple) String() string {
	return t.S.String() + " " + t.P.String() + " " + t.O.String() + " ."
}

// Compare orders triples by subject, predicate, object.
func (t Triple) Compare(u Triple) int {
	if c := t.S.Compare(u.S); c != 0 {
		return c
	}
	if c := t.P.Compare(u.P); c != 0 {
		return c
	}
	return t.O.Compare(u.O)
}

// PrefixMap maps prefix labels (without the trailing colon) to namespace
// IRIs, e.g. "sie" -> "http://siemens.com/ontology#".
type PrefixMap map[string]string

// Expand resolves a CURIE such as "sie:Turbine" against the map. Inputs
// already wrapped in angle brackets, or containing no colon, are returned
// with brackets stripped / unchanged respectively.
func (pm PrefixMap) Expand(curie string) (string, error) {
	if strings.HasPrefix(curie, "<") && strings.HasSuffix(curie, ">") {
		return curie[1 : len(curie)-1], nil
	}
	i := strings.Index(curie, ":")
	if i < 0 {
		return curie, nil
	}
	prefix, local := curie[:i], curie[i+1:]
	// Absolute IRIs like http://... pass through untouched.
	if strings.HasPrefix(local, "//") {
		return curie, nil
	}
	ns, ok := pm[prefix]
	if !ok {
		return "", fmt.Errorf("rdf: unknown prefix %q in %q", prefix, curie)
	}
	return ns + local, nil
}

// Shrink produces a CURIE for an IRI when one of the registered namespaces
// is a prefix of it; otherwise it returns the bracketed IRI.
func (pm PrefixMap) Shrink(iri string) string {
	best, bestNS := "", ""
	for p, ns := range pm {
		if strings.HasPrefix(iri, ns) && len(ns) > len(bestNS) {
			best, bestNS = p, ns
		}
	}
	if bestNS == "" {
		return "<" + iri + ">"
	}
	return best + ":" + iri[len(bestNS):]
}

// StandardPrefixes returns a PrefixMap preloaded with the usual suspects.
func StandardPrefixes() PrefixMap {
	return PrefixMap{
		"rdf":  "http://www.w3.org/1999/02/22-rdf-syntax-ns#",
		"rdfs": "http://www.w3.org/2000/01/rdf-schema#",
		"owl":  "http://www.w3.org/2002/07/owl#",
		"xsd":  "http://www.w3.org/2001/XMLSchema#",
	}
}

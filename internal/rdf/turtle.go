package rdf

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseTurtle parses a practical subset of the Turtle syntax: @prefix
// directives, IRIs, prefixed names, the "a" keyword, string literals with
// optional datatype or language tag, integer/decimal/boolean shorthand,
// blank node labels, and ";" / "," predicate and object lists.
// It returns the triples in document order.
func ParseTurtle(src string) ([]Triple, PrefixMap, error) {
	p := &turtleParser{src: src, prefixes: StandardPrefixes()}
	triples, err := p.parse()
	if err != nil {
		return nil, nil, err
	}
	return triples, p.prefixes, nil
}

// MustParseTurtle is ParseTurtle that panics on error; intended for
// statically-known documents such as built-in ontologies and tests.
func MustParseTurtle(src string) []Triple {
	ts, _, err := ParseTurtle(src)
	if err != nil {
		panic(err)
	}
	return ts
}

type turtleParser struct {
	src      string
	pos      int
	line     int
	prefixes PrefixMap
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) skipWS() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *turtleParser) eof() bool {
	p.skipWS()
	return p.pos >= len(p.src)
}

func (p *turtleParser) peek() byte {
	if p.pos < len(p.src) {
		return p.src[p.pos]
	}
	return 0
}

func (p *turtleParser) expect(c byte) error {
	p.skipWS()
	if p.peek() != c {
		return p.errf("expected %q, found %q", string(c), string(p.peek()))
	}
	p.pos++
	return nil
}

func (p *turtleParser) parse() ([]Triple, error) {
	var out []Triple
	for !p.eof() {
		if strings.HasPrefix(p.src[p.pos:], "@prefix") {
			if err := p.parsePrefix(); err != nil {
				return nil, err
			}
			continue
		}
		ts, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, ts...)
	}
	return out, nil
}

func (p *turtleParser) parsePrefix() error {
	p.pos += len("@prefix")
	p.skipWS()
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != ':' {
		p.pos++
	}
	name := strings.TrimSpace(p.src[start:p.pos])
	if err := p.expect(':'); err != nil {
		return err
	}
	p.skipWS()
	iri, err := p.parseIRIRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	return p.expect('.')
}

func (p *turtleParser) parseIRIRef() (string, error) {
	if p.peek() != '<' {
		return "", p.errf("expected '<'")
	}
	p.pos++
	start := p.pos
	for p.pos < len(p.src) && p.src[p.pos] != '>' {
		p.pos++
	}
	if p.pos >= len(p.src) {
		return "", p.errf("unterminated IRI")
	}
	iri := p.src[start:p.pos]
	p.pos++
	return iri, nil
}

// parseStatement parses "subject predicateObjectList ." possibly with
// ';'-separated predicate lists and ','-separated object lists.
func (p *turtleParser) parseStatement() ([]Triple, error) {
	subj, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	var out []Triple
	for {
		p.skipWS()
		pred, err := p.parsePredicate()
		if err != nil {
			return nil, err
		}
		for {
			obj, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			t := Triple{subj, pred, obj}
			if err := t.Validate(); err != nil {
				return nil, p.errf("%v", err)
			}
			out = append(out, t)
			p.skipWS()
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		switch p.peek() {
		case ';':
			p.pos++
			p.skipWS()
			// A trailing ';' before '.' is legal Turtle.
			if p.peek() == '.' {
				p.pos++
				return out, nil
			}
			continue
		case '.':
			p.pos++
			return out, nil
		default:
			return nil, p.errf("expected ';' or '.', found %q", string(p.peek()))
		}
	}
}

func (p *turtleParser) parsePredicate() (Term, error) {
	p.skipWS()
	if p.peek() == 'a' && p.pos+1 < len(p.src) && isTermBoundary(p.src[p.pos+1]) {
		p.pos++
		return NewIRI(RDFType), nil
	}
	t, err := p.parseTerm()
	if err != nil {
		return Term{}, err
	}
	if !t.IsIRI() {
		return Term{}, p.errf("predicate must be an IRI, got %s", t)
	}
	return t, nil
}

func isTermBoundary(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '<' || c == '"' || c == '_'
}

func (p *turtleParser) parseTerm() (Term, error) {
	p.skipWS()
	switch c := p.peek(); {
	case c == '<':
		iri, err := p.parseIRIRef()
		if err != nil {
			return Term{}, err
		}
		return NewIRI(iri), nil
	case c == '"':
		return p.parseLiteral()
	case c == '_':
		if p.pos+1 >= len(p.src) || p.src[p.pos+1] != ':' {
			return Term{}, p.errf("malformed blank node")
		}
		p.pos += 2
		label := p.parseToken()
		if label == "" {
			return Term{}, p.errf("empty blank node label")
		}
		return NewBlank(label), nil
	case c == '+' || c == '-' || (c >= '0' && c <= '9'):
		tok := p.parseToken()
		if strings.ContainsAny(tok, ".eE") {
			return NewTypedLiteral(tok, XSDDecimal), nil
		}
		return NewTypedLiteral(tok, XSDInteger), nil
	default:
		tok := p.parseToken()
		switch tok {
		case "":
			return Term{}, p.errf("expected term, found %q", string(c))
		case "true", "false":
			return NewTypedLiteral(tok, XSDBoolean), nil
		}
		iri, err := p.prefixes.Expand(tok)
		if err != nil {
			return Term{}, p.errf("%v", err)
		}
		return NewIRI(iri), nil
	}
}

func (p *turtleParser) parseToken() string {
	start := p.pos
	for p.pos < len(p.src) {
		c := rune(p.src[p.pos])
		if unicode.IsSpace(c) || strings.ContainsRune(";,.<>\"#", c) {
			// A '.' inside a number or prefixed name is part of the token
			// only when followed by a non-boundary character.
			if c == '.' && p.pos+1 < len(p.src) && !isStatementEnd(p.src[p.pos+1]) {
				p.pos++
				continue
			}
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func isStatementEnd(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '#'
}

func (p *turtleParser) parseLiteral() (Term, error) {
	p.pos++ // opening quote
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '\\' && p.pos+1 < len(p.src) {
			p.pos++
			switch p.src[p.pos] {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				return Term{}, p.errf("unknown escape \\%s", string(p.src[p.pos]))
			}
			p.pos++
			continue
		}
		if c == '"' {
			p.pos++
			lex := sb.String()
			// Optional language tag or datatype.
			if p.peek() == '@' {
				p.pos++
				lang := p.parseToken()
				return NewLangLiteral(lex, lang), nil
			}
			if strings.HasPrefix(p.src[p.pos:], "^^") {
				p.pos += 2
				dt, err := p.parseTerm()
				if err != nil {
					return Term{}, err
				}
				if !dt.IsIRI() {
					return Term{}, p.errf("datatype must be an IRI")
				}
				return NewTypedLiteral(lex, dt.Value), nil
			}
			return NewLiteral(lex), nil
		}
		if c == '\n' {
			p.line++
		}
		sb.WriteByte(c)
		p.pos++
	}
	return Term{}, p.errf("unterminated string literal")
}

// WriteTurtle serialises triples using the given prefixes (may be nil).
func WriteTurtle(ts []Triple, pm PrefixMap) string {
	var sb strings.Builder
	if pm != nil {
		for _, name := range sortedKeys(pm) {
			fmt.Fprintf(&sb, "@prefix %s: <%s> .\n", name, pm[name])
		}
		if len(pm) > 0 {
			sb.WriteByte('\n')
		}
	}
	shrink := func(t Term) string {
		if t.IsIRI() && pm != nil {
			return pm.Shrink(t.Value)
		}
		return t.String()
	}
	for _, t := range ts {
		pred := shrink(t.P)
		if t.P.Value == RDFType {
			pred = "a"
		}
		fmt.Fprintf(&sb, "%s %s %s .\n", shrink(t.S), pred, shrink(t.O))
	}
	return sb.String()
}

func sortedKeys(pm PrefixMap) []string {
	out := make([]string, 0, len(pm))
	for k := range pm {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package rdf

import (
	"testing"
	"testing/quick"
)

func TestTermConstructors(t *testing.T) {
	cases := []struct {
		term Term
		kind TermKind
		str  string
	}{
		{NewIRI("http://x#A"), KindIRI, "<http://x#A>"},
		{NewBlank("b0"), KindBlank, "_:b0"},
		{NewLiteral("hi"), KindLiteral, `"hi"`},
		{NewTypedLiteral("5", XSDInteger), KindLiteral, `"5"^^<` + XSDInteger + `>`},
		{NewLangLiteral("hallo", "de"), KindLiteral, `"hallo"@de`},
		{NewInteger(42), KindLiteral, `"42"^^<` + XSDInteger + `>`},
		{NewBoolean(true), KindLiteral, `"true"^^<` + XSDBoolean + `>`},
	}
	for _, c := range cases {
		if c.term.Kind != c.kind {
			t.Errorf("%v: kind = %d, want %d", c.term, c.term.Kind, c.kind)
		}
		if got := c.term.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
		if err := c.term.Validate(); err != nil {
			t.Errorf("Validate(%v) = %v", c.term, err)
		}
	}
}

func TestTermValidateRejects(t *testing.T) {
	bad := []Term{
		{},                                      // empty IRI
		{Kind: KindBlank},                       // empty blank label
		{Kind: KindIRI, Value: "x", Lang: "en"}, // IRI with language
		{Kind: KindLiteral, Value: "x", Lang: "en", Datatype: XSDInteger},
		{Kind: 42, Value: "x"},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate(%#v) = nil, want error", b)
		}
	}
}

func TestLiteralValueAccessors(t *testing.T) {
	if v, err := NewInteger(-7).Integer(); err != nil || v != -7 {
		t.Errorf("Integer() = %d, %v", v, err)
	}
	if v, err := NewDouble(2.5).Float(); err != nil || v != 2.5 {
		t.Errorf("Float() = %g, %v", v, err)
	}
	if v, err := NewBoolean(true).Bool(); err != nil || !v {
		t.Errorf("Bool() = %t, %v", v, err)
	}
	if _, err := NewIRI("x").Integer(); err == nil {
		t.Error("Integer() on IRI should fail")
	}
	if _, err := NewIRI("x").Float(); err == nil {
		t.Error("Float() on IRI should fail")
	}
	if _, err := NewIRI("x").Bool(); err == nil {
		t.Error("Bool() on IRI should fail")
	}
}

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://a/b#Turbine": "Turbine",
		"http://a/b/Sensor":  "Sensor",
		"urn:thing":          "urn:thing",
	}
	for iri, want := range cases {
		if got := NewIRI(iri).LocalName(); got != want {
			t.Errorf("LocalName(%q) = %q, want %q", iri, got, want)
		}
	}
	if got := NewLiteral("v").LocalName(); got != "v" {
		t.Errorf("LocalName(literal) = %q", got)
	}
}

func TestTermCompareProperties(t *testing.T) {
	// Antisymmetry and consistency with equality.
	f := func(a, b string) bool {
		x, y := NewIRI("i/"+a), NewIRI("i/"+b)
		c1, c2 := x.Compare(y), y.Compare(x)
		if x == y {
			return c1 == 0 && c2 == 0
		}
		return (c1 > 0) == (c2 < 0) && c1 != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Kind ordering: IRI < blank < literal.
	if NewIRI("z").Compare(NewBlank("a")) >= 0 {
		t.Error("IRI should sort before blank")
	}
	if NewBlank("z").Compare(NewLiteral("a")) >= 0 {
		t.Error("blank should sort before literal")
	}
}

func TestTripleValidate(t *testing.T) {
	ok := NewTriple(NewIRI("s"), NewIRI("p"), NewLiteral("o"))
	if err := ok.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	if err := NewTriple(NewLiteral("s"), NewIRI("p"), NewIRI("o")).Validate(); err == nil {
		t.Error("literal subject accepted")
	}
	if err := NewTriple(NewIRI("s"), NewBlank("p"), NewIRI("o")).Validate(); err == nil {
		t.Error("blank predicate accepted")
	}
}

func TestPrefixMapExpandShrink(t *testing.T) {
	pm := PrefixMap{"sie": "http://siemens/ns#"}
	got, err := pm.Expand("sie:Turbine")
	if err != nil || got != "http://siemens/ns#Turbine" {
		t.Fatalf("Expand = %q, %v", got, err)
	}
	if _, err := pm.Expand("nope:X"); err == nil {
		t.Error("unknown prefix accepted")
	}
	if got, _ := pm.Expand("<http://a/b>"); got != "http://a/b" {
		t.Errorf("Expand(<...>) = %q", got)
	}
	if got, _ := pm.Expand("plain"); got != "plain" {
		t.Errorf("Expand(plain) = %q", got)
	}
	if got := pm.Shrink("http://siemens/ns#Sensor"); got != "sie:Sensor" {
		t.Errorf("Shrink = %q", got)
	}
	if got := pm.Shrink("http://other/X"); got != "<http://other/X>" {
		t.Errorf("Shrink(unknown) = %q", got)
	}
}

func TestPrefixShrinkLongestMatch(t *testing.T) {
	pm := PrefixMap{
		"a":  "http://x/",
		"ab": "http://x/deep/",
	}
	if got := pm.Shrink("http://x/deep/T"); got != "ab:T" {
		t.Errorf("Shrink picked %q, want longest namespace ab:T", got)
	}
}

package rdf

import (
	"strings"
	"testing"
)

const sampleTurtle = `
@prefix sie: <http://siemens.com/ontology#> .
@prefix : <http://example.org/data#> .

# a small fleet
:t1 a sie:Turbine ;
    sie:hasModel "SGT-400" ;
    sie:ratedPowerMW 13.4 ;
    sie:sensorCount 2000 ;
    sie:active true ;
    sie:locatedIn :germany , :plant7 .

:s1 a sie:Sensor .
:s1 sie:inAssembly :t1 .
:s1 sie:hasValue "71.5"^^<http://www.w3.org/2001/XMLSchema#double> .
:s1 rdfs:label "inlet temperature"@en .
_:b0 a sie:Event .
`

func TestParseTurtleBasics(t *testing.T) {
	ts, pm, err := ParseTurtle(sampleTurtle)
	if err != nil {
		t.Fatalf("ParseTurtle: %v", err)
	}
	if pm["sie"] != "http://siemens.com/ontology#" {
		t.Errorf("prefix sie = %q", pm["sie"])
	}
	g := NewGraph()
	g.AddAll(ts)

	sie := func(l string) Term { return NewIRI("http://siemens.com/ontology#" + l) }
	ex := func(l string) Term { return NewIRI("http://example.org/data#" + l) }

	if !g.Has(Triple{ex("t1"), NewIRI(RDFType), sie("Turbine")}) {
		t.Error("missing type triple")
	}
	if !g.Has(Triple{ex("t1"), sie("hasModel"), NewLiteral("SGT-400")}) {
		t.Error("missing string literal triple")
	}
	if !g.Has(Triple{ex("t1"), sie("ratedPowerMW"), NewTypedLiteral("13.4", XSDDecimal)}) {
		t.Error("missing decimal triple")
	}
	if !g.Has(Triple{ex("t1"), sie("sensorCount"), NewTypedLiteral("2000", XSDInteger)}) {
		t.Error("missing integer triple")
	}
	if !g.Has(Triple{ex("t1"), sie("active"), NewTypedLiteral("true", XSDBoolean)}) {
		t.Error("missing boolean triple")
	}
	// Object list via comma.
	if !g.Has(Triple{ex("t1"), sie("locatedIn"), ex("germany")}) ||
		!g.Has(Triple{ex("t1"), sie("locatedIn"), ex("plant7")}) {
		t.Error("missing comma-separated objects")
	}
	if !g.Has(Triple{ex("s1"), sie("hasValue"), NewTypedLiteral("71.5", XSDDouble)}) {
		t.Error("missing typed double triple")
	}
	if !g.Has(Triple{ex("s1"), NewIRI(RDFSLabel), NewLangLiteral("inlet temperature", "en")}) {
		t.Error("missing language-tagged literal")
	}
	if !g.Has(Triple{NewBlank("b0"), NewIRI(RDFType), sie("Event")}) {
		t.Error("missing blank node triple")
	}
}

func TestParseTurtleErrors(t *testing.T) {
	bad := []string{
		`:s :p `,               // missing object and dot
		`:s "lit" :o .`,        // literal subject... actually "lit" as predicate
		`@prefix x <http://a>`, // malformed prefix
		`:s :p "unterminated .`,
		`<http://a> <http://b> "x"^^5 .`,
		`:s :p "bad\qescape" .`,
	}
	for _, src := range bad {
		if _, _, err := ParseTurtle(src); err == nil {
			t.Errorf("ParseTurtle(%q) accepted invalid input", src)
		}
	}
}

func TestParseTurtleUnknownPrefix(t *testing.T) {
	if _, _, err := ParseTurtle(`nope:s rdf:type nope:C .`); err == nil {
		t.Fatal("unknown prefix accepted")
	}
}

func TestTurtleRoundTrip(t *testing.T) {
	ts, pm, err := ParseTurtle(sampleTurtle)
	if err != nil {
		t.Fatal(err)
	}
	out := WriteTurtle(ts, pm)
	ts2, _, err := ParseTurtle(out)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out)
	}
	g1, g2 := NewGraph(), NewGraph()
	g1.AddAll(ts)
	g2.AddAll(ts2)
	if g1.Len() != g2.Len() {
		t.Fatalf("round trip changed triple count: %d vs %d", g1.Len(), g2.Len())
	}
	for _, trp := range g1.Triples() {
		if !g2.Has(trp) {
			t.Errorf("round trip lost %v", trp)
		}
	}
}

func TestWriteTurtleUsesAKeyword(t *testing.T) {
	out := WriteTurtle([]Triple{tr("s", RDFType, "C")}, nil)
	if !strings.Contains(out, " a ") {
		t.Errorf("expected 'a' keyword in %q", out)
	}
}

func TestMustParseTurtlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseTurtle did not panic")
		}
	}()
	MustParseTurtle(`:s :p`)
}

func TestParseTurtleEscapes(t *testing.T) {
	ts, _, err := ParseTurtle(`<http://s> <http://p> "a\nb\t\"c\\" .`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\nb\t\"c\\"
	if ts[0].O.Value != want {
		t.Errorf("escape handling: %q, want %q", ts[0].O.Value, want)
	}
}

// Package rdf implements the RDF data model used throughout Optique:
// IRIs, literals, blank nodes, triples, and an indexed in-memory graph.
//
// The package is deliberately self-contained (stdlib only) and favours
// value types with cheap equality so terms can be used as map keys by the
// ontology reasoner and the query rewriter.
package rdf

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

const (
	// KindIRI identifies an IRI term.
	KindIRI TermKind = iota
	// KindBlank identifies a blank node.
	KindBlank
	// KindLiteral identifies a literal term.
	KindLiteral
)

// Common XSD datatype IRIs.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDDuration = "http://www.w3.org/2001/XMLSchema#duration"
)

// Well-known RDF/RDFS/OWL vocabulary IRIs.
const (
	RDFType         = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSSubClassOf  = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	RDFSSubPropOf   = "http://www.w3.org/2000/01/rdf-schema#subPropertyOf"
	RDFSDomain      = "http://www.w3.org/2000/01/rdf-schema#domain"
	RDFSRange       = "http://www.w3.org/2000/01/rdf-schema#range"
	RDFSLabel       = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSComment     = "http://www.w3.org/2000/01/rdf-schema#comment"
	OWLClass        = "http://www.w3.org/2002/07/owl#Class"
	OWLObjectProp   = "http://www.w3.org/2002/07/owl#ObjectProperty"
	OWLDataProp     = "http://www.w3.org/2002/07/owl#DatatypeProperty"
	OWLInverseOf    = "http://www.w3.org/2002/07/owl#inverseOf"
	OWLThing        = "http://www.w3.org/2002/07/owl#Thing"
	OWLDisjointWith = "http://www.w3.org/2002/07/owl#disjointWith"
)

// Term is a single RDF term. The zero value is an IRI with an empty value,
// which is treated as invalid by Validate.
//
// Terms are comparable: two terms are equal iff all fields are equal, which
// matches RDF term equality for IRIs and blank nodes and simple (syntactic)
// equality for literals.
type Term struct {
	Kind TermKind
	// Value holds the IRI string, the literal lexical form, or the blank
	// node label depending on Kind.
	Value string
	// Datatype holds the datatype IRI for literals; empty means xsd:string.
	Datatype string
	// Lang holds the language tag for language-tagged string literals.
	Lang string
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// NewBlank returns a blank-node term with the given label.
func NewBlank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// NewLiteral returns a plain (xsd:string) literal.
func NewLiteral(lexical string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: XSDString}
}

// NewTypedLiteral returns a literal with an explicit datatype IRI.
func NewTypedLiteral(lexical, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: datatype}
}

// NewLangLiteral returns a language-tagged string literal.
func NewLangLiteral(lexical, lang string) Term {
	return Term{Kind: KindLiteral, Value: lexical, Datatype: XSDString, Lang: lang}
}

// NewInteger returns an xsd:integer literal.
func NewInteger(v int64) Term {
	return NewTypedLiteral(strconv.FormatInt(v, 10), XSDInteger)
}

// NewDouble returns an xsd:double literal.
func NewDouble(v float64) Term {
	return NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), XSDDouble)
}

// NewBoolean returns an xsd:boolean literal.
func NewBoolean(v bool) Term {
	return NewTypedLiteral(strconv.FormatBool(v), XSDBoolean)
}

// IsIRI reports whether t is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether t is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether t is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// Validate reports whether the term is structurally well formed.
func (t Term) Validate() error {
	switch t.Kind {
	case KindIRI:
		if t.Value == "" {
			return fmt.Errorf("rdf: empty IRI")
		}
		if t.Datatype != "" || t.Lang != "" {
			return fmt.Errorf("rdf: IRI %q must not carry datatype or language", t.Value)
		}
	case KindBlank:
		if t.Value == "" {
			return fmt.Errorf("rdf: empty blank node label")
		}
	case KindLiteral:
		if t.Lang != "" && t.Datatype != XSDString && t.Datatype != "" {
			return fmt.Errorf("rdf: literal %q has both language %q and datatype %q", t.Value, t.Lang, t.Datatype)
		}
	default:
		return fmt.Errorf("rdf: unknown term kind %d", t.Kind)
	}
	return nil
}

// Integer returns the integer value of an xsd:integer literal.
func (t Term) Integer() (int64, error) {
	if !t.IsLiteral() {
		return 0, fmt.Errorf("rdf: %s is not a literal", t)
	}
	return strconv.ParseInt(t.Value, 10, 64)
}

// Float returns the floating-point value of a numeric literal.
func (t Term) Float() (float64, error) {
	if !t.IsLiteral() {
		return 0, fmt.Errorf("rdf: %s is not a literal", t)
	}
	return strconv.ParseFloat(t.Value, 64)
}

// Bool returns the boolean value of an xsd:boolean literal.
func (t Term) Bool() (bool, error) {
	if !t.IsLiteral() {
		return false, fmt.Errorf("rdf: %s is not a literal", t)
	}
	return strconv.ParseBool(t.Value)
}

// LocalName returns the fragment or last path segment of an IRI, or the
// raw value for other term kinds. It is used for human-readable output.
func (t Term) LocalName() string {
	if !t.IsIRI() {
		return t.Value
	}
	if i := strings.LastIndexAny(t.Value, "#/"); i >= 0 && i+1 < len(t.Value) {
		return t.Value[i+1:]
	}
	return t.Value
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	default:
		s := strconv.Quote(t.Value)
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		if t.Datatype != "" && t.Datatype != XSDString {
			return s + "^^<" + t.Datatype + ">"
		}
		return s
	}
}

// Compare orders terms: IRIs < blanks < literals, then lexicographically.
// It gives graphs a deterministic iteration order for tests and output.
func (t Term) Compare(u Term) int {
	if t.Kind != u.Kind {
		return int(t.Kind) - int(u.Kind)
	}
	if c := strings.Compare(t.Value, u.Value); c != 0 {
		return c
	}
	if c := strings.Compare(t.Datatype, u.Datatype); c != 0 {
		return c
	}
	return strings.Compare(t.Lang, u.Lang)
}

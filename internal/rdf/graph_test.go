package rdf

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return Triple{NewIRI(s), NewIRI(p), NewIRI(o)}
}

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	a := tr("s", "p", "o")
	if !g.Add(a) {
		t.Fatal("first Add returned false")
	}
	if g.Add(a) {
		t.Fatal("duplicate Add returned true")
	}
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	if !g.Has(a) {
		t.Fatal("Has = false")
	}
	if !g.Remove(a) {
		t.Fatal("Remove returned false")
	}
	if g.Remove(a) {
		t.Fatal("second Remove returned true")
	}
	if g.Len() != 0 || g.Has(a) {
		t.Fatal("graph not empty after Remove")
	}
}

func TestGraphMatchPatterns(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s1", "p1", "o1"))
	g.Add(tr("s1", "p2", "o2"))
	g.Add(tr("s2", "p1", "o1"))
	g.Add(tr("s2", "p1", "o3"))

	cases := []struct {
		s, p, o Term
		want    int
	}{
		{Wildcard, Wildcard, Wildcard, 4},
		{NewIRI("s1"), Wildcard, Wildcard, 2},
		{Wildcard, NewIRI("p1"), Wildcard, 3},
		{Wildcard, Wildcard, NewIRI("o1"), 2},
		{NewIRI("s1"), NewIRI("p1"), Wildcard, 1},
		{Wildcard, NewIRI("p1"), NewIRI("o1"), 2},
		{NewIRI("s2"), Wildcard, NewIRI("o3"), 1},
		{NewIRI("s1"), NewIRI("p1"), NewIRI("o1"), 1},
		{NewIRI("nope"), Wildcard, Wildcard, 0},
	}
	for i, c := range cases {
		got := g.Match(c.s, c.p, c.o)
		if len(got) != c.want {
			t.Errorf("case %d: Match returned %d triples, want %d: %v", i, len(got), c.want, got)
		}
		for _, m := range got {
			if !g.Has(m) {
				t.Errorf("case %d: Match returned absent triple %v", i, m)
			}
		}
	}
}

func TestGraphMatchDeterministicOrder(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 50; i++ {
		g.Add(tr(fmt.Sprintf("s%02d", rand.Intn(10)), fmt.Sprintf("p%d", rand.Intn(3)), fmt.Sprintf("o%02d", i)))
	}
	first := g.Triples()
	for trial := 0; trial < 5; trial++ {
		again := g.Triples()
		if len(again) != len(first) {
			t.Fatalf("Triples length changed: %d vs %d", len(again), len(first))
		}
		for i := range again {
			if again[i] != first[i] {
				t.Fatalf("Triples order unstable at %d: %v vs %v", i, again[i], first[i])
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].Compare(first[i]) >= 0 {
			t.Fatalf("Triples not sorted at %d", i)
		}
	}
}

func TestGraphSubjectsObjects(t *testing.T) {
	g := NewGraph()
	g.Add(tr("t1", RDFType, "Turbine"))
	g.Add(tr("t2", RDFType, "Turbine"))
	g.Add(tr("t1", "locatedIn", "DE"))
	subs := g.Subjects(NewIRI(RDFType), NewIRI("Turbine"))
	if len(subs) != 2 {
		t.Fatalf("Subjects = %v", subs)
	}
	objs := g.Objects(NewIRI("t1"), NewIRI("locatedIn"))
	if len(objs) != 1 || objs[0].Value != "DE" {
		t.Fatalf("Objects = %v", objs)
	}
}

func TestGraphClone(t *testing.T) {
	g := NewGraph()
	g.Add(tr("s", "p", "o"))
	c := g.Clone()
	c.Add(tr("s2", "p", "o"))
	if g.Len() != 1 || c.Len() != 2 {
		t.Fatalf("clone not independent: g=%d c=%d", g.Len(), c.Len())
	}
}

func TestGraphConcurrentAccess(t *testing.T) {
	g := NewGraph()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				g.Add(tr(fmt.Sprintf("s%d-%d", w, i), "p", "o"))
				g.Match(Wildcard, NewIRI("p"), Wildcard)
			}
		}(w)
	}
	wg.Wait()
	if g.Len() != 8*200 {
		t.Fatalf("Len = %d, want %d", g.Len(), 8*200)
	}
}

// Property: Add/Remove round-trips leave the graph where it started, and
// Len always equals the number of distinct triples added.
func TestGraphAddRemoveProperty(t *testing.T) {
	f := func(keys []uint8) bool {
		g := NewGraph()
		seen := map[Triple]struct{}{}
		for _, k := range keys {
			trp := tr(fmt.Sprintf("s%d", k%7), fmt.Sprintf("p%d", k%3), fmt.Sprintf("o%d", k%5))
			g.Add(trp)
			seen[trp] = struct{}{}
		}
		if g.Len() != len(seen) {
			return false
		}
		for trp := range seen {
			if !g.Remove(trp) {
				return false
			}
		}
		return g.Len() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

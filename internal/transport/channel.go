package transport

import "context"

// Channel is the in-process transport: Send and Flush call straight
// into the handler on the caller's goroutine, which is exactly the hop
// the cluster performed before transports existed — same goroutine,
// same context, same backpressure semantics, same error values. It is
// the default, and the reason the single-process test suite observes
// byte-identical behavior whether or not this package is in the loop.
type Channel struct {
	h Handler
}

// NewChannel returns the in-process transport delivering to h.
func NewChannel(h Handler) *Channel { return &Channel{h: h} }

// Send delivers the tuple synchronously.
func (t *Channel) Send(ctx context.Context, node int, m Msg) error {
	return t.h.HandleTuple(ctx, node, m)
}

// Flush runs the flush barrier synchronously.
func (t *Channel) Flush(ctx context.Context, node int) error {
	return t.h.HandleFlush(ctx, node)
}

// CloseNode is a no-op: nothing is ever in flight between the routing
// layer and an inbox.
func (t *Channel) CloseNode(int) []Msg { return nil }

// Close is a no-op.
func (t *Channel) Close() error { return nil }

// Package transport is the pluggable node transport behind the cluster
// routing layer. The paper's ExaStream deployment spread workers over
// 1–128 networked VMs; the cluster package simulates those workers
// in-process, and this package abstracts the hop between the routing
// layer and a worker's inbox so the same routing code drives either an
// in-process channel hop (the default — tests keep their byte-identical
// single-process semantics) or a framed TCP link with real failure
// modes: torn frames, partitions, reordering, duplication.
//
// The TCP transport layers reliability on the framing conventions of
// internal/recovery (length-prefixed, FNV-1a-checksummed frames): each
// link carries one session with monotonically increasing frame
// sequence numbers, cumulative acknowledgements, heartbeats with
// timeout-based suspicion, jittered reconnect backoff, and session
// resumption that retransmits unacknowledged frames while the receiver
// deduplicates replays by sequence number. Duplicated window emissions
// that survive a re-execution after failover are deduplicated one
// layer up by the recovery emit gate, so delivery stays exactly-once
// end to end.
package transport

import (
	"context"
	"errors"
	"time"

	"repro/internal/relation"
)

// Typed link errors. Both are transient from the caller's point of
// view — the link heals (reconnect + session resume) or the node's
// queries fail over to a reachable worker — so cluster.RetryBusy
// treats them as retryable.
var (
	// ErrLinkDown is returned by Send/Flush when the link to the target
	// node is suspected dead or has been torn down. Retryable: either
	// the link reconnects or the node's queries fail over elsewhere.
	ErrLinkDown = errors.New("transport: link down")
	// ErrSessionReset is returned for in-flight operations whose fate
	// became unknowable when the peer lost the session (e.g. a flush
	// barrier pending across a reset the receiver no longer remembers).
	// Retryable: the next attempt runs on the fresh session.
	ErrSessionReset = errors.New("transport: session reset")
)

// Msg is one routed data-plane message: a stream tuple bound for a
// worker node. Seq is the per-stream ingest sequence the recovery
// subsystem assigns at routing time (0 when recovery is off); it rides
// the frame so replay dedup survives the wire.
type Msg struct {
	Stream string
	TS     int64
	Seq    int64
	Row    relation.Tuple
}

// Handler is the receiving end of a transport: the cluster's node
// inboxes. HandleTuple delivers one tuple to the node under the
// cluster's backpressure policy (an error means the tuple was not
// queued — the handler accounts the drop); HandleFlush runs a flush
// barrier on the node and reports the engine's flush error.
type Handler interface {
	HandleTuple(ctx context.Context, node int, m Msg) error
	HandleFlush(ctx context.Context, node int) error
}

// Transport moves routed messages from the cluster's routing layer to
// worker nodes. Implementations must preserve per-node FIFO order for
// Send and order Flush barriers after every Send that preceded them.
type Transport interface {
	// Send delivers one tuple to node. The channel transport delivers
	// synchronously (the handler's error comes back verbatim); the TCP
	// transport queues the frame for the link and returns once it is
	// accepted into the send window, failing fast with ErrLinkDown when
	// the link has been torn down.
	Send(ctx context.Context, node int, m Msg) error
	// Flush sends a flush barrier to node, after all previously sent
	// tuples, and waits for the node's flush result.
	Flush(ctx context.Context, node int) error
	// CloseNode tears down the link to a node (failover: the node is
	// unreachable or dead) and returns the messages that were still
	// queued or unacknowledged — the caller salvages them onto
	// surviving nodes. Subsequent Sends to the node fail with
	// ErrLinkDown.
	CloseNode(node int) []Msg
	// Close tears down every link and listener.
	Close() error
}

// NetFaultInjector is the optional chaos hook the TCP transport
// consults (see internal/faults for the deterministic implementation).
// NetPartitioned reports whether the given direction of node's link is
// currently cut (outbound = routing layer towards the node, inbound =
// the node's acks back); a partitioned write is silently discarded, as
// a black-holed packet would be. NetFrameAction consults the schedule
// for the nth data/flush frame written towards node (1-based,
// per-link) and may drop the frame (recovered by retransmission),
// duplicate it (receiver dedups by seq), reorder it past its successor
// (receiver reorders by seq), or delay it (slow link: the wait stalls
// everything behind it on the link).
type NetFaultInjector interface {
	NetPartitioned(node int, inbound bool) bool
	NetFrameAction(node int, nth int64) (drop, dup, reorder bool, delay time.Duration)
}

// Framed TCP transport: one loopback (or LAN) listener per cluster,
// one link per worker node. Each link owns a session whose frames
// carry per-session monotonic sequence numbers; the receiver delivers
// them in order exactly once (deduplicating replays, reordering
// stragglers through a bounded stash) and acknowledges cumulatively.
// Link failure is self-healing: an acknowledgement stall resets the
// connection, reconnects under jittered exponential backoff, resumes
// the session, and retransmits everything unacknowledged. Silence
// beyond the suspicion timeout reports the node to OnSuspect, which
// the cluster wires to its checkpoint+log+salvage failover.
package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Tuning are the TCP transport's knobs. The zero value resolves to
// the defaults documented per field; SuspectAfter < 0 disables
// suspicion (links then reconnect forever without ever reporting the
// node).
type Tuning struct {
	// MaxFrame bounds one frame's payload in bytes (default 1 MiB).
	MaxFrame int
	// Window caps queued+unacknowledged frames per link (default 1024);
	// a full window blocks Send, propagating receiver backpressure.
	Window int
	// HeartbeatEvery is the idle-link heartbeat interval (default
	// 100ms). Heartbeat acks feed the suspicion clock.
	HeartbeatEvery time.Duration
	// SuspectAfter is how long a link may stay silent before the node
	// is reported to OnSuspect (default 2s; < 0 disables suspicion).
	SuspectAfter time.Duration
	// RetransmitAfter is how long the oldest unacknowledged frame may
	// age before the connection is reset and the session resumed with
	// retransmission (default 1s). It is the recovery clock for
	// dropped frames and acknowledgement stalls.
	RetransmitAfter time.Duration
	// DialTimeout bounds one dial plus session handshake (default 1s).
	DialTimeout time.Duration
	// ReconnectBackoff is the base reconnect delay (default 10ms),
	// doubled per consecutive failure with full jitter, capped at
	// 500ms — the same decorrelation scheme as cluster.RetryBusy.
	ReconnectBackoff time.Duration
}

const (
	defaultWindow          = 1024
	defaultHeartbeatEvery  = 100 * time.Millisecond
	defaultSuspectAfter    = 2 * time.Second
	defaultRetransmitAfter = time.Second
	defaultDialTimeout     = time.Second
	defaultReconnectBase   = 10 * time.Millisecond
	maxReconnectBackoff    = 500 * time.Millisecond
	// reorderStash bounds the receiver's out-of-order frame stash per
	// session; frames beyond it are discarded and recovered by the
	// sender's retransmission clock.
	reorderStash = 256
)

func (t Tuning) resolved() Tuning {
	if t.MaxFrame <= 0 {
		t.MaxFrame = DefaultMaxFrame
	}
	if t.Window <= 0 {
		t.Window = defaultWindow
	}
	if t.HeartbeatEvery <= 0 {
		t.HeartbeatEvery = defaultHeartbeatEvery
	}
	if t.SuspectAfter == 0 {
		t.SuspectAfter = defaultSuspectAfter
	}
	if t.RetransmitAfter <= 0 {
		t.RetransmitAfter = defaultRetransmitAfter
	}
	if t.DialTimeout <= 0 {
		t.DialTimeout = defaultDialTimeout
	}
	if t.ReconnectBackoff <= 0 {
		t.ReconnectBackoff = defaultReconnectBase
	}
	return t
}

// Config configures a TCP transport.
type Config struct {
	// Nodes is the worker count; links are dialed eagerly for
	// 0..Nodes-1.
	Nodes int
	// Listen is the address to bind (default "127.0.0.1:0").
	Listen string
	// Tuning holds the failure-detection and framing knobs.
	Tuning Tuning
	// Handler receives delivered tuples and flush barriers.
	Handler Handler
	// OnSuspect, when set, is called (once per node, on its own
	// goroutine) when a link stays silent beyond SuspectAfter.
	OnSuspect func(node int)
	// Faults, when set, injects deterministic network chaos.
	Faults NetFaultInjector
	// Metrics receives the transport.* counters (nil = private).
	Metrics *telemetry.Registry
	// Recorder receives link lifecycle events (nil = disabled).
	Recorder *telemetry.Recorder
}

type tcpMetrics struct {
	framesSent  *telemetry.Counter
	framesRecv  *telemetry.Counter
	bytesSent   *telemetry.Counter
	retransmits *telemetry.Counter
	deduped     *telemetry.Counter
	reconnects  *telemetry.Counter
	suspects    *telemetry.Counter
	heartbeats  *telemetry.Counter
}

// TCP is the framed TCP transport. It owns both endpoints: the
// cluster-side links and the node-side listener (each worker node in
// this reproduction shares the process, as the channel transport's
// nodes do — the wire in between is real).
type TCP struct {
	cfg    Config
	tun    Tuning
	h      Handler
	faults NetFaultInjector
	met    tcpMetrics
	frec   *telemetry.Recorder

	ln    net.Listener
	addr  string
	links []*link

	sessMu   sync.Mutex
	sessions map[uint64]*session

	sessionIDs atomic.Uint64
	closed     atomic.Bool
	wg         sync.WaitGroup
}

// NewTCP binds the listener and dials one link per node. The links
// connect lazily in the background; Send queues immediately.
func NewTCP(cfg Config) (*TCP, error) {
	if cfg.Handler == nil {
		return nil, errors.New("transport: tcp needs a Handler")
	}
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("transport: need at least one node, got %d", cfg.Nodes)
	}
	addr := cfg.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	t := &TCP{
		cfg:    cfg,
		tun:    cfg.Tuning.resolved(),
		h:      cfg.Handler,
		faults: cfg.Faults,
		frec:   cfg.Recorder,
		ln:     ln,
		addr:   ln.Addr().String(),
		met: tcpMetrics{
			framesSent:  reg.Counter("transport.frames_sent"),
			framesRecv:  reg.Counter("transport.frames_recv"),
			bytesSent:   reg.Counter("transport.bytes_sent"),
			retransmits: reg.Counter("transport.retransmits"),
			deduped:     reg.Counter("transport.frames_deduped"),
			reconnects:  reg.Counter("transport.reconnects"),
			suspects:    reg.Counter("transport.suspects"),
			heartbeats:  reg.Counter("transport.heartbeats"),
		},
		sessions: make(map[uint64]*session),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	t.links = make([]*link, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		l := &link{
			t:       t,
			node:    i,
			session: t.sessionIDs.Add(1),
			wake:    make(chan struct{}, 1),
			done:    make(chan struct{}),
			flushes: make(map[uint64]chan error),
		}
		l.lastHeard.Store(time.Now().UnixNano())
		t.links[i] = l
		t.wg.Add(2)
		go l.run()
		go l.monitor()
	}
	return t, nil
}

// Addr reports the bound listener address (useful with Listen ":0").
func (t *TCP) Addr() string { return t.addr }

// Send queues one tuple on node's link. It blocks while the send
// window is full (receiver backpressure), honours ctx, and fails fast
// with ErrLinkDown once the link is torn down.
func (t *TCP) Send(ctx context.Context, node int, m Msg) error {
	l := t.links[node]
	l.mu.Lock()
	for {
		if l.down {
			l.mu.Unlock()
			return ErrLinkDown
		}
		if len(l.sendq)+len(l.unacked) < t.tun.Window {
			l.nextSeq++
			l.sendq = append(l.sendq, &entry{f: frame{Kind: frameData, Session: l.session, Seq: l.nextSeq, Msg: m}})
			l.mu.Unlock()
			l.kick()
			return nil
		}
		if l.spaceCh == nil {
			l.spaceCh = make(chan struct{})
		}
		ch := l.spaceCh
		l.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
		l.mu.Lock()
	}
}

// Flush sends a flush barrier after everything already queued and
// waits for the node's flush result.
func (t *TCP) Flush(ctx context.Context, node int) error {
	l := t.links[node]
	l.mu.Lock()
	if l.down {
		l.mu.Unlock()
		return ErrLinkDown
	}
	l.nextSeq++
	seq := l.nextSeq
	ch := make(chan error, 1)
	l.flushes[seq] = ch
	l.sendq = append(l.sendq, &entry{f: frame{Kind: frameFlush, Session: l.session, Seq: seq}})
	l.mu.Unlock()
	l.kick()
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CloseNode tears down node's link and returns the data messages that
// were still queued or unacknowledged, oldest first, for salvage.
// Frames that were delivered but not yet acknowledged may appear here
// too — the recovery layer's per-stream sequence dedup absorbs them.
func (t *TCP) CloseNode(node int) []Msg {
	msgs := t.links[node].teardown()
	t.frec.Record(telemetry.EvLinkDown, "", "", 0, int64(node))
	return msgs
}

// Close tears down every link and the listener.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	for _, l := range t.links {
		l.teardown()
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// partitioned consults the fault injector for a cut link direction.
func (t *TCP) partitioned(node int, inbound bool) bool {
	return t.faults != nil && t.faults.NetPartitioned(node, inbound)
}

// ---- sender side: links ----

// entry is one queued or in-flight frame.
type entry struct {
	f      frame
	sentAt time.Time // last write attempt (guarded by link.mu)
}

// link is the sender half of one node's connection: an outbound queue,
// the unacknowledged window, and the reconnect/resume state machine.
// Invariant: every seq in unacked precedes every seq in sendq, so
// (unacked ++ sendq) is always the in-order retransmission image.
type link struct {
	t    *TCP
	node int
	// session is the link's resumable identity; it survives
	// reconnects (frame seqs are per-session, so the receiver's dedup
	// state stays valid across connections).
	session uint64

	mu      sync.Mutex
	sendq   []*entry // not yet written on the current connection
	unacked []*entry // written, awaiting cumulative ack
	nextSeq uint64
	flushes map[uint64]chan error
	down    bool
	conn    net.Conn
	connGen int
	spaceCh chan struct{} // closed when window space frees
	// outFrames counts data/flush frames written towards the node —
	// the deterministic clock the fault schedule runs on.
	outFrames int64

	wake      chan struct{} // writer wake-up, buffered 1
	done      chan struct{} // closed at teardown
	everUp    atomic.Bool
	suspected atomic.Bool
	lastHeard atomic.Int64 // unix nanos of the last frame from the node
}

func (l *link) kick() {
	select {
	case l.wake <- struct{}{}:
	default:
	}
}

func (l *link) isDown() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.down
}

// run is the link's connection state machine: dial, handshake, resume,
// serve until the connection fails, back off, repeat.
func (l *link) run() {
	defer l.t.wg.Done()
	attempt := 0
	for {
		if l.isDown() || l.t.closed.Load() {
			return
		}
		conn, delivered, err := l.dial()
		if err != nil {
			attempt++
			if !l.sleepBackoff(attempt) {
				return
			}
			continue
		}
		attempt = 0
		gen := l.resume(conn, delivered)
		if gen < 0 {
			conn.Close()
			return
		}
		if l.everUp.Swap(true) {
			l.t.met.reconnects.Inc()
			l.t.frec.Record(telemetry.EvLinkReconnect, "", "", 0, int64(l.node))
		} else {
			l.t.frec.Record(telemetry.EvLinkUp, "", "", 0, int64(l.node))
		}
		l.serve(conn, gen)
		if l.isDown() || l.t.closed.Load() {
			return
		}
		l.t.frec.Record(telemetry.EvLinkDown, "", "", 0, int64(l.node))
		attempt++
		if !l.sleepBackoff(attempt) {
			return
		}
	}
}

// dial connects and completes the session handshake, returning the
// receiver's delivered high-water mark for this session.
func (l *link) dial() (net.Conn, uint64, error) {
	conn, err := net.DialTimeout("tcp", l.t.addr, l.t.tun.DialTimeout)
	if err != nil {
		return nil, 0, err
	}
	hello := frame{Kind: frameHello, Session: l.session, Node: l.node}
	if !l.t.partitioned(l.node, false) {
		if _, err := conn.Write(appendFrame(nil, &hello)); err != nil {
			conn.Close()
			return nil, 0, err
		}
	}
	_ = conn.SetReadDeadline(time.Now().Add(l.t.tun.DialTimeout))
	ack, err := readFrame(conn, l.t.tun.MaxFrame)
	if err != nil || ack.Kind != frameHelloAck || ack.Session != l.session {
		conn.Close()
		if err == nil {
			err = fmt.Errorf("transport: bad handshake reply kind %d", ack.Kind)
		}
		return nil, 0, err
	}
	_ = conn.SetReadDeadline(time.Time{})
	l.lastHeard.Store(time.Now().UnixNano())
	return conn, ack.Seq, nil
}

// resume installs the new connection and prepares retransmission:
// data frames the receiver already delivered are completed, everything
// else moves back to the front of the send queue in seq order. Flush
// frames are always retransmitted — the receiver replies to replays
// from its cached result, so a flush waiter survives resets.
func (l *link) resume(conn net.Conn, delivered uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.down {
		return -1
	}
	var resend []*entry
	for _, e := range l.unacked {
		if e.f.Kind == frameData && e.f.Seq <= delivered {
			continue // already delivered; ack was lost with the old conn
		}
		resend = append(resend, e)
	}
	if n := len(resend); n > 0 {
		l.t.met.retransmits.Add(int64(n))
	}
	l.sendq = append(resend, l.sendq...)
	l.unacked = nil
	l.freeSpaceLocked()
	l.conn = conn
	l.connGen++
	return l.connGen
}

// serve runs the connection's writer and reader until one fails, then
// tears the connection down and waits for both.
func (l *link) serve(conn net.Conn, gen int) {
	var once sync.Once
	fail := func() { once.Do(func() { conn.Close() }) }
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.writeLoop(conn, gen)
		fail()
	}()
	l.readLoop(conn)
	fail()
	wg.Wait()
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
	}
	l.mu.Unlock()
}

// writeLoop drains the send queue onto the connection, moving frames
// into the unacked window, applying injected frame faults, and
// heartbeating when idle. It exits when the connection generation
// moves on (reconnect), the link tears down, or a write fails.
func (l *link) writeLoop(conn net.Conn, gen int) {
	bw := bufio.NewWriter(conn)
	var scratch []byte
	var held []byte // reorder fault: frame delayed past its successor
	hb := time.NewTicker(l.t.tun.HeartbeatEvery)
	defer hb.Stop()
	flushHeld := func() error {
		if held == nil {
			return nil
		}
		b := held
		held = nil
		l.t.met.framesSent.Inc()
		l.t.met.bytesSent.Add(int64(len(b)))
		_, err := bw.Write(b)
		return err
	}
	for {
		l.mu.Lock()
		if l.down || l.connGen != gen {
			l.mu.Unlock()
			return
		}
		batch := l.sendq
		l.sendq = nil
		now := time.Now()
		for _, e := range batch {
			e.sentAt = now
		}
		l.unacked = append(l.unacked, batch...)
		l.mu.Unlock()
		if len(batch) == 0 {
			if err := flushHeld(); err != nil {
				return
			}
			if err := bw.Flush(); err != nil {
				return
			}
			select {
			case <-l.wake:
			case <-hb.C:
				if !l.t.partitioned(l.node, false) {
					f := frame{Kind: frameHeartbeat, Session: l.session}
					scratch = appendFrame(scratch[:0], &f)
					if _, err := bw.Write(scratch); err != nil {
						return
					}
					if err := bw.Flush(); err != nil {
						return
					}
					l.t.met.heartbeats.Inc()
				}
			case <-l.done:
				return
			}
			continue
		}
		for _, e := range batch {
			var drop, dup, reorder bool
			var delay time.Duration
			if l.t.faults != nil {
				l.mu.Lock()
				l.outFrames++
				nth := l.outFrames
				l.mu.Unlock()
				drop, dup, reorder, delay = l.t.faults.NetFrameAction(l.node, nth)
			}
			if delay > 0 {
				if err := bw.Flush(); err != nil { // drain before stalling
					return
				}
				select {
				case <-time.After(delay):
				case <-l.done:
					return
				}
			}
			if drop || l.t.partitioned(l.node, false) {
				continue // stays in unacked; the retransmit clock recovers it
			}
			scratch = appendFrame(scratch[:0], &e.f)
			if reorder && held == nil {
				held = append([]byte(nil), scratch...)
				continue
			}
			writes := 1
			if dup {
				writes = 2
			}
			for i := 0; i < writes; i++ {
				l.t.met.framesSent.Inc()
				l.t.met.bytesSent.Add(int64(len(scratch)))
				if _, err := bw.Write(scratch); err != nil {
					return
				}
			}
			if err := flushHeld(); err != nil {
				return
			}
		}
		if err := flushHeld(); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

// readLoop consumes acknowledgements until the connection fails.
func (l *link) readLoop(conn net.Conn) {
	br := bufio.NewReader(conn)
	for {
		f, err := readFrame(br, l.t.tun.MaxFrame)
		if err != nil {
			return
		}
		l.lastHeard.Store(time.Now().UnixNano())
		switch f.Kind {
		case frameAck:
			l.ackTo(f.Seq)
		case frameFlushAck:
			// Resolve the waiter before the cumulative ack pops its
			// entry — ackTo treats a popped flush without a result as
			// lost to a reset.
			l.completeFlush(f)
			l.ackTo(f.Seq)
		case frameHeartbeatAck:
			// lastHeard already advanced; nothing else to do
		}
	}
}

// ackTo completes every unacked frame with seq <= cum (cumulative
// acknowledgement). A flush frame popped here without its flushAck
// lost its result to a reset; its waiter fails retryably.
func (l *link) ackTo(cum uint64) {
	l.mu.Lock()
	var lostFlushes []chan error
	for len(l.unacked) > 0 && l.unacked[0].f.Seq <= cum {
		e := l.unacked[0]
		l.unacked = l.unacked[1:]
		if e.f.Kind == frameFlush {
			if ch, ok := l.flushes[e.f.Seq]; ok {
				delete(l.flushes, e.f.Seq)
				lostFlushes = append(lostFlushes, ch)
			}
		}
	}
	l.freeSpaceLocked()
	l.mu.Unlock()
	for _, ch := range lostFlushes {
		ch <- ErrSessionReset
	}
}

// completeFlush resolves a flush waiter from its typed wire result.
func (l *link) completeFlush(f frame) {
	l.mu.Lock()
	ch, ok := l.flushes[f.Seq]
	if ok {
		delete(l.flushes, f.Seq)
	}
	l.mu.Unlock()
	if !ok {
		return
	}
	switch f.Code {
	case flushOK:
		ch <- nil
	case flushNodeDown:
		ch <- ErrLinkDown
	case flushSessionReset:
		ch <- ErrSessionReset
	default:
		ch <- fmt.Errorf("transport: node %d flush: %s", l.node, f.Err)
	}
}

func (l *link) freeSpaceLocked() {
	if l.spaceCh != nil && len(l.sendq)+len(l.unacked) < l.t.tun.Window {
		close(l.spaceCh)
		l.spaceCh = nil
	}
}

// monitor is the link's failure detector: it resets stalled
// connections (retransmission clock) and reports nodes silent beyond
// the suspicion timeout.
func (l *link) monitor() {
	defer l.t.wg.Done()
	tick := time.NewTicker(l.t.tun.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-tick.C:
		}
		l.mu.Lock()
		var oldest time.Time
		if len(l.unacked) > 0 {
			oldest = l.unacked[0].sentAt
		}
		conn := l.conn
		l.mu.Unlock()
		if conn != nil && !oldest.IsZero() && time.Since(oldest) > l.t.tun.RetransmitAfter {
			conn.Close() // kick the state machine into reconnect+resume
		}
		if l.t.tun.SuspectAfter > 0 &&
			time.Since(time.Unix(0, l.lastHeard.Load())) > l.t.tun.SuspectAfter &&
			!l.suspected.Swap(true) {
			l.t.met.suspects.Inc()
			l.t.frec.Record(telemetry.EvLinkSuspect, "", "", 0, int64(l.node))
			if f := l.t.cfg.OnSuspect; f != nil {
				go f(l.node)
			}
		}
	}
}

// sleepBackoff sleeps the jittered exponential reconnect delay;
// false means the link tore down while waiting.
func (l *link) sleepBackoff(attempt int) bool {
	d := l.t.tun.ReconnectBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxReconnectBackoff {
			d = maxReconnectBackoff
			break
		}
	}
	sleep := d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	select {
	case <-time.After(sleep):
		return true
	case <-l.done:
		return false
	}
}

// teardown marks the link down, fails pending flush waiters, wakes
// blocked senders, and returns the undelivered data messages in seq
// order for salvage.
func (l *link) teardown() []Msg {
	l.mu.Lock()
	if l.down {
		l.mu.Unlock()
		return nil
	}
	l.down = true
	var msgs []Msg
	for _, e := range append(append([]*entry(nil), l.unacked...), l.sendq...) {
		if e.f.Kind == frameData {
			msgs = append(msgs, e.f.Msg)
		}
	}
	l.unacked, l.sendq = nil, nil
	waiters := make([]chan error, 0, len(l.flushes))
	for seq, ch := range l.flushes {
		waiters = append(waiters, ch)
		delete(l.flushes, seq)
	}
	if l.spaceCh != nil {
		close(l.spaceCh)
		l.spaceCh = nil
	}
	conn := l.conn
	l.conn = nil
	close(l.done)
	l.mu.Unlock()
	for _, ch := range waiters {
		ch <- ErrLinkDown
	}
	if conn != nil {
		conn.Close()
	}
	return msgs
}

// ---- receiver side: listener, sessions ----

// session is the receiver's per-link delivery state: the contiguous
// delivered high-water mark (dedup + cumulative ack), a bounded
// out-of-order stash, and the last flush result (replayed flush
// frames are answered from it instead of re-running the barrier).
type session struct {
	mu        sync.Mutex
	node      int
	delivered uint64
	pending   map[uint64]frame
	flushSeq  uint64
	flushCode byte
	flushErr  string
}

func (t *TCP) sessionFor(id uint64, node int) *session {
	t.sessMu.Lock()
	defer t.sessMu.Unlock()
	s, ok := t.sessions[id]
	if !ok {
		s = &session{node: node, pending: make(map[uint64]frame)}
		t.sessions[id] = s
	}
	return s
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

// serveConn is the node-side handler for one inbound connection:
// handshake, then deliver sequenced frames and acknowledge
// cumulatively. Acks batch naturally — the buffered writer is only
// flushed once the read buffer drains.
func (t *TCP) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer conn.Close()
	_ = conn.SetReadDeadline(time.Now().Add(2 * t.tun.DialTimeout))
	hello, err := readFrame(conn, t.tun.MaxFrame)
	if err != nil || hello.Kind != frameHello || hello.Node < 0 || hello.Node >= t.cfg.Nodes {
		return
	}
	_ = conn.SetReadDeadline(time.Time{})
	sess := t.sessionFor(hello.Session, hello.Node)
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var scratch []byte
	writeBack := func(f *frame) bool {
		if t.partitioned(sess.node, true) {
			return true // black-holed ack; the sender's clocks recover
		}
		scratch = appendFrame(scratch[:0], f)
		if _, err := bw.Write(scratch); err != nil {
			return false
		}
		return true
	}
	sess.mu.Lock()
	ack := frame{Kind: frameHelloAck, Session: hello.Session, Seq: sess.delivered}
	sess.mu.Unlock()
	if !writeBack(&ack) || bw.Flush() != nil {
		return
	}
	for {
		f, err := readFrame(br, t.tun.MaxFrame)
		if err != nil {
			return
		}
		t.met.framesRecv.Inc()
		switch f.Kind {
		case frameData, frameFlush:
			if !t.handleSequenced(sess, f, writeBack) {
				return
			}
		case frameHeartbeat:
			hb := frame{Kind: frameHeartbeatAck, Session: f.Session}
			if !writeBack(&hb) {
				return
			}
		}
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// handleSequenced delivers one data/flush frame in session order:
// replays below the high-water mark are deduplicated (flush replays
// answered from the cached result), gaps are stashed until the
// missing frames arrive, and every outcome is acknowledged
// cumulatively.
func (t *TCP) handleSequenced(sess *session, f frame, writeBack func(*frame) bool) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	switch {
	case f.Seq <= sess.delivered:
		t.met.deduped.Inc()
		if f.Kind == frameFlush {
			code, text := flushSessionReset, ""
			if f.Seq == sess.flushSeq {
				code, text = sess.flushCode, sess.flushErr
			}
			return writeBack(&frame{Kind: frameFlushAck, Session: f.Session, Seq: f.Seq, Code: code, Err: text})
		}
		return writeBack(&frame{Kind: frameAck, Session: f.Session, Seq: sess.delivered})
	case f.Seq == sess.delivered+1:
		if !t.deliverLocked(sess, f, writeBack) {
			return false
		}
		for {
			next, ok := sess.pending[sess.delivered+1]
			if !ok {
				break
			}
			delete(sess.pending, sess.delivered+1)
			if !t.deliverLocked(sess, next, writeBack) {
				return false
			}
		}
		if f.Kind == frameFlush && sess.delivered == f.Seq {
			return true // the flushAck already acknowledged cumulatively
		}
		return writeBack(&frame{Kind: frameAck, Session: f.Session, Seq: sess.delivered})
	default: // gap: reorder stash, bounded; overflow recovers by retransmit
		if len(sess.pending) < reorderStash {
			sess.pending[f.Seq] = f
		}
		return writeBack(&frame{Kind: frameAck, Session: f.Session, Seq: sess.delivered})
	}
}

// deliverLocked hands one in-order frame to the cluster handler and
// advances the session high-water mark. Tuple delivery errors are the
// routing layer's drop accounting, not transport failures; flush
// results are cached for replay and answered inline.
func (t *TCP) deliverLocked(sess *session, f frame, writeBack func(*frame) bool) bool {
	switch f.Kind {
	case frameData:
		_ = t.h.HandleTuple(context.Background(), sess.node, f.Msg)
		sess.delivered = f.Seq
		return true
	case frameFlush:
		err := t.h.HandleFlush(context.Background(), sess.node)
		sess.delivered = f.Seq
		code, text := flushOK, ""
		switch {
		case err == nil:
		case errors.Is(err, ErrLinkDown):
			code = flushNodeDown
		default:
			code, text = flushErr, err.Error()
		}
		sess.flushSeq, sess.flushCode, sess.flushErr = f.Seq, code, text
		return writeBack(&frame{Kind: frameFlushAck, Session: f.Session, Seq: f.Seq, Code: code, Err: text})
	}
	return true
}

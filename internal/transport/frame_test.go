package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"testing"

	"repro/internal/relation"
)

func dataFrame(seq uint64) frame {
	return frame{
		Kind:    frameData,
		Session: 7,
		Seq:     seq,
		Msg: Msg{
			Stream: "s0",
			TS:     12345,
			Seq:    int64(seq),
			Row: relation.Tuple{
				relation.Int(42),
				relation.Time(12345),
				relation.Float(3.5),
				relation.String_("sensor-a"),
				relation.Bool_(true),
				{Type: relation.TNull},
			},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []frame{
		dataFrame(9),
		{Kind: frameHello, Session: 3, Node: 2},
		{Kind: frameHelloAck, Session: 3, Seq: 17},
		{Kind: frameFlush, Session: 3, Seq: 18},
		{Kind: frameAck, Session: 3, Seq: 18},
		{Kind: frameFlushAck, Session: 3, Seq: 18, Code: flushErr, Err: "window failed"},
		{Kind: frameHeartbeat, Session: 3},
		{Kind: frameHeartbeatAck, Session: 3},
	}
	for _, want := range cases {
		buf := appendFrame(nil, &want)
		got, err := readFrame(bytes.NewReader(buf), DefaultMaxFrame)
		if err != nil {
			t.Fatalf("kind %d: %v", want.Kind, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("kind %d round-trip:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

// TestFrameTornWrite truncates an encoded frame at every possible
// offset: a cut at a frame boundary is a clean EOF, anything else is
// an unexpected EOF — never a misdecoded frame.
func TestFrameTornWrite(t *testing.T) {
	f := dataFrame(1)
	buf := appendFrame(nil, &f)
	for cut := 0; cut < len(buf); cut++ {
		_, err := readFrame(bytes.NewReader(buf[:cut]), DefaultMaxFrame)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("cut at 0: got %v, want io.EOF", err)
			}
			continue
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestFrameChecksumCorruption flips each payload byte in turn; every
// corruption must surface as ErrChecksum, not as a decoded frame.
func TestFrameChecksumCorruption(t *testing.T) {
	f := dataFrame(2)
	buf := appendFrame(nil, &f)
	for i := frameHeaderSize; i < len(buf); i++ {
		corrupt := append([]byte(nil), buf...)
		corrupt[i] ^= 0x40
		if _, err := readFrame(bytes.NewReader(corrupt), DefaultMaxFrame); !errors.Is(err, ErrChecksum) {
			t.Fatalf("flip at %d: got %v, want ErrChecksum", i, err)
		}
	}
}

// TestFrameMaxSizeRejected rejects an oversized announced payload
// before allocating it (a corrupt or hostile length field must not OOM
// the receiver).
func TestFrameMaxSizeRejected(t *testing.T) {
	f := dataFrame(3)
	buf := appendFrame(nil, &f)
	max := len(buf) - frameHeaderSize - 1
	if _, err := readFrame(bytes.NewReader(buf), max); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// A huge announced length with no payload behind it must fail on the
	// length check alone.
	hdr := make([]byte, frameHeaderSize)
	binary.LittleEndian.PutUint64(hdr, 1<<40)
	if _, err := readFrame(bytes.NewReader(hdr), DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
	// At exactly the limit the frame still decodes.
	if _, err := readFrame(bytes.NewReader(buf), max+1); err != nil {
		t.Fatalf("frame at the size limit rejected: %v", err)
	}
}

func TestFrameUnknownKindRejected(t *testing.T) {
	f := frame{Kind: 99, Session: 1, Seq: 1}
	buf := appendFrame(nil, &f)
	if _, err := readFrame(bytes.NewReader(buf), DefaultMaxFrame); !errors.Is(err, errBadFrame) {
		t.Fatalf("got %v, want errBadFrame", err)
	}
}

// TestFrameStreamed reads several frames back-to-back from one reader,
// as the connection loops do.
func TestFrameStreamed(t *testing.T) {
	var buf []byte
	for seq := uint64(1); seq <= 3; seq++ {
		f := dataFrame(seq)
		buf = appendFrame(buf, &f)
	}
	r := bytes.NewReader(buf)
	for seq := uint64(1); seq <= 3; seq++ {
		f, err := readFrame(r, DefaultMaxFrame)
		if err != nil {
			t.Fatal(err)
		}
		if f.Seq != seq {
			t.Fatalf("got seq %d, want %d", f.Seq, seq)
		}
	}
	if _, err := readFrame(r, DefaultMaxFrame); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

// Frame codec for the TCP transport. The wire format reuses the
// recovery store's framing conventions: an 8-byte little-endian
// payload length, an 8-byte FNV-1a checksum of the payload, then the
// payload. A torn write fails the length/payload read, a corrupt
// payload fails the checksum, and an oversized length is rejected
// before any allocation — all three tear down the connection, and the
// session-resume path retransmits whatever the peer never
// acknowledged.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/relation"
)

// Frame kinds. Hello/HelloAck carry the session handshake, Data and
// Flush carry the sequenced payload stream, Ack/FlushAck flow back
// from the receiver, Heartbeat/HeartbeatAck keep failure detection fed
// on idle links.
const (
	frameHello byte = iota + 1
	frameHelloAck
	frameData
	frameFlush
	frameAck
	frameFlushAck
	frameHeartbeat
	frameHeartbeatAck
)

// frameHeaderSize is the fixed prefix: payload length + checksum.
const frameHeaderSize = 16

// DefaultMaxFrame bounds one frame's payload (1 MiB); a peer
// announcing more is corrupt or hostile and the connection is cut.
const DefaultMaxFrame = 1 << 20

// Codec errors, distinguishable by errors.Is for tests and link
// accounting.
var (
	// ErrFrameTooLarge rejects a frame whose announced payload exceeds
	// the transport's maximum frame size.
	ErrFrameTooLarge = errors.New("transport: frame exceeds max size")
	// ErrChecksum rejects a frame whose payload bytes do not match the
	// header checksum (corruption on the wire).
	ErrChecksum = errors.New("transport: frame checksum mismatch")
	// errBadFrame rejects a structurally invalid payload.
	errBadFrame = errors.New("transport: malformed frame payload")
)

// Flush-ack result codes. Typed peer-side outcomes survive the wire
// as codes, not error text, so errors.Is keeps working across the hop.
const (
	flushOK byte = iota
	flushErr
	flushNodeDown     // the peer's node is dead (maps to ErrLinkDown)
	flushSessionReset // the peer lost the flush's fate (ErrSessionReset)
)

// frame is one decoded wire frame. Session and Seq are present on
// every kind; the remaining fields are kind-specific.
type frame struct {
	Kind    byte
	Session uint64
	Seq     uint64 // data/flush: frame seq; ack/helloAck: cumulative seq
	Node    int    // hello: target node id
	Msg     Msg    // data
	Code    byte   // flushAck: result code
	Err     string // flushAck: flush error text ("" = ok)
}

// fnv1a matches the recovery store's checksum convention.
func fnv1a(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// appendFrame encodes f (header + payload) onto buf and returns the
// extended slice. The caller writes the result in one Write so a torn
// write can only truncate, never interleave.
func appendFrame(buf []byte, f *frame) []byte {
	start := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize)...)
	buf = append(buf, f.Kind)
	buf = binary.LittleEndian.AppendUint64(buf, f.Session)
	buf = binary.LittleEndian.AppendUint64(buf, f.Seq)
	switch f.Kind {
	case frameHello:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.Node))
	case frameData:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Msg.TS))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Msg.Seq))
		buf = appendString(buf, f.Msg.Stream)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(f.Msg.Row)))
		for _, v := range f.Msg.Row {
			buf = appendValue(buf, v)
		}
	case frameFlushAck:
		buf = append(buf, f.Code)
		buf = appendString(buf, f.Err)
	}
	payload := buf[start+frameHeaderSize:]
	binary.LittleEndian.PutUint64(buf[start:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[start+8:], fnv1a(payload))
	return buf
}

// readFrame reads and verifies one frame. Torn streams surface as
// io.ErrUnexpectedEOF (or io.EOF at a frame boundary), corruption as
// ErrChecksum, oversized announcements as ErrFrameTooLarge.
func readFrame(r io.Reader, maxFrame int) (frame, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.LittleEndian.Uint64(hdr[:8])
	sum := binary.LittleEndian.Uint64(hdr[8:])
	if n > uint64(maxFrame) {
		return frame{}, fmt.Errorf("%w (%d bytes)", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return frame{}, err
	}
	if fnv1a(payload) != sum {
		return frame{}, ErrChecksum
	}
	return decodePayload(payload)
}

func decodePayload(p []byte) (frame, error) {
	var f frame
	if len(p) < 17 {
		return f, errBadFrame
	}
	f.Kind = p[0]
	f.Session = binary.LittleEndian.Uint64(p[1:])
	f.Seq = binary.LittleEndian.Uint64(p[9:])
	p = p[17:]
	switch f.Kind {
	case frameHello:
		if len(p) < 4 {
			return f, errBadFrame
		}
		f.Node = int(int32(binary.LittleEndian.Uint32(p)))
	case frameData:
		if len(p) < 16 {
			return f, errBadFrame
		}
		f.Msg.TS = int64(binary.LittleEndian.Uint64(p))
		f.Msg.Seq = int64(binary.LittleEndian.Uint64(p[8:]))
		p = p[16:]
		var err error
		if f.Msg.Stream, p, err = readString(p); err != nil {
			return f, err
		}
		if len(p) < 2 {
			return f, errBadFrame
		}
		cols := int(binary.LittleEndian.Uint16(p))
		p = p[2:]
		f.Msg.Row = make(relation.Tuple, cols)
		for i := 0; i < cols; i++ {
			var v relation.Value
			if v, p, err = readValue(p); err != nil {
				return f, err
			}
			f.Msg.Row[i] = v
		}
	case frameFlushAck:
		if len(p) < 1 {
			return f, errBadFrame
		}
		f.Code = p[0]
		var err error
		if f.Err, _, err = readString(p[1:]); err != nil {
			return f, err
		}
	case frameHelloAck, frameFlush, frameAck, frameHeartbeat, frameHeartbeatAck:
		// no extra payload
	default:
		return f, fmt.Errorf("%w: unknown kind %d", errBadFrame, f.Kind)
	}
	return f, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readString(p []byte) (string, []byte, error) {
	if len(p) < 4 {
		return "", nil, errBadFrame
	}
	n := int(binary.LittleEndian.Uint32(p))
	p = p[4:]
	if len(p) < n {
		return "", nil, errBadFrame
	}
	return string(p[:n]), p[n:], nil
}

// appendValue encodes one typed relational value: a type tag followed
// by a type-dependent payload.
func appendValue(buf []byte, v relation.Value) []byte {
	buf = append(buf, byte(v.Type))
	switch v.Type {
	case relation.TInt, relation.TTime:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Int))
	case relation.TFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float))
	case relation.TString:
		buf = appendString(buf, v.Str)
	case relation.TBool:
		b := byte(0)
		if v.Bool {
			b = 1
		}
		buf = append(buf, b)
	}
	return buf
}

func readValue(p []byte) (relation.Value, []byte, error) {
	if len(p) < 1 {
		return relation.Value{}, nil, errBadFrame
	}
	v := relation.Value{Type: relation.Type(p[0])}
	p = p[1:]
	switch v.Type {
	case relation.TNull:
	case relation.TInt, relation.TTime:
		if len(p) < 8 {
			return v, nil, errBadFrame
		}
		v.Int = int64(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case relation.TFloat:
		if len(p) < 8 {
			return v, nil, errBadFrame
		}
		v.Float = math.Float64frombits(binary.LittleEndian.Uint64(p))
		p = p[8:]
	case relation.TString:
		var err error
		if v.Str, p, err = readString(p); err != nil {
			return v, nil, err
		}
	case relation.TBool:
		if len(p) < 1 {
			return v, nil, errBadFrame
		}
		v.Bool = p[0] == 1
		p = p[1:]
	default:
		return v, nil, fmt.Errorf("%w: unknown value type %d", errBadFrame, v.Type)
	}
	return v, p, nil
}

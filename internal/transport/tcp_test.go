package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/telemetry"
)

// The deterministic fault injector must satisfy the transport's hook
// interface.
var _ NetFaultInjector = (*faults.Injector)(nil)

// collectHandler records delivered tuples and flush barriers per node.
type collectHandler struct {
	mu      sync.Mutex
	msgs    map[int][]Msg
	flushes map[int]int
	flushCh chan struct{} // signalled per flush (nil = disabled)
}

func newCollectHandler() *collectHandler {
	return &collectHandler{msgs: make(map[int][]Msg), flushes: make(map[int]int)}
}

func (h *collectHandler) HandleTuple(_ context.Context, node int, m Msg) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.msgs[node] = append(h.msgs[node], m)
	return nil
}

func (h *collectHandler) HandleFlush(_ context.Context, node int) error {
	h.mu.Lock()
	h.flushes[node]++
	h.mu.Unlock()
	if h.flushCh != nil {
		h.flushCh <- struct{}{}
	}
	return nil
}

func (h *collectHandler) delivered(node int) []Msg {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]Msg(nil), h.msgs[node]...)
}

func testMsg(stream string, i int) Msg {
	return Msg{
		Stream: stream,
		TS:     int64(i) * 100,
		Seq:    int64(i) + 1,
		Row:    relation.Tuple{relation.Int(int64(i)), relation.Float(float64(i) / 2)},
	}
}

// checkDelivered asserts node received exactly msgs 0..n-1 in order,
// each exactly once.
func checkDelivered(t *testing.T, h *collectHandler, node, n int, stream string) {
	t.Helper()
	got := h.delivered(node)
	if len(got) != n {
		t.Fatalf("node %d delivered %d msgs, want %d", node, len(got), n)
	}
	for i, m := range got {
		want := testMsg(stream, i)
		if m.Stream != want.Stream || m.TS != want.TS || m.Seq != want.Seq || len(m.Row) != len(want.Row) {
			t.Fatalf("node %d msg %d = %+v, want %+v", node, i, m, want)
		}
	}
}

func chaosTuning() Tuning {
	return Tuning{
		HeartbeatEvery:   5 * time.Millisecond,
		SuspectAfter:     -1, // chaos runs reconnect forever; no failover
		RetransmitAfter:  30 * time.Millisecond,
		DialTimeout:      50 * time.Millisecond,
		ReconnectBackoff: time.Millisecond,
	}
}

func newTestTCP(t *testing.T, cfg Config) *TCP {
	t.Helper()
	tr, err := NewTCP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func TestTCPDeliversInOrder(t *testing.T) {
	h := newCollectHandler()
	tr := newTestTCP(t, Config{Nodes: 2, Handler: h})
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		for node := 0; node < 2; node++ {
			if err := tr.Send(ctx, node, testMsg(fmt.Sprintf("s%d", node), i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for node := 0; node < 2; node++ {
		if err := tr.Flush(ctx, node); err != nil {
			t.Fatalf("flush node %d: %v", node, err)
		}
	}
	// The flush barrier ran behind every tuple on each link, so delivery
	// is complete the moment it returns.
	for node := 0; node < 2; node++ {
		checkDelivered(t, h, node, 50, fmt.Sprintf("s%d", node))
		h.mu.Lock()
		flushes := h.flushes[node]
		h.mu.Unlock()
		if flushes != 1 {
			t.Errorf("node %d ran %d flushes, want 1", node, flushes)
		}
	}
}

// TestTCPDropsRecoverByRetransmit drops frames on the wire; the
// retransmission clock resets the connection, the session resumes, and
// every tuple still arrives exactly once, in order.
func TestTCPDropsRecoverByRetransmit(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).DropFrameAt(0, 3).DropFrameEvery(0, 17)
	reg := telemetry.NewRegistry()
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h, Faults: inj, Tuning: chaosTuning(), Metrics: reg})
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		if err := tr.Send(ctx, 0, testMsg("s0", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(ctx, 0); err != nil {
		t.Fatal(err)
	}
	checkDelivered(t, h, 0, 40, "s0")
	if inj.Injected(faults.KindNetDrop) == 0 {
		t.Error("no drops were injected")
	}
	if reg.Counter("transport.retransmits").Value() == 0 {
		t.Error("drops recovered without retransmissions")
	}
}

// TestTCPDuplicatesAreDeduped writes duplicated frames; the receiver's
// session high-water mark must deliver each exactly once.
func TestTCPDuplicatesAreDeduped(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).DuplicateFrameEvery(0, 3)
	reg := telemetry.NewRegistry()
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h, Faults: inj, Tuning: chaosTuning(), Metrics: reg})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if err := tr.Send(ctx, 0, testMsg("s0", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(ctx, 0); err != nil {
		t.Fatal(err)
	}
	checkDelivered(t, h, 0, 30, "s0")
	if inj.Injected(faults.KindNetDup) == 0 {
		t.Error("no duplicates were injected")
	}
	if reg.Counter("transport.frames_deduped").Value() == 0 {
		t.Error("duplicated frames were never deduplicated")
	}
}

// TestTCPReorderedFramesAreResequenced holds frames past their
// successors; the receiver's stash restores session order.
func TestTCPReorderedFramesAreResequenced(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).ReorderFrameEvery(0, 5)
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h, Faults: inj, Tuning: chaosTuning()})
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if err := tr.Send(ctx, 0, testMsg("s0", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(ctx, 0); err != nil {
		t.Fatal(err)
	}
	checkDelivered(t, h, 0, 30, "s0")
	if inj.Injected(faults.KindNetReorder) == 0 {
		t.Error("no reorders were injected")
	}
}

// TestTCPSessionResumeDedupes is the session-resumption edge case: a
// dropped frame forces a connection reset with frames beyond it already
// stashed at the receiver. The resumed session retransmits from the
// peer's delivered high-water mark, so the stashed frames arrive twice
// — and must be delivered once.
func TestTCPSessionResumeDedupes(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).DropFrameAt(0, 2)
	reg := telemetry.NewRegistry()
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h, Faults: inj, Tuning: chaosTuning(), Metrics: reg})
	ctx := context.Background()
	// Frame 2 vanishes; frames 3..5 land in the reorder stash. The
	// retransmit clock resets the connection and the resume replays
	// everything past the receiver's delivered=1.
	for i := 0; i < 5; i++ {
		if err := tr.Send(ctx, 0, testMsg("s0", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Flush(ctx, 0); err != nil {
		t.Fatal(err)
	}
	checkDelivered(t, h, 0, 5, "s0")
	if reg.Counter("transport.reconnects").Value() == 0 {
		t.Error("the dropped frame never forced a reconnect")
	}
	if reg.Counter("transport.frames_deduped").Value() == 0 {
		t.Error("resume retransmission was never deduplicated")
	}
}

// TestTCPPartitionHealsAndResumes cuts the link mid-stream (one-way:
// outbound black-holed, acks still flow) and heals it; the session
// resumes and delivers everything exactly once.
func TestTCPPartitionHealsAndResumes(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).CutLinkAtFrame(0, 4, true)
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h, Faults: inj, Tuning: chaosTuning()})
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := tr.Send(ctx, 0, testMsg("s0", i)); err != nil {
			t.Fatal(err)
		}
	}
	// Give the cut time to bite (the trigger arms on the 4th written
	// frame), then heal and flush: the barrier completes only after the
	// resumed session delivered the backlog.
	time.Sleep(50 * time.Millisecond)
	inj.HealLink(0)
	if err := tr.Flush(ctx, 0); err != nil {
		t.Fatal(err)
	}
	checkDelivered(t, h, 0, 20, "s0")
	if inj.Injected(faults.KindNetPartition) == 0 {
		t.Error("the partition never bit")
	}
}

// TestTCPSuspicionFiresOnSilence cuts a node's link symmetrically and
// never heals it: the failure detector must report the node exactly
// once.
func TestTCPSuspicionFiresOnSilence(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).CutLink(0)
	suspected := make(chan int, 2)
	tun := chaosTuning()
	tun.SuspectAfter = 60 * time.Millisecond
	reg := telemetry.NewRegistry()
	tr := newTestTCP(t, Config{
		Nodes: 1, Handler: h, Faults: inj, Tuning: tun, Metrics: reg,
		OnSuspect: func(node int) { suspected <- node },
	})
	if err := tr.Send(context.Background(), 0, testMsg("s0", 0)); err != nil {
		t.Fatal(err)
	}
	select {
	case node := <-suspected:
		if node != 0 {
			t.Fatalf("suspected node %d, want 0", node)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("suspicion never fired on a cut link")
	}
	if reg.Counter("transport.suspects").Value() != 1 {
		t.Errorf("suspects = %d, want 1", reg.Counter("transport.suspects").Value())
	}
	select {
	case <-suspected:
		t.Fatal("suspicion fired twice for one node")
	case <-time.After(3 * tun.SuspectAfter):
	}
}

// TestTCPCloseNodeSalvagesUndelivered tears down a partitioned link;
// the queued tuples come back for salvage, in order, and subsequent
// sends fail fast with the typed error.
func TestTCPCloseNodeSalvagesUndelivered(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).CutLink(0)
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h, Faults: inj, Tuning: chaosTuning()})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := tr.Send(ctx, 0, testMsg("s0", i)); err != nil {
			t.Fatal(err)
		}
	}
	msgs := tr.CloseNode(0)
	if len(msgs) != 10 {
		t.Fatalf("salvaged %d msgs, want 10", len(msgs))
	}
	for i, m := range msgs {
		if m.Seq != int64(i)+1 {
			t.Fatalf("salvage out of order: msg %d has seq %d", i, m.Seq)
		}
	}
	if err := tr.Send(ctx, 0, testMsg("s0", 99)); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("send after CloseNode: got %v, want ErrLinkDown", err)
	}
	if err := tr.Flush(ctx, 0); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("flush after CloseNode: got %v, want ErrLinkDown", err)
	}
}

// TestTCPFlushCarriesHandlerError round-trips a flush failure as a
// typed wire code plus text.
func TestTCPFlushCarriesHandlerError(t *testing.T) {
	boom := errors.New("window execution failed")
	h := &errFlushHandler{err: boom}
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h})
	err := tr.Flush(context.Background(), 0)
	if err == nil || err.Error() != "transport: node 0 flush: window execution failed" {
		t.Fatalf("got %v, want wrapped flush error", err)
	}
}

type errFlushHandler struct{ err error }

func (h *errFlushHandler) HandleTuple(context.Context, int, Msg) error { return nil }
func (h *errFlushHandler) HandleFlush(context.Context, int) error      { return h.err }

// TestTCPSendHonorsContextOnFullWindow fills the send window of a cut
// link; a bounded Send must give up with the context error.
func TestTCPSendHonorsContextOnFullWindow(t *testing.T) {
	h := newCollectHandler()
	inj := faults.New(1).CutLink(0)
	tun := chaosTuning()
	tun.Window = 4
	tr := newTestTCP(t, Config{Nodes: 1, Handler: h, Faults: inj, Tuning: tun})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if err := tr.Send(ctx, 0, testMsg("s0", i)); err != nil {
			t.Fatal(err)
		}
	}
	bounded, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if err := tr.Send(bounded, 0, testMsg("s0", 4)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

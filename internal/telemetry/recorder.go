package telemetry

import (
	"sort"
	"sync"
	"time"
)

// EventKind identifies what a flight-recorder event records.
type EventKind uint8

// Flight-recorder event kinds. The recorder stores the enum; Events()
// decodes it to the snake_case wire name.
const (
	EvWindowExec EventKind = iota
	EvDegradeShed
	EvDegradeWiden
	EvDegradeSuspend
	EvCheckpoint
	EvRestore
	EvFailover
	EvQuarantine
	EvAdmissionReject
	EvRestart
	// Transport link lifecycle (Value = node id): a link's first
	// successful session handshake, an established connection lost, a
	// reconnect with session resumption, the failure detector
	// suspecting a silent node, and a suspicion-triggered failover
	// migrating the node's queries.
	EvLinkUp
	EvLinkDown
	EvLinkReconnect
	EvLinkSuspect
	EvTransportFailover
	numEventKinds // keep last
)

var eventKindNames = [numEventKinds]string{
	"window_exec", "degrade_shed", "degrade_widen", "degrade_suspend",
	"checkpoint", "restore", "failover", "quarantine",
	"admission_reject", "restart",
	"link_up", "link_down", "link_reconnect", "link_suspect",
	"transport_failover",
}

func (k EventKind) String() string {
	if k >= numEventKinds {
		return "unknown"
	}
	return eventKindNames[k]
}

// Event is the decoded, JSON-friendly form of one flight-recorder
// entry. Value carries a kind-specific quantity: window wall ns for
// window_exec, bytes shed for degrade_shed, the new stride for
// degrade_widen, bytes over budget for degrade_suspend, and so on —
// docs/observability.md tabulates the schema per kind.
type Event struct {
	Seq       uint64 `json:"seq"`
	TimeUnix  int64  `json:"time_unix_ns"`
	Kind      string `json:"kind"`
	Node      int    `json:"node"`
	Query     string `json:"query,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	WindowEnd int64  `json:"window_end_ms,omitempty"`
	Value     int64  `json:"value,omitempty"`
}

// eventRec is the compact in-ring representation: fixed size, no
// pointers beyond the two string headers, so recording never
// allocates.
type eventRec struct {
	seq       uint64
	t         int64
	windowEnd int64
	value     int64
	query     string
	tenant    string
	kind      EventKind
}

// Recorder is a bounded flight recorder: a mutex-guarded ring of
// recent structured events, the "black box" dumped after an incident.
// A nil *Recorder is the disabled recorder — Record on it is a
// single predictable branch with zero allocations, so call sites
// stay unconditional and hot paths pay nothing when recording is off.
type Recorder struct {
	node int
	mu   sync.Mutex
	seq  uint64
	buf  []eventRec
	next int // next write slot
	full bool
}

// NewRecorder returns a recorder attributed to node holding the most
// recent capacity events. capacity <= 0 returns nil, the disabled
// recorder.
func NewRecorder(node, capacity int) *Recorder {
	if capacity <= 0 {
		return nil
	}
	return &Recorder{node: node, buf: make([]eventRec, capacity)}
}

// Record appends one event, overwriting the oldest once the ring is
// full. The signature is deliberately non-variadic with scalar/string
// arguments so no call boxes into interfaces: the disabled (nil) path
// is zero-alloc and the enabled path allocates nothing beyond the
// preallocated ring.
func (r *Recorder) Record(kind EventKind, query, tenant string, windowEnd, value int64) {
	if r == nil {
		return
	}
	now := time.Now().UnixNano()
	r.mu.Lock()
	r.seq++
	r.buf[r.next] = eventRec{
		seq:       r.seq,
		t:         now,
		windowEnd: windowEnd,
		value:     value,
		query:     query,
		tenant:    tenant,
		kind:      kind,
	}
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Len reports how many events the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Events decodes the retained ring, oldest first. A nil recorder
// yields nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	recs := make([]eventRec, 0, len(r.buf))
	if r.full {
		recs = append(recs, r.buf[r.next:]...)
	}
	recs = append(recs, r.buf[:r.next]...)
	node := r.node
	r.mu.Unlock()

	out := make([]Event, len(recs))
	for i, rec := range recs {
		out[i] = Event{
			Seq:       rec.seq,
			TimeUnix:  rec.t,
			Kind:      rec.kind.String(),
			Node:      node,
			Query:     rec.query,
			Tenant:    rec.tenant,
			WindowEnd: rec.windowEnd,
			Value:     rec.value,
		}
	}
	return out
}

// MergeEvents interleaves per-node event dumps into one timeline
// ordered by wall time (sequence breaks ties within a node).
func MergeEvents(dumps ...[]Event) []Event {
	var n int
	for _, d := range dumps {
		n += len(d)
	}
	out := make([]Event, 0, n)
	for _, d := range dumps {
		out = append(out, d...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].TimeUnix != out[j].TimeUnix {
			return out[i].TimeUnix < out[j].TimeUnix
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// QueryLag summarizes one registered query's runtime position for the
// fleet lag view: how far behind the engine-wide event-time frontier
// it is, how much window state it is holding, and whether governance
// has degraded it. exastream computes the per-query values; cluster
// stamps Node/Tenant when aggregating across the fleet.
type QueryLag struct {
	ID      string `json:"id"`
	Node    int    `json:"node"`
	Tenant  string `json:"tenant,omitempty"`
	State   string `json:"state"` // running | widened | suspended
	Windows int64  `json:"windows"`
	RowsOut int64  `json:"rows_out"`
	// LastWindowEnd is the event-time end (ms) of the newest window the
	// query executed; WatermarkLagMS is the engine frontier minus that —
	// 0 for the query defining the frontier, growing when it lags.
	LastWindowEnd  int64 `json:"last_window_end_ms"`
	WatermarkLagMS int64 `json:"watermark_lag_ms"`
	// BacklogBytes is staged-but-unexecuted window state attributable to
	// the query (privately owned windows plus its staged batches).
	BacklogBytes  int64 `json:"backlog_bytes"`
	BudgetBytes   int64 `json:"budget_bytes,omitempty"`
	HeadroomBytes int64 `json:"headroom_bytes,omitempty"`
	// Stride > 1 means degradation widened the effective slide.
	Stride int64 `json:"stride,omitempty"`
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
)

// HandlerConfig names the data sources behind the monitoring surface.
// Every field may be nil: the corresponding endpoint then serves an
// empty document (or 404 for Explain). Sources are called per request
// so output is always live.
type HandlerConfig struct {
	Snapshot func() Snapshot
	Traces   func() []TraceSnapshot
	// Queries backs /queries — the fleet-wide per-query lag view.
	Queries func() []QueryLag
	// Explain backs /queries/{id}/explain; analyze adds observed
	// per-operator stats. It returns an error for unknown ids.
	Explain func(id string, analyze bool) (string, error)
	// Events backs /events — the merged flight-recorder timeline.
	Events func() []Event
}

// NewHandler serves the opt-in monitoring surface:
//
//	/metrics                merged metrics snapshot; JSON by default,
//	                        Prometheus text exposition with
//	                        ?format=prom or an Accept header naming
//	                        text/plain before application/json
//	/healthz                readiness probe ("ok\n", 200)
//	/queries                fleet-wide per-query lag view as JSON
//	/queries/{id}/explain   rendered query pipeline (?analyze=1 adds
//	                        observed per-operator stats)
//	/events                 flight-recorder timeline as JSON
//	/traces                 retained query-lifecycle traces as JSON
//	/debug/pprof/           the standard net/http/pprof profiles
func NewHandler(cfg HandlerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var s Snapshot
		if cfg.Snapshot != nil {
			s = cfg.Snapshot()
		}
		if wantsProm(r) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			writeProm(w, s)
			return
		}
		writeJSON(w, s)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/queries", func(w http.ResponseWriter, _ *http.Request) {
		var qs []QueryLag
		if cfg.Queries != nil {
			qs = cfg.Queries()
		}
		if qs == nil {
			qs = []QueryLag{}
		}
		writeJSON(w, qs)
	})
	mux.HandleFunc("/queries/", func(w http.ResponseWriter, r *http.Request) {
		id, ok := strings.CutSuffix(strings.TrimPrefix(r.URL.Path, "/queries/"), "/explain")
		if !ok || id == "" || strings.Contains(id, "/") {
			http.NotFound(w, r)
			return
		}
		if cfg.Explain == nil {
			http.NotFound(w, r)
			return
		}
		analyze := r.URL.Query().Get("analyze") != ""
		text, err := cfg.Explain(id, analyze)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, text)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		var evs []Event
		if cfg.Events != nil {
			evs = cfg.Events()
		}
		if evs == nil {
			evs = []Event{}
		}
		writeJSON(w, evs)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		var ts []TraceSnapshot
		if cfg.Traces != nil {
			ts = cfg.Traces()
		}
		if ts == nil {
			ts = []TraceSnapshot{}
		}
		writeJSON(w, ts)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Handler is the pre-introspection-plane constructor, kept for callers
// that only have metrics and traces.
func Handler(snapshot func() Snapshot, traces func() []TraceSnapshot) http.Handler {
	return NewHandler(HandlerConfig{Snapshot: snapshot, Traces: traces})
}

// wantsProm reports whether the request asked for Prometheus text
// exposition: ?format=prom, or an Accept header preferring text/plain
// over JSON. JSON stays the default.
func wantsProm(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prom", "prometheus":
		return true
	case "json":
		return false
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch mt {
		case "text/plain":
			return true
		case "application/json":
			return false
		}
	}
	return false
}

// promName maps a registry metric name ("exastream.window.exec_ns")
// onto the Prometheus grammar ([a-zA-Z_:][a-zA-Z0-9_:]*).
func promName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// writeProm renders a snapshot in the Prometheus text exposition
// format (version 0.0.4), hand-rolled so the package stays
// dependency-free: counters and gauges as single samples, histograms
// as the cumulative _bucket/_sum/_count triple.
func writeProm(w http.ResponseWriter, s Snapshot) {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}

	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn,
			strconv.FormatFloat(s.Gauges[name], 'g', -1, 64))
	}

	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, bound := range h.Bounds {
			if i < len(h.Counts) {
				cum += h.Counts[i]
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", pn,
				strconv.FormatFloat(bound, 'g', -1, 64), cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(w, "%s_sum %s\n", pn, strconv.FormatFloat(h.Sum, 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

// Server aliases http.Server so callers can hold and close the
// monitoring endpoint without importing net/http themselves.
type Server = http.Server

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve starts the monitoring endpoint on addr (e.g. "localhost:6060";
// port 0 picks a free port) and returns the server plus the bound
// address. The caller closes the server (Shutdown for a graceful
// drain); serving errors after Close are swallowed.
//
// The endpoint is unauthenticated and includes net/http/pprof (heap
// dumps, CPU profiles, cmdline), so it is meant for loopback use. An
// addr with no host (":6060") binds to localhost, not all interfaces;
// exposing the endpoint to the network requires spelling out a
// non-loopback host explicitly.
func Serve(addr string, cfg HandlerConfig) (*http.Server, string, error) {
	if host, port, err := net.SplitHostPort(addr); err == nil && host == "" {
		addr = net.JoinHostPort("localhost", port)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: NewHandler(cfg)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler serves the opt-in monitoring surface:
//
//	/metrics       merged metrics snapshot as indented JSON (expvar-style)
//	/traces        retained query-lifecycle traces as JSON
//	/debug/pprof/  the standard net/http/pprof profiles
//
// snapshot and traces are called per request so the output is always
// live; either may be nil, which serves an empty document.
func Handler(snapshot func() Snapshot, traces func() []TraceSnapshot) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		var s Snapshot
		if snapshot != nil {
			s = snapshot()
		}
		writeJSON(w, s)
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		var ts []TraceSnapshot
		if traces != nil {
			ts = traces()
		}
		if ts == nil {
			ts = []TraceSnapshot{}
		}
		writeJSON(w, ts)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server aliases http.Server so callers can hold and close the
// monitoring endpoint without importing net/http themselves.
type Server = http.Server

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// Serve starts the monitoring endpoint on addr (e.g. "localhost:6060";
// port 0 picks a free port) and returns the server plus the bound
// address. The caller closes the server; serving errors after Close
// are swallowed.
//
// The endpoint is unauthenticated and includes net/http/pprof (heap
// dumps, CPU profiles, cmdline), so it is meant for loopback use. An
// addr with no host (":6060") binds to localhost, not all interfaces;
// exposing the endpoint to the network requires spelling out a
// non-loopback host explicitly.
func Serve(addr string, snapshot func() Snapshot, traces func() []TraceSnapshot) (*http.Server, string, error) {
	if host, port, err := net.SplitHostPort(addr); err == nil && host == "" {
		addr = net.JoinHostPort("localhost", port)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: Handler(snapshot, traces)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}

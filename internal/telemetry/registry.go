// Package telemetry is the observability substrate of the reproduction:
// a dependency-free metrics registry (counters, gauges, fixed-bucket
// latency histograms) plus a lightweight span tracer for the STARQL
// query lifecycle (see trace.go). Every runtime layer — starql
// enrichment/unfolding, the relational engine, the ExaStream DSMS, and
// the cluster runtime — records into a Registry; snapshots merge across
// layers and nodes into the single document core/optique exposes and
// the opt-in HTTP endpoint serves (http.go).
//
// Design constraints, in order: hot-path writes must cost one atomic
// add (the instruments are plain structs the caller resolves once, not
// name lookups per event); reads must never block writers; and the
// package must not import anything beyond the standard library.
//
// Metric names are dot-separated hierarchies, `<layer>.<subsystem>.<what>`,
// e.g. `exastream.plan.cache_hits` or `cluster.node.3.state`. Counters
// are monotonic, gauges are instantaneous values, histograms observe
// float64 samples (durations are recorded in nanoseconds). The name
// suffix carries a gauge's cross-node merge rule: `_ms`, `_ns`,
// `.state` and `.bytes` gauges merge by max, everything else sums (see
// Merge).
package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the value to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 value (occupancy, lag, state).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Registry is a concurrency-safe, get-or-create collection of named
// instruments. Instruments are cheap; resolve them once and keep the
// pointer on the hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use. Later calls return the existing
// histogram whatever bounds they pass, so concurrent creators agree.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = newHistogram(bounds)
	r.hists[name] = h
	return h
}

// Snapshot is a point-in-time structured document of a registry's
// metrics — what core/optique consume and /metrics serves as JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument's current value. Individual reads
// are atomic; the document as a whole is a consistent-enough view for
// monitoring (writers are never blocked).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge combines snapshots from several registries (e.g. one per
// cluster node) into cluster-wide totals: counters and histogram
// buckets sum. Gauges merge by name convention — count-style occupancy
// gauges sum (total cached windows across nodes is meaningful), but
// lag/latency gauges (`*_ms`, `*_ns` suffix), state gauges (`*.state`
// suffix) and byte-footprint gauges (`*.bytes` suffix) take the
// maximum, because summing per-node watermark lags or node states
// produces a number with no meaning, and the interesting byte figure
// is the node closest to its budget.
// Per-node gauges use distinct names (`cluster.node.N.*`) so they pass
// through unchanged either way.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for _, s := range snaps {
		for name, v := range s.Counters {
			out.Counters[name] += v
		}
		for name, v := range s.Gauges {
			cur, seen := out.Gauges[name]
			switch {
			case !seen:
				out.Gauges[name] = v
			case gaugeMergesByMax(name):
				out.Gauges[name] = math.Max(cur, v)
			default:
				out.Gauges[name] = cur + v
			}
		}
		for name, h := range s.Histograms {
			out.Histograms[name] = out.Histograms[name].merge(h)
		}
	}
	return out
}

// gaugeMergesByMax reports whether a gauge's cross-node merge takes the
// maximum instead of the sum: lag and latency gauges (named `*_ms` or
// `*_ns`), state gauges (`*.state`) and occupancy gauges (`*.bytes`,
// e.g. the per-node wCache footprint) are not additive — the
// cluster-wide value of a lag or a cache high-water mark is its worst
// node, not the total.
func gaugeMergesByMax(name string) bool {
	return strings.HasSuffix(name, "_ms") ||
		strings.HasSuffix(name, "_ns") ||
		strings.HasSuffix(name, ".state") ||
		strings.HasSuffix(name, ".bytes")
}

// CounterNames lists registered counters, sorted (for stable output in
// tests and docs).
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

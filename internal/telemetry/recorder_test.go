package telemetry

import (
	"sync"
	"testing"
)

func TestRecorderRingOrder(t *testing.T) {
	r := NewRecorder(3, 4)
	for i := int64(0); i < 3; i++ {
		r.Record(EvWindowExec, "q1", "acme", i*1000, i)
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("Events len = %d, want 3", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Kind != "window_exec" {
			t.Errorf("event %d: Kind = %q, want window_exec", i, ev.Kind)
		}
		if ev.Node != 3 {
			t.Errorf("event %d: Node = %d, want 3", i, ev.Node)
		}
		if ev.Query != "q1" || ev.Tenant != "acme" {
			t.Errorf("event %d: attribution = %q/%q", i, ev.Query, ev.Tenant)
		}
		if ev.WindowEnd != int64(i)*1000 || ev.Value != int64(i) {
			t.Errorf("event %d: WindowEnd=%d Value=%d", i, ev.WindowEnd, ev.Value)
		}
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(0, 4)
	for i := int64(0); i < 10; i++ {
		r.Record(EvCheckpoint, "", "", 0, i)
	}
	if got := r.Len(); got != 4 {
		t.Fatalf("Len after wrap = %d, want 4", got)
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("Events len = %d, want 4", len(evs))
	}
	// The ring keeps the newest 4 of 10, oldest first: values 6..9.
	for i, ev := range evs {
		if want := int64(6 + i); ev.Value != want {
			t.Errorf("event %d: Value = %d, want %d", i, ev.Value, want)
		}
		if want := uint64(7 + i); ev.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, want)
		}
	}
}

func TestRecorderDisabled(t *testing.T) {
	var r *Recorder // the disabled recorder
	r.Record(EvFailover, "q", "t", 1, 2)
	if r.Len() != 0 {
		t.Errorf("nil recorder Len = %d, want 0", r.Len())
	}
	if evs := r.Events(); evs != nil {
		t.Errorf("nil recorder Events = %v, want nil", evs)
	}
	if got := NewRecorder(1, 0); got != nil {
		t.Errorf("NewRecorder(capacity=0) = %v, want nil", got)
	}
	if got := NewRecorder(1, -5); got != nil {
		t.Errorf("NewRecorder(capacity<0) = %v, want nil", got)
	}
}

func TestEventKindNames(t *testing.T) {
	want := map[EventKind]string{
		EvWindowExec:      "window_exec",
		EvDegradeShed:     "degrade_shed",
		EvDegradeWiden:    "degrade_widen",
		EvDegradeSuspend:  "degrade_suspend",
		EvCheckpoint:      "checkpoint",
		EvRestore:         "restore",
		EvFailover:        "failover",
		EvQuarantine:      "quarantine",
		EvAdmissionReject: "admission_reject",
		EvRestart:         "restart",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), name)
		}
	}
	if got := numEventKinds.String(); got != "unknown" {
		t.Errorf("out-of-range kind String() = %q, want unknown", got)
	}
}

func TestMergeEvents(t *testing.T) {
	a := []Event{
		{Seq: 1, TimeUnix: 10, Node: 0},
		{Seq: 2, TimeUnix: 30, Node: 0},
	}
	b := []Event{
		{Seq: 1, TimeUnix: 20, Node: 1},
		{Seq: 2, TimeUnix: 30, Node: 1},
	}
	merged := MergeEvents(a, b)
	if len(merged) != 4 {
		t.Fatalf("merged len = %d, want 4", len(merged))
	}
	wantOrder := []struct {
		t    int64
		node int
	}{{10, 0}, {20, 1}, {30, 0}, {30, 1}}
	for i, w := range wantOrder {
		if merged[i].TimeUnix != w.t || merged[i].Node != w.node {
			t.Errorf("merged[%d] = (t=%d node=%d), want (t=%d node=%d)",
				i, merged[i].TimeUnix, merged[i].Node, w.t, w.node)
		}
	}
	if got := MergeEvents(); len(got) != 0 {
		t.Errorf("MergeEvents() = %v, want empty", got)
	}
}

// TestRecorderConcurrent exercises the ring under contention so `go
// test -race` covers concurrent Record/Events/Len interleavings.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(0, 64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); i < 500; i++ {
				r.Record(EvWindowExec, "q", "", i, int64(g))
				if i%100 == 0 {
					r.Events()
					r.Len()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Len(); got != 64 {
		t.Fatalf("Len = %d, want full ring of 64", got)
	}
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d: seq %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestRecorderDisabledAllocs pins the acceptance criterion that the
// disabled (nil) recorder path performs zero allocations.
func TestRecorderDisabledAllocs(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(EvWindowExec, "q0001", "tenant", 5000, 123456)
	})
	if allocs != 0 {
		t.Fatalf("disabled Record allocates %.1f per call, want 0", allocs)
	}
}

// TestRecorderEnabledAllocs checks the enabled path allocates nothing
// beyond the preallocated ring (strings are retained, not copied).
func TestRecorderEnabledAllocs(t *testing.T) {
	r := NewRecorder(0, 128)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(EvWindowExec, "q0001", "tenant", 5000, 123456)
	})
	if allocs != 0 {
		t.Fatalf("enabled Record allocates %.1f per call, want 0", allocs)
	}
}

// BenchmarkCounterAdd pins the per-event cost of the hot metric
// counter increment (an atomic add).
func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench.counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkRecorderDisabled pins the disabled-recorder cost on hot
// paths: a nil check, no allocations.
func BenchmarkRecorderDisabled(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(EvWindowExec, "q0001", "", int64(i), 42)
	}
}

// BenchmarkRecorderEnabled pins the enabled-recorder cost: one mutexed
// ring write per event.
func BenchmarkRecorderEnabled(b *testing.B) {
	r := NewRecorder(0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(EvWindowExec, "q0001", "", int64(i), 42)
	}
}

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.b")
	c.Inc()
	c.Add(4)
	if got := r.Counter("a.b").Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("a.g")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %v, want 1.5", got)
	}
	if r.Counter("a.b") != c {
		t.Error("counter identity not stable across lookups")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 20, 50})
	for _, v := range []float64{1, 10, 11, 20, 21, 50, 51, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Buckets: (-inf,10] (10,20] (20,50] (50,+inf)
	want := []int64{2, 2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Sum != 1164 {
		t.Errorf("sum = %v, want 1164", s.Sum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	// 1-unit buckets 1..100: quantile interpolation should land within
	// one bucket width of the exact order statistic.
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i + 1)
	}
	h := r.Histogram("q", bounds)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {1.0, 100},
	} {
		got := s.Quantile(tc.q)
		if got < tc.want-1 || got > tc.want+1 {
			t.Errorf("q%.2f = %v, want %v±1", tc.q, got, tc.want)
		}
	}
	if s.P50 != s.Quantile(0.50) || s.P95 != s.Quantile(0.95) || s.P99 != s.Quantile(0.99) {
		t.Error("precomputed quantiles disagree with Quantile()")
	}
	// Overflow bucket clamps to the last finite bound.
	h2 := r.Histogram("q2", []float64{1})
	h2.Observe(1e9)
	if got := h2.Snapshot().Quantile(0.99); got != 1 {
		t.Errorf("overflow quantile = %v, want 1 (last finite bound)", got)
	}
	// Empty histogram quantiles are 0, not NaN.
	if got := r.Histogram("empty", []float64{1}).Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
}

func TestMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("c").Add(3)
	b.Counter("c").Add(4)
	b.Counter("only_b").Inc()
	a.Gauge("g").Set(1)
	b.Gauge("g").Set(2)
	a.Histogram("h", []float64{10, 20}).Observe(5)
	b.Histogram("h", []float64{10, 20}).Observe(15)
	m := Merge(a.Snapshot(), b.Snapshot())
	if m.Counters["c"] != 7 || m.Counters["only_b"] != 1 {
		t.Errorf("merged counters = %v", m.Counters)
	}
	if m.Gauges["g"] != 3 {
		t.Errorf("merged gauge = %v, want 3", m.Gauges["g"])
	}
	h := m.Histograms["h"]
	if h.Count != 2 || h.Counts[0] != 1 || h.Counts[1] != 1 {
		t.Errorf("merged histogram = %+v", h)
	}
}

// Gauges whose value is not additive across nodes — lags (*_ms, *_ns),
// states (*.state) and byte footprints (*.bytes) — merge by max: the
// cluster-wide watermark lag is the worst node's, not the fleet total.
func TestMergeGaugeMax(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Gauge("exastream.wcache.watermark_lag_ms").Set(120)
	b.Gauge("exastream.wcache.watermark_lag_ms").Set(80)
	a.Gauge("cluster.node.0.state").Set(2)
	b.Gauge("cluster.node.0.state").Set(1)
	a.Gauge("exastream.wcache.len").Set(3)
	b.Gauge("exastream.wcache.len").Set(4)
	a.Gauge("exastream.wcache.bytes").Set(4096)
	b.Gauge("exastream.wcache.bytes").Set(1024)
	m := Merge(a.Snapshot(), b.Snapshot())
	if got := m.Gauges["exastream.wcache.watermark_lag_ms"]; got != 120 {
		t.Errorf("lag gauge merged to %v, want max 120", got)
	}
	if got := m.Gauges["cluster.node.0.state"]; got != 2 {
		t.Errorf("state gauge merged to %v, want max 2", got)
	}
	if got := m.Gauges["exastream.wcache.len"]; got != 7 {
		t.Errorf("occupancy gauge merged to %v, want sum 7", got)
	}
	if got := m.Gauges["exastream.wcache.bytes"]; got != 4096 {
		t.Errorf("bytes gauge merged to %v, want max 4096", got)
	}
}

// Merging histograms with different bucket layouts keeps the receiver's
// buckets and folds the other's Count/Sum only; quantiles must still
// describe the receiver's bucketed samples instead of skewing toward
// the last bound because the rank was based on the inflated Count.
func TestMergeHistogramMismatchedBounds(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	ha := a.Histogram("h", []float64{10, 20, 50})
	for i := 0; i < 100; i++ {
		ha.Observe(5) // all samples in the first bucket
	}
	hb := b.Histogram("h", []float64{1, 2})
	for i := 0; i < 100; i++ {
		hb.Observe(1)
	}
	m := Merge(a.Snapshot(), b.Snapshot())
	h := m.Histograms["h"]
	if h.Count != 200 || h.Sum != 600 {
		t.Errorf("merged totals = count %d sum %v, want 200/600", h.Count, h.Sum)
	}
	// Receiver's samples all sit in (0,10]; P99 must stay there rather
	// than jumping to the 50 bound.
	if h.P99 > 10 {
		t.Errorf("mismatched-merge P99 = %v, want <= 10", h.P99)
	}
}

// TestConcurrentRegistry exercises get-or-create, writes, and snapshots
// from many goroutines; run under -race (the CI race recipe covers it).
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("shared").Inc()
				r.Counter(fmt.Sprintf("own.%d", w)).Inc()
				r.Gauge("g").Set(float64(i))
				r.Histogram("h", LatencyBuckets).Observe(float64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != 8000 {
		t.Errorf("shared counter = %d, want 8000", s.Counters["shared"])
	}
	if s.Histograms["h"].Count != 8000 {
		t.Errorf("histogram count = %d, want 8000", s.Histograms["h"].Count)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("exastream.windows_executed").Add(42)
	tr := NewTracer(4)
	sp := tr.Start("q1").StartSpan("rewrite")
	sp.SetAttr("ucq_size", 3)
	sp.End()
	srv, addr, err := Serve("127.0.0.1:0", HandlerConfig{Snapshot: r.Snapshot, Traces: tr.Snapshots})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cl := &http.Client{Timeout: 5 * time.Second}

	resp, err := cl.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["exastream.windows_executed"] != 42 {
		t.Errorf("served counter = %v", snap.Counters)
	}

	resp, err = cl.Get("http://" + addr + "/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var traces []TraceSnapshot
	if err := json.Unmarshal(body, &traces); err != nil {
		t.Fatalf("traces not JSON: %v\n%s", err, body)
	}
	if len(traces) != 1 || traces[0].ID != "q1" || len(traces[0].Spans) != 1 {
		t.Errorf("traces = %+v", traces)
	}

	resp, err = cl.Get("http://" + addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d", resp.StatusCode)
	}
}

// A host-less addr must bind loopback, not every interface — the
// endpoint serves pprof unauthenticated.
func TestServeHostlessAddrBindsLoopback(t *testing.T) {
	srv, addr, err := Serve(":0", HandlerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		t.Fatal(err)
	}
	if ip := net.ParseIP(host); ip == nil || !ip.IsLoopback() {
		t.Errorf("bound host = %q, want loopback", host)
	}
}

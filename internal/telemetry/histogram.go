package telemetry

import (
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default upper bounds for duration histograms,
// in nanoseconds: a 1-2-5 ladder from 1µs to 10s. Fixed buckets keep
// Observe to two atomic adds and make merged snapshots exact.
var LatencyBuckets = []float64{
	1e3, 2e3, 5e3, // 1µs .. 5µs
	1e4, 2e4, 5e4, // 10µs .. 50µs
	1e5, 2e5, 5e5, // 100µs .. 500µs
	1e6, 2e6, 5e6, // 1ms .. 5ms
	1e7, 2e7, 5e7, // 10ms .. 50ms
	1e8, 2e8, 5e8, // 100ms .. 500ms
	1e9, 2e9, 5e9, // 1s .. 5s
	1e10, // 10s
}

// SizeBuckets are default upper bounds for count-valued histograms
// (fleet sizes, row counts): a 1-2-5 ladder from 1 to 100k.
var SizeBuckets = []float64{
	1, 2, 5, 10, 20, 50, 100, 200, 500,
	1e3, 2e3, 5e3, 1e4, 2e4, 5e4, 1e5,
}

// Histogram is a fixed-bucket histogram with atomic per-bucket counts.
// The last bucket is implicit (+Inf), so every observation lands
// somewhere. Quantiles are estimated from the bucket counts at snapshot
// time with linear interpolation inside the winning bucket.
type Histogram struct {
	bounds []float64 // ascending upper bounds; immutable after creation
	counts []atomic.Int64
	count  atomic.Int64
	sum    Gauge // float64 accumulation via CAS
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(float64(d.Nanoseconds())) }

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a histogram's state at snapshot time, with
// pre-computed quantiles for consumers that do not want to interpolate
// themselves.
type HistogramSnapshot struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []int64   `json:"bucket_counts,omitempty"`
	P50    float64   `json:"p50"`
	P95    float64   `json:"p95"`
	P99    float64   `json:"p99"`
}

// Snapshot captures the histogram's buckets and quantile estimates.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = h.sum.Value()
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
	return s
}

// Quantile estimates the q-quantile (0..1) from the bucket counts:
// find the bucket holding the q-th sample and interpolate linearly
// between its bounds. Samples in the overflow bucket report the last
// finite bound (a lower bound on the true value). The rank is based on
// the bucket-count total, not the Count field — after a mismatched-
// layout merge Count exceeds the bucketed samples, and ranking against
// it would skew every quantile toward the last bound.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	var total float64
	for _, c := range s.Counts {
		total += float64(c)
	}
	if total == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * total
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		// The rank-th sample is in bucket i, spanning (lo, hi].
		var lo float64
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1] // overflow bucket
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return s.Bounds[len(s.Bounds)-1]
}

// merge sums another snapshot's buckets into this one. Mismatched
// bucket layouts (different bound sets) keep the receiver's layout and
// fold the other's count/sum only, so totals stay right even if shapes
// drifted; quantiles then describe the receiver's samples only, since
// Quantile ranks against the bucket-count total rather than the merged
// Count.
func (s HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	if s.Count == 0 && len(s.Counts) == 0 {
		return o
	}
	out := HistogramSnapshot{
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
		Bounds: s.Bounds,
		Counts: append([]int64(nil), s.Counts...),
	}
	if len(o.Counts) == len(s.Counts) && sameBounds(s.Bounds, o.Bounds) {
		for i, c := range o.Counts {
			out.Counts[i] += c
		}
	}
	out.P50 = out.Quantile(0.50)
	out.P95 = out.Quantile(0.95)
	out.P99 = out.Quantile(0.99)
	return out
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package telemetry

import (
	"sync"
	"time"
)

// The span tracer covers the STARQL query lifecycle: one Trace per
// registered query, carrying the one-shot pipeline spans
// (rewrite → unfold → bindings → register) followed by an ongoing
// stream of window-exec spans. Window spans arrive forever, so each
// trace retains a bounded ring of the most recent completed spans and
// counts the evicted rest; the Tracer itself retains a bounded ring of
// traces. An optional Exporter observes every completed span as it
// ends (for shipping to external collectors).
//
// All Trace/Span methods are nil-receiver-safe no-ops, so call sites
// instrument unconditionally:
//
//	span := tracer.Trace(queryID).StartSpan("window-exec") // tracer or trace may be nil
//	span.SetAttr("rows_out", n)
//	span.End()

// Exporter observes completed spans. Implementations must be safe for
// concurrent use and must not block: ExportSpan runs on the execution
// path that ended the span.
type Exporter interface {
	ExportSpan(traceID string, s SpanSnapshot)
}

// Tracer retains the most recent traces, one per query id.
type Tracer struct {
	mu       sync.Mutex
	traces   map[string]*Trace
	order    []string // insertion order for eviction
	capacity int
	maxSpans int
	exporter Exporter
}

const (
	defaultTraceCapacity = 64
	defaultSpansPerTrace = 256
)

// NewTracer returns a tracer retaining at most capacity traces
// (<= 0 means the default, 64).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = defaultTraceCapacity
	}
	return &Tracer{
		traces:   make(map[string]*Trace),
		capacity: capacity,
		maxSpans: defaultSpansPerTrace,
	}
}

// SetExporter installs the span exporter (nil disables export).
func (t *Tracer) SetExporter(e Exporter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.exporter = e
	t.mu.Unlock()
}

// Start begins (or restarts) the trace for a query id, evicting the
// oldest trace beyond capacity.
func (t *Tracer) Start(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	old, ok := t.traces[id]
	if !ok {
		tr := &Trace{ID: id, tracer: t, maxSpans: t.maxSpans}
		t.traces[id] = tr
		t.order = append(t.order, id)
		for len(t.order) > t.capacity {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
		t.mu.Unlock()
		return tr
	}
	// Restarted query: reuse the slot, drop the old spans. Reset outside
	// t.mu so this method never holds tracer and trace locks together
	// (record orders exporter lookup before tr.mu for the same reason).
	t.mu.Unlock()
	old.mu.Lock()
	old.spans = nil
	old.dropped = 0
	old.mu.Unlock()
	return old
}

// Trace returns the retained trace for a query id, or nil.
func (t *Tracer) Trace(id string) *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traces[id]
}

// Snapshots returns the retained traces, oldest first.
func (t *Tracer) Snapshots() []TraceSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	ids := append([]string(nil), t.order...)
	traces := make([]*Trace, 0, len(ids))
	for _, id := range ids {
		traces = append(traces, t.traces[id])
	}
	t.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(traces))
	for _, tr := range traces {
		out = append(out, tr.Snapshot())
	}
	return out
}

// Trace is the span record of one query's lifecycle.
type Trace struct {
	ID     string
	tracer *Tracer

	mu       sync.Mutex
	spans    []SpanSnapshot // completed spans, oldest first, bounded
	dropped  int64          // completed spans evicted from the ring
	maxSpans int
}

// StartSpan opens a span on the trace. The span is recorded when End
// is called; an un-ended span is never retained.
func (tr *Trace) StartSpan(name string) *Span {
	if tr == nil {
		return nil
	}
	return &Span{trace: tr, name: name, start: time.Now()}
}

// Snapshot copies the trace's completed spans.
func (tr *Trace) Snapshot() TraceSnapshot {
	if tr == nil {
		return TraceSnapshot{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceSnapshot{
		ID:      tr.ID,
		Spans:   append([]SpanSnapshot(nil), tr.spans...),
		Dropped: tr.dropped,
	}
}

// SpanNames returns the names of the retained spans in completion
// order (convenience for tests asserting lifecycle coverage).
func (tr *Trace) SpanNames() []string {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]string, len(tr.spans))
	for i, s := range tr.spans {
		out[i] = s.Name
	}
	return out
}

func (tr *Trace) record(s SpanSnapshot) {
	// Resolve the exporter before taking tr.mu: currentExporter locks
	// tracer.mu, and Tracer.Start locks tracer.mu then tr.mu, so taking
	// them here in the opposite order would deadlock a span ending while
	// its query is re-registered.
	exp := tr.tracer.currentExporter()
	tr.mu.Lock()
	if len(tr.spans) >= tr.maxSpans {
		n := copy(tr.spans, tr.spans[1:])
		tr.spans = tr.spans[:n]
		tr.dropped++
	}
	tr.spans = append(tr.spans, s)
	tr.mu.Unlock()
	if exp != nil {
		exp.ExportSpan(tr.ID, s)
	}
}

func (t *Tracer) currentExporter() Exporter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exporter
}

// Span is one in-flight operation within a trace. Not safe for
// concurrent use; each execution owns its span.
type Span struct {
	trace *Trace
	name  string
	start time.Time
	attrs map[string]any
	ended bool
}

// SetAttr attaches a key/value attribute; returns the span for
// chaining.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	return s
}

// End completes the span and records it on the trace. End is
// idempotent; only the first call records.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.trace.record(SpanSnapshot{
		Name:       s.name,
		Start:      s.start,
		DurationNS: time.Since(s.start).Nanoseconds(),
		Attrs:      s.attrs,
	})
}

// SpanSnapshot is one completed span.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationNS int64          `json:"duration_ns"`
	Attrs      map[string]any `json:"attrs,omitempty"`
}

// TraceSnapshot is one trace's retained spans.
type TraceSnapshot struct {
	ID      string         `json:"id"`
	Spans   []SpanSnapshot `json:"spans"`
	Dropped int64          `json:"dropped_spans,omitempty"`
}

// SpanNames lists the snapshot's span names in completion order.
func (ts TraceSnapshot) SpanNames() []string {
	out := make([]string, len(ts.Spans))
	for i, s := range ts.Spans {
		out[i] = s.Name
	}
	return out
}

// FirstSpan returns the first retained span with the given name.
func (ts TraceSnapshot) FirstSpan(name string) (SpanSnapshot, bool) {
	for _, s := range ts.Spans {
		if s.Name == name {
			return s, true
		}
	}
	return SpanSnapshot{}, false
}

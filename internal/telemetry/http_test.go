package telemetry

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testHandler() http.Handler {
	reg := NewRegistry()
	reg.Counter("exastream.windows.executed").Add(7)
	reg.Gauge("cluster.nodes.live").Set(4)
	reg.Histogram("exastream.window.exec_ns", []float64{100, 1000}).Observe(250)
	rec := NewRecorder(0, 8)
	rec.Record(EvWindowExec, "q1", "acme", 5000, 123)
	return NewHandler(HandlerConfig{
		Snapshot: reg.Snapshot,
		Traces:   func() []TraceSnapshot { return nil },
		Queries: func() []QueryLag {
			return []QueryLag{{ID: "q1", Node: 0, State: "running", Windows: 7}}
		},
		Explain: func(id string, analyze bool) (string, error) {
			if id != "q1" {
				return "", errors.New("unknown query")
			}
			if analyze {
				return "-- node 0\nplan [analyzed]\n", nil
			}
			return "-- node 0\nplan\n", nil
		},
		Events: rec.Events,
	})
}

func get(t *testing.T, h http.Handler, target string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", target, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestHandlerEndpoints(t *testing.T) {
	h := testHandler()

	t.Run("metrics json default", func(t *testing.T) {
		w := get(t, h, "/metrics", nil)
		if w.Code != 200 || !strings.Contains(w.Header().Get("Content-Type"), "application/json") {
			t.Fatalf("code=%d type=%s", w.Code, w.Header().Get("Content-Type"))
		}
		var s Snapshot
		if err := json.Unmarshal(w.Body.Bytes(), &s); err != nil {
			t.Fatal(err)
		}
		if s.Counters["exastream.windows.executed"] != 7 {
			t.Fatalf("counters = %v", s.Counters)
		}
	})

	t.Run("metrics prom via query", func(t *testing.T) {
		w := get(t, h, "/metrics?format=prom", nil)
		body := w.Body.String()
		if !strings.Contains(w.Header().Get("Content-Type"), "text/plain") {
			t.Fatalf("type = %s", w.Header().Get("Content-Type"))
		}
		for _, want := range []string{
			"# TYPE exastream_windows_executed counter",
			"exastream_windows_executed 7",
			"# TYPE cluster_nodes_live gauge",
			"cluster_nodes_live 4",
			"# TYPE exastream_window_exec_ns histogram",
			`exastream_window_exec_ns_bucket{le="1000"} 1`,
			`exastream_window_exec_ns_bucket{le="+Inf"} 1`,
			"exastream_window_exec_ns_sum 250",
			"exastream_window_exec_ns_count 1",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("prom output missing %q:\n%s", want, body)
			}
		}
	})

	t.Run("metrics prom via accept", func(t *testing.T) {
		w := get(t, h, "/metrics", map[string]string{"Accept": "text/plain"})
		if !strings.Contains(w.Body.String(), "exastream_windows_executed 7") {
			t.Fatalf("Accept: text/plain did not switch to prom:\n%s", w.Body.String())
		}
		// JSON named first keeps the default.
		w = get(t, h, "/metrics", map[string]string{"Accept": "application/json, text/plain"})
		if !strings.Contains(w.Header().Get("Content-Type"), "application/json") {
			t.Fatalf("Accept preferring JSON got %s", w.Header().Get("Content-Type"))
		}
	})

	t.Run("healthz", func(t *testing.T) {
		w := get(t, h, "/healthz", nil)
		if w.Code != 200 || w.Body.String() != "ok\n" {
			t.Fatalf("code=%d body=%q", w.Code, w.Body.String())
		}
	})

	t.Run("queries", func(t *testing.T) {
		w := get(t, h, "/queries", nil)
		var lags []QueryLag
		if err := json.Unmarshal(w.Body.Bytes(), &lags); err != nil {
			t.Fatal(err)
		}
		if len(lags) != 1 || lags[0].ID != "q1" || lags[0].Windows != 7 {
			t.Fatalf("lags = %+v", lags)
		}
	})

	t.Run("explain", func(t *testing.T) {
		w := get(t, h, "/queries/q1/explain", nil)
		if w.Code != 200 || !strings.Contains(w.Body.String(), "plan") {
			t.Fatalf("code=%d body=%q", w.Code, w.Body.String())
		}
		if strings.Contains(w.Body.String(), "analyzed") {
			t.Fatal("plain explain returned analyzed output")
		}
		w = get(t, h, "/queries/q1/explain?analyze=1", nil)
		if !strings.Contains(w.Body.String(), "analyzed") {
			t.Fatalf("analyze=1 body = %q", w.Body.String())
		}
		if w := get(t, h, "/queries/nope/explain", nil); w.Code != http.StatusNotFound {
			t.Fatalf("unknown query code = %d", w.Code)
		}
		if w := get(t, h, "/queries/q1", nil); w.Code != http.StatusNotFound {
			t.Fatalf("missing /explain suffix code = %d", w.Code)
		}
	})

	t.Run("events", func(t *testing.T) {
		w := get(t, h, "/events", nil)
		var evs []Event
		if err := json.Unmarshal(w.Body.Bytes(), &evs); err != nil {
			t.Fatal(err)
		}
		if len(evs) != 1 || evs[0].Kind != "window_exec" || evs[0].Query != "q1" {
			t.Fatalf("events = %+v", evs)
		}
	})

	t.Run("traces", func(t *testing.T) {
		w := get(t, h, "/traces", nil)
		if w.Code != 200 || strings.TrimSpace(w.Body.String()) != "[]" {
			t.Fatalf("code=%d body=%q", w.Code, w.Body.String())
		}
	})
}

// TestHandlerNilSources: every source may be nil; endpoints degrade to
// empty documents (404 for explain) rather than panicking.
func TestHandlerNilSources(t *testing.T) {
	h := NewHandler(HandlerConfig{})
	for _, target := range []string{"/metrics", "/queries", "/events", "/traces", "/healthz"} {
		if w := get(t, h, target, nil); w.Code != 200 {
			t.Errorf("%s code = %d", target, w.Code)
		}
	}
	if w := get(t, h, "/queries/q1/explain", nil); w.Code != http.StatusNotFound {
		t.Errorf("explain with nil source code = %d", w.Code)
	}
}

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"exastream.window.exec_ns": "exastream_window_exec_ns",
		"cluster.node.0.state":     "cluster_node_0_state",
		"9lives":                   "_lives",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

package telemetry

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestTraceLifecycle(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.Start("task1")
	for _, name := range []string{"rewrite", "unfold", "register"} {
		trace.StartSpan(name).End()
	}
	sp := trace.StartSpan("window-exec")
	sp.SetAttr("window_end", int64(1000)).SetAttr("rows_out", 3)
	sp.End()
	sp.End() // idempotent: must not double-record

	got := tr.Trace("task1").SpanNames()
	want := []string{"rewrite", "unfold", "register", "window-exec"}
	if len(got) != len(want) {
		t.Fatalf("spans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d = %q, want %q", i, got[i], want[i])
		}
	}
	snap := trace.Snapshot()
	w, ok := snap.FirstSpan("window-exec")
	if !ok || w.Attrs["window_end"] != int64(1000) || w.Attrs["rows_out"] != 3 {
		t.Errorf("window span = %+v", w)
	}
	if w.DurationNS < 0 {
		t.Errorf("negative duration %d", w.DurationNS)
	}
}

func TestTraceSpanRing(t *testing.T) {
	tr := NewTracer(1)
	trace := tr.Start("q")
	trace.maxSpans = 4
	for i := 0; i < 10; i++ {
		trace.StartSpan(fmt.Sprintf("s%d", i)).End()
	}
	snap := trace.Snapshot()
	if len(snap.Spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(snap.Spans))
	}
	if snap.Dropped != 6 {
		t.Errorf("dropped = %d, want 6", snap.Dropped)
	}
	if snap.Spans[0].Name != "s6" || snap.Spans[3].Name != "s9" {
		t.Errorf("ring kept %v, want s6..s9", snap.SpanNames())
	}
}

func TestTracerCapacityAndRestart(t *testing.T) {
	tr := NewTracer(2)
	tr.Start("a").StartSpan("x").End()
	tr.Start("b")
	tr.Start("c") // evicts a
	if tr.Trace("a") != nil {
		t.Error("oldest trace not evicted")
	}
	if len(tr.Snapshots()) != 2 {
		t.Errorf("retained %d traces, want 2", len(tr.Snapshots()))
	}
	// Restarting an id reuses the slot and clears old spans.
	b := tr.Start("b")
	b.StartSpan("y").End()
	if names := tr.Trace("b").SpanNames(); len(names) != 1 || names[0] != "y" {
		t.Errorf("restarted trace spans = %v", names)
	}
}

type collectExporter struct {
	mu    sync.Mutex
	spans []string
}

func (c *collectExporter) ExportSpan(traceID string, s SpanSnapshot) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.spans = append(c.spans, traceID+"/"+s.Name)
}

func TestExporter(t *testing.T) {
	tr := NewTracer(4)
	exp := &collectExporter{}
	tr.SetExporter(exp)
	tr.Start("q").StartSpan("rewrite").End()
	tr.Trace("q").StartSpan("window-exec").End()
	exp.mu.Lock()
	defer exp.mu.Unlock()
	if len(exp.spans) != 2 || exp.spans[0] != "q/rewrite" || exp.spans[1] != "q/window-exec" {
		t.Errorf("exported = %v", exp.spans)
	}
}

// Nil receivers are safe no-ops so instrumentation sites need no
// conditionals.
func TestNilSafety(t *testing.T) {
	var tracer *Tracer
	trace := tracer.Start("x")
	if trace != nil {
		t.Fatal("nil tracer returned a trace")
	}
	span := trace.StartSpan("s")
	span.SetAttr("k", 1)
	span.End()
	_ = trace.Snapshot()
	_ = tracer.Trace("x")
	_ = tracer.Snapshots()
	tracer.SetExporter(nil)
}

// Regression: ending a span (trace.mu, exporter lookup) while the same
// query id is re-registered (tracer.mu → trace.mu) used to deadlock via
// lock-order inversion — record held tr.mu and then took tracer.mu for
// the exporter. With an exporter installed, both lock edges are
// exercised; the test hangs (and times out) if the inversion returns.
func TestRestartWhileEndingNoDeadlock(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	tr := NewTracer(4)
	tr.SetExporter(&collectExporter{})
	trace := tr.Start("q")
	const iters = 100000
	done := make(chan struct{}, 2)
	go func() {
		for i := 0; i < iters; i++ {
			trace.StartSpan("window-exec").End()
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
		done <- struct{}{}
	}()
	go func() {
		for i := 0; i < iters; i++ {
			tr.Start("q")
			if i%64 == 0 {
				runtime.Gosched()
			}
		}
		done <- struct{}{}
	}()
	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatal("deadlock: span End racing Tracer.Start did not finish")
		}
	}
}

func TestConcurrentTracing(t *testing.T) {
	tr := NewTracer(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trace := tr.Start(fmt.Sprintf("q%d", w%4))
			for i := 0; i < 200; i++ {
				trace.StartSpan("window-exec").SetAttr("i", i).End()
				if i%50 == 0 {
					_ = tr.Snapshots()
				}
			}
		}(w)
	}
	wg.Wait()
}

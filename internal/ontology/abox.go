package ontology

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// ABox quality verification (challenge C1: OPTIQUE offers
// "semi-automatic quality verification" of deployment assets): checks an
// RDF data graph against the TBox and reports violations of disjointness
// axioms and of domain/range typing. OWL 2 QL has no unique-name or
// closed-world assumption, so only violations that are logical
// inconsistencies (disjointness) or missing-entailment warnings
// (domain/range types not derivable) are reported.

// Violation describes one problem found by CheckABox.
type Violation struct {
	// Kind is "disjointness" or "untyped-domain" / "untyped-range".
	Kind    string
	Subject rdf.Term
	Detail  string
}

func (v Violation) String() string {
	return v.Kind + ": " + v.Subject.String() + ": " + v.Detail
}

// CheckABox verifies a data graph against the TBox. Disjointness
// violations are inconsistencies; domain/range findings are warnings
// that an individual's required type is not derivable from the graph
// (common after hand-editing bootstrapped mappings).
func (t *TBox) CheckABox(g *rdf.Graph) []Violation {
	var out []Violation
	typeIRI := rdf.NewIRI(rdf.RDFType)

	// Materialise each individual's derivable named classes: asserted
	// types plus superclasses plus domain/range of asserted properties.
	closure := t.SubClassClosure()
	superOf := map[string][]string{}
	for sup, subs := range closure {
		for sub := range subs {
			superOf[sub] = append(superOf[sub], sup)
		}
	}
	// asserted: closure of explicitly asserted rdf:type triples, used for
	// the domain/range warnings. derived: asserted plus domain/range
	// derivation, used for disjointness (an inconsistency needs full
	// entailment).
	asserted := map[rdf.Term]map[string]bool{}
	types := map[rdf.Term]map[string]bool{}
	addInto := func(store map[rdf.Term]map[string]bool, ind rdf.Term, cls string) {
		m, ok := store[ind]
		if !ok {
			m = map[string]bool{}
			store[ind] = m
		}
		if m[cls] {
			return
		}
		m[cls] = true
		for _, sup := range superOf[cls] {
			m[sup] = true
		}
	}
	addType := func(ind rdf.Term, cls string) { addInto(types, ind, cls) }
	for _, tr := range g.Match(rdf.Wildcard, typeIRI, rdf.Wildcard) {
		if tr.O.IsIRI() {
			addInto(asserted, tr.S, tr.O.Value)
			addType(tr.S, tr.O.Value)
		}
	}
	// Domain/range axioms type the participants of properties.
	for _, ci := range t.conceptIncl {
		if ci.Sub.Kind != ExistsConcept || ci.Sup.Kind != NamedConcept {
			continue
		}
		p := rdf.NewIRI(ci.Sub.Role.IRI)
		for _, tr := range g.Match(rdf.Wildcard, p, rdf.Wildcard) {
			if ci.Sub.Role.Inverse {
				if tr.O.IsIRI() || tr.O.IsBlank() {
					addType(tr.O, ci.Sup.IRI)
				}
			} else {
				addType(tr.S, ci.Sup.IRI)
			}
		}
	}

	// Disjointness: an individual derivably in both halves is an
	// inconsistency.
	inds := make([]rdf.Term, 0, len(types))
	for ind := range types {
		inds = append(inds, ind)
	}
	sort.Slice(inds, func(i, j int) bool { return inds[i].Compare(inds[j]) < 0 })
	for _, ind := range inds {
		m := types[ind]
		for _, d := range t.disjoint {
			if d.A.Kind != NamedConcept || d.B.Kind != NamedConcept {
				continue
			}
			if m[d.A.IRI] && m[d.B.IRI] {
				out = append(out, Violation{
					Kind:    "disjointness",
					Subject: ind,
					Detail:  fmt.Sprintf("member of disjoint classes %s and %s", d.A.IRI, d.B.IRI),
				})
			}
		}
	}

	// Domain/range warnings: a property assertion whose participant does
	// not carry the required type among its asserted types — derivable
	// only through the axiom itself, which usually means a mapping gap.
	for _, ci := range t.conceptIncl {
		if ci.Sub.Kind != ExistsConcept || ci.Sup.Kind != NamedConcept {
			continue
		}
		p := rdf.NewIRI(ci.Sub.Role.IRI)
		for _, tr := range g.Match(rdf.Wildcard, p, rdf.Wildcard) {
			ind := tr.S
			kind := "untyped-domain"
			if ci.Sub.Role.Inverse {
				ind = tr.O
				kind = "untyped-range"
				if ind.IsLiteral() {
					continue
				}
			}
			if !asserted[ind][ci.Sup.IRI] {
				out = append(out, Violation{
					Kind:    kind,
					Subject: ind,
					Detail:  fmt.Sprintf("uses %s but is not derivably a %s", ci.Sub.Role.IRI, ci.Sup.IRI),
				})
			}
		}
	}
	return out
}

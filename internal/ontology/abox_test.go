package ontology

import (
	"strings"
	"testing"

	"repro/internal/rdf"
)

func aboxFixtureTBox() *TBox {
	tb := New()
	tb.AddConceptInclusion(Named("GasTurbine"), Named("Turbine"))
	tb.AddConceptInclusion(Named("SteamTurbine"), Named("Turbine"))
	tb.AddDisjoint(Named("GasTurbine"), Named("SteamTurbine"))
	tb.AddDomain("hasBurner", Named("GasTurbine"))
	tb.AddRange("hasBurner", Named("Burner"))
	return tb
}

func TestCheckABoxClean(t *testing.T) {
	tb := aboxFixtureTBox()
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("t1"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("GasTurbine")))
	g.Add(rdf.NewTriple(rdf.NewIRI("b1"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("Burner")))
	g.Add(rdf.NewTriple(rdf.NewIRI("t1"), rdf.NewIRI("hasBurner"), rdf.NewIRI("b1")))
	if vs := tb.CheckABox(g); len(vs) != 0 {
		t.Fatalf("clean ABox reported: %v", vs)
	}
}

func TestCheckABoxDisjointnessViolation(t *testing.T) {
	tb := aboxFixtureTBox()
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("t1"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("GasTurbine")))
	g.Add(rdf.NewTriple(rdf.NewIRI("t1"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("SteamTurbine")))
	vs := tb.CheckABox(g)
	found := false
	for _, v := range vs {
		if v.Kind == "disjointness" && v.Subject.Value == "t1" {
			found = true
			if !strings.Contains(v.String(), "disjoint") {
				t.Errorf("String = %q", v.String())
			}
		}
	}
	if !found {
		t.Fatalf("disjointness not reported: %v", vs)
	}
}

func TestCheckABoxDerivedDisjointness(t *testing.T) {
	// Type derived through a domain axiom clashes with an asserted type.
	tb := aboxFixtureTBox()
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("t1"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("SteamTurbine")))
	g.Add(rdf.NewTriple(rdf.NewIRI("t1"), rdf.NewIRI("hasBurner"), rdf.NewIRI("b1"))) // implies GasTurbine
	vs := tb.CheckABox(g)
	found := false
	for _, v := range vs {
		if v.Kind == "disjointness" {
			found = true
		}
	}
	if !found {
		t.Fatalf("derived disjointness not reported: %v", vs)
	}
}

func TestCheckABoxUntypedWarnings(t *testing.T) {
	tb := aboxFixtureTBox()
	g := rdf.NewGraph()
	// hasBurner used by an individual with no asserted GasTurbine type,
	// pointing at an object with no asserted Burner type.
	g.Add(rdf.NewTriple(rdf.NewIRI("x"), rdf.NewIRI("hasBurner"), rdf.NewIRI("y")))
	vs := tb.CheckABox(g)
	kinds := map[string]int{}
	for _, v := range vs {
		kinds[v.Kind]++
	}
	if kinds["untyped-domain"] != 1 || kinds["untyped-range"] != 1 {
		t.Fatalf("warnings = %v", vs)
	}
	// Literal objects never warn on range.
	g2 := rdf.NewGraph()
	tb2 := New()
	tb2.DeclareDataProperty("hasVal")
	tb2.AddDomain("hasVal", Named("Sensor"))
	g2.Add(rdf.NewTriple(rdf.NewIRI("s"), rdf.NewIRI("hasVal"), rdf.NewLiteral("5")))
	vs2 := tb2.CheckABox(g2)
	for _, v := range vs2 {
		if v.Kind == "untyped-range" {
			t.Errorf("literal object warned: %v", v)
		}
	}
}

func TestCheckABoxSubclassSatisfiesDomain(t *testing.T) {
	// An asserted subclass type satisfies the superclass requirement.
	tb := New()
	tb.AddConceptInclusion(Named("GasTurbine"), Named("Turbine"))
	tb.AddDomain("spins", Named("Turbine"))
	g := rdf.NewGraph()
	g.Add(rdf.NewTriple(rdf.NewIRI("t"), rdf.NewIRI(rdf.RDFType), rdf.NewIRI("GasTurbine")))
	g.Add(rdf.NewTriple(rdf.NewIRI("t"), rdf.NewIRI("spins"), rdf.NewIRI("r")))
	for _, v := range tb.CheckABox(g) {
		if v.Kind == "untyped-domain" {
			t.Fatalf("subclass type not accepted: %v", v)
		}
	}
}

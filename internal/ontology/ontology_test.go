package ontology

import (
	"strings"
	"testing"
)

func TestRoleInverse(t *testing.T) {
	r := NewRole("p")
	if r.Inverse {
		t.Fatal("direct role marked inverse")
	}
	if !r.Inv().Inverse {
		t.Fatal("Inv() not inverse")
	}
	if r.Inv().Inv() != r {
		t.Fatal("double inverse not identity")
	}
	if r.Inv().String() != "p⁻" {
		t.Fatalf("String = %q", r.Inv().String())
	}
}

func TestConceptString(t *testing.T) {
	if Named("A").String() != "A" {
		t.Error("named concept string")
	}
	if Exists(NewRole("p")).String() != "∃p" {
		t.Error("exists concept string")
	}
	if Exists(NewRole("p").Inv()).String() != "∃p⁻" {
		t.Error("exists inverse concept string")
	}
}

func TestTBoxDeclarations(t *testing.T) {
	tb := New()
	tb.DeclareClass("A")
	tb.DeclareObjectProperty("p")
	tb.DeclareDataProperty("d")
	if !tb.IsClass("A") || tb.IsClass("B") {
		t.Error("IsClass")
	}
	if !tb.IsObjectProperty("p") || tb.IsObjectProperty("d") {
		t.Error("IsObjectProperty")
	}
	if !tb.IsDataProperty("d") {
		t.Error("IsDataProperty")
	}
	if got := tb.Classes(); len(got) != 1 || got[0] != "A" {
		t.Errorf("Classes = %v", got)
	}
}

func TestSubClassClosure(t *testing.T) {
	tb := New()
	tb.AddConceptInclusion(Named("GasTurbine"), Named("Turbine"))
	tb.AddConceptInclusion(Named("SteamTurbine"), Named("Turbine"))
	tb.AddConceptInclusion(Named("Turbine"), Named("Appliance"))

	if !tb.IsSubClassOf("GasTurbine", "Appliance") {
		t.Error("transitive subclass not derived")
	}
	if !tb.IsSubClassOf("Turbine", "Turbine") {
		t.Error("closure not reflexive")
	}
	if tb.IsSubClassOf("Appliance", "GasTurbine") {
		t.Error("closure inverted")
	}
	cl := tb.SubClassClosure()
	if len(cl["Appliance"]) != 4 { // itself + 3 subclasses
		t.Errorf("Appliance subclasses = %v", cl["Appliance"])
	}
}

func TestSubClassClosureCycle(t *testing.T) {
	tb := New()
	tb.AddConceptInclusion(Named("A"), Named("B"))
	tb.AddConceptInclusion(Named("B"), Named("A"))
	// Equivalent classes: each is a subclass of the other; must terminate.
	if !tb.IsSubClassOf("A", "B") || !tb.IsSubClassOf("B", "A") {
		t.Error("cycle not closed")
	}
}

func TestSubPropertyClosure(t *testing.T) {
	tb := New()
	tb.AddRoleInclusion(NewRole("feeds"), NewRole("connectedTo"))
	tb.AddRoleInclusion(NewRole("connectedTo"), NewRole("relatedTo"))
	cl := tb.SubPropertyClosure()
	if !cl["relatedTo"]["feeds"] {
		t.Error("transitive subproperty not derived")
	}
}

func TestDirectSubRolesIncludeInverseSymmetry(t *testing.T) {
	tb := New()
	tb.AddRoleInclusion(NewRole("s"), NewRole("r"))
	got := tb.DirectSubRolesOf(NewRole("r").Inv())
	found := false
	for _, r := range got {
		if r == NewRole("s").Inv() {
			found = true
		}
	}
	if !found {
		t.Errorf("s⁻ ⊑ r⁻ not derived; got %v", got)
	}
}

func TestAddInverse(t *testing.T) {
	tb := New()
	tb.AddInverse("hasPart", "partOf")
	// hasPart ⊑ partOf⁻ and partOf⁻ ⊑ hasPart.
	subs := tb.DirectSubRolesOf(NewRole("partOf").Inv())
	if len(subs) == 0 {
		t.Fatal("no subroles of partOf⁻")
	}
	if subs[0] != NewRole("hasPart") {
		t.Errorf("subrole = %v", subs[0])
	}
}

func TestDomainRangeAxioms(t *testing.T) {
	tb := New()
	tb.AddDomain("inAssembly", Named("Sensor"))
	tb.AddRange("inAssembly", Named("Assembly"))
	subs := tb.DirectSubConceptsOf(Named("Sensor"))
	if len(subs) != 1 || subs[0] != Exists(NewRole("inAssembly")) {
		t.Errorf("domain axiom = %v", subs)
	}
	subs = tb.DirectSubConceptsOf(Named("Assembly"))
	if len(subs) != 1 || subs[0] != Exists(NewRole("inAssembly").Inv()) {
		t.Errorf("range axiom = %v", subs)
	}
}

func TestValidateRejectsMixedProperty(t *testing.T) {
	tb := New()
	tb.DeclareObjectProperty("p")
	tb.DeclareDataProperty("p")
	if err := tb.Validate(); err == nil {
		t.Error("object+data property accepted")
	}
}

const sampleOntology = `
# Siemens-flavoured test ontology
Prefix(sie: <http://siemens.com/ontology#>)
Class(sie:Turbine)
Class(sie:GasTurbine)
ObjectProperty(sie:inAssembly)
DataProperty(sie:hasValue)
SubClassOf(sie:GasTurbine sie:Turbine)
SubClassOf(sie:Turbine Exists(sie:hasPart))
SubClassOf(ExistsInv(sie:inAssembly) sie:Assembly)
SubPropertyOf(sie:feeds sie:connectedTo)
InverseOf(sie:hasPart sie:partOf)
ObjectPropertyDomain(sie:inAssembly sie:Sensor)
ObjectPropertyRange(sie:inAssembly sie:Assembly)
DataPropertyDomain(sie:hasValue sie:Sensor)
DisjointClasses(sie:GasTurbine sie:SteamTurbine)
Label(sie:Turbine "power generating turbine")
`

func TestParseOntology(t *testing.T) {
	tb, pm, err := Parse(sampleOntology)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ns := "http://siemens.com/ontology#"
	if pm["sie"] != ns {
		t.Errorf("prefix = %q", pm["sie"])
	}
	if !tb.IsClass(ns + "Turbine") {
		t.Error("Turbine not declared")
	}
	if !tb.IsSubClassOf(ns+"GasTurbine", ns+"Turbine") {
		t.Error("subclass not parsed")
	}
	if !tb.IsDataProperty(ns + "hasValue") {
		t.Error("data property not parsed")
	}
	// Domain axiom: ∃inAssembly ⊑ Sensor.
	subs := tb.DirectSubConceptsOf(Named(ns + "Sensor"))
	foundDomain := false
	for _, s := range subs {
		if s == Exists(NewRole(ns+"inAssembly")) {
			foundDomain = true
		}
	}
	if !foundDomain {
		t.Errorf("domain axiom missing; subs of Sensor = %v", subs)
	}
	// Existential superclass: Turbine ⊑ ∃hasPart.
	subs = tb.DirectSubConceptsOf(Exists(NewRole(ns + "hasPart")))
	if len(subs) != 1 || subs[0] != Named(ns+"Turbine") {
		t.Errorf("existential superclass = %v", subs)
	}
	if len(tb.Disjointnesses()) != 1 {
		t.Error("disjointness missing")
	}
	if tb.Label(ns+"Turbine") != "power generating turbine" {
		t.Errorf("label = %q", tb.Label(ns+"Turbine"))
	}
	if tb.Label(ns+"GasTurbine") != "GasTurbine" {
		t.Errorf("default label = %q", tb.Label(ns+"GasTurbine"))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`SubClassOf(a:B c:D)`,            // unknown prefix
		`SubClassOf(owl:Thing)`,          // arity
		`Frobnicate(owl:Thing)`,          // unknown head
		`SubClassOf owl:Thing owl:Thing`, // no parens
		`SubClassOf(Exists(owl:p owl:q)`, // unbalanced
		`Class(owl:A) Class(owl:B)`,      // trailing garbage -> arity error
	}
	for _, src := range bad {
		if _, _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted invalid input", src)
		}
	}
}

func TestParseIgnoresCommentsAndBlank(t *testing.T) {
	tb, _, err := Parse("\n# comment\n\nClass(owl:A)\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Classes()) != 1 {
		t.Errorf("Classes = %v", tb.Classes())
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("Bogus(x)")
}

func TestTBoxStringSummary(t *testing.T) {
	tb := MustParse(sampleOntology)
	s := tb.String()
	if !strings.Contains(s, "axioms") {
		t.Errorf("String = %q", s)
	}
}

// Package ontology implements the OWL 2 QL (DL-Lite_R) ontology model used
// by Optique: named classes, object and data properties, basic concepts
// (named classes and unqualified existential restrictions ∃R / ∃R⁻),
// concept and role inclusion axioms, disjointness, and a classification
// procedure that materialises the subsumption hierarchy.
//
// OWL 2 QL is the profile for which conjunctive-query rewriting is
// polynomial in the size of the TBox, which the paper relies on for the
// enrichment stage (challenge C2).
package ontology

import (
	"fmt"
	"sort"
	"strings"
)

// Role is a possibly-inverted object or data property.
type Role struct {
	IRI     string
	Inverse bool
}

// NewRole returns the direct role for a property IRI.
func NewRole(iri string) Role { return Role{IRI: iri} }

// Inv returns the inverse of r.
func (r Role) Inv() Role { return Role{IRI: r.IRI, Inverse: !r.Inverse} }

// String renders the role in DL syntax.
func (r Role) String() string {
	if r.Inverse {
		return r.IRI + "⁻"
	}
	return r.IRI
}

// ConceptKind discriminates basic concept forms.
type ConceptKind uint8

const (
	// NamedConcept is an atomic class A.
	NamedConcept ConceptKind = iota
	// ExistsConcept is an unqualified existential ∃R (or ∃R⁻).
	ExistsConcept
)

// Concept is a DL-Lite basic concept: a named class or ∃R.
type Concept struct {
	Kind ConceptKind
	IRI  string // class IRI for NamedConcept
	Role Role   // role for ExistsConcept
}

// Named returns the basic concept for a class IRI.
func Named(iri string) Concept { return Concept{Kind: NamedConcept, IRI: iri} }

// Exists returns the concept ∃r.
func Exists(r Role) Concept { return Concept{Kind: ExistsConcept, Role: r} }

// String renders the concept in DL syntax.
func (c Concept) String() string {
	if c.Kind == NamedConcept {
		return c.IRI
	}
	return "∃" + c.Role.String()
}

// ConceptInclusion is the axiom Sub ⊑ Sup.
type ConceptInclusion struct {
	Sub, Sup Concept
}

// RoleInclusion is the axiom Sub ⊑ Sup over roles.
type RoleInclusion struct {
	Sub, Sup Role
}

// Disjointness is the axiom A ⊓ B ⊑ ⊥ over basic concepts.
type Disjointness struct {
	A, B Concept
}

// TBox is an OWL 2 QL terminology. The zero value is not usable; call New.
type TBox struct {
	classes   map[string]struct{}
	objProps  map[string]struct{}
	dataProps map[string]struct{}

	conceptIncl []ConceptInclusion
	roleIncl    []RoleInclusion
	disjoint    []Disjointness

	// inclIntoConcept indexes concept inclusions by superconcept for the
	// rewriting engine's "applicable axiom" lookups.
	inclIntoConcept map[Concept][]Concept
	// inclIntoRole indexes role inclusions by superrole.
	inclIntoRole map[Role][]Role

	labels map[string]string
}

// New returns an empty TBox.
func New() *TBox {
	return &TBox{
		classes:         make(map[string]struct{}),
		objProps:        make(map[string]struct{}),
		dataProps:       make(map[string]struct{}),
		inclIntoConcept: make(map[Concept][]Concept),
		inclIntoRole:    make(map[Role][]Role),
		labels:          make(map[string]string),
	}
}

// DeclareClass registers a named class.
func (t *TBox) DeclareClass(iri string) { t.classes[iri] = struct{}{} }

// DeclareObjectProperty registers an object property.
func (t *TBox) DeclareObjectProperty(iri string) { t.objProps[iri] = struct{}{} }

// DeclareDataProperty registers a data property.
func (t *TBox) DeclareDataProperty(iri string) { t.dataProps[iri] = struct{}{} }

// SetLabel attaches a human-readable label to a term (used by the query
// formulation UI and by BootOX's visual bootstrapper).
func (t *TBox) SetLabel(iri, label string) { t.labels[iri] = label }

// Label returns the label for a term, or its local name when unset.
func (t *TBox) Label(iri string) string {
	if l, ok := t.labels[iri]; ok {
		return l
	}
	if i := strings.LastIndexAny(iri, "#/"); i >= 0 && i+1 < len(iri) {
		return iri[i+1:]
	}
	return iri
}

// IsClass reports whether iri is a declared class.
func (t *TBox) IsClass(iri string) bool { _, ok := t.classes[iri]; return ok }

// IsObjectProperty reports whether iri is a declared object property.
func (t *TBox) IsObjectProperty(iri string) bool { _, ok := t.objProps[iri]; return ok }

// IsDataProperty reports whether iri is a declared data property.
func (t *TBox) IsDataProperty(iri string) bool { _, ok := t.dataProps[iri]; return ok }

// Classes returns all declared class IRIs, sorted.
func (t *TBox) Classes() []string { return sortedSet(t.classes) }

// ObjectProperties returns all declared object property IRIs, sorted.
func (t *TBox) ObjectProperties() []string { return sortedSet(t.objProps) }

// DataProperties returns all declared data property IRIs, sorted.
func (t *TBox) DataProperties() []string { return sortedSet(t.dataProps) }

func sortedSet(m map[string]struct{}) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AddConceptInclusion asserts Sub ⊑ Sup, declaring mentioned terms.
func (t *TBox) AddConceptInclusion(sub, sup Concept) {
	t.declareConceptTerms(sub)
	t.declareConceptTerms(sup)
	t.conceptIncl = append(t.conceptIncl, ConceptInclusion{sub, sup})
	t.inclIntoConcept[sup] = append(t.inclIntoConcept[sup], sub)
}

func (t *TBox) declareConceptTerms(c Concept) {
	switch c.Kind {
	case NamedConcept:
		t.DeclareClass(c.IRI)
	case ExistsConcept:
		if !t.IsDataProperty(c.Role.IRI) {
			t.DeclareObjectProperty(c.Role.IRI)
		}
	}
}

// AddRoleInclusion asserts Sub ⊑ Sup. The symmetric inverse inclusion
// Sub⁻ ⊑ Sup⁻ is implied and indexed automatically.
func (t *TBox) AddRoleInclusion(sub, sup Role) {
	if !t.IsDataProperty(sub.IRI) {
		t.DeclareObjectProperty(sub.IRI)
	}
	if !t.IsDataProperty(sup.IRI) {
		t.DeclareObjectProperty(sup.IRI)
	}
	t.roleIncl = append(t.roleIncl, RoleInclusion{sub, sup})
	t.inclIntoRole[sup] = append(t.inclIntoRole[sup], sub)
	t.inclIntoRole[sup.Inv()] = append(t.inclIntoRole[sup.Inv()], sub.Inv())
}

// AddInverse asserts that p and q are inverse properties (p ≡ q⁻).
func (t *TBox) AddInverse(p, q string) {
	t.AddRoleInclusion(NewRole(p), NewRole(q).Inv())
	t.AddRoleInclusion(NewRole(q).Inv(), NewRole(p))
}

// AddDomain asserts ∃p ⊑ c, i.e. the domain of p is c.
func (t *TBox) AddDomain(p string, c Concept) {
	t.AddConceptInclusion(Exists(NewRole(p)), c)
}

// AddRange asserts ∃p⁻ ⊑ c, i.e. the range of p is c.
func (t *TBox) AddRange(p string, c Concept) {
	t.AddConceptInclusion(Exists(NewRole(p).Inv()), c)
}

// AddDisjoint asserts that a and b cannot share instances.
func (t *TBox) AddDisjoint(a, b Concept) {
	t.declareConceptTerms(a)
	t.declareConceptTerms(b)
	t.disjoint = append(t.disjoint, Disjointness{a, b})
}

// ConceptInclusions returns all asserted concept inclusions.
func (t *TBox) ConceptInclusions() []ConceptInclusion { return t.conceptIncl }

// RoleInclusions returns all asserted role inclusions.
func (t *TBox) RoleInclusions() []RoleInclusion { return t.roleIncl }

// Disjointnesses returns all asserted disjointness axioms.
func (t *TBox) Disjointnesses() []Disjointness { return t.disjoint }

// DirectSubConceptsOf returns the concepts I with an asserted axiom I ⊑ c.
// The rewriting engine applies these one step at a time.
func (t *TBox) DirectSubConceptsOf(c Concept) []Concept { return t.inclIntoConcept[c] }

// DirectSubRolesOf returns the roles S with S ⊑ r asserted or implied by
// inverse symmetry.
func (t *TBox) DirectSubRolesOf(r Role) []Role { return t.inclIntoRole[r] }

// Len returns the number of axioms in the TBox.
func (t *TBox) Len() int {
	return len(t.conceptIncl) + len(t.roleIncl) + len(t.disjoint)
}

// String summarises the TBox.
func (t *TBox) String() string {
	return fmt.Sprintf("TBox{classes: %d, objProps: %d, dataProps: %d, axioms: %d}",
		len(t.classes), len(t.objProps), len(t.dataProps), t.Len())
}

// SubClassClosure computes, for every named class, the set of its named
// subclasses (reflexive-transitive closure restricted to named concepts).
// This is the classification used by the UI and BootOX; the rewriter works
// on direct axioms instead.
func (t *TBox) SubClassClosure() map[string]map[string]bool {
	closure := make(map[string]map[string]bool, len(t.classes))
	for c := range t.classes {
		closure[c] = map[string]bool{c: true}
	}
	// Saturate named-to-named edges via fixpoint iteration. The number of
	// iterations is bounded by the hierarchy depth.
	for changed := true; changed; {
		changed = false
		for _, incl := range t.conceptIncl {
			if incl.Sub.Kind != NamedConcept || incl.Sup.Kind != NamedConcept {
				continue
			}
			subs := closure[incl.Sub.IRI]
			dst := closure[incl.Sup.IRI]
			if dst == nil {
				dst = map[string]bool{incl.Sup.IRI: true}
				closure[incl.Sup.IRI] = dst
			}
			for s := range subs {
				if !dst[s] {
					dst[s] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// SubPropertyClosure computes, for every property, the set of its
// subproperties (reflexive-transitive, direct polarity only).
func (t *TBox) SubPropertyClosure() map[string]map[string]bool {
	props := make(map[string]struct{}, len(t.objProps)+len(t.dataProps))
	for p := range t.objProps {
		props[p] = struct{}{}
	}
	for p := range t.dataProps {
		props[p] = struct{}{}
	}
	closure := make(map[string]map[string]bool, len(props))
	for p := range props {
		closure[p] = map[string]bool{p: true}
	}
	for changed := true; changed; {
		changed = false
		for _, incl := range t.roleIncl {
			if incl.Sub.Inverse || incl.Sup.Inverse {
				continue
			}
			subs := closure[incl.Sub.IRI]
			dst := closure[incl.Sup.IRI]
			for s := range subs {
				if !dst[s] {
					dst[s] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// IsSubClassOf reports whether sub ⊑ sup is entailed between named classes.
func (t *TBox) IsSubClassOf(sub, sup string) bool {
	return t.SubClassClosure()[sup][sub]
}

// Validate checks profile conformance and reports the first violation:
// every axiom must mention declared terms consistently (a property cannot
// be both a data and an object property).
func (t *TBox) Validate() error {
	for p := range t.dataProps {
		if _, ok := t.objProps[p]; ok {
			return fmt.Errorf("ontology: %s declared as both object and data property", p)
		}
	}
	for _, ri := range t.roleIncl {
		if t.IsDataProperty(ri.Sub.IRI) != t.IsDataProperty(ri.Sup.IRI) {
			return fmt.Errorf("ontology: role inclusion %v ⊑ %v mixes object and data properties", ri.Sub, ri.Sup)
		}
		if t.IsDataProperty(ri.Sub.IRI) && (ri.Sub.Inverse || ri.Sup.Inverse) {
			return fmt.Errorf("ontology: data property inclusion %v ⊑ %v uses an inverse", ri.Sub, ri.Sup)
		}
	}
	return nil
}

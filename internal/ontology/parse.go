package ontology

import (
	"fmt"
	"strings"

	"repro/internal/rdf"
)

// Parse reads a TBox from a functional-style text syntax, a practical
// subset of OWL 2 functional syntax extended with Exists/ExistsInv for
// DL-Lite existential concepts:
//
//	Prefix(sie: <http://siemens.com/ontology#>)
//	Class(sie:Turbine)
//	ObjectProperty(sie:inAssembly)
//	DataProperty(sie:hasValue)
//	SubClassOf(sie:GasTurbine sie:Turbine)
//	SubClassOf(sie:Turbine Exists(sie:hasPart))
//	SubClassOf(Exists(sie:inAssembly) sie:Sensor)
//	SubClassOf(ExistsInv(sie:inAssembly) sie:Assembly)
//	SubPropertyOf(sie:feeds sie:connectedTo)
//	InverseOf(sie:hasPart sie:partOf)
//	ObjectPropertyDomain(sie:inAssembly sie:Sensor)
//	ObjectPropertyRange(sie:inAssembly sie:Assembly)
//	DataPropertyDomain(sie:hasValue sie:Sensor)
//	DisjointClasses(sie:GasTurbine sie:SteamTurbine)
//	Label(sie:Turbine "power generating turbine")
//
// Lines starting with '#' and blank lines are ignored.
func Parse(src string) (*TBox, rdf.PrefixMap, error) {
	t := New()
	prefixes := rdf.StandardPrefixes()
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseLine(t, prefixes, line); err != nil {
			return nil, nil, fmt.Errorf("ontology: line %d: %w", lineNo+1, err)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	return t, prefixes, nil
}

// MustParse is Parse that panics on error; for static ontologies.
func MustParse(src string) *TBox {
	t, _, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return t
}

func parseLine(t *TBox, prefixes rdf.PrefixMap, line string) error {
	open := strings.Index(line, "(")
	if open < 0 || !strings.HasSuffix(line, ")") {
		return fmt.Errorf("malformed statement %q", line)
	}
	head := line[:open]
	body := line[open+1 : len(line)-1]

	if head == "Prefix" {
		i := strings.Index(body, ":")
		if i < 0 {
			return fmt.Errorf("malformed Prefix %q", body)
		}
		name := strings.TrimSpace(body[:i])
		iri := strings.TrimSpace(body[i+1:])
		iri = strings.TrimPrefix(iri, "<")
		iri = strings.TrimSuffix(iri, ">")
		prefixes[name] = iri
		return nil
	}
	if head == "Label" {
		parts := strings.SplitN(body, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("malformed Label %q", body)
		}
		iri, err := prefixes.Expand(strings.TrimSpace(parts[0]))
		if err != nil {
			return err
		}
		label := strings.Trim(strings.TrimSpace(parts[1]), `"`)
		t.SetLabel(iri, label)
		return nil
	}

	args, err := splitArgs(body)
	if err != nil {
		return err
	}
	expand := func(s string) (string, error) { return prefixes.Expand(s) }

	switch head {
	case "Class":
		return withOne(args, func(a string) error {
			iri, err := expand(a)
			if err != nil {
				return err
			}
			t.DeclareClass(iri)
			return nil
		})
	case "ObjectProperty":
		return withOne(args, func(a string) error {
			iri, err := expand(a)
			if err != nil {
				return err
			}
			t.DeclareObjectProperty(iri)
			return nil
		})
	case "DataProperty":
		return withOne(args, func(a string) error {
			iri, err := expand(a)
			if err != nil {
				return err
			}
			t.DeclareDataProperty(iri)
			return nil
		})
	case "SubClassOf":
		return withTwo(args, func(a, b string) error {
			sub, err := parseConcept(a, prefixes)
			if err != nil {
				return err
			}
			sup, err := parseConcept(b, prefixes)
			if err != nil {
				return err
			}
			t.AddConceptInclusion(sub, sup)
			return nil
		})
	case "SubPropertyOf":
		return withTwo(args, func(a, b string) error {
			sub, err := parseRole(a, prefixes)
			if err != nil {
				return err
			}
			sup, err := parseRole(b, prefixes)
			if err != nil {
				return err
			}
			t.AddRoleInclusion(sub, sup)
			return nil
		})
	case "InverseOf":
		return withTwo(args, func(a, b string) error {
			p, err := expand(a)
			if err != nil {
				return err
			}
			q, err := expand(b)
			if err != nil {
				return err
			}
			t.AddInverse(p, q)
			return nil
		})
	case "ObjectPropertyDomain", "DataPropertyDomain":
		return withTwo(args, func(a, b string) error {
			p, err := expand(a)
			if err != nil {
				return err
			}
			if head == "DataPropertyDomain" {
				t.DeclareDataProperty(p)
			} else {
				t.DeclareObjectProperty(p)
			}
			c, err := parseConcept(b, prefixes)
			if err != nil {
				return err
			}
			t.AddDomain(p, c)
			return nil
		})
	case "ObjectPropertyRange":
		return withTwo(args, func(a, b string) error {
			p, err := expand(a)
			if err != nil {
				return err
			}
			t.DeclareObjectProperty(p)
			c, err := parseConcept(b, prefixes)
			if err != nil {
				return err
			}
			t.AddRange(p, c)
			return nil
		})
	case "DisjointClasses":
		return withTwo(args, func(a, b string) error {
			ca, err := parseConcept(a, prefixes)
			if err != nil {
				return err
			}
			cb, err := parseConcept(b, prefixes)
			if err != nil {
				return err
			}
			t.AddDisjoint(ca, cb)
			return nil
		})
	default:
		return fmt.Errorf("unknown statement %q", head)
	}
}

func withOne(args []string, f func(string) error) error {
	if len(args) != 1 {
		return fmt.Errorf("expected 1 argument, got %d", len(args))
	}
	return f(args[0])
}

func withTwo(args []string, f func(a, b string) error) error {
	if len(args) != 2 {
		return fmt.Errorf("expected 2 arguments, got %d", len(args))
	}
	return f(args[0], args[1])
}

// splitArgs splits on spaces at parenthesis depth zero, so nested
// Exists(...) terms stay intact.
func splitArgs(body string) ([]string, error) {
	var out []string
	depth, start := 0, 0
	for i := 0; i <= len(body); i++ {
		if i == len(body) {
			if tok := strings.TrimSpace(body[start:]); tok != "" {
				out = append(out, tok)
			}
			break
		}
		switch body[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth < 0 {
				return nil, fmt.Errorf("unbalanced parentheses in %q", body)
			}
		case ' ':
			if depth == 0 {
				if tok := strings.TrimSpace(body[start:i]); tok != "" {
					out = append(out, tok)
				}
				start = i + 1
			}
		}
	}
	if depth != 0 {
		return nil, fmt.Errorf("unbalanced parentheses in %q", body)
	}
	return out, nil
}

func parseConcept(s string, prefixes rdf.PrefixMap) (Concept, error) {
	s = strings.TrimSpace(s)
	for _, form := range []struct {
		prefix string
		inv    bool
	}{{"ExistsInv(", true}, {"Exists(", false}} {
		if strings.HasPrefix(s, form.prefix) && strings.HasSuffix(s, ")") {
			inner := s[len(form.prefix) : len(s)-1]
			r, err := parseRole(inner, prefixes)
			if err != nil {
				return Concept{}, err
			}
			if form.inv {
				r = r.Inv()
			}
			return Exists(r), nil
		}
	}
	iri, err := prefixes.Expand(s)
	if err != nil {
		return Concept{}, err
	}
	return Named(iri), nil
}

func parseRole(s string, prefixes rdf.PrefixMap) (Role, error) {
	s = strings.TrimSpace(s)
	inv := false
	if strings.HasPrefix(s, "Inv(") && strings.HasSuffix(s, ")") {
		inv = true
		s = s[len("Inv(") : len(s)-1]
	}
	iri, err := prefixes.Expand(s)
	if err != nil {
		return Role{}, err
	}
	r := NewRole(iri)
	if inv {
		r = r.Inv()
	}
	return r, nil
}

// Package cluster implements the distributed runtime of ExaStream as
// described in the paper's Figure 2: queries are registered through an
// asynchronous gateway, parsed, and handed to a scheduler that places
// stream and relational operators on worker nodes based on load; each
// worker runs its own stream-engine instance.
//
// The paper's deployment ran 1–128 VMs; here each node is an in-process
// worker (goroutine + its own ExaStream engine) connected by bounded
// queues. The scheduling and partitioning logic — what produces the
// paper's scaling behaviour — is the real thing; only the transport is
// simulated. The runtime is failure-aware: workers are supervised
// (panic recovery, capped restarts, query failover — see supervisor.go),
// ingest queues carry explicit backpressure policies (backpressure.go),
// and asynchronous errors land in bounded per-node rings (errors.go).
package cluster

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/exastream"
	"repro/internal/recovery"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// Placement selects the worker for a new query.
type Placement int

const (
	// PlaceLeastLoaded picks the node with the fewest assigned queries,
	// breaking ties by recent tuple load (the paper's load-based
	// scheduler).
	PlaceLeastLoaded Placement = iota
	// PlaceRoundRobin cycles through nodes; the scheduling ablation
	// compares it against load-based placement.
	PlaceRoundRobin
)

// Options configures a cluster.
type Options struct {
	Nodes     int
	Placement Placement
	// Engine options applied to every node's ExaStream instance.
	Engine exastream.Options
	// QueueSize is each node's input queue capacity (default 1024).
	QueueSize int
	// PartitionColumn, when set, routes stream tuples to a single node by
	// hash of this column instead of broadcasting to all hosting nodes.
	// Queries must then be partition-compatible (they filter or group by
	// the same column), which holds for the per-sensor diagnostic tasks.
	PartitionColumn string

	// Backpressure selects the full-queue policy for Ingest (default
	// BackpressureBlock; use IngestContext to bound the wait).
	Backpressure Backpressure
	// MaxRestarts caps how often the supervisor restarts a crashed
	// worker before declaring it dead and failing its queries over.
	// 0 means the default (3); negative disables restarts entirely.
	MaxRestarts int
	// RestartBackoff is the initial delay before a worker restart; it
	// doubles per consecutive restart, capped at 500ms. Default 5ms.
	RestartBackoff time.Duration
	// QuarantineAfter suspends a query after this many consecutive
	// failed window executions (poison-query isolation). 0 disables.
	QuarantineAfter int
	// Faults, when set, injects failures into worker loops (chaos
	// testing; see internal/faults).
	Faults FaultInjector
	// GatewayQueue is the gateway submission queue capacity (default
	// 256). Submit returns ErrGatewayBusy when it is full.
	GatewayQueue int
	// Telemetry is the cluster-level metrics registry (restarts,
	// failovers, drops, per-node health gauges). Nil means a private
	// registry; read it merged with the per-node engine registries via
	// TelemetrySnapshot.
	Telemetry *telemetry.Registry

	// CheckpointEvery enables the recovery subsystem: each node cuts a
	// pulse-aligned checkpoint of its per-query stream state after
	// roughly this many processed tuples (the cut waits for a window-end
	// boundary, forced once 4x overdue or the replay log nears
	// capacity), retains a bounded replay log, and failover restores the
	// victim's latest checkpoint onto the remap target with exactly-once
	// window delivery through the emit gate. 0 disables recovery (the
	// original salvage-only failover).
	CheckpointEvery int
	// ReplayLogCap bounds each node's retained-tuple replay log in
	// entries (default recovery.DefaultLogCap). When capacity pressure
	// sheds a tuple not yet covered by a checkpoint, exactly-once
	// degrades to salvage-only for the gap and recovery.lost_coverage
	// counts it.
	ReplayLogCap int

	// MemBudget is the default per-query window-state byte budget used
	// when RegisterWith gets no explicit budget (the core layer passes
	// starql.AnalyzeMemory's derivation instead). 0 disables budget
	// enforcement.
	MemBudget int64
	// NodeMemBudget caps the sum of admitted query budgets per node;
	// Register returns ErrOverBudget (retryable) when no live node has
	// headroom. 0 disables placement budgeting.
	NodeMemBudget int64
	// TenantQuota enables per-tenant admission control (see TenantOf for
	// the namespace convention). The zero value disables it.
	TenantQuota TenantQuota

	// Transport selects how the routing layer reaches workers:
	// TransportChannel (default) delivers in-process on the caller's
	// goroutine; TransportTCP runs the same traffic over framed,
	// checksummed loopback TCP sessions with heartbeat failure detection
	// and suspicion-triggered failover (see docs/transport.md).
	Transport TransportKind
	// Listen is the TCP transport's listen address (default
	// "127.0.0.1:0"); ignored by the channel transport.
	Listen string
	// TransportTuning overrides the TCP transport's reliability clocks
	// (heartbeats, suspicion, retransmission, reconnect backoff); zero
	// fields resolve to defaults.
	TransportTuning transport.Tuning

	// FlightRecorder is the per-node flight-recorder ring capacity in
	// events: each node keeps that many recent structured events
	// (window executions, degradations, checkpoints, restarts), and the
	// cluster keeps one more ring for node-spanning events (failovers,
	// admission rejections). 0 disables recording at zero cost.
	FlightRecorder int
}

// clusterMetrics are the supervision counters kept in the cluster
// registry; node lifecycle events bump them alongside the per-node
// atomics that Stats/Health report.
type clusterMetrics struct {
	restarts  *telemetry.Counter
	failovers *telemetry.Counter
	dropped   *telemetry.Counter
	salvaged  *telemetry.Counter
	errors    *telemetry.Counter
}

func newClusterMetrics(reg *telemetry.Registry) *clusterMetrics {
	return &clusterMetrics{
		restarts:  reg.Counter("cluster.restarts"),
		failovers: reg.Counter("cluster.failovers"),
		dropped:   reg.Counter("cluster.dropped"),
		salvaged:  reg.Counter("cluster.salvaged"),
		errors:    reg.Counter("cluster.errors"),
	}
}

// Cluster is a set of worker nodes behind a gateway and scheduler.
type Cluster struct {
	opts       Options
	catalogFor func(node int) *relation.Catalog
	nodes      []*Node

	mu     sync.Mutex
	closed bool
	// queries retains every registration (id, AST, pulse, sink, current
	// node) so crashed nodes can be rebuilt and dead nodes' queries can
	// fail over.
	queries map[string]*queryRecord
	// streamHosts maps stream name -> set of node indexes hosting
	// queries over it.
	streamHosts map[string]map[int]struct{}
	rrNext      int
	schemas     map[string]stream.Schema
	udfs        map[string]engine.ScalarFunc
	recovering  int // in-flight worker recoveries (WaitSettled)

	reg *telemetry.Registry
	met *clusterMetrics
	// frec is the cluster-level flight recorder (node -1) for events
	// that span nodes: failovers and admission rejections. Nil when
	// Options.FlightRecorder == 0.
	frec *telemetry.Recorder

	// rec is the recovery coordinator (nil when CheckpointEvery == 0).
	// It lives here — outside any node — so checkpoints, replay logs and
	// the emit gate survive worker death. seqs assigns the per-stream
	// ingest sequence numbers (guarded by mu) that make replay
	// idempotent.
	rec  *recovery.Coordinator
	seqs map[string]int64

	// gov enforces per-tenant admission quotas (always non-nil; a zero
	// quota admits everything).
	gov *governor

	// tr carries routed tuples and flush barriers to the workers
	// (channel or TCP; see transport.go).
	tr transport.Transport

	gateway *Gateway
}

// queryRecord is the retained registration of one continuous query.
type queryRecord struct {
	id     string
	stmt   *sql.SelectStmt
	pulse  *stream.Pulse
	sink   exastream.Sink
	node   int
	budget int64  // admitted window-state byte budget (0 = unenforced)
	tenant string // TenantOf(id), for quota release

	// Recovery bookkeeping (guarded by Cluster.mu). pendingRestore marks
	// a query assigned to node whose engine-side registration happens via
	// a queued restore job; until the job runs, ckpt/cursors/feed hold
	// the state source the restore will seed from (the victim's
	// checkpointed query state, the cut cursors, and the replay feed of
	// victim-logged plus salvaged tuples).
	pendingRestore bool
	ckpt           *recovery.Checkpoint
	cursors        map[string]int64
	feed           []recovery.Tuple
}

// Node is one worker: an ExaStream engine fed by a bounded inbox and
// run under supervision.
type Node struct {
	ID     int
	engine *exastream.Engine // swapped on restart; guarded by Cluster.mu for cross-goroutine reads

	// reg is the node's metrics registry. It outlives engine rebuilds:
	// a restarted worker's fresh engine resolves the same instruments,
	// so counters accumulate across crashes.
	reg *telemetry.Registry
	met *clusterMetrics // cluster-level counters, shared by all nodes
	// rec is the node's flight recorder (nil when disabled). Like reg
	// it outlives engine rebuilds, so the event ring spans crashes —
	// exactly when the black box matters.
	rec *telemetry.Recorder

	in      *inbox
	wg      sync.WaitGroup
	current work // item being processed; owned by the worker goroutine

	// Checkpoint bookkeeping, owned by the worker goroutine (no locks):
	// per-stream cursor of the highest processed seq, tuples since the
	// last committed checkpoint, and the engine's windows-executed count
	// at the previous tick (window-end boundary detection).
	cursors   map[string]int64
	sinceCkpt int
	lastWins  int64

	// failingOver guards the suspicion-triggered failover (guarded by
	// Cluster.mu): the detector fires once per link, but a late
	// suspicion must not re-fail a node the supervisor already handled.
	failingOver bool

	state    int32 // NodeState
	queries  int32
	tuples   int64
	// budgetUsed sums the admitted budgets of queries placed on this
	// node (guarded by Cluster.mu); NodeMemBudget caps it.
	budgetUsed int64
	restarts int32
	dropped  int64
	requeued int64

	errs errorRing
}

type work struct {
	stream  string
	el      stream.Timestamped
	seq     int64 // per-stream ingest sequence (recovery mode; 0 otherwise)
	flush   chan error
	restore *restoreJob // checkpoint-restore job (runs on the worker goroutine)
	retries int
}

func lowerKey(s string) string { return strings.ToLower(s) }

// New builds and starts a cluster. The catalog factory is called once per
// node so each worker owns its static data copy (as the paper's VMs did);
// pass a closure returning a shared catalog to model shared storage. The
// factory is also invoked when the supervisor rebuilds a crashed node.
func New(opts Options, catalogFor func(node int) *relation.Catalog) (*Cluster, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", opts.Nodes)
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 1024
	}
	if opts.GatewayQueue <= 0 {
		opts.GatewayQueue = 256
	}
	reg := opts.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Cluster{
		opts:        opts,
		catalogFor:  catalogFor,
		queries:     make(map[string]*queryRecord),
		streamHosts: make(map[string]map[int]struct{}),
		schemas:     make(map[string]stream.Schema),
		udfs:        make(map[string]engine.ScalarFunc),
		reg:         reg,
		met:         newClusterMetrics(reg),
		frec:        telemetry.NewRecorder(-1, opts.FlightRecorder),
	}
	if opts.CheckpointEvery > 0 {
		c.rec = recovery.NewCoordinator(opts.Nodes, opts.ReplayLogCap, reg)
		c.seqs = make(map[string]int64)
	}
	govFaults, _ := opts.Faults.(GovernanceFaultInjector)
	c.gov = newGovernor(opts.TenantQuota, reg, govFaults)
	for i := 0; i < opts.Nodes; i++ {
		n := &Node{
			ID:  i,
			in:  newInbox(opts.QueueSize),
			reg: telemetry.NewRegistry(),
			met: c.met,
			rec: telemetry.NewRecorder(i, opts.FlightRecorder),
		}
		n.engine = exastream.NewEngine(catalogFor(i), c.engineOptsFor(n))
		n.wg.Add(1)
		go n.supervise(c)
		c.nodes = append(c.nodes, n)
	}
	tr, err := c.newTransport()
	if err != nil {
		// The workers are already running; stop them before reporting.
		for _, n := range c.nodes {
			n.in.close()
		}
		for _, n := range c.nodes {
			n.wg.Wait()
		}
		return nil, err
	}
	c.tr = tr
	c.gateway = newGateway(c)
	return c, nil
}

// engineOptsFor clones the configured engine options with the node's
// error hook installed: per-query execution failures are recorded in
// the node's error ring (structured, counted) instead of aborting the
// worker loop, and repeated failures quarantine the query.
func (c *Cluster) engineOptsFor(n *Node) exastream.Options {
	o := c.opts.Engine
	if o.QuarantineAfter == 0 {
		o.QuarantineAfter = c.opts.QuarantineAfter
	}
	// Each node's engine writes into the node's own registry (never the
	// shared cluster one): instrument names would otherwise collide
	// across nodes, and per-node Stats must stay per-node. The registry
	// outlives engine rebuilds, so counters survive worker crashes.
	o.Telemetry = n.reg
	o.Recorder = n.rec
	user := o.OnQueryError
	o.OnQueryError = func(queryID string, err error) {
		n.noteErr(NodeError{Node: n.ID, QueryID: queryID, Err: err})
		if user != nil {
			user(queryID, err)
		}
	}
	if f, ok := c.opts.Faults.(GovernanceFaultInjector); ok && o.Pressure == nil {
		o.Pressure = f.PressureFor
	}
	return o
}

// noteErr records an asynchronous error in the node's ring and the
// cluster error counter.
func (n *Node) noteErr(e NodeError) {
	n.errs.add(e)
	n.met.errors.Inc()
}

// noteDrop accounts one shed tuple on the node and the cluster drop
// counter.
func (n *Node) noteDrop() {
	atomic.AddInt64(&n.dropped, 1)
	n.met.dropped.Inc()
}

// Err returns (and consumes) the oldest asynchronous error a node
// recorded, if any.
func (n *Node) Err() error {
	if e, ok := n.errs.pop(); ok {
		return e.Err
	}
	return nil
}

// State reports the node's lifecycle state.
func (n *Node) State() NodeState { return NodeState(atomic.LoadInt32(&n.state)) }

// enqueue admits one work item under the node's backpressure policy.
// Pushes at dead nodes are accounted as drops, not errors: a dead
// worker is a routing race the caller cannot act on.
func (n *Node) enqueue(ctx context.Context, w work, policy Backpressure) error {
	if n.State() == NodeDead {
		if w.flush != nil {
			close(w.flush)
		} else {
			n.noteDrop()
		}
		return errNodeDown
	}
	res, err := n.in.push(ctx, w, policy)
	switch {
	case err == errNodeDown:
		if w.flush != nil {
			close(w.flush)
		} else {
			n.noteDrop()
		}
		return err
	case err != nil:
		return err // ErrClusterClosed or ctx error
	}
	if res == pushDropped || res == pushEvicted {
		n.noteDrop()
	}
	return nil
}

// NodeCount returns the number of workers.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// Gateway returns the asynchronous registration front end.
func (c *Cluster) Gateway() *Gateway { return c.gateway }

// DeclareStream declares a stream schema on every node.
func (c *Cluster) DeclareStream(s stream.Schema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClusterClosed
	}
	key := lowerKey(s.Name)
	if _, dup := c.schemas[key]; dup {
		return fmt.Errorf("cluster: stream %q already declared", s.Name)
	}
	for _, n := range c.nodes {
		if n.State() == NodeDead {
			continue
		}
		if err := n.engine.DeclareStream(s); err != nil {
			return err
		}
	}
	c.schemas[key] = s
	return nil
}

// RegisterUDF installs a scalar UDF on every node's engine (and on any
// engine rebuilt after a crash). Call it before ingest begins.
func (c *Cluster) RegisterUDF(name string, f engine.ScalarFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.udfs[name] = f
	for _, n := range c.nodes {
		if n.State() != NodeDead {
			n.engine.RegisterUDF(name, f)
		}
	}
}

// Register parses nothing (the statement is already an AST): it schedules
// the query on a live worker, retains the registration record for
// failover, and returns the chosen node id. It returns ErrNoLiveNodes
// when every worker is dead. The query's budget defaults to
// Options.MemBudget; use RegisterWith to pass an analyzed budget.
func (c *Cluster) Register(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink exastream.Sink) (int, error) {
	return c.RegisterWith(id, stmt, pulse, sink, RegisterOptions{})
}

// RegisterOptions carries per-registration admission parameters.
type RegisterOptions struct {
	// Budget is the query's window-state byte budget, typically derived
	// by starql.AnalyzeMemory at translation time. 0 falls back to
	// Options.MemBudget (which may itself be 0 = unenforced).
	Budget int64
}

// RegisterWith is Register with explicit admission parameters: the
// tenant quota is charged, the budget is checked against per-node
// headroom (ErrOverBudget when nothing fits), and the admitted budget
// follows the query through restarts and failovers.
func (c *Cluster) RegisterWith(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink exastream.Sink, ro RegisterOptions) (int, error) {
	tenant := TenantOf(id)
	if err := c.gov.admitRegister(tenant); err != nil {
		c.frec.Record(telemetry.EvAdmissionReject, id, tenant, 0, 0)
		return -1, err
	}
	node, err := c.registerAdmitted(id, stmt, pulse, sink, ro, tenant)
	if err != nil {
		c.gov.releaseQuery(tenant)
	}
	return node, err
}

func (c *Cluster) registerAdmitted(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink exastream.Sink, ro RegisterOptions, tenant string) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return -1, ErrClusterClosed
	}
	if _, dup := c.queries[id]; dup {
		return -1, fmt.Errorf("cluster: query %q already registered", id)
	}
	budget := ro.Budget
	if budget == 0 {
		budget = c.opts.MemBudget
	}
	node := c.pickNodeForLocked(budget)
	if node == -1 {
		return -1, ErrNoLiveNodes
	}
	if node == -2 {
		c.gov.rejectedBudget.Inc()
		c.frec.Record(telemetry.EvAdmissionReject, id, tenant, 0, budget)
		return -1, ErrOverBudget
	}
	sink = c.guardedSink(id, sink)
	if err := c.nodes[node].engine.Register(id, stmt, pulse, sink); err != nil {
		return -1, err
	}
	if budget > 0 {
		_ = c.nodes[node].engine.SetQueryBudget(id, budget)
	}
	atomic.AddInt32(&c.nodes[node].queries, 1)
	c.nodes[node].budgetUsed += budget
	c.queries[id] = &queryRecord{id: id, stmt: stmt, pulse: pulse, sink: sink, node: node, budget: budget, tenant: tenant}
	for _, ref := range streamNamesOf(stmt) {
		hosts, ok := c.streamHosts[ref]
		if !ok {
			hosts = make(map[int]struct{})
			c.streamHosts[ref] = hosts
		}
		hosts[node] = struct{}{}
	}
	return node, nil
}

// Unregister removes a query from its node.
func (c *Cluster) Unregister(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.queries[id]
	if !ok {
		return fmt.Errorf("cluster: unknown query %q", id)
	}
	if err := c.nodes[rec.node].engine.Unregister(id); err != nil {
		return err
	}
	atomic.AddInt32(&c.nodes[rec.node].queries, -1)
	c.nodes[rec.node].budgetUsed -= rec.budget
	c.gov.releaseQuery(rec.tenant)
	delete(c.queries, id)
	if c.rec != nil {
		c.rec.Gate().Forget(id)
	}
	c.rebuildHostsLocked()
	return nil
}

// guardedSink wraps a query sink with the exactly-once emit gate when
// recovery is enabled. The wrapped sink is what queryRecord retains, so
// rebuilds and failovers reuse the same gate entry (the high-water mark
// survives the hosting node). The optional AfterEmit fault hook fires
// after each delivered window — the crash-after-emit-before-ack
// injection point.
func (c *Cluster) guardedSink(id string, sink exastream.Sink) exastream.Sink {
	if c.rec == nil || sink == nil {
		return sink
	}
	var after func(string, int64)
	if f, ok := c.opts.Faults.(EmitFaultInjector); ok {
		after = f.AfterEmit
	}
	return exastream.Sink(c.rec.Gate().Wrap(id, recovery.Sink(sink), after))
}

// Resume lifts the quarantine of a suspended query so it executes
// again on its hosting node.
func (c *Cluster) Resume(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.queries[id]
	if !ok {
		return fmt.Errorf("cluster: unknown query %q", id)
	}
	return c.nodes[rec.node].engine.Resume(id)
}

// pickNodeLocked implements the placement strategies over live nodes
// only; dead and restarting workers are skipped. Returns -1 when no
// live node remains.
func (c *Cluster) pickNodeLocked() int { return c.pickNodeForLocked(0) }

// pickNodeForLocked is pickNodeLocked with budget-aware placement: when
// NodeMemBudget is set and the query carries a budget, nodes without
// headroom are skipped. Returns -1 when no live node remains and -2
// when live nodes exist but none can admit the budget.
func (c *Cluster) pickNodeForLocked(budget int64) int {
	live := make([]int, 0, len(c.nodes))
	anyLive := false
	for i, n := range c.nodes {
		if n.State() != NodeLive {
			continue
		}
		anyLive = true
		if c.opts.NodeMemBudget > 0 && budget > 0 && n.budgetUsed+budget > c.opts.NodeMemBudget {
			continue
		}
		live = append(live, i)
	}
	if len(live) == 0 {
		if anyLive {
			return -2
		}
		return -1
	}
	switch c.opts.Placement {
	case PlaceRoundRobin:
		n := live[c.rrNext%len(live)]
		c.rrNext++
		return n
	default:
		best, bestLoad := live[0], int64(1<<62)
		for _, i := range live {
			n := c.nodes[i]
			load := int64(atomic.LoadInt32(&n.queries))*1_000_000 + atomic.LoadInt64(&n.tuples)
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	}
}

// rebuildHostsLocked recomputes the stream -> hosting-nodes routing
// table from the retained query records (after unregister or failover).
func (c *Cluster) rebuildHostsLocked() {
	hosts := make(map[string]map[int]struct{})
	for _, rec := range c.queries {
		for _, s := range streamNamesOf(rec.stmt) {
			h, ok := hosts[s]
			if !ok {
				h = make(map[int]struct{})
				hosts[s] = h
			}
			h[rec.node] = struct{}{}
		}
	}
	c.streamHosts = hosts
}

func (c *Cluster) sortedHostsLocked(key string) []int {
	hosts := make([]int, 0, len(c.streamHosts[key]))
	for h := range c.streamHosts[key] {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	return hosts
}

// Ingest routes one tuple with the configured backpressure policy and
// no deadline; see IngestContext for bounded waits.
func (c *Cluster) Ingest(streamName string, el stream.Timestamped) error {
	return c.IngestContext(context.Background(), streamName, el)
}

// IngestTenant is IngestContext with the tuple charged against the
// named tenant's ingest quota; ErrTenantQuota (retryable) rejects the
// tuple before it is routed. Plain Ingest/IngestContext stay uncharged:
// broadcast tuples have no single owning tenant, so rate-limiting them
// would bill innocents.
func (c *Cluster) IngestTenant(ctx context.Context, tenant, streamName string, el stream.Timestamped) error {
	if err := c.gov.admitIngest(tenant); err != nil {
		return err
	}
	return c.IngestContext(ctx, streamName, el)
}

// IngestContext routes one tuple: to the partition owner when a
// partition column is configured, otherwise to every node hosting
// queries over the stream. When a target queue is full the configured
// Backpressure policy applies; a blocking wait honours ctx. Tuples
// routed at dead nodes are counted as drops, not errors.
func (c *Cluster) IngestContext(ctx context.Context, streamName string, el stream.Timestamped) error {
	key := lowerKey(streamName)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClusterClosed
	}
	schema, ok := c.schemas[key]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown stream %q", streamName)
	}
	hosts := c.sortedHostsLocked(key)
	var seq int64
	if c.rec != nil && len(hosts) > 0 {
		// Per-stream monotonic sequence, assigned under the cluster lock
		// at routing time. Broadcast copies share one seq (it is the same
		// tuple); restored queries use it to deduplicate replay.
		c.seqs[key]++
		seq = c.seqs[key]
	}
	c.mu.Unlock()
	if len(hosts) == 0 {
		return nil // nobody listening
	}
	if c.opts.PartitionColumn != "" {
		idx, err := schema.Tuple.IndexOf(c.opts.PartitionColumn)
		if err != nil {
			return err
		}
		h := valueHash(el.Row[idx])
		target := hosts[int(h%uint64(len(hosts)))]
		err = c.send(ctx, target, streamName, el, seq)
		if sendFailed(err) {
			return nil // counted as a drop on the node, or salvaged by failover
		}
		return err
	}
	for _, h := range hosts {
		err := c.send(ctx, h, streamName, el, seq)
		if err != nil && !sendFailed(err) {
			return err
		}
	}
	return nil
}

// valueHash is an FNV-1a hash over the tuple key encoding.
func valueHash(v relation.Value) uint64 {
	key := relation.Tuple{v}.Key([]int{0})
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Flush drains every live node's queue and completes open windows. It
// returns errors from the flush itself; asynchronous worker errors stay
// in the per-node rings (see Errors and NodeStats). The barrier runs
// through the transport — over TCP the flush frame queues behind every
// tuple already sent on the link, so the ordering guarantee survives
// the wire — and all nodes flush concurrently, as before.
func (c *Cluster) Flush() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClusterClosed
	}
	c.mu.Unlock()
	errs := make([]error, len(c.nodes))
	var wg sync.WaitGroup
	for i, n := range c.nodes {
		if n.State() == NodeDead {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.tr.Flush(context.Background(), i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil && err != ErrLinkDown {
			// ErrLinkDown means the node died under us; its queries
			// already failed over and the flush is vacuous there.
			return err
		}
	}
	return nil
}

// Close shuts down the workers. The cluster is unusable afterwards;
// Ingest/Flush/Register return ErrClusterClosed. Close is idempotent
// and safe to race with in-flight Ingest calls.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	for _, n := range c.nodes {
		n.in.close()
	}
	// The transport closes after the inboxes: in-flight deliveries fail
	// fast with ErrClusterClosed instead of blocking on a worker that is
	// draining out, and before the worker wait so no flush waiter can
	// wedge the shutdown.
	if c.tr != nil {
		_ = c.tr.Close()
	}
	for _, n := range c.nodes {
		n.wg.Wait()
	}
}

// NodeStats describes one worker's load and failure counters.
type NodeStats struct {
	Node      int
	State     NodeState
	Queries   int
	Tuples    int64
	Dropped   int64 // tuples shed by backpressure or routed at this node while dead
	Requeued  int64 // tuples salvaged from this node's queue at failover
	Restarts  int
	Suspended int   // queries quarantined on this node
	ErrTotal  int64 // asynchronous errors recorded
	ErrKept   int64 // still retained in the ring (rest were evicted)
	Engine    exastream.Stats
}

// Stats returns per-node statistics.
func (c *Cluster) Stats() []NodeStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]NodeStats, len(c.nodes))
	for i, n := range c.nodes {
		total, evicted := n.errs.counts()
		out[i] = NodeStats{
			Node:      i,
			State:     n.State(),
			Queries:   int(atomic.LoadInt32(&n.queries)),
			Tuples:    atomic.LoadInt64(&n.tuples),
			Dropped:   atomic.LoadInt64(&n.dropped),
			Requeued:  atomic.LoadInt64(&n.requeued),
			Restarts:  int(atomic.LoadInt32(&n.restarts)),
			Suspended: len(n.engine.SuspendedQueries()),
			ErrTotal:  total,
			ErrKept:   total - evicted,
			Engine:    n.engine.Stats(),
		}
	}
	return out
}

// EngineTotals sums every node's engine counters into one consistent
// snapshot. Callers that previously walked Stats() and summed fields by
// hand raced the workers between reads; each node here is read once and
// folded with Stats.Add.
func (c *Cluster) EngineTotals() exastream.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t exastream.Stats
	for _, n := range c.nodes {
		t.Add(n.engine.Stats())
	}
	return t
}

// TelemetrySnapshot merges the cluster registry (supervision counters,
// per-node health gauges, refreshed here) with every node's engine
// registry. Same-named engine instruments sum across nodes, so the
// result reads as cluster-wide totals.
func (c *Cluster) TelemetrySnapshot() telemetry.Snapshot {
	c.mu.Lock()
	snaps := make([]telemetry.Snapshot, 0, len(c.nodes)+1)
	for i, n := range c.nodes {
		prefix := fmt.Sprintf("cluster.node.%d.", i)
		c.reg.Gauge(prefix + "state").Set(float64(atomic.LoadInt32(&n.state)))
		c.reg.Gauge(prefix + "queries").Set(float64(atomic.LoadInt32(&n.queries)))
		c.reg.Gauge(prefix + "tuples").Set(float64(atomic.LoadInt64(&n.tuples)))
		snaps = append(snaps, n.reg.Snapshot())
	}
	snaps = append(snaps, c.reg.Snapshot())
	c.mu.Unlock()
	return telemetry.Merge(snaps...)
}

// QueryNode reports which node hosts a query.
func (c *Cluster) QueryNode(id string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.queries[id]
	if !ok {
		return -1, false
	}
	return rec.node, true
}

// streamNamesOf lists the distinct stream names a statement references.
func streamNamesOf(stmt *sql.SelectStmt) []string {
	seen := map[string]struct{}{}
	var out []string
	var visitRef func(tr *sql.TableRef)
	var visitStmt func(s *sql.SelectStmt)
	visitRef = func(tr *sql.TableRef) {
		if tr.IsStream {
			key := lowerKey(tr.Table)
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, key)
			}
		}
		if tr.Subquery != nil {
			visitStmt(tr.Subquery)
		}
		for i := range tr.Joins {
			visitRef(tr.Joins[i].Right)
		}
	}
	visitStmt = func(s *sql.SelectStmt) {
		for _, b := range s.Branches() {
			for _, tr := range b.From {
				visitRef(tr)
			}
		}
	}
	visitStmt(stmt)
	return out
}

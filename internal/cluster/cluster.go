// Package cluster implements the distributed runtime of ExaStream as
// described in the paper's Figure 2: queries are registered through an
// asynchronous gateway, parsed, and handed to a scheduler that places
// stream and relational operators on worker nodes based on load; each
// worker runs its own stream-engine instance.
//
// The paper's deployment ran 1–128 VMs; here each node is an in-process
// worker (goroutine + its own ExaStream engine) connected by channels.
// The scheduling and partitioning logic — what produces the paper's
// scaling behaviour — is the real thing; only the transport is simulated.
package cluster

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/exastream"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Placement selects the worker for a new query.
type Placement int

const (
	// PlaceLeastLoaded picks the node with the fewest assigned queries,
	// breaking ties by recent tuple load (the paper's load-based
	// scheduler).
	PlaceLeastLoaded Placement = iota
	// PlaceRoundRobin cycles through nodes; the scheduling ablation
	// compares it against load-based placement.
	PlaceRoundRobin
)

// Options configures a cluster.
type Options struct {
	Nodes     int
	Placement Placement
	// Engine options applied to every node's ExaStream instance.
	Engine exastream.Options
	// QueueSize is each node's input channel capacity (default 1024).
	QueueSize int
	// PartitionColumn, when set, routes stream tuples to a single node by
	// hash of this column instead of broadcasting to all hosting nodes.
	// Queries must then be partition-compatible (they filter or group by
	// the same column), which holds for the per-sensor diagnostic tasks.
	PartitionColumn string
}

// Cluster is a set of worker nodes behind a gateway and scheduler.
type Cluster struct {
	opts  Options
	nodes []*Node

	mu sync.Mutex
	// queryNode maps query id -> node index.
	queryNode map[string]int
	// streamHosts maps stream name -> set of node indexes hosting
	// queries over it.
	streamHosts map[string]map[int]struct{}
	rrNext      int
	schemas     map[string]stream.Schema

	gateway *Gateway
}

// Node is one worker: an ExaStream engine fed by a channel.
type Node struct {
	ID     int
	engine *exastream.Engine

	in      chan work
	wg      sync.WaitGroup
	queries int32
	tuples  int64
	errs    chan error
}

type work struct {
	stream string
	el     stream.Timestamped
	flush  chan struct{}
}

// New builds and starts a cluster. The catalog factory is called once per
// node so each worker owns its static data copy (as the paper's VMs did);
// pass a closure returning a shared catalog to model shared storage.
func New(opts Options, catalogFor func(node int) *relation.Catalog) (*Cluster, error) {
	if opts.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", opts.Nodes)
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = 1024
	}
	c := &Cluster{
		opts:        opts,
		queryNode:   make(map[string]int),
		streamHosts: make(map[string]map[int]struct{}),
		schemas:     make(map[string]stream.Schema),
	}
	for i := 0; i < opts.Nodes; i++ {
		n := &Node{
			ID:     i,
			engine: exastream.NewEngine(catalogFor(i), opts.Engine),
			in:     make(chan work, opts.QueueSize),
			errs:   make(chan error, 16),
		}
		n.wg.Add(1)
		go n.run()
		c.nodes = append(c.nodes, n)
	}
	c.gateway = newGateway(c)
	return c, nil
}

func (n *Node) run() {
	defer n.wg.Done()
	for w := range n.in {
		if w.flush != nil {
			if err := n.engine.Flush(); err != nil {
				n.offerErr(err)
			}
			close(w.flush)
			continue
		}
		if err := n.engine.Ingest(w.stream, w.el); err != nil {
			n.offerErr(err)
		}
		atomic.AddInt64(&n.tuples, 1)
	}
}

func (n *Node) offerErr(err error) {
	select {
	case n.errs <- err:
	default:
	}
}

// Err returns the first asynchronous error a node reported, if any.
func (n *Node) Err() error {
	select {
	case err := <-n.errs:
		return err
	default:
		return nil
	}
}

// NodeCount returns the number of workers.
func (c *Cluster) NodeCount() int { return len(c.nodes) }

// Gateway returns the asynchronous registration front end.
func (c *Cluster) Gateway() *Gateway { return c.gateway }

// DeclareStream declares a stream schema on every node.
func (c *Cluster) DeclareStream(s stream.Schema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(s.Name)
	if _, dup := c.schemas[key]; dup {
		return fmt.Errorf("cluster: stream %q already declared", s.Name)
	}
	for _, n := range c.nodes {
		if err := n.engine.DeclareStream(s); err != nil {
			return err
		}
	}
	c.schemas[key] = s
	return nil
}

// Register parses nothing (the statement is already an AST): it schedules
// the query on a worker and returns the chosen node id.
func (c *Cluster) Register(id string, stmt *sql.SelectStmt, pulse *stream.Pulse, sink exastream.Sink) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.queryNode[id]; dup {
		return -1, fmt.Errorf("cluster: query %q already registered", id)
	}
	node := c.pickNodeLocked()
	if err := c.nodes[node].engine.Register(id, stmt, pulse, sink); err != nil {
		return -1, err
	}
	atomic.AddInt32(&c.nodes[node].queries, 1)
	c.queryNode[id] = node
	for _, ref := range streamNamesOf(stmt) {
		hosts, ok := c.streamHosts[ref]
		if !ok {
			hosts = make(map[int]struct{})
			c.streamHosts[ref] = hosts
		}
		hosts[node] = struct{}{}
	}
	return node, nil
}

// Unregister removes a query from its node.
func (c *Cluster) Unregister(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	node, ok := c.queryNode[id]
	if !ok {
		return fmt.Errorf("cluster: unknown query %q", id)
	}
	if err := c.nodes[node].engine.Unregister(id); err != nil {
		return err
	}
	atomic.AddInt32(&c.nodes[node].queries, -1)
	delete(c.queryNode, id)
	return nil
}

// pickNodeLocked implements the placement strategies.
func (c *Cluster) pickNodeLocked() int {
	switch c.opts.Placement {
	case PlaceRoundRobin:
		n := c.rrNext % len(c.nodes)
		c.rrNext++
		return n
	default:
		best, bestLoad := 0, int64(1<<62)
		for i, n := range c.nodes {
			load := int64(atomic.LoadInt32(&n.queries))*1_000_000 + atomic.LoadInt64(&n.tuples)
			if load < bestLoad {
				best, bestLoad = i, load
			}
		}
		return best
	}
}

// Ingest routes one tuple: to the partition owner when a partition
// column is configured, otherwise to every node hosting queries over the
// stream.
func (c *Cluster) Ingest(streamName string, el stream.Timestamped) error {
	key := strings.ToLower(streamName)
	c.mu.Lock()
	schema, ok := c.schemas[key]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: unknown stream %q", streamName)
	}
	hosts := make([]int, 0, len(c.streamHosts[key]))
	for h := range c.streamHosts[key] {
		hosts = append(hosts, h)
	}
	c.mu.Unlock()
	sort.Ints(hosts)
	if len(hosts) == 0 {
		return nil // nobody listening
	}
	if c.opts.PartitionColumn != "" {
		idx, err := schema.Tuple.IndexOf(c.opts.PartitionColumn)
		if err != nil {
			return err
		}
		h := valueHash(el.Row[idx])
		target := hosts[int(h%uint64(len(hosts)))]
		c.nodes[target].in <- work{stream: streamName, el: el}
		return nil
	}
	for _, h := range hosts {
		c.nodes[h].in <- work{stream: streamName, el: el}
	}
	return nil
}

// valueHash is an FNV-1a hash over the tuple key encoding.
func valueHash(v relation.Value) uint64 {
	key := relation.Tuple{v}.Key([]int{0})
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// Flush drains every node's queue and completes open windows.
func (c *Cluster) Flush() error {
	acks := make([]chan struct{}, len(c.nodes))
	for i, n := range c.nodes {
		acks[i] = make(chan struct{})
		n.in <- work{flush: acks[i]}
	}
	for _, a := range acks {
		<-a
	}
	for _, n := range c.nodes {
		if err := n.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close shuts down the workers. The cluster is unusable afterwards.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		close(n.in)
	}
	for _, n := range c.nodes {
		n.wg.Wait()
	}
}

// NodeStats describes one worker's load.
type NodeStats struct {
	Node    int
	Queries int
	Tuples  int64
	Engine  exastream.Stats
}

// Stats returns per-node statistics.
func (c *Cluster) Stats() []NodeStats {
	out := make([]NodeStats, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = NodeStats{
			Node:    i,
			Queries: int(atomic.LoadInt32(&n.queries)),
			Tuples:  atomic.LoadInt64(&n.tuples),
			Engine:  n.engine.Stats(),
		}
	}
	return out
}

// QueryNode reports which node hosts a query.
func (c *Cluster) QueryNode(id string) (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n, ok := c.queryNode[id]
	return n, ok
}

// streamNamesOf lists the distinct stream names a statement references.
func streamNamesOf(stmt *sql.SelectStmt) []string {
	seen := map[string]struct{}{}
	var out []string
	var visitRef func(tr *sql.TableRef)
	var visitStmt func(s *sql.SelectStmt)
	visitRef = func(tr *sql.TableRef) {
		if tr.IsStream {
			key := strings.ToLower(tr.Table)
			if _, dup := seen[key]; !dup {
				seen[key] = struct{}{}
				out = append(out, key)
			}
		}
		if tr.Subquery != nil {
			visitStmt(tr.Subquery)
		}
		for i := range tr.Joins {
			visitRef(tr.Joins[i].Right)
		}
	}
	visitStmt = func(s *sql.SelectStmt) {
		for _, b := range s.Branches() {
			for _, tr := range b.From {
				visitRef(tr)
			}
		}
	}
	visitStmt(stmt)
	return out
}

package cluster

import (
	"fmt"
	"sync"

	"repro/internal/exastream"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Gateway is the asynchronous query registration front end of Figure 2:
// clients submit SQL(+) text and receive a ticket; a background worker
// parses the query and hands it to the scheduler. Clients poll or wait on
// the ticket for the placement decision.
type Gateway struct {
	cluster *Cluster

	mu      sync.Mutex
	next    int
	tickets map[int]*Ticket
	queue   chan *submission
	wg      sync.WaitGroup
	closed  bool
}

// Ticket tracks one asynchronous registration.
type Ticket struct {
	ID   int
	done chan struct{}

	mu   sync.Mutex
	node int
	err  error
}

type submission struct {
	ticket  *Ticket
	queryID string
	text    string
	pulse   *stream.Pulse
	sink    exastream.Sink
}

func newGateway(c *Cluster) *Gateway {
	g := &Gateway{
		cluster: c,
		tickets: make(map[int]*Ticket),
		queue:   make(chan *submission, 256),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

func (g *Gateway) run() {
	defer g.wg.Done()
	for s := range g.queue {
		node, err := g.process(s)
		s.ticket.mu.Lock()
		s.ticket.node, s.ticket.err = node, err
		s.ticket.mu.Unlock()
		close(s.ticket.done)
	}
}

func (g *Gateway) process(s *submission) (int, error) {
	stmt, err := sql.Parse(s.text)
	if err != nil {
		return -1, fmt.Errorf("gateway: parse: %w", err)
	}
	return g.cluster.Register(s.queryID, stmt, s.pulse, s.sink)
}

// Submit enqueues a registration and returns its ticket immediately.
func (g *Gateway) Submit(queryID, queryText string, pulse *stream.Pulse, sink exastream.Sink) (*Ticket, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return nil, fmt.Errorf("gateway: closed")
	}
	t := &Ticket{ID: g.next, done: make(chan struct{}), node: -1}
	g.next++
	g.tickets[t.ID] = t
	g.queue <- &submission{ticket: t, queryID: queryID, text: queryText, pulse: pulse, sink: sink}
	return t, nil
}

// Wait blocks until the registration completes and returns the node the
// query was placed on.
func (t *Ticket) Wait() (int, error) {
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node, t.err
}

// Done reports whether the registration has completed without blocking.
func (t *Ticket) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Close stops accepting submissions and waits for the queue to drain.
func (g *Gateway) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()
	close(g.queue)
	g.wg.Wait()
}

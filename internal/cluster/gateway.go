package cluster

import (
	"fmt"
	"sync"

	"repro/internal/exastream"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Gateway is the asynchronous query registration front end of Figure 2:
// clients submit SQL(+) text and receive a ticket; a background worker
// parses the query and hands it to the scheduler. Clients poll or wait on
// the ticket for the placement decision.
type Gateway struct {
	cluster *Cluster

	mu      sync.Mutex // ticket bookkeeping only; never held across a send
	next    int
	tickets map[int]*Ticket

	sendMu sync.RWMutex // guards queue sends against Close
	queue  chan *submission
	closed bool
	wg     sync.WaitGroup
}

// Ticket tracks one asynchronous registration.
type Ticket struct {
	ID   int
	done chan struct{}

	mu   sync.Mutex
	node int
	err  error
}

type submission struct {
	ticket  *Ticket
	queryID string
	text    string
	pulse   *stream.Pulse
	sink    exastream.Sink
}

func newGateway(c *Cluster) *Gateway {
	g := &Gateway{
		cluster: c,
		tickets: make(map[int]*Ticket),
		queue:   make(chan *submission, c.opts.GatewayQueue),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

func (g *Gateway) run() {
	defer g.wg.Done()
	for s := range g.queue {
		node, err := g.process(s)
		s.ticket.mu.Lock()
		s.ticket.node, s.ticket.err = node, err
		s.ticket.mu.Unlock()
		close(s.ticket.done)
	}
}

func (g *Gateway) process(s *submission) (int, error) {
	stmt, err := sql.Parse(s.text)
	if err != nil {
		return -1, fmt.Errorf("gateway: parse: %w", err)
	}
	return g.cluster.Register(s.queryID, stmt, s.pulse, s.sink)
}

// Submit enqueues a registration and returns its ticket immediately. A
// full submission queue returns ErrGatewayBusy instead of blocking (the
// old implementation held the gateway lock across the send, deadlocking
// Wait and Close under load).
func (g *Gateway) Submit(queryID, queryText string, pulse *stream.Pulse, sink exastream.Sink) (*Ticket, error) {
	g.sendMu.RLock()
	defer g.sendMu.RUnlock()
	if g.closed {
		return nil, fmt.Errorf("gateway: closed")
	}
	g.mu.Lock()
	t := &Ticket{ID: g.next, done: make(chan struct{}), node: -1}
	g.next++
	g.tickets[t.ID] = t
	g.mu.Unlock()
	select {
	case g.queue <- &submission{ticket: t, queryID: queryID, text: queryText, pulse: pulse, sink: sink}:
		return t, nil
	default:
		g.mu.Lock()
		delete(g.tickets, t.ID)
		g.mu.Unlock()
		return nil, ErrGatewayBusy
	}
}

// Wait blocks until the registration completes and returns the node the
// query was placed on.
func (t *Ticket) Wait() (int, error) {
	<-t.done
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node, t.err
}

// Done reports whether the registration has completed without blocking.
func (t *Ticket) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Close stops accepting submissions and waits for the queue to drain.
// It is safe to race with Submit: the queue is only closed once every
// in-flight send has completed.
func (g *Gateway) Close() {
	g.sendMu.Lock()
	if g.closed {
		g.sendMu.Unlock()
		return
	}
	g.closed = true
	g.sendMu.Unlock()
	close(g.queue)
	g.wg.Wait()
}

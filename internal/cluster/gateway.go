package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/exastream"
	"repro/internal/sql"
	"repro/internal/stream"
)

// Gateway is the asynchronous query registration front end of Figure 2:
// clients submit SQL(+) text and receive a ticket; a background worker
// parses the query and hands it to the scheduler. Clients poll or wait on
// the ticket for the placement decision.
type Gateway struct {
	cluster *Cluster

	mu      sync.Mutex // ticket bookkeeping only; never held across a send
	next    int
	tickets map[int]*Ticket

	sendMu sync.RWMutex // guards queue sends against Close
	queue  chan *submission
	closed bool
	wg     sync.WaitGroup
}

// Ticket tracks one asynchronous registration.
type Ticket struct {
	ID   int
	done chan struct{}

	mu   sync.Mutex
	node int
	err  error
}

type submission struct {
	ticket  *Ticket
	queryID string
	text    string
	pulse   *stream.Pulse
	sink    exastream.Sink
	// register, when non-nil, replaces the parse-and-register path: the
	// submitter already holds a parsed form (SubmitFunc) and the gateway
	// only sequences the registration.
	register func() (int, error)
}

func newGateway(c *Cluster) *Gateway {
	g := &Gateway{
		cluster: c,
		tickets: make(map[int]*Ticket),
		queue:   make(chan *submission, c.opts.GatewayQueue),
	}
	g.wg.Add(1)
	go g.run()
	return g
}

func (g *Gateway) run() {
	defer g.wg.Done()
	for s := range g.queue {
		node, err := g.process(s)
		s.ticket.mu.Lock()
		s.ticket.node, s.ticket.err = node, err
		s.ticket.mu.Unlock()
		close(s.ticket.done)
	}
}

func (g *Gateway) process(s *submission) (int, error) {
	if s.register != nil {
		return s.register()
	}
	stmt, err := sql.Parse(s.text)
	if err != nil {
		return -1, fmt.Errorf("gateway: parse: %w", err)
	}
	return g.cluster.Register(s.queryID, stmt, s.pulse, s.sink)
}

// Submit enqueues a registration and returns its ticket immediately. A
// full submission queue returns ErrGatewayBusy instead of blocking (the
// old implementation held the gateway lock across the send, deadlocking
// Wait and Close under load); see SubmitContext for a bounded wait and
// RetryBusy for a backoff loop.
func (g *Gateway) Submit(queryID, queryText string, pulse *stream.Pulse, sink exastream.Sink) (*Ticket, error) {
	return g.enqueue(context.Background(),
		&submission{queryID: queryID, text: queryText, pulse: pulse, sink: sink}, false)
}

// SubmitContext is Submit with a deadline: a full submission queue
// blocks until space frees up or ctx expires (returning ctx.Err()),
// instead of failing immediately with ErrGatewayBusy.
func (g *Gateway) SubmitContext(ctx context.Context, queryID, queryText string, pulse *stream.Pulse, sink exastream.Sink) (*Ticket, error) {
	return g.enqueue(ctx,
		&submission{queryID: queryID, text: queryText, pulse: pulse, sink: sink}, true)
}

// SubmitFunc enqueues a pre-parsed registration: the gateway worker
// sequences register() instead of parsing SQL text. Higher layers that
// parse their own language (STARQL tasks) use this to get asynchronous
// admission without double-parsing. Non-blocking like Submit.
func (g *Gateway) SubmitFunc(queryID string, register func() (int, error)) (*Ticket, error) {
	return g.enqueue(context.Background(), &submission{queryID: queryID, register: register}, false)
}

// enqueue issues a ticket and hands the submission to the worker,
// blocking (bounded by ctx) or failing fast per block.
func (g *Gateway) enqueue(ctx context.Context, s *submission, block bool) (*Ticket, error) {
	g.sendMu.RLock()
	defer g.sendMu.RUnlock()
	if g.closed {
		return nil, fmt.Errorf("gateway: closed")
	}
	g.mu.Lock()
	t := &Ticket{ID: g.next, done: make(chan struct{}), node: -1}
	g.next++
	g.tickets[t.ID] = t
	g.mu.Unlock()
	s.ticket = t
	if block {
		select {
		case g.queue <- s:
			return t, nil
		case <-ctx.Done():
			g.dropTicket(t)
			return nil, ctx.Err()
		}
	}
	select {
	case g.queue <- s:
		return t, nil
	default:
		g.dropTicket(t)
		return nil, ErrGatewayBusy
	}
}

func (g *Gateway) dropTicket(t *Ticket) {
	g.mu.Lock()
	delete(g.tickets, t.ID)
	g.mu.Unlock()
}

// Wait blocks until the registration completes and returns the node the
// query was placed on.
func (t *Ticket) Wait() (int, error) {
	return t.WaitContext(context.Background())
}

// WaitContext is Wait bounded by a context: it returns ctx.Err() if the
// registration has not completed when ctx expires. The registration
// itself is not cancelled — the ticket can be waited on again.
func (t *Ticket) WaitContext(ctx context.Context) (int, error) {
	select {
	case <-t.done:
	case <-ctx.Done():
		return -1, ctx.Err()
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.node, t.err
}

// Done reports whether the registration has completed without blocking.
func (t *Ticket) Done() bool {
	select {
	case <-t.done:
		return true
	default:
		return false
	}
}

// Close stops accepting submissions and waits for the queue to drain.
// It is safe to race with Submit: the queue is only closed once every
// in-flight send has completed.
func (g *Gateway) Close() {
	g.sendMu.Lock()
	if g.closed {
		g.sendMu.Unlock()
		return
	}
	g.closed = true
	g.sendMu.Unlock()
	close(g.queue)
	g.wg.Wait()
}

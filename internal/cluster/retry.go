package cluster

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// maxRetryBackoff caps one RetryBusy sleep; beyond this, waiting longer
// only delays the inevitable queue-full error.
const maxRetryBackoff = 250 * time.Millisecond

// RetryBusy runs fn up to attempts times, retrying only when it fails
// with a transient admission or transport error: ErrGatewayBusy
// (submission queue full), ErrTenantQuota (token bucket empty; it
// refills), ErrOverBudget (no node headroom; it frees as queries
// unregister), ErrLinkDown (the link reconnects or the node fails
// over), or ErrSessionReset (the session resumes; the operation's fate
// was lost, so only idempotent work should be retried through here).
// Between attempts it sleeps a capped exponential backoff with full
// jitter — base<<attempt halved plus a random half, so a thundering herd
// of submitters decorrelates instead of hammering the gateway in
// lockstep. Any other error (and success) returns immediately; an
// expired ctx returns ctx.Err().
func RetryBusy(ctx context.Context, attempts int, base time.Duration, fn func() error) error {
	if attempts <= 0 {
		attempts = 1
	}
	if base <= 0 {
		base = time.Millisecond
	}
	var err error
	for a := 0; a < attempts; a++ {
		if err = fn(); err == nil || !retryable(err) {
			return err
		}
		if a == attempts-1 {
			break
		}
		d := base << uint(a)
		if d <= 0 || d > maxRetryBackoff {
			d = maxRetryBackoff
		}
		sleep := d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
		select {
		case <-time.After(sleep):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return err
}

// retryable reports whether an admission or transport error is
// transient.
func retryable(err error) bool {
	return errors.Is(err, ErrGatewayBusy) ||
		errors.Is(err, ErrTenantQuota) ||
		errors.Is(err, ErrOverBudget) ||
		errors.Is(err, ErrLinkDown) ||
		errors.Is(err, ErrSessionReset)
}

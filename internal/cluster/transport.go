// Transport wiring: the routing layer (IngestContext, Flush) reaches
// worker inboxes through a pluggable transport.Transport instead of
// calling enqueue directly. The default channel transport preserves the
// original in-process hop exactly; the TCP transport runs the same
// traffic over framed loopback sessions with retransmission, failure
// detection, and suspicion-triggered failover — the deployment shape
// the paper's 1–128 VM clusters had, with a real wire in between.
package cluster

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// TransportKind selects how the routing layer reaches worker nodes.
type TransportKind int

const (
	// TransportChannel delivers in-process on the caller's goroutine —
	// the default, and behaviourally identical to the pre-transport
	// cluster.
	TransportChannel TransportKind = iota
	// TransportTCP delivers over framed, checksummed, sequenced loopback
	// TCP sessions with heartbeat failure detection; a node whose link
	// stays silent beyond the suspicion timeout is failed over.
	TransportTCP
)

func (k TransportKind) String() string {
	if k == TransportTCP {
		return "tcp"
	}
	return "channel"
}

// ParseTransport resolves a -transport flag value.
func ParseTransport(s string) (TransportKind, error) {
	switch s {
	case "", "channel":
		return TransportChannel, nil
	case "tcp":
		return TransportTCP, nil
	default:
		return 0, fmt.Errorf("cluster: unknown transport %q (want channel or tcp)", s)
	}
}

// Transport errors, re-exported so callers retry without importing the
// transport package: both are transient from the submitter's view (the
// link reconnects, the session resumes) and RetryBusy treats them as
// retryable.
var (
	// ErrLinkDown reports a send or flush at a node whose link is torn
	// down (the node failed over, or the cluster is closing).
	ErrLinkDown = transport.ErrLinkDown
	// ErrSessionReset reports an operation whose outcome was lost to a
	// connection reset; the work may or may not have happened, and
	// idempotent callers simply retry.
	ErrSessionReset = transport.ErrSessionReset
)

// transportHandler adapts the cluster's delivery path to
// transport.Handler. Delivery semantics — backpressure policy, drop
// accounting at dead nodes, the flush barrier through the worker — stay
// here in the cluster, so every transport shares them.
type transportHandler struct{ c *Cluster }

// HandleTuple enqueues one delivered tuple on the node under the
// cluster's backpressure policy — exactly the hop IngestContext
// performed before transports existed.
func (h transportHandler) HandleTuple(ctx context.Context, node int, m transport.Msg) error {
	c := h.c
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("cluster: transport delivery to unknown node %d", node)
	}
	w := work{stream: m.Stream, el: stream.Timestamped{TS: m.TS, Row: m.Row}, seq: m.Seq}
	return c.nodes[node].enqueue(ctx, w, c.opts.Backpressure)
}

// HandleFlush runs the flush barrier through the node's worker: a flush
// marker is queued behind everything already accepted and the worker's
// result awaited. A dead node maps to ErrLinkDown — typed, so it
// survives the TCP hop as a flush-ack code.
func (h transportHandler) HandleFlush(ctx context.Context, node int) error {
	c := h.c
	if node < 0 || node >= len(c.nodes) {
		return fmt.Errorf("cluster: transport flush at unknown node %d", node)
	}
	ack := make(chan error, 1)
	if err := c.nodes[node].enqueue(ctx, work{flush: ack}, BackpressureBlock); err != nil {
		if err == errNodeDown {
			return ErrLinkDown
		}
		return err
	}
	select {
	case err, ok := <-ack:
		if !ok {
			return ErrLinkDown // the node died with the marker queued
		}
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// newTransport builds the configured transport for a freshly
// constructed cluster.
func (c *Cluster) newTransport() (transport.Transport, error) {
	h := transportHandler{c: c}
	if c.opts.Transport != TransportTCP {
		return transport.NewChannel(h), nil
	}
	netFaults, _ := c.opts.Faults.(transport.NetFaultInjector)
	return transport.NewTCP(transport.Config{
		Nodes:     len(c.nodes),
		Listen:    c.opts.Listen,
		Tuning:    c.opts.TransportTuning,
		Handler:   h,
		OnSuspect: c.transportFailover,
		Faults:    netFaults,
		Metrics:   c.reg,
		Recorder:  c.frec,
	})
}

// send routes one tuple to a node through the transport.
func (c *Cluster) send(ctx context.Context, node int, streamName string, el stream.Timestamped, seq int64) error {
	return c.tr.Send(ctx, node, transport.Msg{Stream: streamName, TS: el.TS, Seq: seq, Row: el.Row})
}

// sendFailed reports whether a routed tuple failed because its target
// node is gone — a routing race the caller cannot act on (the tuple is
// accounted as a drop or salvaged by failover), not an ingest error.
func sendFailed(err error) bool {
	return err == errNodeDown || err == ErrLinkDown
}

// transportFailover is the suspicion-triggered failover: the failure
// detector declared a node's link silent, so its queries migrate to
// survivors exactly as if the worker had exhausted its restart budget.
// In the deployment this simulates the worker may be healthy but
// unreachable; here worker and routing layer share a process, so the
// worker is first stopped deterministically — halt the inbox, wait the
// goroutine out — and everything still queued, including the frames the
// transport had in flight, joins the failover's salvage set.
func (c *Cluster) transportFailover(node int) {
	if node < 0 || node >= len(c.nodes) {
		return
	}
	n := c.nodes[node]
	c.mu.Lock()
	if c.closed || n.failingOver || NodeState(atomic.LoadInt32(&n.state)) != NodeLive {
		c.mu.Unlock()
		return
	}
	n.failingOver = true
	c.recovering++ // WaitSettled covers the whole migration
	c.mu.Unlock()

	c.frec.Record(telemetry.EvTransportFailover, "", "", 0, int64(node))
	n.in.halt()
	n.wg.Wait()
	// The transport's undelivered frames were admitted by Send but never
	// reached the inbox: requeue them so failover salvages them with the
	// rest. Frames delivered but unacknowledged reappear here too — the
	// recovery layer's per-stream seq dedup absorbs the overlap.
	for _, m := range c.tr.CloseNode(node) {
		n.in.requeue(work{stream: m.Stream, el: stream.Timestamped{TS: m.TS, Row: m.Row}, seq: m.Seq})
	}
	c.failover(n)
	c.settle(-1)
}

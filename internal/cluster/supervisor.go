// Worker supervision and query failover. Each node's run loop is
// wrapped in panic recovery: a crashed worker is restarted with a fresh
// engine (capped restarts, exponential backoff) and its queries are
// re-registered from the cluster's retained registration records. A
// node that exhausts its restart budget is declared dead; its queries
// migrate to surviving nodes, the stream routing tables are rebuilt,
// and tuples still queued on the corpse are salvaged and re-routed.
package cluster

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/exastream"
	"repro/internal/telemetry"
)

// NodeState is a worker's lifecycle state.
type NodeState int32

const (
	// NodeLive workers accept queries and process tuples.
	NodeLive NodeState = iota
	// NodeRestarting workers crashed and are being rebuilt; their queue
	// keeps accepting work, which is processed once the restart lands.
	NodeRestarting
	// NodeDead workers exhausted their restart budget; their queries
	// have failed over and tuples routed at them are dropped.
	NodeDead
)

func (s NodeState) String() string {
	switch s {
	case NodeRestarting:
		return "restarting"
	case NodeDead:
		return "dead"
	default:
		return "live"
	}
}

// FaultInjector hooks the worker loop for chaos testing (see
// internal/faults for the deterministic implementation). BeforeProcess
// runs on the worker goroutine before each tuple: returning an error
// simulates a failed ingest (the tuple is dropped and the error
// recorded), panicking simulates a worker crash (the supervisor takes
// over), and sleeping simulates a slow node (exercises backpressure).
type FaultInjector interface {
	BeforeProcess(node int, stream string) error
}

// CheckpointFaultInjector is an optional FaultInjector extension for
// recovery chaos: BeforeCheckpoint runs on the worker goroutine at the
// start of each checkpoint attempt (panicking simulates a crash during
// the checkpoint — the previous checkpoint stays authoritative), and
// TearCheckpoint reports whether this attempt's bytes should be
// corrupted mid-write (the torn-checkpoint injection; the store's
// verification catches it and falls back).
type CheckpointFaultInjector interface {
	BeforeCheckpoint(node int)
	TearCheckpoint(node int) bool
}

// EmitFaultInjector is an optional FaultInjector extension: AfterEmit
// runs right after a window is delivered through the emit gate and may
// panic — the crash-after-emit-before-ack injection point. The mark
// already advanced atomically with the delivery, so the replayed window
// is deduplicated, never re-delivered.
type EmitFaultInjector interface {
	AfterEmit(queryID string, windowEnd int64)
}

// GovernanceFaultInjector is an optional FaultInjector extension for
// resource-governance chaos: PressureFor adds synthetic bytes to a
// query's measured window-state usage (driving it over budget on
// demand), and TenantExhausted forces a tenant's quota admissions to
// fail with ErrTenantQuota.
type GovernanceFaultInjector interface {
	PressureFor(queryID string) int64
	TenantExhausted(tenant string) bool
}

const (
	defaultMaxRestarts    = 3
	defaultRestartBackoff = 5 * time.Millisecond
	maxRestartBackoff     = 500 * time.Millisecond
)

// maxRestarts resolves the configured restart cap: 0 means the default,
// negative means "no restarts" (first panic kills the node).
func (o Options) maxRestarts() int {
	if o.MaxRestarts == 0 {
		return defaultMaxRestarts
	}
	if o.MaxRestarts < 0 {
		return 0
	}
	return o.MaxRestarts
}

func (o Options) backoffFor(attempt int) time.Duration {
	d := o.RestartBackoff
	if d <= 0 {
		d = defaultRestartBackoff
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= maxRestartBackoff {
			return maxRestartBackoff
		}
	}
	return d
}

// supervise is the worker goroutine: it runs the guarded loop and, on
// panic, either rebuilds the node or declares it dead and fails its
// queries over. The rebuild itself is also guarded: with recovery
// enabled it restores a checkpoint and replays logged tuples, which
// re-executes windows and can re-hit injected faults — such a crash
// burns another restart from the same budget and the rebuild retries
// from the same checkpoint (the restore path is idempotent).
func (n *Node) supervise(c *Cluster) {
	defer n.wg.Done()
	for {
		if n.runGuarded(c) {
			return // inbox closed: clean shutdown
		}
		restarts := int(atomic.AddInt32(&n.restarts, 1))
		c.met.restarts.Inc()
		n.rec.Record(telemetry.EvRestart, "", "", 0, int64(restarts))
		if restarts > c.opts.maxRestarts() {
			c.failover(n)
			c.settle(-1)
			return
		}
		// Retry the in-flight item on the rebuilt engine. A poison item
		// will re-panic until the budget is exhausted; its retry count
		// then tells failover not to salvage it.
		if cur := n.current; cur.flush != nil || cur.stream != "" || cur.restore != nil {
			cur.retries++
			n.current = work{}
			n.in.pushFront(cur)
		}
		for {
			time.Sleep(c.opts.backoffFor(restarts))
			alive, crashed := c.rebuildNodeGuarded(n)
			if crashed {
				restarts = int(atomic.AddInt32(&n.restarts, 1))
				c.met.restarts.Inc()
				n.rec.Record(telemetry.EvRestart, "", "", 0, int64(restarts))
				if restarts > c.opts.maxRestarts() {
					c.failover(n)
					c.settle(-1)
					return
				}
				continue
			}
			if !alive {
				c.settle(-1)
				return // cluster closed while we slept
			}
			break
		}
		c.settle(-1)
	}
}

// rebuildNodeGuarded runs rebuildNode with panic containment: crashed
// reports a panic during the rebuild/restore/replay (another supervised
// crash), alive is false when the cluster closed.
func (c *Cluster) rebuildNodeGuarded(n *Node) (alive, crashed bool) {
	defer func() {
		if r := recover(); r != nil {
			crashed = true
			n.noteErr(NodeError{Node: n.ID, Err: fmt.Errorf("cluster: node %d: panic during rebuild: %v", n.ID, r)})
		}
	}()
	return c.rebuildNode(n), false
}

// runGuarded processes inbox items until shutdown, converting panics
// into a supervised crash. It returns true on clean shutdown and false
// after recovering a panic.
func (n *Node) runGuarded(c *Cluster) (clean bool) {
	defer func() {
		if r := recover(); r != nil {
			atomic.StoreInt32(&n.state, int32(NodeRestarting))
			c.settle(1)
			n.noteErr(NodeError{Node: n.ID, Err: fmt.Errorf("cluster: node %d: worker panic: %v", n.ID, r)})
		}
	}()
	for {
		w, ok := n.in.pop()
		if !ok {
			return true
		}
		n.current = w
		n.process(c, w)
		n.current = work{}
	}
}

// process handles one work item on the worker goroutine.
func (n *Node) process(c *Cluster, w work) {
	if w.restore != nil {
		n.runRestore(c, w.restore)
		return
	}
	if w.flush != nil {
		w.flush <- n.engine.Flush()
		close(w.flush)
		if c.rec != nil {
			// The flush completed every open window: a free consistent
			// cut. The ack is already delivered, so clear the in-flight
			// slot first — a crash inside the checkpoint must not replay
			// the flush marker (its channel is closed).
			n.current = work{}
			n.checkpoint(c)
		}
		return
	}
	if f := c.opts.Faults; f != nil {
		if err := f.BeforeProcess(n.ID, w.stream); err != nil {
			n.noteErr(NodeError{Node: n.ID, Err: err})
			return
		}
	}
	if err := n.engine.IngestSeq(w.stream, w.el, w.seq); err != nil {
		n.noteErr(NodeError{Node: n.ID, Err: err})
	}
	atomic.AddInt64(&n.tuples, 1)
	if c.rec != nil {
		n.recordAndMaybeCheckpoint(c, w)
	}
}

// rebuildNode gives a crashed node a fresh engine and re-registers its
// queries from the retained records (with recovery enabled, restored
// from the node's latest checkpoint instead — see restoreNode). Returns
// false if the cluster closed in the meantime.
func (c *Cluster) rebuildNode(n *Node) bool {
	if c.rec != nil {
		return c.restoreNode(n)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	eng := exastream.NewEngine(c.catalogFor(n.ID), c.engineOptsFor(n))
	for _, s := range c.schemas {
		if err := eng.DeclareStream(s); err != nil {
			n.noteErr(NodeError{Node: n.ID, Err: err})
		}
	}
	for name, f := range c.udfs {
		eng.RegisterUDF(name, f)
	}
	var requeries int32
	for _, rec := range c.queries {
		if rec.node != n.ID {
			continue
		}
		if err := eng.Register(rec.id, rec.stmt, rec.pulse, rec.sink); err != nil {
			n.noteErr(NodeError{Node: n.ID, QueryID: rec.id,
				Err: fmt.Errorf("cluster: node %d: re-register %s: %w", n.ID, rec.id, err)})
			continue
		}
		if rec.budget > 0 {
			_ = eng.SetQueryBudget(rec.id, rec.budget)
		}
		requeries++
	}
	n.engine = eng
	atomic.StoreInt32(&n.queries, requeries)
	atomic.StoreInt32(&n.state, int32(NodeLive))
	return true
}

// failover declares a node dead, migrates its queries to survivors,
// rebuilds the stream routing tables, and salvages its queued tuples.
// With recovery enabled the migration carries checkpointed state and a
// replay feed instead (see failoverRestore).
func (c *Cluster) failover(n *Node) {
	if c.rec != nil {
		c.failoverRestore(n)
		return
	}
	c.met.failovers.Inc()
	c.frec.Record(telemetry.EvFailover, "", "", 0, int64(n.ID))
	c.mu.Lock()
	atomic.StoreInt32(&n.state, int32(NodeDead))
	// Host sets before the failover: salvaged broadcast tuples must only
	// reach nodes that were NOT already receiving this stream (those
	// have their own copy of every tuple).
	prevHosts := make(map[string]map[int]struct{}, len(c.streamHosts))
	for s, hosts := range c.streamHosts {
		cp := make(map[int]struct{}, len(hosts))
		for h := range hosts {
			cp[h] = struct{}{}
		}
		prevHosts[s] = cp
	}
	gained := make(map[string]map[int]struct{}) // stream -> nodes that received migrated queries
	for _, rec := range c.queries {
		if rec.node != n.ID {
			continue
		}
		target := c.pickNodeLocked()
		if target < 0 {
			n.noteErr(NodeError{Node: n.ID, QueryID: rec.id,
				Err: fmt.Errorf("cluster: query %s lost: %w", rec.id, ErrNoLiveNodes)})
			delete(c.queries, rec.id)
			c.gov.releaseQuery(rec.tenant)
			continue
		}
		if err := c.nodes[target].engine.Register(rec.id, rec.stmt, rec.pulse, rec.sink); err != nil {
			n.noteErr(NodeError{Node: n.ID, QueryID: rec.id,
				Err: fmt.Errorf("cluster: failover of %s to node %d: %w", rec.id, target, err)})
			delete(c.queries, rec.id)
			c.gov.releaseQuery(rec.tenant)
			continue
		}
		if rec.budget > 0 {
			_ = c.nodes[target].engine.SetQueryBudget(rec.id, rec.budget)
		}
		rec.node = target
		atomic.AddInt32(&c.nodes[target].queries, 1)
		c.nodes[target].budgetUsed += rec.budget
		for _, s := range streamNamesOf(rec.stmt) {
			g, ok := gained[s]
			if !ok {
				g = make(map[int]struct{})
				gained[s] = g
			}
			g[target] = struct{}{}
		}
	}
	atomic.StoreInt32(&n.queries, 0)
	n.budgetUsed = 0
	c.rebuildHostsLocked()
	c.mu.Unlock()

	// Wake blocked producers (their pushes convert to drops), then
	// salvage what the corpse still had queued.
	n.in.fail()
	items := n.in.drain()
	if cur := n.current; cur.flush != nil || cur.stream != "" {
		// The item that was being processed when the final crash hit. If
		// it was never retried it is presumed innocent and salvaged; an
		// item that kept crashing the worker through every restart is
		// poison and is dropped instead of infecting a survivor.
		if cur.retries == 0 {
			items = append([]work{cur}, items...)
		} else if cur.flush != nil {
			close(cur.flush)
		} else {
			n.noteDrop()
		}
		n.current = work{}
	}
	for _, w := range items {
		if w.flush != nil {
			close(w.flush) // the flush can no longer be honoured here
			continue
		}
		c.resendSalvaged(n, w, prevHosts, gained)
	}
}

// resendSalvaged re-routes one tuple rescued from a dead node's queue.
// Partitioned streams re-hash over the surviving hosts (the tuple only
// ever had one copy); broadcast streams deliver only to nodes that just
// gained queries over the stream and were not already hosting it.
func (c *Cluster) resendSalvaged(n *Node, w work, prevHosts, gained map[string]map[int]struct{}) {
	key := lowerKey(w.stream)
	var targets []int
	if c.opts.PartitionColumn != "" {
		c.mu.Lock()
		schema, ok := c.schemas[key]
		hosts := c.sortedHostsLocked(key)
		c.mu.Unlock()
		if !ok || len(hosts) == 0 {
			n.noteDrop()
			return
		}
		idx, err := schema.Tuple.IndexOf(c.opts.PartitionColumn)
		if err != nil {
			n.noteDrop()
			return
		}
		targets = []int{hosts[int(valueHash(w.el.Row[idx])%uint64(len(hosts)))]}
	} else {
		for id := range gained[key] {
			if _, was := prevHosts[key][id]; !was {
				targets = append(targets, id)
			}
		}
	}
	if len(targets) == 0 {
		n.noteDrop()
		return
	}
	delivered := false
	for _, t := range targets {
		if err := c.nodes[t].enqueue(context.Background(),
			work{stream: w.stream, el: w.el, seq: w.seq}, c.opts.Backpressure); err == nil {
			delivered = true
		}
	}
	if delivered {
		atomic.AddInt64(&n.requeued, 1)
		n.met.salvaged.Inc()
	} else {
		n.noteDrop()
	}
}

// settle tracks in-flight recoveries for WaitSettled.
func (c *Cluster) settle(delta int) {
	c.mu.Lock()
	c.recovering += delta
	c.mu.Unlock()
}

// WaitSettled blocks until no node is mid-recovery (restart or
// failover), so tests and drivers can observe a stable topology.
func (c *Cluster) WaitSettled(ctx context.Context) error {
	for {
		c.mu.Lock()
		settled := c.recovering == 0
		if settled {
			for _, n := range c.nodes {
				if NodeState(atomic.LoadInt32(&n.state)) == NodeRestarting {
					settled = false
					break
				}
			}
		}
		c.mu.Unlock()
		if settled {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
}

// Health summarises the cluster's failure state.
type Health struct {
	Nodes       int
	Live        int
	Restarting  int
	Dead        int
	Restarts    int64 // total worker restarts across the cluster
	Failovers   int64 // nodes declared dead with queries migrated away
	Dropped     int64 // tuples shed by backpressure or lost to dead nodes
	Requeued    int64 // tuples salvaged from dead nodes and re-routed
	Suspended   int   // queries quarantined after repeated failures (currently suspended)
	Quarantines int64 // quarantine events since start (survives Resume)
	Errors      int64 // total asynchronous errors recorded
}

// Degraded reports whether the cluster is running below full strength.
func (h Health) Degraded() bool {
	return h.Dead > 0 || h.Restarting > 0 || h.Suspended > 0
}

// Health returns the cluster's current failure summary.
func (c *Cluster) Health() Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	h := Health{Nodes: len(c.nodes), Failovers: c.met.failovers.Value()}
	for _, n := range c.nodes {
		switch NodeState(atomic.LoadInt32(&n.state)) {
		case NodeDead:
			h.Dead++
		case NodeRestarting:
			h.Restarting++
		default:
			h.Live++
		}
		h.Restarts += int64(atomic.LoadInt32(&n.restarts))
		h.Dropped += atomic.LoadInt64(&n.dropped)
		h.Requeued += atomic.LoadInt64(&n.requeued)
		h.Suspended += len(n.engine.SuspendedQueries())
		h.Quarantines += n.engine.Stats().Suspensions
		total, _ := n.errs.counts()
		h.Errors += total
	}
	return h
}

// Errors returns a copy of every node's retained recent errors.
func (c *Cluster) Errors() []NodeError {
	var out []NodeError
	for _, n := range c.nodes {
		out = append(out, n.errs.recent()...)
	}
	return out
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
	"repro/internal/transport"
)

// chaosTransportTuning shrinks the TCP reliability clocks so injected
// faults recover within test time. Suspicion is disabled — partition
// scenarios that should NOT fail over set it here; the failover
// scenario overrides it.
func chaosTransportTuning() transport.Tuning {
	return transport.Tuning{
		HeartbeatEvery:   5 * time.Millisecond,
		SuspectAfter:     -1,
		RetransmitAfter:  30 * time.Millisecond,
		DialTimeout:      50 * time.Millisecond,
		ReconnectBackoff: time.Millisecond,
	}
}

// runDiagnosticsOver drives the 4-node / 4-query diagnostic scenario
// with recovery enabled over a configurable transport. afterRound, when
// set, runs after each ingest round (the chaos scenarios use it to heal
// partitions or await a failover before the final flush).
func runDiagnosticsOver(t *testing.T, mutate func(*Options), inj FaultInjector, afterRound func(round int, c *Cluster)) (map[string]map[int64][]string, *Cluster) {
	t.Helper()
	cat := sharedCatalog(t)
	opts := Options{
		Nodes: 4, Placement: PlaceRoundRobin, MaxRestarts: -1, Faults: inj,
		CheckpointEvery: 5, FlightRecorder: 256,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := New(opts, func(int) *relation.Catalog { return cat })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Gateway().Close()
		c.Close()
	})
	for i := 0; i < 4; i++ {
		if err := c.DeclareStream(eventSchema(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	log := newResultLog()
	for i, q := range diagnosticQueries() {
		node, err := c.Register(q.id, sql.MustParse(q.text), nil, log.sink())
		if err != nil {
			t.Fatal(err)
		}
		if node != i {
			t.Fatalf("query %s placed on node %d, want %d", q.id, node, i)
		}
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		ts := int64(i) * 100
		for s := 0; s < 4; s++ {
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(int64(i%5 + 1)), relation.Time(ts), relation.Float(float64((i*7 + s*13) % 100)),
			}}
			if err := c.Ingest(fmt.Sprintf("s%d", s), el); err != nil {
				t.Fatal(err)
			}
		}
		if afterRound != nil {
			afterRound(i, c)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	return log.snapshot(), c
}

func requireSameResults(t *testing.T, baseline, got map[string]map[int64][]string, scenario string) {
	t.Helper()
	if reflect.DeepEqual(baseline, got) {
		return
	}
	for q, want := range baseline {
		if g := got[q]; !reflect.DeepEqual(want, g) {
			t.Errorf("%s: query %s diverged:\n  baseline: %v\n  got:      %v", scenario, q, want, g)
		}
	}
	for q := range got {
		if _, ok := baseline[q]; !ok {
			t.Errorf("%s: query %s emitted windows the baseline never had", scenario, q)
		}
	}
}

// TestTransportChaosTCPMatchesChannel is the partition-tolerance
// acceptance scenario: the diagnostic workload over the TCP transport —
// clean, under frame chaos (deterministic drops, delays, duplicates,
// reorders), and through healed partitions (one symmetric, one one-way)
// — must produce window sets byte-identical to the fault-free channel
// run, with zero duplicate deliveries.
func TestTransportChaosTCPMatchesChannel(t *testing.T) {
	baseline, _ := runDiagnosticsOver(t, nil, nil, nil)
	if len(baseline) != 4 {
		t.Fatalf("baseline produced results for %d queries, want 4", len(baseline))
	}

	useTCP := func(o *Options) {
		o.Transport = TransportTCP
		o.TransportTuning = chaosTransportTuning()
	}

	clean, _ := runDiagnosticsOver(t, useTCP, nil, nil)
	requireSameResults(t, baseline, clean, "tcp-clean")

	frameChaos := faults.New(1).
		DropFrameAt(faults.AnyNode, 3).
		DropFrameEvery(faults.AnyNode, 17).
		DuplicateFrameEvery(faults.AnyNode, 11).
		ReorderFrameEvery(faults.AnyNode, 13).
		DelayFrameEvery(faults.AnyNode, 19, time.Millisecond)
	chaotic, _ := runDiagnosticsOver(t, useTCP, frameChaos, nil)
	requireSameResults(t, baseline, chaotic, "tcp-frame-chaos")
	for _, k := range []faults.Kind{faults.KindNetDrop, faults.KindNetDup, faults.KindNetReorder, faults.KindNetDelay} {
		if frameChaos.Injected(k) == 0 {
			t.Errorf("frame chaos never injected %v", k)
		}
	}

	partitions := faults.New(1).
		CutLinkAtFrame(1, 5, false). // symmetric cut mid-stream
		CutLinkAtFrame(2, 3, true)   // one-way cut: acks flow, frames vanish
	healed := false
	partitioned, _ := runDiagnosticsOver(t, useTCP, partitions, func(round int, _ *Cluster) {
		if round != 49 || healed {
			return
		}
		healed = true
		// The triggers arm on the links' 5th/3rd written frame; the
		// writer goroutines may lag the ingest loop, so wait until both
		// cuts have actually bitten before healing them — then the
		// sessions resume and the flush barrier can complete.
		waitFor(t, 10*time.Second, func() bool {
			return partitions.LinkCut(1) && partitions.LinkCut(2)
		}, "both partition triggers firing")
		partitions.HealLink(1).HealLink(2)
	})
	requireSameResults(t, baseline, partitioned, "tcp-healed-partition")
	if partitions.Injected(faults.KindNetPartition) == 0 {
		t.Error("the partitions never bit")
	}
}

// TestTransportChaosSuspicionFailover cuts one node's link permanently:
// the failure detector must suspect it, the cluster must fail it over
// through the checkpoint+salvage path (the cut link's undelivered
// frames ride along), and the surviving topology must still produce the
// fault-free window sets.
func TestTransportChaosSuspicionFailover(t *testing.T) {
	baseline, _ := runDiagnosticsOver(t, nil, nil, nil)

	inj := faults.New(1).CutLink(3)
	faulted, c := runDiagnosticsOver(t, func(o *Options) {
		o.Transport = TransportTCP
		tun := chaosTransportTuning()
		tun.SuspectAfter = 60 * time.Millisecond
		o.TransportTuning = tun
	}, inj, func(round int, c *Cluster) {
		if round != 49 {
			return
		}
		// All of s3's tuples sit undelivered on the cut link. Wait for
		// the detector to declare node 3 dead and the migration (restore
		// job + salvage replay) to settle before the final flush.
		waitFor(t, 10*time.Second, func() bool {
			return c.Health().Dead == 1
		}, "suspicion-triggered failover of node 3")
		if err := c.WaitSettled(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	requireSameResults(t, baseline, faulted, "tcp-suspicion-failover")

	h := c.Health()
	if h.Dead != 1 || h.Live != 3 {
		t.Fatalf("health = %+v, want 1 dead / 3 live", h)
	}
	if h.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", h.Failovers)
	}
	if node, ok := c.QueryNode("raw-export"); !ok || node == 3 {
		t.Errorf("raw-export on node %d (ok=%v), want migrated off node 3", node, ok)
	}
	kinds := make(map[string]int)
	for _, ev := range c.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"link_up", "link_suspect", "link_down", "transport_failover", "failover"} {
		if kinds[want] == 0 {
			t.Errorf("flight recorder has no %s event (got %v)", want, kinds)
		}
	}
}

// TestRetryBusyRetriesTransportErrors sits alongside the gateway and
// governance RetryBusy coverage: the typed transport errors are
// transient (links reconnect, sessions resume) and must be retried;
// the first non-retryable error still returns immediately.
func TestRetryBusyRetriesTransportErrors(t *testing.T) {
	for _, transient := range []error{ErrLinkDown, ErrSessionReset} {
		calls := 0
		err := RetryBusy(context.Background(), 5, time.Microsecond, func() error {
			calls++
			if calls < 3 {
				return transient
			}
			return nil
		})
		if err != nil {
			t.Fatalf("%v: RetryBusy = %v, want nil", transient, err)
		}
		if calls != 3 {
			t.Fatalf("%v: fn ran %d times, want 3", transient, calls)
		}
	}

	fatal := errors.New("torn state")
	calls := 0
	err := RetryBusy(context.Background(), 5, time.Microsecond, func() error {
		calls++
		if calls == 1 {
			return ErrLinkDown
		}
		return fatal
	})
	if !errors.Is(err, fatal) {
		t.Fatalf("RetryBusy = %v, want the non-retryable error", err)
	}
	if calls != 2 {
		t.Fatalf("fn ran %d times, want 2 (one retry, then stop)", calls)
	}
}

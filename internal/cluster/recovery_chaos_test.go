package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/exastream"
	"repro/internal/faults"
	"repro/internal/recovery"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// recoveryQueries mixes tumbling and overlapping (SLIDE < RANGE)
// windows so replay after a crash regenerates window ends at two
// different cadences — the emit gate must deduplicate both.
func recoveryQueries() []struct{ id, text string } {
	return []struct{ id, text string }{
		{"avg-temp", "SELECT m.sid, AVG(m.val) FROM STREAM s0 [RANGE 1000 SLIDE 1000] AS m GROUP BY m.sid"},
		{"overheat", "SELECT m.sid, m.val FROM STREAM s1 [RANGE 1000 SLIDE 500] AS m WHERE m.val > 30"},
		{"vibration-max", "SELECT MAX(m.val) FROM STREAM s2 [RANGE 1000 SLIDE 1000] AS m"},
		{"raw-export", "SELECT m.sid, m.val FROM STREAM s3 [RANGE 1000 SLIDE 500] AS m"},
	}
}

// runRecoveryDiagnostics drives the 4-node diagnostic scenario with
// recovery configured (checkpointEvery 0 = recovery off). It returns
// the canonical results, a per-(query, windowEnd) delivery count for
// duplicate detection, and the cluster for post-mortem assertions.
func runRecoveryDiagnostics(t *testing.T, checkpointEvery int, inj FaultInjector, beforeFlush func(*Cluster), eng exastream.Options) (map[string]map[int64][]string, map[string]map[int64]int, *Cluster) {
	t.Helper()
	cat := sharedCatalog(t)
	c, err := New(Options{
		Nodes: 4, Placement: PlaceRoundRobin, MaxRestarts: 1, Faults: inj,
		CheckpointEvery: checkpointEvery,
		Engine:          eng,
	}, func(int) *relation.Catalog { return cat })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Gateway().Close()
		c.Close()
	})
	for i := 0; i < 4; i++ {
		if err := c.DeclareStream(eventSchema(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	log := newResultLog()
	var dmu sync.Mutex
	deliveries := make(map[string]map[int64]int)
	counted := func(inner exastream.Sink) exastream.Sink {
		return func(q string, end int64, sch relation.Schema, rows []relation.Tuple) {
			dmu.Lock()
			m := deliveries[q]
			if m == nil {
				m = make(map[int64]int)
				deliveries[q] = m
			}
			m[end]++
			dmu.Unlock()
			inner(q, end, sch, rows)
		}
	}
	for i, q := range recoveryQueries() {
		node, err := c.Register(q.id, sql.MustParse(q.text), nil, counted(log.sink()))
		if err != nil {
			t.Fatal(err)
		}
		if node != i {
			t.Fatalf("query %s placed on node %d, want %d", q.id, node, i)
		}
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		ts := int64(i) * 100
		for s := 0; s < 4; s++ {
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(int64(i%5 + 1)), relation.Time(ts), relation.Float(float64((i*7 + s*13) % 100)),
			}}
			if err := c.Ingest(fmt.Sprintf("s%d", s), el); err != nil {
				t.Fatal(err)
			}
		}
	}
	if beforeFlush != nil {
		beforeFlush(c)
	}
	if err := c.WaitSettled(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	return log.snapshot(), deliveries, c
}

// TestRecoveryChaosExactlyOnceAcrossFailover is the acceptance scenario
// for pulse-aligned checkpoint/restore: with crash-during-checkpoint,
// torn-checkpoint, crash-after-emit-before-ack, and two worker panics
// (the second exhausting the restart budget and forcing a failover) all
// injected into one run, the flushed window set of every query must be
// identical to a fault-free run — no window lost, none delivered twice.
func TestRecoveryChaosExactlyOnceAcrossFailover(t *testing.T) {
	plain, _, _ := runRecoveryDiagnostics(t, 0, nil, nil, exastream.Options{})
	if len(plain) != 4 {
		t.Fatalf("recovery-off baseline produced results for %d queries, want 4", len(plain))
	}

	// Fault-free with recovery on: checkpoints and the emit gate must be
	// invisible when nothing crashes.
	baseline, _, _ := runRecoveryDiagnostics(t, 8, nil, nil, exastream.Options{})
	if !reflect.DeepEqual(plain, baseline) {
		for q, want := range plain {
			if got := baseline[q]; !reflect.DeepEqual(want, got) {
				t.Errorf("query %s diverged with recovery enabled (fault-free):\n  off: %v\n  on:  %v", q, want, got)
			}
		}
	}

	// The chaos run. Round-robin hosting: avg-temp on 0, overheat on 1,
	// vibration-max on 2, raw-export on 3.
	//  - node 3 panics twice: the first crash restarts (restore + replay,
	//    no checkpoint exists yet), the second exhausts MaxRestarts=1 and
	//    fails raw-export over to a survivor with checkpoint + feed.
	//  - node 2 crashes during its first checkpoint attempt: the state
	//    was exported but never committed, so the rebuild replays the
	//    whole retained log.
	//  - node 1's first checkpoint is torn mid-write (commit fails
	//    verification, log kept), and it crashes right after delivering
	//    overheat's third window — the duplicate the replay regenerates
	//    must be suppressed by the gate's high-water mark.
	inj := faults.New(7).
		PanicAt(3, 5).PanicAt(3, 20).
		CrashAtCheckpoint(2, 1).
		TearCheckpointAt(1, 1).
		CrashAfterEmit("overheat", 3)
	faulted, deliveries, c := runRecoveryDiagnostics(t, 8, inj, func(c *Cluster) {
		waitFor(t, 10*time.Second, func() bool {
			return c.Health().Dead == 1
		}, "failover of node 3")
	}, exastream.Options{})

	if got := inj.Injected(faults.KindPanic); got != 2 {
		t.Errorf("injected %d worker panics, want 2", got)
	}
	if got := inj.Injected(faults.KindCrashCheckpoint); got != 1 {
		t.Errorf("injected %d checkpoint crashes, want 1", got)
	}
	if got := inj.Injected(faults.KindTornCheckpoint); got != 1 {
		t.Errorf("injected %d torn checkpoints, want 1", got)
	}
	if got := inj.Injected(faults.KindCrashEmit); got != 1 {
		t.Errorf("injected %d post-emit crashes, want 1", got)
	}

	h := c.Health()
	if h.Dead != 1 || h.Live != 3 {
		t.Fatalf("health = %+v, want 1 dead / 3 live", h)
	}
	if h.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", h.Failovers)
	}
	if h.Dropped != 0 {
		t.Errorf("dropped %d tuples, want 0 (salvage + replay must cover every crash)", h.Dropped)
	}
	for _, q := range recoveryQueries() {
		node, ok := c.QueryNode(q.id)
		if !ok {
			t.Fatalf("query %s lost", q.id)
		}
		if node == 3 {
			t.Errorf("query %s still hosted on the dead node", q.id)
		}
	}

	// Exactly-once: no (query, windowEnd) delivered more than once, and
	// the full result sets match the fault-free run.
	for q, ends := range deliveries {
		for end, n := range ends {
			if n > 1 {
				t.Errorf("query %s window %d delivered %d times", q, end, n)
			}
		}
	}
	if !reflect.DeepEqual(baseline, faulted) {
		for q, want := range baseline {
			if got := faulted[q]; !reflect.DeepEqual(want, got) {
				t.Errorf("query %s diverged under chaos:\n  baseline: %v\n  faulted:  %v", q, want, got)
			}
		}
	}

	snap := c.TelemetrySnapshot()
	if got := snap.Counters["recovery.checkpoints"]; got < 1 {
		t.Errorf("recovery.checkpoints = %d, want >= 1", got)
	}
	if got := snap.Counters["recovery.torn"]; got != 1 {
		t.Errorf("recovery.torn = %d, want 1", got)
	}
	if got := snap.Counters["recovery.restores"]; got < 2 {
		t.Errorf("recovery.restores = %d, want >= 2 (two rebuilds and one failover)", got)
	}
	if got := snap.Counters["recovery.replayed"]; got < 1 {
		t.Errorf("recovery.replayed = %d, want >= 1", got)
	}
	if got := snap.Counters["recovery.deduped_windows"]; got < 1 {
		t.Errorf("recovery.deduped_windows = %d, want >= 1 (the re-emitted windows must be suppressed)", got)
	}
}

// recoveryChaosInjector builds a fresh copy of the acceptance
// scenario's fault schedule (injectors are stateful, so runs that
// should see identical faults each need their own instance).
func recoveryChaosInjector() FaultInjector {
	return faults.New(7).
		PanicAt(3, 5).PanicAt(3, 20).
		CrashAtCheckpoint(2, 1).
		TearCheckpointAt(1, 1).
		CrashAfterEmit("overheat", 3)
}

// TestRecoveryChaosVectorizedSnapshotParity extends the failover
// acceptance scenario to the columnar execution path: with Vectorized
// pinned on and off, the same chaos schedule must deliver identical
// window sets, and the wCache batches each node checkpoints must
// serialize byte-identically between the two paths — the columnar
// transpose a vectorized window materializes is runtime-only state
// (an unexported cell gob skips) and must never leak into durable
// snapshots or change what a restore rebuilds.
func TestRecoveryChaosVectorizedSnapshotParity(t *testing.T) {
	waitDead := func(c *Cluster) {
		waitFor(t, 10*time.Second, func() bool {
			return c.Health().Dead == 1
		}, "failover of node 3")
	}
	shared := func(vec exastream.VecMode) exastream.Options {
		// ShareWindows routes materialisation through wCache, so the
		// checkpoints below carry cached batches to compare.
		return exastream.Options{Vectorized: vec, ShareWindows: true}
	}
	baseline, _, _ := runRecoveryDiagnostics(t, 8, nil, nil, shared(exastream.VecOn))
	vecRes, _, cVec := runRecoveryDiagnostics(t, 8, recoveryChaosInjector(), waitDead, shared(exastream.VecOn))
	rowRes, _, cRow := runRecoveryDiagnostics(t, 8, recoveryChaosInjector(), waitDead, shared(exastream.VecOff))

	// Content identity across the crash, on both paths.
	if !reflect.DeepEqual(baseline, vecRes) {
		t.Error("vectorized chaos run diverged from the fault-free run")
	}
	if !reflect.DeepEqual(vecRes, rowRes) {
		t.Error("vectorized and row-path chaos runs diverged")
	}

	// Byte identity: index every cached window in each cluster's latest
	// checkpoints and compare the gob encoding of matched batches. The
	// Batch struct carries no maps, so its gob form is deterministic;
	// any columnar residue in the vectorized run's snapshots would show
	// up as a byte difference here.
	gobBatch := func(b stream.Batch) []byte {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(b); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	index := func(c *Cluster) map[string]stream.Batch {
		m := make(map[string]stream.Batch)
		for node := 0; node < 4; node++ {
			ck := c.rec.Latest(node)
			if ck == nil {
				continue
			}
			for _, cw := range ck.Engine.WCache {
				key := fmt.Sprintf("%d/%s/%d/%d/%d", node, cw.Stream,
					cw.Spec.RangeMS, cw.Spec.SlideMS, cw.Batch.WindowID)
				m[key] = cw.Batch
			}
		}
		return m
	}
	vecWins, rowWins := index(cVec), index(cRow)
	matched := 0
	for key, vb := range vecWins {
		rb, ok := rowWins[key]
		if !ok {
			continue
		}
		matched++
		if !bytes.Equal(gobBatch(vb), gobBatch(rb)) {
			t.Errorf("cached window %s serialized differently on the vectorized path", key)
		}
	}
	if matched == 0 {
		t.Fatal("no cached windows matched between the two runs; the byte comparison exercised nothing")
	}

	// Restore identity: an encode/decode round trip of a vectorized
	// node's checkpoint must rebuild every cached batch with identical
	// rows and an identical serialized form.
	roundTripped := false
	for node := 0; node < 4; node++ {
		ck := cVec.rec.Latest(node)
		if ck == nil || len(ck.Engine.WCache) == 0 {
			continue
		}
		blob, err := recovery.Encode(ck)
		if err != nil {
			t.Fatal(err)
		}
		back, err := recovery.Decode(blob)
		if err != nil {
			t.Fatal(err)
		}
		for i, cw := range ck.Engine.WCache {
			got := back.Engine.WCache[i]
			if !reflect.DeepEqual(cw.Batch.Rows, got.Batch.Rows) {
				t.Errorf("node %d window %d: restored rows differ", node, cw.Batch.WindowID)
			}
			if !bytes.Equal(gobBatch(cw.Batch), gobBatch(got.Batch)) {
				t.Errorf("node %d window %d: restored batch re-serializes differently", node, cw.Batch.WindowID)
			}
		}
		roundTripped = true
	}
	if !roundTripped {
		t.Fatal("no vectorized checkpoint carried wCache batches; the round trip exercised nothing")
	}
}

// TestDelayedParallelPoolPreservesWindowOrder is the satellite ordering
// regression: with DelayEvery skewing worker timing and the engine's
// parallel ready-window pool enabled, every query's sink must still see
// its window ends in strictly increasing order, with results identical
// to a sequential fault-free run.
func TestDelayedParallelPoolPreservesWindowOrder(t *testing.T) {
	queries := []struct{ id, text string }{
		{"export-a", "SELECT m.sid, m.val FROM STREAM msmt [RANGE 1000 SLIDE 500] AS m"},
		{"max-a", "SELECT MAX(m.val) FROM STREAM msmt [RANGE 1000 SLIDE 500] AS m"},
		{"export-b", "SELECT m.sid, m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m WHERE m.sid < 5"},
		{"avg-b", "SELECT m.sid, AVG(m.val) FROM STREAM msmt [RANGE 1000 SLIDE 500] AS m GROUP BY m.sid"},
	}
	run := func(parallelism int, inj FaultInjector) (map[string][]int64, map[string]map[int64][]string) {
		t.Helper()
		c := newCluster(t, 2, Options{
			Placement: PlaceRoundRobin, Faults: inj,
			Engine: exastream.Options{Parallelism: parallelism},
		})
		log := newResultLog()
		var mu sync.Mutex
		order := make(map[string][]int64)
		ordered := func(inner exastream.Sink) exastream.Sink {
			return func(q string, end int64, sch relation.Schema, rows []relation.Tuple) {
				mu.Lock()
				order[q] = append(order[q], end)
				mu.Unlock()
				inner(q, end, sch, rows)
			}
		}
		for _, q := range queries {
			if _, err := c.Register(q.id, sql.MustParse(q.text), nil, ordered(log.sink())); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 120; i++ {
			ts := int64(i) * 50
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(int64(i%10 + 1)), relation.Time(ts), relation.Float(float64(i % 37)),
			}}
			if err := c.Ingest("msmt", el); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return order, log.snapshot()
	}

	_, baseline := run(-1, nil) // negative parallelism = sequential execution
	inj := faults.New(3).
		DelayEvery(0, 3, 500*time.Microsecond).
		DelayEvery(1, 4, 300*time.Microsecond)
	order, results := run(8, inj)

	if inj.Injected(faults.KindDelay) == 0 {
		t.Fatal("no delays injected; the test exercised nothing")
	}
	for _, q := range queries {
		ends := order[q.id]
		if len(ends) == 0 {
			t.Fatalf("query %s emitted no windows", q.id)
		}
		for i := 1; i < len(ends); i++ {
			if ends[i] <= ends[i-1] {
				t.Errorf("query %s window ends out of order at %d: %v", q.id, i, ends)
				break
			}
		}
	}
	if !reflect.DeepEqual(baseline, results) {
		for q, want := range baseline {
			if got := results[q]; !reflect.DeepEqual(want, got) {
				t.Errorf("query %s diverged under delays+parallelism:\n  sequential: %v\n  parallel:   %v", q, want, got)
			}
		}
	}
}

// TestGatewaySubmitContextAndWaitContext pins the bounded-wait
// semantics: a wedged gateway worker makes the queue observable as
// full, Submit fails fast with ErrGatewayBusy, SubmitContext and
// WaitContext give up with ctx.Err(), and a ticket abandoned by
// WaitContext can still be waited on later.
func TestGatewaySubmitContextAndWaitContext(t *testing.T) {
	c := newCluster(t, 1, Options{GatewayQueue: 1})
	g := c.Gateway()
	started := make(chan struct{})
	release := make(chan struct{})
	wedged := errors.New("wedged registration")
	tkWedge, err := g.SubmitFunc("wedge", func() (int, error) {
		close(started)
		<-release
		return -1, wedged
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker is now parked inside the wedge; the queue is empty

	var n int64
	const query = "SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"
	tk2, err := g.Submit("q2", query, nil, countSink(&n))
	if err != nil {
		t.Fatal(err) // queue had capacity 1
	}
	if _, err := g.Submit("q3", query, nil, countSink(&n)); !errors.Is(err, ErrGatewayBusy) {
		t.Fatalf("Submit on a full queue = %v, want ErrGatewayBusy", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer scancel()
	if _, err := g.SubmitContext(sctx, "q4", query, nil, countSink(&n)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SubmitContext on a full queue = %v, want deadline exceeded", err)
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer wcancel()
	if _, err := tkWedge.WaitContext(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitContext on a pending ticket = %v, want deadline exceeded", err)
	}
	if tkWedge.Done() {
		t.Fatal("ticket done while its registration is still wedged")
	}

	close(release)
	if _, err := tkWedge.Wait(); !errors.Is(err, wedged) {
		t.Fatalf("Wait after abandoned WaitContext = %v, want the registration error", err)
	}
	if node, err := tk2.Wait(); err != nil || node != 0 {
		t.Fatalf("queued submission Wait = %d, %v; want node 0", node, err)
	}
	lctx, lcancel := context.WithTimeout(context.Background(), time.Second)
	defer lcancel()
	tk5, err := g.SubmitContext(lctx, "q5", query, nil, countSink(&n))
	if err != nil {
		t.Fatal(err)
	}
	if node, err := tk5.Wait(); err != nil || node != 0 {
		t.Fatalf("SubmitContext after drain Wait = %d, %v; want node 0", node, err)
	}
}

func TestRetryBusyBacksOffOnlyOnBusy(t *testing.T) {
	ctx := context.Background()
	calls := 0
	err := RetryBusy(ctx, 5, time.Microsecond, func() error {
		calls++
		if calls < 3 {
			return ErrGatewayBusy
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("transient busy: err=%v calls=%d, want nil after 3", err, calls)
	}

	calls = 0
	err = RetryBusy(ctx, 3, time.Microsecond, func() error {
		calls++
		return fmt.Errorf("submit: %w", ErrGatewayBusy)
	})
	if !errors.Is(err, ErrGatewayBusy) || calls != 3 {
		t.Fatalf("persistent busy: err=%v calls=%d, want wrapped busy after 3", err, calls)
	}

	boom := errors.New("boom")
	calls = 0
	if err := RetryBusy(ctx, 5, time.Microsecond, func() error { calls++; return boom }); !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("non-busy error: err=%v calls=%d, want immediate return", err, calls)
	}

	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls = 0
	err = RetryBusy(cctx, 5, maxRetryBackoff, func() error { calls++; return ErrGatewayBusy })
	if !errors.Is(err, context.Canceled) || calls != 1 {
		t.Fatalf("cancelled ctx: err=%v calls=%d, want ctx.Err after first attempt", err, calls)
	}
}

// runFailoverDurability drives a 2-node scenario where node 1's only
// query fails over to node 0 (the sole survivor — a deterministic
// target) and extra post-failover traffic then crashes node 0 once.
// mid runs between the main feed and the extra traffic.
func runFailoverDurability(t *testing.T, inj FaultInjector, mid func(*Cluster)) (map[string]map[int64][]string, *Cluster) {
	t.Helper()
	cat := sharedCatalog(t)
	c, err := New(Options{
		Nodes: 2, Placement: PlaceRoundRobin, MaxRestarts: 1, Faults: inj,
		CheckpointEvery: 8,
	}, func(int) *relation.Catalog { return cat })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Gateway().Close()
		c.Close()
	})
	for _, s := range []string{"s0", "s1"} {
		if err := c.DeclareStream(eventSchema(s)); err != nil {
			t.Fatal(err)
		}
	}
	log := newResultLog()
	for i, q := range []struct{ id, text string }{
		{"q0", "SELECT m.sid, m.val FROM STREAM s0 [RANGE 1000 SLIDE 500] AS m"},
		{"q1", "SELECT m.sid, m.val FROM STREAM s1 [RANGE 1000 SLIDE 500] AS m"},
	} {
		node, err := c.Register(q.id, sql.MustParse(q.text), nil, log.sink())
		if err != nil {
			t.Fatal(err)
		}
		if node != i {
			t.Fatalf("query %s placed on node %d, want %d", q.id, node, i)
		}
	}
	feed := func(s string, from, to int) {
		for i := from; i < to; i++ {
			ts := int64(i) * 100
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(int64(i%5 + 1)), relation.Time(ts), relation.Float(float64((i * 7) % 100)),
			}}
			if err := c.Ingest(s, el); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed("s0", 0, 50)
	feed("s1", 0, 50)
	if mid != nil {
		mid(c)
	}
	// Extra s0-only traffic: in the faulted run it drives node 0 past
	// its injected crash AFTER it absorbed the migration.
	feed("s0", 50, 60)
	if err := c.WaitSettled(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	return log.snapshot(), c
}

// TestRecoveryChaosFailoverMigrationDurableOnTarget is the regression
// for a durability hole in the failover protocol: the migrated replay
// feed (victim log + salvaged queue) exists nowhere the target can
// reach once consumed, so until the target commits a checkpoint, a
// crash there rebuilt from a pre-migration cut and silently lost the
// restored queries' open-window state (their flush-only windows
// vanished). runRestore now cuts a checkpoint the moment the migration
// is absorbed, making a post-failover target crash lossless.
func TestRecoveryChaosFailoverMigrationDurableOnTarget(t *testing.T) {
	baseline, _ := runFailoverDurability(t, nil, nil)
	if len(baseline["q1"]) == 0 {
		t.Fatal("baseline delivered no q1 windows")
	}

	// Node 1 panics twice (second exhausts MaxRestarts=1 → q1 fails over
	// to node 0); node 0 then panics on its 55th tuple — the extra s0
	// traffic — after the migration landed.
	inj := faults.New(3).PanicAt(1, 3).PanicAt(1, 6).PanicAt(0, 55)
	faulted, c := runFailoverDurability(t, inj, func(c *Cluster) {
		waitFor(t, 10*time.Second, func() bool {
			return c.Health().Dead == 1
		}, "failover of node 1")
		if err := c.WaitSettled(context.Background()); err != nil {
			t.Fatal(err)
		}
		// The migration must already be durable on the target: node 0's
		// latest checkpoint carries q1's window state and an s1 cursor —
		// neither can come from node 0's own traffic (s1 never routed
		// through its queue).
		ck := c.rec.Latest(0)
		if ck == nil {
			t.Fatal("no checkpoint on the failover target after the migration settled")
		}
		if ck.QueryState("q1") == nil {
			t.Fatal("target checkpoint does not carry the migrated query's state")
		}
		if ck.Cursors["s1"] == 0 {
			t.Fatal("target checkpoint cursors do not cover the migrated feed's stream")
		}
	})

	if got := inj.Injected(faults.KindPanic); got != 3 {
		t.Errorf("injected %d panics, want 3", got)
	}
	if h := c.Health(); h.Dead != 1 || h.Failovers != 1 {
		t.Fatalf("health = %+v, want exactly one dead node and one failover", h)
	}
	if !reflect.DeepEqual(baseline, faulted) {
		for q, want := range baseline {
			if got := faulted[q]; !reflect.DeepEqual(want, got) {
				t.Errorf("query %s diverged after post-failover target crash:\n  baseline: %v\n  faulted:  %v", q, want, got)
			}
		}
	}
}

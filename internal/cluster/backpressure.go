package cluster

import (
	"context"
	"sync"
)

// Backpressure selects what Ingest does when a worker's bounded queue is
// full. The paper's deployment ran workers near saturation; an explicit
// policy replaces the previous unbounded block (and follows the
// bounded-memory criteria of Schiff & Özçep, arXiv:2007.16040).
type Backpressure int

const (
	// BackpressureBlock waits for queue space, honouring the context's
	// cancellation/deadline. The default.
	BackpressureBlock Backpressure = iota
	// BackpressureDropNewest discards the incoming tuple when the queue
	// is full (counted in NodeStats.Dropped).
	BackpressureDropNewest
	// BackpressureDropOldest evicts the oldest queued tuple to make room
	// for the incoming one (the eviction is counted in
	// NodeStats.Dropped); fresh data wins over stale data.
	BackpressureDropOldest
)

func (b Backpressure) String() string {
	switch b {
	case BackpressureDropNewest:
		return "drop-newest"
	case BackpressureDropOldest:
		return "drop-oldest"
	default:
		return "block"
	}
}

// pushResult reports what a push did with the work item.
type pushResult int

const (
	pushQueued  pushResult = iota
	pushDropped            // DropNewest: incoming item discarded
	pushEvicted            // DropOldest: an older item was discarded
)

// inbox is a node's bounded work queue. Unlike a raw channel it supports
// front-of-queue eviction (DropOldest), requeueing an in-flight item
// after a worker restart (pushFront), salvaging queued work when a node
// dies (drain), and waking blocked producers on shutdown — the
// send-on-closed-channel panic the old implementation risked cannot
// happen here.
//
// Flush markers always fit regardless of capacity (they carry no data
// and must not be subject to load shedding) and are never evicted.
type inbox struct {
	mu       sync.Mutex
	buf      []work
	capacity int
	closed   bool          // cluster shut down: pushes fail with ErrClusterClosed
	failed   bool          // node declared dead: pushes fail with errNodeDown
	halted   bool          // worker stopped for transport failover: pop ends, items stay
	itemCh   chan struct{} // closed when an item arrives; consumer waits on it
	spaceCh  chan struct{} // closed when space frees up; producers wait on it
}

func newInbox(capacity int) *inbox {
	return &inbox{capacity: capacity}
}

// push enqueues w under the given policy. It returns what happened to
// the item, or an error: ctx.Err() for an expired Block wait,
// ErrClusterClosed / errNodeDown when the inbox is down.
func (q *inbox) push(ctx context.Context, w work, policy Backpressure) (pushResult, error) {
	for {
		// Check cancellation before taking the lock: a producer woken by a
		// freed slot could otherwise keep losing the race for it and spin
		// here long after its context expired — and a push with an
		// already-dead context must not enqueue at all.
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		q.mu.Lock()
		if q.closed {
			q.mu.Unlock()
			return 0, ErrClusterClosed
		}
		if q.failed {
			q.mu.Unlock()
			return 0, errNodeDown
		}
		if len(q.buf) < q.capacity || w.flush != nil {
			q.appendLocked(w)
			q.mu.Unlock()
			return pushQueued, nil
		}
		switch policy {
		case BackpressureDropNewest:
			q.mu.Unlock()
			return pushDropped, nil
		case BackpressureDropOldest:
			if q.evictOldestLocked() {
				q.appendLocked(w)
				q.mu.Unlock()
				return pushEvicted, nil
			}
			// Queue somehow full of unevictable flush markers; fall
			// through to a blocking wait.
		}
		if q.spaceCh == nil {
			q.spaceCh = make(chan struct{})
		}
		ch := q.spaceCh
		q.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// appendLocked adds w and wakes the consumer.
func (q *inbox) appendLocked(w work) {
	q.buf = append(q.buf, w)
	if q.itemCh != nil {
		close(q.itemCh)
		q.itemCh = nil
	}
}

// evictOldestLocked removes the oldest evictable item. Flush markers
// and restore jobs are never shed: both are control items whose loss
// would wedge a waiter or lose migrated queries.
func (q *inbox) evictOldestLocked() bool {
	for i := range q.buf {
		if q.buf[i].flush == nil && q.buf[i].restore == nil {
			q.buf = append(q.buf[:i], q.buf[i+1:]...)
			return true
		}
	}
	return false
}

// pushFront requeues an item at the head of the queue (retry of the
// in-flight item after a worker restart, or a restore job that must run
// before queued tuples). Capacity is ignored: retried items were
// already admitted once and control items are never shed. Returns false
// when the inbox is down and the item could not be accepted.
func (q *inbox) pushFront(w work) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.failed {
		if w.flush != nil {
			close(w.flush)
		}
		return false
	}
	q.buf = append([]work{w}, q.buf...)
	if q.itemCh != nil {
		close(q.itemCh)
		q.itemCh = nil
	}
	return true
}

// pop blocks until an item is available. ok=false means the inbox is
// closed (or failed) and drained — or halted, in which case queued
// items stay put for the failover's drain: the worker should exit.
func (q *inbox) pop() (work, bool) {
	for {
		q.mu.Lock()
		if q.halted {
			q.mu.Unlock()
			return work{}, false
		}
		if len(q.buf) > 0 {
			w := q.buf[0]
			q.buf = q.buf[1:]
			if q.spaceCh != nil {
				close(q.spaceCh)
				q.spaceCh = nil
			}
			q.mu.Unlock()
			return w, true
		}
		if q.closed || q.failed {
			q.mu.Unlock()
			return work{}, false
		}
		if q.itemCh == nil {
			q.itemCh = make(chan struct{})
		}
		ch := q.itemCh
		q.mu.Unlock()
		<-ch
	}
}

// length reports the current queue depth.
func (q *inbox) length() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf)
}

// halt stops the worker without condemning the queue: pop returns
// false immediately (the consumer exits cleanly), queued items stay for
// a later drain, and pushes still land in the buffer. It is the first
// step of a transport-triggered failover — the node must stop
// processing before its state is migrated, or a window could execute on
// both sides of the handoff.
func (q *inbox) halt() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.halted = true
	if q.itemCh != nil {
		close(q.itemCh)
		q.itemCh = nil
	}
}

// requeue appends w ignoring capacity: used to fold a torn-down
// transport link's in-flight tuples back into the inbox so failover
// salvages them with the rest (they were admitted once already).
// Returns false when the inbox is down.
func (q *inbox) requeue(w work) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.failed {
		if w.flush != nil {
			close(w.flush)
		}
		return false
	}
	q.appendLocked(w)
	return true
}

// fail marks the inbox dead (node failure): blocked producers wake and
// their pushes convert to drops; queued items stay for drain.
func (q *inbox) fail() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.failed = true
	q.wakeAllLocked()
}

// close marks the inbox shut down (cluster Close). The worker drains
// what remains and exits.
func (q *inbox) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.wakeAllLocked()
}

func (q *inbox) wakeAllLocked() {
	if q.itemCh != nil {
		close(q.itemCh)
		q.itemCh = nil
	}
	if q.spaceCh != nil {
		close(q.spaceCh)
		q.spaceCh = nil
	}
}

// drain removes and returns everything still queued (salvage on node
// death).
func (q *inbox) drain() []work {
	q.mu.Lock()
	defer q.mu.Unlock()
	items := q.buf
	q.buf = nil
	return items
}

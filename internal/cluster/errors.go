package cluster

import (
	"errors"
	"sync"
)

// Typed errors of the fault-tolerant runtime. Callers branch on these
// with errors.Is.
var (
	// ErrClusterClosed is returned by Ingest/Flush/Register after Close.
	ErrClusterClosed = errors.New("cluster: closed")
	// ErrGatewayBusy is returned by Gateway.Submit when the submission
	// queue is full; the caller should back off and retry.
	ErrGatewayBusy = errors.New("cluster: gateway queue full")
	// ErrNoLiveNodes is returned by Register when every worker is dead:
	// the cluster degrades gracefully instead of placing queries on
	// corpses.
	ErrNoLiveNodes = errors.New("cluster: no live nodes")
	// ErrOverBudget is returned by Register when no live node has
	// headroom for the query's memory budget under Options.NodeMemBudget.
	// It is retryable: capacity frees as queries unregister or nodes
	// return.
	ErrOverBudget = errors.New("cluster: no node can admit the query's memory budget")
	// ErrTenantQuota is returned by Register/IngestTenant when the
	// submitting tenant is over its admission quota (concurrent queries
	// or token-bucket rate). It is retryable: the bucket refills.
	ErrTenantQuota = errors.New("cluster: tenant quota exceeded")

	// errNodeDown is the internal signal that a push hit a dead node's
	// inbox; the caller converts it into a dropped-tuple count.
	errNodeDown = errors.New("cluster: node down")
)

// NodeError is one asynchronous error recorded by a worker. QueryID is
// set when the error is attributable to a single continuous query
// (execution failures routed through the engine's error hook) and empty
// for node-level errors (ingest failures, worker panics).
type NodeError struct {
	Node    int
	QueryID string
	Err     error
}

// errRingSize bounds the per-node ring of retained errors. Older errors
// are evicted (and counted) rather than silently discarded, replacing
// the previous lossy 16-slot channel.
const errRingSize = 64

// errorRing is a bounded buffer of recent errors with total/evicted
// counters. It never blocks and never loses count.
type errorRing struct {
	mu      sync.Mutex
	buf     []NodeError
	total   int64
	evicted int64
}

func (r *errorRing) add(e NodeError) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) >= errRingSize {
		n := copy(r.buf, r.buf[1:])
		r.buf = r.buf[:n]
		r.evicted++
	}
	r.buf = append(r.buf, e)
}

// pop consumes the oldest retained error.
func (r *errorRing) pop() (NodeError, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) == 0 {
		return NodeError{}, false
	}
	e := r.buf[0]
	n := copy(r.buf, r.buf[1:])
	r.buf = r.buf[:n]
	return e, true
}

// recent returns a copy of the retained errors, oldest first.
func (r *errorRing) recent() []NodeError {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]NodeError, len(r.buf))
	copy(out, r.buf)
	return out
}

// counts reports how many errors were recorded and how many of those
// were evicted from the ring.
func (r *errorRing) counts() (total, evicted int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total, r.evicted
}

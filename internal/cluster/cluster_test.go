package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/exastream"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

func sharedCatalog(t *testing.T) *relation.Catalog {
	t.Helper()
	cat := relation.NewCatalog()
	sensors, err := cat.Create("sensors", relation.NewSchema(
		relation.Col("sid", relation.TInt),
		relation.Col("tid", relation.TInt),
	))
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 100; i++ {
		sensors.MustInsert(relation.Tuple{relation.Int(i), relation.Int(i % 10)})
	}
	return cat
}

func msmtSchema() stream.Schema {
	return stream.Schema{
		Name: "msmt",
		Tuple: relation.NewSchema(
			relation.Col("sid", relation.TInt),
			relation.Col("ts", relation.TTime),
			relation.Col("val", relation.TFloat),
		),
		TSCol: "ts",
	}
}

func newCluster(t *testing.T, nodes int, opts Options) *Cluster {
	t.Helper()
	opts.Nodes = nodes
	cat := sharedCatalog(t)
	c, err := New(opts, func(int) *relation.Catalog { return cat })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Gateway().Close()
		c.Close()
	})
	if err := c.DeclareStream(msmtSchema()); err != nil {
		t.Fatal(err)
	}
	return c
}

func countSink(counter *int64) exastream.Sink {
	return func(_ string, _ int64, _ relation.Schema, rows []relation.Tuple) {
		atomic.AddInt64(counter, int64(len(rows)))
	}
}

func pump(t *testing.T, c *Cluster, n int, stepMS int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		ts := int64(i) * stepMS
		el := stream.Timestamped{TS: ts, Row: relation.Tuple{
			relation.Int(int64(i%10 + 1)), relation.Time(ts), relation.Float(float64(i)),
		}}
		if err := c.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := New(Options{Nodes: 0}, func(int) *relation.Catalog { return relation.NewCatalog() }); err == nil {
		t.Error("zero nodes accepted")
	}
	c := newCluster(t, 2, Options{})
	if err := c.DeclareStream(msmtSchema()); err == nil {
		t.Error("duplicate stream accepted")
	}
	if err := c.Ingest("nope", stream.Timestamped{}); err == nil {
		t.Error("unknown stream accepted")
	}
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	var n int64
	if _, err := c.Register("q", q, nil, countSink(&n)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("q", q, nil, countSink(&n)); err == nil {
		t.Error("duplicate query accepted")
	}
	if err := c.Unregister("missing"); err == nil {
		t.Error("unknown unregister accepted")
	}
}

func TestClusterArchitecture(t *testing.T) {
	// Figure 2 end-to-end: register through the async gateway, scheduler
	// places on workers, stream engines execute, results flow to sinks.
	c := newCluster(t, 4, Options{Placement: PlaceLeastLoaded})
	var rows int64
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		text := fmt.Sprintf("SELECT m.sid, m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m WHERE m.sid = %d", i+1)
		tk, err := c.Gateway().Submit(fmt.Sprintf("diag-%d", i), text, nil, countSink(&rows))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	placed := map[int]int{}
	for _, tk := range tickets {
		node, err := tk.Wait()
		if err != nil {
			t.Fatal(err)
		}
		placed[node]++
		if !tk.Done() {
			t.Error("Done false after Wait")
		}
	}
	// Load-based placement over 4 idle nodes spreads 8 queries 2 each.
	for node, n := range placed {
		if n != 2 {
			t.Errorf("node %d got %d queries: %v", node, n, placed)
		}
	}
	pump(t, c, 200, 100)
	if rows == 0 {
		t.Fatal("no rows delivered")
	}
	// Each node's engine saw work.
	stats := c.Stats()
	busy := 0
	for _, s := range stats {
		if s.Engine.TuplesIn > 0 {
			busy++
		}
	}
	if busy != 4 {
		t.Errorf("busy nodes = %d, want 4: %+v", busy, stats)
	}
}

func TestGatewayParseError(t *testing.T) {
	c := newCluster(t, 1, Options{})
	tk, err := c.Gateway().Submit("bad", "SELEKT broken", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err == nil {
		t.Error("parse error not surfaced")
	}
	c.Gateway().Close()
	if _, err := c.Gateway().Submit("late", "SELECT 1", nil, nil); err == nil {
		t.Error("submit after close accepted")
	}
}

func TestRoundRobinPlacement(t *testing.T) {
	c := newCluster(t, 3, Options{Placement: PlaceRoundRobin})
	var n int64
	for i := 0; i < 6; i++ {
		q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
		node, err := c.Register(fmt.Sprintf("q%d", i), q, nil, countSink(&n))
		if err != nil {
			t.Fatal(err)
		}
		if node != i%3 {
			t.Errorf("query %d placed on node %d, want %d", i, node, i%3)
		}
	}
}

func TestPartitionedIngestRoutesToOneNode(t *testing.T) {
	c := newCluster(t, 4, Options{PartitionColumn: "sid"})
	var rows int64
	// One query per node so every node hosts the stream.
	for i := 0; i < 4; i++ {
		q := sql.MustParse("SELECT m.sid FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
		if _, err := c.Register(fmt.Sprintf("q%d", i), q, nil, countSink(&rows)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, c, 400, 25)
	// Partitioned routing: total tuples processed across nodes equals the
	// input count (each tuple goes to exactly one node).
	var total int64
	for _, s := range c.Stats() {
		total += s.Tuples
	}
	if total != 400 {
		t.Fatalf("partitioned ingest processed %d tuples, want 400", total)
	}
	// Same sid always lands on the same node: per-sensor windows stay
	// complete, so every tuple surfaces exactly once overall.
	if rows == 0 {
		t.Fatal("no output rows")
	}
}

func TestBroadcastIngest(t *testing.T) {
	c := newCluster(t, 3, Options{})
	var rows int64
	for i := 0; i < 3; i++ {
		q := sql.MustParse("SELECT m.sid FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
		if _, err := c.Register(fmt.Sprintf("q%d", i), q, nil, countSink(&rows)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, c, 90, 100)
	var total int64
	for _, s := range c.Stats() {
		total += s.Tuples
	}
	if total != 90*3 {
		t.Fatalf("broadcast processed %d tuple deliveries, want %d", total, 90*3)
	}
}

func TestIngestWithNoListenersIsNoop(t *testing.T) {
	c := newCluster(t, 2, Options{})
	if err := c.Ingest("msmt", stream.Timestamped{TS: 1, Row: relation.Tuple{
		relation.Int(1), relation.Time(1), relation.Float(1),
	}}); err != nil {
		t.Fatal(err)
	}
	for _, s := range c.Stats() {
		if s.Tuples != 0 {
			t.Errorf("tuple delivered with no listeners: %+v", s)
		}
	}
}

func TestUnregisterRebalancesLoadCounters(t *testing.T) {
	c := newCluster(t, 2, Options{Placement: PlaceLeastLoaded})
	var n int64
	q1 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	node1, _ := c.Register("a", q1, nil, countSink(&n))
	q2 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	node2, _ := c.Register("b", q2, nil, countSink(&n))
	if node1 == node2 {
		t.Fatalf("least-loaded placed both on node %d", node1)
	}
	if err := c.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.QueryNode("a"); ok {
		t.Error("query still tracked after unregister")
	}
	stats := c.Stats()
	if stats[node1].Queries != 0 {
		t.Errorf("node %d query count = %d", node1, stats[node1].Queries)
	}
}

func TestManyConcurrentRegistrationsAndIngest(t *testing.T) {
	c := newCluster(t, 8, Options{Placement: PlaceLeastLoaded})
	var rows int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			text := fmt.Sprintf("SELECT m.val FROM STREAM msmt [RANGE 500 SLIDE 500] AS m WHERE m.sid = %d", i%10+1)
			tk, err := c.Gateway().Submit(fmt.Sprintf("q%03d", i), text, nil, countSink(&rows))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := tk.Wait(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	pump(t, c, 1000, 10)
	if rows == 0 {
		t.Fatal("no output")
	}
	// All 64 queries placed 8 per node.
	for _, s := range c.Stats() {
		if s.Queries != 8 {
			t.Errorf("node %d has %d queries", s.Node, s.Queries)
		}
	}
}

// TestLeastLoadedConsidersTupleLoad is the scheduler ablation of
// DESIGN.md §5: with equal query counts, load-based placement steers new
// queries away from the node that has processed more tuples, while
// round-robin ignores load.
func TestLeastLoadedConsidersTupleLoad(t *testing.T) {
	c := newCluster(t, 2, Options{Placement: PlaceLeastLoaded, PartitionColumn: "sid"})
	var n int64
	// One query per node; partitioned ingest sends sid=1 to exactly one
	// of them, loading that node only.
	q1 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	node1, err := c.Register("a", q1, nil, countSink(&n))
	if err != nil {
		t.Fatal(err)
	}
	q2 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	node2, err := c.Register("b", q2, nil, countSink(&n))
	if err != nil {
		t.Fatal(err)
	}
	if node1 == node2 {
		t.Fatalf("both on node %d", node1)
	}
	// Load one node with many tuples of a single sensor.
	for i := 0; i < 500; i++ {
		el := stream.Timestamped{TS: int64(i) * 10, Row: relation.Tuple{
			relation.Int(1), relation.Time(int64(i) * 10), relation.Float(1)}}
		if err := c.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	loaded := 0
	if stats[1].Tuples > stats[0].Tuples {
		loaded = 1
	}
	if stats[loaded].Tuples == stats[1-loaded].Tuples {
		t.Skip("partitioning balanced the load; nothing to distinguish")
	}
	// Unregister one query from each node so counts stay equal, then the
	// next registration must avoid the tuple-loaded node.
	q3 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	node3, err := c.Register("c", q3, nil, countSink(&n))
	if err != nil {
		t.Fatal(err)
	}
	if node3 == loaded {
		t.Errorf("least-loaded placed on the tuple-heavy node %d (loads %d vs %d)",
			node3, stats[loaded].Tuples, stats[1-loaded].Tuples)
	}
}

// Fleet-wide introspection: the cluster aggregates each node engine's
// lag view and flight recorder into one picture and routes EXPLAIN
// requests to the node hosting the query. These back the telemetry
// handler's /queries, /queries/{id}/explain, and /events endpoints.
package cluster

import (
	"fmt"
	"sort"

	"repro/internal/exastream"
	"repro/internal/telemetry"
)

// QueryLags reports every registered query's lag-view row, stamped
// with its node and tenant, with watermark lag recomputed against the
// fleet-wide event-time frontier (the newest window any query
// executed). Sorted by query id.
func (c *Cluster) QueryLags() []telemetry.QueryLag {
	c.mu.Lock()
	type nodeEngine struct {
		id  int
		eng *exastream.Engine
	}
	engines := make([]nodeEngine, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.State() != NodeDead {
			engines = append(engines, nodeEngine{n.ID, n.engine})
		}
	}
	tenants := make(map[string]string, len(c.queries))
	for id, rec := range c.queries {
		tenants[id] = rec.tenant
	}
	c.mu.Unlock()

	var out []telemetry.QueryLag
	for _, ne := range engines {
		for _, lag := range ne.eng.LagView() {
			lag.Node = ne.id
			lag.Tenant = tenants[lag.ID]
			out = append(out, lag)
		}
	}
	var frontier int64
	for _, lag := range out {
		if lag.LastWindowEnd > frontier {
			frontier = lag.LastWindowEnd
		}
	}
	for i := range out {
		if out[i].LastWindowEnd > 0 {
			out[i].WatermarkLagMS = frontier - out[i].LastWindowEnd
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Events merges every node's flight-recorder dump with the
// cluster-level ring (failovers, admission rejections) into one
// timeline ordered by wall time. Empty when recording is disabled.
func (c *Cluster) Events() []telemetry.Event {
	c.mu.Lock()
	recorders := make([]*telemetry.Recorder, 0, len(c.nodes)+1)
	for _, n := range c.nodes {
		recorders = append(recorders, n.rec)
	}
	c.mu.Unlock()
	recorders = append(recorders, c.frec)
	dumps := make([][]telemetry.Event, 0, len(recorders))
	for _, r := range recorders {
		if d := r.Events(); len(d) > 0 {
			dumps = append(dumps, d)
		}
	}
	return telemetry.MergeEvents(dumps...)
}

// ExplainQuery renders the named query's physical plan on the node
// hosting it; analyze adds the observed per-operator stats. A query
// mid-failover (pending restore) cannot be explained until its
// restore job lands.
func (c *Cluster) ExplainQuery(id string, analyze bool) (string, error) {
	c.mu.Lock()
	rec, ok := c.queries[id]
	if !ok {
		c.mu.Unlock()
		return "", fmt.Errorf("cluster: unknown query %q", id)
	}
	if rec.pendingRestore {
		c.mu.Unlock()
		return "", fmt.Errorf("cluster: query %q is mid-failover; retry once its restore lands", id)
	}
	node := rec.node
	eng := c.nodes[node].engine
	c.mu.Unlock()
	text, err := eng.ExplainQuery(id, analyze)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("-- node %d\n%s", node, text), nil
}

// Checkpoint/restore glue between the supervisor and the recovery
// coordinator. With Options.CheckpointEvery > 0 each worker cuts
// pulse-aligned checkpoints of its engine state, keeps its replay log
// current, and crashes recover by restore-and-replay instead of
// re-registering empty queries: a rebuilt or failed-over query resumes
// from the latest checkpoint, re-feeds the logged tuples (idempotent via
// per-stream sequence cursors), and the emit gate guarantees each window
// is delivered exactly once.
package cluster

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/exastream"
	"repro/internal/recovery"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

// restoreJob migrates queries onto a node via its own worker goroutine:
// it is pushed to the front of the target's inbox so the restore runs
// before any queued tuple. The job carries only identities — the state
// to restore from (checkpoint, cursors, replay feed) lives on the query
// records under Cluster.mu, so a crash mid-restore or a second failover
// never loses the state source.
type restoreJob struct {
	victim int
	ids    []string
	// settled guards the job's single settle(-1): a crash inside
	// runRestore retries the job on the rebuilt worker, and a second
	// decrement would drive Cluster.recovering negative and wedge
	// WaitSettled forever.
	settled bool
}

// tearBlob is the torn-checkpoint corruption: the blob is cut in half,
// as if the writer died mid-write. Decode rejects it and the store falls
// back to the previous checkpoint.
func tearBlob(b []byte) []byte { return b[:len(b)/2] }

// recordAndMaybeCheckpoint runs on the worker goroutine after each
// successfully processed tuple: it advances the node's ingest cursors,
// appends the tuple to the replay log, and cuts a checkpoint when due.
// A cut prefers a pulse boundary (the engine executed windows this tick,
// so no window is mid-build) but is forced once 4x overdue or when the
// replay log nears capacity — waiting any longer would trade bounded
// staleness for lost coverage.
func (n *Node) recordAndMaybeCheckpoint(c *Cluster, w work) {
	key := lowerKey(w.stream)
	if n.cursors == nil {
		n.cursors = make(map[string]int64)
	}
	if w.seq > n.cursors[key] {
		n.cursors[key] = w.seq
	}
	c.rec.Log(n.ID).Append(recovery.Tuple{Stream: key, Seq: w.seq, TS: w.el.TS, Row: w.el.Row})
	// From here the log owns the tuple: a crash during the checkpoint
	// below must replay it from the log, not requeue it (a requeue would
	// double-feed any shared window).
	n.current = work{}
	n.sinceCkpt++
	wins := n.engine.Stats().WindowsExecuted
	aligned := wins != n.lastWins
	n.lastWins = wins
	every := c.opts.CheckpointEvery
	if n.sinceCkpt < every {
		return
	}
	if aligned || n.sinceCkpt >= 4*every || c.rec.Log(n.ID).NearCap() {
		n.checkpoint(c)
	}
}

// checkpoint cuts and commits one consistent snapshot of the node's
// engine state, reporting whether the commit succeeded. It runs on the
// worker goroutine between work items, so the engine is quiescent
// (Ingest is synchronous). A failed verification (torn write) keeps the
// replay log intact: the previous checkpoint remains the cut and the
// log still covers everything after it.
func (n *Node) checkpoint(c *Cluster) bool {
	f, _ := c.opts.Faults.(CheckpointFaultInjector)
	if f != nil {
		f.BeforeCheckpoint(n.ID) // may panic: crash during checkpoint
	}
	st := n.engine.ExportState()
	cursors := make(map[string]int64, len(n.cursors))
	for k, v := range n.cursors {
		cursors[k] = v
	}
	ck := &recovery.Checkpoint{
		Node:      n.ID,
		TakenAtMS: time.Now().UnixMilli(),
		Cursors:   cursors,
		EmitHWM:   c.rec.Gate().SnapshotHWM(),
		Engine:    *st,
	}
	var corrupt func([]byte) []byte
	if f != nil && f.TearCheckpoint(n.ID) {
		corrupt = tearBlob
	}
	covered := int64(n.sinceCkpt)
	n.sinceCkpt = 0
	if _, err := c.rec.Save(n.ID, ck, corrupt); err != nil {
		n.noteErr(NodeError{Node: n.ID, Err: err})
		return false
	}
	c.rec.Log(n.ID).TruncateThrough(cursors)
	n.rec.Record(telemetry.EvCheckpoint, "", "", 0, covered)
	return true
}

// restoreNode is the recovery-mode worker rebuild: instead of
// re-registering queries empty, every query on the node is restored from
// the node's latest checkpoint and the replay log is re-fed. All of the
// node's queries come back as private (owner-keyed) restored queries —
// window sharing on this node is lost until the queries are
// re-registered, which is the price of replaying each query from its own
// cursor. Returns false when the cluster closed.
func (c *Cluster) restoreNode(n *Node) bool {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return false
	}
	ck := c.rec.Latest(n.ID)
	cursors := make(map[string]int64)
	if ck != nil {
		for k, v := range ck.Cursors {
			cursors[k] = v
		}
	}
	ownLog := c.rec.Log(n.ID)
	if !ownLog.Covered(cursors) {
		c.rec.NoteLostCoverage()
	}
	eng := exastream.NewEngine(c.catalogFor(n.ID), c.engineOptsFor(n))
	for _, s := range c.schemas {
		if err := eng.DeclareStream(s); err != nil {
			n.noteErr(NodeError{Node: n.ID, Err: err})
		}
	}
	for name, f := range c.udfs {
		eng.RegisterUDF(name, f)
	}
	var requeries int32
	var restored []string
	for _, rec := range c.queries {
		if rec.node != n.ID || rec.pendingRestore {
			// pendingRestore queries are seeded by their queued restore
			// job (which holds a different cut); registering them empty
			// here would emit wrong-content windows that advance the gate
			// mark past the real ones.
			continue
		}
		if err := eng.RestoreQuery(rec.id, rec.stmt, rec.pulse, rec.sink, ck.QueryState(rec.id), cursors); err != nil {
			n.noteErr(NodeError{Node: n.ID, QueryID: rec.id,
				Err: fmt.Errorf("cluster: node %d: restore %s: %w", n.ID, rec.id, err)})
			continue
		}
		if rec.budget > 0 {
			// The admitted budget survives even when the checkpoint predates
			// it (the restored stride, if any, is kept).
			_ = eng.SetQueryBudget(rec.id, rec.budget)
		}
		restored = append(restored, rec.id)
		requeries++
	}
	if ck != nil {
		eng.ImportWCache(ck.Engine.WCache)
	}
	n.engine = eng
	n.rec.Record(telemetry.EvRestore, "", "", 0, int64(requeries))
	n.cursors = cursors
	atomic.StoreInt32(&n.queries, requeries)
	c.mu.Unlock()

	// Replay outside the cluster lock: only this worker's goroutine
	// touches the fresh engine, and the inbox buffers concurrent ingest
	// until the node goes live again.
	feed := ownLog.Since(cursors)
	for _, t := range feed {
		if t.Seq > n.cursors[t.Stream] {
			n.cursors[t.Stream] = t.Seq
		}
		for _, id := range restored {
			if err := eng.ReplayFor(id, t.Stream, stream.Timestamped{TS: t.TS, Row: t.Row}, t.Seq); err != nil {
				n.noteErr(NodeError{Node: n.ID, QueryID: id, Err: err})
			}
		}
	}
	if len(feed) > 0 {
		c.rec.NoteReplayed(len(feed))
	}
	if len(restored) > 0 {
		c.rec.NoteRestore()
	}
	n.sinceCkpt = ownLog.Len()
	n.lastWins = eng.Stats().WindowsExecuted
	atomic.StoreInt32(&n.state, int32(NodeLive))
	return true
}

// failoverRestore is the recovery-mode failover: the victim's queries
// migrate to survivors carrying the victim's latest checkpoint and a
// replay feed of victim-logged plus salvaged tuples; a restoreJob per
// target seeds them on the target's own worker goroutine. The whole
// migration — including pushing the jobs — happens under the cluster
// lock so no tuple can be routed into the gap between the death and the
// restore job reaching the head of each target's queue.
func (c *Cluster) failoverRestore(n *Node) {
	c.met.failovers.Inc()
	c.frec.Record(telemetry.EvFailover, "", "", 0, int64(n.ID))
	c.mu.Lock()
	atomic.StoreInt32(&n.state, int32(NodeDead))

	// Collect the corpse's queue. fail() first so a racing producer
	// either lands in the buffer (drained here) or gets errNodeDown —
	// never in between.
	n.in.fail()
	items := n.in.drain()
	if cur := n.current; cur.flush != nil || cur.stream != "" || cur.restore != nil {
		// The item being processed at the final crash. A never-retried
		// tuple is presumed innocent and salvaged; a tuple that crashed
		// the worker through every restart is poison and is dropped. A
		// restore job is neither: its queries are still marked
		// pendingRestore on their records and are re-dispatched below.
		if cur.stream != "" && cur.retries > 0 {
			n.noteDrop()
		} else {
			items = append([]work{cur}, items...)
		}
		n.current = work{}
	}
	var salvage []recovery.Tuple
	var resend []work
	for _, w := range items {
		switch {
		case w.flush != nil:
			close(w.flush) // the flush can no longer be honoured here
		case w.restore != nil:
			c.recovering-- // the job's dispatch counted one settle
		default:
			salvage = append(salvage, recovery.Tuple{Stream: lowerKey(w.stream), Seq: w.seq, TS: w.el.TS, Row: w.el.Row})
			resend = append(resend, w)
		}
	}

	victimCk := c.rec.Latest(n.ID)
	victimLog := c.rec.Log(n.ID)
	jobs := make(map[int]*restoreJob)
	for _, rec := range c.queries {
		if rec.node != n.ID {
			continue
		}
		target := c.pickNodeLocked()
		if target < 0 {
			n.noteErr(NodeError{Node: n.ID, QueryID: rec.id,
				Err: fmt.Errorf("cluster: query %s lost: %w", rec.id, ErrNoLiveNodes)})
			delete(c.queries, rec.id)
			c.gov.releaseQuery(rec.tenant)
			continue
		}
		if rec.pendingRestore {
			// Second failover before the first restore ran: keep the
			// original cut and extend its feed with what this victim
			// logged and still had queued.
			rec.feed = recovery.MergeFeeds(rec.feed, victimLog.Since(rec.cursors), salvage)
		} else {
			rec.ckpt = victimCk
			rec.cursors = make(map[string]int64)
			if victimCk != nil {
				for k, v := range victimCk.Cursors {
					rec.cursors[k] = v
				}
			}
			rec.feed = recovery.MergeFeeds(victimLog.Since(rec.cursors), salvage)
		}
		if !victimLog.Covered(rec.cursors) {
			c.rec.NoteLostCoverage()
		}
		rec.pendingRestore = true
		rec.node = target
		atomic.AddInt32(&c.nodes[target].queries, 1)
		c.nodes[target].budgetUsed += rec.budget
		j := jobs[target]
		if j == nil {
			j = &restoreJob{victim: n.ID}
			jobs[target] = j
		}
		j.ids = append(j.ids, rec.id)
	}
	atomic.StoreInt32(&n.queries, 0)
	n.budgetUsed = 0
	c.rebuildHostsLocked()
	for target, j := range jobs {
		if c.nodes[target].in.pushFront(work{restore: j}) {
			c.recovering++
		}
		// A rejected push means the target closed; the records stay
		// pendingRestore and the cluster is shutting down anyway.
	}
	prevHosts := make(map[string]map[int]struct{}) // pre-death hosts irrelevant here: partition resend re-hashes
	c.mu.Unlock()

	if c.opts.PartitionColumn != "" {
		// Partitioned tuples had their only copy on the corpse: re-hash
		// them over the survivors for the non-migrated queries there (the
		// migrated ones already carry them in their replay feeds, and the
		// preserved seq lets their cursors deduplicate the overlap).
		for _, w := range resend {
			c.resendSalvaged(n, w, prevHosts, nil)
		}
	}
}

// runRestore executes a restoreJob on the target's worker goroutine:
// each migrated query is restored from the cut retained on its record
// and its replay feed is re-fed. Runs before any queued tuple (the job
// was pushed to the queue front), so the restored cursors are in place
// before live traffic resumes.
func (n *Node) runRestore(c *Cluster, job *restoreJob) {
	defer func() {
		if !job.settled {
			job.settled = true
			c.settle(-1)
		}
	}()
	c.mu.Lock()
	recs := make([]*queryRecord, 0, len(job.ids))
	for _, id := range job.ids {
		rec := c.queries[id]
		if rec == nil || rec.node != n.ID || !rec.pendingRestore {
			continue // unregistered or re-migrated since the job was queued
		}
		recs = append(recs, rec)
	}
	c.mu.Unlock()

	ownLog := c.rec.Log(n.ID)
	restoredQueries := 0
	replayedTuples := 0
	for _, rec := range recs {
		err := n.engine.RestoreQuery(rec.id, rec.stmt, rec.pulse, rec.sink, rec.ckpt.QueryState(rec.id), rec.cursors)
		if err != nil {
			// A crash mid-job leaves the previous attempt registered;
			// drop it and retry so the restore is idempotent.
			if uerr := n.engine.Unregister(rec.id); uerr == nil {
				err = n.engine.RestoreQuery(rec.id, rec.stmt, rec.pulse, rec.sink, rec.ckpt.QueryState(rec.id), rec.cursors)
			}
		}
		if err != nil {
			n.noteErr(NodeError{Node: n.ID, QueryID: rec.id,
				Err: fmt.Errorf("cluster: node %d: failover restore %s: %w", n.ID, rec.id, err)})
			c.mu.Lock()
			delete(c.queries, rec.id)
			atomic.AddInt32(&n.queries, -1)
			n.budgetUsed -= rec.budget
			c.gov.releaseQuery(rec.tenant)
			c.rebuildHostsLocked()
			c.mu.Unlock()
			continue
		}
		if rec.budget > 0 {
			_ = n.engine.SetQueryBudget(rec.id, rec.budget)
		}
		feed := recovery.MergeFeeds(rec.feed, ownLog.Since(rec.cursors))
		for _, t := range feed {
			if err := n.engine.ReplayFor(rec.id, t.Stream, stream.Timestamped{TS: t.TS, Row: t.Row}, t.Seq); err != nil {
				n.noteErr(NodeError{Node: n.ID, QueryID: rec.id, Err: err})
			}
			// Advance the node cursors past the replayed seqs so the cut
			// below records them: the feed's tuples are not in this
			// node's log, and a stale cursor would make a later restore
			// report the gap as lost coverage.
			if n.cursors == nil {
				n.cursors = make(map[string]int64)
			}
			if t.Seq > n.cursors[t.Stream] {
				n.cursors[t.Stream] = t.Seq
			}
		}
		replayedTuples += len(feed)
		restoredQueries++
		n.rec.Record(telemetry.EvRestore, rec.id, rec.tenant, 0, int64(len(feed)))
		c.mu.Lock()
		rec.pendingRestore = false
		rec.ckpt = nil
		rec.cursors = nil
		rec.feed = nil
		c.mu.Unlock()
	}
	if replayedTuples > 0 {
		c.rec.NoteReplayed(replayedTuples)
	}
	if restoredQueries > 0 {
		c.rec.NoteRestore()
	}
	n.lastWins = n.engine.Stats().WindowsExecuted
	if restoredQueries > 0 {
		// Make the migration durable NOW. The replay feed (victim log +
		// salvaged queue) exists nowhere this node can reach after it is
		// consumed: until a checkpoint commits here, a crash on this node
		// rebuilds from a cut that predates the migration and the
		// restored queries' open-window state is silently lost. The
		// engine is quiescent (worker goroutine, between items), so this
		// is a free consistent cut; retry once so a single torn write
		// does not leave the feed volatile.
		if !n.checkpoint(c) {
			n.checkpoint(c)
		}
	}
}

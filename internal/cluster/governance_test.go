package cluster

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/exastream"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
	"repro/internal/telemetry"
)

func TestTenantOf(t *testing.T) {
	cases := map[string]string{
		"acme/overheat": "acme",
		"acme/sub/x":    "acme",
		"overheat":      "default",
		"/weird":        "default",
		"":              "default",
	}
	for id, want := range cases {
		if got := TenantOf(id); got != want {
			t.Errorf("TenantOf(%q) = %q, want %q", id, got, want)
		}
	}
}

// The governor's token buckets run on an injectable clock, so quota
// behaviour is fully deterministic: a tenant at its registration rate
// is rejected until simulated time refills the bucket, and MaxQueries
// slots free on release.
func TestGovernorDeterministicQuota(t *testing.T) {
	now := int64(0)
	g := newGovernor(TenantQuota{MaxQueries: 2, RegRate: 1, RegBurst: 1}, telemetry.NewRegistry(), nil)
	g.nowFn = func() int64 { return now }

	if err := g.admitRegister("acme"); err != nil {
		t.Fatalf("first registration rejected: %v", err)
	}
	// Bucket empty (burst 1): immediate second registration is rejected.
	if err := g.admitRegister("acme"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("rate-limited registration = %v, want ErrTenantQuota", err)
	}
	// One simulated second refills one token.
	now += 1e9
	if err := g.admitRegister("acme"); err != nil {
		t.Fatalf("registration after refill rejected: %v", err)
	}
	// MaxQueries=2 now binds regardless of the bucket.
	now += 10e9
	if err := g.admitRegister("acme"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-MaxQueries registration = %v, want ErrTenantQuota", err)
	}
	// Other tenants are unaffected.
	if err := g.admitRegister("globex"); err != nil {
		t.Fatalf("co-tenant punished for acme's quota: %v", err)
	}
	g.releaseQuery("acme")
	if err := g.admitRegister("acme"); err != nil {
		t.Fatalf("registration after release rejected: %v", err)
	}

	// Ingest quota is independent and charged per tuple.
	gi := newGovernor(TenantQuota{IngestRate: 2, IngestBurst: 2}, telemetry.NewRegistry(), nil)
	gi.nowFn = func() int64 { return now }
	if err := gi.admitIngest("acme"); err != nil {
		t.Fatal(err)
	}
	if err := gi.admitIngest("acme"); err != nil {
		t.Fatal(err)
	}
	if err := gi.admitIngest("acme"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("ingest beyond burst = %v, want ErrTenantQuota", err)
	}
	now += 1e9 // refills 2 tokens at rate 2/s
	if err := gi.admitIngest("acme"); err != nil {
		t.Fatalf("ingest after refill rejected: %v", err)
	}
}

// Both governance rejections are transient conditions (quotas refill,
// queries unregister), so RetryBusy must treat them like ErrGatewayBusy.
func TestRetryBusyRetriesGovernanceErrors(t *testing.T) {
	for _, typed := range []error{ErrTenantQuota, ErrOverBudget} {
		calls := 0
		err := RetryBusy(context.Background(), 5, time.Microsecond, func() error {
			calls++
			if calls < 3 {
				return fmt.Errorf("register: %w", typed)
			}
			return nil
		})
		if err != nil || calls != 3 {
			t.Errorf("%v: err=%v calls=%d, want nil after 3", typed, err, calls)
		}
	}
}

// NodeMemBudget bounds the admitted budget per node: once every live
// node is at capacity, registration fails with the typed retryable
// ErrOverBudget, and unregistering restores headroom. Budgets ride the
// query record, so placement sees them after failover too.
func TestNodeMemBudgetPlacement(t *testing.T) {
	c := newCluster(t, 2, Options{NodeMemBudget: 1 << 20})
	const query = "SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"
	var n int64
	for i := 0; i < 2; i++ {
		if _, err := c.RegisterWith(fmt.Sprintf("big%d", i), sql.MustParse(query), nil, countSink(&n),
			RegisterOptions{Budget: 1 << 20}); err != nil {
			t.Fatalf("register big%d: %v", i, err)
		}
	}
	_, err := c.RegisterWith("big2", sql.MustParse(query), nil, countSink(&n), RegisterOptions{Budget: 1})
	if !errors.Is(err, ErrOverBudget) {
		t.Fatalf("register beyond node budgets = %v, want ErrOverBudget", err)
	}
	if snap := c.TelemetrySnapshot(); snap.Counters["governance.rejected_budget"] != 1 {
		t.Errorf("governance.rejected_budget = %d, want 1", snap.Counters["governance.rejected_budget"])
	}
	// Unbudgeted queries are exempt from placement budgeting.
	if _, err := c.Register("small", sql.MustParse(query), nil, countSink(&n)); err != nil {
		t.Fatalf("unbudgeted register: %v", err)
	}
	if err := c.Unregister("big0"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RegisterWith("big2", sql.MustParse(query), nil, countSink(&n),
		RegisterOptions{Budget: 1 << 20}); err != nil {
		t.Fatalf("register after headroom freed: %v", err)
	}
}

// IngestTenant charges the named tenant's ingest bucket and rejects
// with the typed error once it is dry; plain Ingest stays uncharged.
func TestIngestTenantQuota(t *testing.T) {
	c := newCluster(t, 1, Options{TenantQuota: TenantQuota{IngestRate: 0.001, IngestBurst: 2}})
	var n int64
	if _, err := c.Register("acme/q", sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"), nil, countSink(&n)); err != nil {
		t.Fatal(err)
	}
	el := func(i int64) stream.Timestamped {
		return stream.Timestamped{TS: i * 100, Row: relation.Tuple{
			relation.Int(1), relation.Time(i * 100), relation.Float(1),
		}}
	}
	ctx := context.Background()
	if err := c.IngestTenant(ctx, "acme", "msmt", el(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestTenant(ctx, "acme", "msmt", el(1)); err != nil {
		t.Fatal(err)
	}
	if err := c.IngestTenant(ctx, "acme", "msmt", el(2)); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("ingest beyond burst = %v, want ErrTenantQuota", err)
	}
	if err := c.Ingest("msmt", el(3)); err != nil {
		t.Fatalf("uncharged Ingest rejected: %v", err)
	}
	if snap := c.TelemetrySnapshot(); snap.Counters["governance.ingest_rejected"] != 1 {
		t.Errorf("governance.ingest_rejected = %d, want 1", snap.Counters["governance.ingest_rejected"])
	}
}

// A producer blocked on a full inbox must unblock promptly when its
// context is cancelled, and a push with an already-dead context must
// not enqueue even when there is space (the regression: the old loop
// only noticed cancellation while parked on the space channel).
func TestInboxPushHonorsContextCancel(t *testing.T) {
	q := newInbox(1)
	if _, err := q.push(context.Background(), work{stream: "s"}, BackpressureBlock); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := q.push(ctx, work{stream: "s"}, BackpressureBlock)
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("push on a full inbox returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled push = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled push still blocked after 2s")
	}
	if q.length() != 1 {
		t.Fatalf("inbox length = %d after cancelled push, want 1", q.length())
	}

	// Already-cancelled context, space available: refuse without enqueueing.
	q.pop()
	dead, dcancel := context.WithCancel(context.Background())
	dcancel()
	if _, err := q.push(dead, work{stream: "s"}, BackpressureBlock); !errors.Is(err, context.Canceled) {
		t.Fatalf("push with dead context = %v, want context.Canceled", err)
	}
	if q.length() != 0 {
		t.Fatalf("dead-context push enqueued (length %d)", q.length())
	}
}

// Cold-start restore with BOTH retained checkpoint blobs torn: the
// store has nothing decodable, so the rebuild must fall back to an
// empty cut and re-feed the entire replay log — the delivered window
// sets still match a fault-free run exactly.
func TestRecoveryChaosColdStartBothTorn(t *testing.T) {
	baseline, _, _ := runRecoveryDiagnostics(t, 8, nil, nil, exastream.Options{})

	inj := faults.New(11).
		TearCheckpointAt(0, 1).
		TearCheckpointAt(0, 2).
		PanicAt(0, 30)
	faulted, deliveries, c := runRecoveryDiagnostics(t, 8, inj, nil, exastream.Options{})

	if got := inj.Injected(faults.KindTornCheckpoint); got != 2 {
		t.Fatalf("injected %d torn checkpoints, want 2", got)
	}
	if got := inj.Injected(faults.KindPanic); got != 1 {
		t.Fatalf("injected %d panics, want 1", got)
	}
	snap := c.TelemetrySnapshot()
	// Two torn saves plus the fallback read at restore time: the count
	// of 3 is what proves the restore found nothing decodable (a good
	// checkpoint would have kept it at 2).
	if got := snap.Counters["recovery.torn"]; got != 3 {
		t.Errorf("recovery.torn = %d, want 3 (2 torn saves + 1 cold-start fallback)", got)
	}
	if got := snap.Counters["recovery.replayed"]; got < 1 {
		t.Errorf("recovery.replayed = %d, want >= 1 (full-log replay)", got)
	}
	for q, ends := range deliveries {
		for end, n := range ends {
			if n > 1 {
				t.Errorf("query %s window %d delivered %d times", q, end, n)
			}
		}
	}
	if !reflect.DeepEqual(baseline, faulted) {
		for q, want := range baseline {
			if got := faulted[q]; !reflect.DeepEqual(want, got) {
				t.Errorf("query %s diverged after both-torn cold start:\n  baseline: %v\n  faulted:  %v", q, want, got)
			}
		}
	}
}

// TestGovernanceChaos is the acceptance scenario for resource
// governance: with injected memory pressure driving one tenant's query
// permanently over its budget and another tenant's quota exhausted at
// the gateway, the over-budget query degrades per policy (never
// panics, never OOMs), every rejection surfaces as a typed retryable
// error, and the fault-free tenant's delivered window set is
// byte-identical to a fault-free run. Runs under -race in CI.
func TestGovernanceChaos(t *testing.T) {
	queries := []struct{ id, text string }{
		{"a/export", "SELECT m.sid, m.val FROM STREAM s0 [RANGE 1000 SLIDE 500] AS m"},
		{"a/avg", "SELECT m.sid, AVG(m.val) FROM STREAM s0 [RANGE 1000 SLIDE 1000] AS m GROUP BY m.sid"},
		{"b/hog", "SELECT m.sid, m.val FROM STREAM s1 [RANGE 10000 SLIDE 500] AS m"},
	}
	run := func(inj FaultInjector) (map[string]map[int64][]string, *Cluster) {
		t.Helper()
		cat := sharedCatalog(t)
		c, err := New(Options{
			Nodes: 2, Placement: PlaceRoundRobin, Faults: inj,
			TenantQuota: TenantQuota{MaxQueries: 8},
		}, func(int) *relation.Catalog { return cat })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			c.Gateway().Close()
			c.Close()
		})
		for _, s := range []string{"s0", "s1"} {
			if err := c.DeclareStream(eventSchema(s)); err != nil {
				t.Fatal(err)
			}
		}
		log := newResultLog()
		for _, q := range queries {
			budget := int64(0)
			if q.id == "b/hog" {
				budget = 4096
			}
			if _, err := c.RegisterWith(q.id, sql.MustParse(q.text), nil, log.sink(),
				RegisterOptions{Budget: budget}); err != nil {
				t.Fatal(err)
			}
		}
		var wg sync.WaitGroup
		for s := 0; s < 2; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := 0; i < 80; i++ {
					ts := int64(i) * 100
					el := stream.Timestamped{TS: ts, Row: relation.Tuple{
						relation.Int(int64(i%5 + 1)), relation.Time(ts), relation.Float(float64((i*7 + s*13) % 100)),
					}}
					if err := c.Ingest(fmt.Sprintf("s%d", s), el); err != nil {
						t.Error(err)
						return
					}
				}
			}(s)
		}
		wg.Wait()
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return log.snapshot(), c
	}

	baseline, _ := run(nil)
	for _, tenant := range []string{"a/export", "a/avg"} {
		if len(baseline[tenant]) == 0 {
			t.Fatalf("baseline delivered no windows for %s", tenant)
		}
	}

	inj := faults.New(5).
		PressureOn("b/hog", 1<<30).
		ExhaustTenant("c")
	faulted, c := run(inj)

	// The over-budget query degraded — batches shed, residual overage
	// counted — and the engine kept running: no panic, no node death.
	snap := c.TelemetrySnapshot()
	if snap.Counters["governance.shed_batches"] == 0 {
		t.Error("no batches shed from the over-budget query")
	}
	if snap.Counters["governance.overbudget"] == 0 {
		t.Error("residual (injected) overage not counted")
	}
	if h := c.Health(); h.Dead != 0 || h.Restarting != 0 {
		t.Fatalf("governance degraded into node failure: %+v", h)
	}
	// The degradation surfaced as the typed error in the error ring.
	foundTyped := false
	for _, ne := range c.Errors() {
		if errors.Is(ne.Err, exastream.ErrQueryOverBudget) {
			foundTyped = true
			if ne.QueryID != "b/hog" {
				t.Errorf("over-budget error attributed to %q, want b/hog", ne.QueryID)
			}
		}
	}
	if !foundTyped {
		t.Error("no ErrQueryOverBudget surfaced through the error ring")
	}

	// The exhausted tenant's registration fails through the gateway with
	// the typed retryable error; RetryBusy keeps retrying it, and after
	// the quota recovers the same submission is admitted.
	var n int64
	tk, err := c.Gateway().Submit("c/task", "SELECT m.val FROM STREAM s0 [RANGE 1000 SLIDE 1000] AS m", nil, countSink(&n))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("exhausted tenant ticket = %v, want ErrTenantQuota", err)
	}
	attempts := 0
	err = RetryBusy(context.Background(), 3, time.Microsecond, func() error {
		attempts++
		if attempts == 2 {
			inj.RestoreTenant("c")
		}
		tk, serr := c.Gateway().Submit(fmt.Sprintf("c/task%d", attempts), "SELECT m.val FROM STREAM s0 [RANGE 1000 SLIDE 1000] AS m", nil, countSink(&n))
		if serr != nil {
			return serr
		}
		_, werr := tk.Wait()
		return werr
	})
	if err != nil || attempts != 2 {
		t.Fatalf("RetryBusy over quota exhaustion: err=%v attempts=%d, want admitted on attempt 2", err, attempts)
	}

	// Co-tenant isolation: tenant a's window sets are byte-identical to
	// the fault-free run despite tenant b degrading on the same cluster.
	for _, id := range []string{"a/export", "a/avg"} {
		if !reflect.DeepEqual(baseline[id], faulted[id]) {
			t.Errorf("fault-free tenant query %s diverged under co-tenant governance:\n  baseline: %v\n  faulted:  %v",
				id, baseline[id], faulted[id])
		}
	}
	// The governed tenant is strictly degraded: unbounded injected
	// pressure means every open window is shed before it can complete,
	// so it delivers less than the fault-free run (here: nothing) —
	// the overload is absorbed by shedding, never by crashing.
	if len(faulted["b/hog"]) >= len(baseline["b/hog"]) {
		t.Errorf("over-budget query delivered %d windows vs %d fault-free; shed policy did not degrade it",
			len(faulted["b/hog"]), len(baseline["b/hog"]))
	}
}

package cluster

import (
	"context"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/exastream"
	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// resultLog records every window a query emits as a canonical
// (order-insensitive) snapshot, so two cluster runs can be compared for
// exact result equality.
type resultLog struct {
	mu      sync.Mutex
	byQuery map[string]map[int64][]string
}

func newResultLog() *resultLog {
	return &resultLog{byQuery: make(map[string]map[int64][]string)}
}

func (r *resultLog) sink() exastream.Sink {
	return func(queryID string, windowEnd int64, _ relation.Schema, rows []relation.Tuple) {
		canon := make([]string, len(rows))
		for i, row := range rows {
			canon[i] = fmt.Sprintf("%v", row)
		}
		sort.Strings(canon)
		r.mu.Lock()
		defer r.mu.Unlock()
		windows, ok := r.byQuery[queryID]
		if !ok {
			windows = make(map[int64][]string)
			r.byQuery[queryID] = windows
		}
		windows[windowEnd] = append(windows[windowEnd], canon...)
	}
}

func (r *resultLog) snapshot() map[string]map[int64][]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]map[int64][]string, len(r.byQuery))
	for q, windows := range r.byQuery {
		cp := make(map[int64][]string, len(windows))
		for w, rows := range windows {
			cp[w] = append([]string(nil), rows...)
		}
		out[q] = cp
	}
	return out
}

// diagnosticQueries are Siemens-style diagnostic tasks (DESIGN.md §2):
// per-sensor aggregation, threshold monitoring, and raw signal export,
// one per event stream so each lands on its own node under round-robin.
func diagnosticQueries() []struct{ id, text string } {
	return []struct{ id, text string }{
		{"avg-temp", "SELECT m.sid, AVG(m.val) FROM STREAM s0 [RANGE 1000 SLIDE 1000] AS m GROUP BY m.sid"},
		{"overheat", "SELECT m.sid, m.val FROM STREAM s1 [RANGE 1000 SLIDE 1000] AS m WHERE m.val > 50"},
		{"vibration-max", "SELECT MAX(m.val) FROM STREAM s2 [RANGE 1000 SLIDE 1000] AS m"},
		{"raw-export", "SELECT m.sid, m.val FROM STREAM s3 [RANGE 1000 SLIDE 1000] AS m"},
	}
}

func eventSchema(name string) stream.Schema {
	return stream.Schema{
		Name: name,
		Tuple: relation.NewSchema(
			relation.Col("sid", relation.TInt),
			relation.Col("ts", relation.TTime),
			relation.Col("val", relation.TFloat),
		),
		TSCol: "ts",
	}
}

// runDiagnostics drives the 4-node / 4-query chaos scenario. With inj
// nil it is the fault-free baseline; with a PanicAt(3, 1) injector node
// 3 dies on its first tuple and afterFirstRound waits for the failover
// to settle before the remaining rounds stream in.
func runDiagnostics(t *testing.T, inj FaultInjector, afterFirstRound func(*Cluster)) (map[string]map[int64][]string, *Cluster) {
	t.Helper()
	cat := sharedCatalog(t)
	c, err := New(Options{
		Nodes: 4, Placement: PlaceRoundRobin, MaxRestarts: -1, Faults: inj,
	}, func(int) *relation.Catalog { return cat })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		c.Gateway().Close()
		c.Close()
	})
	for i := 0; i < 4; i++ {
		if err := c.DeclareStream(eventSchema(fmt.Sprintf("s%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	log := newResultLog()
	for i, q := range diagnosticQueries() {
		node, err := c.Register(q.id, sql.MustParse(q.text), nil, log.sink())
		if err != nil {
			t.Fatal(err)
		}
		if node != i {
			t.Fatalf("query %s placed on node %d, want %d", q.id, node, i)
		}
	}
	const rounds = 50
	for i := 0; i < rounds; i++ {
		ts := int64(i) * 100
		for s := 0; s < 4; s++ {
			el := stream.Timestamped{TS: ts, Row: relation.Tuple{
				relation.Int(int64(i%5 + 1)), relation.Time(ts), relation.Float(float64((i*7 + s*13) % 100)),
			}}
			if err := c.Ingest(fmt.Sprintf("s%d", s), el); err != nil {
				t.Fatal(err)
			}
		}
		if i == 0 && afterFirstRound != nil {
			afterFirstRound(c)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	return log.snapshot(), c
}

// TestChaosPanicMidStreamPreservesResults is the acceptance scenario:
// a worker panic is injected mid-stream on a 4-node cluster running the
// Siemens diagnostic queries; the dead node's query is rehosted, its
// salvaged tuple redelivered, and the flushed results of every query
// are identical to a fault-free run.
func TestChaosPanicMidStreamPreservesResults(t *testing.T) {
	baseline, _ := runDiagnostics(t, nil, nil)
	if len(baseline) != 4 {
		t.Fatalf("baseline produced results for %d queries, want 4", len(baseline))
	}

	inj := faults.New(1).PanicAt(3, 1)
	faulted, c := runDiagnostics(t, inj, func(c *Cluster) {
		// Node 3 panics on its first s3 tuple. Wait until the failover has
		// both declared it dead and salvaged the in-flight tuple to the new
		// host, so the rest of the stream arrives in order behind it.
		waitFor(t, 5*time.Second, func() bool {
			h := c.Health()
			return h.Dead == 1 && h.Requeued == 1
		}, "failover of node 3")
		if err := c.WaitSettled(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	if inj.Injected(faults.KindPanic) != 1 {
		t.Fatalf("injected %d panics, want 1", inj.Injected(faults.KindPanic))
	}
	h := c.Health()
	if h.Dead != 1 || h.Live != 3 {
		t.Fatalf("health = %+v, want 1 dead / 3 live", h)
	}
	if h.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", h.Failovers)
	}
	if h.Requeued != 1 {
		t.Errorf("requeued = %d, want 1 (the salvaged in-flight tuple)", h.Requeued)
	}
	for _, q := range diagnosticQueries() {
		node, ok := c.QueryNode(q.id)
		if !ok {
			t.Fatalf("query %s lost", q.id)
		}
		if node == 3 {
			t.Errorf("query %s still hosted on the dead node", q.id)
		}
	}
	if !reflect.DeepEqual(baseline, faulted) {
		for q, want := range baseline {
			if got := faulted[q]; !reflect.DeepEqual(want, got) {
				t.Errorf("query %s diverged:\n  baseline: %v\n  faulted:  %v", q, want, got)
			}
		}
	}
}

// TestChaosParallelFleetMatchesSequential is the acceptance scenario
// for the parallel execution pool: a two-node cluster where each node
// hosts four diagnostic queries, executed on a Parallelism-8 pool with
// a worker panic injected mid-stream, must flush exactly the results of
// a sequential (Parallelism 1) fault-free run.
func TestChaosParallelFleetMatchesSequential(t *testing.T) {
	run := func(parallelism int, inj FaultInjector, afterFirstRound func(*Cluster)) map[string]map[int64][]string {
		t.Helper()
		cat := sharedCatalog(t)
		c, err := New(Options{
			Nodes: 2, Placement: PlaceRoundRobin, MaxRestarts: -1, Faults: inj,
			Engine: exastream.Options{Parallelism: parallelism},
		}, func(int) *relation.Catalog { return cat })
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			c.Gateway().Close()
			c.Close()
		})
		for i := 0; i < 4; i++ {
			if err := c.DeclareStream(eventSchema(fmt.Sprintf("s%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		log := newResultLog()
		for rep := 0; rep < 2; rep++ {
			for _, q := range diagnosticQueries() {
				id := fmt.Sprintf("%s-%d", q.id, rep)
				if _, err := c.Register(id, sql.MustParse(q.text), nil, log.sink()); err != nil {
					t.Fatal(err)
				}
			}
		}
		const rounds = 50
		for i := 0; i < rounds; i++ {
			ts := int64(i) * 100
			for s := 0; s < 4; s++ {
				el := stream.Timestamped{TS: ts, Row: relation.Tuple{
					relation.Int(int64(i%5 + 1)), relation.Time(ts), relation.Float(float64((i*7 + s*13) % 100)),
				}}
				if err := c.Ingest(fmt.Sprintf("s%d", s), el); err != nil {
					t.Fatal(err)
				}
			}
			if i == 0 && afterFirstRound != nil {
				afterFirstRound(c)
			}
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		return log.snapshot()
	}

	baseline := run(1, nil, nil)
	if len(baseline) != 8 {
		t.Fatalf("baseline produced results for %d queries, want 8", len(baseline))
	}

	inj := faults.New(1).PanicAt(1, 1)
	faulted := run(8, inj, func(c *Cluster) {
		// Node 1 hosts four queries across all streams, so besides the
		// in-flight tuple its queue may hold more salvageable tuples; wait
		// for the death plus at least one salvage, then quiescence.
		waitFor(t, 5*time.Second, func() bool {
			h := c.Health()
			return h.Dead == 1 && h.Requeued >= 1
		}, "failover of node 1")
		if err := c.WaitSettled(context.Background()); err != nil {
			t.Fatal(err)
		}
	})
	if inj.Injected(faults.KindPanic) != 1 {
		t.Fatalf("injected %d panics, want 1", inj.Injected(faults.KindPanic))
	}
	if !reflect.DeepEqual(baseline, faulted) {
		for q, want := range baseline {
			if got := faulted[q]; !reflect.DeepEqual(want, got) {
				t.Errorf("query %s diverged:\n  baseline: %v\n  parallel+fault: %v", q, want, got)
			}
		}
		if len(faulted) != len(baseline) {
			t.Errorf("query sets differ: %d vs %d", len(baseline), len(faulted))
		}
	}
}

// TestChaosPartitionReroutingAfterNodeDeath kills the partition owner
// of a sensor id and verifies the deterministic remap: every subsequent
// tuple of that sensor hashes onto the same survivor, the in-flight
// tuple is salvaged there, nothing is dropped, and the migrated query
// produces exactly the same windows as the survivor's native copy.
func TestChaosPartitionReroutingAfterNodeDeath(t *testing.T) {
	inj := faults.New(1).PanicAt(3, 1)
	c := newCluster(t, 4, Options{
		Placement: PlaceRoundRobin, PartitionColumn: "sid", MaxRestarts: -1, Faults: inj,
	})
	log := newResultLog()
	for i := 0; i < 4; i++ {
		q := sql.MustParse("SELECT m.sid, m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
		if node, err := c.Register(fmt.Sprintf("q%d", i), q, nil, log.sink()); err != nil || node != i {
			t.Fatalf("q%d on node %d (err %v)", i, node, err)
		}
	}
	// A sensor id owned by node 3 under the 4-host ring that remaps to
	// node 1 under the 3-survivor ring. Node 1 is also where round-robin
	// deterministically rehosts q3 (rrNext is 4 after four registrations,
	// and 4 mod 3 live nodes picks survivor index 1), so the migrated
	// query co-hosts the rerouted data.
	var sid int64
	for s := int64(1); ; s++ {
		if h := valueHash(relation.Int(s)); h%4 == 3 && h%3 == 1 {
			sid = s
			break
		}
	}
	survivors := []int{0, 1, 2}
	expected := survivors[valueHash(relation.Int(sid))%3]

	ingest := func(i int) {
		ts := int64(i) * 100
		el := stream.Timestamped{TS: ts, Row: relation.Tuple{
			relation.Int(sid), relation.Time(ts), relation.Float(float64(i))}}
		if err := c.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
	const n = 40
	ingest(0) // routed to node 3, which panics before processing it
	waitFor(t, 5*time.Second, func() bool {
		h := c.Health()
		return h.Dead == 1 && h.Requeued == 1
	}, "failover of partition owner")
	migrated, ok := c.QueryNode("q3")
	if !ok || migrated == 3 {
		t.Fatalf("q3 hosted on node %d after owner death", migrated)
	}
	for i := 1; i < n; i++ {
		ingest(i)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	stats := c.Stats()
	var processed, dropped int64
	for _, s := range stats {
		processed += s.Tuples
		dropped += s.Dropped
	}
	if processed != n {
		t.Errorf("processed %d tuples, want %d (salvage must redeliver the in-flight tuple)", processed, n)
	}
	if dropped != 0 {
		t.Errorf("dropped %d tuples, want 0", dropped)
	}
	// Deterministic remap: all tuples landed on the expected survivor.
	for _, s := range stats {
		want := int64(0)
		if s.Node == expected {
			want = n
		}
		if s.Tuples != want {
			t.Errorf("node %d processed %d tuples, want %d (sid %d remaps to survivor %d)",
				s.Node, s.Tuples, want, sid, expected)
		}
	}
	if migrated != expected {
		t.Fatalf("q3 rehosted on node %d, but the sid remaps to node %d", migrated, expected)
	}
	// The migrated query and the survivor's native copy of the same query
	// saw an identical stream, so their windows must match exactly.
	results := log.snapshot()
	native := fmt.Sprintf("q%d", expected)
	if len(results[native]) == 0 {
		t.Fatalf("native query %s produced no windows", native)
	}
	if !reflect.DeepEqual(results["q3"], results[native]) {
		t.Errorf("migrated query diverged from co-hosted native copy:\n  q3: %v\n  %s: %v",
			results["q3"], native, results[native])
	}
}

package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/relation"
	"repro/internal/sql"
	"repro/internal/stream"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", msg)
}

func TestSupervisorRestartsCrashedWorker(t *testing.T) {
	inj := faults.New(1).PanicAt(0, 5)
	c := newCluster(t, 2, Options{Placement: PlaceRoundRobin, Faults: inj})
	var rows int64
	for i := 0; i < 2; i++ {
		q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
		if _, err := c.Register(fmt.Sprintf("q%d", i), q, nil, countSink(&rows)); err != nil {
			t.Fatal(err)
		}
	}
	pump(t, c, 200, 100) // node 0 panics on its 5th delivery mid-stream
	if err := c.WaitSettled(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := c.Stats()
	if stats[0].Restarts != 1 {
		t.Errorf("node 0 restarts = %d, want 1", stats[0].Restarts)
	}
	if stats[0].State != NodeLive {
		t.Errorf("node 0 state = %s, want live", stats[0].State)
	}
	// The in-flight tuple is retried after the restart: every delivery
	// is eventually processed.
	if stats[0].Tuples != 200 {
		t.Errorf("node 0 processed %d tuples, want 200 (crash tuple retried)", stats[0].Tuples)
	}
	if rows == 0 {
		t.Error("no rows after restart")
	}
	if inj.Injected(faults.KindPanic) != 1 {
		t.Errorf("injected panics = %d, want 1", inj.Injected(faults.KindPanic))
	}
	h := c.Health()
	if h.Live != 2 || h.Degraded() {
		t.Errorf("health after recovery = %+v, want 2 live and not degraded", h)
	}
	// The panic is recorded, not lost.
	if stats[0].ErrTotal == 0 {
		t.Error("worker panic left no trace in the error ring")
	}
}

func TestWorkerDeathFailsOverQueries(t *testing.T) {
	inj := faults.New(1).PanicAt(1, 1)
	c := newCluster(t, 2, Options{Placement: PlaceRoundRobin, MaxRestarts: -1, Faults: inj})
	var rows0, rows1 int64
	q0 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if _, err := c.Register("q0", q0, nil, countSink(&rows0)); err != nil {
		t.Fatal(err)
	}
	q1 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if node, err := c.Register("q1", q1, nil, countSink(&rows1)); err != nil || node != 1 {
		t.Fatalf("q1 on node %d (err %v), want 1", node, err)
	}
	// First tuple kills node 1; wait for the failover to land before
	// streaming the rest, so the rehosted q1 deterministically sees data.
	el0 := stream.Timestamped{TS: 0, Row: relation.Tuple{relation.Int(1), relation.Time(0), relation.Float(0)}}
	if err := c.Ingest("msmt", el0); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitSettled(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return c.Health().Dead == 1 }, "node 1 death")
	h := c.Health()
	if h.Dead != 1 || h.Live != 1 {
		t.Fatalf("health = %+v, want 1 dead / 1 live", h)
	}
	if h.Failovers != 1 {
		t.Errorf("failovers = %d, want 1", h.Failovers)
	}
	if node, ok := c.QueryNode("q1"); !ok || node != 0 {
		t.Errorf("q1 hosted on node %d after failover, want 0", node)
	}
	// The rehosted query produces rows on the survivor.
	pump(t, c, 100, 100)
	if atomic.LoadInt64(&rows1) == 0 {
		t.Error("failed-over query produced no rows")
	}
	// Registration after the death lands on the survivor.
	q2 := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	node, err := c.Register("q2", q2, nil, countSink(&rows0))
	if err != nil {
		t.Fatal(err)
	}
	if node != 0 {
		t.Errorf("post-death registration on node %d, want 0 (node 1 is a corpse)", node)
	}
}

func TestRegisterWithNoLiveNodes(t *testing.T) {
	inj := faults.New(1).PanicAt(0, 1)
	c := newCluster(t, 1, Options{MaxRestarts: -1, Faults: inj})
	var rows int64
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if _, err := c.Register("q", q, nil, countSink(&rows)); err != nil {
		t.Fatal(err)
	}
	el := stream.Timestamped{TS: 1, Row: relation.Tuple{relation.Int(1), relation.Time(1), relation.Float(1)}}
	if err := c.Ingest("msmt", el); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return c.Health().Dead == 1 }, "node death")
	if _, err := c.Register("late", q, nil, countSink(&rows)); !errors.Is(err, ErrNoLiveNodes) {
		t.Errorf("Register with all nodes dead returned %v, want ErrNoLiveNodes", err)
	}
	// The orphaned query's loss is recorded.
	found := false
	for _, e := range c.Errors() {
		if e.QueryID == "q" && errors.Is(e.Err, ErrNoLiveNodes) {
			found = true
		}
	}
	if !found {
		t.Errorf("lost query not recorded in errors: %v", c.Errors())
	}
	// Ingest into the dead cluster is a counted drop, not a hang.
	if err := c.Ingest("msmt", el); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestBackpressureDropNewest(t *testing.T) {
	inj := faults.New(1).DelayEvery(0, 1, time.Millisecond)
	c := newCluster(t, 1, Options{
		QueueSize: 4, Backpressure: BackpressureDropNewest, Faults: inj,
	})
	var rows int64
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if _, err := c.Register("q", q, nil, countSink(&rows)); err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		ts := int64(i) * 100
		el := stream.Timestamped{TS: ts, Row: relation.Tuple{relation.Int(1), relation.Time(ts), relation.Float(1)}}
		if err := c.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()[0]
	if st.Dropped == 0 {
		t.Fatal("slow node shed no tuples under DropNewest")
	}
	if st.Dropped+st.Tuples != n {
		t.Errorf("dropped %d + processed %d != ingested %d", st.Dropped, st.Tuples, n)
	}
}

func TestBackpressureDropOldest(t *testing.T) {
	inj := faults.New(1).DelayEvery(0, 1, time.Millisecond)
	c := newCluster(t, 1, Options{
		QueueSize: 4, Backpressure: BackpressureDropOldest, Faults: inj,
	})
	var rows int64
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if _, err := c.Register("q", q, nil, countSink(&rows)); err != nil {
		t.Fatal(err)
	}
	const n = 100
	var lastTS int64
	for i := 0; i < n; i++ {
		lastTS = int64(i) * 100
		el := stream.Timestamped{TS: lastTS, Row: relation.Tuple{relation.Int(1), relation.Time(lastTS), relation.Float(float64(i))}}
		if err := c.Ingest("msmt", el); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()[0]
	if st.Dropped == 0 {
		t.Fatal("slow node evicted no tuples under DropOldest")
	}
	if st.Dropped+st.Tuples != n {
		t.Errorf("dropped %d + processed %d != ingested %d", st.Dropped, st.Tuples, n)
	}
	// Freshest data survives eviction: the last tuple must be processed.
	if st.Engine.TuplesIn == 0 {
		t.Error("engine saw nothing")
	}
}

func TestBackpressureBlockHonoursContext(t *testing.T) {
	inj := faults.New(1).DelayEvery(0, 1, 50*time.Millisecond)
	c := newCluster(t, 1, Options{QueueSize: 1, Faults: inj})
	var rows int64
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if _, err := c.Register("q", q, nil, countSink(&rows)); err != nil {
		t.Fatal(err)
	}
	el := func(i int) stream.Timestamped {
		ts := int64(i) * 100
		return stream.Timestamped{TS: ts, Row: relation.Tuple{relation.Int(1), relation.Time(ts), relation.Float(1)}}
	}
	// First tuple occupies the worker, second fills the queue.
	if err := c.Ingest("msmt", el(0)); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest("msmt", el(1)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.IngestContext(ctx, "msmt", el(2))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("blocked ingest returned %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Error("ingest blocked far past its deadline")
	}
}

func TestClosedClusterReturnsTypedError(t *testing.T) {
	cat := sharedCatalog(t)
	c, err := New(Options{Nodes: 2}, func(int) *relation.Catalog { return cat })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareStream(msmtSchema()); err != nil {
		t.Fatal(err)
	}
	c.Gateway().Close()
	c.Close()
	c.Close() // idempotent
	el := stream.Timestamped{TS: 1, Row: relation.Tuple{relation.Int(1), relation.Time(1), relation.Float(1)}}
	if err := c.Ingest("msmt", el); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("Ingest after close returned %v, want ErrClusterClosed", err)
	}
	if err := c.Flush(); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("Flush after close returned %v, want ErrClusterClosed", err)
	}
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if _, err := c.Register("q", q, nil, nil); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("Register after close returned %v, want ErrClusterClosed", err)
	}
	if err := c.DeclareStream(stream.Schema{}); !errors.Is(err, ErrClusterClosed) {
		t.Errorf("DeclareStream after close returned %v, want ErrClusterClosed", err)
	}
}

// TestCloseRacesIngest drives concurrent Ingest/Flush against Close:
// the old channel-based inbox panicked on send-to-closed-channel here.
func TestCloseRacesIngest(t *testing.T) {
	cat := sharedCatalog(t)
	c, err := New(Options{Nodes: 4}, func(int) *relation.Catalog { return cat })
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeclareStream(msmtSchema()); err != nil {
		t.Fatal(err)
	}
	var rows int64
	for i := 0; i < 4; i++ {
		q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
		if _, err := c.Register(fmt.Sprintf("q%d", i), q, nil, countSink(&rows)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				ts := int64(i) * 10
				el := stream.Timestamped{TS: ts, Row: relation.Tuple{
					relation.Int(int64(g + 1)), relation.Time(ts), relation.Float(1)}}
				if err := c.Ingest("msmt", el); err != nil {
					if !errors.Is(err, ErrClusterClosed) {
						t.Errorf("ingest failed with %v, want ErrClusterClosed", err)
					}
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			if err := c.Flush(); err != nil {
				if !errors.Is(err, ErrClusterClosed) {
					t.Errorf("flush failed with %v, want ErrClusterClosed", err)
				}
				return
			}
		}
	}()
	time.Sleep(2 * time.Millisecond)
	c.Gateway().Close()
	c.Close()
	wg.Wait()
}

func TestGatewaySubmitBusyInsteadOfDeadlock(t *testing.T) {
	c := newCluster(t, 1, Options{})
	// A gateway whose worker never drains: with capacity 1 the second
	// submission must fail fast instead of blocking under the lock.
	g := &Gateway{cluster: c, tickets: make(map[int]*Ticket), queue: make(chan *submission, 1)}
	if _, err := g.Submit("a", "SELECT 1", nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Submit("b", "SELECT 1", nil, nil); !errors.Is(err, ErrGatewayBusy) {
		t.Errorf("full gateway returned %v, want ErrGatewayBusy", err)
	}
	// The rejected ticket is not leaked.
	g.mu.Lock()
	n := len(g.tickets)
	g.mu.Unlock()
	if n != 1 {
		t.Errorf("ticket map holds %d entries, want 1", n)
	}
}

func TestQuarantineIsolatesPoisonQueryInCluster(t *testing.T) {
	c := newCluster(t, 1, Options{QuarantineAfter: 2})
	c.RegisterUDF("boom", func(args []relation.Value) (relation.Value, error) {
		return relation.Null, errors.New("boom")
	})
	var rows int64
	if _, err := c.Register("poison",
		sql.MustParse("SELECT boom(m.val) FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"),
		nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("healthy",
		sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m"),
		nil, countSink(&rows)); err != nil {
		t.Fatal(err)
	}
	pump(t, c, 80, 100)
	st := c.Stats()[0]
	if st.Suspended != 1 {
		t.Errorf("suspended queries = %d, want 1", st.Suspended)
	}
	if rows == 0 {
		t.Error("healthy query starved by poison query")
	}
	if st.ErrTotal == 0 {
		t.Error("query failures not recorded in the error ring")
	}
	h := c.Health()
	if !h.Degraded() || h.Suspended != 1 {
		t.Errorf("health = %+v, want degraded with 1 suspended", h)
	}
	if h.Quarantines != 1 {
		t.Errorf("quarantine events = %d, want 1", h.Quarantines)
	}
	if err := c.Resume("poison"); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats()[0].Suspended; got != 0 {
		t.Errorf("suspended after Resume = %d, want 0", got)
	}
	// The event counter is monotonic: Resume clears the suspension but
	// not the history.
	if got := c.Health().Quarantines; got != 1 {
		t.Errorf("quarantine events after Resume = %d, want 1", got)
	}
	if err := c.Resume("nope"); err == nil {
		t.Error("Resume of unknown query accepted")
	}
}

func TestInjectedIngestErrorsAreCountedNotFatal(t *testing.T) {
	inj := faults.New(1).ErrorEvery(0, 10)
	c := newCluster(t, 1, Options{Faults: inj})
	var rows int64
	q := sql.MustParse("SELECT m.val FROM STREAM msmt [RANGE 1000 SLIDE 1000] AS m")
	if _, err := c.Register("q", q, nil, countSink(&rows)); err != nil {
		t.Fatal(err)
	}
	pump(t, c, 100, 100)
	st := c.Stats()[0]
	if st.ErrTotal != 10 {
		t.Errorf("error ring total = %d, want 10", st.ErrTotal)
	}
	if st.Tuples != 90 {
		t.Errorf("processed %d tuples, want 90 (10 failed ingests)", st.Tuples)
	}
	if rows == 0 {
		t.Error("no output despite 90% of ingest succeeding")
	}
}

func TestErrorRingKeepsCountsPastCapacity(t *testing.T) {
	var r errorRing
	for i := 0; i < errRingSize+40; i++ {
		r.add(NodeError{Node: 0, Err: fmt.Errorf("e%d", i)})
	}
	total, evicted := r.counts()
	if total != errRingSize+40 {
		t.Errorf("total = %d, want %d", total, errRingSize+40)
	}
	if evicted != 40 {
		t.Errorf("evicted = %d, want 40", evicted)
	}
	recent := r.recent()
	if len(recent) != errRingSize {
		t.Fatalf("retained %d, want %d", len(recent), errRingSize)
	}
	// Oldest retained is the first not evicted.
	if got := recent[0].Err.Error(); got != "e40" {
		t.Errorf("oldest retained = %s, want e40", got)
	}
}

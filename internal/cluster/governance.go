package cluster

import (
	"sync"
	"time"

	"repro/internal/telemetry"
)

// TenantOf extracts the tenant namespace from a query or submission id:
// the prefix before the first '/' ("acme/overheat" belongs to tenant
// "acme"). Ids without a namespace belong to "default". Per-tenant
// quotas key on this, so dense multi-tenant deployments namespace their
// registrations and single-tenant ones need not care.
func TenantOf(id string) string {
	for i := 0; i < len(id); i++ {
		if id[i] == '/' {
			if i == 0 {
				return "default"
			}
			return id[:i]
		}
	}
	return "default"
}

// TenantQuota configures per-tenant admission control. The zero value
// disables every limit.
type TenantQuota struct {
	// MaxQueries caps a tenant's concurrently registered queries
	// (0 = unlimited).
	MaxQueries int
	// RegRate refills the tenant's registration token bucket, in
	// registrations per second (0 = unlimited). RegBurst is the bucket
	// capacity (default: RegRate rounded up, minimum 1).
	RegRate  float64
	RegBurst int
	// IngestRate refills the tenant's ingest token bucket, in tuples
	// per second, charged by IngestTenant (0 = unlimited). IngestBurst
	// is the bucket capacity (default: IngestRate rounded up, min 1).
	IngestRate  float64
	IngestBurst int
}

func (q TenantQuota) enabled() bool {
	return q.MaxQueries > 0 || q.RegRate > 0 || q.IngestRate > 0
}

// tokenBucket is a classic token bucket over an injectable clock
// (nanoseconds), so quota tests are deterministic.
type tokenBucket struct {
	rate   float64 // tokens per second; <= 0 means unlimited
	cap    float64
	tokens float64
	last   int64
}

func newBucket(rate float64, burst int, now int64) *tokenBucket {
	if burst <= 0 {
		burst = int(rate)
		if float64(burst) < rate {
			burst++
		}
		if burst < 1 {
			burst = 1
		}
	}
	return &tokenBucket{rate: rate, cap: float64(burst), tokens: float64(burst), last: now}
}

// take consumes one token, refilling for elapsed time first.
func (b *tokenBucket) take(now int64) bool {
	if b.rate <= 0 {
		return true
	}
	if now > b.last {
		b.tokens += float64(now-b.last) / 1e9 * b.rate
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// tenantState is one tenant's admission bookkeeping.
type tenantState struct {
	queries int // currently registered
	reg     *tokenBucket
	ingest  *tokenBucket
}

// governor enforces per-tenant quotas in front of registration and
// tenant-attributed ingest. It sits beside (not inside) the node
// backpressure machinery: backpressure protects workers from queue
// overflow, the governor protects the fleet from any one tenant.
type governor struct {
	mu      sync.Mutex
	quota   TenantQuota
	tenants map[string]*tenantState
	nowFn   func() int64 // injectable clock (nanoseconds)
	faults  GovernanceFaultInjector

	admitted       *telemetry.Counter
	rejectedQuota  *telemetry.Counter
	rejectedBudget *telemetry.Counter
	ingestRejected *telemetry.Counter
}

func newGovernor(quota TenantQuota, reg *telemetry.Registry, faults GovernanceFaultInjector) *governor {
	return &governor{
		quota:          quota,
		tenants:        make(map[string]*tenantState),
		nowFn:          func() int64 { return time.Now().UnixNano() },
		faults:         faults,
		admitted:       reg.Counter("governance.admitted"),
		rejectedQuota:  reg.Counter("governance.rejected_quota"),
		rejectedBudget: reg.Counter("governance.rejected_budget"),
		ingestRejected: reg.Counter("governance.ingest_rejected"),
	}
}

func (g *governor) tenantLocked(tenant string) *tenantState {
	ts, ok := g.tenants[tenant]
	if !ok {
		now := g.nowFn()
		ts = &tenantState{
			reg:    newBucket(g.quota.RegRate, g.quota.RegBurst, now),
			ingest: newBucket(g.quota.IngestRate, g.quota.IngestBurst, now),
		}
		g.tenants[tenant] = ts
	}
	return ts
}

// admitRegister reserves one registration slot for the tenant; the
// caller must releaseQuery on any later failure. ErrTenantQuota is
// retryable (the bucket refills, queries unregister).
func (g *governor) admitRegister(tenant string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.faults != nil && g.faults.TenantExhausted(tenant) {
		g.rejectedQuota.Inc()
		return ErrTenantQuota
	}
	if !g.quota.enabled() {
		g.admitted.Inc()
		return nil
	}
	ts := g.tenantLocked(tenant)
	if g.quota.MaxQueries > 0 && ts.queries >= g.quota.MaxQueries {
		g.rejectedQuota.Inc()
		return ErrTenantQuota
	}
	if !ts.reg.take(g.nowFn()) {
		g.rejectedQuota.Inc()
		return ErrTenantQuota
	}
	ts.queries++
	g.admitted.Inc()
	return nil
}

// releaseQuery returns a registration slot (unregister, failed
// placement, failed engine registration).
func (g *governor) releaseQuery(tenant string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ts, ok := g.tenants[tenant]; ok && ts.queries > 0 {
		ts.queries--
	}
}

// admitIngest charges one tenant-attributed tuple.
func (g *governor) admitIngest(tenant string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.faults != nil && g.faults.TenantExhausted(tenant) {
		g.ingestRejected.Inc()
		return ErrTenantQuota
	}
	if g.quota.IngestRate <= 0 {
		return nil
	}
	if !g.tenantLocked(tenant).ingest.take(g.nowFn()) {
		g.ingestRejected.Inc()
		return ErrTenantQuota
	}
	return nil
}

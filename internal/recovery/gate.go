package recovery

import (
	"sync"

	"repro/internal/relation"
	"repro/internal/telemetry"
)

// Sink mirrors the engine's sink signature without importing it (the
// engine layer converts).
type Sink func(queryID string, windowEnd int64, schema relation.Schema, rows []relation.Tuple)

// Gate enforces exactly-once window delivery across failover. It owns
// the per-query emitted-window high-water mark and lives in the cluster
// (not in any node's engine), so it survives worker death: a window
// re-executed during replay on the recovery target is suppressed when
// its end is at or below the mark.
//
// Delivery and mark advance happen atomically under one per-query
// mutex, so a crash between them is impossible to observe downstream —
// the crash-after-emit fault injection point fires after the mark has
// advanced, modelling a worker dying before its next checkpoint, which
// replay then deduplicates.
type Gate struct {
	mu      sync.Mutex
	queries map[string]*gateEntry
	deduped *telemetry.Counter
	emitted *telemetry.Counter
}

type gateEntry struct {
	mu   sync.Mutex
	hwm  int64
	seen bool // distinguishes "no window yet" from a real hwm of 0
}

// NewGate builds a gate; counters may be nil (standalone use in tests).
func NewGate(deduped, emitted *telemetry.Counter) *Gate {
	if deduped == nil {
		deduped = &telemetry.Counter{}
	}
	if emitted == nil {
		emitted = &telemetry.Counter{}
	}
	return &Gate{queries: make(map[string]*gateEntry), deduped: deduped, emitted: emitted}
}

func (g *Gate) entry(id string) *gateEntry {
	g.mu.Lock()
	defer g.mu.Unlock()
	e := g.queries[id]
	if e == nil {
		e = &gateEntry{}
		g.queries[id] = e
	}
	return e
}

// Wrap returns a sink that forwards to next exactly once per window end
// and advances the query's high-water mark atomically with the
// delivery. afterEmit (optional) runs after each delivered window, with
// no gate locks held — it is the crash-after-emit fault injection
// point and may panic.
func (g *Gate) Wrap(id string, next Sink, afterEmit func(queryID string, windowEnd int64)) Sink {
	e := g.entry(id)
	return func(queryID string, windowEnd int64, schema relation.Schema, rows []relation.Tuple) {
		dup := func() bool {
			e.mu.Lock()
			defer e.mu.Unlock() // a panicking sink must not wedge the gate
			if e.seen && windowEnd <= e.hwm {
				return true
			}
			next(queryID, windowEnd, schema, rows)
			e.hwm, e.seen = windowEnd, true
			return false
		}()
		if dup {
			g.deduped.Inc()
			return
		}
		g.emitted.Inc()
		if afterEmit != nil {
			afterEmit(queryID, windowEnd)
		}
	}
}

// HWM returns a query's emitted high-water mark; ok is false when it
// has not emitted any window yet.
func (g *Gate) HWM(id string) (hwm int64, ok bool) {
	e := g.entry(id)
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hwm, e.seen
}

// SnapshotHWM copies every query's mark (queries with no emission yet
// are omitted), for inclusion in a checkpoint.
func (g *Gate) SnapshotHWM() map[string]int64 {
	g.mu.Lock()
	entries := make(map[string]*gateEntry, len(g.queries))
	for id, e := range g.queries {
		entries[id] = e
	}
	g.mu.Unlock()
	out := make(map[string]int64, len(entries))
	for id, e := range entries {
		e.mu.Lock()
		if e.seen {
			out[id] = e.hwm
		}
		e.mu.Unlock()
	}
	return out
}

// Forget drops a query's mark (on unregister).
func (g *Gate) Forget(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.queries, id)
}

// Package recovery implements pulse-aligned checkpoint/restore with
// exactly-once window delivery for the cluster runtime.
//
// Each worker node periodically serializes its per-query stream state —
// window-operator contents, staged partial windows, wCache batches, and
// per-stream ingest cursors — into a Checkpoint taken on a window-end
// boundary, so every snapshot is a consistent cut. A bounded replay Log
// retains the tuples processed since the last checkpoint. When a worker
// crashes, the supervisor restores the victim's latest checkpoint onto
// the recovery target and re-feeds the logged tuples; the per-stream
// sequence cursors make the replay idempotent, and the emit Gate
// suppresses windows at or below each query's emitted high-water mark,
// so downstream observers see every window exactly once — no loss, no
// duplicates.
//
// The design leans on the bounded-memory criteria of Schiff & Özçep
// (arXiv:2007.16040): the per-window state of the STARQL-style queries
// this system runs is boundable, which is what makes cheap pulse-aligned
// snapshots feasible.
package recovery

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"

	"repro/internal/relation"
	"repro/internal/stream"
)

// Tuple is one logged stream element: the element itself plus the
// per-stream ingest sequence number the cluster assigned at routing
// time. Sequence numbers are 1-based; 0 means "unsequenced" and is
// never filtered.
type Tuple struct {
	Stream string
	Seq    int64
	TS     int64
	Row    relation.Tuple
}

// PendingWindow is one staged-but-incomplete window of a multi-ref
// query: batches delivered for some stream references while others are
// still open.
type PendingWindow struct {
	End     int64
	Batches map[int]stream.Batch
}

// QueryState is the serialized per-query execution state at a cut: one
// window-operator snapshot per stream reference, the staged partial
// windows, quarantine bookkeeping, and the per-stream ingest cursors
// that make replay idempotent.
type QueryState struct {
	ID         string
	Windows    []stream.WindowState
	Pending    []PendingWindow
	Failures   int
	Suspended  bool
	AppliedSeq map[string]int64
	// Governance state: the query's byte budget and DegradeWiden stride
	// survive restore/failover so a degraded query does not resume at
	// full appetite on a fresh node.
	Budget int64
	Stride int64
}

// EngineState is one engine's exported stream state: every registered
// query plus the shared wCache contents.
type EngineState struct {
	Queries []QueryState
	WCache  []stream.CachedWindow
}

// Query returns the state of one query, or nil when the checkpoint
// predates its registration.
func (s *EngineState) Query(id string) *QueryState {
	for i := range s.Queries {
		if s.Queries[i].ID == id {
			return &s.Queries[i]
		}
	}
	return nil
}

// Checkpoint is one node's consistent cut: the engine state, the
// per-stream ingest cursors at the cut (replay resumes after them), and
// the emitted-window high-water marks at the time of the cut
// (informational — the authoritative marks live in the Gate, which
// survives node death).
type Checkpoint struct {
	Node      int
	TakenAtMS int64
	Cursors   map[string]int64
	EmitHWM   map[string]int64
	Engine    EngineState
}

// QueryState returns the checkpointed state of one query, or nil.
func (c *Checkpoint) QueryState(id string) *QueryState {
	if c == nil {
		return nil
	}
	return c.Engine.Query(id)
}

// ---- codec ----
//
// Checkpoints are framed as an 8-byte payload length, an 8-byte FNV-1a
// checksum, and a gob-encoded payload. A torn write (crash mid-write,
// injected corruption) fails the checksum or the gob decode, and the
// store falls back to the previous checkpoint.

func fnv1a(b []byte) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(b); i++ {
		h ^= uint64(b[i])
		h *= 1099511628211
	}
	return h
}

// Encode serializes a checkpoint into its framed wire form.
func Encode(ck *Checkpoint) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(ck); err != nil {
		return nil, fmt.Errorf("recovery: encode checkpoint: %w", err)
	}
	p := payload.Bytes()
	out := make([]byte, 16+len(p))
	binary.LittleEndian.PutUint64(out[0:8], uint64(len(p)))
	binary.LittleEndian.PutUint64(out[8:16], fnv1a(p))
	copy(out[16:], p)
	return out, nil
}

// Decode parses a framed checkpoint, detecting torn (truncated or
// corrupted) writes.
func Decode(b []byte) (*Checkpoint, error) {
	if len(b) < 16 {
		return nil, fmt.Errorf("recovery: torn checkpoint: %d bytes, want >= 16", len(b))
	}
	n := binary.LittleEndian.Uint64(b[0:8])
	if uint64(len(b)-16) != n {
		return nil, fmt.Errorf("recovery: torn checkpoint: payload %d bytes, header says %d", len(b)-16, n)
	}
	if sum := fnv1a(b[16:]); sum != binary.LittleEndian.Uint64(b[8:16]) {
		return nil, fmt.Errorf("recovery: torn checkpoint: checksum mismatch")
	}
	var ck Checkpoint
	if err := gob.NewDecoder(bytes.NewReader(b[16:])).Decode(&ck); err != nil {
		return nil, fmt.Errorf("recovery: decode checkpoint: %w", err)
	}
	return &ck, nil
}

// ---- store ----

// store retains the last two committed checkpoint blobs per node. The
// latest blob is verified by decoding at save time; a torn write is
// reported to the caller (which must then keep its replay log intact)
// and Latest falls back to the previous blob.
type store struct {
	mu    sync.Mutex
	cur   map[int][]byte
	prev  map[int][]byte
	saved map[int]int64 // TakenAtMS of the current blob, for age accounting
}

func newStore() *store {
	return &store{cur: map[int][]byte{}, prev: map[int][]byte{}, saved: map[int]int64{}}
}

// save commits a blob for a node, shifting the previous current blob to
// the fallback slot, and returns the superseded blob's TakenAtMS (0 when
// none).
func (s *store) save(node int, blob []byte, takenAtMS int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.cur[node]; ok {
		s.prev[node] = old
	}
	s.cur[node] = blob
	prevAt := s.saved[node]
	s.saved[node] = takenAtMS
	return prevAt
}

// latest returns the newest decodable checkpoint for a node. torn
// reports whether the current blob was unreadable and the previous one
// was used instead.
func (s *store) latest(node int) (ck *Checkpoint, torn bool) {
	s.mu.Lock()
	cur, prev := s.cur[node], s.prev[node]
	s.mu.Unlock()
	if cur != nil {
		if ck, err := Decode(cur); err == nil {
			return ck, false
		}
	}
	if prev != nil {
		if ck, err := Decode(prev); err == nil {
			return ck, true
		}
	}
	return nil, cur != nil
}

// MergeFeeds merges replay feeds from several sources (victim log,
// salvaged queue, target log) into one deduplicated sequence ordered by
// (stream, seq). Per-stream sequence order is processing order; the
// per-query cursors make any residual overlap with live traffic
// idempotent.
func MergeFeeds(feeds ...[]Tuple) []Tuple {
	var out []Tuple
	for _, f := range feeds {
		out = append(out, f...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Stream != out[j].Stream {
			return out[i].Stream < out[j].Stream
		}
		return out[i].Seq < out[j].Seq
	})
	kept := out[:0]
	for i, t := range out {
		if i > 0 && t.Stream == out[i-1].Stream && t.Seq == out[i-1].Seq && t.Seq != 0 {
			continue
		}
		kept = append(kept, t)
	}
	return kept
}

package recovery

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/stream"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Node:      2,
		TakenAtMS: 12345,
		Cursors:   map[string]int64{"m": 41, "n": 7},
		EmitHWM:   map[string]int64{"q1": 2000},
		Engine: EngineState{
			Queries: []QueryState{{
				ID: "q1",
				Windows: []stream.WindowState{{
					Spec:     stream.WindowSpec{RangeMS: 1000, SlideMS: 500},
					NextEmit: 3,
					MaxTS:    1499,
					Pending: []stream.Batch{{
						Start: 1000, End: 2000,
						Rows: []relation.Tuple{{relation.Int(1), relation.Float(2.5)}},
					}},
				}},
				Pending:    []PendingWindow{{End: 2000, Batches: map[int]stream.Batch{0: {End: 2000}}}},
				AppliedSeq: map[string]int64{"m": 41},
				Budget:     1 << 20,
				Stride:     4,
			}},
		},
	}
}

func TestCodecRoundtrip(t *testing.T) {
	ck := sampleCheckpoint()
	blob, err := Encode(ck)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ck, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, ck)
	}
}

func TestDecodeRejectsTornBlobs(t *testing.T) {
	blob, err := Encode(sampleCheckpoint())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"truncated":   blob[:len(blob)/2],
		"tiny":        blob[:8],
		"bit-flipped": append(append([]byte(nil), blob[:20]...), append([]byte{blob[20] ^ 0xff}, blob[21:]...)...),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s blob decoded without error", name)
		}
	}
}

func TestStoreFallsBackToPreviousCheckpoint(t *testing.T) {
	c := NewCoordinator(1, 0, nil)
	first := sampleCheckpoint()
	first.TakenAtMS = 100
	if _, err := c.Save(0, first, nil); err != nil {
		t.Fatal(err)
	}
	second := sampleCheckpoint()
	second.TakenAtMS = 200
	if _, err := c.Save(0, second, func(b []byte) []byte { return b[:len(b)/2] }); err == nil {
		t.Fatal("torn save did not report an error")
	}
	got := c.Latest(0)
	if got == nil || got.TakenAtMS != 100 {
		t.Fatalf("Latest = %+v, want fallback to TakenAtMS=100", got)
	}
}

func TestLatestNilWithoutCheckpoints(t *testing.T) {
	c := NewCoordinator(1, 0, nil)
	if ck := c.Latest(0); ck != nil {
		t.Fatalf("Latest on empty store = %+v, want nil", ck)
	}
}

// With BOTH retained blobs torn the store has nothing decodable:
// Latest must report nil (cold start from an empty cut) rather than a
// corrupt checkpoint, and the replay log — which is only truncated on a
// successful save — still covers everything from sequence zero, so a
// full-log replay reconstructs the state.
func TestStoreBothBlobsTornColdStart(t *testing.T) {
	tear := func(b []byte) []byte { return b[:len(b)/2] }
	c := NewCoordinator(1, 0, nil)
	for seq := int64(1); seq <= 4; seq++ {
		c.Log(0).Append(logTuple("m", seq))
	}
	for i := 0; i < 2; i++ {
		ck := sampleCheckpoint()
		ck.TakenAtMS = int64(100 * (i + 1))
		if _, err := c.Save(0, ck, tear); err == nil {
			t.Fatalf("torn save %d did not report an error", i+1)
		}
	}
	if ck := c.Latest(0); ck != nil {
		t.Fatalf("Latest with both blobs torn = %+v, want nil", ck)
	}
	// Empty cursors (the cold-start cut): the intact log must cover the
	// gap and replay every logged tuple.
	empty := map[string]int64{}
	if !c.Log(0).Covered(empty) {
		t.Fatal("replay log lost coverage despite no successful truncating save")
	}
	if got := len(c.Log(0).Since(empty)); got != 4 {
		t.Fatalf("full-log replay returned %d tuples, want 4", got)
	}
}

func logTuple(stream string, seq int64) Tuple {
	return Tuple{Stream: stream, Seq: seq, TS: seq * 10, Row: relation.Tuple{relation.Int(seq)}}
}

func TestLogSinceAndTruncate(t *testing.T) {
	l := NewLog(16)
	for seq := int64(1); seq <= 6; seq++ {
		l.Append(logTuple("m", seq))
	}
	got := l.Since(map[string]int64{"m": 4})
	if len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("Since = %+v, want seqs 5,6", got)
	}
	l.TruncateThrough(map[string]int64{"m": 5})
	if l.Len() != 1 {
		t.Fatalf("Len after truncate = %d, want 1", l.Len())
	}
	if !l.Covered(map[string]int64{}) {
		t.Fatal("truncation must not count as coverage loss")
	}
}

func TestLogCapacityShedLosesCoverage(t *testing.T) {
	l := NewLog(4)
	for seq := int64(1); seq <= 6; seq++ {
		l.Append(logTuple("m", seq))
	}
	// Seqs 1 and 2 were shed by capacity: a cut at 1 is no longer covered,
	// a cut at 2 (or later) is.
	if l.Covered(map[string]int64{"m": 1}) {
		t.Fatal("cut at 1 reported covered after shedding seq 2")
	}
	if !l.Covered(map[string]int64{"m": 2}) {
		t.Fatal("cut at 2 reported uncovered")
	}
}

func TestLogNearCap(t *testing.T) {
	l := NewLog(8)
	for seq := int64(1); seq <= 5; seq++ {
		l.Append(logTuple("m", seq))
	}
	if l.NearCap() {
		t.Fatal("NearCap below three-quarters full = true, want false")
	}
	l.Append(logTuple("m", 6))
	if !l.NearCap() {
		t.Fatalf("NearCap at 6/8 = false, want true")
	}
	l.TruncateThrough(map[string]int64{"m": 5})
	if l.NearCap() {
		t.Fatal("NearCap after truncation = true, want false")
	}
}

func TestGateDeduplicatesBelowHWM(t *testing.T) {
	g := NewGate(nil, nil)
	var ends []int64
	sink := func(_ string, end int64, _ relation.Schema, _ []relation.Tuple) {
		ends = append(ends, end)
	}
	wrapped := g.Wrap("q", sink, nil)
	wrapped("q", 0, relation.Schema{}, nil) // windowEnd 0 is a legitimate first window
	wrapped("q", 1000, relation.Schema{}, nil)
	wrapped("q", 1000, relation.Schema{}, nil) // duplicate after replay
	wrapped("q", 500, relation.Schema{}, nil)  // below the mark
	wrapped("q", 2000, relation.Schema{}, nil)
	want := []int64{0, 1000, 2000}
	if !reflect.DeepEqual(ends, want) {
		t.Fatalf("delivered ends = %v, want %v", ends, want)
	}
	if hwm, ok := g.HWM("q"); !ok || hwm != 2000 {
		t.Fatalf("HWM = %d,%v want 2000,true", hwm, ok)
	}
}

func TestGatePanickingSinkDoesNotWedge(t *testing.T) {
	g := NewGate(nil, nil)
	calls := 0
	sink := func(_ string, end int64, _ relation.Schema, _ []relation.Tuple) {
		calls++
		if calls == 1 {
			panic("sink crash")
		}
	}
	wrapped := g.Wrap("q", sink, nil)
	func() {
		defer func() { recover() }()
		wrapped("q", 1000, relation.Schema{}, nil)
	}()
	// A panic inside the sink means delivery did not complete: the mark
	// must NOT advance (the replayed window is re-delivered), and the
	// gate's per-query mutex must not stay locked.
	wrapped("q", 1000, relation.Schema{}, nil)
	if calls != 2 {
		t.Fatalf("window 1000 delivered %d times after a failed attempt, want 2", calls)
	}
	if hwm, ok := g.HWM("q"); !ok || hwm != 1000 {
		t.Fatalf("HWM = %d,%v want 1000,true", hwm, ok)
	}
	wrapped("q", 2000, relation.Schema{}, nil)
	if calls != 3 {
		t.Fatalf("gate wedged after sink panic: calls = %d", calls)
	}
}

func TestGateConcurrentQueriesIndependent(t *testing.T) {
	g := NewGate(nil, nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		sink := g.Wrap(id, func(string, int64, relation.Schema, []relation.Tuple) {}, nil)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for end := int64(0); end < 100; end++ {
				sink(id, end*100, relation.Schema{}, nil)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		if hwm, ok := g.HWM(id); !ok || hwm != 9900 {
			t.Fatalf("HWM(%s) = %d,%v want 9900,true", id, hwm, ok)
		}
	}
}

func TestMergeFeedsOrdersAndDedups(t *testing.T) {
	a := []Tuple{logTuple("m", 3), logTuple("m", 1), logTuple("n", 2)}
	b := []Tuple{logTuple("m", 3), logTuple("m", 2), {Stream: "m", Seq: 0}, {Stream: "m", Seq: 0}}
	got := MergeFeeds(a, b)
	var seqs []int64
	for _, tp := range got {
		if tp.Stream == "m" {
			seqs = append(seqs, tp.Seq)
		}
	}
	// Unsequenced (seq 0) tuples are never deduplicated.
	want := []int64{0, 0, 1, 2, 3}
	if !reflect.DeepEqual(seqs, want) {
		t.Fatalf("merged m-seqs = %v, want %v", seqs, want)
	}
}

package recovery

import "sync"

// Log is one node's bounded retained-tuple replay log: every tuple the
// node processed since its last committed checkpoint, in processing
// order. On crash the supervisor re-feeds Since(cursors) to the restored
// engine; after a committed checkpoint the node truncates the covered
// prefix.
//
// The log is a ring: when capacity pressure sheds an uncovered tuple,
// exactly-once coverage for that stream is lost (the restore degrades to
// salvage-only for the gap) and Covered reports it.
type Log struct {
	mu   sync.Mutex
	buf  []Tuple
	cap  int
	// dropped tracks, per stream, the highest sequence number shed by
	// capacity pressure (not by checkpoint truncation). Coverage holds
	// for a cut iff every dropped seq is at or below the cut.
	dropped map[string]int64
}

// DefaultLogCap bounds each node's replay log when Options.ReplayLogCap
// is left zero.
const DefaultLogCap = 8192

// NewLog builds a log with the given capacity (entries).
func NewLog(capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultLogCap
	}
	return &Log{cap: capacity, dropped: make(map[string]int64)}
}

// Append records one processed tuple, shedding the oldest entry when
// full.
func (l *Log) Append(t Tuple) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) >= l.cap {
		old := l.buf[0]
		if old.Seq > l.dropped[old.Stream] {
			l.dropped[old.Stream] = old.Seq
		}
		l.buf = append(l.buf[:0], l.buf[1:]...)
	}
	l.buf = append(l.buf, t)
}

// Since returns the retained tuples strictly after the per-stream cut
// cursors (a stream absent from cursors cuts at 0), in processing order.
func (l *Log) Since(cursors map[string]int64) []Tuple {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Tuple
	for _, t := range l.buf {
		if t.Seq <= cursors[t.Stream] {
			continue
		}
		out = append(out, t)
	}
	return out
}

// Covered reports whether the log still holds every tuple after the cut:
// false when capacity pressure shed an uncovered tuple, which means a
// restore from this cut cannot guarantee exactly-once for the gap.
func (l *Log) Covered(cursors map[string]int64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for s, seq := range l.dropped {
		if seq > cursors[s] {
			return false
		}
	}
	return true
}

// TruncateThrough drops entries covered by a committed checkpoint's
// cursors. Truncation is not a coverage loss.
func (l *Log) TruncateThrough(cursors map[string]int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	kept := l.buf[:0]
	for _, t := range l.buf {
		if t.Seq <= cursors[t.Stream] {
			continue
		}
		kept = append(kept, t)
	}
	l.buf = kept
}

// NearCap reports whether the log is at least three-quarters full — the
// checkpoint scheduler's signal to stop waiting for a window-end
// boundary and cut now, before coverage is lost.
func (l *Log) NearCap() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)*4 >= l.cap*3
}

// Len returns the number of retained tuples.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

package recovery

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// Coordinator owns the cluster's recovery state: the checkpoint store,
// one replay log per node, the emit gate, and the recovery.* telemetry.
// It lives in the Cluster (outside any node's engine) so node death
// never takes it down.
type Coordinator struct {
	store *store
	logs  []*Log
	gate  *Gate

	checkpoints  *telemetry.Counter
	torn         *telemetry.Counter
	restores     *telemetry.Counter
	replayed     *telemetry.Counter
	lostCoverage *telemetry.Counter
	ckptBytes    *telemetry.Gauge
	ckptAgeMS    *telemetry.Gauge
	ckptNS       *telemetry.Histogram
}

// NewCoordinator builds recovery state for a cluster of the given size.
// logCap bounds each node's replay log (0 = DefaultLogCap). The
// registry receives the recovery.* metrics; nil gets a private one.
func NewCoordinator(nodes, logCap int, reg *telemetry.Registry) *Coordinator {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	c := &Coordinator{
		store:        newStore(),
		logs:         make([]*Log, nodes),
		checkpoints:  reg.Counter("recovery.checkpoints"),
		torn:         reg.Counter("recovery.torn"),
		restores:     reg.Counter("recovery.restores"),
		replayed:     reg.Counter("recovery.replayed"),
		lostCoverage: reg.Counter("recovery.lost_coverage"),
		ckptBytes:    reg.Gauge("recovery.checkpoint.bytes"),
		ckptAgeMS:    reg.Gauge("recovery.checkpoint.age_ms"),
		ckptNS:       reg.Histogram("recovery.checkpoint.ns", telemetry.LatencyBuckets),
	}
	c.gate = NewGate(reg.Counter("recovery.deduped_windows"), reg.Counter("recovery.emitted_windows"))
	for i := range c.logs {
		c.logs[i] = NewLog(logCap)
	}
	return c
}

// Gate returns the cluster-wide exactly-once emit gate.
func (c *Coordinator) Gate() *Gate { return c.gate }

// Log returns a node's replay log.
func (c *Coordinator) Log(node int) *Log { return c.logs[node] }

// Save encodes and commits a node's checkpoint, then verifies the
// committed bytes by decoding them back (the moral equivalent of an
// fsync-and-read-back). corrupt, when non-nil, mutates the encoded blob
// before the commit — the torn-checkpoint fault injection point. On
// verification failure the torn blob stays committed (Latest falls back
// to the previous checkpoint) and Save returns an error so the caller
// keeps its replay log intact.
func (c *Coordinator) Save(node int, ck *Checkpoint, corrupt func([]byte) []byte) (int, error) {
	start := time.Now()
	blob, err := Encode(ck)
	if err != nil {
		return 0, err
	}
	if corrupt != nil {
		blob = corrupt(blob)
	}
	prevAt := c.store.save(node, blob, ck.TakenAtMS)
	c.ckptNS.ObserveDuration(time.Since(start))
	c.ckptBytes.Set(float64(len(blob)))
	if prevAt > 0 && ck.TakenAtMS >= prevAt {
		// Age of the checkpoint being superseded: how stale a restore
		// would have been just before this cut.
		c.ckptAgeMS.Set(float64(ck.TakenAtMS - prevAt))
	}
	if _, err := Decode(blob); err != nil {
		c.torn.Inc()
		return len(blob), fmt.Errorf("recovery: node %d checkpoint failed verification: %w", node, err)
	}
	c.checkpoints.Inc()
	return len(blob), nil
}

// Latest returns the newest decodable checkpoint for a node (nil when
// none), counting a torn-fallback when the current blob was unreadable.
func (c *Coordinator) Latest(node int) *Checkpoint {
	ck, torn := c.store.latest(node)
	if torn {
		c.torn.Inc()
	}
	return ck
}

// NoteRestore counts one completed checkpoint restore (restart or
// failover target).
func (c *Coordinator) NoteRestore() { c.restores.Inc() }

// NoteReplayed counts tuples re-fed from replay logs/salvage.
func (c *Coordinator) NoteReplayed(n int) { c.replayed.Add(int64(n)) }

// NoteLostCoverage counts a restore whose replay log had shed uncovered
// tuples — exactly-once degraded to salvage-only for the gap.
func (c *Coordinator) NoteLostCoverage() { c.lostCoverage.Inc() }

package core

import (
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obda/mapping"
	"repro/internal/rdf"
	"repro/internal/relation"
	"repro/internal/stream"
)

// Nested STARQL queries (paper §2: "STARQL queries can be nested, thus
// allowing to employ the result of one query as input when constructing
// another query"): a task's CREATE STREAM output becomes a first-class
// stream. EnableOutputStream declares the derived stream, registers
// mappings for the CONSTRUCT vocabulary over it, and wires the task's
// answers back into the runtime, so downstream tasks can say
// FROM STREAM <outputName>.
//
// Derived stream schema: out_<name>(subj TEXT, ts TIMESTAMP, flag INT);
// each emitted CONSTRUCT triple of the form (s, rdf:type, C) becomes a
// tuple (s, windowEnd, 1), and C is mapped over the stream with the raw
// subject template "{subj}".

// feeder decouples answer re-ingestion from the emitting node's
// goroutine (a sink that called Ingest synchronously could deadlock on
// its own node's full queue).
type feeder struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []feedItem
	closed   bool
	stopped  chan struct{}
	enqueued int64 // total items accepted (read atomically)
}

type feedItem struct {
	stream string
	el     stream.Timestamped
}

func newFeeder(ingest func(string, stream.Timestamped) error) *feeder {
	f := &feeder{stopped: make(chan struct{})}
	f.cond = sync.NewCond(&f.mu)
	go func() {
		defer close(f.stopped)
		for {
			f.mu.Lock()
			for len(f.queue) == 0 && !f.closed {
				f.cond.Wait()
			}
			if f.closed && len(f.queue) == 0 {
				f.mu.Unlock()
				return
			}
			item := f.queue[0]
			f.queue = f.queue[1:]
			f.mu.Unlock()
			_ = ingest(item.stream, item.el) // errors surface via node stats
			f.mu.Lock()
			f.cond.Broadcast() // wake Drain waiters
			f.mu.Unlock()
		}
	}()
	return f
}

func (f *feeder) enqueue(streamName string, el stream.Timestamped) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.queue = append(f.queue, feedItem{streamName, el})
	atomic.AddInt64(&f.enqueued, 1)
	f.cond.Broadcast()
}

// drain blocks until the queue is empty (items may still be in flight
// inside cluster queues; System.Flush loops drain+flush to a fixpoint).
func (f *feeder) drain() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.queue) > 0 && !f.closed {
		f.cond.Wait()
	}
}

func (f *feeder) close() {
	f.mu.Lock()
	f.closed = true
	f.cond.Broadcast()
	f.mu.Unlock()
	<-f.stopped
}

// derivedStreamName is the runtime stream name of a task's output.
func derivedStreamName(taskName string) string {
	return "out_" + strings.ToLower(taskName)
}

// EnableOutputStream makes a task's CONSTRUCT output consumable as a
// stream by later tasks. Call it BEFORE registering the producing task;
// it declares the derived stream and maps every class appearing in the
// task's CONSTRUCT type-atoms over it. It returns the stream name to
// use in downstream FROM STREAM clauses.
func (s *System) EnableOutputStream(taskName string, constructClasses []string) (string, error) {
	name := derivedStreamName(taskName)
	sc := stream.Schema{
		Name: name,
		Tuple: relation.NewSchema(
			relation.Col("subj", relation.TString),
			relation.Col("ts", relation.TTime),
			relation.Col("flag", relation.TInt),
		),
		TSCol: "ts",
	}
	for _, cls := range constructClasses {
		if err := s.mappings.Add(mapping.Mapping{
			ID:      "derived:" + name + ":" + cls,
			Pred:    cls,
			IsClass: true,
			Subject: mapping.MustParseTemplate("{subj}"),
			Source:  mapping.SourceRef{Table: name, IsStream: true},
		}); err != nil {
			return "", err
		}
		// A data property carrying the flag lets downstream HAVING
		// clauses reference the alert as an attribute.
		if err := s.mappings.Add(mapping.Mapping{
			ID:           "derivedflag:" + name + ":" + cls,
			Pred:         cls + "_flag",
			Subject:      mapping.MustParseTemplate("{subj}"),
			Object:       mapping.MustParseTemplate("{flag}"),
			ObjectIsData: true,
			Source:       mapping.SourceRef{Table: name, IsStream: true},
		}); err != nil {
			return "", err
		}
	}
	if err := s.DeclareStream(sc); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.feeder == nil {
		s.feeder = newFeeder(s.cluster.Ingest)
	}
	s.derived[strings.ToLower(taskName)] = name
	s.mu.Unlock()
	return name, nil
}

// forwardAnswers pushes CONSTRUCT triples into the task's derived
// stream, if one was enabled.
func (s *System) forwardAnswers(taskName string, windowEnd int64, triples []rdf.Triple) {
	s.mu.Lock()
	name, ok := s.derived[strings.ToLower(taskName)]
	f := s.feeder
	s.mu.Unlock()
	if !ok || f == nil {
		return
	}
	for _, tr := range triples {
		f.enqueue(name, stream.Timestamped{
			TS: windowEnd,
			Row: relation.Tuple{
				relation.String_(tr.S.Value),
				relation.Time(windowEnd),
				relation.Int(1),
			},
		})
	}
}

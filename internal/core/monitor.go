package core

import (
	"sort"
	"sync"

	"repro/internal/rdf"
)

// Answer monitoring (paper §2: "For end-users OPTIQUE offers tools for
// query formulation support, query cataloging, answer monitoring"; §3:
// dashboards show "diagnostics results in real time, as well as
// statistics on streaming answers, relevant turbines"): each task keeps
// a bounded ring of its most recent alerts, and Dashboard() snapshots
// per-task statistics for a monitoring UI.

// Alert is one retained answer.
type Alert struct {
	TaskID    string
	WindowEnd int64
	Triple    rdf.Triple
}

// alertRing is a bounded FIFO of recent alerts.
type alertRing struct {
	mu    sync.Mutex
	buf   []Alert
	next  int
	count int64
}

const alertRingSize = 64

func (r *alertRing) add(a Alert) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		r.buf = make([]Alert, alertRingSize)
	}
	r.buf[r.next%alertRingSize] = a
	r.next++
	r.count++
}

// recent returns the retained alerts, oldest first.
func (r *alertRing) recent() []Alert {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buf == nil {
		return nil
	}
	n := r.next
	size := alertRingSize
	if n < size {
		size = n
	}
	out := make([]Alert, 0, size)
	for i := n - size; i < n; i++ {
		out = append(out, r.buf[i%alertRingSize])
	}
	return out
}

// TaskStatus is one dashboard row.
type TaskStatus struct {
	ID       string
	Node     int
	Windows  int64
	Answers  int64
	Bindings int
	// AffectedSubjects are the distinct alert subjects currently retained
	// (the dashboard's "relevant turbines" column).
	AffectedSubjects []string
	RecentAlerts     []Alert
}

// RecentAlerts returns a task's retained alerts, oldest first.
func (t *Task) RecentAlerts() []Alert { return t.ring.recent() }

// Dashboard snapshots every registered task's monitoring statistics,
// sorted by task id.
func (s *System) Dashboard() []TaskStatus {
	s.mu.Lock()
	tasks := make([]*Task, 0, len(s.tasks))
	for _, t := range s.tasks {
		tasks = append(tasks, t)
	}
	s.mu.Unlock()
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].ID < tasks[j].ID })

	out := make([]TaskStatus, 0, len(tasks))
	for _, t := range tasks {
		alerts := t.RecentAlerts()
		seen := map[string]bool{}
		var subjects []string
		for _, a := range alerts {
			if !seen[a.Triple.S.Value] {
				seen[a.Triple.S.Value] = true
				subjects = append(subjects, a.Triple.S.Value)
			}
		}
		sort.Strings(subjects)
		out = append(out, TaskStatus{
			ID: t.ID, Node: t.Node,
			Windows: t.Windows(), Answers: t.Answers(),
			Bindings:         len(t.Bindings),
			AffectedSubjects: subjects,
			RecentAlerts:     alerts,
		})
	}
	return out
}

package core

import (
	"sync/atomic"
	"testing"

	"repro/internal/rdf"
	"repro/internal/siemens"
)

// TestNestedQueries chains two STARQL tasks: the Figure 1 monotonic-
// increase detector feeds a second query that watches the detector's
// output stream — the paper's "employ the result of one query as input
// when constructing another query".
func TestNestedQueries(t *testing.T) {
	sys, gen := deploy(t, 1)

	// Producer: the catalog's Figure 1 task; its output stream carries
	// out:MonInc alerts.
	producer, _ := siemens.TaskByID("T01_mon_temperature")
	outClass := siemens.OutNS + "MonInc"
	outStream, err := sys.EnableOutputStream("T01_mon_temperature", []string{outClass})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterTask(producer.ID, producer.Query, nil); err != nil {
		t.Fatal(err)
	}

	// Consumer: escalate when a MonInc alert appears in the derived
	// stream. The WHERE still binds sensors from the static data; the
	// HAVING checks the derived alert flag.
	consumer := `
PREFIX sie: <http://siemens.com/ontology#>
PREFIX out: <http://siemens.com/out#>
CREATE STREAM escalation AS
CONSTRUCT GRAPH NOW { ?s rdf:type out:Escalated }
FROM STREAM ` + outStream + ` [NOW-"PT30S", NOW]->"PT5S",
STATIC DATA <http://x/static>, ONTOLOGY <http://x/tbox>
WHERE { ?a a sie:Assembly. ?s a sie:Sensor. ?a sie:inAssembly ?s. }
SEQUENCE BY StdSeq AS seq
HAVING THRESHOLD.ABOVE(?s, out:MonInc_flag, 0)
`
	var escalations int64
	escalated := map[string]bool{}
	if _, err := sys.RegisterTask("escalate", consumer,
		func(_ string, _ int64, ts []rdf.Triple) {
			atomic.AddInt64(&escalations, int64(len(ts)))
			for _, tr := range ts {
				escalated[tr.S.Value] = true
			}
		}); err != nil {
		t.Fatal(err)
	}

	events := feedDefaultEvents(t, sys, gen, 0, 60_000, 500, gen.SensorsOfTurbine(0))
	var rampSensor int64
	for _, e := range events {
		if e.Kind == siemens.EventMonotonicFailure && e.SensorID <= int64(gen.Config().SensorsPerTurbine) {
			rampSensor = e.SensorID
		}
	}
	if atomic.LoadInt64(&escalations) == 0 {
		t.Fatal("no escalations from the nested query")
	}
	if !escalated[siemens.SensorIRI(rampSensor)] {
		t.Fatalf("ramp sensor %d not escalated: %v", rampSensor, escalated)
	}
}

// TestEnableOutputStreamValidation covers error paths.
func TestEnableOutputStreamValidation(t *testing.T) {
	sys, _ := deploy(t, 1)
	if _, err := sys.EnableOutputStream("x", []string{"http://c#A"}); err != nil {
		t.Fatal(err)
	}
	// Enabling the same output twice fails on the duplicate stream.
	if _, err := sys.EnableOutputStream("x", []string{"http://c#A"}); err == nil {
		t.Error("duplicate output stream accepted")
	}
}

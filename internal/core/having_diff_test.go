package core

import (
	"sort"
	"testing"

	"repro/internal/siemens"
)

// deployWith is deploy with an explicit Config (streams declared, small
// fleet), for the compiled-vs-interpreted HAVING ablations.
func deployWith(t *testing.T, cfg Config) (*System, *siemens.Generator) {
	t.Helper()
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(cfg, siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	return sys, gen
}

func sortedAlerts(log *answerLog) []string {
	log.mu.Lock()
	defer log.mu.Unlock()
	out := make([]string, 0, len(log.triples))
	for _, tr := range log.triples {
		out = append(out, tr.S.Value+" "+tr.P.Value+" "+tr.O.Value)
	}
	sort.Strings(out)
	return out
}

// TestCompiledHavingAlertParity replays the Figure 1 workload through
// two systems that differ only in the HAVING evaluation mode and
// asserts they raise the identical alert set.
func TestCompiledHavingAlertParity(t *testing.T) {
	runOnce := func(interpret bool) ([]string, *Task) {
		sys, gen := deployWith(t, Config{Nodes: 1, InterpretHaving: interpret})
		spec, ok := siemens.TaskByID("T01_mon_temperature")
		if !ok {
			t.Fatal("catalog task missing")
		}
		log := &answerLog{}
		task, err := sys.RegisterTask(spec.ID, spec.Query, log.sink)
		if err != nil {
			t.Fatal(err)
		}
		feedDefaultEvents(t, sys, gen, 0, 60_000, 500, gen.SensorsOfTurbine(0))
		return sortedAlerts(log), task
	}
	compiled, ctask := runOnce(false)
	interpreted, itask := runOnce(true)
	if !ctask.CompiledHaving() {
		t.Error("default mode did not compile the HAVING matcher")
	}
	if itask.CompiledHaving() {
		t.Error("InterpretHaving still compiled the matcher")
	}
	if len(compiled) == 0 {
		t.Fatal("no alerts raised — the parity check is vacuous")
	}
	if len(compiled) != len(interpreted) {
		t.Fatalf("alert sets differ: %d compiled vs %d interpreted", len(compiled), len(interpreted))
	}
	for i := range compiled {
		if compiled[i] != interpreted[i] {
			t.Fatalf("alert %d differs: compiled %q vs interpreted %q", i, compiled[i], interpreted[i])
		}
	}
}

// TestHavingTelemetry: the HAVING stage reports matcher evaluations,
// matches, compiled-program count, and per-window latency.
func TestHavingTelemetry(t *testing.T) {
	sys, gen := deployWith(t, Config{Nodes: 1})
	spec, _ := siemens.TaskByID("T01_mon_temperature")
	log := &answerLog{}
	if _, err := sys.RegisterTask(spec.ID, spec.Query, log.sink); err != nil {
		t.Fatal(err)
	}
	feedDefaultEvents(t, sys, gen, 0, 30_000, 500, gen.SensorsOfTurbine(0))

	snap := sys.TelemetrySnapshot()
	if snap.Counters["starql.having.compiled"] != 1 {
		t.Errorf("having.compiled = %d, want 1", snap.Counters["starql.having.compiled"])
	}
	evals := snap.Counters["starql.having.evals"]
	matches := snap.Counters["starql.having.matches"]
	if evals == 0 {
		t.Error("no matcher evaluations counted")
	}
	if matches == 0 || matches > evals {
		t.Errorf("having.matches = %d (evals = %d)", matches, evals)
	}
	h, ok := snap.Histograms["starql.having.window_ns"]
	if !ok || h.Count == 0 {
		t.Errorf("window_ns histogram missing or empty: %+v", h)
	}
	var alerts int
	log.mu.Lock()
	alerts = len(log.triples)
	log.mu.Unlock()
	if alerts == 0 {
		t.Error("no alerts — counters not exercised meaningfully")
	}
}

package core

import (
	"testing"

	"repro/internal/rdf"
	"repro/internal/siemens"
)

func TestDashboardReflectsAlerts(t *testing.T) {
	sys, gen := deploy(t, 2)
	for _, id := range []string{"T01_mon_temperature", "T06_thr_pressure"} {
		task, _ := siemens.TaskByID(id)
		if _, err := sys.RegisterTask(task.ID, task.Query, nil); err != nil {
			t.Fatal(err)
		}
	}
	feedDefaultEvents(t, sys, gen, 0, 40_000, 500, gen.SensorsOfTurbine(0))

	rows := sys.Dashboard()
	if len(rows) != 2 {
		t.Fatalf("dashboard rows = %d", len(rows))
	}
	if rows[0].ID >= rows[1].ID {
		t.Error("dashboard not sorted")
	}
	totalAnswers := int64(0)
	for _, r := range rows {
		totalAnswers += r.Answers
		if r.Windows == 0 {
			t.Errorf("%s evaluated no windows", r.ID)
		}
		if r.Answers > 0 {
			if len(r.RecentAlerts) == 0 || len(r.AffectedSubjects) == 0 {
				t.Errorf("%s has answers but no retained alerts: %+v", r.ID, r)
			}
			if int64(len(r.RecentAlerts)) > r.Answers {
				t.Errorf("%s retained more alerts than answers", r.ID)
			}
		}
	}
	if totalAnswers == 0 {
		t.Fatal("no alerts across the dashboard")
	}
}

func TestAlertRingBounded(t *testing.T) {
	var r alertRing
	if got := r.recent(); got != nil {
		t.Errorf("empty ring recent = %v", got)
	}
	for i := 0; i < alertRingSize*3; i++ {
		r.add(Alert{WindowEnd: int64(i), Triple: rdf.NewTriple(
			rdf.NewIRI("s"), rdf.NewIRI("p"), rdf.NewIRI("o"))})
	}
	got := r.recent()
	if len(got) != alertRingSize {
		t.Fatalf("ring size = %d", len(got))
	}
	// Oldest retained is (3N - N), newest is 3N-1, in order.
	if got[0].WindowEnd != int64(alertRingSize*2) ||
		got[len(got)-1].WindowEnd != int64(alertRingSize*3-1) {
		t.Errorf("ring order: first=%d last=%d", got[0].WindowEnd, got[len(got)-1].WindowEnd)
	}
	for i := 1; i < len(got); i++ {
		if got[i].WindowEnd != got[i-1].WindowEnd+1 {
			t.Fatal("ring not in order")
		}
	}
}

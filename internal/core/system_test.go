package core

import (
	"context"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/rdf"
	"repro/internal/siemens"
	"repro/internal/stream"
)

// deploy builds a small-fleet OPTIQUE system.
func deploy(t *testing.T, nodes int) (*System, *siemens.Generator) {
	t.Helper()
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(Config{Nodes: nodes}, siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	return sys, gen
}

// answerLog collects emitted triples.
type answerLog struct {
	mu      sync.Mutex
	triples []rdf.Triple
}

func (a *answerLog) sink(_ string, _ int64, ts []rdf.Triple) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.triples = append(a.triples, ts...)
}

func (a *answerLog) subjects() map[string]bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := map[string]bool{}
	for _, t := range a.triples {
		out[t.S.Value] = true
	}
	return out
}

// feedDefaultEvents replays generated measurements with planted events.
func feedDefaultEvents(t *testing.T, sys *System, gen *siemens.Generator, fromMS, toMS, stepMS int64, sensors []int64) []siemens.Event {
	t.Helper()
	events := gen.PlantDefaultEvents(fromMS, toMS)
	tuples, routes, err := gen.Generate(siemens.StreamConfig{
		FromMS: fromMS, ToMS: toMS, StepMS: stepMS,
		Sensors: sensors, Events: events, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, el := range tuples {
		if err := sys.Ingest(siemens.RouteName(routes[i]), el); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Flush(); err != nil {
		t.Fatal(err)
	}
	return events
}

func TestFigure1EndToEnd(t *testing.T) {
	sys, gen := deploy(t, 1)
	task, ok := siemens.TaskByID("T01_mon_temperature")
	if !ok {
		t.Fatal("catalog task missing")
	}
	log := &answerLog{}
	reg, err := sys.RegisterTask(task.ID, task.Query, log.sink)
	if err != nil {
		t.Fatalf("RegisterTask: %v", err)
	}
	if len(reg.Bindings) == 0 {
		t.Fatal("no WHERE bindings")
	}
	if reg.FleetSize() == 0 {
		t.Fatal("empty fleet")
	}

	// Feed all source-A sensors of turbine 0 (the planted ramp is on its
	// first temperature sensor).
	events := feedDefaultEvents(t, sys, gen, 0, 60_000, 500, gen.SensorsOfTurbine(0))

	var rampSensor int64
	for _, e := range events {
		if e.Kind == siemens.EventMonotonicFailure && e.SensorID <= int64(gen.Config().SensorsPerTurbine) {
			rampSensor = e.SensorID
		}
	}
	if rampSensor == 0 {
		t.Fatal("no planted ramp on turbine 0")
	}
	subjects := log.subjects()
	if !subjects[siemens.SensorIRI(rampSensor)] {
		t.Fatalf("ramp sensor %d not detected; subjects = %v (answers=%d windows=%d)",
			rampSensor, subjects, reg.Answers(), reg.Windows())
	}
	// The detection must be specific: sensors without planted ramps on
	// other kinds (e.g. the speed sensor) must not alert.
	for _, sid := range gen.SensorsOfTurbine(0) {
		if gen.SensorKind(sid) == "speed" && subjects[siemens.SensorIRI(sid)] {
			t.Errorf("false alarm on speed sensor %d", sid)
		}
	}
	// Emitted triples have the CONSTRUCT shape: ?s rdf:type out:MonInc.
	log.mu.Lock()
	defer log.mu.Unlock()
	for _, tr := range log.triples {
		if tr.P.Value != rdf.RDFType || !strings.HasSuffix(tr.O.Value, "MonInc") {
			t.Fatalf("unexpected triple %v", tr)
		}
	}
}

func TestThresholdTaskEndToEnd(t *testing.T) {
	sys, gen := deploy(t, 1)
	task, ok := siemens.TaskByID("T06_thr_pressure")
	if !ok {
		t.Fatal("catalog task missing")
	}
	log := &answerLog{}
	if _, err := sys.RegisterTask(task.ID, task.Query, log.sink); err != nil {
		t.Fatal(err)
	}
	events := feedDefaultEvents(t, sys, gen, 0, 60_000, 500, gen.SensorsOfTurbine(0))
	var spikeSensor int64
	for _, e := range events {
		if e.Kind == siemens.EventThreshold {
			spikeSensor = e.SensorID
		}
	}
	if !log.subjects()[siemens.SensorIRI(spikeSensor)] {
		t.Fatalf("threshold spike on sensor %d missed; subjects = %v", spikeSensor, log.subjects())
	}
}

func TestPearsonTaskEndToEnd(t *testing.T) {
	sys, gen := deploy(t, 1)
	task, ok := siemens.TaskByID("T12_corr_vibration")
	if !ok {
		t.Fatal("catalog task missing")
	}
	log := &answerLog{}
	reg, err := sys.RegisterTask(task.ID, task.Query, log.sink)
	if err != nil {
		t.Fatal(err)
	}
	events := feedDefaultEvents(t, sys, gen, 0, 40_000, 500, gen.SensorsOfTurbine(0))
	var pair siemens.Event
	for _, e := range events {
		if e.Kind == siemens.EventCorrelatedPair {
			pair = e
		}
	}
	subjects := log.subjects()
	if !subjects[siemens.SensorIRI(pair.SensorID)] {
		t.Fatalf("correlated pair (%d,%d) missed; subjects=%v answers=%d",
			pair.SensorID, pair.PairID, subjects, reg.Answers())
	}
}

func TestSystemManagesTasks(t *testing.T) {
	sys, _ := deploy(t, 2)
	task, _ := siemens.TaskByID("T02_thr_temperature")
	if _, err := sys.RegisterTask("a", task.Query, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RegisterTask("a", task.Query, nil); err == nil {
		t.Error("duplicate id accepted")
	}
	if _, ok := sys.Task("a"); !ok {
		t.Error("Task lookup failed")
	}
	if ids := sys.TaskIDs(); len(ids) != 1 || ids[0] != "a" {
		t.Errorf("TaskIDs = %v", ids)
	}
	if err := sys.Unregister("a"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Unregister("a"); err == nil {
		t.Error("double unregister accepted")
	}
	// Registering on an undeclared stream fails cleanly.
	bad := strings.Replace(task.Query, "msmt_a", "ghost_stream", 1)
	if _, err := sys.RegisterTask("b", bad, nil); err == nil {
		t.Error("undeclared stream accepted")
	}
	// Unparsable STARQL fails cleanly.
	if _, err := sys.RegisterTask("c", "CREATE NONSENSE", nil); err == nil {
		t.Error("garbage accepted")
	}
}

func TestMultiNodeDistribution(t *testing.T) {
	sys, gen := deploy(t, 4)
	catalog := siemens.Catalog()
	log := &answerLog{}
	for i, task := range catalog[:8] {
		if _, err := sys.RegisterTask(task.ID, task.Query, log.sink); err != nil {
			t.Fatalf("task %d (%s): %v", i, task.ID, err)
		}
	}
	// Queries spread across all 4 nodes (load-based placement).
	nodes := map[int]int{}
	for _, id := range sys.TaskIDs() {
		tk, _ := sys.Task(id)
		nodes[tk.Node]++
	}
	if len(nodes) != 4 {
		t.Errorf("tasks on %d nodes, want 4: %v", len(nodes), nodes)
	}
	feedDefaultEvents(t, sys, gen, 0, 20_000, 1_000, gen.SensorsOfTurbine(0))
	stats := sys.Stats()
	var totalIn int64
	for _, st := range stats {
		totalIn += st.Engine.TuplesIn
	}
	if totalIn == 0 {
		t.Error("no tuples reached the engines")
	}
}

func TestClusterGatewayWiredThroughSystem(t *testing.T) {
	sys, _ := deploy(t, 2)
	// The cluster's async gateway accepts plain SQL(+) queries too
	// (scenario S2 runs raw performance tests through it).
	tk, err := sys.Cluster().Gateway().Submit("raw",
		"SELECT w.sid FROM STREAM msmt_a [RANGE 1000 SLIDE 1000] AS w", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tk.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sys.Cluster().QueryNode("raw"); !ok {
		t.Error("raw query not placed")
	}
}

func TestIngestErrors(t *testing.T) {
	sys, _ := deploy(t, 1)
	if err := sys.Ingest("ghost", stream.Timestamped{}); err == nil {
		t.Error("unknown stream accepted")
	}
}

func TestPlacementConfig(t *testing.T) {
	gen, _ := siemens.New(siemens.SmallConfig())
	cat, _ := gen.StaticCatalog()
	sys, err := NewSystem(Config{Nodes: 3, Placement: cluster.PlaceRoundRobin},
		siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	task, _ := siemens.TaskByID("T02_thr_temperature")
	var nodes []int
	for i, id := range []string{"x", "y", "z"} {
		reg, err := sys.RegisterTask(id, task.Query, nil)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, reg.Node)
		if reg.Node != i%3 {
			t.Errorf("round robin placed %s on %d", id, reg.Node)
		}
	}
	_ = nodes
}

// TestWorkerDeathFailsOverTasks drives the fault-tolerance plumbing end
// to end at the OBDA level: a worker is killed by fault injection, its
// diagnostic task fails over to the survivor, and the replay finishes
// with the system degraded but answering.
func TestWorkerDeathFailsOverTasks(t *testing.T) {
	gen, err := siemens.New(siemens.SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	cat, err := gen.StaticCatalog()
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(1).PanicAt(1, 1)
	sys, err := NewSystem(Config{
		Nodes: 2, Placement: cluster.PlaceRoundRobin, MaxRestarts: -1, Faults: inj,
	}, siemens.TBox(), siemens.Mappings(), cat)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sys.Close)
	for _, sc := range siemens.StreamSchemas() {
		if err := sys.DeclareStream(sc); err != nil {
			t.Fatal(err)
		}
	}
	var log answerLog
	var tasks []*Task
	for _, id := range []string{"T01_mon_temperature", "T06_thr_pressure"} {
		spec, ok := siemens.TaskByID(id)
		if !ok {
			t.Fatalf("catalog task %s missing", id)
		}
		task, err := sys.RegisterTask(spec.ID, spec.Query, log.sink)
		if err != nil {
			t.Fatal(err)
		}
		tasks = append(tasks, task)
	}
	if tasks[0].Node != 0 || tasks[1].Node != 1 {
		t.Fatalf("round-robin placement broke: %d/%d", tasks[0].Node, tasks[1].Node)
	}
	sensors := gen.SensorsOfTurbine(0)
	// First slice of the replay kills node 1 on its first delivery; wait
	// for the failover before streaming the rest.
	feedDefaultEvents(t, sys, gen, 0, 2000, 500, sensors)
	if err := sys.Cluster().WaitSettled(context.Background()); err != nil {
		t.Fatal(err)
	}
	h := sys.Health()
	if h.Dead != 1 || h.Live != 1 {
		t.Fatalf("health = %+v, want 1 dead / 1 live", h)
	}
	if node, ok := sys.Cluster().QueryNode(tasks[1].ID); !ok || node != 0 {
		t.Fatalf("task %s on node %d after failover, want 0", tasks[1].ID, node)
	}
	feedDefaultEvents(t, sys, gen, 2000, 20_000, 500, sensors)
	if tasks[1].Windows() == 0 {
		t.Error("failed-over task evaluated no windows on the survivor")
	}
	if !h.Degraded() {
		t.Error("one dead node must report as degraded")
	}
}

package core
